(* Policy-server tests: protocol framing and parsing (pure), the
   session state machine (pure), a differential property for batched
   admission — any batch schedule of concurrent SUBMITs must produce
   verdicts and a usage log identical to submitting the same requests
   one at a time in the same order — and end-to-end socket tests:
   genuinely concurrent clients against a live server, with the
   server's own admission order replayed serially afterwards, plus
   malformed frames, oversized payloads, AUTH-before-SUBMIT and
   mid-batch disconnect. *)

open Relational
open Datalawyer
module Protocol = Server.Protocol
module Session = Server.Session
module Tcp = Server.Tcp

let tc = Test_support.tc

(* Protocol ----------------------------------------------------------------- *)

let feed_all d s = Protocol.Decoder.feed d s

let test_decoder_split_frames () =
  let d = Protocol.Decoder.create () in
  let wire = Protocol.encode_frame "PING" ^ Protocol.encode_frame "STATS" in
  (* byte-by-byte delivery must reassemble both frames, in order *)
  let frames = ref [] in
  String.iter
    (fun c ->
      feed_all d (String.make 1 c);
      match Protocol.Decoder.next d with
      | `Frame p -> frames := p :: !frames
      | `Awaiting -> ()
      | `Error code -> Alcotest.fail ("unexpected framing error: " ^ code))
    wire;
  Alcotest.(check (list string)) "both frames" [ "PING"; "STATS" ] (List.rev !frames);
  Alcotest.(check bool) "drained" true (Protocol.Decoder.next d = `Awaiting)

let test_decoder_batched_frames () =
  let d = Protocol.Decoder.create () in
  feed_all d (String.concat "" (List.map Protocol.encode_frame [ "A"; "BB"; "CCC" ]));
  let take () =
    match Protocol.Decoder.next d with
    | `Frame p -> p
    | _ -> Alcotest.fail "expected a frame"
  in
  let first = take () in
  let second = take () in
  let third = take () in
  Alcotest.(check (list string)) "all three" [ "A"; "BB"; "CCC" ]
    [ first; second; third ]

let test_decoder_malformed () =
  let d = Protocol.Decoder.create () in
  feed_all d "7x\nPAYLOAD";
  (match Protocol.Decoder.next d with
  | `Error code -> Alcotest.(check string) "code" Protocol.err_bad_frame code
  | _ -> Alcotest.fail "non-digit length must be rejected");
  (* sticky: feeding more never recovers *)
  feed_all d (Protocol.encode_frame "PING");
  match Protocol.Decoder.next d with
  | `Error _ -> ()
  | _ -> Alcotest.fail "framing errors must be sticky"

let test_decoder_headerless_garbage () =
  let d = Protocol.Decoder.create () in
  (* more bytes than any length prefix could span, no newline *)
  feed_all d "GARBAGEGARBAGE";
  match Protocol.Decoder.next d with
  | `Error code -> Alcotest.(check string) "code" Protocol.err_bad_frame code
  | _ -> Alcotest.fail "unterminated length prefix must be rejected"

let test_decoder_oversized () =
  let d = Protocol.Decoder.create ~max_payload:16 () in
  feed_all d (Protocol.encode_frame (String.make 17 'x'));
  match Protocol.Decoder.next d with
  | `Error code -> Alcotest.(check string) "code" Protocol.err_too_large code
  | _ -> Alcotest.fail "oversized payload must be rejected"

let test_request_roundtrip () =
  let reqs =
    [
      Protocol.Hello Protocol.version;
      Protocol.Auth 42;
      Protocol.Submit "SELECT v\nFROM data\nWHERE k = 1";
      Protocol.Stats;
      Protocol.Ping;
      Protocol.Quit;
    ]
  in
  List.iter
    (fun r ->
      match Protocol.parse_request (Protocol.render_request r) with
      | Ok r' -> Alcotest.(check bool) "roundtrip" true (r = r')
      | Error (_, m) -> Alcotest.fail m)
    reqs;
  (match Protocol.parse_request "SUBMIT SELECT 1" with
  | Ok (Protocol.Submit "SELECT 1") -> ()
  | _ -> Alcotest.fail "one-line SUBMIT");
  (match Protocol.parse_request "FROBNICATE" with
  | Error (code, _) -> Alcotest.(check string) "verb" Protocol.err_bad_verb code
  | Ok _ -> Alcotest.fail "unknown verb must fail");
  (match Protocol.parse_request "AUTH -3" with
  | Error (code, _) -> Alcotest.(check string) "uid" Protocol.err_bad_arg code
  | Ok _ -> Alcotest.fail "negative uid must fail");
  match Protocol.parse_request "SUBMIT" with
  | Error (code, _) -> Alcotest.(check string) "sql" Protocol.err_bad_arg code
  | Ok _ -> Alcotest.fail "empty SUBMIT must fail"

let test_response_roundtrip () =
  let resps =
    [
      Protocol.Hello_ok Protocol.version;
      Protocol.Auth_ok 7;
      Protocol.Accepted { seq = 12; rows = 3 };
      Protocol.Rejected { seq = 13; messages = [ "P1 violated"; "P2 violated" ] };
      Protocol.Rejected { seq = 14; messages = [] };
      Protocol.Stats_reply [ ("sessions-total", "4"); ("batch-hist", "1:2 3-4:1") ];
      Protocol.Pong;
      Protocol.Bye;
      Protocol.Err { code = "sql"; message = "parse error at line 1" };
    ]
  in
  List.iter
    (fun r ->
      match Protocol.parse_response (Protocol.render_response r) with
      | Ok r' -> Alcotest.(check bool) "roundtrip" true (r = r')
      | Error (_, m) -> Alcotest.fail m)
    resps

(* Session ------------------------------------------------------------------ *)

let test_session_hello_first () =
  let s = Session.create () in
  (match Session.step s (Protocol.Submit "SELECT 1") with
  | Session.Terminate (Protocol.Err { code; _ }) ->
    Alcotest.(check string) "code" Protocol.err_state code
  | _ -> Alcotest.fail "SUBMIT before HELLO must terminate");
  let s = Session.create () in
  match Session.step s (Protocol.Hello "datalawyer/99") with
  | Session.Terminate (Protocol.Err _) -> ()
  | _ -> Alcotest.fail "version mismatch must terminate"

let test_session_auth_binding () =
  let s = Session.create () in
  (match Session.step s (Protocol.Hello Protocol.version) with
  | Session.Reply (Protocol.Hello_ok _) -> ()
  | _ -> Alcotest.fail "HELLO");
  (* SUBMIT before AUTH is refused but keeps the connection *)
  (match Session.step s (Protocol.Submit "SELECT 1") with
  | Session.Reply (Protocol.Err { code; _ }) ->
    Alcotest.(check string) "code" Protocol.err_auth_required code
  | _ -> Alcotest.fail "SUBMIT before AUTH");
  (match Session.step s (Protocol.Auth 4) with
  | Session.Reply (Protocol.Auth_ok 4) -> ()
  | _ -> Alcotest.fail "AUTH");
  (* the admitted uid comes from the binding, not the request *)
  (match Session.step s (Protocol.Submit "SELECT 1") with
  | Session.Admit { uid = 4; sql = "SELECT 1" } -> ()
  | _ -> Alcotest.fail "SUBMIT must carry the bound uid");
  (* re-AUTH: same uid idempotent, different uid refused, binding kept *)
  (match Session.step s (Protocol.Auth 4) with
  | Session.Reply (Protocol.Auth_ok 4) -> ()
  | _ -> Alcotest.fail "re-AUTH same uid");
  (match Session.step s (Protocol.Auth 5) with
  | Session.Reply (Protocol.Err { code; _ }) ->
    Alcotest.(check string) "code" Protocol.err_auth_rebind code
  | _ -> Alcotest.fail "re-AUTH different uid must be refused");
  (match Session.step s (Protocol.Submit "SELECT 2") with
  | Session.Admit { uid = 4; _ } -> ()
  | _ -> Alcotest.fail "binding must survive the refused re-AUTH");
  match Session.step s Protocol.Quit with
  | Session.Terminate Protocol.Bye -> ()
  | _ -> Alcotest.fail "QUIT"

(* Batched-admission differential ------------------------------------------- *)

(* Templates from the delta suite: 0/1/4 are monotone SPJ (batch fast
   path), 2 carries clock + HAVING (forces the serial fallback). *)
let templates = Test_delta_diff.templates
let queries = Test_delta_diff.queries

let fresh_db () =
  let db = Database.create () in
  ignore
    (Database.exec_script db
       "CREATE TABLE data (k INT, v TEXT); INSERT INTO data VALUES (1, 'a'), \
        (2, 'b'), (3, 'c'); CREATE TABLE banned (uid INT); INSERT INTO banned \
        VALUES (3)");
  db

let make_engine ?(ti = false) ~policies () =
  let config =
    { Engine.default_config with Engine.time_independent = ti; domains = 1 }
  in
  let engine = Engine.create ~config (fresh_db ()) in
  List.iteri
    (fun i t ->
      ignore (Engine.add_policy engine ~name:(Printf.sprintf "p%d" i) templates.(t)))
    policies;
  engine

(* Log contents without absolute tids: rollbacks never rewind the tid
   counter, so batch-then-retry and pure-serial runs differ in tid
   values while agreeing on every row (cells include the ts column) and
   on row order. *)
let dump_logs engine =
  let db = Engine.database engine in
  List.map
    (fun rel ->
      let rows =
        Table.fold
          (fun acc row ->
            String.concat ","
              (Array.to_list (Array.map Value.to_string (Row.cells row)))
            :: acc)
          []
          (Database.table db rel)
      in
      Printf.sprintf "%s={%s}" rel (String.concat " " (List.rev rows)))
    [ "users"; "schema"; "provenance"; "clock" ]

let render_outcome = function
  | Ok (Engine.Accepted (result, _)) ->
    "A["
    ^ String.concat ";"
        (List.map
           (fun (r : Executor.row_out) ->
             String.concat ","
               (Array.to_list (Array.map Value.to_string r.Executor.values)))
           result.Executor.out_rows)
    ^ "]"
  | Ok (Engine.Rejected (messages, _)) -> "R[" ^ String.concat ";" messages ^ "]"
  | Error e -> "E[" ^ Errors.to_string e ^ "]"

type schedule = {
  ti : bool;
  policies : int list;
  batches : (int * int) list list;  (** (uid, query index) per member *)
}

let run_batched s =
  let engine = make_engine ~ti:s.ti ~policies:s.policies () in
  let trace =
    List.concat_map
      (fun batch ->
        let subs =
          List.map
            (fun (uid, qi) ->
              {
                Engine.batch_uid = uid;
                batch_extra = [];
                batch_query = Parser.query queries.(qi);
              })
            batch
        in
        List.map render_outcome (Engine.submit_batch engine subs))
      s.batches
  in
  let out = (trace, dump_logs engine) in
  Engine.close engine;
  out

let run_serial s =
  let engine = make_engine ~ti:s.ti ~policies:s.policies () in
  let trace =
    List.concat_map
      (fun batch ->
        List.map
          (fun (uid, qi) ->
            match Engine.submit_ast engine ~uid (Parser.query queries.(qi)) with
            | o -> render_outcome (Ok o)
            | exception e -> render_outcome (Error e))
          batch)
      s.batches
  in
  let out = (trace, dump_logs engine) in
  Engine.close engine;
  out

let schedule_gen : schedule QCheck.Gen.t =
  let open QCheck.Gen in
  let member = pair (int_range 1 3) (int_range 0 (Array.length queries - 1)) in
  let* ti = bool in
  let* policies =
    (* lean on the SPJ templates so the fast path is the common case,
       but mix in the clock/HAVING shape to cover the fallback *)
    list_size (int_range 0 3) (oneofl [ 0; 1; 2; 4 ])
  in
  let+ batches = list_size (int_range 1 5) (list_size (int_range 1 5) member) in
  { ti; policies; batches }

let print_schedule s =
  Printf.sprintf "ti=%b policies=[%s] batches=[%s]" s.ti
    (String.concat ";" (List.map string_of_int s.policies))
    (String.concat " | "
       (List.map
          (fun b ->
            String.concat ";"
              (List.map (fun (u, q) -> Printf.sprintf "%d.%d" u q) b))
          s.batches))

let prop_batch_serial_identical =
  QCheck.Test.make ~count:120
    ~name:"batched admission == one-at-a-time admission (verdicts and log)"
    (QCheck.make ~print:print_schedule schedule_gen)
    (fun s -> run_batched s = run_serial s)

let test_fast_path_engages () =
  let engine = make_engine ~policies:[ 1 ] () in
  let subs =
    List.map
      (fun uid ->
        {
          Engine.batch_uid = uid;
          batch_extra = [];
          batch_query = Parser.query queries.(0);
        })
      [ 1; 2; 1; 2 ]
  in
  (match Engine.submit_batch engine subs with
  | [ Ok (Engine.Accepted _); Ok (Engine.Accepted _); Ok (Engine.Accepted _);
      Ok (Engine.Accepted _) ] ->
    ()
  | _ -> Alcotest.fail "violation-free batch must be accepted wholesale");
  let b = Engine.batch_stats engine in
  Alcotest.(check int) "fast" 1 b.Engine.fast_batches;
  Alcotest.(check int) "retried" 0 b.Engine.retried_batches;
  Alcotest.(check int) "serial" 0 b.Engine.serial_batches;
  Alcotest.(check int) "submissions" 4 b.Engine.batched_submissions;
  Engine.close engine

let test_violating_batch_retries_serially () =
  (* template 0 blocks uid 2: the combined evaluation fires, the batch
     replays serially, and only uid 2's members are rejected *)
  let engine = make_engine ~policies:[ 0 ] () in
  let subs =
    List.map
      (fun uid ->
        {
          Engine.batch_uid = uid;
          batch_extra = [];
          batch_query = Parser.query queries.(0);
        })
      [ 1; 2; 1 ]
  in
  (match Engine.submit_batch engine subs with
  | [ Ok (Engine.Accepted _); Ok (Engine.Rejected ([ m ], _));
      Ok (Engine.Accepted _) ] ->
    Alcotest.(check string) "message" "uid 2 blocked" m
  | _ -> Alcotest.fail "only uid 2 must be rejected");
  let b = Engine.batch_stats engine in
  Alcotest.(check int) "retried" 1 b.Engine.retried_batches;
  Engine.close engine

let test_ineligible_policy_goes_serial () =
  (* template 2 reads the clock: the batch must skip the fast path *)
  let engine = make_engine ~policies:[ 2 ] () in
  let subs =
    List.map
      (fun uid ->
        {
          Engine.batch_uid = uid;
          batch_extra = [];
          batch_query = Parser.query queries.(0);
        })
      [ 1; 3 ]
  in
  ignore (Engine.submit_batch engine subs);
  let b = Engine.batch_stats engine in
  Alcotest.(check int) "fast" 0 b.Engine.fast_batches;
  Alcotest.(check int) "serial" 1 b.Engine.serial_batches;
  Engine.close engine

(* End-to-end over sockets -------------------------------------------------- *)

type client = { fd : Unix.file_descr; decoder : Protocol.Decoder.t; buf : Bytes.t }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  { fd; decoder = Protocol.Decoder.create (); buf = Bytes.create 4096 }

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send_raw c s = ignore (Unix.write c.fd (Bytes.unsafe_of_string s) 0 (String.length s))

let recv c =
  let rec next () =
    match Protocol.Decoder.next c.decoder with
    | `Frame payload -> (
      match Protocol.parse_response payload with
      | Ok r -> `Reply r
      | Error (_, m) -> Alcotest.fail ("bad reply: " ^ m))
    | `Error code -> Alcotest.fail ("client-side framing error: " ^ code)
    | `Awaiting ->
      let n = try Unix.read c.fd c.buf 0 (Bytes.length c.buf) with Unix.Unix_error _ -> 0 in
      if n = 0 then `Eof
      else begin
        Protocol.Decoder.feed c.decoder (Bytes.sub_string c.buf 0 n);
        next ()
      end
  in
  next ()

let rpc c req =
  send_raw c (Protocol.encode_frame (Protocol.render_request req));
  match recv c with
  | `Reply r -> r
  | `Eof -> Alcotest.fail "server closed the connection mid-request"

let open_session port uid =
  let c = connect port in
  (match rpc c (Protocol.Hello Protocol.version) with
  | Protocol.Hello_ok _ -> ()
  | r -> Alcotest.fail ("HELLO: " ^ Protocol.render_response r));
  (match rpc c (Protocol.Auth uid) with
  | Protocol.Auth_ok _ -> ()
  | r -> Alcotest.fail ("AUTH: " ^ Protocol.render_response r));
  c

let start_server ?(max_payload = Protocol.default_max_payload) ?(max_batch = 8)
    ~policies () =
  let engine = make_engine ~policies () in
  let config =
    { Tcp.default_config with Tcp.port = 0; max_batch; max_payload }
  in
  (engine, Tcp.start ~config engine)

let test_concurrent_equivalence () =
  (* template 0 blocks uid 2, so the concurrent mix carries both
     verdicts; afterwards the server's own admission order (the seq
     numbers it returned) is replayed one-at-a-time on a fresh engine
     and must reproduce every verdict and the usage log. *)
  let engine, srv = start_server ~policies:[ 0; 1 ] () in
  let port = Tcp.port srv in
  let n_threads = 6 and per_thread = 5 in
  let results = Array.make (n_threads * per_thread) (0, 0, 0, "") in
  let threads =
    List.init n_threads (fun i ->
        Thread.create
          (fun () ->
            let uid = (i mod 3) + 1 in
            let c = open_session port uid in
            for j = 0 to per_thread - 1 do
              let qi = (i + j) mod Array.length queries in
              let verdict, seq =
                match rpc c (Protocol.Submit queries.(qi)) with
                | Protocol.Accepted { seq; _ } -> ("A", seq)
                | Protocol.Rejected { seq; messages } ->
                  ("R[" ^ String.concat ";" messages ^ "]", seq)
                | r -> Alcotest.fail (Protocol.render_response r)
              in
              results.((i * per_thread) + j) <- (seq, uid, qi, verdict)
            done;
            close_client c)
          ())
  in
  List.iter Thread.join threads;
  (* stop the transport, keep the engine for the log comparison *)
  Tcp.stop srv;
  let by_seq =
    List.sort
      (fun (a, _, _, _) (b, _, _, _) -> compare a b)
      (Array.to_list results)
  in
  Alcotest.(check int) "every submission got a distinct seq"
    (n_threads * per_thread)
    (List.length (List.sort_uniq compare (List.map (fun (s, _, _, _) -> s) by_seq)));
  (* replay one-at-a-time, in the admission order the server reported *)
  let replay = make_engine ~policies:[ 0; 1 ] () in
  List.iter
    (fun (seq, uid, qi, verdict) ->
      let got =
        match Engine.submit_ast replay ~uid (Parser.query queries.(qi)) with
        | Engine.Accepted _ -> "A"
        | Engine.Rejected (messages, _) ->
          "R[" ^ String.concat ";" messages ^ "]"
      in
      Alcotest.(check string)
        (Printf.sprintf "verdict of seq %d (uid %d q%d)" seq uid qi)
        verdict got)
    by_seq;
  (* the concurrent run's usage log must equal the serial replay's *)
  Alcotest.(check (list string))
    "usage log matches the serial replay" (dump_logs replay) (dump_logs engine);
  Engine.close replay;
  Engine.close engine

let test_auth_required_over_socket () =
  let _, srv = start_server ~policies:[ 1 ] () in
  let c = connect (Tcp.port srv) in
  (match rpc c (Protocol.Hello Protocol.version) with
  | Protocol.Hello_ok _ -> ()
  | _ -> Alcotest.fail "HELLO");
  (match rpc c (Protocol.Submit "SELECT v FROM data WHERE k = 1") with
  | Protocol.Err { code; _ } ->
    Alcotest.(check string) "code" Protocol.err_auth_required code
  | r -> Alcotest.fail ("expected auth-required: " ^ Protocol.render_response r));
  (* the connection survives; AUTH then SUBMIT succeeds *)
  (match rpc c (Protocol.Auth 1) with
  | Protocol.Auth_ok 1 -> ()
  | _ -> Alcotest.fail "AUTH after refusal");
  (match rpc c (Protocol.Submit "SELECT v FROM data WHERE k = 1") with
  | Protocol.Accepted _ -> ()
  | r -> Alcotest.fail ("SUBMIT after AUTH: " ^ Protocol.render_response r));
  close_client c;
  Tcp.stop ~close_engine:true srv

let test_malformed_frame_closes () =
  let _, srv = start_server ~policies:[] () in
  let c = connect (Tcp.port srv) in
  send_raw c "NOT A FRAME AT ALL";
  (match recv c with
  | `Reply (Protocol.Err { code; _ }) ->
    Alcotest.(check string) "code" Protocol.err_bad_frame code
  | `Reply r -> Alcotest.fail ("expected bad-frame: " ^ Protocol.render_response r)
  | `Eof -> Alcotest.fail "expected an ERR before close");
  (match recv c with
  | `Eof -> ()
  | `Reply _ -> Alcotest.fail "connection must close after a framing error");
  close_client c;
  (* the server is still healthy for other clients *)
  let c2 = open_session (Tcp.port srv) 1 in
  (match rpc c2 (Protocol.Submit "SELECT v FROM data WHERE k = 1") with
  | Protocol.Accepted _ -> ()
  | r -> Alcotest.fail (Protocol.render_response r));
  close_client c2;
  Tcp.stop ~close_engine:true srv

let test_oversized_payload_closes () =
  let _, srv = start_server ~max_payload:64 ~policies:[] () in
  let c = connect (Tcp.port srv) in
  send_raw c (Protocol.encode_frame ("SUBMIT\nSELECT '" ^ String.make 100 'x' ^ "'"));
  (match recv c with
  | `Reply (Protocol.Err { code; _ }) ->
    Alcotest.(check string) "code" Protocol.err_too_large code
  | `Reply r -> Alcotest.fail ("expected too-large: " ^ Protocol.render_response r)
  | `Eof -> Alcotest.fail "expected an ERR before close");
  (match recv c with
  | `Eof -> ()
  | `Reply _ -> Alcotest.fail "connection must close after an oversized frame");
  close_client c;
  Tcp.stop ~close_engine:true srv

let test_mid_batch_disconnect () =
  let _, srv = start_server ~policies:[ 1 ] () in
  let port = Tcp.port srv in
  (* client A fires a SUBMIT and vanishes without reading the verdict *)
  let a = open_session port 1 in
  send_raw a
    (Protocol.encode_frame
       (Protocol.render_request (Protocol.Submit "SELECT v FROM data WHERE k = 1")));
  close_client a;
  (* client B's traffic must be unaffected *)
  let b = open_session port 2 in
  (match rpc b (Protocol.Submit "SELECT v FROM data WHERE k = 1") with
  | Protocol.Accepted _ -> ()
  | r -> Alcotest.fail ("B after A's disconnect: " ^ Protocol.render_response r));
  (* and the server still answers STATS on a fresh connection *)
  let c = connect port in
  (match rpc c (Protocol.Hello Protocol.version) with
  | Protocol.Hello_ok _ -> ()
  | _ -> Alcotest.fail "HELLO");
  (match rpc c Protocol.Stats with
  | Protocol.Stats_reply kvs ->
    Alcotest.(check bool) "counts submissions" true
      (match List.assoc_opt "submissions" kvs with
      | Some n -> int_of_string n >= 1
      | None -> false);
    (* vectorized-executor counters ride the same reply *)
    List.iter
      (fun k ->
        Alcotest.(check bool) (k ^ " present") true
          (List.assoc_opt k kvs <> None))
      [
        "vector-enabled"; "vector-batches"; "vector-rows";
        "vector-fallbacks"; "vector-hist";
      ];
    Alcotest.(check (option string)) "vector-enabled mirrors the config"
      (Some (if Engine.default_vector then "1" else "0"))
      (List.assoc_opt "vector-enabled" kvs);
    (* the histogram has one bucket per bound plus the open tail *)
    (match List.assoc_opt "vector-hist" kvs with
    | Some h ->
      Alcotest.(check int) "five histogram buckets" 5
        (List.length (String.split_on_char ' ' h))
    | None -> Alcotest.fail "vector-hist missing")
  | r -> Alcotest.fail (Protocol.render_response r));
  close_client b;
  close_client c;
  Tcp.stop ~close_engine:true srv

let test_shutdown_drains () =
  (* submissions already queued when stop begins still get verdicts *)
  let _, srv = start_server ~max_batch:4 ~policies:[ 1 ] () in
  let port = Tcp.port srv in
  let oks = Atomic.make 0 in
  let threads =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
            (* uid 3 sits in the banned table; stick to 1 and 2 *)
            let c = open_session port ((i mod 2) + 1) in
            (match rpc c (Protocol.Submit "SELECT v FROM data WHERE k = 1") with
            | Protocol.Accepted _ -> Atomic.incr oks
            | _ -> ());
            close_client c)
          ())
  in
  List.iter Thread.join threads;
  Tcp.stop ~close_engine:true srv;
  Alcotest.(check int) "all verdicts delivered" 4 (Atomic.get oks)

let suite =
  [
    tc "decoder reassembles frames split across reads" test_decoder_split_frames;
    tc "decoder drains multiple frames from one read" test_decoder_batched_frames;
    tc "decoder rejects malformed length prefixes, stickily" test_decoder_malformed;
    tc "decoder rejects unterminated garbage" test_decoder_headerless_garbage;
    tc "decoder rejects oversized payloads" test_decoder_oversized;
    tc "requests round-trip through render/parse" test_request_roundtrip;
    tc "responses round-trip through render/parse" test_response_roundtrip;
    tc "session requires HELLO first" test_session_hello_first;
    tc "session binds the uid and refuses rebinding" test_session_auth_binding;
    tc "batch fast path engages on eligible work" test_fast_path_engages;
    tc "violating batch replays serially with per-member verdicts"
      test_violating_batch_retries_serially;
    tc "clock-reading policy forces the serial batch path"
      test_ineligible_policy_goes_serial;
    tc "concurrent clients == the server's serial order (sockets)"
      test_concurrent_equivalence;
    tc "AUTH is required before SUBMIT over the wire"
      test_auth_required_over_socket;
    tc "malformed frame gets an ERR then a close" test_malformed_frame_closes;
    tc "oversized payload gets an ERR then a close" test_oversized_payload_closes;
    tc "mid-batch disconnect leaves other clients unharmed"
      test_mid_batch_disconnect;
    tc "shutdown drains queued submissions" test_shutdown_drains;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_batch_serial_identical ]
