(** Property tests for the maintained secondary indexes.

    The heap is ground truth: after a random interleaving of inserts,
    deletes, updates, savepoint rollback/release and [retain_tids]
    compaction, every declared index must agree exactly with a full heap
    scan — same tid sets per value under {!Value.equal}, same tid sets
    per range under {!Value.compare} (NULL cells excluded), and an entry
    count equal to the row count. A mid-stream [create_index] exercises
    the build-from-existing-rows path. *)

open Relational
open Test_support

(* Tid-monotonicity assertions on for the whole suite. *)
let () = Table.debug_checks := true

type op =
  | Insert of int * int option  (** (a, b); [None] inserts NULL into b *)
  | Delete_a of int
  | Delete_b_lt of int
  | Update_b of int * int  (** WHERE a = k SET b = v *)
  | Compact  (** retain_tids keeping even tids *)
  | Txn of (int * int option) list * bool  (** savepoint + inserts; commit? *)

let op_gen =
  let open QCheck.Gen in
  let k = int_range 0 8 in
  let cell = frequency [ (4, map (fun b -> Some b) k); (1, return None) ] in
  frequency
    [
      (6, map2 (fun a b -> Insert (a, b)) k cell);
      (2, map (fun a -> Delete_a a) k);
      (2, map (fun b -> Delete_b_lt b) k);
      (2, map2 (fun a v -> Update_b (a, v)) k k);
      (1, return Compact);
      ( 2,
        map2
          (fun rows commit -> Txn (rows, commit))
          (list_size (int_range 0 5) (pair k cell))
          bool );
    ]

let ops_gen = QCheck.Gen.list_size (QCheck.Gen.int_range 0 60) op_gen

let print_op = function
  | Insert (a, b) ->
    Printf.sprintf "ins(%d,%s)" a
      (match b with None -> "null" | Some b -> string_of_int b)
  | Delete_a a -> Printf.sprintf "del_a(%d)" a
  | Delete_b_lt b -> Printf.sprintf "del_b<%d" b
  | Update_b (a, v) -> Printf.sprintf "upd(a=%d,b:=%d)" a v
  | Compact -> "compact"
  | Txn (rows, commit) ->
    Printf.sprintf "txn(%d rows,%s)" (List.length rows)
      (if commit then "commit" else "rollback")

let value_of_b = function None -> Value.Null | Some b -> Value.Int b

let apply table op =
  match op with
  | Insert (a, b) -> ignore (Table.insert table [| Value.Int a; value_of_b b |])
  | Delete_a a ->
    ignore (Table.delete_where table (fun r -> Row.cell r 0 = Value.Int a))
  | Delete_b_lt b ->
    ignore
      (Table.delete_where table (fun r ->
           match Row.cell r 1 with Value.Int x -> x < b | _ -> false))
  | Update_b (a, v) ->
    ignore
      (Table.update_where table
         (fun r -> Row.cell r 0 = Value.Int a)
         (fun cells ->
           let c = Array.copy cells in
           c.(1) <- Value.Int v;
           c))
  | Compact ->
    let keep = Hashtbl.create 16 in
    Table.iter
      (fun r -> if Row.tid r mod 2 = 0 then Hashtbl.replace keep (Row.tid r) ())
      table;
    ignore (Table.retain_tids table keep)
  | Txn (rows, commit) ->
    let sp = Table.savepoint table in
    List.iter
      (fun (a, b) -> ignore (Table.insert table [| Value.Int a; value_of_b b |]))
      rows;
    if commit then Table.release table sp else Table.rollback_to table sp

(* Ground truth: tids of rows whose [col] cell is [Value.equal] to [v]. *)
let heap_eq_tids table col v =
  List.sort compare
    (Table.fold
       (fun acc r ->
         if Value.equal (Row.cell r col) v then Row.tid r :: acc else acc)
       [] table)

let in_bound cmp = function
  | None -> true
  | Some (b, incl) -> if incl then cmp b >= 0 else cmp b > 0

(* Ground truth for ranges: non-NULL cells within the bounds. *)
let heap_range_tids table col ?lo ?hi () =
  List.sort compare
    (Table.fold
       (fun acc r ->
         let v = Row.cell r col in
         if
           (not (Value.is_null v))
           && in_bound (fun b -> Value.compare v b) lo
           && in_bound (fun b -> Value.compare b v) hi
         then Row.tid r :: acc
         else acc)
       [] table)

let probe_values =
  Value.Null :: List.init 10 (fun i -> Value.Int i)

let range_cases : (Index.bound option * Index.bound option) list =
  [
    (None, None);
    (Some (Value.Int 3, true), None);
    (Some (Value.Int 3, false), None);
    (None, Some (Value.Int 5, true));
    (None, Some (Value.Int 5, false));
    (Some (Value.Int 2, true), Some (Value.Int 6, false));
    (Some (Value.Int 4, false), Some (Value.Int 4, true));
    (Some (Value.Int 7, true), Some (Value.Int 1, true));  (* empty *)
  ]

let index_consistent table ix =
  let col = Index.column ix in
  Index.entries ix = Table.row_count table
  && List.for_all
       (fun v ->
         List.sort compare (Index.lookup ix v) = heap_eq_tids table col v)
       probe_values
  && Index.lookup ix (Value.Int 999_999) = []
  &&
  match Index.kind ix with
  | Index.Hash -> true
  | Index.Sorted ->
    List.for_all
      (fun (lo, hi) ->
        List.sort compare (Index.range ix ?lo ?hi ())
        = heap_range_tids table col ?lo ?hi ())
      range_cases

(* Row fetches must come back in tid (= heap scan) order. *)
let lookup_order_ok table ix =
  List.for_all
    (fun v ->
      let tids = List.map Row.tid (Table.index_lookup table ix v) in
      tids = List.sort compare tids)
    probe_values

let fresh_table () =
  Table.create ~name:"t"
    ~schema:(Schema.make [ ("a", Ty.Int); ("b", Ty.Int) ])

let prop_indexes_agree_with_heap =
  QCheck.Test.make
    ~name:"indexes agree with a full heap scan under random mutation"
    ~count:500
    (QCheck.make
       ~print:(fun (pre, post) ->
         String.concat " " (List.map print_op pre)
         ^ " | " ^ String.concat " " (List.map print_op post))
       (QCheck.Gen.pair ops_gen ops_gen))
    (fun (pre, post) ->
      let table = fresh_table () in
      ignore (Table.create_index table ~name:"ix_a" ~column:"a" ~kind:Index.Hash);
      ignore (Table.create_index table ~name:"ix_b" ~column:"b" ~kind:Index.Sorted);
      List.iter (apply table) pre;
      (* Mid-stream declaration: built from the rows already present. *)
      ignore
        (Table.create_index table ~name:"ix_a2" ~column:"a" ~kind:Index.Sorted);
      List.iter (apply table) post;
      List.for_all
        (fun ix -> index_consistent table ix && lookup_order_ok table ix)
        (Table.indexes table))

(* Deterministic edges ----------------------------------------------------- *)

let test_build_from_existing () =
  let table = fresh_table () in
  for i = 0 to 9 do
    ignore (Table.insert table [| Value.Int (i mod 3); Value.Int i |])
  done;
  let ix = Table.create_index table ~name:"ix" ~column:"a" ~kind:Index.Hash in
  Alcotest.(check int) "entries = rows" 10 (Index.entries ix);
  Alcotest.(check int) "bucket size" 4 (List.length (Index.lookup ix (Value.Int 0)))

let test_clear_keeps_definition () =
  let table = fresh_table () in
  let ix = Table.create_index table ~name:"ix" ~column:"a" ~kind:Index.Hash in
  ignore (Table.insert table [| Value.Int 1; Value.Int 2 |]);
  Table.clear table;
  Alcotest.(check int) "entries cleared" 0 (Index.entries ix);
  Alcotest.(check bool) "definition survives" true
    (Table.find_index table "ix" <> None);
  ignore (Table.insert table [| Value.Int 1; Value.Int 2 |]);
  Alcotest.(check int) "maintained after clear" 1 (Index.entries ix)

let test_ddl_errors () =
  let table = fresh_table () in
  ignore (Table.create_index table ~name:"ix" ~column:"a" ~kind:Index.Hash);
  Alcotest.check_raises "duplicate name"
    (Errors.Sql_error (Errors.Catalog_error, "index ix already exists on t"))
    (fun () ->
      ignore (Table.create_index table ~name:"ix" ~column:"b" ~kind:Index.Hash));
  Alcotest.(check bool) "unknown column raises" true
    (try
       ignore (Table.create_index table ~name:"ix2" ~column:"zz" ~kind:Index.Hash);
       false
     with Errors.Sql_error _ -> true);
  Alcotest.(check bool) "range on hash raises" true
    (let ix = Option.get (Table.find_index table "ix") in
     try
       ignore (Index.range ix ());
       false
     with Errors.Sql_error _ -> true);
  Table.drop_index table "ix";
  Alcotest.(check bool) "dropped" true (Table.find_index table "ix" = None)

let test_catalog_generation_bumps () =
  let db = sample_db () in
  let cat = Database.catalog db in
  let g0 = Catalog.generation cat in
  ignore
    (Catalog.create_index cat ~name:"ix_emp_dept" ~table:"emp" ~column:"dept"
       ~kind:Index.Hash);
  let g1 = Catalog.generation cat in
  Alcotest.(check bool) "create bumps generation" true (g1 > g0);
  Catalog.drop_index cat "ix_emp_dept";
  Alcotest.(check bool) "drop bumps generation" true (Catalog.generation cat > g1);
  Alcotest.(check bool) "unregistered after drop" false
    (Catalog.mem_index cat "ix_emp_dept")

let test_drop_table_unregisters_indexes () =
  let db = sample_db () in
  let cat = Database.catalog db in
  ignore
    (Catalog.create_index cat ~name:"ix_tmp" ~table:"dept" ~column:"budget"
       ~kind:Index.Sorted);
  Catalog.drop cat "dept";
  Alcotest.(check bool) "index name freed with its table" false
    (Catalog.mem_index cat "ix_tmp")

let test_sql_ddl_roundtrip () =
  let db = sample_db () in
  ignore
    (Database.exec_script db
       "CREATE INDEX ix_emp_sal ON emp USING sorted (salary)");
  let table = Database.table db "emp" in
  Alcotest.(check bool) "created via SQL" true
    (Table.find_index table "ix_emp_sal" <> None);
  ignore (Database.exec_script db "DROP INDEX ix_emp_sal");
  Alcotest.(check bool) "dropped via SQL" true
    (Table.find_index table "ix_emp_sal" = None);
  ignore (Database.exec_script db "DROP INDEX IF EXISTS ix_emp_sal")

let suite =
  List.map QCheck_alcotest.to_alcotest [ prop_indexes_agree_with_heap ]
  @ [
      tc "index built from existing rows" test_build_from_existing;
      tc "clear keeps definitions, drops entries" test_clear_keeps_definition;
      tc "DDL error cases" test_ddl_errors;
      tc "catalog generation bumps on index DDL" test_catalog_generation_bumps;
      tc "dropping a table frees its index names" test_drop_table_unregisters_indexes;
      tc "CREATE/DROP INDEX via SQL" test_sql_ddl_roundtrip;
    ]
