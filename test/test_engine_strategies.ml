(* Strategy-specific engine behaviour: union message mapping, serial vs
   interleaved call counts, improved-partial pruning, preemptive
   generation skipping, and a long-horizon equivalence stream. *)

open Datalawyer
open Test_support

let base_db () =
  db_of_script
    {|
    CREATE TABLE data (k INT, v TEXT);
    INSERT INTO data VALUES (1, 'a'), (2, 'b'), (3, 'c')
    |}

let accepted = function Engine.Accepted _ -> true | Engine.Rejected _ -> false
let messages = function Engine.Rejected (ms, _) -> ms | Engine.Accepted _ -> []

let always_fires name =
  Printf.sprintf "SELECT DISTINCT '%s fired' FROM users u WHERE u.uid = 1" name

let test_union_reports_every_violation () =
  let db = base_db () in
  (* domains = 1: the single-UNION-call pin below is a property of the
     serial path; a pool evaluates one call per branch (same outcome). *)
  let e =
    Engine.create
      ~config:
        {
          Engine.noopt_config with
          Engine.strategy = Engine.Union_all;
          domains = 1;
        }
      db
  in
  ignore (Engine.add_policy e ~name:"a" (always_fires "a"));
  ignore (Engine.add_policy e ~name:"b" (always_fires "b"));
  let r = Engine.submit e ~uid:1 "SELECT v FROM data WHERE k = 1" in
  Alcotest.(check (slist string compare)) "both messages via union"
    [ "a fired"; "b fired" ] (messages r);
  Alcotest.(check int) "single policy call" 1 (Engine.stats_of r).Stats.policy_calls

let test_serial_counts_calls () =
  let db = base_db () in
  let e =
    Engine.create ~config:{ Engine.noopt_config with Engine.strategy = Engine.Serial } db
  in
  for k = 1 to 4 do
    ignore
      (Engine.add_policy e
         ~name:(Printf.sprintf "p%d" k)
         (Printf.sprintf "SELECT DISTINCT 'p%d' FROM users u WHERE u.uid = 99" k))
  done;
  match Engine.submit e ~uid:1 "SELECT v FROM data WHERE k = 1" with
  | Engine.Accepted (_, st) ->
    Alcotest.(check int) "one call per policy" 4 st.Stats.policy_calls
  | Engine.Rejected _ -> Alcotest.fail "no policy applies to uid 1"

let test_improved_partial_prunes_committed_window () =
  (* A window policy whose partial stays non-empty because of committed
     rows: improved-partial must still prune it for a different user,
     avoiding provenance generation. *)
  let db = base_db () in
  let config =
    { Engine.default_config with Engine.unification = false; preemptive = false }
  in
  let e = Engine.create ~config db in
  ignore
    (Engine.add_policy e ~name:"win"
       "SELECT DISTINCT 'window quota' FROM provenance p, users u, clock c \
        WHERE p.ts = u.ts AND u.uid = 1 AND p.irid = 'data' AND p.ts > c.ts \
        - 50 HAVING COUNT(DISTINCT p.itid) > 100");
  (* uid 1 creates committed window content *)
  ignore (Engine.submit e ~uid:1 "SELECT v FROM data");
  let prov_before = Engine.log_size e "provenance" in
  Alcotest.(check bool) "uid 1 logged provenance" true (prov_before > 0);
  (* uid 2: the users-partial is non-empty (uid 1's committed rows are in
     the window) but independent of the increment -> pruned *)
  (match Engine.submit e ~uid:2 "SELECT v FROM data" with
  | Engine.Accepted (_, st) ->
    Alcotest.(check bool) "pruned cheaply" true (st.Stats.policy_calls <= 2);
    Alcotest.(check int) "no new provenance for uid 2" prov_before
      (Engine.log_size e "provenance")
  | Engine.Rejected _ -> Alcotest.fail "uid 2 must pass");
  (* with improved-partial off, the loop continues to provenance *)
  Engine.set_config e { config with Engine.improved_partial = false };
  match Engine.submit e ~uid:2 "SELECT v FROM data" with
  | Engine.Accepted (_, st) ->
    Alcotest.(check bool) "without the optimization, more work" true
      (st.Stats.policy_calls >= 2)
  | Engine.Rejected _ -> Alcotest.fail "uid 2 must still pass"

let test_preemptive_skips_generation () =
  let db = base_db () in
  let on = { Engine.default_config with Engine.unification = false } in
  let e = Engine.create ~config:on db in
  ignore
    (Engine.add_policy e ~name:"win"
       "SELECT DISTINCT 'window quota' FROM provenance p, users u, clock c \
        WHERE p.ts = u.ts AND u.uid = 1 AND p.irid = 'data' AND p.ts > c.ts \
        - 50 HAVING COUNT(DISTINCT p.itid) > 100");
  (* uid 2 only: witness can never retain anything (uid = 1 filter), so
     the provenance increment is never generated *)
  (match Engine.submit e ~uid:2 "SELECT v FROM data" with
  | Engine.Accepted _ -> ()
  | Engine.Rejected _ -> Alcotest.fail "must pass");
  Alcotest.(check int) "provenance never generated" 0
    (Engine.log_size e "provenance")

let test_invalid_query_leaves_engine_usable () =
  (* A user query that fails inside the provenance function (unknown
     table) must revert the tentative log and leave the engine healthy. *)
  let db = base_db () in
  let e = Engine.create db in
  ignore
    (Engine.add_policy e ~name:"win"
       "SELECT DISTINCT 'q' FROM provenance p, users u, clock c WHERE p.ts = \
        u.ts AND p.ts > c.ts - 50 HAVING COUNT(DISTINCT p.itid) > 1000");
  let before = Engine.log_size e "users" in
  (match Engine.submit e ~uid:1 "SELECT x FROM no_such_table" with
  | exception Relational.Errors.Sql_error (Relational.Errors.Catalog_error, _) -> ()
  | _ -> Alcotest.fail "invalid query must raise");
  Alcotest.(check int) "log reverted after failure" before (Engine.log_size e "users");
  (* the engine still works afterwards *)
  Alcotest.(check bool) "subsequent query fine" true
    (accepted (Engine.submit e ~uid:1 "SELECT v FROM data WHERE k = 1"));
  (match Engine.submit e ~uid:1 "SELECT nope FROM data" with
  | exception Relational.Errors.Sql_error (Relational.Errors.Bind_error, _) -> ()
  | _ -> Alcotest.fail "bad column must raise");
  Alcotest.(check bool) "still fine after bind error" true
    (accepted (Engine.submit e ~uid:1 "SELECT v FROM data WHERE k = 2"))

let test_long_horizon_equivalence () =
  (* 200 queries with tight thresholds: NoOpt and DataLawyer must agree on
     every decision, and the optimized log must stay bounded. *)
  let mimic = { Mimic.Generate.small_config with n_patients = 40; events_per_patient = 5 } in
  let params =
    {
      Workload.Policies.default_params with
      p1_window = 5;
      p1_max_users = 2;
      p5_window = 8;
      p5_max_fraction = 0.6;
      p6_window = 6;
      p6_max_uses = 4;
    }
  in
  let stream =
    List.init 200 (fun k -> ((k * 7) mod 5, [ "W1"; "W2"; "W1"; "W3"; "W1" ] |> fun l -> List.nth l (k mod 5)))
  in
  let run config =
    let s = Workload.Runner.make ~mimic ~params ~config () in
    let decisions =
      List.map
        (fun (uid, qn) ->
          let q = Workload.Runner.query s qn in
          accepted (Engine.submit s.Workload.Runner.engine ~uid q.Workload.Queries.sql))
        stream
    in
    (decisions, Engine.log_size s.Workload.Runner.engine "users"
                + Engine.log_size s.Workload.Runner.engine "provenance")
  in
  let d_noopt, sz_noopt = run Engine.noopt_config in
  let d_full, sz_full = run Engine.default_config in
  Alcotest.(check (list bool)) "200 decisions agree" d_noopt d_full;
  Alcotest.(check bool)
    (Printf.sprintf "log bounded (%d vs %d)" sz_full sz_noopt)
    true
    (sz_full * 5 < sz_noopt)

let suite =
  [
    tc "union reports every violation" test_union_reports_every_violation;
    tc "serial counts calls" test_serial_counts_calls;
    tc "improved partial prunes committed window" test_improved_partial_prunes_committed_window;
    tc "preemptive skips generation" test_preemptive_skips_generation;
    tc "invalid query leaves engine usable" test_invalid_query_leaves_engine_usable;
    Alcotest.test_case "long-horizon equivalence (200 queries)" `Slow
      test_long_horizon_equivalence;
  ]
