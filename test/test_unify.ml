open Relational
open Datalawyer
open Test_support

let setup () =
  let db = sample_db () in
  let e = Engine.create db in
  let is_log rel = Catalog.is_log (Database.catalog db) rel in
  (db, e, is_log)

let family_member e k =
  Engine.add_policy e
    ~name:(Printf.sprintf "fam%d" k)
    (Printf.sprintf
       "SELECT DISTINCT 'family %d violated' FROM users u, emp g \
        WHERE u.uid = g.id AND g.dept = 'dept%d' HAVING COUNT(DISTINCT u.uid) > 2"
       k k)

let test_unifies_family () =
  let db, e, is_log = setup () in
  let ps = List.init 5 (family_member e) in
  let o = Unify.run (Database.catalog db) ~is_log ps in
  Alcotest.(check int) "one unified policy" 1 (List.length o.Unify.policies);
  Alcotest.(check int) "one group" 1 (List.length o.Unify.groups);
  let g = List.hd o.Unify.groups in
  Alcotest.(check int) "five members" 5 (List.length g.Unify.members);
  (* constants table materialized with one row per member: the message and
     the dept constant both differ, giving two columns *)
  let table = Option.get g.Unify.constants_table in
  let consts = Database.rows db (Printf.sprintf "SELECT c0, c1 FROM %s" table) in
  Alcotest.(check int) "five constant rows" 5 (List.length consts);
  (* unified query joins the constants table and groups by the constants *)
  let sql = Sql_print.query g.Unify.policy.Policy.query in
  Alcotest.(check bool) "joins constants table" true
    (Test_policy.contains_substring sql table);
  Alcotest.(check bool) "groups by the constants" true
    (Test_policy.contains_substring sql "GROUP BY")

let test_does_not_unify_different_shapes () =
  let db, e, is_log = setup () in
  let p1 = family_member e 1 in
  let p2 =
    Engine.add_policy e ~name:"other"
      "SELECT DISTINCT 'different shape' FROM users u WHERE u.uid = 9"
  in
  let o = Unify.run (Database.catalog db) ~is_log [ p1; p2 ] in
  Alcotest.(check int) "no unification" 2 (List.length o.Unify.policies);
  Alcotest.(check int) "no groups" 0 (List.length o.Unify.groups)

(* n-way unification lifts every differing position, including HAVING
   thresholds, into the constants table. *)
let test_unifies_two_differing_literals () =
  let db, e, is_log = setup () in
  let mk k thr =
    Engine.add_policy e
      ~name:(Printf.sprintf "two%d" k)
      (Printf.sprintf
         "SELECT DISTINCT 'v' FROM users u, emp g WHERE u.uid = g.id AND \
          g.dept = 'd%d' HAVING COUNT(DISTINCT u.uid) > %d"
         k thr)
  in
  let p1 = mk 1 2 and p2 = mk 2 5 in
  let o = Unify.run (Database.catalog db) ~is_log [ p1; p2 ] in
  Alcotest.(check int) "unified" 1 (List.length o.Unify.policies);
  let g = List.hd o.Unify.groups in
  let table = Option.get g.Unify.constants_table in
  let consts = Database.rows db (Printf.sprintf "SELECT c0, c1 FROM %s" table) in
  Alcotest.(check int) "two constant rows" 2 (List.length consts)

(* Differing types at one position block unification. *)
let test_does_not_unify_mismatched_types () =
  let db, e, is_log = setup () in
  let p1 =
    Engine.add_policy e ~name:"ty1"
      "SELECT DISTINCT 'v' FROM users u WHERE u.uid = 9"
  and p2 =
    Engine.add_policy e ~name:"ty2"
      "SELECT DISTINCT 'v' FROM users u WHERE u.uid = 'nine'"
  in
  let o = Unify.run (Database.catalog db) ~is_log [ p1; p2 ] in
  Alcotest.(check int) "left alone" 2 (List.length o.Unify.policies);
  Alcotest.(check int) "no groups" 0 (List.length o.Unify.groups)

(* Exact duplicates collapse without a constants table. *)
let test_unifies_exact_duplicates () =
  let db, e, is_log = setup () in
  let mk k =
    Engine.add_policy e
      ~name:(Printf.sprintf "dup%d" k)
      "SELECT DISTINCT 'dup violated' FROM users u WHERE u.uid = 7"
  in
  let ps = List.init 3 mk in
  let o = Unify.run (Database.catalog db) ~is_log ps in
  Alcotest.(check int) "one policy" 1 (List.length o.Unify.policies);
  let g = List.hd o.Unify.groups in
  Alcotest.(check bool) "no constants table" true (g.Unify.constants_table = None);
  Alcotest.(check int) "three members" 3 (List.length g.Unify.members)

(* Semantic equivalence: the unified policy fires iff some member fires,
   and projects exactly the messages of the firing members. *)
let test_unified_equivalence_randomized () =
  let rng = Mimic.Rng.create ~seed:23 in
  for _trial = 1 to 20 do
    let db, e, is_log = setup () in
    (* members keyed on dept name in the sample db *)
    let mk dept =
      Engine.add_policy e ~name:("u_" ^ dept)
        (Printf.sprintf
           "SELECT DISTINCT 'dept %s overused' FROM users u, emp g \
            WHERE u.uid = g.id AND g.dept = '%s' HAVING COUNT(DISTINCT u.uid) > 1"
           dept dept)
    in
    let members = List.map mk [ "eng"; "ops"; "mgmt" ] in
    let o = Unify.run (Database.catalog db) ~is_log members in
    Alcotest.(check int) "unified" 1 (List.length o.Unify.policies);
    let unified = List.hd o.Unify.policies in
    (* random users log: uids matching emp ids 1..5 *)
    let users = Database.table db "users" in
    for ts = 1 to 6 do
      if Mimic.Rng.bool rng then
        ignore (Table.insert users [| i ts; i (1 + Mimic.Rng.int rng 5) |])
    done;
    let messages q =
      let r = Database.query_ast db q in
      List.filter_map
        (fun row ->
          match row.Executor.values with
          | [| Value.Str m |] -> Some m
          | _ -> None)
        r.Executor.out_rows
      |> List.sort_uniq compare
    in
    let member_msgs =
      List.concat_map (fun p -> messages p.Policy.query) members
      |> List.sort_uniq compare
    in
    Alcotest.(check (list string)) "unified messages ≡ union of member messages"
      member_msgs
      (messages unified.Policy.query)
  done

let test_engine_uses_unification () =
  let db = sample_db () in
  let e =
    Engine.create ~config:{ Engine.default_config with unification = true } db
  in
  let _ = List.init 4 (family_member e) in
  let pl = Engine.plan e in
  Alcotest.(check int) "plan collapses family to one" 1 (List.length pl.Engine.active);
  Alcotest.(check int) "group recorded" 1 (List.length pl.Engine.unified_groups)

let suite =
  [
    tc "unifies a parameter family" test_unifies_family;
    tc "different shapes untouched" test_does_not_unify_different_shapes;
    tc "two differing literals unify n-way" test_unifies_two_differing_literals;
    tc "mismatched types untouched" test_does_not_unify_mismatched_types;
    tc "exact duplicates collapse" test_unifies_exact_duplicates;
    Alcotest.test_case "unified equivalence (randomized)" `Slow
      test_unified_equivalence_randomized;
    tc "engine plan uses unification" test_engine_uses_unification;
  ]
