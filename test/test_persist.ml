(** The durable usage-log store (lib/persist).

    Codec round-trips on random rows, the CRC reference vector, crash
    simulation (torn WAL tails, corrupted records), snapshot round-trips,
    and end-to-end kill-and-restart: a recovered engine must hold
    byte-identical log relations, the same clock, and give identical
    verdicts to an engine that never died — including across witness
    compaction (which checkpoints) and config changes (which re-scope
    persistence). *)

open Relational
open Datalawyer
module P = Persistence

let tc = Test_support.tc

(* Fresh scratch directory per test. *)
let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dl_persist_%d_%d" (Unix.getpid ()) !counter)
    in
    (if Sys.file_exists dir then
       Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f)));
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

(* Exact (bit-level) value equality: the codec must preserve floats by
   bit pattern, not just up to [Value.equal]'s numeric coercions. *)
let value_eq a b =
  match (a, b) with
  | Value.Float x, Value.Float y -> Int64.bits_of_float x = Int64.bits_of_float y
  | _ -> a = b

let row_eq a b = Array.length a = Array.length b && Array.for_all2 value_eq a b

let rows_eq a b = List.length a = List.length b && List.for_all2 row_eq a b

(* Codec ------------------------------------------------------------------- *)

let value_gen : Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [
      (1, return Value.Null);
      (2, map (fun b -> Value.Bool b) bool);
      (4, map (fun i -> Value.Int i) (oneof [ int; return max_int; return min_int ]));
      ( 3,
        map
          (fun f -> Value.Float (if Float.is_nan f then 0. else f))
          (oneof [ float; return infinity; return neg_infinity; return (-0.) ]) );
      (4, map (fun s -> Value.Str s) (string_size (int_range 0 24)));
    ]

let row_gen = QCheck.Gen.(map Array.of_list (list_size (int_range 0 8) value_gen))

let print_row r =
  "[" ^ String.concat "; " (Array.to_list (Array.map Value.to_sql r)) ^ "]"

let prop_row_roundtrip =
  QCheck.Test.make ~count:500 ~name:"codec round-trips random rows"
    (QCheck.make ~print:print_row row_gen)
    (fun row ->
      let b = Buffer.create 64 in
      P.Codec.w_row b row;
      let c = P.Codec.cursor (Buffer.contents b) in
      let row' = P.Codec.r_row c in
      P.Codec.expect_end c;
      row_eq row row')

let prop_commit_roundtrip =
  QCheck.Test.make ~count:200 ~name:"commit records round-trip"
    (QCheck.make
       ~print:(fun (clock, rows) ->
         Printf.sprintf "clock=%d rows=%s" clock
           (String.concat " " (List.map print_row rows)))
       QCheck.Gen.(pair nat (list_size (int_range 0 6) row_gen)))
    (fun (clock, rows) ->
      let r = P.Record.Commit { clock; increments = [ ("users", rows); ("r2", []) ] } in
      match P.Record.decode (P.Record.encode r) with
      | P.Record.Commit { clock = c'; increments = [ ("users", rows'); ("r2", []) ] } ->
        c' = clock && rows_eq rows rows'
      | _ -> false)

let crc_vectors () =
  Alcotest.(check int)
    "crc32(123456789)" 0xCBF43926
    (P.Crc32.string "123456789");
  Alcotest.(check int) "crc32(empty)" 0 (P.Crc32.string "");
  Alcotest.(check int)
    "incremental = whole"
    (P.Crc32.string "hello world")
    (P.Crc32.update (P.Crc32.string "hello ") "world" 0 5 |> fun _ ->
     P.Crc32.update 0 "hello world" 0 11)

let codec_rejects_garbage () =
  Alcotest.check_raises "truncated value"
    (P.Codec.Corrupt "truncated payload: need 8 bytes at offset 1 of 1")
    (fun () ->
      let c = P.Codec.cursor "\x03" in
      ignore (P.Codec.r_value c));
  let b = Buffer.create 8 in
  P.Codec.w_u8 b 9;
  match P.Codec.r_value (P.Codec.cursor (Buffer.contents b)) with
  | exception P.Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "unknown tag must raise"

(* Snapshot ---------------------------------------------------------------- *)

let snapshot_roundtrip () =
  let dir = temp_dir () in
  let path = Filename.concat dir "snapshot-00000007.dls" in
  let state =
    {
      P.Snapshot.clock = 42;
      policies =
        [ { P.Record.name = "P1"; source = "SELECT DISTINCT 'x' FROM users"; active_from = 3 } ];
      relations =
        [
          ( "users",
            {
              P.Snapshot.schema = [ ("ts", Ty.Int); ("uid", Ty.Int) ];
              rows = [ [| Value.Int 1; Value.Int 7 |]; [| Value.Int 2; Value.Int 9 |] ];
            } );
        ];
    }
  in
  P.Snapshot.write path state;
  let state' = P.Snapshot.read path in
  Alcotest.(check int) "clock" 42 state'.P.Snapshot.clock;
  (match state'.P.Snapshot.policies with
  | [ p ] ->
    Alcotest.(check string) "policy name" "P1" p.P.Record.name;
    Alcotest.(check int) "active_from" 3 p.P.Record.active_from
  | _ -> Alcotest.fail "one policy expected");
  match state'.P.Snapshot.relations with
  | [ ("users", r) ] ->
    Alcotest.(check bool) "rows" true
      (rows_eq r.P.Snapshot.rows [ [| Value.Int 1; Value.Int 7 |]; [| Value.Int 2; Value.Int 9 |] ])
  | _ -> Alcotest.fail "one relation expected"

(* WAL crash simulation ----------------------------------------------------- *)

let commit i = P.Record.Commit { clock = i; increments = [ ("users", [ [| Value.Int i; Value.Int 1 |] ]) ] }

let store_with_commits dir n =
  let store, recovered = P.Store.open_dir ~fsync:P.Store.Always dir in
  Alcotest.(check bool) "fresh dir" true (recovered = None);
  for i = 1 to n do
    match commit i with
    | P.Record.Commit { clock; increments } -> P.Store.log_commit store ~clock ~increments
    | _ -> assert false
  done;
  P.Store.close store

let wal_path dir = Filename.concat dir (P.Recovery.wal_file 0)

let torn_tail_drops_only_last () =
  let dir = temp_dir () in
  store_with_commits dir 3;
  (* Tear the final record: cut 3 bytes off the file. *)
  let size = (Unix.stat (wal_path dir)).Unix.st_size in
  Unix.truncate (wal_path dir) (size - 3);
  let store, recovered = P.Store.open_dir ~fsync:P.Store.Always dir in
  (match recovered with
  | None -> Alcotest.fail "expected recovered state"
  | Some r ->
    Alcotest.(check bool) "torn flagged" true r.P.Recovery.torn_dropped;
    Alcotest.(check int) "only the torn commit dropped" 2 r.P.Recovery.wal_records;
    Alcotest.(check int) "clock from last whole commit" 2 r.P.Recovery.state.P.Snapshot.clock;
    match r.P.Recovery.state.P.Snapshot.relations with
    | [ ("users", rel) ] ->
      Alcotest.(check bool) "two rows survive" true
        (rows_eq rel.P.Snapshot.rows
           [ [| Value.Int 1; Value.Int 1 |]; [| Value.Int 2; Value.Int 1 |] ])
    | _ -> Alcotest.fail "users relation expected");
  (* The torn bytes are gone from disk and appends work again. *)
  P.Store.log_commit store ~clock:3 ~increments:[];
  P.Store.close store;
  let r = P.Wal.read (wal_path dir) in
  Alcotest.(check bool) "file clean after truncation" false r.P.Wal.torn;
  Alcotest.(check int) "records on disk" 3 (List.length r.P.Wal.payloads)

let corruption_is_an_error () =
  let dir = temp_dir () in
  store_with_commits dir 3;
  (* Flip a byte inside the FIRST record's payload: mid-file corruption,
     not a torn tail — recovery must refuse, not silently drop. *)
  let path = wal_path dir in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd 20 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "\xff") 0 1);
  Unix.close fd;
  match P.Store.open_dir ~fsync:P.Store.Always dir with
  | exception P.Recovery.Recovery_error _ -> ()
  | _ -> Alcotest.fail "corrupted WAL must raise Recovery_error"

let missing_snapshot_is_an_error () =
  let dir = temp_dir () in
  (* A generation-3 WAL whose snapshot vanished: replay would silently
     resurrect a partial state, so recovery refuses. *)
  let w = P.Wal.open_append ~path:(Filename.concat dir (P.Recovery.wal_file 3)) ~fsync:P.Wal.Always in
  P.Wal.append w (P.Record.encode (commit 1));
  P.Wal.close w;
  match P.Recovery.run ~dir with
  | exception P.Recovery.Recovery_error _ -> ()
  | _ -> Alcotest.fail "WAL without its base snapshot must raise"

(* Engine end-to-end -------------------------------------------------------- *)

let base_db () =
  Test_support.db_of_script
    {|
    CREATE TABLE person (id INT, name TEXT);
    INSERT INTO person VALUES (1, 'ada'), (2, 'bob'), (3, 'cyd')
    |}

(* At most 3 queries ever for uid 1: time-dependent (whole history). *)
let budget_policy =
  "SELECT DISTINCT 'budget exceeded for user 1' AS errorMessage FROM users u \
   WHERE u.uid = 1 GROUP BY u.uid HAVING COUNT(DISTINCT u.ts) > 3"

(* Sliding window: more than [max] distinct ticks of uid 1 within [w]. *)
let window_policy ~w ~max =
  Printf.sprintf
    "SELECT DISTINCT 'window budget exceeded' AS errorMessage FROM users u, \
     clock c WHERE u.uid = 1 AND u.ts > c.ts - %d GROUP BY u.uid HAVING \
     COUNT(DISTINCT u.ts) > %d"
    w max

let outcome_sig = function
  | Engine.Accepted _ -> "accept"
  | Engine.Rejected (ms, _) -> "reject:" ^ String.concat "|" ms

let submit_ok engine ~uid sql =
  match Engine.submit engine ~uid sql with
  | Engine.Accepted _ -> ()
  | Engine.Rejected (ms, _) ->
    Alcotest.fail ("unexpected rejection: " ^ String.concat "; " ms)

let table_cells engine rel =
  Table.to_seq (Database.table (Engine.database engine) rel)
  |> Seq.map Row.cells |> List.of_seq

(* Byte-identical contents: compare through the codec. *)
let encode_cells rows =
  let b = Buffer.create 256 in
  P.Codec.w_rows b rows;
  Buffer.contents b

let check_same_log_state ~rels a b =
  List.iter
    (fun rel ->
      Alcotest.(check string)
        (rel ^ " byte-identical")
        (encode_cells (table_cells a rel))
        (encode_cells (table_cells b rel)))
    rels;
  Alcotest.(check int)
    "clock equal"
    (Usage_log.current_time (Engine.database a))
    (Usage_log.current_time (Engine.database b))

let recovered_engine_rejects_like_live () =
  let dir = temp_dir () in
  let a = Engine.create ~persist_dir:dir ~persist_fsync:P.Store.Always (base_db ()) in
  ignore (Engine.add_policy a ~name:"budget" budget_policy);
  for _ = 1 to 3 do
    submit_ok a ~uid:1 "SELECT name FROM person WHERE id = 1"
  done;
  (* Crash: no close, no flush — fsync Always means nothing is lost. *)
  let b = Engine.create ~persist_dir:dir ~persist_fsync:P.Store.Always (base_db ()) in
  check_same_log_state ~rels:[ "users" ] a b;
  (match Engine.policies b with
  | [ p ] -> Alcotest.(check string) "policy recovered" "budget" p.Policy.name
  | _ -> Alcotest.fail "expected exactly the recovered policy");
  (* The 4th uid-1 query violates the budget — in both engines. *)
  let probe = "SELECT name FROM person WHERE id = 2" in
  Alcotest.(check string)
    "same verdict" (outcome_sig (Engine.submit a ~uid:1 probe))
    (outcome_sig (Engine.submit b ~uid:1 probe));
  (match Engine.submit b ~uid:1 "SELECT 1 FROM person" with
  | Engine.Rejected _ -> ()
  | Engine.Accepted _ -> Alcotest.fail "recovered engine lost enforcement history");
  (* Control: a fresh engine without the history accepts the same query. *)
  let c = Engine.create (base_db ()) in
  ignore (Engine.add_policy c ~name:"budget" budget_policy);
  match Engine.submit c ~uid:1 "SELECT 1 FROM person" with
  | Engine.Accepted _ -> Engine.close a; Engine.close b
  | Engine.Rejected _ -> Alcotest.fail "control engine should accept"

let kill_and_restart_100 () =
  let dir = temp_dir () in
  let a = Engine.create ~persist_dir:dir ~persist_fsync:P.Store.Always (base_db ()) in
  ignore (Engine.add_policy a ~name:"window" (window_policy ~w:50 ~max:25));
  (* 120 accepted submissions; uid 1 appears in a third of them, always
     below the window threshold. Witness compaction prunes rows leaving
     the window, so checkpoints fire along the way. *)
  for i = 1 to 120 do
    submit_ok a ~uid:(i mod 3) "SELECT COUNT(*) FROM person"
  done;
  let store = Option.get (Engine.persist_store a) in
  Alcotest.(check bool) "compaction triggered checkpoints" true (P.Store.generation store > 0);
  (* Crash and recover. *)
  let b = Engine.create ~persist_dir:dir ~persist_fsync:P.Store.Always (base_db ()) in
  check_same_log_state ~rels:[ "users" ] a b;
  (* Identical verdicts on a mixed probe workload (some get rejected as
     uid 1 exceeds the window budget, then accepted again as it slides). *)
  for i = 1 to 40 do
    let uid = if i mod 4 = 0 then 0 else 1 in
    Alcotest.(check string)
      (Printf.sprintf "probe %d verdict" i)
      (outcome_sig (Engine.submit a ~uid "SELECT id FROM person WHERE id = 3"))
      (outcome_sig (Engine.submit b ~uid "SELECT id FROM person WHERE id = 3"))
  done;
  check_same_log_state ~rels:[ "users" ] a b;
  Engine.close a;
  Engine.close b

let compaction_checkpoint_bounds_disk () =
  let dir = temp_dir () in
  let a = Engine.create ~persist_dir:dir ~persist_fsync:P.Store.Always (base_db ()) in
  (* A 5-tick window can hold at most 5 distinct ticks, so max = 5 keeps
     the stream violation-free while still compacting expired rows. *)
  ignore (Engine.add_policy a ~name:"window" (window_policy ~w:5 ~max:5));
  let store = Option.get (Engine.persist_store a) in
  for _ = 1 to 30 do
    submit_ok a ~uid:1 "SELECT COUNT(*) FROM person"
  done;
  let bytes_30 = P.Store.disk_bytes store in
  Alcotest.(check bool) "checkpoints happened" true (P.Store.generation store > 0);
  for _ = 1 to 30 do
    submit_ok a ~uid:1 "SELECT COUNT(*) FROM person"
  done;
  (* The in-memory log is bounded by the window, so with compaction
     wired to checkpointing the on-disk footprint stays bounded too
     instead of growing linearly with the WAL. *)
  let bytes_60 = P.Store.disk_bytes store in
  Alcotest.(check bool)
    (Printf.sprintf "disk stays bounded (%d vs %d bytes)" bytes_30 bytes_60)
    true
    (bytes_60 <= bytes_30 + 256);
  let b = Engine.create ~persist_dir:dir ~persist_fsync:P.Store.Always (base_db ()) in
  check_same_log_state ~rels:[ "users" ] a b;
  Engine.close a;
  Engine.close b

let rejects_leave_wal_untouched () =
  let dir = temp_dir () in
  let a = Engine.create ~persist_dir:dir ~persist_fsync:P.Store.Always (base_db ()) in
  ignore (Engine.add_policy a ~name:"budget" budget_policy);
  for _ = 1 to 3 do
    submit_ok a ~uid:1 "SELECT 1 FROM person"
  done;
  let store = Option.get (Engine.persist_store a) in
  let records_before = P.Store.wal_records store in
  let bytes_before = P.Store.disk_bytes store in
  (match Engine.submit a ~uid:1 "SELECT 2 FROM person" with
  | Engine.Rejected _ -> ()
  | Engine.Accepted _ -> Alcotest.fail "4th uid-1 query should be rejected");
  Alcotest.(check int) "no WAL record for a reject" records_before (P.Store.wal_records store);
  Alcotest.(check int) "no bytes for a reject" bytes_before (P.Store.disk_bytes store);
  Engine.close a

(* The set_config regression: a policy that is TI-rewritten (so its log
   relation is outside the persistence scope) becomes time-dependent when
   TI rewriting is switched off — the scope must be recomputed on plan
   invalidation or its tuples silently skip persistence. *)
let set_config_rescopes_persistence () =
  let dir = temp_dir () in
  (* Compaction off so retained rows are the raw increments; the point
     here is scope recomputation, not witnesses. *)
  let cfg_ti = { Engine.default_config with log_compaction = false } in
  let a =
    Engine.create ~config:cfg_ti ~persist_dir:dir ~persist_fsync:P.Store.Always
      (base_db ())
  in
  ignore (Engine.add_policy a ~name:"no9" "SELECT DISTINCT 'uid 9 banned' FROM users u WHERE u.uid = 9");
  for _ = 1 to 3 do
    submit_ok a ~uid:1 "SELECT 1 FROM person"
  done;
  Alcotest.(check (list string)) "TI policy: nothing needs storing" []
    (Engine.plan a).Engine.store_rels;
  (* Disable TI rewriting: the policy becomes time-dependent and users
     enters the persistence scope. *)
  Engine.set_config a { cfg_ti with time_independent = false };
  for _ = 1 to 3 do
    submit_ok a ~uid:2 "SELECT 2 FROM person"
  done;
  Alcotest.(check (list string)) "users now persisted" [ "users" ]
    (Engine.plan a).Engine.store_rels;
  let b = Engine.create ~persist_dir:dir ~persist_fsync:P.Store.Always (base_db ()) in
  check_same_log_state ~rels:[ "users" ] a b;
  Alcotest.(check bool) "post-flip rows were persisted" true
    (table_cells b "users" <> []);
  Engine.close a;
  Engine.close b

let policy_removal_recovers () =
  let dir = temp_dir () in
  let a = Engine.create ~persist_dir:dir ~persist_fsync:P.Store.Always (base_db ()) in
  ignore (Engine.add_policy a ~name:"budget" budget_policy);
  ignore (Engine.add_policy a ~name:"other" (window_policy ~w:10 ~max:9));
  submit_ok a ~uid:1 "SELECT 1 FROM person";
  Engine.remove_policy a "budget";
  let b = Engine.create ~persist_dir:dir ~persist_fsync:P.Store.Always (base_db ()) in
  Alcotest.(check (list string)) "only the surviving policy recovers" [ "other" ]
    (List.map (fun p -> p.Policy.name) (Engine.policies b));
  Engine.close a;
  Engine.close b

let suite =
  [
    tc "crc32 reference vectors" crc_vectors;
    tc "codec rejects garbage" codec_rejects_garbage;
    tc "snapshot round-trip" snapshot_roundtrip;
    tc "torn WAL tail drops only the torn commit" torn_tail_drops_only_last;
    tc "mid-file corruption raises Recovery_error" corruption_is_an_error;
    tc "WAL without base snapshot raises" missing_snapshot_is_an_error;
    tc "recovered engine rejects like the live one" recovered_engine_rejects_like_live;
    tc "kill-and-restart after 120 submissions" kill_and_restart_100;
    tc "compaction checkpoints bound disk size" compaction_checkpoint_bounds_disk;
    tc "rejects leave the WAL untouched" rejects_leave_wal_untouched;
    tc "set_config recomputes persistence scope" set_config_rescopes_persistence;
    tc "policy removal survives recovery" policy_removal_recovers;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_row_roundtrip; prop_commit_roundtrip ]
