(* Unit tests for the Parallel.Pool domain pool: deterministic result
   ordering, exception capture with join-before-reraise, the helping
   caller's task accounting, the shared registry, and shutdown. *)

open Test_support

let with_pool ~workers f =
  let pool = Parallel.Pool.create ~workers in
  Fun.protect ~finally:(fun () -> Parallel.Pool.shutdown pool) (fun () -> f pool)

let test_create_invalid () =
  match Parallel.Pool.create ~workers:0 with
  | _ -> Alcotest.fail "workers:0 must be rejected"
  | exception Invalid_argument _ -> ()

let test_submit_await () =
  with_pool ~workers:2 @@ fun pool ->
  let t1 = Parallel.Pool.submit pool (fun () -> 6 * 7) in
  let t2 = Parallel.Pool.submit pool (fun () -> "ok") in
  Alcotest.(check int) "int task" 42 (Parallel.Pool.await t1);
  Alcotest.(check string) "polymorphic tasks coexist" "ok" (Parallel.Pool.await t2);
  Alcotest.(check int) "workers" 2 (Parallel.Pool.workers pool)

let test_await_reraises () =
  with_pool ~workers:1 @@ fun pool ->
  let t = Parallel.Pool.submit pool (fun () -> failwith "boom") in
  match Parallel.Pool.await t with
  | _ -> Alcotest.fail "must re-raise"
  | exception Failure m -> Alcotest.(check string) "original exception" "boom" m

let test_map_preserves_order () =
  with_pool ~workers:3 @@ fun pool ->
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "squares in input order"
    (List.map (fun x -> x * x) xs)
    (Parallel.Pool.map pool (fun x -> x * x) xs)

let test_map_order_under_skew () =
  (* Early tasks sleep longest, so completion order is roughly reversed;
     results must still come back in input order. *)
  with_pool ~workers:3 @@ fun pool ->
  let xs = List.init 24 Fun.id in
  let ys =
    Parallel.Pool.map pool
      (fun x ->
        if x < 6 then Unix.sleepf 0.003;
        x + 1)
      xs
  in
  Alcotest.(check (list int)) "input order despite skew" (List.map succ xs) ys

let test_map_joins_before_reraise () =
  with_pool ~workers:2 @@ fun pool ->
  let ran = Atomic.make 0 in
  (match
     Parallel.Pool.map pool
       (fun x ->
         Atomic.incr ran;
         if x = 3 then failwith "boom3";
         if x = 7 then failwith "boom7";
         x)
       (List.init 10 Fun.id)
   with
  | _ -> Alcotest.fail "must re-raise"
  | exception Failure m ->
    Alcotest.(check string) "first failure in input order" "boom3" m);
  Alcotest.(check int) "every task finished before the re-raise" 10
    (Atomic.get ran)

let test_map_small_inputs_inline () =
  with_pool ~workers:2 @@ fun pool ->
  let before = Parallel.Pool.tasks_run pool in
  Alcotest.(check (list int)) "empty" [] (Parallel.Pool.map pool succ []);
  Alcotest.(check (list int)) "singleton" [ 42 ] (Parallel.Pool.map pool succ [ 41 ]);
  Alcotest.(check int) "ran inline, no pool tasks" before
    (Parallel.Pool.tasks_run pool)

let test_tasks_run_counts_batch () =
  with_pool ~workers:2 @@ fun pool ->
  let before = Parallel.Pool.tasks_run pool in
  ignore (Parallel.Pool.map pool succ (List.init 17 Fun.id));
  Alcotest.(check int) "one task per element (helpers included)" (before + 17)
    (Parallel.Pool.tasks_run pool)

let test_sequential_batches () =
  (* The engine reuses one pool across submissions: batches must not
     interfere. *)
  with_pool ~workers:2 @@ fun pool ->
  for k = 1 to 20 do
    let xs = List.init k (fun i -> i * k) in
    Alcotest.(check (list int))
      (Printf.sprintf "batch %d" k)
      (List.map (fun x -> x + k) xs)
      (Parallel.Pool.map pool (fun x -> x + k) xs)
  done

let test_shutdown_semantics () =
  let pool = Parallel.Pool.create ~workers:2 in
  ignore (Parallel.Pool.map pool succ [ 1; 2; 3 ]);
  Parallel.Pool.shutdown pool;
  Parallel.Pool.shutdown pool (* idempotent *);
  match Parallel.Pool.submit pool (fun () -> 0) with
  | _ -> Alcotest.fail "submit after shutdown must raise"
  | exception Invalid_argument _ -> ()

let test_shared_registry () =
  let a = Parallel.Pool.shared ~workers:2 in
  let b = Parallel.Pool.shared ~workers:2 in
  let c = Parallel.Pool.shared ~workers:3 in
  Alcotest.(check bool) "same size, same pool" true (a == b);
  Alcotest.(check bool) "distinct sizes, distinct pools" true (not (a == c));
  Alcotest.(check int) "requested width" 3 (Parallel.Pool.workers c);
  (* shared pools live for the process: still usable after other tests
     shut their private pools down *)
  Alcotest.(check (list int)) "shared pool works" [ 2; 3; 4 ]
    (Parallel.Pool.map a succ [ 1; 2; 3 ])

let suite =
  [
    tc "create rejects workers < 1" test_create_invalid;
    tc "submit and await" test_submit_await;
    tc "await re-raises task exceptions" test_await_reraises;
    tc "map preserves input order" test_map_preserves_order;
    tc "map ordering under completion skew" test_map_order_under_skew;
    tc "map joins the batch before re-raising" test_map_joins_before_reraise;
    tc "map runs empty/singleton inline" test_map_small_inputs_inline;
    tc "tasks_run counts every batch element" test_tasks_run_counts_batch;
    tc "sequential batches on one pool" test_sequential_batches;
    tc "shutdown is idempotent and final" test_shutdown_semantics;
    tc "shared registry keyed by width" test_shared_registry;
  ]
