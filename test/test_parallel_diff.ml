(* Differential property tests for the domain-pool runtime: the same
   randomized workload — submissions, rejections, mid-run policy
   registration — must behave bit-identically at [domains = 1] (the
   serial path, no pool) and [domains = 4] (pooled fan-out of policy,
   partial-policy and witness-mark queries). Compared per step: the
   outcome tag, the violation-message list (in order), the accepted
   result rows (in order); and at the end: the full contents (tid +
   cells) of every log relation and the clock — so compaction retain
   sets must match tuple for tuple. *)

open Relational
open Datalawyer

(* Scripted operations ------------------------------------------------------ *)

type op =
  | Submit of int * int  (** uid, query index *)
  | Register of int  (** policy-template index *)

let queries =
  [|
    "SELECT v FROM data WHERE k = 1";
    "SELECT k, v FROM data";
    "SELECT COUNT(*) FROM data";
    "SELECT d.v FROM data d, data e WHERE d.k = e.k AND e.v = 'b'";
  |]

(* Policies over every standard log relation, with thresholds small
   enough that rejections actually occur in short scripts. *)
let templates =
  [|
    "SELECT DISTINCT 'uid 2 blocked' FROM users u WHERE u.uid = 2";
    "SELECT DISTINCT 'quota uid 1' FROM users u, clock c WHERE u.uid = 1 AND \
     u.ts > c.ts - 4 HAVING COUNT(DISTINCT u.ts) > 2";
    "SELECT DISTINCT 'provenance cap' FROM provenance p, clock c WHERE p.irid \
     = 'data' AND p.ts > c.ts - 6 HAVING COUNT(DISTINCT p.itid) > 4";
    "SELECT DISTINCT 'schema width' FROM schema s, clock c WHERE s.irid = \
     'data' AND s.ts > c.ts - 5 HAVING COUNT(DISTINCT s.icid) > 1";
    "SELECT DISTINCT 'join fanout' FROM provenance p, users u, clock c WHERE \
     p.ts = u.ts AND u.uid = 3 AND p.irid = 'data' AND p.ts > c.ts - 8 HAVING \
     COUNT(DISTINCT p.itid) > 3";
  |]

type script = {
  strategy : Engine.strategy;
  unification : bool;
  improved_partial : bool;
  preemptive : bool;
  initial : int list;  (** template indices registered before the stream *)
  ops : op list;
}

(* Deterministic rendering of one engine run ------------------------------- *)

let render_row (r : Executor.row_out) =
  String.concat ","
    (Array.to_list (Array.map Value.to_string r.Executor.values))

let step_trace engine op =
  match op with
  | Register ti ->
    let n = List.length (Engine.policies engine) in
    let name = Printf.sprintf "p%d" n in
    ignore (Engine.add_policy engine ~name templates.(ti));
    Printf.sprintf "register %s := template %d" name ti
  | Submit (uid, qi) -> (
    match Engine.submit engine ~uid queries.(qi) with
    | Engine.Accepted (result, _) ->
      Printf.sprintf "uid %d q%d accepted [%s]" uid qi
        (String.concat "; " (List.map render_row result.Executor.out_rows))
    | Engine.Rejected (messages, _) ->
      Printf.sprintf "uid %d q%d REJECTED [%s]" uid qi
        (String.concat "; " messages))

let dump_logs engine =
  let db = Engine.database engine in
  List.map
    (fun rel ->
      let rows =
        Table.fold
          (fun acc row ->
            Printf.sprintf "%d:%s" (Row.tid row)
              (String.concat ","
                 (Array.to_list (Array.map Value.to_string (Row.cells row))))
            :: acc)
          []
          (Database.table db rel)
      in
      Printf.sprintf "%s={%s}" rel (String.concat " " (List.rev rows)))
    [ "users"; "schema"; "provenance"; "clock" ]

let run_script ~domains script =
  let db = Database.create () in
  ignore
    (Database.exec_script db
       "CREATE TABLE data (k INT, v TEXT); INSERT INTO data VALUES (1, 'a'), \
        (2, 'b'), (3, 'c')");
  let config =
    {
      Engine.default_config with
      Engine.strategy = script.strategy;
      unification = script.unification;
      improved_partial = script.improved_partial;
      preemptive = script.preemptive;
      domains;
    }
  in
  let engine = Engine.create ~config db in
  List.iteri
    (fun i ti ->
      ignore (Engine.add_policy engine ~name:(Printf.sprintf "p%d" i) templates.(ti)))
    script.initial;
  let trace = List.map (step_trace engine) script.ops in
  trace @ dump_logs engine

(* Generator ----------------------------------------------------------------- *)

let script_gen : script QCheck.Gen.t =
  let open QCheck.Gen in
  let op_gen =
    frequency
      [
        ( 6,
          map2
            (fun uid qi -> Submit (uid, qi))
            (int_range 1 3)
            (int_range 0 (Array.length queries - 1)) );
        (1, map (fun ti -> Register ti) (int_range 0 (Array.length templates - 1)));
      ]
  in
  let* strategy = oneofl [ Engine.Union_all; Engine.Serial; Engine.Interleaved ] in
  let* unification = bool in
  let* improved_partial = bool in
  let* preemptive = bool in
  let* initial =
    list_size (int_range 0 3) (int_range 0 (Array.length templates - 1))
  in
  let+ ops = list_size (int_range 1 12) op_gen in
  { strategy; unification; improved_partial; preemptive; initial; ops }

let print_script s =
  Printf.sprintf "strategy=%s unif=%b ip=%b pre=%b initial=[%s] ops=[%s]"
    (match s.strategy with
    | Engine.Union_all -> "union"
    | Engine.Serial -> "serial"
    | Engine.Interleaved -> "interleaved")
    s.unification s.improved_partial s.preemptive
    (String.concat ";" (List.map string_of_int s.initial))
    (String.concat ";"
       (List.map
          (function
            | Submit (u, q) -> Printf.sprintf "S%d.%d" u q
            | Register t -> Printf.sprintf "R%d" t)
          s.ops))

let script_arb = QCheck.make ~print:print_script script_gen

(* Properties ---------------------------------------------------------------- *)

let prop_serial_parallel_identical =
  QCheck.Test.make
    ~name:"domains=1 and domains=4 produce identical traces and logs"
    ~count:300 script_arb
    (fun script ->
      run_script ~domains:1 script = run_script ~domains:4 script)

(* The same check through the full workload stack (Table 2 policies over
   the synthetic MIMIC instance), fewer cases since each is costlier. *)
let prop_workload_identical =
  let stream_gen =
    QCheck.Gen.list_size (QCheck.Gen.int_range 1 10)
      (QCheck.Gen.pair (QCheck.Gen.int_range 0 2)
         (QCheck.Gen.oneofl [ "W1"; "W2"; "W3" ]))
  in
  QCheck.Test.make
    ~name:"workload decisions identical at domains=1 and domains=4" ~count:15
    (QCheck.make stream_gen)
    (fun stream ->
      let run domains =
        let s =
          Workload.Runner.make
            ~mimic:
              {
                Mimic.Generate.small_config with
                n_patients = 30;
                events_per_patient = 4;
              }
            ~params:
              {
                Workload.Policies.default_params with
                p1_window = 4;
                p1_max_users = 1;
                p5_window = 6;
                p5_max_fraction = 0.3;
              }
            ~config:{ Engine.default_config with Engine.domains = domains }
            ()
        in
        let decisions =
          List.map
            (fun (uid, qn) ->
              let q = Workload.Runner.query s qn in
              match
                Engine.submit s.Workload.Runner.engine ~uid
                  q.Workload.Queries.sql
              with
              | Engine.Accepted (r, _) ->
                "A:" ^ String.concat ";" (List.map render_row r.Executor.out_rows)
              | Engine.Rejected (ms, _) -> "R:" ^ String.concat ";" ms)
            stream
        in
        decisions @ dump_logs s.Workload.Runner.engine
      in
      run 1 = run 4)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_serial_parallel_identical; prop_workload_identical ]
