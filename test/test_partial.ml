open Relational
open Datalawyer
open Test_support

let setup () =
  let db = sample_db () in
  let e = Engine.create db in
  let is_log rel = Catalog.is_log (Database.catalog db) rel in
  (db, e, is_log)

let p2b_like =
  (* Example 4.5's P2b shape, over the sample db's dept table as "Groups" *)
  "SELECT DISTINCT 'v' FROM users u, schema s, dept g \
   WHERE u.ts = s.ts AND s.irid = 'emp' AND g.dname = 'eng' \
   HAVING COUNT(DISTINCT u.uid) > 10"

let test_partial_shapes () =
  let _, e, is_log = setup () in
  let p = Engine.add_policy e ~name:"p2b" p2b_like in
  (* S = {} : both log relations removed -> P2d shape *)
  let p2d = Partial.of_query ~is_log ~available:[] p.Policy.query in
  (match p2d with
  | Ast.Select s ->
    Alcotest.(check int) "only dept remains" 1 (List.length s.Ast.from);
    Alcotest.(check bool) "having dropped" true (s.Ast.having = None)
  | _ -> Alcotest.fail "select expected");
  (* S = {users} : P2c shape, having restored *)
  let p2c = Partial.of_query ~is_log ~available:[ "users" ] p.Policy.query in
  (match p2c with
  | Ast.Select s ->
    Alcotest.(check int) "users + dept" 2 (List.length s.Ast.from);
    Alcotest.(check bool) "having kept (mentions only users)" true
      (s.Ast.having <> None);
    (* the u.ts = s.ts conjunct mentioning schema must be gone *)
    let sql = Sql_print.query p2c in
    Alcotest.(check bool) "schema gone" false
      (Test_policy.contains_substring sql "schema")
  | _ -> Alcotest.fail "select expected");
  (* S = all : identity *)
  let full =
    Partial.of_query ~is_log ~available:[ "users"; "schema" ] p.Policy.query
  in
  Alcotest.(check bool) "full availability is identity" true
    (Ast.equal_query full p.Policy.query)

(* Lemma 4.4: π ⇒ πS on randomized instances — whenever the full policy
   returns rows, so does every partial policy. *)
let test_partial_implication_randomized () =
  let rng = Mimic.Rng.create ~seed:11 in
  for _trial = 1 to 30 do
    let db, e, is_log = setup () in
    let threshold = Mimic.Rng.int rng 3 in
    let p =
      Engine.add_policy e ~name:"rnd"
        (Printf.sprintf
           "SELECT DISTINCT 'v' FROM users u, schema s WHERE u.ts = s.ts AND \
            s.irid = 'emp' HAVING COUNT(DISTINCT u.uid) > %d"
           threshold)
    in
    let users = Database.table db "users" in
    let sch = Database.table db "schema" in
    for ts = 1 to 8 do
      if Mimic.Rng.bool rng then
        ignore (Table.insert users [| i ts; i (Mimic.Rng.int rng 4) |]);
      if Mimic.Rng.bool rng then
        ignore
          (Table.insert sch
             [|
               i ts;
               s "c";
               s (if Mimic.Rng.bool rng then "emp" else "dept");
               s "c";
               b false;
             |])
    done;
    let holds q = not (Executor.is_empty (Database.catalog db) q) in
    let full = holds p.Policy.query in
    List.iter
      (fun available ->
        let pq = Partial.of_query ~is_log ~available p.Policy.query in
        if full && not (holds pq) then
          Alcotest.failf "partial policy (S=%s) refuted a violated policy"
            (String.concat "," available))
      [ []; [ "users" ]; [ "schema" ] ]
  done

(* Interleaved evaluation avoids generating expensive logs when a cheap
   partial policy already proves compliance — the uid=0 fast path of §5.4. *)
let test_interleaved_skips_provenance () =
  let mimic = Mimic.Generate.small_config in
  let s =
    Workload.Runner.make ~mimic
      ~config:{ Engine.default_config with Engine.unification = false }
      ~policy_names:[ "P5" ] ()
  in
  let w4 = Workload.Runner.query s "W4" in
  (* uid 0: P5 applies to uid 1 only; the users partial policy prunes it *)
  (match Engine.submit s.Workload.Runner.engine ~uid:0 w4.Workload.Queries.sql with
  | Engine.Accepted (_, st) ->
    Alcotest.(check int) "no provenance rows logged for uid 0" 0
      (Engine.log_size s.Workload.Runner.engine "provenance");
    Alcotest.(check bool) "few policy calls" true (st.Stats.policy_calls <= 2)
  | Engine.Rejected _ -> Alcotest.fail "uid 0 must pass");
  (* uid 1 on a small query: provenance must be generated and kept *)
  let w2 = Workload.Runner.query s "W2" in
  (match Engine.submit s.Workload.Runner.engine ~uid:1 w2.Workload.Queries.sql with
  | Engine.Accepted _ ->
    Alcotest.(check bool) "provenance logged for uid 1" true
      (Engine.log_size s.Workload.Runner.engine "provenance" > 0)
  | Engine.Rejected _ -> Alcotest.fail "uid 1 under threshold must pass");
  (* uid 1 on W4 (touches ~60% of patients): genuinely violates P5 *)
  match Engine.submit s.Workload.Runner.engine ~uid:1 w4.Workload.Queries.sql with
  | Engine.Rejected _ -> ()
  | Engine.Accepted _ -> Alcotest.fail "uid 1 over threshold must be rejected"

let test_interleaved_policy_calls_grow_with_logs () =
  let db = sample_db () in
  (* relevance off: the index would skip the uid-77 policy outright
     (zero calls) before the πS partial this test pins ever runs *)
  let e =
    Engine.create
      ~config:
        {
          Engine.default_config with
          Engine.unification = false;
          relevance = false;
        }
      db
  in
  ignore
    (Engine.add_policy e ~name:"deep"
       "SELECT DISTINCT 'v' FROM users u, schema s, provenance p \
        WHERE u.ts = s.ts AND s.ts = p.ts AND u.uid = 77 AND p.irid = 'emp'");
  match Engine.submit e ~uid:3 "SELECT name FROM emp WHERE id = 1" with
  | Engine.Accepted (_, st) ->
    (* pruned at the first (users) partial: exactly one policy call *)
    Alcotest.(check int) "pruned after users" 1 st.Stats.policy_calls
  | Engine.Rejected _ -> Alcotest.fail "must pass"

let suite =
  [
    tc "partial policy shapes (Example 4.5)" test_partial_shapes;
    Alcotest.test_case "Lemma 4.4 randomized" `Slow test_partial_implication_randomized;
    tc "interleaved skips provenance (uid 0)" test_interleaved_skips_provenance;
    tc "interleaved prunes early" test_interleaved_policy_calls_grow_with_logs;
  ]
