(* Differential property tests for the scale machinery: n-way template
   unification (one shape, many lifted constants), the policy relevance
   index and shared-subplan admission. The same scripted workload —
   submissions, admission batches, mid-stream policy registration, DDL,
   plain-table DML — must produce identical verdicts, violation-message
   SETS, accepted rows and final log contents with the optimizations on
   (unification + relevance + shared scans, delta on or off) and with
   the fully unrolled naive configuration (everything off). Messages
   are compared as sorted sets: a unified policy reports its firing
   members in constants-table row order, the unrolled set in
   registration order. Deterministic pins then check the machinery
   actually engages — groups form, skips happen, skipped policies fire
   again after the exact mutations that invalidate their proofs — since
   the differential property alone would pass if everything silently
   fell back. *)

open Relational
open Datalawyer

let tc = Test_support.tc

(* Scripted operations ------------------------------------------------------ *)

type op =
  | Submit of int * int  (** uid, query index *)
  | Batch of (int * int) list  (** concurrent admission batch *)
  | Register of int  (** policy-template index *)
  | Ddl of int  (** DDL-statement index: bumps the catalog generation *)
  | Mutate of int  (** plain-table DML index: bumps version counters *)

let queries =
  [|
    "SELECT v FROM data WHERE k = 1";
    "SELECT k, v FROM data";
    "SELECT COUNT(*) FROM data";
    "SELECT d.v FROM data d, data e WHERE d.k = e.k AND e.v = 'b'";
  |]

let per_uid uid =
  Templates.no_access ~relation:"data" ~subject:(Templates.User uid)
    ~message:(Printf.sprintf "uid %d off data" uid)
    ()

(* Three same-shape per-user prohibitions (unification folds them into
   one policy + constants table, with the message among the lifted
   literals), a plain-table join (relevance enumerates [banned.uid] and
   guards it, so the [banned] mutations below must re-fire it) and a
   clock/HAVING quota (ineligible for both unification's SPJ rewrite
   paths and the relevance index — the fallback path must agree too). *)
let templates =
  [|
    per_uid 1;
    per_uid 2;
    per_uid 3;
    "SELECT DISTINCT 'banned uid' FROM users u, banned b WHERE u.uid = b.uid";
    "SELECT DISTINCT 'quota uid 2' FROM users u, clock c WHERE u.uid = 2 AND \
     u.ts > c.ts - 4 HAVING COUNT(DISTINCT u.ts) > 2";
  |]

let ddls =
  [|
    "CREATE INDEX us_users_uid ON users USING hash (uid)";
    "DROP INDEX us_users_uid";
    "CREATE INDEX us_data_k ON data USING sorted (k)";
    "DROP INDEX us_data_k";
  |]

(* The [banned] flips change template 3's verdict for uid 2; a stale
   relevance enumeration or missed version guard keeps skipping the
   policy and fails the diff. *)
let mutations =
  [|
    "INSERT INTO banned VALUES (2)";
    "DELETE FROM banned WHERE uid = 2";
    "UPDATE data SET v = 'z' WHERE k = 2";
    "INSERT INTO data VALUES (9, 'i')";
  |]

type script = {
  strategy : Engine.strategy;
  ti : bool;
  delta : bool;  (** same in both legs: crossed with the scaled stack *)
  compaction : bool;
  domains : int;
  initial : int list;
  ops : op list;
}

(* Deterministic rendering of one engine run ------------------------------- *)

let render_row (r : Executor.row_out) =
  String.concat ","
    (Array.to_list (Array.map Value.to_string r.Executor.values))

(* Message SETS: exact-duplicate policies collapse under unification, so
   the naive run may repeat a message the unified run reports once. *)
let render_messages messages =
  String.concat "; " (List.sort_uniq compare messages)

let dump_logs engine =
  let db = Engine.database engine in
  List.map
    (fun rel ->
      let rows =
        Table.fold
          (fun acc row ->
            Printf.sprintf "%d:%s" (Row.tid row)
              (String.concat ","
                 (Array.to_list (Array.map Value.to_string (Row.cells row))))
            :: acc)
          []
          (Database.table db rel)
      in
      Printf.sprintf "%s={%s}" rel (String.concat " " (List.rev rows)))
    [ "users"; "schema"; "provenance"; "clock" ]

let run_script ~scaled script =
  let config =
    {
      Engine.default_config with
      Engine.strategy = script.strategy;
      time_independent = script.ti;
      log_compaction = script.compaction;
      preemptive = false;
      domains = script.domains;
      delta = script.delta;
      unification = scaled;
      relevance = scaled;
      shared_scans = scaled;
    }
  in
  let db = Database.create () in
  ignore
    (Database.exec_script db
       "CREATE TABLE data (k INT, v TEXT); INSERT INTO data VALUES (1, 'a'), \
        (2, 'b'), (3, 'c'); CREATE TABLE banned (uid INT); INSERT INTO \
        banned VALUES (9)");
  let engine = Engine.create ~config db in
  List.iteri
    (fun i ti ->
      ignore
        (Engine.add_policy engine ~name:(Printf.sprintf "p%d" i) templates.(ti)))
    script.initial;
  let render_outcome = function
    | Engine.Accepted (result, _) ->
      Printf.sprintf "accepted [%s]"
        (String.concat "; " (List.map render_row result.Executor.out_rows))
    | Engine.Rejected (messages, _) ->
      Printf.sprintf "REJECTED [%s]" (render_messages messages)
  in
  let step op =
    try
      match op with
      | Register ti ->
        let n = List.length (Engine.policies engine) in
        let name = Printf.sprintf "p%d" n in
        ignore (Engine.add_policy engine ~name templates.(ti));
        Printf.sprintf "register %s := template %d" name ti
      | Submit (uid, qi) ->
        Printf.sprintf "uid %d q%d %s" uid qi
          (render_outcome (Engine.submit engine ~uid queries.(qi)))
      | Batch members ->
        let subs =
          List.map
            (fun (uid, qi) ->
              {
                Engine.batch_uid = uid;
                batch_extra = [];
                batch_query = Parser.query queries.(qi);
              })
            members
        in
        Engine.submit_batch engine subs
        |> List.map (function
             | Ok outcome -> render_outcome outcome
             | Error e -> "exn " ^ Printexc.to_string e)
        |> String.concat " | "
        |> Printf.sprintf "batch (%s)"
      | Ddl di -> (
        match Dml.exec (Database.catalog db) (Parser.stmt ddls.(di)) with
        | Dml.Created what -> Printf.sprintf "ddl %d created %s" di what
        | Dml.Dropped what -> Printf.sprintf "ddl %d dropped %s" di what
        | Dml.Affected n -> Printf.sprintf "ddl %d affected %d" di n
        | Dml.Rows _ -> Printf.sprintf "ddl %d rows" di)
      | Mutate mi -> (
        match Dml.exec (Database.catalog db) (Parser.stmt mutations.(mi)) with
        | Dml.Affected n -> Printf.sprintf "mutate %d affected %d" mi n
        | _ -> Printf.sprintf "mutate %d" mi)
    with Errors.Sql_error _ as e -> "error: " ^ Errors.to_string e
  in
  let trace = List.map step script.ops in
  let logs = dump_logs engine in
  Engine.close engine;
  trace @ logs

(* Generator ----------------------------------------------------------------- *)

let script_gen : script QCheck.Gen.t =
  let open QCheck.Gen in
  let member = pair (int_range 1 3) (int_range 0 (Array.length queries - 1)) in
  let op_gen =
    frequency
      [
        (7, map (fun (uid, qi) -> Submit (uid, qi)) member);
        (2, map (fun ms -> Batch ms) (list_size (int_range 2 3) member));
        (1, map (fun ti -> Register ti) (int_range 0 (Array.length templates - 1)));
        (1, map (fun di -> Ddl di) (int_range 0 (Array.length ddls - 1)));
        (1, map (fun mi -> Mutate mi) (int_range 0 (Array.length mutations - 1)));
      ]
  in
  let* strategy = oneofl [ Engine.Union_all; Engine.Serial; Engine.Interleaved ] in
  let* ti = bool in
  let* delta = bool in
  let* compaction = bool in
  (* a sprinkle of pooled runs: the skip/shared machinery must stay
     deterministic when the policy batch fans out over domains *)
  let* domains = frequency [ (4, return 1); (1, return 3) ] in
  let* initial =
    list_size (int_range 0 4) (int_range 0 (Array.length templates - 1))
  in
  let+ ops = list_size (int_range 1 14) op_gen in
  { strategy; ti; delta; compaction; domains; initial; ops }

let print_script s =
  Printf.sprintf
    "strategy=%s ti=%b delta=%b comp=%b domains=%d initial=[%s] ops=[%s]"
    (match s.strategy with
    | Engine.Union_all -> "union"
    | Engine.Serial -> "serial"
    | Engine.Interleaved -> "interleaved")
    s.ti s.delta s.compaction s.domains
    (String.concat ";" (List.map string_of_int s.initial))
    (String.concat ";"
       (List.map
          (function
            | Submit (u, q) -> Printf.sprintf "S%d.%d" u q
            | Batch ms ->
              Printf.sprintf "B(%s)"
                (String.concat ","
                   (List.map (fun (u, q) -> Printf.sprintf "%d.%d" u q) ms))
            | Register t -> Printf.sprintf "R%d" t
            | Ddl d -> Printf.sprintf "D%d" d
            | Mutate m -> Printf.sprintf "M%d" m)
          s.ops))

let script_arb = QCheck.make ~print:print_script script_gen

let prop_scaled_naive_identical =
  QCheck.Test.make
    ~name:"unified+relevance+shared and naive unrolled agree" ~count:200
    script_arb
    (fun script -> run_script ~scaled:false script = run_script ~scaled:true script)

(* Deterministic pins -------------------------------------------------------- *)

(* Everything pinned explicitly — not inherited from DL_UNIFY / DL_DELTA
   / DL_DOMAINS — so the cases assert under any environment. TI is off
   so the skip pins exercise the based path (valid proved-empty base +
   blocked slots); the TI-pinned baseless path has its own pin below. *)
let scale_cfg =
  {
    Engine.default_config with
    Engine.domains = 1;
    time_independent = false;
    delta = true;
    unification = true;
    relevance = true;
    shared_scans = true;
  }

let make_engine ?(config = scale_cfg) () =
  let db = Database.create () in
  ignore
    (Database.exec_script db
       "CREATE TABLE data (k INT, v TEXT); INSERT INTO data VALUES (1, 'a'); \
        CREATE TABLE banned (uid INT); INSERT INTO banned VALUES (9)");
  (db, Engine.create ~config db)

let test_unification_groups_form () =
  let _, engine = make_engine () in
  List.iter
    (fun (name, sql) -> ignore (Engine.add_policy engine ~name sql))
    (Templates.per_user ~name_prefix:"noacc" ~uids:(List.init 50 (fun i -> i + 1))
       (fun ~subject -> Templates.no_access ~relation:"data" ~subject ()));
  let u = Engine.unify_stats engine in
  Alcotest.(check int) "registered" 50 u.Engine.unify_registered;
  Alcotest.(check int) "one group" 1 u.Engine.unify_groups;
  Alcotest.(check int) "all members absorbed" 50 u.Engine.unify_members;
  Alcotest.(check int) "one active policy" 1 u.Engine.unify_active;
  (match Engine.submit engine ~uid:7 "SELECT v FROM data WHERE k = 1" with
  | Engine.Rejected ([ m ], _) ->
    Alcotest.(check string) "member message" "data is off-limits" m
  | _ -> Alcotest.fail "uid 7 must be rejected");
  match Engine.submit engine ~uid:60 "SELECT v FROM data WHERE k = 1" with
  | Engine.Accepted _ -> ()
  | Engine.Rejected _ -> Alcotest.fail "uid 60 is not a member"

let test_unified_member_message () =
  (* the lifted message column must surface exactly the firing member's
     message, not the template's *)
  let _, engine = make_engine () in
  List.iteri
    (fun i uid ->
      ignore (Engine.add_policy engine ~name:(Printf.sprintf "m%d" i) (per_uid uid)))
    [ 1; 2; 3 ];
  match Engine.submit engine ~uid:2 "SELECT v FROM data WHERE k = 1" with
  | Engine.Rejected ([ m ], _) ->
    Alcotest.(check string) "uid 2's message" "uid 2 off data" m
  | _ -> Alcotest.fail "uid 2 must be rejected"

let test_relevance_skips_unrelated_uid () =
  let _, engine = make_engine () in
  List.iteri
    (fun i uid ->
      ignore (Engine.add_policy engine ~name:(Printf.sprintf "m%d" i) (per_uid uid)))
    [ 2; 3; 4 ];
  (* first accepted submission establishes the base... *)
  (match Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1" with
  | Engine.Accepted _ -> ()
  | Engine.Rejected _ -> Alcotest.fail "uid 1 must pass");
  let before = (Engine.relevance_stats engine).Engine.rel_skips in
  (* ...then uid 1's increment binds no slot of the unified uid∈{2,3,4}
     policy: it must be skipped without evaluation *)
  (match Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1" with
  | Engine.Accepted _ -> ()
  | Engine.Rejected _ -> Alcotest.fail "uid 1 must still pass");
  let after = (Engine.relevance_stats engine).Engine.rel_skips in
  Alcotest.(check bool) "the policy was skipped" true (after > before);
  (* a member uid's increment matches the enumerated filter: no skip,
     the policy fires with the right member message *)
  match Engine.submit engine ~uid:3 "SELECT v FROM data WHERE k = 1" with
  | Engine.Rejected ([ m ], _) ->
    Alcotest.(check string) "uid 3's message" "uid 3 off data" m
  | _ -> Alcotest.fail "uid 3 must be rejected"

let test_relevance_skips_time_independent () =
  (* Under TI rewriting (the default config) the policy is pinned to the
     current clock tick, so the index needs no base at all: even the
     very first admission skips, and the clock dependency bumping every
     tick doesn't disable the index. *)
  let _, engine =
    make_engine ~config:{ scale_cfg with Engine.time_independent = true } ()
  in
  List.iteri
    (fun i uid ->
      ignore (Engine.add_policy engine ~name:(Printf.sprintf "m%d" i) (per_uid uid)))
    [ 2; 3; 4 ];
  (match Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1" with
  | Engine.Accepted _ -> ()
  | Engine.Rejected _ -> Alcotest.fail "uid 1 must pass");
  let r = Engine.relevance_stats engine in
  Alcotest.(check bool) "skipped without a base" true (r.Engine.rel_skips > 0);
  match Engine.submit engine ~uid:3 "SELECT v FROM data WHERE k = 1" with
  | Engine.Rejected ([ m ], _) ->
    Alcotest.(check string) "uid 3's message" "uid 3 off data" m
  | _ -> Alcotest.fail "uid 3 must be rejected"

let test_relevance_refires_after_mutation () =
  let db, engine = make_engine () in
  ignore (Engine.add_policy engine ~name:"banned" templates.(3));
  ignore (Engine.submit engine ~uid:2 "SELECT v FROM data WHERE k = 1");
  let before = (Engine.relevance_stats engine).Engine.rel_skips in
  ignore (Engine.submit engine ~uid:2 "SELECT v FROM data WHERE k = 1");
  let after = (Engine.relevance_stats engine).Engine.rel_skips in
  Alcotest.(check bool) "uid 2 skipped while not banned" true (after > before);
  (* the mutation bumps [banned]'s version: the enumeration guard and
     the base both go stale, and the policy must fire *)
  ignore
    (Dml.exec (Database.catalog db) (Parser.stmt "INSERT INTO banned VALUES (2)"));
  match Engine.submit engine ~uid:2 "SELECT v FROM data WHERE k = 1" with
  | Engine.Rejected ([ m ], _) -> Alcotest.(check string) "message" "banned uid" m
  | _ -> Alcotest.fail "uid 2 must be rejected after the banned insert"

let test_relevance_refires_after_policy_change () =
  let _, engine = make_engine () in
  ignore (Engine.add_policy engine ~name:"first" (per_uid 9));
  ignore (Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1");
  ignore (Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1");
  (* registering uid 1's prohibition bumps the plan generation: the old
     proofs are dead and the new policy must catch uid 1's NEXT
     submission (its own registration point is its history start) *)
  ignore (Engine.add_policy engine ~name:"second" (per_uid 1));
  match Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1" with
  | Engine.Rejected ([ m ], _) ->
    Alcotest.(check string) "message" "uid 1 off data" m
  | _ -> Alcotest.fail "uid 1 must be rejected after registration"

let test_relevance_off_counts_nothing () =
  let _, engine =
    make_engine ~config:{ scale_cfg with Engine.relevance = false } ()
  in
  ignore (Engine.add_policy engine ~name:"m" (per_uid 2));
  ignore (Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1");
  ignore (Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1");
  let r = Engine.relevance_stats engine in
  Alcotest.(check int) "no checks when off" 0 r.Engine.rel_checks;
  Alcotest.(check int) "no skips when off" 0 r.Engine.rel_skips

let test_shared_scans_hit () =
  (* two different-shape policies (no unification) both scan [users]
     with no pushed-down predicates: within one admission the second
     plan must reuse the first's materialization *)
  let _, engine =
    make_engine ~config:{ scale_cfg with Engine.delta = false } ()
  in
  ignore
    (Engine.add_policy engine ~name:"a"
       "SELECT DISTINCT 'a' FROM users u, schema s WHERE u.ts = s.ts AND \
        s.irid = 'never'");
  ignore
    (Engine.add_policy engine ~name:"b"
       "SELECT DISTINCT 'b' FROM users u, provenance p WHERE u.ts = p.ts AND \
        p.irid = 'never'");
  ignore (Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1");
  ignore (Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1");
  let hits, misses = Engine.shared_scan_stats engine in
  Alcotest.(check bool) "some materializations" true (misses > 0);
  Alcotest.(check bool) "some reuse" true (hits > 0)

let test_batch_everything_on () =
  (* the server's fast path (submit_batch), the domain pool, delta,
     unification, relevance and shared scans composed: verdicts must
     match the one-at-a-time semantics *)
  let _, engine =
    make_engine ~config:{ scale_cfg with Engine.domains = 3 } ()
  in
  List.iteri
    (fun i uid ->
      ignore (Engine.add_policy engine ~name:(Printf.sprintf "m%d" i) (per_uid uid)))
    [ 2; 3 ];
  let subs =
    List.map
      (fun uid ->
        {
          Engine.batch_uid = uid;
          batch_extra = [];
          batch_query = Parser.query "SELECT v FROM data WHERE k = 1";
        })
      [ 1; 2; 1 ]
  in
  (match Engine.submit_batch engine subs with
  | [ Ok (Engine.Accepted _); Ok (Engine.Rejected ([ m ], _)); Ok (Engine.Accepted _) ]
    -> Alcotest.(check string) "uid 2's message" "uid 2 off data" m
  | _ -> Alcotest.fail "batch must be accept/reject/accept");
  Engine.close engine

let suite =
  [
    tc "per-user instances unify into one group" test_unification_groups_form;
    tc "unified policy reports the firing member's message"
      test_unified_member_message;
    tc "relevance index skips the policy an unrelated uid cannot fire"
      test_relevance_skips_unrelated_uid;
    tc "TI-pinned policies skip without a base"
      test_relevance_skips_time_independent;
    tc "skipped policy fires again after a plain-table mutation"
      test_relevance_refires_after_mutation;
    tc "skipped policy fires again after a policy-set change"
      test_relevance_refires_after_policy_change;
    tc "relevance off checks and skips nothing" test_relevance_off_counts_nothing;
    tc "shared subplans are materialized once per admission"
      test_shared_scans_hit;
    tc "batch fast path composes with the full scale stack"
      test_batch_everything_on;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_scaled_naive_identical ]
