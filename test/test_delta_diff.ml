(* Differential property tests for incremental (delta-driven) policy
   evaluation: the same randomized workload — submissions, rejections,
   mid-stream policy registration, DDL, plain-table DML, compaction and
   (for persisted scripts) restart-with-recovery — must behave
   bit-identically with [delta = true] and [delta = false]. Compared per
   step: the outcome tag, the violation-message list (in order), the
   accepted result rows (in order); and at the end: the full contents
   (tid + cells) of every log relation and the clock — so watermark and
   invalidation bugs that corrupt decisions or retained tuples fail the
   property. Deterministic cases then pin that the delta path actually
   runs (the differential property alone would pass if everything
   silently fell back). *)

open Relational
open Datalawyer

let tc = Test_support.tc

(* Scripted operations ------------------------------------------------------ *)

type op =
  | Submit of int * int  (** uid, query index *)
  | Register of int  (** policy-template index *)
  | Ddl of int  (** DDL-statement index: bumps the catalog generation *)
  | Mutate of int  (** plain-table DML index: bumps version counters *)
  | Restart  (** persisted scripts: close, recover from disk; else no-op *)

let queries =
  [|
    "SELECT v FROM data WHERE k = 1";
    "SELECT k, v FROM data";
    "SELECT COUNT(*) FROM data";
    "SELECT d.v FROM data d, data e WHERE d.k = e.k AND e.v = 'b'";
  |]

(* A mix of every delta branch kind — SPJ (constant projections over
   log / plain scans), residual (clock tick-windows, with and without
   aggregates) and carried-state aggregates (GROUP BY / HAVING over log
   slots, including MIN/MAX and DISTINCT) — plus the occasional
   still-ineligible shape: all paths must agree with full evaluation
   under every interleaving. *)
let templates =
  [|
    "SELECT DISTINCT 'uid 2 blocked' FROM users u WHERE u.uid = 2";
    "SELECT DISTINCT 'banned uid' FROM users u, banned b WHERE u.uid = b.uid";
    "SELECT DISTINCT 'quota uid 1' FROM users u, clock c WHERE u.uid = 1 AND \
     u.ts > c.ts - 4 HAVING COUNT(DISTINCT u.ts) > 2";
    "SELECT DISTINCT 'schema width' FROM schema s, clock c WHERE s.irid = \
     'data' AND s.ts > c.ts - 5 HAVING COUNT(DISTINCT s.icid) > 1";
    "SELECT DISTINCT 'provenance touch' FROM provenance p, banned b WHERE \
     p.irid = 'data' AND p.itid = b.uid";
    "SELECT DISTINCT 'uid 2 over quota' FROM users u WHERE u.uid = 2 GROUP \
     BY u.uid HAVING COUNT(*) > 2";
    "SELECT DISTINCT 'banned pair' FROM users u, banned b WHERE u.uid = \
     b.uid GROUP BY b.uid HAVING COUNT(*) > 1";
    "SELECT DISTINCT 'uid 3 spread' FROM users u WHERE u.uid = 3 GROUP BY \
     u.uid HAVING MAX(u.ts) - MIN(u.ts) > 4 AND COUNT(*) > 2";
    "SELECT DISTINCT 'distinct ticks' FROM users u GROUP BY u.uid HAVING \
     COUNT(DISTINCT u.ts) > 5";
  |]

(* DDL invalidates delta bases through the catalog generation. Repeats
   raise (duplicate index, unknown index); the error text goes into the
   trace, so both runs must fail identically too. *)
let ddls =
  [|
    "CREATE INDEX dd_users_uid ON users USING hash (uid)";
    "DROP INDEX dd_users_uid";
    "CREATE INDEX dd_data_k ON data USING sorted (k)";
    "DROP INDEX dd_data_k";
  |]

(* Plain-table DML invalidates through per-table version counters: the
   [banned] mutations flip template 1 between accepting and rejecting,
   so a missed invalidation changes a decision and fails the diff. The
   [users] delete is log DML — it must invalidate carried aggregate
   state ([ver_del]) or the COUNT templates keep counting ghost rows. *)
let mutations =
  [|
    "INSERT INTO banned VALUES (2)";
    "DELETE FROM banned WHERE uid = 2";
    "UPDATE data SET v = 'z' WHERE k = 2";
    "INSERT INTO data VALUES (9, 'i')";
    "DELETE FROM users WHERE uid = 2";
  |]

type script = {
  strategy : Engine.strategy;
  ti : bool;
      (** TI rewriting adds a clock atom to time-independent policies,
          which moves them from the SPJ/aggregate branches onto the
          residual one — varying it steers the property across the
          branch kinds *)
  unification : bool;
  compaction : bool;
  preemptive : bool;
  persist : bool;
  initial : int list;  (** template indices registered before the stream *)
  ops : op list;
}

(* Fresh scratch directory per persisted run. *)
let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dl_delta_%d_%d" (Unix.getpid ()) !counter)
    in
    (if Sys.file_exists dir then
       Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f)));
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

(* Deterministic rendering of one engine run ------------------------------- *)

let render_row (r : Executor.row_out) =
  String.concat ","
    (Array.to_list (Array.map Value.to_string r.Executor.values))

let dump_logs engine =
  let db = Engine.database engine in
  List.map
    (fun rel ->
      let rows =
        Table.fold
          (fun acc row ->
            Printf.sprintf "%d:%s" (Row.tid row)
              (String.concat ","
                 (Array.to_list (Array.map Value.to_string (Row.cells row))))
            :: acc)
          []
          (Database.table db rel)
      in
      Printf.sprintf "%s={%s}" rel (String.concat " " (List.rev rows)))
    [ "users"; "schema"; "provenance"; "clock" ]

let run_script ~delta script =
  let dir = if script.persist then Some (temp_dir ()) else None in
  let config =
    {
      Engine.default_config with
      Engine.strategy = script.strategy;
      time_independent = script.ti;
      unification = script.unification;
      log_compaction = script.compaction;
      preemptive = script.compaction && script.preemptive;
      domains = 1;
      delta;
    }
  in
  let fresh_db () =
    let db = Database.create () in
    ignore
      (Database.exec_script db
         "CREATE TABLE data (k INT, v TEXT); INSERT INTO data VALUES (1, \
          'a'), (2, 'b'), (3, 'c'); CREATE TABLE banned (uid INT); INSERT \
          INTO banned VALUES (3)");
    db
  in
  let mk db = Engine.create ~config ?persist_dir:dir db in
  let db = ref (fresh_db ()) in
  let engine = ref (mk !db) in
  List.iteri
    (fun i ti ->
      ignore
        (Engine.add_policy !engine ~name:(Printf.sprintf "p%d" i) templates.(ti)))
    script.initial;
  let step op =
    try
      match op with
      | Register ti ->
        let n = List.length (Engine.policies !engine) in
        let name = Printf.sprintf "p%d" n in
        ignore (Engine.add_policy !engine ~name templates.(ti));
        Printf.sprintf "register %s := template %d" name ti
      | Submit (uid, qi) -> (
        match Engine.submit !engine ~uid queries.(qi) with
        | Engine.Accepted (result, _) ->
          Printf.sprintf "uid %d q%d accepted [%s]" uid qi
            (String.concat "; " (List.map render_row result.Executor.out_rows))
        | Engine.Rejected (messages, _) ->
          Printf.sprintf "uid %d q%d REJECTED [%s]" uid qi
            (String.concat "; " messages))
      | Ddl di -> (
        match Dml.exec (Database.catalog !db) (Parser.stmt ddls.(di)) with
        | Dml.Created what -> Printf.sprintf "ddl %d created %s" di what
        | Dml.Dropped what -> Printf.sprintf "ddl %d dropped %s" di what
        | Dml.Affected n -> Printf.sprintf "ddl %d affected %d" di n
        | Dml.Rows _ -> Printf.sprintf "ddl %d rows" di)
      | Mutate mi -> (
        match Dml.exec (Database.catalog !db) (Parser.stmt mutations.(mi)) with
        | Dml.Affected n -> Printf.sprintf "mutate %d affected %d" mi n
        | _ -> Printf.sprintf "mutate %d" mi)
      | Restart ->
        if not script.persist then "restart skipped"
        else begin
          Engine.close !engine;
          db := fresh_db ();
          engine := mk !db;
          Printf.sprintf "restart (%d policies recovered)"
            (List.length (Engine.policies !engine))
        end
    with Errors.Sql_error _ as e -> "error: " ^ Errors.to_string e
  in
  let trace = List.map step script.ops in
  let logs = dump_logs !engine in
  Engine.close !engine;
  trace @ logs

(* Generator ----------------------------------------------------------------- *)

let script_gen : script QCheck.Gen.t =
  let open QCheck.Gen in
  let op_gen =
    frequency
      [
        ( 8,
          map2
            (fun uid qi -> Submit (uid, qi))
            (int_range 1 3)
            (int_range 0 (Array.length queries - 1)) );
        (1, map (fun ti -> Register ti) (int_range 0 (Array.length templates - 1)));
        (1, map (fun di -> Ddl di) (int_range 0 (Array.length ddls - 1)));
        (1, map (fun mi -> Mutate mi) (int_range 0 (Array.length mutations - 1)));
        (1, return Restart);
      ]
  in
  let* strategy = oneofl [ Engine.Union_all; Engine.Serial; Engine.Interleaved ] in
  let* ti = bool in
  let* unification = bool in
  let* compaction = bool in
  let* preemptive = bool in
  (* persisted scripts hit the disk on every accepted submission; keep
     them a minority so 300 cases stay fast *)
  let* persist = frequency [ (4, return false); (1, return true) ] in
  let* initial =
    list_size (int_range 0 3) (int_range 0 (Array.length templates - 1))
  in
  let+ ops = list_size (int_range 1 14) op_gen in
  { strategy; ti; unification; compaction; preemptive; persist; initial; ops }

let print_script s =
  Printf.sprintf
    "strategy=%s ti=%b unif=%b comp=%b pre=%b persist=%b initial=[%s] ops=[%s]"
    (match s.strategy with
    | Engine.Union_all -> "union"
    | Engine.Serial -> "serial"
    | Engine.Interleaved -> "interleaved")
    s.ti s.unification s.compaction s.preemptive s.persist
    (String.concat ";" (List.map string_of_int s.initial))
    (String.concat ";"
       (List.map
          (function
            | Submit (u, q) -> Printf.sprintf "S%d.%d" u q
            | Register t -> Printf.sprintf "R%d" t
            | Ddl d -> Printf.sprintf "D%d" d
            | Mutate m -> Printf.sprintf "M%d" m
            | Restart -> "X")
          s.ops))

let script_arb = QCheck.make ~print:print_script script_gen

(* Properties ---------------------------------------------------------------- *)

let prop_delta_full_identical =
  QCheck.Test.make
    ~name:"delta on and off produce identical traces and logs" ~count:300
    script_arb
    (fun script -> run_script ~delta:false script = run_script ~delta:true script)

(* Deterministic pins -------------------------------------------------------- *)

(* TI rewriting is the offline optimization for time-independent
   policies (it already restricts them to the increment, via a clock
   atom that moves them onto the residual branch); these pins turn it
   off so each template exercises the branch kind named in the pin —
   SPJ for the plain templates, carried-state aggregate for the GROUP
   BY/HAVING ones. *)
(* [delta] is pinned on (not inherited from DL_DELTA): these cases test
   the delta machinery itself and must assert under either env value.
   The relevance index is pinned off: it proves these simple templates
   unaffected before the delta path would even run, and the pins are
   about the delta path (test_unify_scale pins the index's own
   behavior). *)
let ti_off =
  {
    Engine.default_config with
    Engine.domains = 1;
    time_independent = false;
    delta = true;
    relevance = false;
  }

let make_engine ?(config = ti_off) () =
  let db = Database.create () in
  ignore
    (Database.exec_script db
       "CREATE TABLE data (k INT, v TEXT); INSERT INTO data VALUES (1, 'a'); \
        CREATE TABLE banned (uid INT); INSERT INTO banned VALUES (9)");
  (db, Engine.create ~config db)

let test_delta_path_runs () =
  let _, engine = make_engine () in
  ignore (Engine.add_policy engine ~name:"blocked" templates.(0));
  (match Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1" with
  | Engine.Accepted _ -> ()
  | Engine.Rejected _ -> Alcotest.fail "uid 1 must pass");
  (match Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1" with
  | Engine.Accepted _ -> ()
  | Engine.Rejected _ -> Alcotest.fail "uid 1 must pass");
  let d = Engine.delta_stats engine in
  Alcotest.(check int) "one eligible plan" 1 d.Engine.eligible_plans;
  Alcotest.(check int) "no fallback plans" 0 d.Engine.fallback_plans;
  Alcotest.(check bool) "a base is recorded" true (d.Engine.delta_bases >= 1);
  Alcotest.(check bool) "delta evals happened" true (d.Engine.delta_evals >= 1)

let test_delta_detects_violation () =
  let _, engine = make_engine () in
  ignore (Engine.add_policy engine ~name:"blocked" templates.(0));
  (* establish the base... *)
  (match Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1" with
  | Engine.Accepted _ -> ()
  | Engine.Rejected _ -> Alcotest.fail "uid 1 must pass");
  (* ...then the violating increment must be caught from the delta alone *)
  match Engine.submit engine ~uid:2 "SELECT v FROM data WHERE k = 1" with
  | Engine.Rejected ([ m ], _) ->
    Alcotest.(check string) "message" "uid 2 blocked" m
  | _ -> Alcotest.fail "uid 2 must be rejected"

let submit_ok engine ~uid what =
  match Engine.submit engine ~uid "SELECT v FROM data WHERE k = 1" with
  | Engine.Accepted _ -> ()
  | Engine.Rejected (ms, _) ->
    Alcotest.failf "%s must pass, got [%s]" what (String.concat "; " ms)

let test_clock_policy_rides_residual () =
  let _, engine = make_engine () in
  ignore (Engine.add_policy engine ~name:"quota" templates.(2));
  submit_ok engine ~uid:1 "first";
  submit_ok engine ~uid:1 "second";
  let d = Engine.delta_stats engine in
  Alcotest.(check int) "one eligible plan" 1 d.Engine.eligible_plans;
  Alcotest.(check int) "no fallback plans" 0 d.Engine.fallback_plans;
  (* Residual branches recompute exactly and need no base, so even the
     very first evaluation rides the delta path. *)
  Alcotest.(check int) "zero full evals" 0 d.Engine.full_evals;
  Alcotest.(check bool) "delta evals happened" true (d.Engine.delta_evals >= 2);
  (* Third distinct tick inside the 4-tick window trips the quota, and
     the verdict must come from the residual plan (no full eval). *)
  (match Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1" with
  | Engine.Rejected ([ m ], _) -> Alcotest.(check string) "message" "quota uid 1" m
  | _ -> Alcotest.fail "third submission must be rejected");
  let d = Engine.delta_stats engine in
  Alcotest.(check int) "still zero full evals" 0 d.Engine.full_evals

let test_agg_policy_carries_state () =
  let _, engine = make_engine () in
  ignore (Engine.add_policy engine ~name:"quota2" templates.(5));
  submit_ok engine ~uid:1 "warm-up";
  let warm = (Engine.delta_stats engine).Engine.full_evals in
  submit_ok engine ~uid:1 "uid 1 again";
  submit_ok engine ~uid:2 "uid 2 first";
  submit_ok engine ~uid:2 "uid 2 second";
  let d = Engine.delta_stats engine in
  Alcotest.(check int) "one eligible plan" 1 d.Engine.eligible_plans;
  Alcotest.(check int) "steady state adds no full evals" warm d.Engine.full_evals;
  (* Only the uid-2 submissions reach [delta_try]: while uid 2 has no
     rows, interleaved partial checks prune the policy first (bumping
     neither counter). *)
  Alcotest.(check bool) "delta evals happened" true (d.Engine.delta_evals >= 2);
  Alcotest.(check bool) "groups are carried" true (d.Engine.agg_groups >= 1);
  (* The third uid-2 row pushes the count past 2 — caught from carried
     state plus the increment alone. *)
  (match Engine.submit engine ~uid:2 "SELECT v FROM data WHERE k = 1" with
  | Engine.Rejected ([ m ], _) ->
    Alcotest.(check string) "message" "uid 2 over quota" m
  | _ -> Alcotest.fail "third uid-2 submission must be rejected");
  (* The rejected increment was rolled back and must NOT have been
     folded into the carried groups: the next one still counts 2+1. *)
  (match Engine.submit engine ~uid:2 "SELECT v FROM data WHERE k = 1" with
  | Engine.Rejected ([ m ], _) ->
    Alcotest.(check string) "message again" "uid 2 over quota" m
  | _ -> Alcotest.fail "fourth uid-2 submission must be rejected");
  submit_ok engine ~uid:1 "uid 1 unaffected";
  let d = Engine.delta_stats engine in
  Alcotest.(check int) "verdicts came from the delta path" warm
    d.Engine.full_evals

let test_min_max_aggregate_on_delta_path () =
  let _, engine = make_engine () in
  ignore (Engine.add_policy engine ~name:"spread" templates.(7));
  submit_ok engine ~uid:3 "t1";
  let warm = (Engine.delta_stats engine).Engine.full_evals in
  submit_ok engine ~uid:3 "t2";
  submit_ok engine ~uid:1 "t3";
  submit_ok engine ~uid:1 "t4";
  submit_ok engine ~uid:1 "t5";
  (* Ticks 1..6: uid 3's third row at tick 6 makes MAX-MIN = 5 > 4 with
     COUNT 3 > 2. *)
  (match Engine.submit engine ~uid:3 "SELECT v FROM data WHERE k = 1" with
  | Engine.Rejected ([ m ], _) -> Alcotest.(check string) "message" "uid 3 spread" m
  | _ -> Alcotest.fail "tick-6 submission must be rejected");
  let d = Engine.delta_stats engine in
  Alcotest.(check int) "steady state adds no full evals" warm d.Engine.full_evals

(* The Table-2 workload policies (P1–P6): every one must classify onto
   some delta branch under the default configuration, and a steady
   accepted stream must add no full evaluations after the first
   (base-establishing) submission — the ISSUE's 100%-coverage check.
   Relevance is pinned off and the strategy serial so every policy
   actually reaches [delta_try] on every submission (a relevance skip or
   an interleaved partial-prune bumps neither counter and would
   vacuously pass the zero-full pin). *)
let test_table2_policies_all_on_delta_path () =
  let config =
    {
      Engine.default_config with
      Engine.domains = 1;
      Engine.strategy = Engine.Serial;
      delta = true;
      relevance = false;
    }
  in
  let s = Workload.Runner.make ~config () in
  let engine = s.Workload.Runner.engine in
  let sql = "SELECT subject_id FROM d_patients WHERE subject_id = 1" in
  (match Engine.submit engine ~uid:2 sql with
  | Engine.Accepted _ -> ()
  | Engine.Rejected (ms, _) ->
    Alcotest.failf "warm-up must pass, got [%s]" (String.concat "; " ms));
  let d0 = Engine.delta_stats engine in
  Alcotest.(check int) "all six policies eligible" 6 d0.Engine.eligible_plans;
  Alcotest.(check int) "no fallback plans" 0 d0.Engine.fallback_plans;
  for i = 1 to 5 do
    match Engine.submit engine ~uid:2 sql with
    | Engine.Accepted _ -> ()
    | Engine.Rejected (ms, _) ->
      Alcotest.failf "steady submission %d must pass, got [%s]" i
        (String.concat "; " ms)
  done;
  let d = Engine.delta_stats engine in
  Alcotest.(check int) "zero full evals on the steady stream"
    d0.Engine.full_evals d.Engine.full_evals;
  Alcotest.(check bool) "delta evals cover the stream" true
    (d.Engine.delta_evals >= d0.Engine.delta_evals + 30)

let test_plain_mutation_invalidates () =
  let db, engine = make_engine () in
  ignore (Engine.add_policy engine ~name:"banned" templates.(1));
  ignore (Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1");
  ignore (Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1");
  let before = (Engine.delta_stats engine).Engine.full_evals in
  ignore
    (Dml.exec (Database.catalog db) (Parser.stmt "INSERT INTO banned VALUES (2)"));
  (* the mutated plain dependency forces a full re-run, which must now
     see the fresh banned row *)
  (match Engine.submit engine ~uid:2 "SELECT v FROM data WHERE k = 1" with
  | Engine.Rejected ([ m ], _) -> Alcotest.(check string) "message" "banned uid" m
  | _ -> Alcotest.fail "uid 2 must be rejected after the banned insert");
  let after = (Engine.delta_stats engine).Engine.full_evals in
  Alcotest.(check bool) "a full eval was counted" true (after > before)

let test_time_dependent_join_eligible_under_defaults () =
  (* Under the full default config, TI rewriting claims the
     time-independent policies; the delta path's remaining jurisdiction
     is exactly the time-DEPENDENT SPJ shapes — cross-time log joins TI
     cannot rewrite — which are also the ones that grow with the log. *)
  let _, engine =
    make_engine
      ~config:{ Engine.default_config with Engine.domains = 1; delta = true }
      ()
  in
  ignore
    (Engine.add_policy engine ~name:"cross"
       "SELECT DISTINCT 'cross-time touch' FROM users u, provenance p WHERE \
        u.uid = p.itid AND p.irid = 'never'");
  ignore (Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1");
  ignore (Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1");
  let d = Engine.delta_stats engine in
  Alcotest.(check int) "one eligible plan" 1 d.Engine.eligible_plans;
  Alcotest.(check bool) "delta evals happened" true (d.Engine.delta_evals >= 1)

let test_delta_off_counts_nothing () =
  let _, engine = make_engine ~config:{ ti_off with Engine.delta = false } () in
  ignore (Engine.add_policy engine ~name:"blocked" templates.(0));
  ignore (Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1");
  ignore (Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1");
  let d = Engine.delta_stats engine in
  Alcotest.(check int) "no eligible plans when off" 0 d.Engine.eligible_plans;
  Alcotest.(check int) "no bases when off" 0 d.Engine.delta_bases;
  Alcotest.(check int) "no delta evals when off" 0 d.Engine.delta_evals

(* Delta × unification interplay (the ISSUE satellite): a family of
   member policies identical up to literals unifies into one aggregate
   template joining the generated constants table and grouping by the
   constants — so one carried group state, keyed by [dl_consts] rows,
   serves every member. Pinned two ways: the unified engine rides the
   aggregate delta path at 10k members, and a 4-way cross (unification ×
   delta) decides a mixed stream bit-identically. *)

let agg_member uid =
  Printf.sprintf
    "SELECT DISTINCT 'uid %d agg quota' FROM users u WHERE u.uid = %d GROUP \
     BY u.uid HAVING COUNT(*) > 2"
    uid uid

let unified_cfg ~unification ~delta =
  {
    Engine.default_config with
    Engine.domains = 1;
    time_independent = false;
    relevance = false;
    unification;
    delta;
  }

let test_unified_aggregate_shares_group_state () =
  let _, engine =
    make_engine ~config:(unified_cfg ~unification:true ~delta:true) ()
  in
  let n = 10_000 in
  for i = 1 to n do
    ignore (Engine.add_policy engine ~name:(Printf.sprintf "q%d" i) (agg_member i))
  done;
  submit_ok engine ~uid:1 "warm-up";
  let u = Engine.unify_stats engine in
  Alcotest.(check int) "all members absorbed" n u.Engine.unify_members;
  Alcotest.(check int) "one active policy" 1 u.Engine.unify_active;
  let warm = (Engine.delta_stats engine).Engine.full_evals in
  submit_ok engine ~uid:1 "second";
  submit_ok engine ~uid:7 "uid 7 first";
  submit_ok engine ~uid:7 "uid 7 second";
  (match Engine.submit engine ~uid:7 "SELECT v FROM data WHERE k = 1" with
  | Engine.Rejected ([ m ], _) ->
    Alcotest.(check string) "firing member's message" "uid 7 agg quota" m
  | _ -> Alcotest.fail "uid 7's third submission must be rejected");
  let d = Engine.delta_stats engine in
  Alcotest.(check int) "unified template is the one eligible plan" 1
    d.Engine.eligible_plans;
  Alcotest.(check int) "steady stream adds no full evals" warm
    d.Engine.full_evals;
  Alcotest.(check bool) "member groups share the carried state" true
    (d.Engine.agg_groups >= 2)

let test_unified_aggregate_cross_differential () =
  let uids = List.init 40 (fun i -> i + 1) in
  let stream =
    [ (5, "a"); (50, "b"); (5, "c"); (5, "d"); (5, "e"); (12, "f"); (50, "g") ]
  in
  let run ~unification ~delta =
    let _, engine = make_engine ~config:(unified_cfg ~unification ~delta) () in
    List.iter
      (fun uid ->
        ignore
          (Engine.add_policy engine ~name:(Printf.sprintf "x%d" uid)
             (agg_member uid)))
      uids;
    List.map
      (fun (uid, tag) ->
        match Engine.submit engine ~uid "SELECT v FROM data WHERE k = 1" with
        | Engine.Accepted (r, _) ->
          Printf.sprintf "%s:ok[%s]" tag
            (String.concat ";" (List.map render_row r.Executor.out_rows))
        | Engine.Rejected (ms, _) ->
          Printf.sprintf "%s:REJ[%s]" tag (String.concat ";" ms))
      stream
  in
  let reference = run ~unification:false ~delta:false in
  List.iter
    (fun (unification, delta) ->
      Alcotest.(check (list string))
        (Printf.sprintf "unify=%b delta=%b agrees" unification delta)
        reference
        (run ~unification ~delta))
    [ (false, true); (true, false); (true, true) ]

let suite =
  [
    tc "delta path actually runs on an eligible policy" test_delta_path_runs;
    tc "delta evaluation catches the violating increment"
      test_delta_detects_violation;
    tc "clock/HAVING policies ride the residual branch"
      test_clock_policy_rides_residual;
    tc "aggregate policies carry group state across submissions"
      test_agg_policy_carries_state;
    tc "MIN/MAX aggregates stay on the delta path"
      test_min_max_aggregate_on_delta_path;
    tc "Table-2 workload policies all classify onto delta branches"
      test_table2_policies_all_on_delta_path;
    tc "plain-table mutation invalidates the base" test_plain_mutation_invalidates;
    tc "time-dependent join is eligible under the default config"
      test_time_dependent_join_eligible_under_defaults;
    tc "delta off establishes and evaluates nothing" test_delta_off_counts_nothing;
    tc "unified aggregate members share one carried group state"
      test_unified_aggregate_shares_group_state;
    tc "unification x delta cross decides identically"
      test_unified_aggregate_cross_differential;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_delta_full_identical ]
