(* The §6 extensibility scenarios: new log-generating functions (device
   log, system-load log), policy templates, and the violation advisor. *)

open Relational
open Datalawyer
open Test_support

let accepted = function Engine.Accepted _ -> true | Engine.Rejected _ -> false

(* §6 example 1: restrict queries from 'mobile' devices to small outputs.
   Requires a custom log relation populated from the connection context. *)
let test_device_log_policy () =
  let db = sample_db () in
  let devices =
    Usage_log.custom ~relation:"devices"
      ~columns:[ ("device", Ty.Text) ]
      ~rank:0
      ~generate:(fun c ->
        match List.assoc_opt "device" c.Usage_log.extra with
        | Some v -> [ [| v |] ]
        | None -> [ [| Value.Str "desktop" |] ])
  in
  let e = Engine.create ~generators:(devices :: Usage_log.standard) db in
  ignore
    (Engine.add_policy e ~name:"mobile_cap"
       "SELECT DISTINCT 'mobile queries are limited to 2 output tuples' \
        FROM devices d, provenance p WHERE d.ts = p.ts AND d.device = \
        'mobile' GROUP BY p.ts HAVING COUNT(DISTINCT p.otid) > 2");
  let big = "SELECT name FROM emp" in
  Alcotest.(check bool) "desktop unrestricted" true
    (accepted (Engine.submit e ~uid:1 big));
  Alcotest.(check bool) "mobile big query rejected" false
    (accepted (Engine.submit e ~uid:1 ~extra:[ ("device", s "mobile") ] big));
  Alcotest.(check bool) "mobile small query fine" true
    (accepted
       (Engine.submit e ~uid:1
          ~extra:[ ("device", s "mobile") ]
          "SELECT name FROM emp WHERE id = 1"))

(* §6 example 2: load-sensitive rate limit — "no user should be able to
   issue more than 50 requests per hour when the system load exceeds 80%". *)
let test_system_load_policy () =
  let db = sample_db () in
  let load = ref 10 in
  let sysload =
    Usage_log.custom ~relation:"sysload"
      ~columns:[ ("loadpct", Ty.Int) ]
      ~rank:0
      ~generate:(fun _ -> [ [| Value.Int !load |] ])
  in
  let e = Engine.create ~generators:(sysload :: Usage_log.standard) db in
  ignore
    (Engine.add_policy e ~name:"load_limit"
       "SELECT DISTINCT 'load shedding: limit is 2 requests in 10 ticks \
        under load > 80' FROM users u, sysload l, clock c WHERE u.ts = l.ts \
        AND l.loadpct > 80 AND u.ts > c.ts - 10 GROUP BY u.uid HAVING \
        COUNT(DISTINCT u.ts) > 2");
  let q = "SELECT name FROM emp WHERE id = 1" in
  for _ = 1 to 5 do
    Alcotest.(check bool) "low load unrestricted" true
      (accepted (Engine.submit e ~uid:1 q))
  done;
  load := 95;
  Alcotest.(check bool) "1st high-load call ok" true (accepted (Engine.submit e ~uid:1 q));
  Alcotest.(check bool) "2nd high-load call ok" true (accepted (Engine.submit e ~uid:1 q));
  Alcotest.(check bool) "3rd high-load call shed" false
    (accepted (Engine.submit e ~uid:1 q))

(* Templates instantiate into policies with the expected classification
   and behaviour. *)
let test_template_no_overlay () =
  let db = sample_db () in
  let e = Engine.create db in
  let p =
    Engine.add_policy e ~name:"t1" (Templates.no_overlay ~relation:"emp" ())
  in
  Alcotest.(check bool) "TI" true p.Policy.time_independent;
  Alcotest.(check bool) "emp alone ok" true
    (accepted (Engine.submit e ~uid:1 "SELECT name FROM emp"));
  Alcotest.(check bool) "emp joined rejected" false
    (accepted
       (Engine.submit e ~uid:1
          "SELECT e.name FROM emp e, dept d WHERE e.dept = d.dname"))

let test_template_rate_limit () =
  let db = sample_db () in
  let e = Engine.create db in
  ignore
    (Engine.add_policy e ~name:"t2"
       (Templates.rate_limit ~max_calls:2 ~window:5 ~subject:(Templates.User 9) ()));
  let q = "SELECT name FROM emp WHERE id = 1" in
  Alcotest.(check bool) "call 1" true (accepted (Engine.submit e ~uid:9 q));
  Alcotest.(check bool) "call 2" true (accepted (Engine.submit e ~uid:9 q));
  Alcotest.(check bool) "call 3 limited" false (accepted (Engine.submit e ~uid:9 q));
  Alcotest.(check bool) "other user free" true (accepted (Engine.submit e ~uid:3 q))

let test_template_k_anonymity () =
  let db = sample_db () in
  let e = Engine.create db in
  ignore
    (Engine.add_policy e ~name:"t3" (Templates.k_anonymity ~relation:"emp" ~k:3 ()));
  Alcotest.(check bool) "coarse ok" true
    (accepted (Engine.submit e ~uid:1 "SELECT COUNT(*) FROM emp"));
  Alcotest.(check bool) "singling out rejected" false
    (accepted (Engine.submit e ~uid:1 "SELECT name FROM emp WHERE id = 1"))

let test_template_no_aggregation () =
  let db = sample_db () in
  let e = Engine.create db in
  ignore
    (Engine.add_policy e ~name:"t4"
       (Templates.no_aggregation ~relation:"emp" ~column:"salary" ()));
  Alcotest.(check bool) "join fine" true
    (accepted
       (Engine.submit e ~uid:1
          "SELECT e.salary, d.budget FROM emp e, dept d WHERE e.dept = d.dname"));
  Alcotest.(check bool) "aggregate rejected" false
    (accepted (Engine.submit e ~uid:1 "SELECT SUM(salary) FROM emp"));
  Alcotest.(check bool) "aggregating other columns fine" true
    (accepted (Engine.submit e ~uid:1 "SELECT COUNT(id) FROM emp"))

let test_template_group_license () =
  let db = sample_db () in
  ignore
    (Database.exec_script db
       "CREATE TABLE members (uid INT, gid TEXT); \
        INSERT INTO members VALUES (1, 'trial'), (2, 'trial'), (3, 'trial')");
  let e = Engine.create db in
  ignore
    (Engine.add_policy e ~name:"t5"
       (Templates.group_license ~relation:"emp" ~max_users:2 ~window:10
          ~subject:(Templates.Group { table = "members"; gid = "trial" })
          ()));
  let q = "SELECT name FROM emp WHERE id = 1" in
  Alcotest.(check bool) "member 1" true (accepted (Engine.submit e ~uid:1 q));
  Alcotest.(check bool) "member 2" true (accepted (Engine.submit e ~uid:2 q));
  Alcotest.(check bool) "member 3 over license" false
    (accepted (Engine.submit e ~uid:3 q));
  Alcotest.(check bool) "non-member unaffected" true
    (accepted (Engine.submit e ~uid:99 q))

let test_template_volume_quota () =
  let db = sample_db () in
  let e = Engine.create db in
  ignore
    (Engine.add_policy e ~name:"tq"
       (Templates.volume_quota ~relation:"emp" ~max_tuples:6 ~window:20 ()));
  (* each full scan derives 5 result tuples from emp *)
  Alcotest.(check bool) "first scan ok (5 tuples)" true
    (accepted (Engine.submit e ~uid:1 "SELECT name FROM emp"));
  Alcotest.(check bool) "second scan trips the quota (10 > 6)" false
    (accepted (Engine.submit e ~uid:1 "SELECT name FROM emp"));
  Alcotest.(check bool) "another user has their own quota" true
    (accepted (Engine.submit e ~uid:2 "SELECT name FROM emp"))

let test_template_no_access () =
  let db = sample_db () in
  let e = Engine.create db in
  ignore
    (Engine.add_policy e ~name:"na"
       (Templates.no_access ~relation:"dept" ~subject:(Templates.User 6) ()));
  Alcotest.(check bool) "subject blocked" false
    (accepted (Engine.submit e ~uid:6 "SELECT dname FROM dept"));
  Alcotest.(check bool) "subject can use other tables" true
    (accepted (Engine.submit e ~uid:6 "SELECT name FROM emp"));
  Alcotest.(check bool) "others unaffected" true
    (accepted (Engine.submit e ~uid:7 "SELECT dname FROM dept"))

let test_template_reuse_cap () =
  let db = sample_db () in
  let e = Engine.create db in
  ignore
    (Engine.add_policy e ~name:"rc"
       (Templates.reuse_cap ~relation:"emp" ~max_uses:2 ~window:30 ()));
  let point = "SELECT name FROM emp WHERE id = 1" in
  Alcotest.(check bool) "use 1" true (accepted (Engine.submit e ~uid:1 point));
  Alcotest.(check bool) "use 2" true (accepted (Engine.submit e ~uid:1 point));
  Alcotest.(check bool) "use 3 capped" false (accepted (Engine.submit e ~uid:1 point));
  Alcotest.(check bool) "other tuples unaffected" true
    (accepted (Engine.submit e ~uid:1 "SELECT name FROM emp WHERE id = 2"))

let test_template_no_overlay_except () =
  let db = sample_db () in
  let e = Engine.create db in
  ignore
    (Engine.add_policy e ~name:"noe"
       (Templates.no_overlay_except ~relation:"emp" ~allowed:[ "dept" ] ()));
  Alcotest.(check bool) "allowed join fine" true
    (accepted
       (Engine.submit e ~uid:1
          "SELECT e.name, d.budget FROM emp e, dept d WHERE e.dept = d.dname"));
  ignore (Database.exec db "CREATE TABLE other (x INT)");
  ignore (Database.exec db "INSERT INTO other VALUES (1)");
  Alcotest.(check bool) "disallowed join rejected" false
    (accepted (Engine.submit e ~uid:1 "SELECT e.name FROM emp e, other o"))

(* Templates unify: many instantiations of the same template collapse. *)
let test_templates_unify () =
  let db = sample_db () in
  ignore
    (Database.exec_script db
       "CREATE TABLE members (uid INT, gid TEXT); INSERT INTO members VALUES (1, 'g0')");
  (* pinned on, not inherited: the case must assert under DL_UNIFY=0 *)
  let e =
    Engine.create
      ~config:{ Engine.default_config with Engine.unification = true }
      db
  in
  for k = 0 to 9 do
    ignore
      (Engine.add_policy e
         ~name:(Printf.sprintf "lic%d" k)
         (Templates.group_license ~relation:"emp" ~max_users:3 ~window:10
            ~subject:(Templates.Group { table = "members"; gid = Printf.sprintf "g%d" k })
            ~message:"group license exceeded" ()))
  done;
  let pl = Engine.plan e in
  Alcotest.(check int) "ten policies collapse to one" 1
    (List.length pl.Engine.active)

(* The advisor produces an actionable diagnosis for each violation kind. *)
let test_advisor () =
  let db = sample_db () in
  let e = Engine.create db in
  ignore
    (Engine.add_policy e ~name:"overlay" (Templates.no_overlay ~relation:"emp" ()));
  ignore
    (Engine.add_policy e ~name:"ratelim"
       (Templates.rate_limit ~max_calls:1 ~window:8 ~subject:(Templates.User 5) ()));
  let diagnose uid sql =
    let q = Parser.query sql in
    match Engine.submit_ast e ~uid q with
    | Engine.Rejected _ -> Advisor.advise db ~query:q (Engine.last_violations e)
    | Engine.Accepted _ -> []
  in
  (* join violation: diagnosis names the offending combination *)
  let s1 =
    diagnose 1 "SELECT e.name FROM emp e, dept d WHERE e.dept = d.dname"
  in
  (match s1 with
  | [ s ] ->
    Alcotest.(check string) "policy named" "overlay" s.Advisor.policy;
    Alcotest.(check bool) "reason mentions combination" true
      (Test_policy.contains_substring s.Advisor.reason "combines");
    Alcotest.(check bool) "has actions" true (s.Advisor.actions <> [])
  | _ -> Alcotest.fail "expected one suggestion");
  (* rate-limit violation: diagnosis mentions the window *)
  ignore (Engine.submit e ~uid:5 "SELECT 1");
  let s2 = diagnose 5 "SELECT 1" in
  match s2 with
  | [ s ] ->
    Alcotest.(check string) "policy named" "ratelim" s.Advisor.policy;
    Alcotest.(check bool) "reason mentions window" true
      (Test_policy.contains_substring s.Advisor.reason "window")
  | _ -> Alcotest.fail "expected one suggestion"

let test_pricing_bill () =
  let db = sample_db () in
  let e = Engine.create db in
  ignore
    (Engine.add_policy e ~name:"retain" (Pricing.retention_policy ~window:50));
  ignore (Engine.submit e ~uid:4 "SELECT name FROM emp");
  (* 5 emp uses *)
  ignore (Engine.submit e ~uid:4 "SELECT dname FROM dept WHERE budget > 600");
  (* 2 dept uses *)
  ignore (Engine.submit e ~uid:8 "SELECT name FROM emp WHERE id = 1");
  let rates =
    [
      { Pricing.relation = "emp"; per_use = 0.5 };
      { Pricing.relation = "dept"; per_use = 2.0 };
    ]
  in
  let now = Usage_log.current_time db in
  let b4 = Pricing.bill db ~uid:4 ~since:0 ~until:now ~rates in
  Alcotest.(check (float 1e-9)) "uid 4 billed" (5. *. 0.5 +. 2. *. 2.0) b4.Pricing.total;
  let b8 = Pricing.bill db ~uid:8 ~since:0 ~until:now ~rates in
  Alcotest.(check (float 1e-9)) "uid 8 billed" 0.5 b8.Pricing.total;
  (* windows restrict the bill *)
  let b_empty = Pricing.bill db ~uid:4 ~since:now ~until:now ~rates in
  Alcotest.(check (float 1e-9)) "empty window" 0. b_empty.Pricing.total

let suite =
  [
    tc "device log (mobile output cap)" test_device_log_policy;
    tc "system-load sensitive rate limit" test_system_load_policy;
    tc "template: no_overlay" test_template_no_overlay;
    tc "template: rate_limit" test_template_rate_limit;
    tc "template: k_anonymity" test_template_k_anonymity;
    tc "template: no_aggregation" test_template_no_aggregation;
    tc "template: group_license" test_template_group_license;
    tc "template: volume_quota" test_template_volume_quota;
    tc "template: no_access" test_template_no_access;
    tc "template: reuse_cap" test_template_reuse_cap;
    tc "template: no_overlay_except" test_template_no_overlay_except;
    tc "templates unify" test_templates_unify;
    tc "advisor diagnoses violations" test_advisor;
    tc "pricing bills from the log" test_pricing_bill;
  ]
