(* Unit tests for the foundation modules: Vec, Value, Ty, Lineage, Stats,
   and the workload definitions. *)

open Relational
open Test_support

let test_vec_basics () =
  let v = Vec.create ~dummy:0 () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for k = 1 to 100 do
    Vec.push v k
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 41);
  Vec.set v 41 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 41);
  Alcotest.(check int) "fold" (5050 - 42 - 1) (Vec.fold_left ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 99) v);
  Vec.truncate v 10;
  Alcotest.(check (list int)) "truncate + to_list"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] (Vec.to_list v);
  (match Vec.get v 10 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out of bounds get must fail");
  Vec.clear v;
  Alcotest.(check int) "clear" 0 (Vec.length v)

let test_vec_of_list () =
  let v = Vec.of_list ~dummy:"" [ "a"; "b"; "c" ] in
  Alcotest.(check (array string)) "to_array" [| "a"; "b"; "c" |] (Vec.to_array v)

let test_vec_blit () =
  let src = Vec.of_list ~dummy:0 [ 1; 2; 3; 4; 5 ] in
  let dst = Vec.of_list ~dummy:0 [ 10; 20; 30 ] in
  (* overwrite inside the destination *)
  Vec.blit ~src ~src_pos:1 ~dst ~dst_pos:0 ~len:2;
  Alcotest.(check (list int)) "overwrite" [ 2; 3; 30 ] (Vec.to_list dst);
  (* extend past the destination's end *)
  Vec.blit ~src ~src_pos:2 ~dst ~dst_pos:2 ~len:3;
  Alcotest.(check (list int)) "extend" [ 2; 3; 3; 4; 5 ] (Vec.to_list dst);
  (* zero-length blit at the very end is a no-op, one past is not *)
  Vec.blit ~src ~src_pos:0 ~dst ~dst_pos:(Vec.length dst) ~len:0;
  Alcotest.(check int) "zero-length no-op" 5 (Vec.length dst);
  (match Vec.blit ~src ~src_pos:4 ~dst ~dst_pos:0 ~len:2 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "out-of-bounds source must fail");
  match Vec.blit ~src ~src_pos:0 ~dst ~dst_pos:(Vec.length dst + 1) ~len:1 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "gapped destination start must fail"

let test_vec_sub () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "middle" [ 2; 3; 4 ]
    (Vec.to_list (Vec.sub v ~pos:1 ~len:3));
  Alcotest.(check (list int)) "empty" [] (Vec.to_list (Vec.sub v ~pos:5 ~len:0));
  (* the copy is independent of the source *)
  let w = Vec.sub v ~pos:0 ~len:2 in
  Vec.set w 0 99;
  Alcotest.(check int) "source untouched" 1 (Vec.get v 0);
  match Vec.sub v ~pos:4 ~len:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-bounds sub must fail"

let test_vec_append () =
  let a = Vec.of_list ~dummy:0 [ 1; 2 ] in
  let b = Vec.of_list ~dummy:0 [ 3; 4; 5 ] in
  Vec.append a b;
  Alcotest.(check (list int)) "appended" [ 1; 2; 3; 4; 5 ] (Vec.to_list a);
  Alcotest.(check (list int)) "source untouched" [ 3; 4; 5 ] (Vec.to_list b);
  let e = Vec.create ~dummy:0 () in
  Vec.append a e;
  Alcotest.(check int) "empty append no-op" 5 (Vec.length a);
  Vec.append e b;
  Alcotest.(check (list int)) "append into empty" [ 3; 4; 5 ] (Vec.to_list e)

let test_value_equal_cross_numeric () =
  Alcotest.(check bool) "int ~ float" true (Value.equal (i 2) (f 2.));
  Alcotest.(check bool) "int <> float" false (Value.equal (i 2) (f 2.5));
  Alcotest.(check int) "compare across" 0 (Value.compare (i 2) (f 2.));
  Alcotest.(check bool) "hash agrees" true (Value.hash (i 2) = Value.hash (f 2.))

let test_value_to_sql_roundtrip () =
  List.iter
    (fun v ->
      let parsed = Parser.expr (Value.to_sql v) in
      match parsed with
      | Ast.Lit v' ->
        Alcotest.(check bool)
          (Printf.sprintf "to_sql round-trips %s" (Value.to_string v))
          true (Value.equal v v')
      | _ -> Alcotest.fail "literal expected")
    [ null; b true; b false; i 0; i (-17); f 2.5; s "it's"; s "" ]

let test_ty_of_string () =
  Alcotest.(check (option string)) "varchar" (Some "TEXT")
    (Option.map Ty.to_string (Ty.of_string "VarChar"));
  Alcotest.(check (option string)) "numeric" (Some "FLOAT")
    (Option.map Ty.to_string (Ty.of_string "numeric"));
  Alcotest.(check (option string)) "unknown" None
    (Option.map Ty.to_string (Ty.of_string "blob"))

let test_lineage () =
  let a = Lineage.singleton "r" 1 in
  let b = Lineage.singleton "r" 2 in
  let u = Lineage.union a b in
  Alcotest.(check int) "union cardinality" 2 (Lineage.cardinal u);
  Alcotest.(check bool) "idempotent" true
    (Lineage.to_list (Lineage.union u a) = Lineage.to_list u);
  let off = Lineage.union Lineage.off u in
  Alcotest.(check bool) "off absorbs" false (Lineage.is_tracking off);
  Alcotest.(check (list (pair string int))) "to_list sorted"
    [ ("r", 1); ("r", 2) ] (Lineage.to_list u)

let test_stats_arithmetic () =
  let open Datalawyer in
  let a = Stats.create () in
  a.Stats.log_track <- 1.0;
  a.Stats.policy_calls <- 3;
  let b = Stats.create () in
  b.Stats.policy_eval <- 2.0;
  b.Stats.policy_calls <- 1;
  let c = Stats.add a b in
  Alcotest.(check (float 1e-9)) "overhead" 3.0 (Stats.overhead c);
  Alcotest.(check int) "calls" 4 c.Stats.policy_calls;
  let m = Stats.mean [ a; b ] in
  Alcotest.(check (float 1e-9)) "mean track" 0.5 m.Stats.log_track;
  Alcotest.(check (float 1e-9)) "total = overhead + query" (Stats.total c)
    (Stats.overhead c +. c.Stats.query_exec)

let test_workload_definitions () =
  let n_patients = 200 in
  let qs = Workload.Queries.all ~n_patients in
  Alcotest.(check (list string)) "query names" [ "W1"; "W2"; "W3"; "W4" ]
    (List.map (fun q -> q.Workload.Queries.name) qs);
  (* every query parses *)
  List.iter (fun q -> ignore (Parser.query q.Workload.Queries.sql)) qs;
  let ps = Workload.Policies.all ~n_patients () in
  Alcotest.(check (list string)) "policy names"
    [ "P1"; "P2"; "P3"; "P4"; "P5"; "P6" ]
    (List.map (fun p -> p.Workload.Policies.name) ps);
  List.iter (fun p -> ignore (Parser.query p.Workload.Policies.sql)) ps;
  match Workload.Queries.find ~n_patients "W9" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown query name must fail"

let test_workload_runtimes_ordered () =
  (* The Table 3 design point: W1 < W2 < W3 < W4 — a steady-state
     ordering, so warm each query once before timing it (the cold first
     run pays parse/compile noise that can dwarf W2's sub-millisecond
     runtime). *)
  let s = Workload.Runner.make ~policy_names:[] () in
  let time name =
    let q = Workload.Runner.query s name in
    ignore (Workload.Runner.plain_query_time s ~n:1 q);
    (* Min of three samples: robust against a scheduler hiccup landing
       inside one sample and flipping the sub-millisecond W1/W2 order. *)
    List.fold_left min infinity
      (List.init 3 (fun _ -> Workload.Runner.plain_query_time s ~n:3 q))
  in
  let t1 = time "W1" and t2 = time "W2" and t3 = time "W3" and t4 = time "W4" in
  Alcotest.(check bool)
    (Printf.sprintf "W1 %.2f < W2 %.2f < W3 %.2f < W4 %.2f ms" (t1 *. 1e3)
       (t2 *. 1e3) (t3 *. 1e3) (t4 *. 1e3))
    true
    (t1 < t2 && t2 < t3 && t3 < t4)

let test_mimic_determinism () =
  let cfg = { Mimic.Generate.small_config with n_patients = 50 } in
  let dump db = Csv_io.export db ~table:"chartevents" in
  let a = dump (Mimic.Generate.database ~config:cfg ()) in
  let b = dump (Mimic.Generate.database ~config:cfg ()) in
  Alcotest.(check bool) "same seed, same data" true (a = b);
  let c =
    dump (Mimic.Generate.database ~config:{ cfg with Mimic.Generate.seed = 7 } ())
  in
  Alcotest.(check bool) "different seed, different data" false (a = c)

let test_mimic_shape () =
  let cfg = Mimic.Generate.small_config in
  let db = Mimic.Generate.database ~config:cfg () in
  Alcotest.check value "patient count"
    (i cfg.Mimic.Generate.n_patients)
    (Database.scalar db "SELECT COUNT(*) FROM d_patients");
  (* itemid 211 is a heavy hitter: roughly a third of events *)
  let total = Database.scalar db "SELECT COUNT(*) FROM chartevents" in
  let hr =
    Database.scalar db "SELECT COUNT(*) FROM chartevents WHERE itemid = 211"
  in
  (match total, hr with
  | Value.Int t, Value.Int h ->
    Alcotest.(check bool)
      (Printf.sprintf "heavy hitter (%d of %d)" h t)
      true
      (float_of_int h /. float_of_int t > 0.2
      && float_of_int h /. float_of_int t < 0.5)
  | _ -> Alcotest.fail "counts expected");
  (* uid 1 in group X, uid 0 absent *)
  Alcotest.check value "uid 1 in X" (i 1)
    (Database.scalar db
       "SELECT COUNT(*) FROM user_groups WHERE uid = 1 AND gid = 'X'");
  Alcotest.check value "uid 0 ungrouped" (i 0)
    (Database.scalar db "SELECT COUNT(*) FROM user_groups WHERE uid = 0")

let suite =
  [
    tc "vec basics" test_vec_basics;
    tc "vec of_list/to_array" test_vec_of_list;
    tc "vec blit" test_vec_blit;
    tc "vec sub" test_vec_sub;
    tc "vec append" test_vec_append;
    tc "value cross-numeric equality" test_value_equal_cross_numeric;
    tc "value to_sql round-trip" test_value_to_sql_roundtrip;
    tc "ty parsing" test_ty_of_string;
    tc "lineage sets" test_lineage;
    tc "stats arithmetic" test_stats_arithmetic;
    tc "workload definitions" test_workload_definitions;
    tc "workload runtimes ordered" test_workload_runtimes_ordered;
    tc "mimic determinism" test_mimic_determinism;
    tc "mimic shape" test_mimic_shape;
  ]
