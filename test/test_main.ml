let () =
  Alcotest.run "datalawyer"
    [
      ("foundation", Test_foundation.suite);
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("executor", Test_executor.suite);
      ("substrate_edge", Test_substrate_edge.suite);
      ("csv", Test_csv.suite);
      ("sql_features", Test_sql_features.suite);
      ("usage_log", Test_usage_log.suite);
      ("analysis", Test_analysis.suite);
      ("policy", Test_policy.suite);
      ("witness", Test_witness.suite);
      ("compaction", Test_compaction.suite);
      ("partial", Test_partial.suite);
      ("unify", Test_unify.suite);
      ("engine", Test_engine.suite);
      ("engine_strategies", Test_engine_strategies.suite);
      ("extension", Test_extension.suite);
      ("persist", Test_persist.suite);
      ("index", Test_index.suite);
      ("plan_diff", Test_plan_diff.suite);
      ("parallel", Test_parallel.suite);
      ("parallel_diff", Test_parallel_diff.suite);
      ("delta_diff", Test_delta_diff.suite);
      ("unify_scale", Test_unify_scale.suite);
      ("server", Test_server.suite);
      ("properties", Test_props.suite);
    ]
