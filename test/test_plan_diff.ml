(** Differential tests for the plan pipeline.

    The optimized path (bind → {!Optimizer.optimize} → compile) must be
    observationally equivalent to the naive reference path that compiles
    the binder's output directly: identical output columns and an
    identical multiset of (values, lineage set, source-tid set) rows.
    Rows are compared as multisets because the reference path's
    nested-loop joins can emit matches in a different order than the
    optimized hash joins — the same freedom the SQL semantics give an
    unordered query.

    Also here: regression tests pinning the prepared-plan cache's
    invalidation rules (DDL, [set_config], unification's constants-table
    rebuild), which all flow through the single catalog generation
    counter. *)

open Relational
open Datalawyer
open Test_support

(* Random instances of the two-table schema r(a,b), s(a,c) — NULL-free
   integers, so value comparison is total and aggregation deterministic. *)
let table_rows_gen =
  QCheck.Gen.list_size (QCheck.Gen.int_range 0 20)
    (QCheck.Gen.pair (QCheck.Gen.int_range 0 5) (QCheck.Gen.int_range 0 5))

let db_of_rows rows_r rows_s =
  let db = Database.create () in
  (* Indexes on the generator's predicate columns, so the 500-case
     property also exercises [Index_eq]/[Index_range] access paths: the
     optimized plans probe them, the reference path never does. *)
  ignore
    (Database.exec_script db
       "CREATE TABLE r (a INT, b INT); CREATE TABLE s (a INT, c INT); \
        CREATE INDEX ix_r_a ON r USING hash (a); \
        CREATE INDEX ix_r_b ON r USING sorted (b); \
        CREATE INDEX ix_s_c ON s USING sorted (c)");
  let r = Database.table db "r" and s = Database.table db "s" in
  List.iter
    (fun (a, b) -> ignore (Table.insert r [| Value.Int a; Value.Int b |]))
    rows_r;
  List.iter
    (fun (a, c) -> ignore (Table.insert s [| Value.Int a; Value.Int c |]))
    rows_s;
  db

(* Random query SQL. The shapes cover every operator the compiler emits:
   filtered scans, equi- and theta-joins, self-joins, subquery sources,
   grouping/HAVING, DISTINCT (ON), ORDER BY, LIMIT, UNION (ALL).
   Order-sensitive forms (LIMIT, DISTINCT ON) stay on single-table
   queries, where both paths scan in the same order. *)
let query_gen : string QCheck.Gen.t =
  let open QCheck.Gen in
  let k = int_range (-2) 7 in
  let cmp = oneofl [ "="; "<"; "<="; ">"; ">="; "<>" ] in
  let pred_r =
    oneof
      [
        map2 (fun op c -> Printf.sprintf "r.a %s %d" op c) cmp k;
        map2 (fun op c -> Printf.sprintf "r.b %s %d" op c) cmp k;
        map (fun op -> Printf.sprintf "r.a %s r.b" op) cmp;
        map2 (fun op c -> Printf.sprintf "r.a + r.b %s %d" op c) cmp k;
      ]
  in
  let pred_join =
    oneof
      [
        map (fun op -> Printf.sprintf "r.a %s s.a" op) cmp;
        map2 (fun op c -> Printf.sprintf "s.c %s %d" op c) cmp k;
        map2 (fun op c -> Printf.sprintf "r.b + s.c %s %d" op c) cmp k;
      ]
  in
  let wand preds =
    match List.filter (fun p -> p <> "") preds with
    | [] -> ""
    | ps -> " WHERE " ^ String.concat " AND " ps
  in
  let maybe g = oneof [ return ""; g ] in
  oneof
    [
      (* single table: projections, DISTINCT (ON), ORDER BY, LIMIT *)
      ( maybe pred_r >>= fun p ->
        oneofl
          [
            Printf.sprintf "SELECT * FROM r%s" (wand [ p ]);
            Printf.sprintf "SELECT r.b, r.a FROM r%s ORDER BY a DESC" (wand [ p ]);
            Printf.sprintf "SELECT DISTINCT a FROM r%s" (wand [ p ]);
            Printf.sprintf "SELECT DISTINCT ON (a) a, b FROM r%s" (wand [ p ]);
            Printf.sprintf "SELECT a, a * b AS ab FROM r%s ORDER BY a LIMIT 5"
              (wand [ p ]);
          ] );
      (* equi-join (optimizes to a hash join) plus extra predicates *)
      ( pair (maybe pred_r) (maybe pred_join) >>= fun (p1, p2) ->
        oneofl
          [
            Printf.sprintf "SELECT r.a, r.b, s.c FROM r, s%s"
              (wand [ "r.a = s.a"; p1; p2 ]);
            Printf.sprintf "SELECT * FROM r, s%s" (wand [ "r.a = s.a"; p1 ]);
          ] );
      (* theta-join / cross product (stays a nested loop) *)
      ( pair (maybe pred_r) (maybe pred_join) >>= fun (p1, p2) ->
        oneofl
          [
            Printf.sprintf "SELECT r.a, s.c FROM r, s%s" (wand [ "r.b < s.c"; p1 ]);
            Printf.sprintf "SELECT r.a, s.a FROM r, s%s" (wand [ p1; p2 ]);
          ] );
      (* self-join *)
      ( map2
          (fun op c ->
            Printf.sprintf
              "SELECT x.a, y.b FROM r x, r y WHERE x.a = y.a AND x.b %s %d" op c)
          cmp k );
      (* subquery source joined to a base table *)
      ( map2
          (fun c1 c2 ->
            Printf.sprintf
              "SELECT q.a, s.c FROM (SELECT a, b FROM r WHERE a > %d) q, s \
               WHERE q.a = s.a AND s.c < %d"
              c1 c2)
          k k );
      (* aggregation, single table and over a join *)
      ( pair (maybe pred_r) k >>= fun (p, thr) ->
        oneofl
          [
            Printf.sprintf
              "SELECT a, COUNT(*), SUM(b), MIN(b), MAX(b) FROM r%s GROUP BY a"
              (wand [ p ]);
            Printf.sprintf
              "SELECT a, COUNT(*) AS n FROM r%s GROUP BY a HAVING COUNT(*) > %d \
               ORDER BY a"
              (wand [ p ]) (max 0 thr);
            Printf.sprintf "SELECT COUNT(*), SUM(a + b) FROM r%s" (wand [ p ]);
            Printf.sprintf
              "SELECT r.a, COUNT(*), SUM(s.c) FROM r, s%s GROUP BY r.a"
              (wand [ "r.a = s.a"; p ]);
            Printf.sprintf
              "SELECT COUNT(DISTINCT r.b) FROM r, s%s" (wand [ "r.a = s.a"; p ]);
          ] );
      (* UNION / UNION ALL *)
      ( pair k k >>= fun (c1, c2) ->
        oneofl
          [
            Printf.sprintf
              "SELECT a FROM r WHERE a > %d UNION SELECT a FROM s WHERE a < %d"
              c1 c2;
            Printf.sprintf
              "SELECT a, b FROM r WHERE b <> %d UNION ALL SELECT a, c FROM s \
               WHERE c <> %d"
              c1 c2;
          ] );
    ]

let case_arb =
  QCheck.make
    ~print:(fun (sql, r, s) ->
      Printf.sprintf "%s\n r=%s s=%s" sql
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) r))
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) s)))
    (QCheck.Gen.triple query_gen table_rows_gen table_rows_gen)

(* Canonical form: multiset of (values, lineage set, source-tid set). *)
let canon (rows : Executor.row_out list) =
  List.sort compare
    (List.map
       (fun (r : Executor.row_out) ->
         ( Array.to_list r.Executor.values,
           List.sort compare r.Executor.lineage,
           List.sort compare r.Executor.src_tids ))
       rows)

let run_both (sql, rows_r, rows_s) =
  let db = db_of_rows rows_r rows_s in
  let cat = Database.catalog db in
  let q = Parser.query sql in
  let opts = { Executor.lineage = true; track_src = true } in
  let o = Executor.run ~opts cat q in
  let u = Executor.run_unoptimized ~opts cat q in
  (o, u)

let prop_diff =
  QCheck.Test.make
    ~name:
      "optimized pipeline = naive reference (rows, lineage, src tids)"
    ~count:500 case_arb
    (fun case ->
      let o, u = run_both case in
      o.Executor.columns = u.Executor.columns
      && canon o.Executor.out_rows = canon u.Executor.out_rows)

(* Vectorized vs row path ------------------------------------------------- *)

(* The vectorized executor must be {e bit-identical} to the row path —
   same rows in the same order, same source tids — because the engine
   treats the two as interchangeable per subtree. So unlike [prop_diff],
   no multiset canonicalization: exact output equality. *)
let canon_exact (rows : Executor.row_out list) =
  List.map
    (fun (r : Executor.row_out) ->
      (Array.to_list r.Executor.values, r.Executor.lineage, r.Executor.src_tids))
    rows

(* NULL-heavy variant of the table generator: a 0 in either column
   becomes NULL (range 0..5, so roughly a third of rows carry one),
   exercising NULL join keys, NULL grouping and three-valued filters
   through the batch operators. *)
let db_of_rows_nullable rows_r rows_s =
  let db = Database.create () in
  ignore
    (Database.exec_script db
       "CREATE TABLE r (a INT, b INT); CREATE TABLE s (a INT, c INT); \
        CREATE INDEX ix_r_a ON r USING hash (a); \
        CREATE INDEX ix_s_c ON s USING sorted (c)");
  let v = function 0 -> Value.Null | n -> Value.Int n in
  let r = Database.table db "r" and s = Database.table db "s" in
  (* one table columnar, one not: joins cross the zero-copy and
     transpose-fallback scan paths in the same plan *)
  ignore (Table.enable_columnar r);
  List.iter (fun (a, b) -> ignore (Table.insert r [| v a; v b |])) rows_r;
  List.iter (fun (a, c) -> ignore (Table.insert s [| v a; v c |])) rows_s;
  db

let run_vec_row ~nullable ~opts (sql, rows_r, rows_s) =
  let db =
    if nullable then db_of_rows_nullable rows_r rows_s
    else db_of_rows rows_r rows_s
  in
  let cat = Database.catalog db in
  let q = Parser.query sql in
  let vec =
    Executor.run_compiled (Executor.prepare ~opts ~vectorized:true cat q)
  in
  let row =
    Executor.run_compiled (Executor.prepare ~opts ~vectorized:false cat q)
  in
  (vec, row)

let vec_props =
  List.map
    (fun (name, nullable, opts) ->
      QCheck.Test.make ~name ~count:500 case_arb (fun case ->
          let vec, row = run_vec_row ~nullable ~opts case in
          vec.Executor.columns = row.Executor.columns
          && canon_exact vec.Executor.out_rows
             = canon_exact row.Executor.out_rows))
    [
      ("vectorized = row path, exact (default opts)", false, Executor.default_opts);
      ( "vectorized = row path, exact (NULL-heavy)",
        true,
        Executor.default_opts );
      ( "vectorized = row path, exact (track_src, NULL-heavy)",
        true,
        { Executor.lineage = false; track_src = true } );
    ]

(* Typed-column generators ------------------------------------------------ *)

(* Dictionary-string variant: both tables mirrored columnar with TEXT
   join keys, so the same strings intern to different codes per table
   and every equi-join crosses two distinct dictionaries. [hi] sets the
   cardinality of the string alphabet: low (4) gives dense overlap
   between the two dictionaries, high (40) makes most codes absent from
   the other side — the remap's "matches nothing" case. A 0 draw
   becomes NULL (code -1). *)
let str_rows_gen hi =
  QCheck.Gen.list_size (QCheck.Gen.int_range 0 20)
    (QCheck.Gen.pair (QCheck.Gen.int_range 0 hi) (QCheck.Gen.int_range 0 5))

let db_of_rows_str rows_r rows_s =
  let db = Database.create () in
  ignore
    (Database.exec_script db
       "CREATE TABLE r (a TEXT, b INT); CREATE TABLE s (a TEXT, c INT); \
        CREATE INDEX ix_r_a ON r USING hash (a)");
  let r = Database.table db "r" and s = Database.table db "s" in
  ignore (Table.enable_columnar r);
  ignore (Table.enable_columnar s);
  let v = function 0 -> Value.Null | n -> Value.Str (Printf.sprintf "k%02d" n) in
  List.iter (fun (a, b) -> ignore (Table.insert r [| v a; Value.Int b |])) rows_r;
  List.iter (fun (a, c) -> ignore (Table.insert s [| v a; Value.Int c |])) rows_s;
  db

(* String predicates: constants drawn wider than the low-cardinality
   alphabet, so Eq/Neq/ordering against a string no dictionary ever
   interned occur regularly (the compile-time absent-code fast path). *)
let str_query_gen : string QCheck.Gen.t =
  let open QCheck.Gen in
  let kc = map (fun n -> Printf.sprintf "'k%02d'" n) (int_range 1 45) in
  let cmp = oneofl [ "="; "<"; "<="; ">"; ">="; "<>" ] in
  oneof
    [
      map2
        (fun op c -> Printf.sprintf "SELECT * FROM r WHERE r.a %s %s" op c)
        cmp kc;
      map
        (fun c -> Printf.sprintf "SELECT DISTINCT a FROM r WHERE r.a <> %s" c)
        kc;
      map2
        (fun op c ->
          Printf.sprintf "SELECT r.b, s.c FROM r, s WHERE r.a = s.a AND s.c %s %d"
            op c)
        cmp (int_range (-2) 7);
      return "SELECT r.b, s.a FROM r, s WHERE r.a = s.a";
      map
        (fun c ->
          Printf.sprintf "SELECT r.b FROM r, s WHERE r.a = s.a AND r.a >= %s" c)
        kc;
      return "SELECT a, COUNT(*), SUM(b) FROM r GROUP BY a";
      return "SELECT a FROM r UNION SELECT a FROM s";
    ]

let print_case (sql, r, s) =
  let rows l =
    String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) l)
  in
  Printf.sprintf "%s\n r=%s s=%s" sql (rows r) (rows s)

let str_case_arb hi =
  QCheck.make ~print:print_case
    (QCheck.Gen.triple str_query_gen (str_rows_gen hi) (str_rows_gen hi))

(* Mixed-type variant: the second column of each table is declared FLOAT
   but receives [Value.Int] for even draws, demoting the typed float
   column to the boxed Mixed fallback at runtime. The batch kernels must
   route it through the same [Eval.compare_op] dispatch as the row path,
   including Int/Float cross-type equality against the generator's
   integer constants. Reuses the integer [query_gen] shapes. *)
let db_of_rows_mixed rows_r rows_s =
  let db = Database.create () in
  ignore
    (Database.exec_script db
       "CREATE TABLE r (a INT, b FLOAT); CREATE TABLE s (a INT, c FLOAT); \
        CREATE INDEX ix_r_a ON r USING hash (a); \
        CREATE INDEX ix_r_b ON r USING sorted (b); \
        CREATE INDEX ix_s_c ON s USING sorted (c)");
  let r = Database.table db "r" and s = Database.table db "s" in
  ignore (Table.enable_columnar r);
  ignore (Table.enable_columnar s);
  let v n = if n mod 2 = 0 then Value.Int n else Value.Float (float_of_int n) in
  List.iter
    (fun (a, b) -> ignore (Table.insert r [| Value.Int a; v b |]))
    rows_r;
  List.iter
    (fun (a, c) -> ignore (Table.insert s [| Value.Int a; v c |]))
    rows_s;
  db

let vec_typed_props =
  let prop ~name arb mkdb opts =
    QCheck.Test.make ~name ~count:500 arb (fun (sql, rows_r, rows_s) ->
        let db = mkdb rows_r rows_s in
        let cat = Database.catalog db in
        let q = Parser.query sql in
        let vec =
          Executor.run_compiled (Executor.prepare ~opts ~vectorized:true cat q)
        in
        let row =
          Executor.run_compiled (Executor.prepare ~opts ~vectorized:false cat q)
        in
        vec.Executor.columns = row.Executor.columns
        && canon_exact vec.Executor.out_rows = canon_exact row.Executor.out_rows)
  in
  [
    prop ~name:"vectorized = row path, exact (low-cardinality dict strings)"
      (str_case_arb 4) db_of_rows_str
      { Executor.lineage = false; track_src = true };
    prop ~name:"vectorized = row path, exact (high-cardinality dict strings)"
      (str_case_arb 40) db_of_rows_str Executor.default_opts;
    prop ~name:"vectorized = row path, exact (Mixed demotion, INT into FLOAT)"
      case_arb db_of_rows_mixed Executor.default_opts;
  ]

(* Adapter pins: deterministic cases for each row<->batch boundary. *)

let check_vec_exact ?(opts = Executor.default_opts) db sql =
  let cat = Database.catalog db in
  let q = Parser.query sql in
  let vec = Executor.run_compiled (Executor.prepare ~opts ~vectorized:true cat q) in
  let row = Executor.run_compiled (Executor.prepare ~opts ~vectorized:false cat q) in
  Alcotest.(check (list string)) "columns" row.Executor.columns vec.Executor.columns;
  Alcotest.(check bool) "rows exact" true
    (canon_exact vec.Executor.out_rows = canon_exact row.Executor.out_rows);
  vec

(* Subquery slots compile on the row path and adapt into the batch join;
   the surrounding hash join and DISTINCT run columnar. *)
let test_vec_sub_slot_adapter () =
  let db = sample_db () in
  let vec =
    check_vec_exact db
      "SELECT q.name, d.budget FROM (SELECT name, dept FROM emp WHERE salary \
       > 75) q, dept d WHERE q.dept = d.dname ORDER BY q.name"
  in
  Alcotest.(check bool) "sub-slot join returned rows" true
    (vec.Executor.out_rows <> [])

(* Index probes transpose into batches: probe counters advance and the
   NULL-key gate matches nothing, exactly like the row path. *)
let test_vec_index_adapter () =
  let db = sample_db () in
  ignore
    (Database.exec_script db "CREATE INDEX ix_emp_dept ON emp USING hash (dept)");
  let probes0 = Atomic.get Executor.index_probes in
  let vec =
    check_vec_exact db "SELECT e.name FROM emp e WHERE e.dept = 'eng'"
  in
  Alcotest.(check bool) "vectorized run probed the index" true
    (Atomic.get Executor.index_probes > probes0);
  Alcotest.(check bool) "probe returned rows" true (vec.Executor.out_rows <> []);
  let empty =
    check_vec_exact db "SELECT e.name FROM emp e WHERE e.dept = NULL"
  in
  Alcotest.(check int) "NULL key matches nothing" 0
    (List.length empty.Executor.out_rows)

(* The batch shared-scan cache: two plans sharing a scan prefix under
   one batch cache must materialize once and agree with the row path. *)
let test_vec_shared_batch_cache () =
  let db = sample_db () in
  let cat = Database.catalog db in
  let shared_batch = Shared_cache.create () in
  let shared = Shared_cache.create () in
  let opts = Executor.default_opts in
  let prep sql =
    Executor.prepare ~opts ~vectorized:true ~shared ~shared_batch cat
      (Parser.query sql)
  in
  let q1 = prep "SELECT e.name FROM emp e, dept d WHERE e.dept = d.dname" in
  let q2 = prep "SELECT e.salary FROM emp e, dept d WHERE e.dept = d.dname" in
  let r1 = Executor.run_compiled q1 and r2 = Executor.run_compiled q2 in
  let hits, misses = Shared_cache.stats shared_batch in
  Alcotest.(check bool) "batch cache materialized" true (misses > 0);
  Alcotest.(check bool) "batch cache reused" true (hits > 0);
  let row1 =
    Executor.run ~opts cat
      (Parser.query "SELECT e.name FROM emp e, dept d WHERE e.dept = d.dname")
  in
  Alcotest.(check bool) "shared batch = row path" true
    (canon_exact r1.Executor.out_rows = canon_exact row1.Executor.out_rows);
  Alcotest.(check bool) "second plan returned rows" true
    (r2.Executor.out_rows <> [])

(* Columnar mirror stays in sync through savepoint rollback — the
   engine's tentative-increment pattern — so a vectorized re-run after a
   rollback must not see the discarded rows. *)
let test_vec_columnar_rollback_sync () =
  let db = sample_db () in
  let cat = Database.catalog db in
  let emp = Database.table db "emp" in
  ignore (Table.enable_columnar emp);
  let count () =
    let r =
      Executor.run_compiled
        (Executor.prepare ~vectorized:true cat
           (Parser.query "SELECT COUNT(*) FROM emp"))
    in
    match r.Executor.out_rows with
    | [ { Executor.values = [| Value.Int n |]; _ } ] -> n
    | _ -> Alcotest.fail "count expected"
  in
  let n0 = count () in
  let sp = Table.savepoint emp in
  ignore
    (Table.insert emp [| Value.Int 99; Value.Str "x"; Value.Str "eng"; Value.Int 1 |]);
  Alcotest.(check int) "tentative row visible" (n0 + 1) (count ());
  Table.rollback_to emp sp;
  Alcotest.(check int) "rollback truncates the mirror" n0 (count ())

(* Cross-dictionary join remap: r and s are mirrored separately, so the
   same strings intern to different codes in each table's dictionary,
   and the probe side carries a string the build side never interned —
   the absent-code case the remap must resolve to "matches nothing". *)
let test_vec_cross_dict_join () =
  let db = Database.create () in
  ignore
    (Database.exec_script db
       "CREATE TABLE r (a TEXT, b INT); CREATE TABLE s (a TEXT, c INT)");
  let r = Database.table db "r" and s = Database.table db "s" in
  ignore (Table.enable_columnar r);
  ignore (Table.enable_columnar s);
  List.iter
    (fun (a, b) -> ignore (Table.insert r [| Value.Str a; Value.Int b |]))
    [ ("beta", 1); ("alpha", 2); ("beta", 3); ("gamma", 4) ];
  List.iter
    (fun (a, c) -> ignore (Table.insert s [| Value.Str a; Value.Int c |]))
    [ ("delta", 10); ("beta", 20); ("alpha", 30); ("beta", 40) ];
  let dict_of t =
    match Table.columnar t with
    | Some store -> (
      match Column.view store 0 with
      | Column.V_str (_, d) -> d
      | _ -> Alcotest.fail "TEXT column expected dictionary-coded")
    | None -> Alcotest.fail "columnar mirror expected"
  in
  let dr = dict_of r and ds = dict_of s in
  Alcotest.(check (option int)) "'beta' coded 0 in r" (Some 0)
    (Column.dict_find dr "beta");
  Alcotest.(check (option int)) "'beta' coded 1 in s" (Some 1)
    (Column.dict_find ds "beta");
  Alcotest.(check (option int)) "'delta' absent from r's dict" None
    (Column.dict_find dr "delta");
  let vec =
    check_vec_exact db
      ~opts:{ Executor.lineage = false; track_src = true }
      "SELECT r.b, s.c FROM r, s WHERE r.a = s.a"
  in
  Alcotest.(check int) "remapped join rows" 5 (List.length vec.Executor.out_rows)

(* Savepoint rollback truncates dictionary-coded rows but keeps the
   interned strings, so codes assigned before the savepoint stay valid
   and a later re-insert reuses the surviving entry. *)
let test_vec_dict_rollback () =
  let db = Database.create () in
  ignore (Database.exec_script db "CREATE TABLE t (a TEXT, b INT)");
  let t = Database.table db "t" in
  let store = Table.enable_columnar t in
  List.iter
    (fun (a, b) -> ignore (Table.insert t [| Value.Str a; Value.Int b |]))
    [ ("read", 1); ("write", 2); ("read", 3) ];
  let sp = Table.savepoint t in
  ignore (Table.insert t [| Value.Str "export"; Value.Int 4 |]);
  let vec = check_vec_exact db "SELECT b FROM t WHERE a = 'export'" in
  Alcotest.(check int) "tentative string row visible" 1
    (List.length vec.Executor.out_rows);
  Table.rollback_to t sp;
  let gone = check_vec_exact db "SELECT b FROM t WHERE a = 'export'" in
  Alcotest.(check int) "rolled-back string matches nothing" 0
    (List.length gone.Executor.out_rows);
  let _, _, entries = Column.layout_stats store in
  Alcotest.(check int) "dictionary keeps the rolled-back entry" 3 entries;
  let keep = check_vec_exact db "SELECT b FROM t WHERE a = 'read'" in
  Alcotest.(check int) "pre-savepoint codes still valid" 2
    (List.length keep.Executor.out_rows);
  ignore (Table.insert t [| Value.Str "export"; Value.Int 5 |]);
  let again = check_vec_exact db "SELECT b FROM t WHERE a = 'export'" in
  (match again.Executor.out_rows with
  | [ { Executor.values = [| Value.Int 5 |]; _ } ] -> ()
  | _ -> Alcotest.fail "re-inserted string should match the surviving code");
  let _, _, entries' = Column.layout_stats store in
  Alcotest.(check int) "re-insert interns nothing new" 3 entries'

(* Destructive deletion rebuilds the mirror from the heap: dictionaries
   come out dense (entries only for surviving strings) and the batch
   path agrees with the row path over the compacted store. *)
let test_vec_compaction_dense_codes () =
  let db = Database.create () in
  ignore (Database.exec_script db "CREATE TABLE t (a TEXT, b INT)");
  let t = Database.table db "t" in
  let store = Table.enable_columnar t in
  List.iter
    (fun (a, b) -> ignore (Table.insert t [| Value.Str a; Value.Int b |]))
    [ ("stale", 1); ("keep", 2); ("stale", 3); ("also", 4); ("keep", 5) ];
  let _, _, entries0 = Column.layout_stats store in
  Alcotest.(check int) "three strings interned" 3 entries0;
  ignore (Table.delete_where t (fun row -> Row.cell row 0 = Value.Str "stale"));
  let _, _, entries1 = Column.layout_stats store in
  Alcotest.(check int) "rebuild drops dead dictionary entries" 2 entries1;
  let vec = check_vec_exact db "SELECT a, b FROM t WHERE a >= 'keep' ORDER BY b" in
  Alcotest.(check int) "ordering over rebuilt codes" 2
    (List.length vec.Executor.out_rows)

(* An INT value stored into a FLOAT column demotes that column to the
   boxed Mixed layout, and the stored value must round-trip as
   [Value.Int] through the batch path (not coerced to Float). The
   heap-refill rebuild re-promotes the column once the stray Int is
   deleted. *)
let test_vec_mixed_demotion () =
  let db = Database.create () in
  ignore (Database.exec_script db "CREATE TABLE t (a INT, f FLOAT)");
  let t = Database.table db "t" in
  let store = Table.enable_columnar t in
  ignore (Table.insert t [| Value.Int 1; Value.Float 1.5 |]);
  let typed0, mixed0, _ = Column.layout_stats store in
  Alcotest.(check (pair int int)) "both columns typed before demotion" (2, 0)
    (typed0, mixed0);
  ignore (Table.insert t [| Value.Int 2; Value.Int 7 |]);
  let typed1, mixed1, _ = Column.layout_stats store in
  Alcotest.(check (pair int int)) "FLOAT column demoted to Mixed" (1, 1)
    (typed1, mixed1);
  let vec = check_vec_exact db "SELECT f FROM t WHERE f > 1 ORDER BY f" in
  (match vec.Executor.out_rows with
  | [ { Executor.values = [| v1 |]; _ }; { Executor.values = [| v2 |]; _ } ] ->
    Alcotest.(check bool) "Float cell survives" true (v1 = Value.Float 1.5);
    Alcotest.(check bool) "Int cell round-trips unboxed" true (v2 = Value.Int 7)
  | _ -> Alcotest.fail "two rows expected");
  ignore (Table.delete_where t (fun row -> Row.cell row 1 = Value.Int 7));
  let typed2, mixed2, _ = Column.layout_stats store in
  Alcotest.(check (pair int int)) "rebuild re-promotes the demoted column"
    (2, 0) (typed2, mixed2)

(* Engine-level differential: with the vectorized executor on and off,
   the same policy workload must produce identical verdicts, violation
   messages and result rows. *)
let test_vec_engine_differential () =
  let run vectorized =
    let db = sample_db () in
    let e =
      Engine.create
        ~config:{ Engine.default_config with Engine.vectorized; domains = 1 }
        db
    in
    ignore
      (Engine.add_policy e ~name:"no_mgmt"
         "SELECT DISTINCT 'mgmt data is off limits' FROM users u, emp g \
          WHERE u.uid = g.id AND g.dept = 'mgmt'");
    let render (uid, sql) =
      match Engine.submit e ~uid sql with
      | Engine.Accepted (r, _) ->
        "A["
        ^ String.concat ";"
            (List.map
               (fun (ro : Executor.row_out) ->
                 String.concat ","
                   (Array.to_list (Array.map Value.to_string ro.Executor.values)))
               r.Executor.out_rows)
        ^ "]"
      | Engine.Rejected (msgs, _) -> "R[" ^ String.concat ";" msgs ^ "]"
    in
    let trace =
      List.map render
        [
          (1, "SELECT name FROM emp ORDER BY name");
          (5, "SELECT name FROM emp");
          (2, "SELECT dname, budget FROM dept ORDER BY budget");
          (5, "SELECT COUNT(*) FROM emp");
          (1, "SELECT dept, COUNT(*) FROM emp GROUP BY dept");
        ]
    in
    Engine.close e;
    trace
  in
  let row = run false and vec = run true in
  Alcotest.(check bool) "workload produced both verdicts" true
    (List.exists (fun s -> s.[0] = 'R') row
    && List.exists (fun s -> s.[0] = 'A') row);
  Alcotest.(check (list string)) "verdicts, messages and rows identical" row vec

(* Deterministic spot check with full annotations through a join, so a
   lineage/src-tid regression fails with a readable diff. *)
let test_join_lineage_identical () =
  let db = sample_db () in
  let cat = Database.catalog db in
  let q =
    Parser.query
      "SELECT e.name, d.budget FROM emp e, dept d \
       WHERE e.dept = d.dname AND e.salary > 85"
  in
  let opts = { Executor.lineage = true; track_src = true } in
  let o = Executor.run ~opts cat q in
  let u = Executor.run_unoptimized ~opts cat q in
  Alcotest.(check (list string)) "columns" u.Executor.columns o.Executor.columns;
  Alcotest.(check bool) "rows + lineage + src tids" true
    (canon o.Executor.out_rows = canon u.Executor.out_rows);
  Alcotest.(check int) "join produced rows" 4 (List.length o.Executor.out_rows)

(* Indexed vs heap access: the same query through the optimizer with the
   index present (probes it) and after dropping it (heap scan) must be
   bit-for-bit identical, including provenance. *)
let test_indexed_vs_heap_identical () =
  let db = sample_db () in
  let cat = Database.catalog db in
  ignore
    (Database.exec_script db "CREATE INDEX ix_emp_dept ON emp USING hash (dept)");
  let q =
    Parser.query "SELECT e.name, e.salary FROM emp e WHERE e.dept = 'eng'"
  in
  let opts = { Executor.lineage = true; track_src = true } in
  let probes0 = Atomic.get Executor.index_probes in
  let indexed = Executor.run ~opts cat q in
  Alcotest.(check bool) "index path actually probed" true
    (Atomic.get Executor.index_probes > probes0);
  ignore (Database.exec_script db "DROP INDEX ix_emp_dept");
  let heap = Executor.run ~opts cat q in
  let unopt = Executor.run_unoptimized ~opts cat q in
  Alcotest.(check (list string)) "columns" heap.Executor.columns
    indexed.Executor.columns;
  Alcotest.(check bool) "indexed = heap (rows, lineage, src tids)" true
    (canon indexed.Executor.out_rows = canon heap.Executor.out_rows);
  Alcotest.(check bool) "indexed = reference" true
    (canon indexed.Executor.out_rows = canon unopt.Executor.out_rows);
  Alcotest.(check bool) "query returned rows" true
    (indexed.Executor.out_rows <> [])

(* Range access path, bounds from both sides of a BETWEEN. *)
let test_range_index_identical () =
  let db = sample_db () in
  let cat = Database.catalog db in
  ignore
    (Database.exec_script db
       "CREATE INDEX ix_emp_salary ON emp USING sorted (salary)");
  let q =
    Parser.query
      "SELECT e.name FROM emp e WHERE e.salary >= 80 AND e.salary < 95"
  in
  let opts = { Executor.lineage = true; track_src = true } in
  let probes0 = Atomic.get Executor.index_probes in
  let indexed = Executor.run ~opts cat q in
  Alcotest.(check bool) "range path probed" true
    (Atomic.get Executor.index_probes > probes0);
  let unopt = Executor.run_unoptimized ~opts cat q in
  Alcotest.(check bool) "range-indexed = reference" true
    (canon indexed.Executor.out_rows = canon unopt.Executor.out_rows);
  Alcotest.(check bool) "range returned rows" true
    (indexed.Executor.out_rows <> [])

(* Prepared-plan cache: DDL invalidation ---------------------------------- *)

let test_prepared_ddl_invalidation () =
  let db = sample_db () in
  let cat = Database.catalog db in
  let prep = Prepared.create cat in
  let q = Parser.query "SELECT COUNT(*) FROM emp" in
  let count () =
    match (Prepared.run prep q).Executor.out_rows with
    | [ { Executor.values = [| Value.Int n |]; _ } ] -> n
    | _ -> Alcotest.fail "count expected"
  in
  Alcotest.(check int) "initial rows" 5 (count ());
  Alcotest.(check int) "second run" 5 (count ());
  Alcotest.(check int) "second run hits the cache" 1 (fst (Prepared.stats prep));
  (* Drop and recreate the table: the cached plan captured the old table
     handle and must not survive. *)
  ignore
    (Database.exec_script db
       "DROP TABLE emp; CREATE TABLE emp (id INT, name TEXT, dept TEXT, \
        salary INT); INSERT INTO emp VALUES (9, 'zoe', 'eng', 70)");
  Alcotest.(check int) "fresh table, fresh plan" 1 (count ())

(* Prepared-plan cache: set_config invalidation (the PR 1 composition
   point — one generation counter serves both the persistence-scope
   recompute and the plan cache). *)

let test_set_config_invalidates_cache () =
  let db = sample_db () in
  let e = Engine.create db in
  ignore
    (Engine.add_policy e ~name:"expensive"
       "SELECT DISTINCT 'mgmt data is off limits' FROM users u, emp g \
        WHERE u.uid = g.id AND g.dept = 'mgmt'");
  let accepted = function Engine.Accepted _ -> true | _ -> false in
  Alcotest.(check bool) "uid 1 accepted" true
    (accepted (Engine.submit e ~uid:1 "SELECT name FROM emp"));
  Alcotest.(check bool) "uid 5 (mgmt) rejected" false
    (accepted (Engine.submit e ~uid:5 "SELECT name FROM emp"));
  let _, misses_before = Engine.plan_cache_stats e in
  (* A warm resubmission compiles nothing new... *)
  ignore (Engine.submit e ~uid:1 "SELECT name FROM emp");
  let hits_warm, misses_warm = Engine.plan_cache_stats e in
  Alcotest.(check int) "warm submission adds no misses" misses_before misses_warm;
  Alcotest.(check bool) "warm submission hits the cache" true (hits_warm > 0);
  (* ...while set_config drops every cached plan, even when the new
     config is behaviourally close to the old one. *)
  Engine.set_config e { Engine.default_config with Engine.strategy = Engine.Serial };
  ignore (Engine.submit e ~uid:1 "SELECT name FROM emp");
  let _, misses_after = Engine.plan_cache_stats e in
  Alcotest.(check bool) "set_config forces recompilation" true
    (misses_after > misses_warm);
  (* And decisions stay correct under the new config. *)
  Alcotest.(check bool) "uid 5 still rejected after set_config" false
    (accepted (Engine.submit e ~uid:5 "SELECT name FROM emp"))

(* Prepared-plan cache: unification's constants-table rebuild. Adding a
   third unifiable policy drops and recreates the dl_constants table; a
   stale compiled plan would keep scanning the dropped two-constant
   table and miss the new member's violation. *)

let test_unify_constants_rebuild_invalidates () =
  let db = sample_db () in
  let e = Engine.create db in
  let member dept =
    ignore
      (Engine.add_policy e ~name:("no_" ^ dept)
         (Printf.sprintf
            "SELECT DISTINCT 'dept %s off limits' FROM users u, emp g \
             WHERE u.uid = g.id AND g.dept = '%s' HAVING COUNT(DISTINCT u.uid) > 0"
            dept dept))
  in
  member "eng";
  member "ops";
  let accepted = function Engine.Accepted _ -> true | _ -> false in
  (* uid 5 is mgmt: accepted, and the unified eng/ops plan is now warm. *)
  Alcotest.(check bool) "mgmt uid accepted with eng/ops policies" true
    (accepted (Engine.submit e ~uid:5 "SELECT name FROM emp"));
  Alcotest.(check bool) "eng uid rejected" false
    (accepted (Engine.submit e ~uid:1 "SELECT name FROM emp"));
  member "mgmt";
  Alcotest.(check bool) "third member enforced immediately" false
    (accepted (Engine.submit e ~uid:5 "SELECT name FROM emp"))

(* Warm resubmission of the same workload compiles nothing new. *)
let test_cache_steady_state () =
  let db = sample_db () in
  let e = Engine.create db in
  ignore
    (Engine.add_policy e ~name:"p"
       "SELECT DISTINCT 'no ops data' FROM users u, emp g \
        WHERE u.uid = g.id AND g.dept = 'ops'");
  ignore (Engine.submit e ~uid:1 "SELECT name FROM emp");
  ignore (Engine.submit e ~uid:1 "SELECT name FROM emp");
  let _, misses = Engine.plan_cache_stats e in
  ignore (Engine.submit e ~uid:1 "SELECT name FROM emp");
  ignore (Engine.submit e ~uid:2 "SELECT salary FROM emp WHERE id = 1");
  ignore (Engine.submit e ~uid:1 "SELECT name FROM emp");
  let _, misses' = Engine.plan_cache_stats e in
  (* Only the one new user query should have compiled. *)
  Alcotest.(check int) "steady state compiles only new queries" (misses + 1)
    misses'

let suite =
  List.map QCheck_alcotest.to_alcotest (prop_diff :: (vec_props @ vec_typed_props))
  @ [
      tc "vectorized: sub-slot adapter" test_vec_sub_slot_adapter;
      tc "vectorized: index probe adapter" test_vec_index_adapter;
      tc "vectorized: shared batch cache" test_vec_shared_batch_cache;
      tc "vectorized: columnar rollback sync" test_vec_columnar_rollback_sync;
      tc "vectorized: cross-dict join remap" test_vec_cross_dict_join;
      tc "vectorized: dictionary rollback keeps codes" test_vec_dict_rollback;
      tc "vectorized: compaction re-interns dense codes"
        test_vec_compaction_dense_codes;
      tc "vectorized: Mixed demotion round-trips INT" test_vec_mixed_demotion;
      tc "vectorized: engine verdict differential" test_vec_engine_differential;
      tc "join lineage identical across paths" test_join_lineage_identical;
      tc "indexed access = heap access, bit for bit" test_indexed_vs_heap_identical;
      tc "range index = reference" test_range_index_identical;
      tc "prepared cache: DDL invalidates" test_prepared_ddl_invalidation;
      tc "prepared cache: set_config invalidates" test_set_config_invalidates_cache;
      tc "prepared cache: unify constants rebuild" test_unify_constants_rebuild_invalidates;
      tc "prepared cache: steady state" test_cache_steady_state;
    ]
