open Relational
open Test_support

let q db sql = Database.rows db sql

let test_scan_project () =
  let db = sample_db () in
  check_rows "all names"
    [ [ s "ada" ]; [ s "bob" ]; [ s "cyd" ]; [ s "dee" ]; [ s "eli" ] ]
    (q db "SELECT name FROM emp")

let test_filter () =
  let db = sample_db () in
  check_rows "salary filter"
    [ [ s "ada"; i 120 ]; [ s "eli"; i 150 ] ]
    (q db "SELECT name, salary FROM emp WHERE salary > 100");
  check_rows "conjunction"
    [ [ s "bob" ] ]
    (q db "SELECT name FROM emp WHERE dept = 'eng' AND salary < 110");
  check_rows "disjunction"
    [ [ s "ada" ]; [ s "cyd" ] ]
    (q db "SELECT name FROM emp WHERE name = 'ada' OR name = 'cyd'")

let test_expressions_in_select () =
  let db = sample_db () in
  check_rows "arithmetic"
    [ [ i 240 ] ]
    (q db "SELECT salary * 2 FROM emp WHERE id = 1");
  check_rows "concat"
    [ [ s "ada!" ] ]
    (q db "SELECT name || '!' FROM emp WHERE id = 1");
  check_rows "int division truncates"
    [ [ i 2 ] ] (q db "SELECT 5 / 2");
  check_rows "float division"
    [ [ f 2.5 ] ] (q db "SELECT 5.0 / 2");
  check_rows "modulo" [ [ i 1 ] ] (q db "SELECT 5 % 2")

let test_join_hash () =
  let db = sample_db () in
  check_rows "equi join"
    [
      [ s "ada"; i 1000 ]; [ s "bob"; i 1000 ];
      [ s "cyd"; i 500 ]; [ s "dee"; i 500 ]; [ s "eli"; i 800 ];
    ]
    (q db "SELECT e.name, d.budget FROM emp e, dept d WHERE e.dept = d.dname")

let test_join_nested_loop () =
  let db = sample_db () in
  (* Non-equi join forces the nested-loop path. *)
  check_rows "theta join"
    [ [ s "bob" ] ]
    (q db
       "SELECT e.name FROM emp e, dept d WHERE e.dept = d.dname AND e.salary * 9 < d.budget")

let test_cross_product () =
  let db = sample_db () in
  Alcotest.(check int)
    "5 x 3 rows" 15
    (List.length (q db "SELECT e.id, d.dname FROM emp e, dept d"))

let test_self_join () =
  let db = sample_db () in
  check_rows "pairs in same dept"
    [ [ s "ada"; s "bob" ]; [ s "cyd"; s "dee" ] ]
    (q db
       "SELECT a.name, b.name FROM emp a, emp b WHERE a.dept = b.dept AND a.id < b.id")

let test_three_way_join () =
  let db =
    db_of_script
      {|
      CREATE TABLE a (x INT); CREATE TABLE b (x INT, y INT); CREATE TABLE c (y INT);
      INSERT INTO a VALUES (1), (2);
      INSERT INTO b VALUES (1, 10), (2, 20), (3, 30);
      INSERT INTO c VALUES (10), (30)
      |}
  in
  check_rows "chain"
    [ [ i 1; i 10 ] ]
    (q db "SELECT a.x, c.y FROM a, b, c WHERE a.x = b.x AND b.y = c.y")

let test_group_by () =
  let db = sample_db () in
  check_rows "count per dept"
    [ [ s "eng"; i 2 ]; [ s "ops"; i 2 ]; [ s "mgmt"; i 1 ] ]
    (q db "SELECT dept, COUNT(*) FROM emp GROUP BY dept");
  check_rows "sum per dept"
    [ [ s "eng"; i 220 ]; [ s "ops"; i 170 ]; [ s "mgmt"; i 150 ] ]
    (q db "SELECT dept, SUM(salary) FROM emp GROUP BY dept")

let test_aggregates () =
  let db = sample_db () in
  check_rows "min max avg"
    [ [ i 80; i 150; f 108.0 ] ]
    (q db "SELECT MIN(salary), MAX(salary), AVG(salary) FROM emp");
  check_rows "count distinct"
    [ [ i 3 ] ]
    (q db "SELECT COUNT(DISTINCT dept) FROM emp")

let test_aggregate_empty_input () =
  let db = sample_db () in
  (* No GROUP BY: one row even over empty input. *)
  check_rows "count of nothing"
    [ [ i 0 ] ]
    (q db "SELECT COUNT(*) FROM emp WHERE salary > 1000");
  check_rows "sum of nothing is NULL"
    [ [ null ] ]
    (q db "SELECT SUM(salary) FROM emp WHERE salary > 1000");
  (* With GROUP BY: zero rows. *)
  check_rows "no groups" []
    (q db "SELECT dept, COUNT(*) FROM emp WHERE salary > 1000 GROUP BY dept")

let test_having () =
  let db = sample_db () in
  check_rows "having count > 1"
    [ [ s "eng" ]; [ s "ops" ] ]
    (q db "SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) > 1");
  (* HAVING without GROUP BY forms a single group (paper's P2b shape). *)
  check_rows "global having true"
    [ [ i 1 ] ]
    (q db "SELECT DISTINCT 1 FROM emp HAVING COUNT(DISTINCT dept) > 2");
  check_rows "global having false" []
    (q db "SELECT DISTINCT 1 FROM emp HAVING COUNT(DISTINCT dept) > 5")

let test_distinct () =
  let db = sample_db () in
  check_rows "distinct depts"
    [ [ s "eng" ]; [ s "ops" ]; [ s "mgmt" ] ]
    (q db "SELECT DISTINCT dept FROM emp")

let test_distinct_on () =
  let db = sample_db () in
  let rows = q db "SELECT DISTINCT ON (dept), name FROM emp" in
  Alcotest.(check int) "one per dept" 3 (List.length rows)

let test_order_limit () =
  let db = sample_db () in
  check_rows_ordered "order by salary desc"
    [ [ s "eli" ]; [ s "ada" ]; [ s "bob" ] ]
    (q db "SELECT name FROM emp ORDER BY salary DESC LIMIT 3");
  check_rows_ordered "order by alias"
    [ [ i 80 ]; [ i 90 ] ]
    (q db "SELECT salary AS pay FROM emp ORDER BY pay LIMIT 2")

let test_union () =
  let db = sample_db () in
  check_rows "union dedupes"
    [ [ s "eng" ]; [ s "ops" ]; [ s "mgmt" ] ]
    (q db "SELECT dept FROM emp UNION SELECT dname FROM dept");
  Alcotest.(check int)
    "union all keeps dupes" 8
    (List.length (q db "SELECT dept FROM emp UNION ALL SELECT dname FROM dept"))

let test_subquery () =
  let db = sample_db () in
  check_rows "subquery in from"
    [ [ s "eng" ] ]
    (q db
       "SELECT t.dept FROM (SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept) t \
        WHERE t.n = 2 AND t.dept = 'eng'")

let test_select_without_from () =
  let db = Database.create () in
  check_rows "select constant" [ [ i 42 ] ] (q db "SELECT 42");
  check_rows "false constant filter" [] (q db "SELECT 1 WHERE 1 = 2")

let test_star_variants () =
  let db = sample_db () in
  Alcotest.(check int)
    "star arity" 4
    (List.length (List.hd (q db "SELECT * FROM emp WHERE id = 1")));
  Alcotest.(check int)
    "table star after join" 4
    (List.length
       (List.hd (q db "SELECT e.* FROM emp e, dept d WHERE e.dept = d.dname AND e.id = 1")))

let test_null_semantics () =
  let db = db_of_script "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (NULL), (3)" in
  check_rows "null fails comparisons" [ [ i 1 ] ] (q db "SELECT a FROM t WHERE a < 2");
  check_rows "null = null is false" [] (q db "SELECT a FROM t WHERE NULL = NULL");
  check_rows "count ignores null" [ [ i 2 ] ] (q db "SELECT COUNT(a) FROM t");
  check_rows "count star counts null" [ [ i 3 ] ] (q db "SELECT COUNT(*) FROM t");
  check_rows "sum skips null" [ [ i 4 ] ] (q db "SELECT SUM(a) FROM t")

let test_ambiguity_errors () =
  let db = sample_db () in
  let fails sql =
    match q db sql with
    | exception Errors.Sql_error ((Errors.Bind_error | Errors.Catalog_error), _) -> ()
    | _ -> Alcotest.failf "expected bind error for %S" sql
  in
  fails "SELECT id FROM emp e, emp f";
  (* ambiguous *)
  fails "SELECT nosuch FROM emp";
  fails "SELECT emp.id FROM emp e";
  (* alias hides table name *)
  fails "SELECT * FROM nosuchtable";
  fails "SELECT COUNT(*) FROM emp WHERE COUNT(*) > 1"

let test_division_by_zero () =
  let db = sample_db () in
  Alcotest.check_raises "div by zero"
    (Errors.Sql_error (Errors.Runtime_error, "division by zero"))
    (fun () -> ignore (q db "SELECT 1 / 0"))

let test_dml () =
  let db = sample_db () in
  ignore (Database.exec db "INSERT INTO emp VALUES (6, 'fae', 'eng', 95)");
  Alcotest.(check int) "insert visible" 3
    (List.length (q db "SELECT id FROM emp WHERE dept = 'eng'"));
  ignore (Database.exec db "UPDATE emp SET salary = salary + 10 WHERE dept = 'eng'");
  check_rows "update applied" [ [ i 130 ] ] (q db "SELECT salary FROM emp WHERE id = 1");
  ignore (Database.exec db "DELETE FROM emp WHERE dept = 'eng'");
  check_rows "delete applied" [ [ i 0 ] ]
    (q db "SELECT COUNT(*) FROM emp WHERE dept = 'eng'")

let test_savepoint_rollback () =
  let db = sample_db () in
  let t = Database.table db "emp" in
  let sp = Table.savepoint t in
  ignore (Table.insert t [| i 7; s "gil"; s "eng"; i 99 |]);
  Alcotest.(check int) "visible inside" 6 (Table.row_count t);
  Alcotest.(check int) "increment" 1 (Table.fold_since (fun n _ -> n + 1) 0 t sp);
  Table.rollback_to t sp;
  Alcotest.(check int) "rolled back" 5 (Table.row_count t)

let suite =
  [
    tc "scan and project" test_scan_project;
    tc "filter" test_filter;
    tc "expressions in select" test_expressions_in_select;
    tc "hash join" test_join_hash;
    tc "nested loop join" test_join_nested_loop;
    tc "cross product" test_cross_product;
    tc "self join" test_self_join;
    tc "three-way join" test_three_way_join;
    tc "group by" test_group_by;
    tc "aggregates" test_aggregates;
    tc "aggregate over empty input" test_aggregate_empty_input;
    tc "having" test_having;
    tc "distinct" test_distinct;
    tc "distinct on" test_distinct_on;
    tc "order by / limit" test_order_limit;
    tc "union" test_union;
    tc "subquery in from" test_subquery;
    tc "select without from" test_select_without_from;
    tc "star variants" test_star_variants;
    tc "null semantics" test_null_semantics;
    tc "bind errors" test_ambiguity_errors;
    tc "division by zero" test_division_by_zero;
    tc "dml" test_dml;
    tc "savepoint rollback" test_savepoint_rollback;
  ]
