type fsync_policy = Wal.fsync_policy = Always | Interval of int | Never

type t = {
  dir : string;
  fsync : fsync_policy;
  mutable generation : int;
  mutable wal : Wal.t;
  mutable wal_base : int;  (** records already in the WAL file at open *)
  mutable fsync_base : int;  (** fsyncs of WAL handles already rotated out *)
  mutable closed : bool;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let wal_path t = Filename.concat t.dir (Recovery.wal_file t.generation)
let snap_path t = Filename.concat t.dir (Recovery.snapshot_file t.generation)

let open_dir ?(fsync = Interval 32) dir =
  mkdir_p dir;
  let recovered = Recovery.run ~dir in
  let generation, wal_base =
    match recovered with
    | None -> (0, 0)
    | Some r -> (r.Recovery.generation, r.Recovery.wal_records)
  in
  let wal =
    Wal.open_append ~path:(Filename.concat dir (Recovery.wal_file generation)) ~fsync
  in
  ({ dir; fsync; generation; wal; wal_base; fsync_base = 0; closed = false }, recovered)

let dir t = t.dir
let fsync_policy t = t.fsync
let generation t = t.generation
let wal_records t = t.wal_base + Wal.records_appended t.wal

let fsyncs t = t.fsync_base + Wal.fsyncs t.wal

let check_open t = if t.closed then invalid_arg "Persistence.Store: store is closed"

let log_record t r =
  check_open t;
  Wal.append t.wal (Record.encode r)

let log_commit t ~clock ~increments =
  log_record t (Record.Commit { clock; increments })

let log_add_policy t p = log_record t (Record.Add_policy p)
let log_remove_policy t name = log_record t (Record.Remove_policy name)

let flush ?(sync = false) t =
  check_open t;
  Wal.flush ~sync t.wal

let checkpoint t state =
  check_open t;
  let old_wal = wal_path t and old_snap = snap_path t in
  let g' = t.generation + 1 in
  Snapshot.write (Filename.concat t.dir (Recovery.snapshot_file g')) state;
  (* Buffered (and even already-written) WAL records are subsumed by the
     snapshot: close the old WAL without caring about its tail. *)
  t.fsync_base <- t.fsync_base + Wal.fsyncs t.wal + 1 (* close fsyncs once *);
  Wal.close t.wal;
  t.generation <- g';
  t.wal_base <- 0;
  t.wal <- Wal.open_append ~path:(wal_path t) ~fsync:t.fsync;
  (* Only now is the old generation garbage. *)
  (try Sys.remove old_wal with Sys_error _ -> ());
  if Sys.file_exists old_snap then (try Sys.remove old_snap with Sys_error _ -> ())

let disk_bytes t =
  let size p = try (Unix.stat p).Unix.st_size with Unix.Unix_error _ -> 0 in
  size (wal_path t) + size (snap_path t)

let close t =
  if not t.closed then begin
    Wal.close t.wal;
    t.closed <- true
  end
