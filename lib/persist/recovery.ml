exception Recovery_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Recovery_error m)) fmt

let snapshot_file g = Printf.sprintf "snapshot-%08d.dls" g
let wal_file g = Printf.sprintf "wal-%08d.dlw" g

let parse_gen ~prefix ~suffix name =
  let pl = String.length prefix and sl = String.length suffix in
  let nl = String.length name in
  if nl > pl + sl && String.sub name 0 pl = prefix && String.sub name (nl - sl) sl = suffix
  then int_of_string_opt (String.sub name pl (nl - pl - sl))
  else None

type recovered = {
  generation : int;
  state : Snapshot.state;
  wal_records : int;
  torn_dropped : bool;
}

(* Replay WAL records on top of a snapshot state. Rows are accumulated in
   reverse per relation so replay stays linear in the WAL length. *)
let replay (state : Snapshot.state) (records : Record.t list) : Snapshot.state =
  let rels : (string, Snapshot.rel * Relational.Value.t array list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (name, (r : Snapshot.rel)) ->
      Hashtbl.replace rels name (r, ref (List.rev r.Snapshot.rows)))
    state.Snapshot.relations;
  let clock = ref state.Snapshot.clock in
  let policies = ref state.Snapshot.policies in
  List.iter
    (function
      | Record.Commit { clock = c; increments } ->
        clock := c;
        List.iter
          (fun (name, rows) ->
            match Hashtbl.find_opt rels name with
            | Some (_, acc) -> List.iter (fun row -> acc := row :: !acc) rows
            | None ->
              Hashtbl.replace rels name
                ({ Snapshot.schema = []; rows = [] }, ref (List.rev rows)))
          increments
      | Record.Add_policy p -> policies := !policies @ [ p ]
      | Record.Remove_policy name ->
        policies := List.filter (fun p -> p.Record.name <> name) !policies)
    records;
  let relations =
    Hashtbl.fold
      (fun name (r, acc) out ->
        (name, { r with Snapshot.rows = List.rev !acc }) :: out)
      rels []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { Snapshot.clock = !clock; policies = !policies; relations }

let run ~dir : recovered option =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  (* Leftover temp files from a crash mid-checkpoint are garbage. *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    entries;
  let gens_of ~prefix ~suffix =
    Array.to_list entries |> List.filter_map (parse_gen ~prefix ~suffix)
  in
  let snap_gens = gens_of ~prefix:"snapshot-" ~suffix:".dls" in
  let wal_gens = gens_of ~prefix:"wal-" ~suffix:".dlw" in
  match List.sort compare (snap_gens @ wal_gens) |> List.rev with
  | [] -> None
  | g :: _ ->
    (* Drop stale lower generations (superseded by checkpoint [g]). *)
    List.iter
      (fun g' ->
        if g' < g then
          try Sys.remove (Filename.concat dir (snapshot_file g')) with Sys_error _ -> ())
      snap_gens;
    List.iter
      (fun g' ->
        if g' < g then
          try Sys.remove (Filename.concat dir (wal_file g')) with Sys_error _ -> ())
      wal_gens;
    let snap_path = Filename.concat dir (snapshot_file g) in
    let base =
      if Sys.file_exists snap_path then (
        try Snapshot.read snap_path
        with Codec.Corrupt m -> error "corrupt snapshot: %s" m)
      else if g > 0 then
        (* A generation > 0 WAL without its snapshot: the snapshot this
           WAL's records build on is gone — replaying would silently
           resurrect a partial state. *)
        error "missing %s for generation %d WAL" (snapshot_file g) g
      else Snapshot.empty
    in
    let wal_path = Filename.concat dir (wal_file g) in
    let records, wal_records, torn =
      if Sys.file_exists wal_path then begin
        let r = try Wal.read wal_path with Codec.Corrupt m -> error "corrupt WAL: %s" m in
        if r.Wal.torn then Wal.truncate wal_path r.Wal.valid_bytes;
        let records =
          List.map
            (fun payload ->
              try Record.decode payload
              with Codec.Corrupt m -> error "corrupt WAL record: %s" m)
            r.Wal.payloads
        in
        (records, List.length records, r.Wal.torn)
      end
      else ([], 0, false)
    in
    Some
      {
        generation = g;
        state = replay base records;
        wal_records;
        torn_dropped = torn;
      }
