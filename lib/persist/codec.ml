open Relational

let format_version = 1

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

(* Encoding ---------------------------------------------------------------- *)

let w_u8 b n = Buffer.add_uint8 b (n land 0xff)
let w_u32 b n = Buffer.add_int32_le b (Int32.of_int n)
let w_i64 b n = Buffer.add_int64_le b (Int64.of_int n)

let w_string b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let ty_tag = function Ty.Int -> 0 | Ty.Float -> 1 | Ty.Bool -> 2 | Ty.Text -> 3

let w_ty b ty = w_u8 b (ty_tag ty)

let w_value b = function
  | Value.Null -> w_u8 b 0
  | Value.Bool false -> w_u8 b 1
  | Value.Bool true -> w_u8 b 2
  | Value.Int n ->
    w_u8 b 3;
    w_i64 b n
  | Value.Float f ->
    w_u8 b 4;
    Buffer.add_int64_le b (Int64.bits_of_float f)
  | Value.Str s ->
    w_u8 b 5;
    w_string b s

let w_row b cells =
  w_u32 b (Array.length cells);
  Array.iter (w_value b) cells

let w_rows b rows =
  w_u32 b (List.length rows);
  List.iter (w_row b) rows

(* Decoding ---------------------------------------------------------------- *)

type cursor = { buf : string; mutable pos : int }

let cursor s = { buf = s; pos = 0 }

let remaining c = String.length c.buf - c.pos

let need c n =
  if remaining c < n then
    corrupt "truncated payload: need %d bytes at offset %d of %d" n c.pos
      (String.length c.buf)

let r_u8 c =
  need c 1;
  let n = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  n

let r_u32 c =
  need c 4;
  (* Unsigned: CRC-32 values live in the full 32-bit range. *)
  let n = Int32.to_int (String.get_int32_le c.buf c.pos) land 0xffffffff in
  c.pos <- c.pos + 4;
  n

let r_i64 c =
  need c 8;
  let n = Int64.to_int (String.get_int64_le c.buf c.pos) in
  c.pos <- c.pos + 8;
  n

let r_string c =
  let n = r_u32 c in
  need c n;
  let s = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let r_ty c =
  match r_u8 c with
  | 0 -> Ty.Int
  | 1 -> Ty.Float
  | 2 -> Ty.Bool
  | 3 -> Ty.Text
  | t -> corrupt "unknown type tag %d" t

let r_value c =
  match r_u8 c with
  | 0 -> Value.Null
  | 1 -> Value.Bool false
  | 2 -> Value.Bool true
  | 3 -> Value.Int (r_i64 c)
  | 4 ->
    need c 8;
    let bits = String.get_int64_le c.buf c.pos in
    c.pos <- c.pos + 8;
    Value.Float (Int64.float_of_bits bits)
  | 5 -> Value.Str (r_string c)
  | t -> corrupt "unknown value tag %d" t

let r_row c =
  let n = r_u32 c in
  (* Sanity bound: a row longer than the remaining bytes is corrupt. *)
  if n > remaining c then corrupt "row arity %d exceeds remaining payload" n;
  Array.init n (fun _ -> r_value c)

let r_rows c =
  let n = r_u32 c in
  if n > remaining c then corrupt "row count %d exceeds remaining payload" n;
  List.init n (fun _ -> r_row c)

let expect_end c =
  if remaining c <> 0 then
    corrupt "trailing %d bytes after payload (version mismatch?)" (remaining c)
