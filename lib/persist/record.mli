(** Typed WAL records.

    One {!Commit} record is written per {e accepted} submission and is
    the unit of atomicity: it carries the clock advance plus every log
    relation's retained increment, so recovery either replays the whole
    submission or (for a torn final record) none of it. Policy
    registration changes are journaled too, so the registered-policy set
    survives a crash between snapshots. *)

open Relational

(** A registered policy, as persisted: the SQL source re-parses against
    the same catalog into the same policy, and [active_from] pins the
    footnote-7 history guard to its original registration time. *)
type policy_rec = { name : string; source : string; active_from : int }

type t =
  | Commit of { clock : int; increments : (string * Value.t array list) list }
      (** the retained log increments of one accepted submission, keyed
          by (lowercased) relation name, in deterministic name order *)
  | Add_policy of policy_rec
  | Remove_policy of string

val encode : t -> string

(** @raise Codec.Corrupt on malformed input. *)
val decode : string -> t

val pp : Format.formatter -> t -> unit
