(** A durable usage-log store: one directory, one live generation.

    The store pairs the current {!Wal} with the snapshot it extends and
    handles checkpoint rotation: {!checkpoint} atomically writes
    [snapshot-<g+1>], starts an empty [wal-<g+1>] and deletes the
    generation-[g] files — truncating exactly the WAL prefix the new
    snapshot supersedes. The engine triggers checkpoints when witness
    compaction shrinks a log relation (so on-disk size tracks the
    compacted log), when the persistence scope changes, and when the WAL
    grows past a length bound. *)

type fsync_policy = Wal.fsync_policy = Always | Interval of int | Never

type t

(** Open (creating the directory if needed) and recover. Returns the
    recovered state to install — [None] for a brand-new store.
    @raise Recovery.Recovery_error on corruption. *)
val open_dir : ?fsync:fsync_policy -> string -> t * Recovery.recovered option

val dir : t -> string
val fsync_policy : t -> fsync_policy

(** Current checkpoint generation. *)
val generation : t -> int

(** Records in the current WAL (replayed at open + appended since). *)
val wal_records : t -> int

(** fsync calls issued over the store's lifetime (across WAL
    rotations) — the group-commit currency: one fsync may make many
    commit records durable at once. *)
val fsyncs : t -> int

(** Journal one accepted submission: its clock and every log relation's
    retained increment, as one atomic record. *)
val log_commit : t -> clock:int -> increments:(string * Relational.Value.t array list) list -> unit

val log_add_policy : t -> Record.policy_rec -> unit
val log_remove_policy : t -> string -> unit

(** Write a new snapshot and rotate generations. Buffered WAL records
    are subsumed by the snapshot and discarded. *)
val checkpoint : t -> Snapshot.state -> unit

(** Drain the group-commit buffer to disk. Fsyncs unless the policy is
    {!Never}; [~sync:true] forces the fsync even then — the policy
    server's group commit runs with {!Never} buffering and one forced
    sync per admission batch. *)
val flush : ?sync:bool -> t -> unit

(** Bytes currently on disk (snapshot + WAL of the live generation). *)
val disk_bytes : t -> int

(** Flush, fsync and release the WAL descriptor. The store must not be
    used afterwards. *)
val close : t -> unit
