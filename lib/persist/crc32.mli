(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum guarding
    every WAL record and snapshot payload.

    Checksums are kept as non-negative [int]s in the 32-bit range so they
    can be written with the 32-bit codec primitives directly. *)

(** [update crc s pos len] extends [crc] with [len] bytes of [s] starting
    at [pos]. Start from [0] for a fresh checksum. *)
val update : int -> string -> int -> int -> int

(** Checksum of a whole string. *)
val string : string -> int

(** Checksum of a whole [Buffer.t] without copying it out twice. *)
val buffer : Buffer.t -> int
