(** Append-only write-ahead log.

    A WAL file is an 8-byte header ([DLWAL] + format version) followed
    by framed records: [u32 payload-length][u32 CRC-32 of payload][payload].
    Appends go through a group-commit buffer whose flush/fsync cadence is
    set by the {!fsync_policy}:

    - {!Always}: every record is written and fsynced before {!append}
      returns — no accepted submission is ever lost;
    - [Interval n]: records are buffered and written + fsynced every
      [n] appends (and on {!flush}/{!close}) — a crash loses at most the
      last [n-1] commits;
    - {!Never}: records are written through the OS page cache and never
      fsynced — durability is delegated to the kernel (and to
      {!close}). *)

type fsync_policy = Always | Interval of int | Never

val pp_fsync_policy : Format.formatter -> fsync_policy -> unit

type t

(** Open for appending, creating the file (with its header) if missing
    or empty. The file must not be torn — run {!read} / {!truncate}
    first when recovering. *)
val open_append : path:string -> fsync:fsync_policy -> t

val path : t -> string

(** Records appended through this handle since it was opened. *)
val records_appended : t -> int

(** fsync calls issued through this handle — the group-commit currency:
    one fsync may cover many appended records. *)
val fsyncs : t -> int

(** Frame one payload and append it, honoring the fsync policy. *)
val append : t -> string -> unit

(** Write any buffered records to the file; fsync unless the policy is
    {!Never} and [sync] is not forced. *)
val flush : ?sync:bool -> t -> unit

(** Flush, fsync (regardless of policy) and close the descriptor. *)
val close : t -> unit

(** {1 Reading (recovery path)} *)

type read_result = {
  payloads : string list;  (** decoded record payloads, in append order *)
  valid_bytes : int;  (** file offset just past the last whole record *)
  torn : bool;  (** a final partial record was found (and not returned) *)
}

(** Sequentially read every whole record. A record cut short by a crash
    makes [torn] true and is dropped; a checksum mismatch or malformed
    header raises {!Codec.Corrupt} — that is corruption, not a torn
    tail, and must not be silently discarded. *)
val read : string -> read_result

(** Truncate a torn file to its valid prefix (recovery, before
    {!open_append}). *)
val truncate : string -> int -> unit
