(** Crash recovery: latest valid snapshot + WAL tail replay.

    A persistence directory holds at most one live generation [g]:
    [snapshot-<g>.dls] (absent for generation 0 before the first
    checkpoint) and [wal-<g>.dlw] with the commits since that snapshot.
    Recovery loads the snapshot, replays every whole WAL record on top,
    truncates a torn final record (dropping exactly that commit), and
    surfaces any checksum or format violation as {!Recovery_error} —
    never as silently missing state. Stale lower-generation files and
    leftover [.tmp] files (from a crash mid-checkpoint) are removed. *)

exception Recovery_error of string

val error : ('a, unit, string, 'b) format4 -> 'a

val snapshot_file : int -> string
val wal_file : int -> string

type recovered = {
  generation : int;
  state : Snapshot.state;  (** snapshot with the WAL tail applied *)
  wal_records : int;  (** whole records replayed from the WAL *)
  torn_dropped : bool;  (** a torn final record was truncated away *)
}

(** Recover from [dir]; [None] when the directory holds no generation at
    all (a fresh store).
    @raise Recovery_error on corruption. *)
val run : dir:string -> recovered option
