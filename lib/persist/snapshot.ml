open Relational

type rel = { schema : (string * Ty.t) list; rows : Value.t array list }

type state = {
  clock : int;
  policies : Record.policy_rec list;
  relations : (string * rel) list;
}

let empty = { clock = 0; policies = []; relations = [] }

(* Serialization ----------------------------------------------------------- *)

let magic = "DLSNAP"

let encode state =
  let b = Buffer.create 4096 in
  Codec.w_i64 b state.clock;
  Codec.w_u32 b (List.length state.policies);
  List.iter
    (fun (p : Record.policy_rec) ->
      Codec.w_string b p.name;
      Codec.w_string b p.source;
      Codec.w_i64 b p.active_from)
    state.policies;
  Codec.w_u32 b (List.length state.relations);
  List.iter
    (fun (name, r) ->
      Codec.w_string b name;
      Codec.w_u32 b (List.length r.schema);
      List.iter
        (fun (col, ty) ->
          Codec.w_string b col;
          Codec.w_ty b ty)
        r.schema;
      Codec.w_rows b r.rows)
    state.relations;
  Buffer.contents b

let decode payload =
  let c = Codec.cursor payload in
  let clock = Codec.r_i64 c in
  let np = Codec.r_u32 c in
  if np > Codec.remaining c then Codec.corrupt "policy count %d too large" np;
  let policies =
    List.init np (fun _ ->
        let name = Codec.r_string c in
        let source = Codec.r_string c in
        let active_from = Codec.r_i64 c in
        { Record.name; source; active_from })
  in
  let nr = Codec.r_u32 c in
  if nr > Codec.remaining c then Codec.corrupt "relation count %d too large" nr;
  let relations =
    List.init nr (fun _ ->
        let name = Codec.r_string c in
        let nc = Codec.r_u32 c in
        if nc > Codec.remaining c then Codec.corrupt "column count %d too large" nc;
        let schema =
          List.init nc (fun _ ->
              let col = Codec.r_string c in
              let ty = Codec.r_ty c in
              (col, ty))
        in
        let rows = Codec.r_rows c in
        (name, { schema; rows }))
  in
  Codec.expect_end c;
  { clock; policies; relations }

let write path state =
  let payload = encode state in
  let b = Buffer.create (String.length payload + 16) in
  Buffer.add_string b magic;
  Codec.w_u8 b Codec.format_version;
  Codec.w_u8 b 0;
  Codec.w_u32 b (String.length payload);
  Codec.w_u32 b (Crc32.string payload);
  Buffer.add_string b payload;
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let s = Buffer.contents b in
      let rec go off =
        if off < String.length s then
          go (off + Unix.write_substring fd s off (String.length s - off))
      in
      go 0;
      Unix.fsync fd);
  Unix.rename tmp path;
  (* Make the rename itself durable. *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | dirfd ->
    Fun.protect ~finally:(fun () -> Unix.close dirfd) (fun () ->
        try Unix.fsync dirfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let header_len = String.length magic + 2 + 8

let read path =
  let data = In_channel.with_open_bin path In_channel.input_all in
  if String.length data < header_len then
    Codec.corrupt "%s: snapshot shorter than its header" path;
  if String.sub data 0 (String.length magic) <> magic then
    Codec.corrupt "%s: bad snapshot magic" path;
  let version = Char.code data.[String.length magic] in
  if version <> Codec.format_version then
    Codec.corrupt "%s: unsupported snapshot format version %d" path version;
  let c = Codec.cursor (String.sub data (String.length magic + 2) 8) in
  let plen = Codec.r_u32 c in
  let crc = Codec.r_u32 c in
  if String.length data <> header_len + plen then
    Codec.corrupt "%s: snapshot payload length mismatch (%d vs %d)" path
      (String.length data - header_len)
      plen;
  let payload = String.sub data header_len plen in
  if Crc32.string payload <> crc then
    Codec.corrupt "%s: snapshot checksum mismatch" path;
  decode payload
