open Relational

type policy_rec = { name : string; source : string; active_from : int }

type t =
  | Commit of { clock : int; increments : (string * Value.t array list) list }
  | Add_policy of policy_rec
  | Remove_policy of string

let encode r =
  let b = Buffer.create 256 in
  (match r with
  | Commit { clock; increments } ->
    Codec.w_u8 b 1;
    Codec.w_i64 b clock;
    Codec.w_u32 b (List.length increments);
    List.iter
      (fun (rel, rows) ->
        Codec.w_string b rel;
        Codec.w_rows b rows)
      increments
  | Add_policy { name; source; active_from } ->
    Codec.w_u8 b 2;
    Codec.w_string b name;
    Codec.w_string b source;
    Codec.w_i64 b active_from
  | Remove_policy name ->
    Codec.w_u8 b 3;
    Codec.w_string b name);
  Buffer.contents b

let decode s =
  let c = Codec.cursor s in
  let r =
    match Codec.r_u8 c with
    | 1 ->
      let clock = Codec.r_i64 c in
      let n = Codec.r_u32 c in
      if n > Codec.remaining c then
        Codec.corrupt "increment count %d exceeds remaining payload" n;
      let increments =
        List.init n (fun _ ->
            let rel = Codec.r_string c in
            let rows = Codec.r_rows c in
            (rel, rows))
      in
      Commit { clock; increments }
    | 2 ->
      let name = Codec.r_string c in
      let source = Codec.r_string c in
      let active_from = Codec.r_i64 c in
      Add_policy { name; source; active_from }
    | 3 -> Remove_policy (Codec.r_string c)
    | k -> Codec.corrupt "unknown record kind %d" k
  in
  Codec.expect_end c;
  r

let pp ppf = function
  | Commit { clock; increments } ->
    Format.fprintf ppf "commit@%d {%s}" clock
      (String.concat "; "
         (List.map
            (fun (rel, rows) -> Printf.sprintf "%s:+%d" rel (List.length rows))
            increments))
  | Add_policy p -> Format.fprintf ppf "add_policy %s (from %d)" p.name p.active_from
  | Remove_policy n -> Format.fprintf ppf "remove_policy %s" n
