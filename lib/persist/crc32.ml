(** CRC-32 (IEEE 802.3). Table-driven, one byte per step; checksums stay
    within 32 bits by construction since the seed is 32-bit and every
    step shifts right. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s pos len =
  let t = Lazy.force table in
  let crc = ref (crc lxor 0xffffffff) in
  for i = pos to pos + len - 1 do
    crc := t.((!crc lxor Char.code (String.unsafe_get s i)) land 0xff) lxor (!crc lsr 8)
  done;
  !crc lxor 0xffffffff

let string s = update 0 s 0 (String.length s)

let buffer b =
  let s = Buffer.contents b in
  update 0 s 0 (String.length s)
