type fsync_policy = Always | Interval of int | Never

let pp_fsync_policy ppf = function
  | Always -> Format.pp_print_string ppf "always"
  | Interval n -> Format.fprintf ppf "interval:%d" n
  | Never -> Format.pp_print_string ppf "never"

let magic = "DLWAL"

(* 5 magic bytes + version + 2 reserved. *)
let header_len = 8

let header () =
  let b = Buffer.create header_len in
  Buffer.add_string b magic;
  Codec.w_u8 b Codec.format_version;
  Codec.w_u8 b 0;
  Codec.w_u8 b 0;
  Buffer.contents b

(* The [Never] policy still drains the buffer to the page cache once it
   grows past this, so memory use stays bounded on long runs. *)
let max_buffered_bytes = 1 lsl 18

type t = {
  path : string;
  fd : Unix.file_descr;
  policy : fsync_policy;
  pending : Buffer.t;
  mutable pending_records : int;
  mutable appended : int;
  mutable fsyncs : int;
}

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.write_substring fd s off (len - off))
  in
  go 0

let flush ?(sync = false) t =
  if Buffer.length t.pending > 0 then begin
    write_all t.fd (Buffer.contents t.pending);
    Buffer.clear t.pending;
    t.pending_records <- 0
  end;
  let want_sync = match t.policy with Never -> sync | Always | Interval _ -> true in
  if want_sync then begin
    Unix.fsync t.fd;
    t.fsyncs <- t.fsyncs + 1
  end

let open_append ~path ~fsync =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  if size < header_len then begin
    (* Fresh file, or a crash tore even the header: restart it. *)
    Unix.ftruncate fd 0;
    write_all fd (header ())
  end;
  { path; fd; policy = fsync; pending = Buffer.create 4096; pending_records = 0;
    appended = 0; fsyncs = 0 }

let path t = t.path

let records_appended t = t.appended

let fsyncs t = t.fsyncs

let append t payload =
  Codec.w_u32 t.pending (String.length payload);
  Codec.w_u32 t.pending (Crc32.string payload);
  Buffer.add_string t.pending payload;
  t.pending_records <- t.pending_records + 1;
  t.appended <- t.appended + 1;
  match t.policy with
  | Always -> flush t
  | Interval n -> if t.pending_records >= max 1 n then flush t
  | Never -> if Buffer.length t.pending >= max_buffered_bytes then flush t

let close t =
  flush ~sync:true t;
  Unix.close t.fd

(* Reading ----------------------------------------------------------------- *)

type read_result = { payloads : string list; valid_bytes : int; torn : bool }

let read file =
  let data = In_channel.with_open_bin file In_channel.input_all in
  let len = String.length data in
  if len < header_len then
    (* Nothing but a torn header (or an empty file): no records. *)
    { payloads = []; valid_bytes = 0; torn = len > 0 }
  else if String.sub data 0 (String.length magic) <> magic then
    Codec.corrupt "%s: bad WAL magic" file
  else begin
    let version = Char.code data.[String.length magic] in
    if version <> Codec.format_version then
      Codec.corrupt "%s: unsupported WAL format version %d" file version;
    let payloads = ref [] in
    let pos = ref header_len in
    let torn = ref false in
    (try
       while !pos < len do
         if len - !pos < 8 then raise Exit;
         let c = Codec.cursor (String.sub data !pos 8) in
         let plen = Codec.r_u32 c in
         let crc = Codec.r_u32 c in
         if len - !pos - 8 < plen then raise Exit;
         let payload = String.sub data (!pos + 8) plen in
         if Crc32.string payload <> crc then
           Codec.corrupt "%s: checksum mismatch in record at offset %d" file !pos;
         payloads := payload :: !payloads;
         pos := !pos + 8 + plen
       done
     with Exit -> torn := true);
    { payloads = List.rev !payloads; valid_bytes = !pos; torn = !torn }
  end

let truncate file valid_bytes = Unix.truncate file valid_bytes
