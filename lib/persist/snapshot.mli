(** Snapshot files: the full persisted engine state at a checkpoint.

    A snapshot holds the clock, the registered-policy set and the
    complete contents of every relation in the persistence scope (the
    plan's [store_rels] — log relations some time-dependent policy still
    needs). The payload is one CRC-framed block behind a [DLSNAP] +
    version header; writes go to a temporary file that is fsynced and
    atomically renamed, so a crash can never leave a half-written
    snapshot under the real name. *)

open Relational

(** One relation's persisted state. [schema] is stored for validation on
    recovery; an empty schema means "unknown" (a relation first seen in
    the WAL, whose rows are type-checked on reload instead). *)
type rel = { schema : (string * Ty.t) list; rows : Value.t array list }

type state = {
  clock : int;
  policies : Record.policy_rec list;
  relations : (string * rel) list;  (** in deterministic name order *)
}

val empty : state

(** Atomically write [state] to [path] ([path ^ ".tmp"] + rename). *)
val write : string -> state -> unit

(** @raise Codec.Corrupt on checksum or format errors. *)
val read : string -> state
