(** Binary codec for {!Relational.Value.t} rows and the scalar
    primitives the WAL and snapshot formats are built from.

    All integers are little-endian and fixed-width; strings and row/row
    lists are length-prefixed. Floats round-trip exactly (IEEE 754 bit
    pattern), so a recovered log relation is byte-identical to the one
    that was written. Decoding is defensive: any malformed input raises
    {!Corrupt} rather than producing a wrong value. *)

open Relational

(** Version byte stamped into every WAL and snapshot header. Bump when
    the framing or value encoding changes incompatibly. *)
val format_version : int

(** Malformed or truncated input. The recovery layer turns this into a
    {!Recovery.Recovery_error} with file context. *)
exception Corrupt of string

val corrupt : ('a, unit, string, 'b) format4 -> 'a

(** {1 Encoding} — writers append to a [Buffer.t]. *)

val w_u8 : Buffer.t -> int -> unit
val w_u32 : Buffer.t -> int -> unit

(** 63-bit OCaml int as a little-endian 64-bit word. *)
val w_i64 : Buffer.t -> int -> unit

val w_string : Buffer.t -> string -> unit
val w_ty : Buffer.t -> Ty.t -> unit
val w_value : Buffer.t -> Value.t -> unit
val w_row : Buffer.t -> Value.t array -> unit
val w_rows : Buffer.t -> Value.t array list -> unit

(** {1 Decoding} — a cursor over an immutable string. *)

type cursor

val cursor : string -> cursor

(** Bytes not yet consumed. *)
val remaining : cursor -> int

val r_u8 : cursor -> int
val r_u32 : cursor -> int
val r_i64 : cursor -> int
val r_string : cursor -> string
val r_ty : cursor -> Ty.t
val r_value : cursor -> Value.t
val r_row : cursor -> Value.t array
val r_rows : cursor -> Value.t array list

(** Assert the cursor is exhausted; raises {!Corrupt} on trailing bytes
    (a sign of a version mismatch or corruption). *)
val expect_end : cursor -> unit
