(** Fixed-size domain pool over a Mutex/Condition work queue.

    Workers loop: wait for the queue to be non-empty (or the pool to be
    stopped), pop one job, run it outside the lock. A job is a [unit ->
    unit] closure that stores its own outcome into its task cell and
    signals the task's private condition, so [await] never contends with
    the queue lock. Shutdown lets workers drain the remaining queue
    before they exit (the loop only terminates on [stop && empty]).

    Determinism: [map] awaits its tasks in submission order and
    re-raises the first failure in input order only after every task of
    the batch has resolved — completion order (which is scheduling
    noise) is never observable. *)

type job = unit -> unit

type t = {
  lock : Mutex.t;  (** guards [jobs] and [stop] *)
  nonempty : Condition.t;
  jobs : job Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t array;
  workers : int;
  tasks : int Atomic.t;
}

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a task = { m : Mutex.t; c : Condition.t; mutable state : 'a state }

let workers t = t.workers

let tasks_run t = Atomic.get t.tasks

let rec worker_loop pool =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.jobs && not pool.stop do
    Condition.wait pool.nonempty pool.lock
  done;
  if Queue.is_empty pool.jobs then Mutex.unlock pool.lock (* stopped *)
  else begin
    let job = Queue.pop pool.jobs in
    Mutex.unlock pool.lock;
    job ();
    worker_loop pool
  end

let create ~workers =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let pool =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      stop = false;
      domains = [||];
      workers;
      tasks = Atomic.make 0;
    }
  in
  pool.domains <-
    Array.init workers (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let submit pool f =
  let task = { m = Mutex.create (); c = Condition.create (); state = Pending } in
  let job () =
    let outcome =
      try Done (f ()) with e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Atomic.incr pool.tasks;
    Mutex.lock task.m;
    task.state <- outcome;
    Condition.broadcast task.c;
    Mutex.unlock task.m
  in
  Mutex.lock pool.lock;
  if pool.stop then begin
    Mutex.unlock pool.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push job pool.jobs;
  Condition.signal pool.nonempty;
  Mutex.unlock pool.lock;
  task

(* Wait without raising: [map] needs every task joined before it
   re-raises, or tasks of a failed batch would still be running when the
   caller regains control (and unfreezes tables). *)
let await_result (task : 'a task) : ('a, exn * Printexc.raw_backtrace) result =
  Mutex.lock task.m;
  let rec wait () =
    match task.state with
    | Pending ->
      Condition.wait task.c task.m;
      wait ()
    | Done v ->
      Mutex.unlock task.m;
      Ok v
    | Failed (e, bt) ->
      Mutex.unlock task.m;
      Error (e, bt)
  in
  wait ()

let await task =
  match await_result task with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

(* Run one queued job on the calling domain, if any. *)
let try_run_one pool =
  Mutex.lock pool.lock;
  let job = if Queue.is_empty pool.jobs then None else Some (Queue.pop pool.jobs) in
  Mutex.unlock pool.lock;
  match job with
  | None -> false
  | Some j ->
    j ();
    true

let map pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs ->
    let tasks = List.map (fun x -> submit pool (fun () -> f x)) xs in
    (* Help: the submitting domain drains the queue alongside the
       workers, then blocks only on stragglers already being run. *)
    while try_run_one pool do
      ()
    done;
    let results = List.map await_result tasks in
    List.map
      (function Ok v -> v | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
      results

let shutdown pool =
  Mutex.lock pool.lock;
  if pool.stop then Mutex.unlock pool.lock
  else begin
    pool.stop <- true;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.domains;
    pool.domains <- [||]
  end

let is_stopped pool =
  Mutex.lock pool.lock;
  let stopped = pool.stop in
  Mutex.unlock pool.lock;
  stopped

(* Shared registry ------------------------------------------------------- *)

let registry_lock = Mutex.create ()

let registry : (int, t) Hashtbl.t = Hashtbl.create 4

let shared ~workers =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      match Hashtbl.find_opt registry workers with
      | Some pool when not (is_stopped pool) -> pool
      | Some _ | None ->
        let pool = create ~workers in
        Hashtbl.replace registry workers pool;
        pool)

let shutdown_shared () =
  (* Collect under the lock, join outside it: [shutdown] blocks on
     worker domains, and a worker finishing its last job must not need
     the registry lock to make progress. *)
  Mutex.lock registry_lock;
  let pools = Hashtbl.fold (fun _ pool acc -> pool :: acc) registry [] in
  Hashtbl.reset registry;
  Mutex.unlock registry_lock;
  List.iter shutdown pools
