(** Fixed-size domain pool (stdlib [Domain] + [Mutex]/[Condition] only).

    A pool owns [workers] domains blocked on a shared FIFO work queue.
    {!submit} enqueues a thunk and returns a task handle; {!await}
    blocks until it finishes, re-raising (with its backtrace) any
    exception the thunk raised. {!map} is the batch primitive the engine
    uses: results come back in input order regardless of completion
    order, the {e calling} domain helps drain the queue while it waits
    (so a pool with [workers = n - 1] keeps [n] domains busy), and the
    first failure in input order is re-raised only after every task of
    the batch has finished — callers can rely on no task of a batch
    still running once [map] returns, which is what lets the engine
    freeze tables for exactly the span of a batch.

    Tasks must not themselves call {!map}/{!await} on the same pool
    (a worker blocking on the queue it is supposed to drain can
    deadlock); the engine only ever fans out from the submitting
    domain, one batch at a time. *)

type t

type 'a task

(** [create ~workers] spawns [workers] (>= 1) worker domains.
    @raise Invalid_argument on [workers < 1]. *)
val create : workers:int -> t

(** Number of worker domains (excluding callers helping in {!map}). *)
val workers : t -> int

(** Tasks executed over the pool's lifetime (including those run by
    helping callers). *)
val tasks_run : t -> int

(** Enqueue a thunk. @raise Invalid_argument after {!shutdown}. *)
val submit : t -> (unit -> 'a) -> 'a task

(** Block until the task completes; returns its result or re-raises its
    exception with the original backtrace. *)
val await : 'a task -> 'a

(** [map pool f xs] applies [f] to every element on the pool, returning
    results in input order. The caller's domain participates in draining
    the queue. If any application raised, the first failure in input
    order is re-raised after {e all} tasks of the batch have finished.
    [map] on an empty or singleton list runs inline. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** Wake all workers, let them drain the queue, and join them. Safe to
    call twice; {!submit} afterwards raises. *)
val shutdown : t -> unit

(** [true] once {!shutdown} has run: the pool accepts no more work.
    Holders of a cached {!shared} pool check this to refetch a live
    one. *)
val is_stopped : t -> bool

(** Process-wide pool registry: one pool per distinct [workers] count,
    created on first use and shared between engines, so creating many
    engines (tests, REPLs) never multiplies domains — the spawned-domain
    count stays bounded by the distinct pool sizes in use. A registered
    pool that was shut down (see {!shutdown_shared}) is transparently
    replaced on the next call. *)
val shared : workers:int -> t

(** Shut down and drop every pool in the {!shared} registry, joining
    their worker domains. Long-running processes (the policy server, the
    REPL) call this on exit so no domain outlives its engine; a later
    {!shared} call simply spawns a fresh pool. *)
val shutdown_shared : unit -> unit
