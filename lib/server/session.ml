(** Per-connection session state machine.

    A session must HELLO with the protocol version, then AUTH to bind
    itself to a uid, before it may SUBMIT: the uid of every admission is
    taken from the binding, never from the request, so a tenant cannot
    submit on behalf of another uid. Re-AUTH to the same uid is
    idempotent; to a different uid it is refused (the binding and the
    connection survive). The machine is pure — [step] maps a request to
    the action the transport should take — so every transition is
    testable without sockets. *)

type state =
  | Start  (** nothing received yet: only HELLO (or QUIT) *)
  | Greeted  (** version agreed; STATS/PING allowed, SUBMIT needs AUTH *)
  | Bound of int  (** authenticated as this uid *)

type t = { mutable state : state; mutable submits : int }

type action =
  | Reply of Protocol.response
  | Admit of { uid : int; sql : string }
      (** run the admission pipeline, then reply with its verdict *)
  | Report  (** reply with the server's stats *)
  | Terminate of Protocol.response  (** reply, then close the connection *)

let create () = { state = Start; submits = 0 }

let uid t = match t.state with Bound uid -> Some uid | Start | Greeted -> None
let submits t = t.submits

let err code message = Protocol.Err { code; message }

let step t (req : Protocol.request) : action =
  match (t.state, req) with
  | _, Protocol.Quit -> Terminate Protocol.Bye
  | Start, Protocol.Hello v ->
    if v = Protocol.version then begin
      t.state <- Greeted;
      Reply (Protocol.Hello_ok Protocol.version)
    end
    else
      Terminate
        (err Protocol.err_bad_arg
           (Printf.sprintf "unsupported version %S (want %s)" v Protocol.version))
  | Start, _ -> Terminate (err Protocol.err_state "HELLO first")
  | (Greeted | Bound _), Protocol.Hello _ ->
    Reply (err Protocol.err_state "already greeted")
  | (Greeted | Bound _), Protocol.Ping -> Reply Protocol.Pong
  | (Greeted | Bound _), Protocol.Stats -> Report
  | Greeted, Protocol.Auth uid ->
    t.state <- Bound uid;
    Reply (Protocol.Auth_ok uid)
  | Bound uid, Protocol.Auth uid' ->
    if uid = uid' then Reply (Protocol.Auth_ok uid)
    else
      Reply
        (err Protocol.err_auth_rebind
           (Printf.sprintf "session is bound to uid %d" uid))
  | Greeted, Protocol.Submit _ ->
    Reply (err Protocol.err_auth_required "AUTH before SUBMIT")
  | Bound uid, Protocol.Submit sql ->
    t.submits <- t.submits + 1;
    Admit { uid; sql }
