(** Wire protocol of the policy-admission server.

    A frame is a decimal payload length in ASCII, a single [\n], then
    exactly that many payload bytes. Payloads are line-oriented text:
    the first line carries the verb, further lines carry the SQL of a
    SUBMIT or the items of a multi-line reply. Both directions use the
    same framing, and every parser/printer here is a pure function on
    strings, so the protocol is testable without sockets or a client
    library. *)

let version = "datalawyer/1"

(* Default ceiling on one frame's payload: big enough for any sane SQL
   text, small enough that a malicious length prefix cannot balloon
   memory. *)
let default_max_payload = 1 lsl 20

(* Error codes, used in ERR replies and as parse-failure tags. *)
let err_bad_frame = "bad-frame"
let err_too_large = "too-large"
let err_bad_verb = "bad-verb"
let err_bad_arg = "bad-arg"
let err_auth_required = "auth-required"
let err_auth_rebind = "auth-rebind"
let err_state = "state"
let err_sql = "sql"
let err_internal = "internal"
let err_shutdown = "shutdown"

type request =
  | Hello of string  (** protocol version token *)
  | Auth of int  (** bind the session to a uid *)
  | Submit of string  (** candidate query SQL *)
  | Stats
  | Ping
  | Quit

type response =
  | Hello_ok of string
  | Auth_ok of int
  | Accepted of { seq : int; rows : int }
      (** admitted: admission sequence number and result-row count *)
  | Rejected of { seq : int; messages : string list }
  | Stats_reply of (string * string) list
  | Pong
  | Bye
  | Err of { code : string; message : string }

(* Requests ---------------------------------------------------------------- *)

(* First line (up to [\n] or the end) and the remainder past the [\n]. *)
let split_first_line s =
  match String.index_opt s '\n' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let parse_uid s =
  match int_of_string_opt (String.trim s) with
  | Some uid when uid >= 0 -> Ok uid
  | Some _ | None -> Error (err_bad_arg, Printf.sprintf "bad uid %S" (String.trim s))

let parse_request (payload : string) : (request, string * string) result =
  let line, rest = split_first_line payload in
  let verb, arg =
    match String.index_opt line ' ' with
    | None -> (line, "")
    | Some i -> (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
  in
  match verb with
  | "HELLO" ->
    if rest <> "" then Error (err_bad_verb, "HELLO takes a single line")
    else Ok (Hello (String.trim arg))
  | "AUTH" ->
    if rest <> "" then Error (err_bad_verb, "AUTH takes a single line")
    else Result.map (fun uid -> Auth uid) (parse_uid arg)
  | "SUBMIT" ->
    (* The SQL is everything past the verb line; a one-line
       [SUBMIT <sql>] is accepted too. *)
    let sql = String.trim (if rest = "" then arg else arg ^ "\n" ^ rest) in
    if sql = "" then Error (err_bad_arg, "SUBMIT carries no SQL")
    else Ok (Submit sql)
  | "STATS" -> Ok Stats
  | "PING" -> Ok Ping
  | "QUIT" -> Ok Quit
  | "" -> Error (err_bad_verb, "empty request")
  | v -> Error (err_bad_verb, Printf.sprintf "unknown verb %S" v)

let render_request = function
  | Hello v -> "HELLO " ^ v
  | Auth uid -> Printf.sprintf "AUTH %d" uid
  | Submit sql -> "SUBMIT\n" ^ sql
  | Stats -> "STATS"
  | Ping -> "PING"
  | Quit -> "QUIT"

(* Responses --------------------------------------------------------------- *)

(* Violation messages and stats values are single-line by construction;
   enforce it on the wire so the line-oriented framing stays parseable. *)
let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let render_response = function
  | Hello_ok v -> "OK " ^ v
  | Auth_ok uid -> Printf.sprintf "OK uid %d" uid
  | Accepted { seq; rows } -> Printf.sprintf "ACCEPT %d %d" seq rows
  | Rejected { seq; messages } ->
    Printf.sprintf "REJECT %d %d%s" seq (List.length messages)
      (String.concat "" (List.map (fun m -> "\n" ^ one_line m) messages))
  | Stats_reply kvs ->
    Printf.sprintf "STATS %d%s" (List.length kvs)
      (String.concat ""
         (List.map (fun (k, v) -> Printf.sprintf "\n%s %s" k (one_line v)) kvs))
  | Pong -> "PONG"
  | Bye -> "BYE"
  | Err { code; message } -> Printf.sprintf "ERR %s %s" code (one_line message)

let parse_response (payload : string) : (response, string * string) result =
  let line, rest = split_first_line payload in
  let words = String.split_on_char ' ' line in
  let lines s = if s = "" then [] else String.split_on_char '\n' s in
  match words with
  | [ "OK"; "uid"; n ] -> Result.map (fun uid -> Auth_ok uid) (parse_uid n)
  | [ "OK"; v ] -> Ok (Hello_ok v)
  | [ "ACCEPT"; seq; rows ] -> (
    match (int_of_string_opt seq, int_of_string_opt rows) with
    | Some seq, Some rows -> Ok (Accepted { seq; rows })
    | _ -> Error (err_bad_arg, "malformed ACCEPT"))
  | [ "REJECT"; seq; n ] -> (
    match (int_of_string_opt seq, int_of_string_opt n) with
    | Some seq, Some n when List.length (lines rest) = n ->
      Ok (Rejected { seq; messages = lines rest })
    | _ -> Error (err_bad_arg, "malformed REJECT"))
  | [ "STATS"; n ] -> (
    match int_of_string_opt n with
    | Some n when List.length (lines rest) = n ->
      let kv l =
        match String.index_opt l ' ' with
        | None -> (l, "")
        | Some i -> (String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1))
      in
      Ok (Stats_reply (List.map kv (lines rest)))
    | _ -> Error (err_bad_arg, "malformed STATS reply"))
  | [ "PONG" ] -> Ok Pong
  | [ "BYE" ] -> Ok Bye
  | "ERR" :: code :: msg -> Ok (Err { code; message = String.concat " " msg })
  | _ -> Error (err_bad_verb, Printf.sprintf "unknown reply %S" line)

(* Framing ----------------------------------------------------------------- *)

let encode_frame payload = Printf.sprintf "%d\n%s" (String.length payload) payload

(* Longest accepted length prefix: 7 digits covers the maximum payload
   and bounds how much a garbage stream can make us buffer before the
   frame is declared malformed. *)
let max_len_digits = 7

module Decoder = struct
  type t = {
    mutable pending : string;  (** bytes received, not yet consumed *)
    mutable broken : string option;  (** sticky error code *)
    max_payload : int;
  }

  let create ?(max_payload = default_max_payload) () =
    { pending = ""; broken = None; max_payload }

  let feed t chunk =
    if t.broken = None && chunk <> "" then t.pending <- t.pending ^ chunk

  let is_digit c = c >= '0' && c <= '9'

  let next t =
    match t.broken with
    | Some code -> `Error code
    | None -> (
      let s = t.pending in
      let n = String.length s in
      match String.index_opt s '\n' with
      | None ->
        if n > max_len_digits then begin
          t.broken <- Some err_bad_frame;
          `Error err_bad_frame
        end
        else `Awaiting
      | Some nl ->
        let digits = String.sub s 0 nl in
        if
          digits = ""
          || String.length digits > max_len_digits
          || not (String.for_all is_digit digits)
        then begin
          t.broken <- Some err_bad_frame;
          `Error err_bad_frame
        end
        else
          let len = int_of_string digits in
          if len > t.max_payload then begin
            t.broken <- Some err_too_large;
            `Error err_too_large
          end
          else if n - nl - 1 < len then `Awaiting
          else begin
            let payload = String.sub s (nl + 1) len in
            t.pending <- String.sub s (nl + 1 + len) (n - nl - 1 - len);
            `Frame payload
          end)
end
