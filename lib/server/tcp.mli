(** TCP front-end of the policy-admission server.

    One listener thread accepts connections; each connection runs the
    {!Session} machine over the {!Protocol} framing on its own thread;
    every SUBMIT funnels into the single {!Admission} pipeline, which
    batches concurrent submissions through the engine. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  max_batch : int;  (** admission batch bound *)
  max_payload : int;  (** per-frame payload ceiling, bytes *)
  backlog : int;
}

(** 127.0.0.1:7740, batches of ≤32, 1 MiB payloads. *)
val default_config : config

type t

(** Bind, listen and spawn the listener and admission threads. The
    engine must not be mutated by other threads while the server runs —
    every mutation goes through the admission pipeline.
    @raise Unix.Unix_error when the address cannot be bound. *)
val start : ?config:config -> Datalawyer.Engine.t -> t

(** The bound port (useful with [port = 0]). *)
val port : t -> int

(** Server counters as the (key, value) pairs of the STATS reply:
    sessions, admission/batch counters, batch-size histogram, snapshot
    age, incremental-evaluation counters (eligible/fallback plans,
    bases, delta vs full evals, carried aggregate groups and rebuilds),
    group-commit fsyncs, WAL records. *)
val stats : t -> (string * string) list

(** Stop accepting, close every connection, drain the admission queue
    (enqueued submissions still get real verdicts) and join all
    threads. [close_engine] additionally flushes and closes the
    engine's persistence store and shuts the shared domain pools down. *)
val stop : ?close_engine:bool -> t -> unit
