(** Per-connection session state machine (pure; see {!step}).

    Enforces HELLO-then-AUTH-then-SUBMIT: the uid of every admission
    comes from the session binding established by AUTH, never from the
    SUBMIT itself, so one tenant cannot submit as another. *)

type state =
  | Start  (** nothing received yet: only HELLO (or QUIT) *)
  | Greeted  (** version agreed; STATS/PING allowed, SUBMIT needs AUTH *)
  | Bound of int  (** authenticated as this uid *)

type t

(** What the transport should do with a request, as decided by {!step}. *)
type action =
  | Reply of Protocol.response
  | Admit of { uid : int; sql : string }
      (** run the admission pipeline, then reply with its verdict *)
  | Report  (** reply with the server's stats *)
  | Terminate of Protocol.response  (** reply, then close the connection *)

val create : unit -> t

(** The bound uid, once authenticated. *)
val uid : t -> int option

(** SUBMITs accepted into the pipeline over the session's lifetime. *)
val submits : t -> int

(** Advance the machine by one request. Transition rules: QUIT always
    terminates with [Bye]; HELLO with the wrong version terminates with
    an error; re-AUTH to the same uid is idempotent, to a different uid
    refused without dropping the binding. *)
val step : t -> Protocol.request -> action
