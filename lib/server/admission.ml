(** Batched admission pipeline.

    Connection threads hand submissions to {!submit} and block for the
    verdict; a single admission thread drains the queue in arrival
    order, chops it into batches of at most [max_batch], and decides
    each batch with {!Datalawyer.Engine.submit_batch} — one policy
    evaluation, one witness-compaction pass and one WAL record per
    batch when the fast path applies, with a serial replay otherwise.
    Accepted work is made durable by one forced WAL flush per batch
    (group commit), so the store should be opened with the [Never]
    fsync policy.

    The engine is single-threaded by design; funnelling every mutation
    through the one admission thread is what makes concurrent SUBMITs
    safe, and the admission sequence number returned with each verdict
    is the serial order the engine actually used. *)

open Datalawyer

type verdict =
  | Accepted of { seq : int; rows : int }
  | Rejected of { seq : int; messages : string list }
  | Failed of { seq : int; code : string; message : string }
      (** the SQL did not parse, evaluation raised, or the server is
          draining *)

let seq_of = function
  | Accepted { seq; _ } | Rejected { seq; _ } | Failed { seq; _ } -> seq

(* One queued submission: the admission thread fills [result] and
   signals [cond] to release the waiting connection thread. *)
type pending = {
  uid : int;
  sql : string;
  mutable seq : int;  (** assigned when the batch is formed *)
  mutex : Mutex.t;
  cond : Condition.t;
  mutable result : verdict option;
}

(* Batch-size histogram: eight buckets, exponentially wider. *)
let hist_buckets = [| "1"; "2"; "3-4"; "5-8"; "9-16"; "17-32"; "33-64"; "65+" |]

let bucket_of n =
  if n <= 1 then 0
  else if n = 2 then 1
  else if n <= 4 then 2
  else if n <= 8 then 3
  else if n <= 16 then 4
  else if n <= 32 then 5
  else if n <= 64 then 6
  else 7

type t = {
  engine : Engine.t;
  max_batch : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : pending Queue.t;
  mutable running : bool;
  mutable thread : Thread.t option;
  mutable next_seq : int;
  (* counters, written by the admission thread under [lock] *)
  mutable submissions : int;
  mutable accepted : int;
  mutable rejected : int;
  mutable failed : int;
  mutable batches : int;
  hist : int array;
  mutable snapshot_age : int;
      (** submissions decided against the current committed engine state
          since an admission last changed it *)
}

type stats = {
  s_submissions : int;
  s_accepted : int;
  s_rejected : int;
  s_failed : int;
  s_batches : int;
  s_hist : (string * int) list;
  s_snapshot_age : int;
  s_max_batch : int;
}

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      s_submissions = t.submissions;
      s_accepted = t.accepted;
      s_rejected = t.rejected;
      s_failed = t.failed;
      s_batches = t.batches;
      s_hist =
        List.filteri (fun i _ -> t.hist.(i) > 0)
          (Array.to_list (Array.mapi (fun i l -> (l, t.hist.(i))) hist_buckets));
      s_snapshot_age = t.snapshot_age;
      s_max_batch = t.max_batch;
    }
  in
  Mutex.unlock t.lock;
  s

let fulfill p v =
  Mutex.lock p.mutex;
  p.result <- Some v;
  Condition.signal p.cond;
  Mutex.unlock p.mutex

(* Decide one batch. Runs on the admission thread; must not raise. *)
let process t (batch : pending list) =
  (* Parse first: members whose SQL does not parse fail up front and are
     excluded from the engine batch, preserving everyone else's order. *)
  let parsed =
    List.map
      (fun p ->
        match Relational.Parser.query p.sql with
        | q -> (p, Ok q)
        | exception e ->
          let code =
            match e with
            | Relational.Errors.Sql_error _ -> Protocol.err_sql
            | _ -> Protocol.err_internal
          in
          (p, Error (code, Relational.Errors.to_string e)))
      batch
  in
  let members =
    List.filter_map
      (function
        | p, Ok q ->
          Some
            ( p,
              {
                Engine.batch_uid = p.uid;
                batch_extra = [];
                batch_query = q;
              } )
        | _, Error _ -> None)
      parsed
  in
  let outcomes =
    match members with
    | [] -> []
    | _ -> (
      match Engine.submit_batch t.engine (List.map snd members) with
      | results -> List.combine (List.map fst members) results
      | exception e ->
        let err = Error e in
        List.map (fun (p, _) -> (p, err)) members)
  in
  let committed = ref false in
  let verdicts =
    List.map
      (fun (p, r) ->
        match (r : (Engine.outcome, exn) result) with
        | Ok (Engine.Accepted (res, _)) ->
          committed := true;
          ( p,
            Accepted
              { seq = p.seq; rows = List.length res.Relational.Executor.out_rows }
          )
        | Ok (Engine.Rejected (messages, _)) ->
          ( p, Rejected { seq = p.seq; messages } )
        | Error e ->
          ( p,
            Failed
              {
                seq = p.seq;
                code = Protocol.err_internal;
                message = Relational.Errors.to_string e;
              } ))
      outcomes
  in
  (* Group commit: the engine buffers its WAL records (store opened with
     fsync policy [Never]); one forced flush makes the whole batch
     durable with a single fsync. *)
  if !committed then
    Option.iter (Persistence.Store.flush ~sync:true) (Engine.persist_store t.engine);
  let verdicts =
    verdicts
    @ List.filter_map
        (function
          | (p : pending), Error (code, message) ->
            Some (p, Failed { seq = p.seq; code; message })
          | _, Ok _ -> None)
        parsed
  in
  Mutex.lock t.lock;
  t.batches <- t.batches + 1;
  let n = List.length batch in
  t.hist.(bucket_of n) <- t.hist.(bucket_of n) + 1;
  t.submissions <- t.submissions + n;
  if !committed then t.snapshot_age <- 0 else t.snapshot_age <- t.snapshot_age + n;
  List.iter
    (fun (_, v) ->
      match v with
      | Accepted _ -> t.accepted <- t.accepted + 1
      | Rejected _ -> t.rejected <- t.rejected + 1
      | Failed _ -> t.failed <- t.failed + 1)
    verdicts;
  Mutex.unlock t.lock;
  List.iter (fun (p, v) -> fulfill p v) verdicts

let rec loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && t.running do
    Condition.wait t.nonempty t.lock
  done;
  if Queue.is_empty t.queue && not t.running then Mutex.unlock t.lock
  else begin
    (* Pop up to [max_batch] submissions in arrival order and stamp
       their admission sequence numbers. *)
    let batch = ref [] in
    let n = ref 0 in
    while (not (Queue.is_empty t.queue)) && !n < t.max_batch do
      let p = Queue.pop t.queue in
      p.seq <- t.next_seq;
      t.next_seq <- t.next_seq + 1;
      batch := p :: !batch;
      incr n
    done;
    Mutex.unlock t.lock;
    let batch = List.rev !batch in
    (try process t batch
     with e ->
       (* [process] itself failed: the batch members still must not hang. *)
       let message = Relational.Errors.to_string e in
       List.iter
         (fun p ->
           if p.result = None then
             fulfill p
               (Failed { seq = p.seq; code = Protocol.err_internal; message }))
         batch);
    loop t
  end

let create ~engine ~max_batch () =
  if max_batch < 1 then invalid_arg "Admission.create: max_batch < 1";
  {
    engine;
    max_batch;
    lock = Mutex.create ();
    nonempty = Condition.create ();
    queue = Queue.create ();
    running = false;
    thread = None;
    next_seq = 1;
    submissions = 0;
    accepted = 0;
    rejected = 0;
    failed = 0;
    batches = 0;
    hist = Array.make (Array.length hist_buckets) 0;
    snapshot_age = 0;
  }

let start t =
  Mutex.lock t.lock;
  if t.thread <> None then begin
    Mutex.unlock t.lock;
    invalid_arg "Admission.start: already started"
  end;
  t.running <- true;
  t.thread <- Some (Thread.create loop t);
  Mutex.unlock t.lock

let submit t ~uid ~sql =
  let p =
    {
      uid;
      sql;
      seq = 0;
      mutex = Mutex.create ();
      cond = Condition.create ();
      result = None;
    }
  in
  Mutex.lock t.lock;
  if not t.running then begin
    Mutex.unlock t.lock;
    Failed { seq = 0; code = Protocol.err_shutdown; message = "server is draining" }
  end
  else begin
    Queue.push p t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.lock;
    Mutex.lock p.mutex;
    let rec await () =
      match p.result with
      | Some v -> v
      | None ->
        Condition.wait p.cond p.mutex;
        await ()
    in
    let v = await () in
    Mutex.unlock p.mutex;
    v
  end

let stop t =
  Mutex.lock t.lock;
  let th = t.thread in
  t.running <- false;
  t.thread <- None;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  (* The admission thread drains the queue before exiting, so every
     already-enqueued submission still gets a real verdict. *)
  Option.iter Thread.join th
