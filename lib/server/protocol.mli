(** Wire protocol of the policy-admission server.

    A frame is the payload's byte length in decimal ASCII, one [\n],
    then exactly that many payload bytes. Payloads are line-oriented
    text; requests and responses below are their parsed forms. Every
    function here is pure, so the protocol round-trips in tests without
    sockets. *)

(** Version token a client must present in HELLO. *)
val version : string

(** Default ceiling on a single frame's payload, in bytes (1 MiB). *)
val default_max_payload : int

(** {1 Error codes} carried by [Err] replies and parse failures:
    [bad-frame] (malformed length prefix), [too-large] (payload above
    the ceiling), [bad-verb], [bad-arg], [auth-required] (SUBMIT before
    AUTH), [auth-rebind] (AUTH to a different uid on a bound session),
    [state] (verb illegal in the session's state), [sql] (SUBMIT
    payload failed to parse), [internal], [shutdown] (server is
    draining). *)

val err_bad_frame : string
val err_too_large : string
val err_bad_verb : string
val err_bad_arg : string
val err_auth_required : string
val err_auth_rebind : string
val err_state : string
val err_sql : string
val err_internal : string
val err_shutdown : string

type request =
  | Hello of string  (** protocol version token *)
  | Auth of int  (** bind the session to a uid *)
  | Submit of string  (** candidate query SQL *)
  | Stats
  | Ping
  | Quit

type response =
  | Hello_ok of string
  | Auth_ok of int
  | Accepted of { seq : int; rows : int }
      (** admitted: admission sequence number and result-row count *)
  | Rejected of { seq : int; messages : string list }
  | Stats_reply of (string * string) list
  | Pong
  | Bye
  | Err of { code : string; message : string }

(** Parse one request payload. [Error (code, message)] uses the codes
    above and is suitable for an [Err] reply. *)
val parse_request : string -> (request, string * string) result

val render_request : request -> string
val parse_response : string -> (response, string * string) result
val render_response : response -> string

(** Prefix [payload] with its framing header. *)
val encode_frame : string -> string

(** Incremental frame decoder over a byte stream. Feed it chunks as they
    arrive; [next] yields complete payloads. A framing error is sticky:
    once a stream is undecodable there is no resynchronisation point, so
    the connection must be dropped. *)
module Decoder : sig
  type t

  val create : ?max_payload:int -> unit -> t
  val feed : t -> string -> unit

  val next : t -> [ `Frame of string | `Awaiting | `Error of string ]
  (** [`Frame payload] consumes one frame (call again — more may be
      buffered); [`Awaiting] needs more input; [`Error code] is a
      sticky framing failure. *)
end
