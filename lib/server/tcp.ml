(** TCP front-end: a listener thread accepts connections, each
    connection gets its own thread running the {!Session} machine over
    the {!Protocol} framing, and every SUBMIT funnels into the single
    {!Admission} pipeline. Policy evaluation inside the engine still
    fans out over the {!Parallel} domain pool; the threads here only
    do socket I/O and queueing. *)

open Datalawyer

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  max_batch : int;  (** admission batch bound *)
  max_payload : int;  (** per-frame payload ceiling, bytes *)
  backlog : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7740;
    max_batch = 32;
    max_payload = Protocol.default_max_payload;
    backlog = 64;
  }

type t = {
  engine : Engine.t;
  admission : Admission.t;
  config : config;
  listen_fd : Unix.file_descr;
  port : int;
  lock : Mutex.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable threads : Thread.t list;
  mutable listener : Thread.t option;
  mutable sessions_total : int;
  mutable running : bool;
}

let port t = t.port

(* Raised inside a connection handler when the peer is gone; the
   handler unwinds and the connection closes. *)
exception Closed

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then begin
      let n =
        try Unix.write fd b off (len - off)
        with Unix.Unix_error _ -> raise Closed
      in
      if n = 0 then raise Closed;
      go (off + n)
    end
  in
  go 0

let send fd resp = write_all fd (Protocol.encode_frame (Protocol.render_response resp))

(* Stats ------------------------------------------------------------------- *)

let stats t =
  let a = Admission.stats t.admission in
  let b = Engine.batch_stats t.engine in
  let active, total =
    Mutex.lock t.lock;
    let r = (Hashtbl.length t.conns, t.sessions_total) in
    Mutex.unlock t.lock;
    r
  in
  let hist =
    match a.Admission.s_hist with
    | [] -> "-"
    | h -> String.concat " " (List.map (fun (l, n) -> Printf.sprintf "%s:%d" l n) h)
  in
  let fsyncs, wal =
    match Engine.persist_store t.engine with
    | None -> (0, 0)
    | Some s -> (Persistence.Store.fsyncs s, Persistence.Store.wal_records s)
  in
  let d = Engine.delta_stats t.engine in
  let u = Engine.unify_stats t.engine in
  let r = Engine.relevance_stats t.engine in
  let shared_hits, shared_misses = Engine.shared_scan_stats t.engine in
  let v = Engine.vector_stats t.engine in
  let vhist =
    (* same label:count shape as batch-hist; bucket upper bounds, "max"
       for the open tail *)
    let labels = [| "16"; "256"; "4096"; "65536"; "max" |] in
    String.concat " "
      (Array.to_list
         (Array.mapi
            (fun k n -> Printf.sprintf "%s:%d" labels.(k) n)
            v.Engine.vec_hist))
  in
  let i = string_of_int in
  [
    ("sessions-total", i total);
    ("sessions-active", i active);
    ("submissions", i a.Admission.s_submissions);
    ("accepted", i a.Admission.s_accepted);
    ("rejected", i a.Admission.s_rejected);
    ("failed", i a.Admission.s_failed);
    ("batches", i a.Admission.s_batches);
    ("batch-max", i a.Admission.s_max_batch);
    ("batch-hist", hist);
    ("batch-fast", i b.Engine.fast_batches);
    ("batch-retried", i b.Engine.retried_batches);
    ("batch-serial", i b.Engine.serial_batches);
    ("snapshot-age", i a.Admission.s_snapshot_age);
    ("delta-eligible", i d.Engine.eligible_plans);
    ("delta-fallback", i d.Engine.fallback_plans);
    ("delta-bases", i d.Engine.delta_bases);
    ("delta-evals", i d.Engine.delta_evals);
    ("full-evals", i d.Engine.full_evals);
    ("delta-agg-groups", i d.Engine.agg_groups);
    ("delta-agg-rebuilds", i d.Engine.agg_rebuilds);
    ("unify-registered", i u.Engine.unify_registered);
    ("unify-active", i u.Engine.unify_active);
    ("unify-groups", i u.Engine.unify_groups);
    ("unify-members", i u.Engine.unify_members);
    ("relevance-indexed", i r.Engine.rel_indexed);
    ("relevance-eligible", i r.Engine.rel_eligible);
    ("relevance-checks", i r.Engine.rel_checks);
    ("relevance-skips", i r.Engine.rel_skips);
    ("shared-scan-hits", i shared_hits);
    ("shared-scan-misses", i shared_misses);
    ("vector-enabled", (if v.Engine.vec_enabled then "1" else "0"));
    ("vector-batches", i v.Engine.vec_batches);
    ("vector-rows", i v.Engine.vec_rows);
    ("vector-fallbacks", i v.Engine.vec_fallbacks);
    ("vector-hist", vhist);
    ("vector-typed-cols", i v.Engine.vec_typed_cols);
    ("vector-mixed-cols", i v.Engine.vec_mixed_cols);
    ("vector-dict-entries", i v.Engine.vec_dict_entries);
    ("group-commit-fsyncs", i fsyncs);
    ("wal-records", i wal);
  ]

(* Connection handling ----------------------------------------------------- *)

let response_of_verdict : Admission.verdict -> Protocol.response = function
  | Admission.Accepted { seq; rows } -> Protocol.Accepted { seq; rows }
  | Admission.Rejected { seq; messages } -> Protocol.Rejected { seq; messages }
  | Admission.Failed { code; message; _ } -> Protocol.Err { code; message }

let handle t fd =
  let session = Session.create () in
  let decoder = Protocol.Decoder.create ~max_payload:t.config.max_payload () in
  let buf = Bytes.create 65536 in
  let rec serve () =
    match Protocol.Decoder.next decoder with
    | `Frame payload -> (
      match Protocol.parse_request payload with
      | Error (code, message) ->
        (* Request-level error: the framing is intact, keep the
           connection. *)
        send fd (Protocol.Err { code; message });
        serve ()
      | Ok req -> (
        match Session.step session req with
        | Session.Reply r ->
          send fd r;
          serve ()
        | Session.Admit { uid; sql } ->
          let v = Admission.submit t.admission ~uid ~sql in
          send fd (response_of_verdict v);
          serve ()
        | Session.Report ->
          send fd (Protocol.Stats_reply (stats t));
          serve ()
        | Session.Terminate r -> send fd r))
    | `Error code ->
      (* Framing error: no resynchronisation point exists, so reply
         once and drop the connection. *)
      send fd (Protocol.Err { code; message = "unrecoverable framing error" })
    | `Awaiting ->
      let n =
        try Unix.read fd buf 0 (Bytes.length buf) with Unix.Unix_error _ -> 0
      in
      if n > 0 then begin
        Protocol.Decoder.feed decoder (Bytes.sub_string buf 0 n);
        serve ()
      end
      (* n = 0: peer disconnected (possibly mid-batch — any submission
         already queued still gets decided; only the reply is lost). *)
  in
  serve ()

let rec accept_loop t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
    Mutex.lock t.lock;
    if not t.running then begin
      Mutex.unlock t.lock;
      (try Unix.close fd with Unix.Unix_error _ -> ())
    end
    else begin
      t.sessions_total <- t.sessions_total + 1;
      let id = t.sessions_total in
      Hashtbl.replace t.conns id fd;
      let th =
        Thread.create
          (fun () ->
            Fun.protect
              ~finally:(fun () ->
                (try Unix.close fd with Unix.Unix_error _ -> ());
                Mutex.lock t.lock;
                Hashtbl.remove t.conns id;
                Mutex.unlock t.lock)
              (fun () -> try handle t fd with Closed -> () | _ -> ()))
          ()
      in
      t.threads <- th :: t.threads;
      Mutex.unlock t.lock;
      accept_loop t
    end
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t
  | exception Unix.Unix_error _ -> ()

let start ?(config = default_config) engine =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let t =
    try
      Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
      Unix.bind listen_fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
      Unix.listen listen_fd config.backlog;
      let port =
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> config.port
      in
      {
        engine;
        admission = Admission.create ~engine ~max_batch:config.max_batch ();
        config;
        listen_fd;
        port;
        lock = Mutex.create ();
        conns = Hashtbl.create 64;
        threads = [];
        listener = None;
        sessions_total = 0;
        running = true;
      }
    with e ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      raise e
  in
  Admission.start t.admission;
  t.listener <- Some (Thread.create accept_loop t);
  t

let stop ?(close_engine = false) t =
  Mutex.lock t.lock;
  let was_running = t.running in
  t.running <- false;
  Mutex.unlock t.lock;
  if was_running then begin
    (* Wake the listener with a throwaway connection so its blocking
       accept observes [running = false]. *)
    (try
       let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> try Unix.close s with Unix.Unix_error _ -> ())
         (fun () ->
           Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port)))
     with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.listener;
    t.listener <- None;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* Shut the client sockets so blocked reads return; the handlers
       then unwind and close their fds. A handler waiting inside the
       admission queue still gets its verdict first — the pipeline is
       stopped only after every connection thread has exited. *)
    Mutex.lock t.lock;
    let fds = Hashtbl.fold (fun _ fd acc -> fd :: acc) t.conns [] in
    let threads = t.threads in
    t.threads <- [];
    Mutex.unlock t.lock;
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      fds;
    List.iter Thread.join threads;
    Admission.stop t.admission;
    if close_engine then Engine.close t.engine
  end
