(** Batched admission pipeline: concurrent SUBMITs queue up, a single
    admission thread decides them in arrival-order batches through
    {!Datalawyer.Engine.submit_batch}, and one forced WAL flush per
    batch makes accepted work durable (group commit). The admission
    sequence number carried by each verdict is the serial order the
    engine actually used — any concurrent interleaving is equivalent to
    submitting one at a time in [seq] order. *)

type verdict =
  | Accepted of { seq : int; rows : int }
  | Rejected of { seq : int; messages : string list }
  | Failed of { seq : int; code : string; message : string }
      (** the SQL did not parse, evaluation raised, or the server is
          draining ([seq] is 0 when the submission never reached the
          engine queue) *)

val seq_of : verdict -> int

type t

(** [create ~engine ~max_batch ()] wraps [engine]; nothing runs until
    {!start}. For group commit to amortize fsyncs the engine's store
    should be opened with the [Never] fsync policy — the pipeline
    forces one synced flush per committing batch either way. *)
val create : engine:Datalawyer.Engine.t -> max_batch:int -> unit -> t

(** Spawn the admission thread. *)
val start : t -> unit

(** Enqueue one submission and block until its verdict. Thread-safe;
    called from connection threads. Returns a [Failed] verdict with
    code {!Protocol.err_shutdown} once {!stop} has begun. *)
val submit : t -> uid:int -> sql:string -> verdict

(** Stop accepting work, drain the queue (every enqueued submission
    still gets a real verdict), and join the admission thread. *)
val stop : t -> unit

(** Pipeline counters; [s_hist] is the batch-size histogram as
    (bucket label, count) pairs, [s_snapshot_age] the number of
    submissions decided since an admission last changed the committed
    engine state. *)
type stats = {
  s_submissions : int;
  s_accepted : int;
  s_rejected : int;
  s_failed : int;
  s_batches : int;
  s_hist : (string * int) list;
  s_snapshot_age : int;
  s_max_batch : int;
}

val stats : t -> stats
