(** Data-manipulation statements: INSERT, DELETE, UPDATE, CREATE/DROP. *)

type outcome =
  | Rows of Executor.result  (** result of a query *)
  | Affected of int  (** row count of a DML statement *)
  | Created of string
  | Dropped of string

(* Reorder/pad INSERT values according to an explicit column list. *)
let arrange_cells table columns exprs =
  let schema = Table.schema table in
  let values = List.map Eval.eval_const exprs in
  match columns with
  | None ->
    if List.length values <> Schema.arity schema then
      Errors.runtime_error "INSERT into %s: expected %d values, got %d"
        (Table.name table) (Schema.arity schema) (List.length values);
    Array.of_list values
  | Some cols ->
    if List.length cols <> List.length values then
      Errors.runtime_error "INSERT into %s: %d columns but %d values"
        (Table.name table) (List.length cols) (List.length values);
    let cells = Array.make (Schema.arity schema) Value.Null in
    List.iter2
      (fun col v ->
        match Schema.find_index schema col with
        | Some i -> cells.(i) <- v
        | None ->
          Errors.bind_error "no column %S in table %s" col (Table.name table))
      cols values;
    cells

let row_env table (row : Row.t) : Eval.env =
  let schema = Table.schema table in
  {
    Eval.col =
      (fun q name ->
        (match q with
        | Some q
          when String.lowercase_ascii q <> String.lowercase_ascii (Table.name table) ->
          Errors.bind_error "unknown table %S" q
        | _ -> ());
        match Schema.find_index schema name with
        | Some i -> Row.cell row i
        | None -> Errors.bind_error "no column %S in %s" name (Table.name table));
    agg = None;
  }

let exec (cat : Catalog.t) (stmt : Ast.stmt) : outcome =
  match stmt with
  | Ast.Query q -> Rows (Executor.run cat q)
  | Ast.Create_table { table; columns } ->
    let schema = Schema.make columns in
    ignore (Catalog.create_table cat ~name:table ~schema);
    Created table
  | Ast.Drop_table { table; if_exists } ->
    if Catalog.mem cat table then begin
      Catalog.drop cat table;
      Dropped table
    end
    else if if_exists then Dropped table
    else Errors.catalog_error "no such table: %s" table
  | Ast.Create_index { index; table; column; sorted } ->
    let kind = if sorted then Index.Sorted else Index.Hash in
    ignore (Catalog.create_index cat ~name:index ~table ~column ~kind);
    Created index
  | Ast.Drop_index { index; if_exists } ->
    Catalog.drop_index ~if_exists cat index;
    Dropped index
  | Ast.Insert { table; columns; rows } ->
    let t = Catalog.find cat table in
    List.iter (fun exprs -> ignore (Table.insert t (arrange_cells t columns exprs))) rows;
    Affected (List.length rows)
  | Ast.Delete { table; where } ->
    let t = Catalog.find cat table in
    let pred =
      match where with
      | None -> fun _ -> true
      | Some w -> fun row -> Value.to_bool (Eval.eval (row_env t row) w)
    in
    Affected (Table.delete_where t pred)
  | Ast.Update { table; sets; where } ->
    let t = Catalog.find cat table in
    let schema = Table.schema t in
    let pred =
      match where with
      | None -> fun _ -> true
      | Some w -> fun row -> Value.to_bool (Eval.eval (row_env t row) w)
    in
    let indices =
      List.map
        (fun (col, e) ->
          match Schema.find_index schema col with
          | Some i -> (i, e)
          | None -> Errors.bind_error "no column %S in %s" col table)
        sets
    in
    let n =
      Table.update_where t pred (fun cells ->
          let row = Row.make ~tid:(-1) cells in
          let cells = Array.copy cells in
          List.iter (fun (i, e) -> cells.(i) <- Eval.eval (row_env t row) e) indices;
          cells)
    in
    Affected n
