(** Aggregate function computation.

    Matches PostgreSQL for the supported cases: COUNT ignores NULL
    arguments; SUM/AVG/MIN/MAX of an empty or all-NULL group is NULL; SUM
    over integers stays an integer; AVG is a float. *)

(** [compute agg ~distinct ~eval_arg rows] computes the aggregate over one
    group. [eval_arg] evaluates the argument expression against a group
    row (ignored for [Count_star]). *)
val compute :
  Ast.agg -> distinct:bool -> eval_arg:('row -> Value.t) -> 'row list -> Value.t

(** One step of the running SUM fold ([sum = fold_left sum_step Null]).
    Exposed so incremental aggregate accumulators reproduce batch SUM
    semantics — NULL start, integer sums stay integers, float promotion —
    without reimplementing them.
    @raise Errors.Sql_error on a non-numeric operand. *)
val sum_step : Value.t -> Value.t -> Value.t

(** The distinct aggregate-call nodes appearing in an expression, in
    first-occurrence order. *)
val calls_in_expr : Ast.expr -> Ast.expr list
