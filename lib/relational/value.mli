(** Runtime values.

    Cells are dynamically typed at execution time. NULL semantics are
    simplified with respect to full SQL three-valued logic: any comparison
    involving [Null] is false (including [NULL = NULL]); grouping and
    DISTINCT, however, treat [Null] as equal to [Null], as PostgreSQL
    does. The DataLawyer usage logs never contain NULLs, so policy
    semantics are unaffected. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

(** The value's type; [None] for [Null]. *)
val type_of : t -> Ty.t option

val is_null : t -> bool

(** Structural equality used by DISTINCT, GROUP BY keys and hash joins:
    [Null] equals [Null]; integral floats equal the corresponding ints. *)
val equal : t -> t -> bool

(** Total order for ORDER BY: Null < Bool < numbers < Str, with numbers
    compared numerically across [Int]/[Float]. *)
val compare : t -> t -> int

(** Hash consistent with {!equal}. *)
val hash : t -> int

(** SQL-facing truthiness: only [Bool true] is true. *)
val to_bool : t -> bool

(** Human-readable rendering (no quoting). *)
val to_string : t -> string

(** SQL literal syntax, suitable for re-parsing (strings are quoted with
    [''] escaping). *)
val to_sql : t -> string

val pp : Format.formatter -> t -> unit

(** Canonical key string such that two values get the same key iff they
    are {!equal}; used to key hash tables for DISTINCT / GROUP BY / hash
    joins. *)
val canonical_key : t -> string

(** {!canonical_key} of a tuple, with an unambiguous separator. *)
val canonical_key_of_array : t array -> string

(** Value tuples as [Hashtbl.Make]-ready keys: elementwise {!equal} with
    a compatible hash. The DISTINCT / GROUP BY / hash-join tables key on
    row arrays directly through this instead of building canonical key
    strings per row. *)
module Key : sig
  type nonrec t = t array

  val equal : t -> t -> bool
  val hash : t -> int
end

(** Numeric coercion to float; [None] for non-numeric values. *)
val as_float : t -> float option
