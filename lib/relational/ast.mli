(** Abstract syntax of the SQL dialect.

    Covers what the DataLawyer paper needs (§3.1): select-from-where-
    groupby-having queries whose FROM clauses contain base tables or
    subqueries, [DISTINCT] / PostgreSQL-style [DISTINCT ON], aggregates
    with optional [DISTINCT], [UNION [ALL]], plus DML. Policy analysis is
    implemented as AST-to-AST transformation, so structural helpers
    (conjunct decomposition, traversals, literal sites) live here too. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or
  | Concat
  | Like  (** SQL LIKE with [%] and [_] wildcards *)

type unop = Not | Neg

type agg = Count_star | Count | Sum | Avg | Min | Max

type expr =
  | Lit of Value.t
  | Col of string option * string  (** optional qualifier, column name *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Agg_call of agg * bool * expr option
      (** aggregate, DISTINCT flag, argument ([None] only for COUNT star) *)
  | Fn_call of string * expr list
      (** scalar function call (ABS, LENGTH, LOWER, UPPER, COALESCE,
          ROUND); name stored lowercased *)
  | Case of (expr * expr) list * expr option
      (** searched CASE: WHEN/THEN branches and optional ELSE. [IN] and
          [BETWEEN] are desugared by the parser and need no nodes. *)

type order_dir = Asc | Desc

type distinct_spec =
  | All
  | Distinct
  | Distinct_on of expr list  (** PostgreSQL [DISTINCT ON (exprs)] *)

type select_item =
  | Star
  | Table_star of string  (** [t.*] *)
  | Sel_expr of expr * string option  (** expression with optional alias *)

type select = {
  distinct : distinct_spec;
  items : select_item list;
  from : from_item list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * order_dir) list;
  limit : int option;
}

and from_item =
  | From_table of { name : string; alias : string option }
  | From_subquery of { query : query; alias : string }

and query = Select of select | Union of { all : bool; left : query; right : query }

type stmt =
  | Query of query
  | Insert of { table : string; columns : string list option; rows : expr list list }
  | Create_table of { table : string; columns : (string * Ty.t) list }
  | Delete of { table : string; where : expr option }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Drop_table of { table : string; if_exists : bool }
  | Create_index of { index : string; table : string; column : string; sorted : bool }
      (** [CREATE INDEX index ON table [USING hash|sorted] (column)];
          [sorted] selects the range-capable index shape. *)
  | Drop_index of { index : string; if_exists : bool }

(** A SELECT with no items, FROM, or clauses — the base for building
    rewritten queries (witnesses). *)
val empty_select : select

(** Top-level AND conjuncts of an expression. *)
val conjuncts : expr -> expr list

val conjuncts_opt : expr option -> expr list

(** Rebuild a WHERE clause from conjuncts; [None] for the empty list. *)
val conjoin : expr list -> expr option

(** Pre-order traversal of an expression. *)
val iter_expr : (expr -> unit) -> expr -> unit

(** Bottom-up rebuild; [f] is applied to each node before recursing into
    the result's children. *)
val map_expr : (expr -> expr) -> expr -> expr

(** Qualifiers referenced by an expression ([None] for unqualified). *)
val expr_qualifiers : expr -> string option list

val expr_has_agg : expr -> bool

(** The alias under which a FROM item is visible. *)
val from_item_alias : from_item -> string

val from_item_table_name : from_item -> string option

(** Structural equality. *)
val equal_expr : expr -> expr -> bool

val equal_query : query -> query -> bool

(** Clause of the top-level query a literal syntactically falls under.
    Literals inside FROM subqueries or UNION branches report the
    enclosing clause, not their local one. *)
type lit_clause =
  | Clause_item of int  (** [i]-th select item of the top-level SELECT *)
  | Clause_from of int  (** inside the [i]-th FROM subquery *)
  | Clause_where
  | Clause_group_by of int
  | Clause_having
  | Clause_order_by of int
  | Clause_union  (** inside a UNION branch *)

(** A literal occurrence: its stable syntactic position, enclosing
    clause, and value. *)
type lit_site = { path : string; clause : lit_clause; value : Value.t }

(** Whether the literal sits in a select item of the top-level SELECT —
    the position policy messages are projected from. *)
val is_message_site : lit_site -> bool

(** Every literal in the query, in a deterministic order. Drives policy
    unification's shape comparison. *)
val query_literals : query -> lit_site list

(** Replace the literal at position [path] with [f old_value]. *)
val query_map_literal : query -> path:string -> f:(Value.t -> expr) -> query

(** Replace every literal with [placeholder] (default [Value.Null]) in a
    single pass: the query's template shape. Structural equality of
    masked queries groups policies into template families. *)
val mask_literals : ?placeholder:Value.t -> query -> query
