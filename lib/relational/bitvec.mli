(** Growable bit vectors — null bitmaps for the typed column store.

    One bit per row packed into [Bytes], plus a maintained set-bit count
    so kernels can test "no NULLs in this column" in O(1) and pick a
    branch-free variant. *)

type t

val create : unit -> t
val length : t -> int

(** Number of set bits. *)
val count : t -> int

(** [get t i] is bit [i]; [false] for any index outside [0, length t) —
    which lets null-free views share {!empty}. *)
val get : t -> int -> bool

val push : t -> bool -> unit

(** Drop all bits at indices [>= n]; no-op when [n >= length t]. *)
val truncate : t -> int -> unit

val clear : t -> unit

(** A shared all-false bitmap (length 0, so every [get] is [false]).
    Treat as read-only: never push into it. *)
val empty : t
