(** Scalar expression evaluation.

    Expressions evaluate against an environment that resolves column
    references and — inside aggregate queries — whole [Agg_call] nodes.
    NULL semantics follow {!Value}: comparisons involving NULL are false;
    arithmetic on NULL yields NULL. *)

type env = {
  col : string option -> string -> Value.t;
      (** resolve a (qualifier, column) reference *)
  agg : (Ast.expr -> Value.t option) option;
      (** resolve a computed aggregate; [None] outside aggregate queries *)
}

(** Evaluate an expression.
    @raise Errors.Sql_error on type errors, division by zero, or
    aggregates outside an aggregate context. *)
val eval : env -> Ast.expr -> Value.t

(** SQL [LIKE] matching: ['%'] matches any sequence, ['_'] any single
    character. *)
val like_match : string -> string -> bool

(** Arithmetic with SQL NULL propagation and int/float promotion, shared
    with the compiled-expression backend: [arith name fint ffloat a b]. *)
val arith :
  string -> (int -> int -> int) -> (float -> float -> float) -> Value.t ->
  Value.t -> Value.t

(** Comparison operators ([Eq]..[Ge]) with NULL-is-false semantics. *)
val compare_op : Ast.binop -> Value.t -> Value.t -> Value.t

(** An environment that rejects all column references. *)
val const_env : env

(** Evaluate a constant expression (e.g. INSERT values). *)
val eval_const : Ast.expr -> Value.t
