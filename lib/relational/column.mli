(** Columnar table storage for the vectorized executor.

    An opt-in decomposed mirror of a table's heap: one value vector per
    schema column plus a parallel tid vector, in heap (= tid) order.
    {!Table} maintains it across every mutation path exactly as it
    maintains secondary indexes, so batch scans can borrow the backing
    arrays without copying; positions double as heap row numbers, and the
    delta watermark becomes a contiguous suffix slice. *)

type t

val create : width:int -> t
val width : t -> int

(** Number of mirrored rows (always the table's row count). *)
val length : t -> int

(** Append one row's cells (arity [width]) with its tuple id. *)
val append : t -> tid:int -> Value.t array -> unit

(** Drop all rows at positions [>= n] (savepoint rollback). *)
val truncate : t -> int -> unit

val clear : t -> unit

(** Refill from the heap in one pass (deletion / in-place update). *)
val rebuild :
  t -> row_count:int -> ((tid:int -> Value.t array -> unit) -> unit) -> unit

(** Zero-copy view: the per-column backing arrays, valid in
    [0, length t). Read-only; do not hold across a mutation. *)
val columns : t -> Value.t array array

(** Zero-copy view of the tid vector, same contract as {!columns}. *)
val tids : t -> int array

val tid_at : t -> int -> int

(** First position whose tid is [>= base] — the start of the delta
    slice; [length t] when every row is below the watermark. *)
val delta_start : t -> base:int -> int
