(** Typed columnar table storage for the vectorized executor.

    An opt-in decomposed mirror of a table's heap in heap (= tid) order,
    with an unboxed physical layout per column chosen from its declared
    type: INT and FLOAT cells in flat [int array] / [float array] plus a
    null bitmap ({!Bitvec}), BOOL as 0/1/2 ints (2 = NULL in-band), TEXT
    as per-column dictionary codes (-1 = NULL), and a boxed Mixed
    fallback for columns that turn out heterogeneous at runtime (an INT
    value stored into a FLOAT column must round-trip as [Value.Int]).

    {!Table} maintains the store across every mutation path exactly as
    it maintains secondary indexes, so batch scans can borrow the backing
    arrays without copying; positions double as heap row numbers, and
    the delta watermark becomes a contiguous suffix slice.

    Dictionaries are append-only between rebuilds (rollback truncates
    codes but keeps interned strings); the destructive paths rebuild the
    columns from the schema, which restores dense codes and re-promotes
    demoted columns. *)

type t

(** Test/bench hook: lay out every column of subsequently created stores
    as Mixed (the boxed pre-typed representation), so benches can compare
    typed vs boxed on identical kernels. *)
val force_mixed : bool ref

val create : schema:Schema.t -> t
val width : t -> int

(** Number of mirrored rows (always the table's row count). *)
val length : t -> int

(** Append one row's cells (arity [width]) with its tuple id. *)
val append : t -> tid:int -> Value.t array -> unit

(** Drop all rows at positions [>= n] (savepoint rollback). Dictionary
    entries interned by dropped rows are kept — codes stay stable. *)
val truncate : t -> int -> unit

(** Reset to empty, recreating each column from the schema (fresh
    dictionaries, typed layouts restored). *)
val clear : t -> unit

(** Refill from the heap in one pass (deletion / in-place update).
    Columns are recreated first, so dictionary codes come out dense and
    demoted columns re-promote. *)
val rebuild :
  t -> row_count:int -> ((tid:int -> Value.t array -> unit) -> unit) -> unit

(** {1 Dictionaries} *)

(** A TEXT column's string dictionary. Compare handles with [==] to
    detect that two views share a code space. *)
type dict

(** Number of interned strings; codes are [0 .. dict_size - 1]. *)
val dict_size : dict -> int

(** The code for a string, when interned. *)
val dict_find : dict -> string -> int option

(** The string behind a code (must be [< dict_size]). *)
val dict_string : dict -> int -> string

(** {1 Zero-copy views}

    Backing arrays, valid in [0, length t). Read-only; do not hold
    across a mutation (the engine freezes tables for the span of an
    evaluation, and the shared caches revalidate on {!Table.ver_mut}, so
    compiled plans respect both by construction). The constructors are
    public so the batch compiler can build gathered / transposed batches
    in the same shape. *)

type view =
  | V_int of int array * Bitvec.t
  | V_float of float array * Bitvec.t
  | V_bool of int array  (** 0 = false, 1 = true, 2 = NULL *)
  | V_str of int array * dict  (** dictionary codes, -1 = NULL *)
  | V_mixed of Value.t array

val view : t -> int -> view
val views : t -> view array

(** Boxed read of one position of a view (allocates for Int/Float/Str;
    the typed kernels bypass it). *)
val view_value : view -> int -> Value.t

(** Zero-copy view of the tid vector, same contract as {!views}. *)
val tids : t -> int array

val tid_at : t -> int -> int

(** First position whose tid is [>= base] — the start of the delta
    slice; [length t] when every row is below the watermark. *)
val delta_start : t -> base:int -> int

(** (typed columns, Mixed columns, total dictionary entries) — layout
    accounting for engine stats. *)
val layout_stats : t -> int * int * int
