(** Abstract syntax of the SQL dialect.

    The dialect covers what the DataLawyer paper needs (§3.1): select-
    from-where-groupby-having queries whose FROM clauses contain base
    tables or subqueries, [DISTINCT] / PostgreSQL-style [DISTINCT ON],
    aggregates with optional [DISTINCT], [UNION [ALL]], plus the DML
    needed to drive a database ([INSERT], [DELETE], [UPDATE],
    [CREATE/DROP TABLE]).

    Policy analysis (time-independence, witnesses, partial policies,
    unification) is implemented as AST-to-AST transformations, so this
    module also provides structural helpers: conjunct decomposition,
    free-alias computation, structural equality and literal traversal. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or
  | Concat
  | Like  (** SQL LIKE with [%] and [_] wildcards *)

type unop = Not | Neg

type agg = Count_star | Count | Sum | Avg | Min | Max

type expr =
  | Lit of Value.t
  | Col of string option * string  (** optional qualifier, column name *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Agg_call of agg * bool * expr option
      (** aggregate, DISTINCT flag, argument ([None] only for COUNT star) *)
  | Fn_call of string * expr list
      (** scalar function call (ABS, LENGTH, LOWER, UPPER, COALESCE,
          ROUND); name stored lowercased *)
  | Case of (expr * expr) list * expr option
      (** searched CASE: WHEN/THEN branches and optional ELSE.
          [IN (...)] and [BETWEEN] are desugared by the parser into
          OR/AND chains and need no dedicated nodes. *)

type order_dir = Asc | Desc

type distinct_spec =
  | All
  | Distinct
  | Distinct_on of expr list  (** PostgreSQL [DISTINCT ON (exprs)] *)

type select_item =
  | Star
  | Table_star of string  (** [t.*] *)
  | Sel_expr of expr * string option  (** expression with optional alias *)

type select = {
  distinct : distinct_spec;
  items : select_item list;
  from : from_item list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * order_dir) list;
  limit : int option;
}

and from_item =
  | From_table of { name : string; alias : string option }
  | From_subquery of { query : query; alias : string }

and query = Select of select | Union of { all : bool; left : query; right : query }

type stmt =
  | Query of query
  | Insert of { table : string; columns : string list option; rows : expr list list }
  | Create_table of { table : string; columns : (string * Ty.t) list }
  | Delete of { table : string; where : expr option }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Drop_table of { table : string; if_exists : bool }
  | Create_index of { index : string; table : string; column : string; sorted : bool }
  | Drop_index of { index : string; if_exists : bool }

(* Constructors ----------------------------------------------------------- *)

let empty_select =
  {
    distinct = All;
    items = [];
    from = [];
    where = None;
    group_by = [];
    having = None;
    order_by = [];
    limit = None;
  }

(* Conjunctions ----------------------------------------------------------- *)

(* Split an expression into its top-level AND conjuncts. *)
let rec conjuncts = function
  | Binop (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjuncts_opt = function None -> [] | Some e -> conjuncts e

(* Rebuild a WHERE clause from a conjunct list. *)
let conjoin = function
  | [] -> None
  | e :: es -> Some (List.fold_left (fun acc e -> Binop (And, acc, e)) e es)

(* Traversals -------------------------------------------------------------- *)

let rec iter_expr f e =
  f e;
  match e with
  | Lit _ | Col _ -> ()
  | Binop (_, a, b) ->
    iter_expr f a;
    iter_expr f b
  | Unop (_, a) -> iter_expr f a
  | Agg_call (_, _, arg) -> Option.iter (iter_expr f) arg
  | Fn_call (_, args) -> List.iter (iter_expr f) args
  | Case (branches, default) ->
    List.iter
      (fun (c, v) ->
        iter_expr f c;
        iter_expr f v)
      branches;
    Option.iter (iter_expr f) default

let rec map_expr f e =
  let e = f e in
  match e with
  | Lit _ | Col _ -> e
  | Binop (op, a, b) -> Binop (op, map_expr f a, map_expr f b)
  | Unop (op, a) -> Unop (op, map_expr f a)
  | Agg_call (agg, distinct, arg) -> Agg_call (agg, distinct, Option.map (map_expr f) arg)
  | Fn_call (name, args) -> Fn_call (name, List.map (map_expr f) args)
  | Case (branches, default) ->
    Case
      ( List.map (fun (c, v) -> (map_expr f c, map_expr f v)) branches,
        Option.map (map_expr f) default )

(* Qualifiers (table aliases) referenced by an expression. Unqualified
   columns report [None]. *)
let expr_qualifiers e =
  let acc = ref [] in
  iter_expr
    (function
      | Col (q, _) -> if not (List.mem q !acc) then acc := q :: !acc
      | _ -> ())
    e;
  !acc

let expr_has_agg e =
  let found = ref false in
  iter_expr (function Agg_call _ -> found := true | _ -> ()) e;
  !found

(* The effective alias under which a FROM item is visible. *)
let from_item_alias = function
  | From_table { name; alias } -> Option.value alias ~default:name
  | From_subquery { alias; _ } -> alias

let from_item_table_name = function
  | From_table { name; _ } -> Some name
  | From_subquery _ -> None

(* Structural equality, used by policy unification to compare shapes. *)
let equal_expr (a : expr) (b : expr) = a = b

let equal_query (a : query) (b : query) = a = b

(* Collect every literal in a query together with a mutation function that
   replaces it; used by policy unification to find the differing constants
   between template-instantiated policies. The path is a stable identifier
   of the literal's syntactic position; the clause records which clause of
   the top-level query the literal syntactically falls under, so consumers
   (e.g. unification's message detection) never parse path strings. *)
type lit_clause =
  | Clause_item of int  (** [i]-th select item of the top-level SELECT *)
  | Clause_from of int  (** inside the [i]-th FROM subquery *)
  | Clause_where
  | Clause_group_by of int
  | Clause_having
  | Clause_order_by of int
  | Clause_union  (** inside a UNION branch *)

type lit_site = { path : string; clause : lit_clause; value : Value.t }

(* A literal that is (part of) a select item of the top-level SELECT: the
   position policy messages are projected from. *)
let is_message_site (s : lit_site) =
  match s.clause with Clause_item _ -> true | _ -> false

let query_literals (q : query) : lit_site list =
  let out = ref [] in
  let add clause path v = out := { path; clause; value = v } :: !out in
  let rec walk_expr clause path = function
    | Lit v -> add clause path v
    | Col _ -> ()
    | Binop (_, a, b) ->
      walk_expr clause (path ^ "l") a;
      walk_expr clause (path ^ "r") b
    | Unop (_, a) -> walk_expr clause (path ^ "u") a
    | Agg_call (_, _, arg) -> Option.iter (walk_expr clause (path ^ "a")) arg
    | Fn_call (_, args) ->
      List.iteri (fun i a -> walk_expr clause (Printf.sprintf "%sf%d" path i) a) args
    | Case (branches, default) ->
      List.iteri
        (fun i (c, v) ->
          walk_expr clause (Printf.sprintf "%sc%d" path i) c;
          walk_expr clause (Printf.sprintf "%sv%d" path i) v)
        branches;
      Option.iter (walk_expr clause (path ^ "d")) default
  (* [fixed] is [Some c] beneath a subquery or UNION branch: every literal
     there belongs to clause [c] of the top-level query. *)
  and walk_select fixed path (s : select) =
    let cl c = match fixed with Some c' -> c' | None -> c in
    List.iteri
      (fun i -> function
        | Sel_expr (e, _) ->
          walk_expr (cl (Clause_item i)) (Printf.sprintf "%s.i%d" path i) e
        | Star | Table_star _ -> ())
      s.items;
    List.iteri
      (fun i -> function
        | From_subquery { query; _ } ->
          walk_query
            (Some (cl (Clause_from i)))
            (Printf.sprintf "%s.f%d" path i) query
        | From_table _ -> ())
      s.from;
    Option.iter (walk_expr (cl Clause_where) (path ^ ".w")) s.where;
    List.iteri
      (fun i e -> walk_expr (cl (Clause_group_by i)) (Printf.sprintf "%s.g%d" path i) e)
      s.group_by;
    Option.iter (walk_expr (cl Clause_having) (path ^ ".h")) s.having;
    List.iteri
      (fun i (e, _) ->
        walk_expr (cl (Clause_order_by i)) (Printf.sprintf "%s.o%d" path i) e)
      s.order_by
  and walk_query fixed path = function
    | Select s -> walk_select fixed path s
    | Union { left; right; _ } ->
      let fixed = match fixed with Some _ -> fixed | None -> Some Clause_union in
      walk_query fixed (path ^ "L") left;
      walk_query fixed (path ^ "R") right
  in
  walk_query None "q" q;
  List.rev !out

(* Replace every literal with [placeholder] in one pass: the query's
   shape. Two policies are instances of the same template iff their
   masked queries are structurally equal. *)
let mask_literals ?(placeholder = Value.Null) (q : query) : query =
  let me = map_expr (function Lit _ -> Lit placeholder | e -> e) in
  let rec mq = function
    | Select s -> Select (ms s)
    | Union { all; left; right } -> Union { all; left = mq left; right = mq right }
  and ms (s : select) =
    {
      s with
      items =
        List.map
          (function Sel_expr (e, a) -> Sel_expr (me e, a) | it -> it)
          s.items;
      from =
        List.map
          (function
            | From_subquery { query; alias } ->
              From_subquery { query = mq query; alias }
            | fi -> fi)
          s.from;
      where = Option.map me s.where;
      group_by = List.map me s.group_by;
      having = Option.map me s.having;
      order_by = List.map (fun (e, d) -> (me e, d)) s.order_by;
    }
  in
  mq q

(* Replace the literal at syntactic position [path] using [f]. *)
let query_map_literal (q : query) ~(path : string) ~(f : Value.t -> expr) : query =
  let rec walk_expr p e =
    match e with
    | Lit v -> if p = path then f v else e
    | Col _ -> e
    | Binop (op, a, b) -> Binop (op, walk_expr (p ^ "l") a, walk_expr (p ^ "r") b)
    | Unop (op, a) -> Unop (op, walk_expr (p ^ "u") a)
    | Agg_call (agg, d, arg) -> Agg_call (agg, d, Option.map (walk_expr (p ^ "a")) arg)
    | Fn_call (name, args) ->
      Fn_call (name, List.mapi (fun i a -> walk_expr (Printf.sprintf "%sf%d" p i) a) args)
    | Case (branches, default) ->
      Case
        ( List.mapi
            (fun i (c, v) ->
              (walk_expr (Printf.sprintf "%sc%d" p i) c,
               walk_expr (Printf.sprintf "%sv%d" p i) v))
            branches,
          Option.map (walk_expr (p ^ "d")) default )
  and walk_select p (s : select) =
    {
      s with
      items =
        List.mapi
          (fun i it ->
            match it with
            | Sel_expr (e, a) -> Sel_expr (walk_expr (Printf.sprintf "%s.i%d" p i) e, a)
            | Star | Table_star _ -> it)
          s.items;
      from =
        List.mapi
          (fun i fi ->
            match fi with
            | From_subquery { query; alias } ->
              From_subquery { query = walk_query (Printf.sprintf "%s.f%d" p i) query; alias }
            | From_table _ -> fi)
          s.from;
      where = Option.map (walk_expr (p ^ ".w")) s.where;
      group_by = List.mapi (fun i e -> walk_expr (Printf.sprintf "%s.g%d" p i) e) s.group_by;
      having = Option.map (walk_expr (p ^ ".h")) s.having;
      order_by =
        List.mapi (fun i (e, d) -> (walk_expr (Printf.sprintf "%s.o%d" p i) e, d)) s.order_by;
    }
  and walk_query p = function
    | Select s -> Select (walk_select p s)
    | Union { all; left; right } ->
      Union { all; left = walk_query (p ^ "L") left; right = walk_query (p ^ "R") right }
  in
  walk_query "q" q
