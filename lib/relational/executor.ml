(** Query execution: thin driver over the plan pipeline.

    [run] is bind ({!Plan.of_query}) → rewrite ({!Optimizer.optimize}) →
    compile ({!Compile.compile}) → execute. The expensive per-query work —
    scope construction, conjunct decomposition, join-key derivation,
    closure compilation — happens in [prepare]; executing a prepared plan
    does none of it, which is what the engine's prepared-plan cache
    exploits on the policy hot path.

    [prepare_unoptimized] skips the optimizer, giving a naive reference
    executor for differential testing. *)

type opts = Compile.opts = { lineage : bool; track_src : bool }

let default_opts = Compile.default_opts

type row_out = {
  values : Value.t array;
  lineage : (string * int) list;
  src_tids : (int * int) list;
}

type result = { columns : string list; out_rows : row_out list }

type compiled = Compile.t

let prepare ?(opts = default_opts) ?(vectorized = false) ?shared ?shared_batch
    (cat : Catalog.t) (q : Ast.query) : compiled =
  let plan = Optimizer.optimize cat (Plan.of_query cat q) in
  (* Sharing rides on a cache being supplied: the rewrite is pointless
     without one (a Shared slot then compiles to a plain scan), and
     leaving the plan untouched keeps the default path byte-identical. *)
  let plan =
    match shared with None -> plan | Some _ -> Optimizer.share_scans plan
  in
  if vectorized then Compile_batch.compile cat ?shared ?shared_batch opts plan
  else Compile.compile cat ?shared opts plan

let prepare_unoptimized ?(opts = default_opts) (cat : Catalog.t) (q : Ast.query)
    : compiled =
  Compile.compile cat opts (Plan.of_query cat q)

type agg_compiled = {
  c_variants : compiled list;
  c_full : compiled;
  c_nkeys : int;
  c_specs : (Ast.agg * bool) array;
  c_width : int;
  c_rep_slots : int option list;
  c_having : Compile.cexpr option;
  c_projs : Compile.cexpr list;
  c_columns : string list;
}

type compiled_branch =
  | C_spj of compiled list
  | C_residual of { c_plan : compiled; c_clock : string }
  | C_agg of agg_compiled

type delta_compiled = {
  delta_deps : (string * Optimizer.dep_kind) list;
  delta_branches : compiled_branch list;
}

let prepare_delta ?(opts = default_opts) ?(vectorized = false) (cat : Catalog.t)
    ~is_log ~clock_rel (q : Ast.query) : delta_compiled option =
  let compile =
    if vectorized then fun plan -> Compile_batch.compile cat opts plan
    else fun plan -> Compile.compile cat opts plan
  in
  let compile_branch (b : Optimizer.delta_branch) : compiled_branch =
    match b with
    | Optimizer.B_spj variants -> C_spj (List.map compile variants)
    | Optimizer.B_residual { plan; clock_table } ->
      C_residual { c_plan = compile plan; c_clock = clock_table }
    | Optimizer.B_agg a ->
      let f = a.Optimizer.ad_finish in
      C_agg
        {
          c_variants = List.map compile a.Optimizer.ad_variants;
          c_full = compile a.Optimizer.ad_full;
          c_nkeys = a.Optimizer.ad_nkeys;
          c_specs = a.Optimizer.ad_specs;
          c_width = a.Optimizer.ad_width;
          c_rep_slots = a.Optimizer.ad_rep_slots;
          c_having = Option.map Compile.compile_expr f.Plan.having;
          c_projs = List.map Compile.compile_expr f.Plan.projs;
          c_columns = f.Plan.columns;
        }
  in
  Option.map
    (fun (d : Optimizer.delta_plans) ->
      {
        delta_deps = d.Optimizer.deps;
        delta_branches = List.map compile_branch d.Optimizer.branches;
      })
    (Optimizer.derive_delta cat ~is_log ~clock_rel q)

let run_compiled (c : compiled) : result =
  let rows = c.Compile.exec () in
  {
    columns = Array.to_list c.Compile.cols;
    out_rows =
      List.map
        (fun (r : Compile.arow) ->
          {
            values = r.Compile.vals;
            lineage = Lineage.to_list r.Compile.lin;
            src_tids = r.Compile.src;
          })
        rows;
  }

let run ?(opts = default_opts) cat q = run_compiled (prepare ~opts cat q)

let run_unoptimized ?(opts = default_opts) cat q =
  run_compiled (prepare_unoptimized ~opts cat q)

let run_sql ?opts cat sql = run ?opts cat (Parser.query sql)

let is_empty ?opts cat q = (run ?opts cat q).out_rows = []

let rows_examined = Compile.rows_examined

let index_probes = Compile.index_probes
