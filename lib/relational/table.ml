(** Heap tables.

    A table stores rows in insertion order in a growable vector. Each row
    receives a monotonically increasing tuple id. Tables support:

    - appends (with cell type checking against the schema),
    - predicate and tid-set deletion (used by DML and by log compaction),
    - savepoints: since all mutation between a savepoint and its
      rollback is append-only in the DataLawyer engine (tentative log
      increments), a savepoint is just the current row count and rollback
      truncates to it. Taking a savepoint freezes deletions until it is
      released, enforced with [in_txn].

    Tables are deliberately unindexed; the executor builds transient hash
    indexes per query, which matches the ad-hoc nature of policy and
    witness queries. *)

type t = {
  name : string;
  schema : Schema.t;
  rows : Row.t Vec.t;
  mutable next_tid : int;
  mutable in_txn : bool;
}

let dummy_row = Row.make ~tid:(-1) [||]

let create ~name ~schema =
  { name; schema; rows = Vec.create ~dummy:dummy_row (); next_tid = 0; in_txn = false }

let name t = t.name

let schema t = t.schema

let row_count t = Vec.length t.rows

let check_cells t cells =
  let n = Schema.arity t.schema in
  if Array.length cells <> n then
    Errors.runtime_error "table %s expects %d columns, got %d" t.name n
      (Array.length cells);
  Array.iteri
    (fun i v ->
      match Value.type_of v with
      | None -> () (* NULL fits any column *)
      | Some ty ->
        let col = Schema.column t.schema i in
        let ok =
          Ty.equal ty col.Schema.ty
          || (ty = Ty.Int && col.Schema.ty = Ty.Float)
        in
        if not ok then
          Errors.type_error "table %s column %s: expected %s, got %s (%s)"
            t.name col.Schema.name
            (Ty.to_string col.Schema.ty)
            (Ty.to_string ty) (Value.to_string v))
    cells

(* Insert a row; returns its tuple id. *)
let insert t cells =
  check_cells t cells;
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  Vec.push t.rows (Row.make ~tid cells);
  tid

let iter f t = Vec.iter f t.rows

let fold f init t = Vec.fold_left f init t.rows

let rows t = Vec.to_list t.rows

let to_seq t =
  let rec aux i () =
    if i >= Vec.length t.rows then Seq.Nil else Seq.Cons (Vec.get t.rows i, aux (i + 1))
  in
  aux 0

let find_by_tid t tid =
  (* Rows are sorted by tid (append-only ids), so binary search works. *)
  let n = Vec.length t.rows in
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let r = Vec.get t.rows mid in
      if Row.tid r = tid then Some r
      else if Row.tid r < tid then go (mid + 1) hi
      else go lo mid
  in
  go 0 n

(* Deletion --------------------------------------------------------------- *)

let guard_no_txn t op =
  if t.in_txn then
    Errors.runtime_error "table %s: %s not allowed inside a savepoint" t.name op

let bulk_load t rows =
  guard_no_txn t "bulk_load";
  List.iter (fun cells -> ignore (insert t cells)) rows

(* Delete all rows whose tid is NOT in [keep]; returns number removed. *)
let retain_tids t keep =
  guard_no_txn t "retain_tids";
  Vec.filter_in_place (fun r -> Hashtbl.mem keep (Row.tid r)) t.rows

let delete_where t pred =
  guard_no_txn t "delete_where";
  Vec.filter_in_place (fun r -> not (pred r)) t.rows

let clear t =
  guard_no_txn t "clear";
  Vec.clear t.rows

(* Update ----------------------------------------------------------------- *)

let update_where t pred f =
  guard_no_txn t "update_where";
  let n = ref 0 in
  Vec.iteri
    (fun i r ->
      if pred r then begin
        let cells = f (Row.cells r) in
        check_cells t cells;
        Vec.set t.rows i (Row.make ~tid:(Row.tid r) cells);
        incr n
      end)
    t.rows;
  !n

(* Savepoints ------------------------------------------------------------- *)

type savepoint = int

let savepoint t : savepoint =
  t.in_txn <- true;
  Vec.length t.rows

let rollback_to t (sp : savepoint) =
  t.in_txn <- false;
  Vec.truncate t.rows sp

let release t (_sp : savepoint) = t.in_txn <- false

(* Rows inserted after the savepoint, i.e. the tentative increment. *)
let rows_since t (sp : savepoint) =
  let out = ref [] in
  for i = Vec.length t.rows - 1 downto sp do
    out := Vec.get t.rows i :: !out
  done;
  !out

let pp ppf t =
  Format.fprintf ppf "%s%a [%d rows]" t.name Schema.pp t.schema (row_count t)
