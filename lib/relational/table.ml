(** Heap tables with maintained secondary indexes.

    A table stores rows in insertion order in a growable vector. Each row
    receives a monotonically increasing tuple id. Tables support:

    - appends (with cell type checking against the schema),
    - predicate and tid-set deletion (used by DML and by log compaction),
    - savepoints: since all mutation between a savepoint and its
      rollback is append-only in the DataLawyer engine (tentative log
      increments), a savepoint is just the current row count and rollback
      truncates to it. Taking a savepoint freezes deletions until it is
      released, enforced with [in_txn].

    Any column may carry declared secondary indexes ({!Index}); every
    mutation path — [insert], [bulk_load], [delete_where], [retain_tids],
    [update_where], [rollback_to], [clear] — keeps them exactly
    consistent with the heap. Index lookups return rows in tid order,
    which (rows being tid-sorted by construction) is heap scan order. *)

type t = {
  name : string;
  schema : Schema.t;
  rows : Row.t Vec.t;
  mutable next_tid : int;
  mutable in_txn : bool;
  mutable frozen : bool;
  mutable indexes : Index.t list;
  mutable delta_base : int;
      (* tid watermark for incremental policy evaluation: rows with
         tid >= delta_base form the delta (Δ) against the state the
         engine last proved its policies empty over *)
  mutable ver_mut : int;  (* bumped by every mutation *)
  mutable ver_unsafe : int;
      (* bumped only by the mutations that can grow a monotone query's
         result without appending new tids: update_where, clear,
         bulk_load (recovery reload) *)
  mutable ver_del : int;
      (* bumped only by predicate deletion (delete_where): arbitrary DML
         removals, which break carried aggregate state even though they
         cannot grow a monotone result *)
  mutable ver_compact : int;
      (* bumped only by tid-set deletion (retain_tids): witness-driven
         log compaction, which retains every tuple contributing to an
         active policy — running SUM/COUNT state survives it, while
         MIN/MAX state (which any removal can break) treats it like a
         delete *)
  mutable columnar : Column.t option;
      (* opt-in columnar mirror for batch scans, kept consistent with
         the heap by the same mutation hooks that maintain indexes *)
}

(* Extra consistency checks (tid monotonicity on insert); off by default,
   enabled by the test suite. *)
let debug_checks = ref false

let dummy_row = Row.make ~tid:(-1) [||]

let create ~name ~schema =
  {
    name;
    schema;
    rows = Vec.create ~dummy:dummy_row ();
    next_tid = 0;
    in_txn = false;
    frozen = false;
    indexes = [];
    delta_base = 0;
    ver_mut = 0;
    ver_unsafe = 0;
    ver_del = 0;
    ver_compact = 0;
    columnar = None;
  }

(* Freeze markers: the engine freezes every table for the span of a
   parallel evaluation batch; under [debug_checks] any mutation while
   frozen is an invariant violation (worker domains read these tables
   lock-free, so a concurrent write would be a data race). *)
let freeze t = t.frozen <- true

let thaw t = t.frozen <- false

let guard_frozen t op =
  if !debug_checks && t.frozen then
    Errors.runtime_error
      "table %s: %s while frozen (parallel evaluation batch in flight)" t.name
      op

let name t = t.name

let schema t = t.schema

let row_count t = Vec.length t.rows

let check_cells t cells =
  let n = Schema.arity t.schema in
  if Array.length cells <> n then
    Errors.runtime_error "table %s expects %d columns, got %d" t.name n
      (Array.length cells);
  Array.iteri
    (fun i v ->
      match Value.type_of v with
      | None -> () (* NULL fits any column *)
      | Some ty ->
        let col = Schema.column t.schema i in
        let ok =
          Ty.equal ty col.Schema.ty
          || (ty = Ty.Int && col.Schema.ty = Ty.Float)
        in
        if not ok then
          Errors.type_error "table %s column %s: expected %s, got %s (%s)"
            t.name col.Schema.name
            (Ty.to_string col.Schema.ty)
            (Ty.to_string ty) (Value.to_string v))
    cells

(* Index maintenance hooks ------------------------------------------------- *)

let index_add t (row : Row.t) =
  List.iter
    (fun ix -> Index.add ix (Row.cell row (Index.column ix)) (Row.tid row))
    t.indexes

let index_remove t (row : Row.t) =
  List.iter
    (fun ix -> Index.remove ix (Row.cell row (Index.column ix)) (Row.tid row))
    t.indexes

(* Columnar-mirror maintenance hooks --------------------------------------- *)

let columnar t = t.columnar

(* Refill the mirror from the heap (deletion and in-place update paths,
   both cold relative to policy evaluation). *)
let columnar_rebuild t =
  match t.columnar with
  | None -> ()
  | Some store ->
    Column.rebuild store ~row_count:(Vec.length t.rows) (fun add ->
        Vec.iter (fun row -> add ~tid:(Row.tid row) (Row.cells row)) t.rows)

let enable_columnar t =
  match t.columnar with
  | Some store -> store
  | None ->
    let store = Column.create ~schema:t.schema in
    Vec.iter
      (fun row -> Column.append store ~tid:(Row.tid row) (Row.cells row))
      t.rows;
    t.columnar <- Some store;
    store

(* Insert a row; returns its tuple id. *)
let insert t cells =
  guard_frozen t "insert";
  check_cells t cells;
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  t.ver_mut <- t.ver_mut + 1;
  (* Invariant: rows are tid-sorted (see [find_by_tid] and the index
     access paths). [next_tid] only grows, so appends preserve it; the
     assert guards any future bulk path that constructs rows directly. *)
  if !debug_checks && Vec.length t.rows > 0 then
    assert (Row.tid (Vec.get t.rows (Vec.length t.rows - 1)) < tid);
  let row = Row.make ~tid cells in
  Vec.push t.rows row;
  index_add t row;
  (match t.columnar with
  | None -> ()
  | Some store -> Column.append store ~tid cells);
  tid

let iter f t = Vec.iter f t.rows

let fold f init t = Vec.fold_left f init t.rows

let rows t = Vec.to_list t.rows

let to_seq t =
  let rec aux i () =
    if i >= Vec.length t.rows then Seq.Nil else Seq.Cons (Vec.get t.rows i, aux (i + 1))
  in
  aux 0

let find_by_tid t tid =
  (* Rows are sorted by tid (append-only ids; asserted in [insert] under
     [debug_checks]), so binary search works. *)
  let n = Vec.length t.rows in
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let r = Vec.get t.rows mid in
      if Row.tid r = tid then Some r
      else if Row.tid r < tid then go (mid + 1) hi
      else go lo mid
  in
  go 0 n

(* Indexes ----------------------------------------------------------------- *)

let indexes t = t.indexes

let find_index t iname =
  let l = String.lowercase_ascii iname in
  List.find_opt (fun ix -> String.lowercase_ascii (Index.name ix) = l) t.indexes

let index_on t ~column =
  List.filter (fun ix -> Index.column ix = column) t.indexes

let create_index t ~name ~column ~kind =
  (match find_index t name with
  | Some _ -> Errors.catalog_error "index %s already exists on %s" name t.name
  | None -> ());
  let col =
    match Schema.find_index t.schema column with
    | Some i -> i
    | None -> Errors.bind_error "no column %S in table %s" column t.name
  in
  let column_name = (Schema.column t.schema col).Schema.name in
  let ix = Index.create ~name ~column:col ~column_name kind in
  Vec.iter (fun row -> Index.add ix (Row.cell row col) (Row.tid row)) t.rows;
  t.indexes <- t.indexes @ [ ix ];
  ix

let drop_index t iname =
  match find_index t iname with
  | None -> Errors.catalog_error "no index %s on table %s" iname t.name
  | Some ix -> t.indexes <- List.filter (fun i -> i != ix) t.indexes

(* Fetch the rows behind an index probe, in tid (= heap scan) order. *)
let rows_of_tids t tids =
  List.filter_map (find_by_tid t) (List.sort_uniq compare tids)

let index_lookup t ix v = rows_of_tids t (Index.lookup ix v)

let index_range t ix ?lo ?hi () = rows_of_tids t (Index.range ix ?lo ?hi ())

(* Tid-only probe variant: the same tids in the same (tid) order as the
   row-fetching version above, without materializing rows. The batch
   executor resolves these against the columnar mirror positionally.
   Monomorphic int sort + in-place dedup — the polymorphic sort_uniq in
   [rows_of_tids] is measurable at large probes. *)
let sorted_uniq_tids tids =
  let a = Array.of_list tids in
  Array.sort Int.compare a;
  let n = Array.length a in
  if n = 0 then a
  else begin
    let k = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(!k - 1) then begin
        a.(!k) <- a.(i);
        incr k
      end
    done;
    if !k = n then a else Array.sub a 0 !k
  end

let index_lookup_tids _t ix v = sorted_uniq_tids (Index.lookup ix v)

(* Deletion --------------------------------------------------------------- *)

let guard_no_txn t op =
  guard_frozen t op;
  if t.in_txn then
    Errors.runtime_error "table %s: %s not allowed inside a savepoint" t.name op

let bulk_load t rows =
  guard_no_txn t "bulk_load";
  t.ver_unsafe <- t.ver_unsafe + 1;
  List.iter (fun cells -> ignore (insert t cells)) rows

(* Keep rows satisfying [keep_row], unhooking the dropped ones from every
   index; returns the number removed. *)
let filter_rows t keep_row =
  t.ver_mut <- t.ver_mut + 1;
  if t.indexes <> [] then
    Vec.iter (fun r -> if not (keep_row r) then index_remove t r) t.rows;
  let removed = Vec.filter_in_place keep_row t.rows in
  if removed > 0 then columnar_rebuild t;
  removed

(* Delete all rows whose tid is NOT in [keep]; returns number removed. *)
let retain_tids t keep =
  guard_no_txn t "retain_tids";
  t.ver_compact <- t.ver_compact + 1;
  filter_rows t (fun r -> Hashtbl.mem keep (Row.tid r))

let delete_where t pred =
  guard_no_txn t "delete_where";
  t.ver_del <- t.ver_del + 1;
  filter_rows t (fun r -> not (pred r))

let clear t =
  guard_no_txn t "clear";
  t.ver_mut <- t.ver_mut + 1;
  t.ver_unsafe <- t.ver_unsafe + 1;
  List.iter Index.clear t.indexes;
  Vec.clear t.rows;
  match t.columnar with None -> () | Some store -> Column.clear store

(* Update ----------------------------------------------------------------- *)

let update_where t pred f =
  guard_no_txn t "update_where";
  t.ver_mut <- t.ver_mut + 1;
  t.ver_unsafe <- t.ver_unsafe + 1;
  let n = ref 0 in
  Vec.iteri
    (fun i r ->
      if pred r then begin
        let cells = f (Row.cells r) in
        check_cells t cells;
        let row' = Row.make ~tid:(Row.tid r) cells in
        index_remove t r;
        Vec.set t.rows i row';
        index_add t row';
        incr n
      end)
    t.rows;
  if !n > 0 then columnar_rebuild t;
  !n

(* Savepoints ------------------------------------------------------------- *)

(* The tid counter is captured too: rolling back then restores it, so
   the tids a table hands out don't depend on how many tentative rows
   were appended and discarded along the way. (Deletions are blocked
   while a savepoint is outstanding, so no discarded tid can have
   leaked into provenance or an index.) *)
type savepoint = { sp_pos : int; sp_tid : int }

let savepoint t : savepoint =
  t.in_txn <- true;
  { sp_pos = Vec.length t.rows; sp_tid = t.next_tid }

let rollback_to t (sp : savepoint) =
  guard_frozen t "rollback_to";
  t.in_txn <- false;
  t.ver_mut <- t.ver_mut + 1;
  if t.indexes <> [] then
    for i = Vec.length t.rows - 1 downto sp.sp_pos do
      index_remove t (Vec.get t.rows i)
    done;
  Vec.truncate t.rows sp.sp_pos;
  (match t.columnar with
  | None -> ()
  | Some store -> Column.truncate store sp.sp_pos);
  t.next_tid <- sp.sp_tid

let release t (_sp : savepoint) = t.in_txn <- false

let iter_since f t (sp : savepoint) =
  for i = sp.sp_pos to Vec.length t.rows - 1 do
    f (Vec.get t.rows i)
  done

let fold_since f init t (sp : savepoint) =
  let acc = ref init in
  for i = sp.sp_pos to Vec.length t.rows - 1 do
    acc := f !acc (Vec.get t.rows i)
  done;
  !acc

(* Delta watermark --------------------------------------------------------- *)

let delta_base t = t.delta_base

let mark_delta_base t = t.delta_base <- t.next_tid

let ver_mut t = t.ver_mut

let ver_unsafe t = t.ver_unsafe

let ver_del t = t.ver_del

let ver_compact t = t.ver_compact

(* Fold over the delta: rows with tid >= delta_base. Rows are tid-sorted
   (module invariant), so a binary lower bound finds the start. *)
let fold_delta f init t =
  let n = Vec.length t.rows in
  let base = t.delta_base in
  let rec lb lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Row.tid (Vec.get t.rows mid) < base then lb (mid + 1) hi else lb lo mid
  in
  let acc = ref init in
  for i = lb 0 n to n - 1 do
    acc := f !acc (Vec.get t.rows i)
  done;
  !acc

(* Fold over the complement of the delta: rows with tid < delta_base.
   Same binary lower bound as [fold_delta], iterating the prefix. *)
let fold_below f init t =
  let n = Vec.length t.rows in
  let base = t.delta_base in
  let rec lb lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Row.tid (Vec.get t.rows mid) < base then lb (mid + 1) hi else lb lo mid
  in
  let acc = ref init in
  for i = 0 to lb 0 n - 1 do
    acc := f !acc (Vec.get t.rows i)
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "%s%a [%d rows]" t.name Schema.pp t.schema (row_count t)
