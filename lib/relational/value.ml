(** Runtime values.

    The engine is dynamically typed at execution time: every cell is a
    [Value.t]. The binder checks types statically where it can, but
    arithmetic promotes [Int] to [Float] as needed, mirroring the behaviour
    of the SQL engines the paper targets.

    NULL semantics are simplified with respect to full SQL three-valued
    logic: any comparison involving [Null] is [false], and [Null] never
    equals [Null]. The DataLawyer usage logs never contain NULLs, so the
    simplification does not affect policy semantics. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

let type_of = function
  | Null -> None
  | Bool _ -> Some Ty.Bool
  | Int _ -> Some Ty.Int
  | Float _ -> Some Ty.Float
  | Str _ -> Some Ty.Text

let is_null = function Null -> true | Bool _ | Int _ | Float _ | Str _ -> false

(* Structural equality used by DISTINCT, GROUP BY keys and hash joins.
   Unlike SQL's [=] predicate, it treats Null as equal to Null so that
   grouping keys behave like PostgreSQL's "NULLs group together" rule. *)
let equal (a : t) (b : t) =
  match a, b with
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | _ -> a = b

(* Total order for ORDER BY and sort-based operators: Null < Bool < numbers
   < Str; numbers compare numerically across Int/Float. *)
let compare (a : t) (b : t) =
  let rank = function
    | Null -> 0
    | Bool _ -> 1
    | Int _ | Float _ -> 2
    | Str _ -> 3
  in
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let hash (v : t) =
  match v with
  | Null -> 0
  | Bool b -> if b then 1 else 2
  | Int i -> Hashtbl.hash (float_of_int i) (* so Int 2 and Float 2. collide *)
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s

(* SQL-facing truthiness: only Bool true is true. *)
let to_bool = function Bool b -> b | _ -> false

let to_string = function
  | Null -> "NULL"
  | Bool true -> "true"
  | Bool false -> "false"
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else string_of_float f
  | Str s -> s

(* SQL literal syntax, suitable for re-parsing. *)
let to_sql = function
  | Null -> "NULL"
  | Bool true -> "TRUE"
  | Bool false -> "FALSE"
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.17g" f
  | Str s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c ->
        if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* Canonical key string such that [canonical_key a = canonical_key b] iff
   [equal a b]; used to key hash tables for DISTINCT / GROUP BY / hash
   joins. Integral floats collapse onto the integer encoding so that
   [Int 2] and [Float 2.0] land in the same bucket, consistently with
   [equal]. *)
let canonical_key = function
  | Null -> "n"
  | Bool true -> "t"
  | Bool false -> "f"
  | Int i -> "N" ^ string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f <= 1e15 then
      "N" ^ Int64.to_string (Int64.of_float f)
    else "F" ^ Printf.sprintf "%.17g" f
  | Str s -> "S" ^ s

let canonical_key_of_array (vs : t array) =
  String.concat "\x01" (Array.to_list (Array.map canonical_key vs))

(* Hashed-module view of value tuples for DISTINCT / GROUP BY / hash-join
   tables: elementwise {!equal} (so [Int 2] tuples match [Float 2.] ones
   and NULLs group together) with a compatible combined hash. Keying
   tables on the arrays directly replaces the per-row canonical-string
   building the hot paths used to do. *)
module Key = struct
  type nonrec t = t array

  let equal (a : t) (b : t) =
    Array.length a = Array.length b
    &&
    let rec go i = i >= Array.length a || (equal a.(i) b.(i) && go (i + 1)) in
    go 0

  let hash (a : t) =
    Array.fold_left (fun acc v -> (acc * 31) + hash v) 17 a
end

(* Numeric coercions used by the expression evaluator. *)
let as_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null | Bool _ | Str _ -> None
