(** Recursive-descent parser for the SQL dialect.

    Keywords are case-insensitive. [INNER JOIN ... ON ...] is accepted and
    desugared at parse time into a comma join plus WHERE conjuncts, so that
    downstream policy analysis only ever sees conjunctive WHERE clauses
    over a flat FROM list (the form the paper's algorithms are defined
    on). *)

type t = { toks : (Token.t * (int * int)) array; mutable pos : int }

let reserved =
  [ "select"; "distinct"; "on"; "as"; "from"; "where"; "group"; "by"; "having";
    "order"; "limit"; "asc"; "desc"; "union"; "all"; "and"; "or"; "not";
    "null"; "true"; "false"; "insert"; "into"; "values"; "create"; "table";
    "delete"; "update"; "set"; "drop"; "if"; "exists"; "join"; "inner";
    "cross"; "is"; "in"; "between"; "like"; "case"; "when"; "then"; "else";
    "end" ]

let is_reserved s = List.mem (String.lowercase_ascii s) reserved

let create src = { toks = Lexer.tokenize src; pos = 0 }

let cur p = fst p.toks.(p.pos)
let cur_pos p = snd p.toks.(p.pos)

let peek_n p n =
  let i = p.pos + n in
  if i < Array.length p.toks then fst p.toks.(i) else Token.Eof

let advance p = if p.pos < Array.length p.toks - 1 then p.pos <- p.pos + 1

let error p fmt =
  let line, col = cur_pos p in
  Format.kasprintf
    (fun s ->
      Errors.parse_error "line %d, col %d (at %S): %s" line col
        (Token.to_string (cur p)) s)
    fmt

let expect p tok =
  if cur p = tok then advance p
  else error p "expected %S" (Token.to_string tok)

(* Keyword helpers: keywords arrive as Ident tokens. *)
let is_kw p kw =
  match cur p with
  | Token.Ident s -> String.lowercase_ascii s = kw
  | _ -> false

let accept_kw p kw =
  if is_kw p kw then begin
    advance p;
    true
  end
  else false

let expect_kw p kw = if not (accept_kw p kw) then error p "expected keyword %s" kw

let parse_ident p =
  match cur p with
  | Token.Ident s when not (is_reserved s) ->
    advance p;
    s
  | Token.Quoted_ident s ->
    advance p;
    s
  | Token.Ident s -> error p "unexpected keyword %S where identifier expected" s
  | _ -> error p "expected identifier"

(* Expressions -------------------------------------------------------------- *)

let agg_of_name name =
  match String.lowercase_ascii name with
  | "count" -> Some Ast.Count
  | "sum" -> Some Ast.Sum
  | "avg" -> Some Ast.Avg
  | "min" -> Some Ast.Min
  | "max" -> Some Ast.Max
  | _ -> None

let rec parse_expr p = parse_or p

and parse_or p =
  let left = parse_and p in
  if accept_kw p "or" then Ast.Binop (Ast.Or, left, parse_or p) else left

and parse_and p =
  let left = parse_not p in
  if accept_kw p "and" then Ast.Binop (Ast.And, left, parse_and p) else left

and parse_not p =
  if accept_kw p "not" then Ast.Unop (Ast.Not, parse_not p) else parse_cmp p

and parse_cmp p =
  let left = parse_add p in
  (* [NOT] IN / BETWEEN / LIKE sugar, desugared to OR/AND/comparison
     chains so downstream policy analysis sees only plain conjuncts. *)
  let negated = is_kw p "not" && (match peek_n p 1 with
    | Token.Ident s -> List.mem (String.lowercase_ascii s) [ "in"; "between"; "like" ]
    | _ -> false)
  in
  if negated then advance p;
  if accept_kw p "in" then begin
    expect p Token.Lparen;
    let rec go acc =
      let e = parse_expr p in
      if cur p = Token.Comma then begin
        advance p;
        go (e :: acc)
      end
      else List.rev (e :: acc)
    in
    let choices = go [] in
    expect p Token.Rparen;
    let disjunction =
      match List.map (fun c -> Ast.Binop (Ast.Eq, left, c)) choices with
      | [] -> Ast.Lit (Value.Bool false)
      | d :: ds -> List.fold_left (fun acc d -> Ast.Binop (Ast.Or, acc, d)) d ds
    in
    if negated then Ast.Unop (Ast.Not, disjunction) else disjunction
  end
  else if accept_kw p "between" then begin
    let lo = parse_add p in
    expect_kw p "and";
    let hi = parse_add p in
    let range =
      Ast.Binop (Ast.And, Ast.Binop (Ast.Ge, left, lo), Ast.Binop (Ast.Le, left, hi))
    in
    if negated then Ast.Unop (Ast.Not, range) else range
  end
  else if accept_kw p "like" then begin
    let pattern = parse_add p in
    let like = Ast.Binop (Ast.Like, left, pattern) in
    if negated then Ast.Unop (Ast.Not, like) else like
  end
  else if negated then error p "expected IN, BETWEEN or LIKE after NOT"
  else
  let op =
    match cur p with
    | Token.Eq -> Some Ast.Eq
    | Token.Neq -> Some Ast.Neq
    | Token.Lt -> Some Ast.Lt
    | Token.Le -> Some Ast.Le
    | Token.Gt -> Some Ast.Gt
    | Token.Ge -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | Some op ->
    advance p;
    Ast.Binop (op, left, parse_add p)
  | None ->
    if is_kw p "is" then begin
      advance p;
      let negated = accept_kw p "not" in
      expect_kw p "null";
      (* IS NULL is encoded via equality with NULL at the AST level would
         be wrong under our NULL semantics, so we use a dedicated
         function-free encoding: comparison to NULL is always false, hence
         we express IS NULL as [NOT (x = x)] and IS NOT NULL as [x = x]. *)
      let self_eq = Ast.Binop (Ast.Eq, left, left) in
      if negated then self_eq else Ast.Unop (Ast.Not, self_eq)
    end
    else left

and parse_add p =
  let rec go left =
    match cur p with
    | Token.Plus ->
      advance p;
      go (Ast.Binop (Ast.Add, left, parse_mul p))
    | Token.Minus ->
      advance p;
      go (Ast.Binop (Ast.Sub, left, parse_mul p))
    | Token.Concat ->
      advance p;
      go (Ast.Binop (Ast.Concat, left, parse_mul p))
    | _ -> left
  in
  go (parse_mul p)

and parse_mul p =
  let rec go left =
    match cur p with
    | Token.Star ->
      advance p;
      go (Ast.Binop (Ast.Mul, left, parse_unary p))
    | Token.Slash ->
      advance p;
      go (Ast.Binop (Ast.Div, left, parse_unary p))
    | Token.Percent ->
      advance p;
      go (Ast.Binop (Ast.Mod, left, parse_unary p))
    | _ -> left
  in
  go (parse_unary p)

and parse_unary p =
  match cur p with
  | Token.Minus ->
    advance p;
    (match parse_unary p with
    | Ast.Lit (Value.Int i) -> Ast.Lit (Value.Int (-i))
    | Ast.Lit (Value.Float f) -> Ast.Lit (Value.Float (-.f))
    | e -> Ast.Unop (Ast.Neg, e))
  | Token.Plus ->
    advance p;
    parse_unary p
  | _ -> parse_primary p

and parse_primary p =
  match cur p with
  | Token.Int_lit i ->
    advance p;
    Ast.Lit (Value.Int i)
  | Token.Float_lit f ->
    advance p;
    Ast.Lit (Value.Float f)
  | Token.Str_lit s ->
    advance p;
    Ast.Lit (Value.Str s)
  | Token.Lparen ->
    advance p;
    let e = parse_expr p in
    expect p Token.Rparen;
    e
  | Token.Ident s when String.lowercase_ascii s = "null" ->
    advance p;
    Ast.Lit Value.Null
  | Token.Ident s when String.lowercase_ascii s = "true" ->
    advance p;
    Ast.Lit (Value.Bool true)
  | Token.Ident s when String.lowercase_ascii s = "false" ->
    advance p;
    Ast.Lit (Value.Bool false)
  | Token.Ident s when String.lowercase_ascii s = "case" -> parse_case p
  | Token.Ident name when peek_n p 1 = Token.Lparen && agg_of_name name <> None ->
    parse_agg_call p name
  | Token.Ident name
    when peek_n p 1 = Token.Lparen && is_scalar_fn name ->
    parse_fn_call p name
  | Token.Ident name when peek_n p 1 = Token.Lparen && not (is_reserved name) ->
    error p "unknown function %S" name
  | Token.Ident _ | Token.Quoted_ident _ -> (
    let first = parse_ident p in
    match cur p with
    | Token.Dot ->
      advance p;
      let second = parse_ident p in
      Ast.Col (Some first, second)
    | _ -> Ast.Col (None, first))
  | _ -> error p "expected expression"

and is_scalar_fn name =
  List.mem (String.lowercase_ascii name)
    [ "abs"; "length"; "lower"; "upper"; "coalesce"; "round" ]

and parse_fn_call p name =
  advance p;
  expect p Token.Lparen;
  let args =
    if cur p = Token.Rparen then []
    else begin
      let rec go acc =
        let e = parse_expr p in
        if cur p = Token.Comma then begin
          advance p;
          go (e :: acc)
        end
        else List.rev (e :: acc)
      in
      go []
    end
  in
  expect p Token.Rparen;
  Ast.Fn_call (String.lowercase_ascii name, args)

and parse_case p =
  expect_kw p "case";
  let rec branches acc =
    if accept_kw p "when" then begin
      let c = parse_expr p in
      expect_kw p "then";
      let v = parse_expr p in
      branches ((c, v) :: acc)
    end
    else List.rev acc
  in
  let branches = branches [] in
  if branches = [] then error p "CASE requires at least one WHEN branch";
  let default = if accept_kw p "else" then Some (parse_expr p) else None in
  expect_kw p "end";
  Ast.Case (branches, default)

and parse_agg_call p name =
  let agg = Option.get (agg_of_name name) in
  advance p;
  (* function name *)
  expect p Token.Lparen;
  let result =
    if cur p = Token.Star then begin
      advance p;
      if agg <> Ast.Count then error p "only COUNT accepts *";
      Ast.Agg_call (Ast.Count_star, false, None)
    end
    else begin
      let distinct = accept_kw p "distinct" in
      let arg = parse_expr p in
      Ast.Agg_call (agg, distinct, Some arg)
    end
  in
  expect p Token.Rparen;
  result

(* Select ------------------------------------------------------------------- *)

let parse_alias_opt p =
  if accept_kw p "as" then Some (parse_ident p)
  else
    match cur p with
    | Token.Ident s when not (is_reserved s) ->
      advance p;
      Some s
    | Token.Quoted_ident s ->
      advance p;
      Some s
    | _ -> None

let rec parse_select_item p =
  match cur p with
  | Token.Star ->
    advance p;
    Ast.Star
  | Token.Ident s
    when (not (is_reserved s)) && peek_n p 1 = Token.Dot && peek_n p 2 = Token.Star ->
    advance p;
    advance p;
    advance p;
    Ast.Table_star s
  | Token.Quoted_ident s when peek_n p 1 = Token.Dot && peek_n p 2 = Token.Star ->
    advance p;
    advance p;
    advance p;
    Ast.Table_star s
  | _ ->
    let e = parse_expr p in
    let alias = parse_alias_opt p in
    Ast.Sel_expr (e, alias)

and parse_from_item p =
  if cur p = Token.Lparen then begin
    advance p;
    let q = parse_query p in
    expect p Token.Rparen;
    match parse_alias_opt p with
    | Some alias -> Ast.From_subquery { query = q; alias }
    | None -> error p "subquery in FROM requires an alias"
  end
  else
    let name = parse_ident p in
    let alias = parse_alias_opt p in
    Ast.From_table { name; alias }

(* Parse a FROM clause, desugaring JOIN ... ON into comma joins plus
   conjuncts. Returns the flat from-item list and the extracted join
   predicates. *)
and parse_from_clause p =
  let items = ref [] in
  let preds = ref [] in
  let rec joins () =
    if accept_kw p "cross" then begin
      expect_kw p "join";
      items := parse_from_item p :: !items;
      joins ()
    end
    else if is_kw p "inner" || is_kw p "join" then begin
      ignore (accept_kw p "inner");
      expect_kw p "join";
      items := parse_from_item p :: !items;
      expect_kw p "on";
      preds := parse_expr p :: !preds;
      joins ()
    end
  in
  let rec commas () =
    items := parse_from_item p :: !items;
    joins ();
    if cur p = Token.Comma then begin
      advance p;
      commas ()
    end
  in
  commas ();
  (List.rev !items, List.rev !preds)

and parse_select p : Ast.select =
  expect_kw p "select";
  let distinct =
    if accept_kw p "distinct" then
      if accept_kw p "on" then begin
        expect p Token.Lparen;
        let rec exprs acc =
          let e = parse_expr p in
          if cur p = Token.Comma then begin
            advance p;
            exprs (e :: acc)
          end
          else List.rev (e :: acc)
        in
        let es = exprs [] in
        expect p Token.Rparen;
        (* PostgreSQL's DISTINCT ON list may be followed by a comma before
           the select items, as written in the paper's witness queries. *)
        if cur p = Token.Comma then advance p;
        Ast.Distinct_on es
      end
      else Ast.Distinct
    else Ast.All
  in
  let rec items acc =
    let it = parse_select_item p in
    if cur p = Token.Comma then begin
      advance p;
      items (it :: acc)
    end
    else List.rev (it :: acc)
  in
  let items = items [] in
  let from, join_preds =
    if accept_kw p "from" then parse_from_clause p else ([], [])
  in
  let where = if accept_kw p "where" then Some (parse_expr p) else None in
  let where = Ast.conjoin (join_preds @ Ast.conjuncts_opt where) in
  let group_by =
    if accept_kw p "group" then begin
      expect_kw p "by";
      let rec go acc =
        let e = parse_expr p in
        if cur p = Token.Comma then begin
          advance p;
          go (e :: acc)
        end
        else List.rev (e :: acc)
      in
      go []
    end
    else []
  in
  let having = if accept_kw p "having" then Some (parse_expr p) else None in
  let order_by =
    if accept_kw p "order" then begin
      expect_kw p "by";
      let rec go acc =
        let e = parse_expr p in
        let dir =
          if accept_kw p "desc" then Ast.Desc
          else begin
            ignore (accept_kw p "asc");
            Ast.Asc
          end
        in
        if cur p = Token.Comma then begin
          advance p;
          go ((e, dir) :: acc)
        end
        else List.rev ((e, dir) :: acc)
      in
      go []
    end
    else []
  in
  let limit =
    if accept_kw p "limit" then begin
      match cur p with
      | Token.Int_lit i ->
        advance p;
        Some i
      | _ -> error p "LIMIT expects an integer"
    end
    else None
  in
  { Ast.distinct; items; from; where; group_by; having; order_by; limit }

and parse_query p : Ast.query =
  let left =
    if cur p = Token.Lparen && looks_like_parenthesized_query p then begin
      advance p;
      let q = parse_query p in
      expect p Token.Rparen;
      q
    end
    else Ast.Select (parse_select p)
  in
  if accept_kw p "union" then
    let all = accept_kw p "all" in
    Ast.Union { all; left; right = parse_query p }
  else left

(* Heuristic: a '(' followed by SELECT (possibly after more '(') starts a
   parenthesized query rather than an expression. *)
and looks_like_parenthesized_query p =
  let rec go i =
    match (if p.pos + i < Array.length p.toks then fst p.toks.(p.pos + i) else Token.Eof) with
    | Token.Lparen -> go (i + 1)
    | Token.Ident s -> String.lowercase_ascii s = "select"
    | _ -> false
  in
  go 0

(* Statements ---------------------------------------------------------------- *)

(* CREATE INDEX name ON table [USING hash|sorted|btree|range] (column).
   Defaults to hash; btree/range are accepted as aliases for sorted. *)
let parse_create_index p =
  expect_kw p "index";
  let index = parse_ident p in
  expect_kw p "on";
  let table = parse_ident p in
  let sorted =
    if accept_kw p "using" then begin
      let kind = parse_ident p in
      match String.lowercase_ascii kind with
      | "hash" -> false
      | "sorted" | "btree" | "range" -> true
      | k -> error p "unknown index kind %S (expected hash or sorted)" k
    end
    else false
  in
  expect p Token.Lparen;
  let column = parse_ident p in
  expect p Token.Rparen;
  Ast.Create_index { index; table; column; sorted }

let parse_create_table p =
  expect_kw p "table";
  let table = parse_ident p in
  expect p Token.Lparen;
  let rec cols acc =
    let name = parse_ident p in
    let ty_name =
      match cur p with
      | Token.Ident s ->
        advance p;
        s
      | _ -> error p "expected a column type"
    in
    let ty =
      match Ty.of_string ty_name with
      | Some ty -> ty
      | None -> error p "unknown column type %S" ty_name
    in
    (* Swallow optional length spec, e.g. VARCHAR(20). *)
    if cur p = Token.Lparen then begin
      advance p;
      (match cur p with Token.Int_lit _ -> advance p | _ -> error p "expected length");
      expect p Token.Rparen
    end;
    let acc = (name, ty) :: acc in
    if cur p = Token.Comma then begin
      advance p;
      cols acc
    end
    else List.rev acc
  in
  let columns = cols [] in
  expect p Token.Rparen;
  Ast.Create_table { table; columns }

let parse_create p =
  expect_kw p "create";
  if is_kw p "index" then parse_create_index p else parse_create_table p

let parse_insert p =
  expect_kw p "insert";
  expect_kw p "into";
  let table = parse_ident p in
  let columns =
    if cur p = Token.Lparen then begin
      advance p;
      let rec go acc =
        let c = parse_ident p in
        if cur p = Token.Comma then begin
          advance p;
          go (c :: acc)
        end
        else List.rev (c :: acc)
      in
      let cs = go [] in
      expect p Token.Rparen;
      Some cs
    end
    else None
  in
  expect_kw p "values";
  let parse_row () =
    expect p Token.Lparen;
    let rec go acc =
      let e = parse_expr p in
      if cur p = Token.Comma then begin
        advance p;
        go (e :: acc)
      end
      else List.rev (e :: acc)
    in
    let row = go [] in
    expect p Token.Rparen;
    row
  in
  let rec rows acc =
    let r = parse_row () in
    if cur p = Token.Comma then begin
      advance p;
      rows (r :: acc)
    end
    else List.rev (r :: acc)
  in
  Ast.Insert { table; columns; rows = rows [] }

let parse_delete p =
  expect_kw p "delete";
  expect_kw p "from";
  let table = parse_ident p in
  let where = if accept_kw p "where" then Some (parse_expr p) else None in
  Ast.Delete { table; where }

let parse_update p =
  expect_kw p "update";
  let table = parse_ident p in
  expect_kw p "set";
  let rec sets acc =
    let col = parse_ident p in
    expect p Token.Eq;
    let e = parse_expr p in
    if cur p = Token.Comma then begin
      advance p;
      sets ((col, e) :: acc)
    end
    else List.rev ((col, e) :: acc)
  in
  let sets = sets [] in
  let where = if accept_kw p "where" then Some (parse_expr p) else None in
  Ast.Update { table; sets; where }

let parse_drop p =
  expect_kw p "drop";
  let is_index =
    if accept_kw p "index" then true
    else begin
      expect_kw p "table";
      false
    end
  in
  let if_exists =
    if accept_kw p "if" then begin
      expect_kw p "exists";
      true
    end
    else false
  in
  let name = parse_ident p in
  if is_index then Ast.Drop_index { index = name; if_exists }
  else Ast.Drop_table { table = name; if_exists }

let parse_stmt_inner p =
  match cur p with
  | Token.Ident s -> (
    match String.lowercase_ascii s with
    | "select" -> Ast.Query (parse_query p)
    | "insert" -> parse_insert p
    | "create" -> parse_create p
    | "delete" -> parse_delete p
    | "update" -> parse_update p
    | "drop" -> parse_drop p
    | kw -> error p "unexpected keyword %S at start of statement" kw)
  | Token.Lparen -> Ast.Query (parse_query p)
  | _ -> error p "expected a statement"

let finish p =
  if cur p = Token.Semicolon then advance p;
  if cur p <> Token.Eof then error p "trailing input after statement"

(* Public API ----------------------------------------------------------------- *)

let stmt src =
  let p = create src in
  let s = parse_stmt_inner p in
  finish p;
  s

let query src =
  let p = create src in
  let q = parse_query p in
  finish p;
  q

let expr src =
  let p = create src in
  let e = parse_expr p in
  finish p;
  e

let script src =
  let p = create src in
  let rec go acc =
    if cur p = Token.Eof then List.rev acc
    else begin
      let s = parse_stmt_inner p in
      (match cur p with
      | Token.Semicolon -> advance p
      | Token.Eof -> ()
      | _ -> error p "expected ';' between statements");
      go (s :: acc)
    end
  in
  go []
