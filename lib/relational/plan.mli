(** Logical plan IR.

    The binder turns a parsed {!Ast.query} into a fully bound plan: every
    column reference resolves once to an index into an explicit row
    layout, and every clause becomes a {!pexpr} tree over that layout.
    Binding errors (unknown/ambiguous names, aggregates in WHERE, UNION
    arity mismatches) are raised here.

    The binder is naive: WHERE conjuncts attach to the join step at which
    their slots are all available, nothing is pushed into scans, no hash
    keys are extracted, no column is pruned. {!Optimizer.optimize}
    performs those rewrites; compiling the binder's output directly
    yields the un-optimized reference path used by differential tests. *)

(** Bound scalar expression. [Field] indexes the enclosing SELECT's
    concatenated row layout (slot-local inside scan predicates and
    hash-join build keys); [Rep_field] reads the group representative
    row, yielding [Null] for the empty group; [Agg_ref] indexes the
    per-group computed-aggregate array; [Agg_outside] raises lazily, on
    evaluation. *)
type pexpr =
  | Const of Value.t
  | Field of int
  | Rep_field of int
  | Agg_ref of int
  | Agg_outside
  | Exec of (unit -> Value.t)
      (** read a value at execution time — the clock-elimination rewrite
          substitutes the clock relation's single cell with one of these,
          so a compiled residual plan stays valid as the clock advances.
          The closure must never raise and reads no row fields. Plans
          carrying [Exec] are never marshalled (no
          {!Optimizer.share_scans}) and never constant-folded. *)
  | Binop of Ast.binop * pexpr * pexpr
  | Unop of Ast.unop * pexpr
  | Fn of string * pexpr list
  | Case of (pexpr * pexpr) list * pexpr option

(** How a base-table scan reaches its rows. [Heap] walks the whole table;
    the index paths probe a declared {!Index}, selected by the optimizer
    from pushed-down predicates. Key/bound expressions are slot-free; a
    NULL key or bound yields no rows (SQL comparison semantics). *)
type access =
  | Heap
  | Delta
      (** walk only the rows at or above the table's delta watermark
          ({!Table.delta_base}), read at execution time so one compiled
          plan stays valid as the watermark advances *)
  | Below
      (** walk only the rows strictly below the watermark — the
          complement of [Delta]. Telescoped delta variants of aggregate
          policies use it to count each joined increment row exactly
          once across variants. *)
  | Index_eq of { index : string; key : pexpr }
  | Index_range of {
      index : string;
      lo : (pexpr * bool) option;  (** bound, inclusive? *)
      hi : (pexpr * bool) option;
    }

type source =
  | Scan of string * access  (** base table, by catalog name *)
  | Sub of query
  | Shared of {
      tag : string;  (** digest of (table, access, preds) *)
      table : string;
      access : access;
      preds : pexpr list;  (** slot-local conjuncts absorbed from [scan_preds] *)
    }
      (** compile-time materialization point for a scan-plus-filter prefix
          shared by several plans ({!Optimizer.share_scans}); compiled
          without a cache it behaves exactly like [Scan] with the preds as
          scan predicates *)

and slot = {
  alias : string;  (** lowercased effective alias *)
  cols : string array;
  source : source;
  keep : int array;  (** slot-local columns surviving projection pruning *)
}

(** One join step: [keys] are (probe, build) equi-key pairs — probe over
    the pruned prefix layout, build over the slot's local full-width
    row; [residual] are conjuncts applicable once the slot is joined. *)
and jstep = { keys : (pexpr * pexpr) list; residual : pexpr list }

and agg_spec = { agg : Ast.agg; distinct_agg : bool; arg : pexpr option }

and okey = By_output of int | By_expr of pexpr | By_null

and dspec = D_all | D_distinct | D_on of pexpr list

and finish = {
  columns : string list;
  projs : pexpr list;  (** one per output column *)
  aggregated : bool;
  group_by : pexpr list;
  aggs : agg_spec array;  (** indexed by [Agg_ref] *)
  having : pexpr option;
  order_by : (okey * Ast.order_dir) list;
  distinct : dspec;
  limit : int option;
}

and select_plan = {
  slots : slot array;
  const_preds : pexpr list;  (** slot-free conjuncts gating the query *)
  scan_preds : pexpr list array;  (** per-slot pushdowns, slot-local *)
  joins : jstep array;  (** one per slot *)
  finish : finish;
}

and query = Select of select_plan | Union of { all : bool; left : query; right : query }

(** Physical routing between the row-at-a-time compiler ({!Compile}) and
    the batch-at-a-time compiler ({!Compile_batch}), decided per subtree
    by {!Optimizer.batch_route}. Mirrors the query's UNION structure;
    each [Select] is routed whole. *)
type route =
  | Route_row
  | Route_batch
  | Route_union of { left : route; right : route }

(** Output column names (a UNION's come from its left operand). *)
val columns : query -> string list

(** Bind a query against the catalog.
    @raise Errors.Sql_error on resolution failures. *)
val of_query : Catalog.t -> Ast.query -> query

(** Slots referenced by a bound expression, given the layout's offsets
    and widths; sorted, without duplicates. *)
val slots_of_pexpr : int array -> int array -> pexpr -> int list

(** Per-slot offsets in the full (un-pruned) row layout. *)
val full_offsets : slot array -> int array

(** Per-slot offsets in the pruned layout induced by [keep]. *)
val pruned_offsets : slot array -> int array
