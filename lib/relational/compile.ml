(** Physical compiler: closure-compiled expressions and materializing
    operators over a bound {!Plan.query}.

    Compilation resolves everything that can be resolved once — table
    handles, field offsets, aggregate slots, scalar dispatch — and leaves
    only per-row work in the returned closures. The emitted operators are
    the same materializing scan / filter / hash-join / nested-loop /
    aggregate / distinct / sort / union pipeline the AST-walking executor
    used, and they replicate its observable behaviour exactly: output
    order (including the hash join's reverse-insertion probe order),
    lineage and source-tid threading, error messages, laziness of AND/OR/
    CASE/COALESCE, and the empty-group representative semantics.

    A compiled plan captures {!Table.t} handles; it stays valid until the
    catalog changes shape (see {!Catalog.generation}), which is what the
    engine's prepared-plan cache keys on. *)

type opts = { lineage : bool; track_src : bool }

let default_opts = { lineage = false; track_src = false }

(* Annotated row: values plus the two provenance channels. *)
type arow = {
  vals : Value.t array;
  lin : Lineage.t;
  src : (int * int) list;  (** (FROM-slot index, tid) pairs *)
}

(* Statistics hooks: rows examined by joins and index probes executed,
   for tests and benchmarks. Atomic, because compiled plans execute
   concurrently on the engine's domain pool. *)
let rows_examined = Atomic.make 0

let index_probes = Atomic.make 0

let note_rows n = ignore (Atomic.fetch_and_add rows_examined n)

(* Expressions ----------------------------------------------------------- *)

(** A compiled scalar: row values (in the layout the expression was bound
    against) and the enclosing group's computed aggregates. *)
type cexpr = Value.t array -> Value.t array -> Value.t

let rec compile_expr (p : Plan.pexpr) : cexpr =
  match p with
  | Plan.Const v -> fun _ _ -> v
  | Plan.Field i -> fun vals _ -> vals.(i)
  | Plan.Rep_field i ->
    fun vals _ -> if Array.length vals = 0 then Value.Null else vals.(i)
  | Plan.Agg_ref i -> fun _ aggs -> aggs.(i)
  | Plan.Agg_outside ->
    fun _ _ ->
      Errors.bind_error "aggregate used outside of an aggregate query context"
  | Plan.Exec f -> fun _ _ -> f ()
  | Plan.Unop (Ast.Not, a) ->
    let ca = compile_expr a in
    fun vals aggs -> Value.Bool (not (Value.to_bool (ca vals aggs)))
  | Plan.Unop (Ast.Neg, a) -> (
    let ca = compile_expr a in
    fun vals aggs ->
      match ca vals aggs with
      | Value.Null -> Value.Null
      | Value.Int i -> Value.Int (-i)
      | Value.Float f -> Value.Float (-.f)
      | v -> Errors.type_error "cannot negate %s" (Value.to_string v))
  | Plan.Binop (Ast.And, a, b) ->
    let ca = compile_expr a and cb = compile_expr b in
    fun vals aggs ->
      Value.Bool (Value.to_bool (ca vals aggs) && Value.to_bool (cb vals aggs))
  | Plan.Binop (Ast.Or, a, b) ->
    let ca = compile_expr a and cb = compile_expr b in
    fun vals aggs ->
      Value.Bool (Value.to_bool (ca vals aggs) || Value.to_bool (cb vals aggs))
  | Plan.Binop (Ast.Concat, a, b) -> (
    let ca = compile_expr a and cb = compile_expr b in
    fun vals aggs ->
      match ca vals aggs, cb vals aggs with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | va, vb -> Value.Str (Value.to_string va ^ Value.to_string vb))
  | Plan.Binop (((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), a, b)
    ->
    let ca = compile_expr a and cb = compile_expr b in
    fun vals aggs -> Eval.compare_op op (ca vals aggs) (cb vals aggs)
  | Plan.Binop (Ast.Add, a, b) ->
    let ca = compile_expr a and cb = compile_expr b in
    fun vals aggs -> Eval.arith "+" ( + ) ( +. ) (ca vals aggs) (cb vals aggs)
  | Plan.Binop (Ast.Sub, a, b) ->
    let ca = compile_expr a and cb = compile_expr b in
    fun vals aggs -> Eval.arith "-" ( - ) ( -. ) (ca vals aggs) (cb vals aggs)
  | Plan.Binop (Ast.Mul, a, b) ->
    let ca = compile_expr a and cb = compile_expr b in
    fun vals aggs -> Eval.arith "*" ( * ) ( *. ) (ca vals aggs) (cb vals aggs)
  | Plan.Binop (Ast.Div, a, b) -> (
    let ca = compile_expr a and cb = compile_expr b in
    fun vals aggs ->
      let va = ca vals aggs in
      match cb vals aggs with
      | Value.Int 0 | Value.Float 0. -> Errors.runtime_error "division by zero"
      | vb -> Eval.arith "/" ( / ) ( /. ) va vb)
  | Plan.Binop (Ast.Mod, a, b) -> (
    let ca = compile_expr a and cb = compile_expr b in
    fun vals aggs ->
      match ca vals aggs, cb vals aggs with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | Value.Int _, Value.Int 0 -> Errors.runtime_error "modulo by zero"
      | Value.Int x, Value.Int y -> Value.Int (x mod y)
      | va, vb ->
        Errors.type_error "%% expects integers, got %s and %s"
          (Value.to_string va) (Value.to_string vb))
  | Plan.Binop (Ast.Like, a, b) -> (
    let ca = compile_expr a and cb = compile_expr b in
    fun vals aggs ->
      match ca vals aggs, cb vals aggs with
      | Value.Null, _ | _, Value.Null -> Value.Bool false
      | v, Value.Str pattern ->
        Value.Bool (Eval.like_match (Value.to_string v) pattern)
      | _, v ->
        Errors.type_error "LIKE pattern must be a string, got %s"
          (Value.to_string v))
  | Plan.Fn (name, args) -> compile_fn name args
  | Plan.Case (branches, default) ->
    let cbranches =
      List.map (fun (c, v) -> (compile_expr c, compile_expr v)) branches
    in
    let cdefault = Option.map compile_expr default in
    fun vals aggs ->
      let rec pick = function
        | [] -> (
          match cdefault with Some d -> d vals aggs | None -> Value.Null)
        | (cond, v) :: rest ->
          if Value.to_bool (cond vals aggs) then v vals aggs else pick rest
      in
      pick cbranches

(* Scalar builtins mirror {!Eval.eval_fn}; arity and unknown-name errors
   stay lazy (raised when the closure runs, not at compile time), as the
   AST walker raised them per evaluated row. *)
and compile_fn name args : cexpr =
  let cargs = List.map compile_expr args in
  match name, cargs with
  | "coalesce", cargs ->
    fun vals aggs ->
      let rec first = function
        | [] -> Value.Null
        | c :: rest -> (
          match c vals aggs with Value.Null -> first rest | v -> v)
      in
      first cargs
  | "abs", [ c ] -> (
    fun vals aggs ->
      match c vals aggs with
      | Value.Null -> Value.Null
      | Value.Int i -> Value.Int (abs i)
      | Value.Float f -> Value.Float (Float.abs f)
      | v -> Errors.type_error "ABS expects a number, got %s" (Value.to_string v))
  | "length", [ c ] -> (
    fun vals aggs ->
      match c vals aggs with
      | Value.Null -> Value.Null
      | Value.Str s -> Value.Int (String.length s)
      | v ->
        Errors.type_error "LENGTH expects a string, got %s" (Value.to_string v))
  | "lower", [ c ] -> (
    fun vals aggs ->
      match c vals aggs with
      | Value.Null -> Value.Null
      | Value.Str s -> Value.Str (String.lowercase_ascii s)
      | v ->
        Errors.type_error "LOWER expects a string, got %s" (Value.to_string v))
  | "upper", [ c ] -> (
    fun vals aggs ->
      match c vals aggs with
      | Value.Null -> Value.Null
      | Value.Str s -> Value.Str (String.uppercase_ascii s)
      | v ->
        Errors.type_error "UPPER expects a string, got %s" (Value.to_string v))
  | "round", [ c ] -> (
    fun vals aggs ->
      match c vals aggs with
      | Value.Null -> Value.Null
      | Value.Int i -> Value.Int i
      | Value.Float f -> Value.Int (int_of_float (Float.round f))
      | v ->
        Errors.type_error "ROUND expects a number, got %s" (Value.to_string v))
  | ("abs" | "length" | "lower" | "upper" | "round"), cargs ->
    let n = List.length cargs in
    fun _ _ ->
      Errors.bind_error "%s expects 1 argument, got %d"
        (String.uppercase_ascii name) n
  | name, _ -> fun _ _ -> Errors.bind_error "unknown function %S" name

(* Operators -------------------------------------------------------------- *)

(* Grouping / DISTINCT / UNION / hash-join tables key on value arrays
   directly ({!Value.Key}: elementwise [Value.equal] with a compatible
   hash) instead of building a canonical key string per row — same
   equality, no per-row string allocation. *)
module KTbl = Hashtbl.Make (Value.Key)

type t = { cols : string array; exec : unit -> arow list }

let concat_rows (a : arow) (b : arow) =
  {
    vals = Array.append a.vals b.vals;
    lin = Lineage.union a.lin b.lin;
    src = a.src @ b.src;
  }

let compile_agg (a : Plan.agg_spec) : arow list -> Value.t =
  let eval_arg =
    match a.Plan.arg with
    | None -> fun (_ : arow) -> Value.Int 1
    | Some p ->
      let c = compile_expr p in
      fun (r : arow) -> c r.vals [||]
  in
  fun grows ->
    Aggregate.compute a.Plan.agg ~distinct:a.Plan.distinct_agg ~eval_arg grows

(* Group + aggregate + HAVING: one (representative row, computed
   aggregates) pair per output candidate; non-aggregate queries pass
   rows through. First half of the AST walker's [finish_select]. The
   batch compiler ({!Compile_batch}) produces the same pairs by columnar
   accumulation and feeds them to {!compile_finish_tail}, so the two
   pipelines share the output-shaping semantics below by construction. *)
let compile_produce (f : Plan.finish) : arow list -> (arow * Value.t array) list
    =
  let group_keys = List.map compile_expr f.Plan.group_by in
  let grouped = f.Plan.group_by <> [] in
  let aggfns = Array.map compile_agg f.Plan.aggs in
  let having = Option.map compile_expr f.Plan.having in
  fun rows ->
    if not f.Plan.aggregated then List.map (fun r -> (r, [||])) rows
    else begin
        let group_list =
          if not grouped then [ List.rev rows ]
          else begin
            let groups : arow list ref KTbl.t = KTbl.create 64 in
            let order = ref [] in
            List.iter
              (fun r ->
                let key =
                  Array.of_list (List.map (fun c -> c r.vals [||]) group_keys)
                in
                match KTbl.find_opt groups key with
                | Some cell -> cell := r :: !cell
                | None ->
                  let cell = ref [ r ] in
                  KTbl.add groups key cell;
                  order := cell :: !order)
              rows;
            List.rev_map (fun cell -> List.rev !cell) !order
          end
        in
        List.filter_map
          (fun grows ->
            let aggs = Array.map (fun fn -> fn grows) aggfns in
            let rep =
              match grows with
              | r :: _ -> r
              | [] -> { vals = [||]; lin = Lineage.empty; src = [] }
            in
            (* An output tuple's provenance is the union of its
               contributing inputs. *)
            let merged =
              {
                vals = rep.vals;
                lin = Lineage.union_all (List.map (fun r -> r.lin) grows);
                src = List.concat_map (fun r -> r.src) grows;
              }
            in
            let keep =
              match having with
              | None -> true
              | Some h -> Value.to_bool (h merged.vals aggs)
            in
            if keep then Some (merged, aggs) else None)
          group_list
      end

(* Projection, DISTINCT, ORDER BY, LIMIT over (representative, aggs)
   pairs — second half of the AST walker's [finish_select], shared
   verbatim with the batch compiler so output shaping cannot diverge
   between the row and vectorized pipelines. *)
let compile_finish_tail (f : Plan.finish) :
    (arow * Value.t array) list -> arow list =
  let projs = List.map compile_expr f.Plan.projs in
  let okeys =
    List.map
      (fun ((k : Plan.okey), dir) ->
        let ck =
          match k with
          | Plan.By_output i -> `Out i
          | Plan.By_expr p -> `Expr (compile_expr p)
          | Plan.By_null -> `Nul
        in
        (ck, dir))
      f.Plan.order_by
  in
  let dkeys =
    match f.Plan.distinct with Plan.D_on keys -> List.map compile_expr keys | _ -> []
  in
  fun produced ->
    (* Projections, then order keys, per produced row. *)
    let outputs =
      List.map
        (fun ((r : arow), aggs) ->
          let vals = Array.of_list (List.map (fun c -> c r.vals aggs) projs) in
          let oks =
            List.map
              (fun (ck, dir) ->
                let v =
                  match ck with
                  | `Out i -> vals.(i)
                  | `Expr c ->
                    if f.Plan.aggregated then (
                      try c r.vals aggs with _ -> Value.Null)
                    else c r.vals aggs
                  | `Nul -> Value.Null
                in
                (v, dir))
              okeys
          in
          ({ r with vals }, oks))
        produced
    in
    (* DISTINCT / DISTINCT ON *)
    let outputs =
      match f.Plan.distinct with
      | Plan.D_all -> outputs
      | Plan.D_distinct ->
        (* Duplicates are merged, not dropped: the surviving tuple's
           lineage (and source tids) absorbs those of every duplicate.
           The projected row itself is the key. *)
        let seen : (arow ref * (Value.t * Ast.order_dir) list) KTbl.t =
          KTbl.create 64
        in
        let order = ref [] in
        List.iter
          (fun ((r : arow), ok) ->
            match KTbl.find_opt seen r.vals with
            | Some (kept, _) ->
              kept :=
                {
                  !kept with
                  lin = Lineage.union !kept.lin r.lin;
                  src = !kept.src @ r.src;
                }
            | None ->
              let cell = ref r in
              KTbl.add seen r.vals (cell, ok);
              order := (cell, ok) :: !order)
          outputs;
        List.rev_map (fun (cell, ok) -> (!cell, ok)) !order
      | Plan.D_on _ ->
        (* Keys are evaluated in the input-row context of each produced
           row (witness queries are flat, non-aggregated selects). *)
        let seen : unit KTbl.t = KTbl.create 64 in
        List.filter_map
          (fun ((r, ok), (input : arow)) ->
            let kv =
              Array.of_list (List.map (fun c -> c input.vals [||]) dkeys)
            in
            if KTbl.mem seen kv then None
            else begin
              KTbl.add seen kv ();
              Some (r, ok)
            end)
          (List.map2 (fun out (input, _) -> (out, input)) outputs produced)
    in
    (* ORDER BY, LIMIT *)
    let outputs =
      if okeys = [] then outputs
      else
        List.stable_sort
          (fun (_, ka) (_, kb) ->
            let rec cmp a b =
              match a, b with
              | [], [] -> 0
              | (va, d) :: ra, (vb, _) :: rb ->
                let c = Value.compare va vb in
                let c = match d with Ast.Asc -> c | Ast.Desc -> -c in
                if c <> 0 then c else cmp ra rb
              | _ -> 0
            in
            cmp ka kb)
          outputs
    in
    let outputs =
      match f.Plan.limit with
      | None -> outputs
      | Some n ->
        let rec take k = function
          | [] -> []
          | _ when k = 0 -> []
          | x :: xs -> x :: take (k - 1) xs
        in
        take n outputs
    in
    List.map fst outputs

(* Group, project, distinct, order, limit — a direct port of the AST
   walker's [finish_select], over precompiled closures. *)
let compile_finish (f : Plan.finish) : arow list -> arow list =
  let produce = compile_produce f in
  let tail = compile_finish_tail f in
  fun rows -> tail (produce rows)

(* UNION merge. [ALL] concatenates; otherwise duplicates are merged by
   value in first-encounter order, absorbing lineages/source-tids as for
   DISTINCT. Shared with the batch compiler's UNION arm. *)
let union_rows ~(all : bool) (lrows : arow list) (rrows : arow list) :
    arow list =
  if all then lrows @ rrows
  else begin
    let seen : arow ref KTbl.t = KTbl.create 64 in
    let order = ref [] in
    List.iter
      (fun row ->
        let key = row.vals in
        match KTbl.find_opt seen key with
        | Some kept ->
          kept :=
            {
              !kept with
              lin = Lineage.union !kept.lin row.lin;
              src = !kept.src @ row.src;
            }
        | None ->
          let cell = ref row in
          KTbl.add seen key cell;
          order := cell :: !order)
      (lrows @ rrows);
    List.rev_map (fun c -> !c) !order
  end

(* One scan closure per access path. Key/bound expressions compile once,
   here; probes and bound evaluation happen per execution. Shared between
   the [Plan.Scan] and [Plan.Shared] slot arms so the two sources read
   tables identically. *)
let access_scan (table : Table.t) (tname : string) (annotate : Row.t -> arow)
    (access : Plan.access) : unit -> arow list =
  match access with
  | Plan.Heap ->
    fun () ->
      let rows = Table.fold (fun acc row -> annotate row :: acc) [] table in
      List.rev rows
  | Plan.Delta ->
    (* The watermark is read per execution, not captured: the same
       compiled plan keeps scanning the current delta as the engine
       advances [Table.delta_base]. *)
    fun () ->
      let rows =
        Table.fold_delta (fun acc row -> annotate row :: acc) [] table
      in
      List.rev rows
  | Plan.Below ->
    fun () ->
      let rows =
        Table.fold_below (fun acc row -> annotate row :: acc) [] table
      in
      List.rev rows
  | Plan.Index_eq { index; key } ->
    let ix =
      match Table.find_index table index with
      | Some ix -> ix
      | None -> Errors.catalog_error "no index %s on table %s" index tname
    in
    let ckey = compile_expr key in
    fun () ->
      Atomic.incr index_probes;
      let v = ckey [||] [||] in
      (* [col = NULL] matches nothing. *)
      if Value.is_null v then []
      else List.map annotate (Table.index_lookup table ix v)
  | Plan.Index_range { index; lo; hi } ->
    let ix =
      match Table.find_index table index with
      | Some ix -> ix
      | None -> Errors.catalog_error "no index %s on table %s" index tname
    in
    let cbound = Option.map (fun (p, incl) -> (compile_expr p, incl)) in
    let clo = cbound lo and chi = cbound hi in
    fun () ->
      Atomic.incr index_probes;
      let eval = Option.map (fun (c, incl) -> (c [||] [||], incl)) in
      let lo = eval clo and hi = eval chi in
      (* A NULL bound makes the comparison false for every row. *)
      let null_bound =
        match lo, hi with
        | Some (v, _), _ when Value.is_null v -> true
        | _, Some (v, _) when Value.is_null v -> true
        | _ -> false
      in
      if null_bound then []
      else List.map annotate (Table.index_range table ix ?lo ?hi ())

let rec compile_q (cat : Catalog.t) (shared : arow list Shared_cache.t option)
    (opts : opts) (q : Plan.query) : t =
  match q with
  | Plan.Select sp -> compile_select cat shared opts sp
  | Plan.Union { all; left; right } ->
    let l = compile_q cat shared opts left in
    let r = compile_q cat shared opts right in
    let exec () = union_rows ~all (l.exec ()) (r.exec ()) in
    { cols = l.cols; exec }

and compile_select (cat : Catalog.t) (shared : arow list Shared_cache.t option)
    (opts : opts) (sp : Plan.select_plan) : t =
  let nslots = Array.length sp.Plan.slots in
  (* Scan closures capture table handles and provenance configuration.
     All access paths annotate identically: index probes return rows in
     tid order, which is heap scan order, so lineage and source tids are
     bit-for-bit those of the heap path. *)
  let annotate_for idx tname =
    fun row ->
      let lin =
        if opts.lineage then Lineage.singleton tname (Row.tid row)
        else Lineage.off
      in
      let src = if opts.track_src then [ (idx, Row.tid row) ] else [] in
      { vals = Row.cells row; lin; src }
  in
  let scan =
    Array.mapi
      (fun idx (slot : Plan.slot) ->
        match slot.Plan.source with
        | Plan.Scan (name, access) ->
          let table = Catalog.find cat name in
          let tname = Table.name table in
          access_scan table tname (annotate_for idx tname) access
        | Plan.Shared { tag; table = name; access; preds } -> (
          let table = Catalog.find cat name in
          let tname = Table.name table in
          let raw = access_scan table tname (annotate_for idx tname) access in
          let cpreds = List.map compile_expr preds in
          (* The absorbed conjuncts filter in one pass per conjunct, the
             order [scan_preds] would have used. *)
          let materialize () =
            List.fold_left
              (fun rows c ->
                List.filter (fun (r : arow) -> Value.to_bool (c r.vals [||])) rows)
              (raw ()) cpreds
          in
          match shared with
          | Some cache when (not opts.lineage) && not opts.track_src ->
            (* Provenance annotations are slot-index-specific, so only
               bare rows may be shared across plans. Generation and
               table version are read per execution: any mutation since
               materialization forces a fresh scan. *)
            fun () ->
              Shared_cache.find_or_compute cache
                ~gen:(Catalog.generation cat)
                ~ver:(Table.ver_mut table) ~tag materialize
          | _ -> materialize)
        | Plan.Sub q ->
          (* Lineage flows through subqueries; source tids do not
             (witness queries are always built over flat FROM lists). *)
          (compile_q cat shared { opts with track_src = false } q).exec)
      sp.Plan.slots
  in
  let scan_preds = Array.map (List.map compile_expr) sp.Plan.scan_preds in
  (* Projection through [keep]; identity keeps are free (and scans then
     share cell arrays with the table, as the AST walker did). *)
  let project =
    Array.map
      (fun (slot : Plan.slot) ->
        if Array.length slot.Plan.keep = Array.length slot.Plan.cols then None
        else Some slot.Plan.keep)
      sp.Plan.slots
  in
  let project_row si =
    match project.(si) with
    | None -> fun (r : arow) -> r
    | Some keep -> fun (r : arow) -> { r with vals = Array.map (fun j -> r.vals.(j)) keep }
  in
  let steps =
    Array.map
      (fun (j : Plan.jstep) ->
        ( List.map (fun (p, b) -> (compile_expr p, compile_expr b)) j.Plan.keys,
          List.map compile_expr j.Plan.residual ))
      sp.Plan.joins
  in
  let const_preds = List.map compile_expr sp.Plan.const_preds in
  let fin = compile_finish sp.Plan.finish in
  let cols = Array.of_list sp.Plan.finish.Plan.columns in
  let exec () =
    (* Constant conjuncts gate the whole query (short-circuit, so a later
       erroring conjunct is never reached once one is false). *)
    if
      not
        (List.for_all (fun c -> Value.to_bool (c [||] [||])) const_preds)
    then fin []
    else if nslots = 0 then
      (* An empty FROM contributes one empty row so that [SELECT 1]
         yields a single tuple. *)
      fin [ { vals = [||]; lin = Lineage.empty; src = [] } ]
    else begin
      let joined = ref [] in
      for si = 0 to nslots - 1 do
        let rows = ref (scan.(si) ()) in
        (* Pushed-down predicates, one filtering pass per conjunct (the
           AST walker's evaluation order). *)
        List.iter
          (fun c ->
            rows :=
              List.filter (fun (r : arow) -> Value.to_bool (c r.vals [||])) !rows)
          scan_preds.(si);
        let keys, residual = steps.(si) in
        let proj = project_row si in
        if si = 0 then begin
          let rows0 = match project.(0) with None -> !rows | Some _ -> List.map proj !rows in
          joined :=
            (if residual = [] then rows0
             else
               List.filter
                 (fun (r : arow) ->
                   List.for_all (fun c -> Value.to_bool (c r.vals [||])) residual)
                 rows0)
        end
        else begin
          let out = ref [] in
          (if keys <> [] then begin
             (* Hash join: build on the new slot, probe with the prefix.
                [KTbl.add] + [find_all] reproduce the walker's
                reverse-insertion match order, keyed on the value tuples
                themselves. *)
             let build = KTbl.create (max 16 (List.length !rows)) in
             List.iter
               (fun (r : arow) ->
                 let kv =
                   Array.of_list
                     (List.map (fun (_, cb) -> cb r.vals [||]) keys)
                 in
                 KTbl.add build kv (proj r))
               !rows;
             List.iter
               (fun (l : arow) ->
                 let kv =
                   Array.of_list
                     (List.map (fun (cp, _) -> cp l.vals [||]) keys)
                 in
                 List.iter
                   (fun r -> out := concat_rows l r :: !out)
                   (KTbl.find_all build kv))
               !joined
           end
           else begin
             (* Nested-loop cross product. *)
             let rrows =
               match project.(si) with
               | None -> !rows
               | Some _ -> List.map proj !rows
             in
             List.iter
               (fun l -> List.iter (fun r -> out := concat_rows l r :: !out) rrows)
               !joined
           end);
          note_rows (List.length !out);
          let rows' = List.rev !out in
          joined :=
            (if residual = [] then rows'
             else
               List.filter
                 (fun (r : arow) ->
                   List.for_all (fun c -> Value.to_bool (c r.vals [||])) residual)
                 rows')
        end
      done;
      fin !joined
    end
  in
  { cols; exec }

let compile (cat : Catalog.t) ?shared (opts : opts) (q : Plan.query) : t =
  compile_q cat shared opts q
