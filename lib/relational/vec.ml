(** Growable arrays.

    OCaml 5.1's standard library does not ship [Dynarray] yet, so the
    storage layer uses this small vector module. Elements are stored in a
    plain array that doubles on overflow; [truncate] supports the
    savepoint/rollback mechanism used by log tables. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a; (* used to fill unused slots so they can be collected *)
}

let create ~dummy () = { data = Array.make 16 dummy; len = 0; dummy }

let length t = t.len

let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- x

let ensure_capacity t n =
  let cap = Array.length t.data in
  if n > cap then begin
    let new_cap = max n (max 16 (2 * cap)) in
    let data = Array.make new_cap t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure_capacity t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Vec.truncate";
  for i = n to t.len - 1 do
    t.data.(i) <- t.dummy
  done;
  t.len <- n

let clear t = truncate t 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.len - 1) []

let to_array t = Array.sub t.data 0 t.len

(* The backing array itself: slots at indices >= [length t] hold the
   dummy. Read-only zero-copy access for batch scans; callers must pair
   it with the current length and drop it before the next mutation. *)
let unsafe_data t = t.data

let of_list ~dummy xs =
  let t = create ~dummy () in
  List.iter (push t) xs;
  t

(* Bulk operations (selection vectors and column stores move elements in
   slabs; going through [get]/[push] per element costs a bounds check and
   a capacity check each). *)

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  if len < 0 || src_pos < 0 || src_pos + len > src.len then
    invalid_arg "Vec.blit: source range out of bounds";
  if dst_pos < 0 || dst_pos > dst.len then
    invalid_arg "Vec.blit: destination start out of bounds";
  ensure_capacity dst (dst_pos + len);
  Array.blit src.data src_pos dst.data dst_pos len;
  if dst_pos + len > dst.len then dst.len <- dst_pos + len

let sub t ~pos ~len =
  if len < 0 || pos < 0 || pos + len > t.len then
    invalid_arg "Vec.sub: range out of bounds";
  let r = { data = Array.make (max 16 len) t.dummy; len; dummy = t.dummy } in
  Array.blit t.data pos r.data 0 len;
  r

let append dst src =
  ensure_capacity dst (dst.len + src.len);
  Array.blit src.data 0 dst.data dst.len src.len;
  dst.len <- dst.len + src.len

(* Keep only elements satisfying [p], preserving order; returns the number
   of elements removed. *)
let filter_in_place p t =
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    let x = t.data.(i) in
    if p x then begin
      t.data.(!j) <- x;
      incr j
    end
  done;
  let removed = t.len - !j in
  truncate t !j;
  removed
