(** Pretty-printing of the SQL AST back to concrete syntax.

    The output re-parses to a structurally equal AST (checked by property
    tests), which lets the DataLawyer engine display rewritten policies
    (time-independent forms, witness queries, partial policies) to users
    as ordinary SQL. *)

let binop_str = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Eq -> "="
  | Ast.Neq -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> "AND"
  | Ast.Or -> "OR"
  | Ast.Concat -> "||"
  | Ast.Like -> "LIKE"

let agg_str = function
  | Ast.Count_star | Ast.Count -> "COUNT"
  | Ast.Sum -> "SUM"
  | Ast.Avg -> "AVG"
  | Ast.Min -> "MIN"
  | Ast.Max -> "MAX"

(* Precedence levels, mirroring the parser: higher binds tighter. *)
let prec = function
  | Ast.Or -> 1
  | Ast.And -> 2
  | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Like -> 4
  | Ast.Add | Ast.Sub | Ast.Concat -> 5
  | Ast.Mul | Ast.Div | Ast.Mod -> 6

let rec expr_prec ctx e =
  let s, p = expr_raw e in
  if p < ctx then "(" ^ s ^ ")" else s

and expr_raw = function
  | Ast.Lit v -> (Value.to_sql v, 10)
  | Ast.Col (None, c) -> (c, 10)
  | Ast.Col (Some q, c) -> (Printf.sprintf "%s.%s" q c, 10)
  | Ast.Unop (Ast.Not, e) -> (Printf.sprintf "NOT %s" (expr_prec 3 e), 3)
  | Ast.Unop (Ast.Neg, e) -> (Printf.sprintf "-%s" (expr_prec 7 e), 7)
  | Ast.Binop (op, a, b) ->
    let p = prec op in
    (* Comparisons are non-associative in the grammar, so BOTH operands
       must bind tighter; subtraction/division/modulo are left-associative
       so only the right side needs a tighter context. AND/OR chains may
       re-associate on re-parse, which is semantically harmless. *)
    let left_ctx, right_ctx =
      match op with
      | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Like ->
        (p + 1, p + 1)
      | Ast.Sub | Ast.Div | Ast.Mod -> (p, p + 1)
      | _ -> (p, p)
    in
    ( Printf.sprintf "%s %s %s" (expr_prec left_ctx a) (binop_str op)
        (expr_prec right_ctx b),
      p )
  | Ast.Agg_call (Ast.Count_star, _, _) -> ("COUNT(*)", 10)
  | Ast.Agg_call (agg, distinct, Some arg) ->
    ( Printf.sprintf "%s(%s%s)" (agg_str agg)
        (if distinct then "DISTINCT " else "")
        (expr_prec 0 arg),
      10 )
  | Ast.Agg_call (agg, _, None) ->
    (Printf.sprintf "%s(*)" (agg_str agg), 10)
  | Ast.Fn_call (name, args) ->
    ( Printf.sprintf "%s(%s)" (String.uppercase_ascii name)
        (String.concat ", " (List.map (expr_prec 0) args)),
      10 )
  | Ast.Case (branches, default) ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf "CASE";
    List.iter
      (fun (c, v) ->
        Buffer.add_string buf
          (Printf.sprintf " WHEN %s THEN %s" (expr_prec 0 c) (expr_prec 0 v)))
      branches;
    Option.iter
      (fun d -> Buffer.add_string buf (Printf.sprintf " ELSE %s" (expr_prec 0 d)))
      default;
    Buffer.add_string buf " END";
    (Buffer.contents buf, 10)

let expr e = expr_prec 0 e

let select_item = function
  | Ast.Star -> "*"
  | Ast.Table_star t -> t ^ ".*"
  | Ast.Sel_expr (e, None) -> expr e
  | Ast.Sel_expr (e, Some a) -> Printf.sprintf "%s AS %s" (expr e) a

let rec from_item = function
  | Ast.From_table { name; alias = None } -> name
  | Ast.From_table { name; alias = Some a } -> Printf.sprintf "%s %s" name a
  | Ast.From_subquery { query = q; alias } ->
    Printf.sprintf "(%s) %s" (query q) alias

and select (s : Ast.select) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  (match s.distinct with
  | Ast.All -> ()
  | Ast.Distinct -> Buffer.add_string buf "DISTINCT "
  | Ast.Distinct_on es ->
    Buffer.add_string buf
      (Printf.sprintf "DISTINCT ON (%s) " (String.concat ", " (List.map expr es))));
  Buffer.add_string buf (String.concat ", " (List.map select_item s.items));
  if s.from <> [] then begin
    Buffer.add_string buf " FROM ";
    Buffer.add_string buf (String.concat ", " (List.map from_item s.from))
  end;
  Option.iter (fun w -> Buffer.add_string buf (" WHERE " ^ expr w)) s.where;
  if s.group_by <> [] then
    Buffer.add_string buf
      (" GROUP BY " ^ String.concat ", " (List.map expr s.group_by));
  Option.iter (fun h -> Buffer.add_string buf (" HAVING " ^ expr h)) s.having;
  if s.order_by <> [] then
    Buffer.add_string buf
      (" ORDER BY "
      ^ String.concat ", "
          (List.map
             (fun (e, d) ->
               expr e ^ match d with Ast.Asc -> "" | Ast.Desc -> " DESC")
             s.order_by));
  Option.iter (fun l -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" l)) s.limit;
  Buffer.contents buf

and query = function
  | Ast.Select s -> select s
  | Ast.Union { all; left; right } ->
    Printf.sprintf "(%s) UNION %s(%s)" (query left)
      (if all then "ALL " else "")
      (query right)

let stmt = function
  | Ast.Query q -> query q
  | Ast.Insert { table; columns; rows } ->
    Printf.sprintf "INSERT INTO %s%s VALUES %s" table
      (match columns with
      | None -> ""
      | Some cs -> Printf.sprintf " (%s)" (String.concat ", " cs))
      (String.concat ", "
         (List.map
            (fun row -> Printf.sprintf "(%s)" (String.concat ", " (List.map expr row)))
            rows))
  | Ast.Create_table { table; columns } ->
    Printf.sprintf "CREATE TABLE %s (%s)" table
      (String.concat ", "
         (List.map (fun (n, ty) -> Printf.sprintf "%s %s" n (Ty.to_string ty)) columns))
  | Ast.Delete { table; where } ->
    Printf.sprintf "DELETE FROM %s%s" table
      (match where with None -> "" | Some w -> " WHERE " ^ expr w)
  | Ast.Update { table; sets; where } ->
    Printf.sprintf "UPDATE %s SET %s%s" table
      (String.concat ", "
         (List.map (fun (c, e) -> Printf.sprintf "%s = %s" c (expr e)) sets))
      (match where with None -> "" | Some w -> " WHERE " ^ expr w)
  | Ast.Drop_table { table; if_exists } ->
    Printf.sprintf "DROP TABLE %s%s" (if if_exists then "IF EXISTS " else "") table
  | Ast.Create_index { index; table; column; sorted } ->
    Printf.sprintf "CREATE INDEX %s ON %s USING %s (%s)" index table
      (if sorted then "sorted" else "hash")
      column
  | Ast.Drop_index { index; if_exists } ->
    Printf.sprintf "DROP INDEX %s%s" (if if_exists then "IF EXISTS " else "") index
