(** The catalog: a named collection of tables.

    One catalog instance is "the database" of the paper's Eq. (1): it
    holds ordinary database relations and, when driven by the DataLawyer
    engine, the usage-log relations. Log relations are tagged so policy
    analysis can distinguish the log [L] from the database [D]. *)

type table_kind =
  | Base  (** ordinary database relation *)
  | Log  (** usage-log relation, populated by a log-generating function *)
  | System  (** system relation, e.g. [clock] *)

type t

val create : unit -> t

(** Monotone shape counter: bumped on every {!add}/{!drop} (and by
    {!touch}). Compiled plans capture table handles, so anything caching
    them must key on this; the engine also bumps it explicitly on
    configuration changes. *)
val generation : t -> int

(** Bump {!generation} without structural change — invalidates any plans
    cached against this catalog. *)
val touch : t -> unit

(** Case-insensitive membership test. *)
val mem : t -> string -> bool

(** Register an existing table.
    @raise Errors.Sql_error if the name is taken. *)
val add : ?kind:table_kind -> t -> Table.t -> unit

(** Create and register a table. *)
val create_table : ?kind:table_kind -> t -> name:string -> schema:Schema.t -> Table.t

(** @raise Errors.Sql_error if absent. *)
val drop : t -> string -> unit

val find_opt : t -> string -> Table.t option

(** @raise Errors.Sql_error if absent. *)
val find : t -> string -> Table.t

val kind_of : t -> string -> table_kind option

(** Is the named relation a usage-log relation? *)
val is_log : t -> string -> bool

(** All table names, sorted. *)
val table_names : t -> string list

(** Names of [Log]-kind tables, sorted. *)
val log_table_names : t -> string list

(** {1 Index manager}

    Index names are global (no table qualifier on [DROP INDEX]). Creating
    or dropping an index bumps {!generation}, so prepared plans compiled
    against the old access paths are invalidated. *)

(** Case-insensitive: is there an index with this name anywhere? *)
val mem_index : t -> string -> bool

(** Create an index on [table].[column] and build it from current rows.
    @raise Errors.Sql_error if the name is taken, the table is absent or
    the column unknown. *)
val create_index :
  t -> name:string -> table:string -> column:string -> kind:Index.kind -> Index.t

(** Drop an index by name. @raise Errors.Sql_error if absent, unless
    [if_exists]. *)
val drop_index : ?if_exists:bool -> t -> string -> unit
