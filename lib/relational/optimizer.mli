(** Plan rewrites: constant folding, predicate pushdown into scans,
    equi-join-key extraction, access-path selection against the catalog's
    declared indexes, and projection pruning across joins.

    Semantics-preserving: output rows, lineage, and source tids are
    identical to compiling the binder's naive plan directly (checked by
    the differential property test). The catalog is consulted for index
    metadata only; compiled plans must still be invalidated (via
    {!Catalog.generation}) when indexes change. *)

val optimize : Catalog.t -> Plan.query -> Plan.query
