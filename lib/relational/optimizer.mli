(** Plan rewrites: constant folding, predicate pushdown into scans,
    equi-join-key extraction, and projection pruning across joins.

    Semantics-preserving: output rows, lineage, and source tids are
    identical to compiling the binder's naive plan directly (checked by
    the differential property test). *)

val optimize : Plan.query -> Plan.query
