(** Plan rewrites: constant folding, predicate pushdown into scans,
    equi-join-key extraction, access-path selection against the catalog's
    declared indexes, and projection pruning across joins.

    Semantics-preserving: output rows, lineage, and source tids are
    identical to compiling the binder's naive plan directly (checked by
    the differential property test). The catalog is consulted for index
    metadata only; compiled plans must still be invalidated (via
    {!Catalog.generation}) when indexes change. *)

val optimize : Catalog.t -> Plan.query -> Plan.query

(** Rewrite every base-table scan slot into a {!Plan.Shared}
    materialization point, absorbing the slot's pushed-down conjuncts
    into the node and tagging it with a digest of (table, access,
    conjuncts) — so identical scan-plus-filter prefixes across the plans
    of different policies share one materialization when compiled
    against a {!Shared_cache}. Delta scans and subquery slots are left
    alone. Apply after {!optimize}; without a cache the rewritten plan
    compiles to exactly the same behaviour. *)
val share_scans : Plan.query -> Plan.query

(** Result of {!derive_delta}: the base tables the query reads (canonical
    name, is-it-a-log-relation — the incremental engine snapshots their
    version counters to validate its emptiness proof) and one optimized
    plan per log-relation slot with that slot's scan restricted to the
    table's delta ({!Plan.Delta}). *)
type delta_plans = {
  deps : (string * bool) list;
  variants : Plan.query list;
}

(** Delta-plan derivation for incremental policy evaluation. Returns
    [None] unless the query is delta-eligible: a single
    select-project-join over base-table scans (no UNION, no subqueries),
    no aggregation / ORDER BY / LIMIT / DISTINCT ON, and no scan of
    [clock_rel]. Projections may be arbitrary (a unified policy projects
    member messages from its constants table); the variant union equals
    the full result as a set, so callers must read it with set
    semantics. For an
    eligible query proved empty over the pre-delta state, the union of
    the returned variants equals the query over the grown state — see
    the soundness argument in the implementation. *)
val derive_delta :
  Catalog.t ->
  is_log:(string -> bool) ->
  clock_rel:string ->
  Ast.query ->
  delta_plans option

(** Batch-eligibility analysis for the vectorized executor: route each
    subtree of an optimized plan to the batch pipeline or back to the
    row path. A [Select] routes to {!Plan.Route_batch} unless lineage is
    on (provenance merging stays row-at-a-time), the select is
    aggregated while source tids are tracked, or a clause the batch
    operators evaluate positionally contains a group-context expression.
    UNION sides route independently; subquery slots inside a batched
    select compile through the row path and enter through the row→batch
    adapter regardless of the route. *)
val batch_route :
  lineage:bool -> track_src:bool -> Plan.query -> Plan.route
