(** Plan rewrites: constant folding, predicate pushdown into scans,
    equi-join-key extraction, access-path selection against the catalog's
    declared indexes, and projection pruning across joins.

    Semantics-preserving: output rows, lineage, and source tids are
    identical to compiling the binder's naive plan directly (checked by
    the differential property test). The catalog is consulted for index
    metadata only; compiled plans must still be invalidated (via
    {!Catalog.generation}) when indexes change. *)

val optimize : Catalog.t -> Plan.query -> Plan.query

(** Rewrite every base-table scan slot into a {!Plan.Shared}
    materialization point, absorbing the slot's pushed-down conjuncts
    into the node and tagging it with a digest of (table, access,
    conjuncts) — so identical scan-plus-filter prefixes across the plans
    of different policies share one materialization when compiled
    against a {!Shared_cache}. Delta scans and subquery slots are left
    alone. Apply after {!optimize}; without a cache the rewritten plan
    compiles to exactly the same behaviour. *)
val share_scans : Plan.query -> Plan.query

(** How sensitive a policy's carried delta state is to mutations of one
    dependency table: which of the table's version counters the
    incremental engine must fold into its snapshot. Totally ordered by
    sensitivity — [Dep_plain] (any mutation, {!Table.ver_mut}),
    [Dep_log] (result-growing non-appends, {!Table.ver_unsafe}),
    [Dep_log_exact] (adds predicate deletion, {!Table.ver_del} — carried
    SUM/COUNT/AVG accumulators survive witness-driven compaction, which
    retains every contributing row, but not arbitrary DML),
    [Dep_log_frozen] (adds compaction, {!Table.ver_compact} — MIN/MAX
    state treats any removal as invalidating). *)
type dep_kind = Dep_plain | Dep_log | Dep_log_exact | Dep_log_frozen

(** Delta evaluation of an aggregated select: telescoped variant streams
    emit one raw row [group-key values @ aggregate arguments] per joined
    tuple binding at least one delta row; the engine folds that stream
    into carried per-group accumulators ({!Delta_store} in the
    incremental library) and re-checks HAVING and the projections only
    for the touched groups. *)
type agg_delta = {
  ad_variants : Plan.query list;
      (** one per log slot: that slot {!Plan.Delta}, earlier log slots
          [Heap], later log slots {!Plan.Below} — each delta-bound
          joined tuple appears in exactly one variant *)
  ad_full : Plan.query;
      (** the same stream over the full state (all-[Heap]), for
          rebuilding carried accumulators when the base is invalid *)
  ad_nkeys : int;  (** leading group-key values per stream row *)
  ad_specs : (Ast.agg * bool) array;
      (** (aggregate function, DISTINCT?) per trailing stream column,
          in {!Plan.finish} aggregate order *)
  ad_width : int;  (** full row-layout width, for representative rows *)
  ad_rep_slots : int option list;
      (** per group-by position: [Some i] when the key expression is the
          bare field [i], recovering the representative cell *)
  ad_finish : Plan.finish;
      (** the policy's own finish: HAVING/projections re-evaluate per
          touched group over (representative row, aggregate values) *)
}

(** One delta-evaluation strategy per select of a policy. [B_spj] is the
    monotone per-log-slot variant union; [B_residual] is an exact
    recompute with the clock relation eliminated and read at execution
    time (sound only while the clock holds exactly one row — the engine
    guards per evaluation); [B_agg] carries per-group aggregate
    state. *)
type delta_branch =
  | B_spj of Plan.query list
  | B_residual of { plan : Plan.query; clock_table : string }
  | B_agg of agg_delta

(** Result of {!derive_delta}: the base tables the query reads, each with
    the {!dep_kind} the engine snapshots to validate carried state, and
    one classified branch per select (a UNION policy yields one branch
    per side, with dependencies merged at each table's most sensitive
    kind). *)
type delta_plans = {
  deps : (string * dep_kind) list;
  branches : delta_branch list;
}

(** Delta-plan derivation for incremental policy evaluation. Returns
    [None] unless every select of the query classifies: base-table scans
    only (no subqueries), no LIMIT / DISTINCT ON anywhere, at most one
    clock slot per select (whose presence routes it to [B_residual],
    where aggregation, ORDER BY and window predicates are all
    supported), and clock-free selects split into [B_spj]
    (non-aggregated, no ORDER BY) and [B_agg] (aggregated, with shape
    restrictions documented in the implementation). Projections may be
    arbitrary (a unified policy projects member messages from its
    constants table); branch results union as sets, so callers must
    read them with set semantics. *)
val derive_delta :
  Catalog.t ->
  is_log:(string -> bool) ->
  clock_rel:string ->
  Ast.query ->
  delta_plans option

(** Batch-eligibility analysis for the vectorized executor: route each
    subtree of an optimized plan to the batch pipeline or back to the
    row path. A [Select] routes to {!Plan.Route_batch} unless lineage is
    on (provenance merging stays row-at-a-time), the select is
    aggregated while source tids are tracked, or a clause the batch
    operators evaluate positionally contains a group-context expression.
    UNION sides route independently; subquery slots inside a batched
    select compile through the row path and enter through the row→batch
    adapter regardless of the route. *)
val batch_route :
  lineage:bool -> track_src:bool -> Plan.query -> Plan.route

(** {1 Kernel-shape analysis}

    Compile-time skeletons for the typed batch kernels: routing is
    static, but which kernel runs is re-decided per execution from the
    column layouts the batch binds against (a typed column can demote to
    Mixed between executions of a prepared plan). These classify the
    field/constant shape once so per-execution dispatch is a view
    inspection, with Mixed and opaque shapes falling back to the boxed
    Value kernels. *)

type cmp_shape =
  | Cmp_field_const of Ast.binop * int * Value.t
      (** [field OP literal], constant side normalized to the right *)
  | Cmp_field_field of Ast.binop * int * int  (** [field OP field] *)
  | Cmp_opaque  (** anything else: evaluate through the scalar closure *)

val cmp_shape : Plan.pexpr -> cmp_shape

(** The column index when the expression is a bare field reference —
    a join/group key eligible for the unboxed hash kernels. *)
val key_field : Plan.pexpr -> int option
