(** Plan rewrites.

    The binder emits a naive plan: every WHERE conjunct sits at the join
    step where its slots are first all available, scans read full rows,
    joins are nested loops. This module rewrites that plan:

    - {b constant folding} — subtrees whose children are all literal fold
      to their value; a subtree that would raise (e.g. [1/0]) is left
      unfolded so the error still surfaces per evaluated row;
    - {b predicate pushdown} — single-slot conjuncts move into the slot's
      scan, rebased to the slot-local layout;
    - {b equi-join-key extraction} — conjuncts of shape
      [prefix_expr = slot_expr] at a join step become hash keys;
    - {b projection pruning} — multi-slot selects narrow each slot to the
      columns the rest of the plan references, remapping every
      final-layout field.

    Rewrites are semantics-preserving by construction; the differential
    test in [test/test_plan_diff.ml] checks optimized output (rows,
    lineage, source tids) against the un-optimized binder output. *)

let is_const = function Plan.Const _ -> true | _ -> false

(* Fold bottom-up. A node folds only when all direct children are already
   constants (sound because children fold first); evaluation happens via
   the compiled closure on empty environments, and any SQL error means
   the node keeps its symbolic form. *)
let rec fold (p : Plan.pexpr) : Plan.pexpr =
  match p with
  | Plan.Const _ | Plan.Field _ | Plan.Rep_field _ | Plan.Agg_ref _
  | Plan.Agg_outside | Plan.Exec _ ->
    (* [Exec] reads exec-time state (the clock), so it never folds —
       freezing it would pin the plan to one tick. *)
    p
  | Plan.Binop (op, a, b) ->
    let a = fold a and b = fold b in
    let p' = Plan.Binop (op, a, b) in
    if is_const a && is_const b then try_const p' else p'
  | Plan.Unop (op, a) ->
    let a = fold a in
    let p' = Plan.Unop (op, a) in
    if is_const a then try_const p' else p'
  | Plan.Fn (name, args) ->
    let args = List.map fold args in
    let p' = Plan.Fn (name, args) in
    if List.for_all is_const args then try_const p' else p'
  | Plan.Case (branches, default) ->
    let branches = List.map (fun (c, v) -> (fold c, fold v)) branches in
    let default = Option.map fold default in
    let p' = Plan.Case (branches, default) in
    if
      List.for_all (fun (c, v) -> is_const c && is_const v) branches
      && (match default with None -> true | Some d -> is_const d)
    then try_const p'
    else p'

and try_const (p : Plan.pexpr) : Plan.pexpr =
  try Plan.Const (Compile.compile_expr p [||] [||])
  with Errors.Sql_error _ -> p

(* Shift final-layout fields to a slot-local layout (for predicates that
   move inside a single slot's scan, or to the build side of a join). *)
let rec rebase (off : int) (p : Plan.pexpr) : Plan.pexpr =
  match p with
  | Plan.Const _ | Plan.Agg_ref _ | Plan.Agg_outside | Plan.Exec _ -> p
  | Plan.Field i -> Plan.Field (i - off)
  | Plan.Rep_field i -> Plan.Rep_field (i - off)
  | Plan.Binop (op, a, b) -> Plan.Binop (op, rebase off a, rebase off b)
  | Plan.Unop (op, a) -> Plan.Unop (op, rebase off a)
  | Plan.Fn (name, args) -> Plan.Fn (name, List.map (rebase off) args)
  | Plan.Case (branches, default) ->
    Plan.Case
      ( List.map (fun (c, v) -> (rebase off c, rebase off v)) branches,
        Option.map (rebase off) default )

(* Renumber final-layout fields through a pruning map. *)
let rec remap (tbl : int array) (p : Plan.pexpr) : Plan.pexpr =
  match p with
  | Plan.Const _ | Plan.Agg_ref _ | Plan.Agg_outside | Plan.Exec _ -> p
  | Plan.Field i -> Plan.Field tbl.(i)
  | Plan.Rep_field i -> Plan.Rep_field tbl.(i)
  | Plan.Binop (op, a, b) -> Plan.Binop (op, remap tbl a, remap tbl b)
  | Plan.Unop (op, a) -> Plan.Unop (op, remap tbl a)
  | Plan.Fn (name, args) -> Plan.Fn (name, List.map (remap tbl) args)
  | Plan.Case (branches, default) ->
    Plan.Case
      ( List.map (fun (c, v) -> (remap tbl c, remap tbl v)) branches,
        Option.map (remap tbl) default )

let mark_fields (used : bool array) (p : Plan.pexpr) : unit =
  let rec walk = function
    | Plan.Const _ | Plan.Agg_ref _ | Plan.Agg_outside | Plan.Exec _ -> ()
    | Plan.Field i | Plan.Rep_field i -> used.(i) <- true
    | Plan.Binop (_, a, b) ->
      walk a;
      walk b
    | Plan.Unop (_, a) -> walk a
    | Plan.Fn (_, args) -> List.iter walk args
    | Plan.Case (branches, default) ->
      List.iter
        (fun (c, v) ->
          walk c;
          walk v)
        branches;
      Option.iter walk default
  in
  walk p

let fold_finish (f : Plan.finish) : Plan.finish =
  {
    f with
    projs = List.map fold f.Plan.projs;
    group_by = List.map fold f.Plan.group_by;
    aggs =
      Array.map
        (fun (a : Plan.agg_spec) -> { a with Plan.arg = Option.map fold a.Plan.arg })
        f.Plan.aggs;
    having = Option.map fold f.Plan.having;
    order_by =
      List.map
        (fun (k, dir) ->
          ( (match k with
            | Plan.By_expr p -> Plan.By_expr (fold p)
            | (Plan.By_output _ | Plan.By_null) as k -> k),
            dir ))
        f.Plan.order_by;
    distinct =
      (match f.Plan.distinct with
      | Plan.D_on keys -> Plan.D_on (List.map fold keys)
      | d -> d);
  }

let map_finish fn (f : Plan.finish) : Plan.finish =
  {
    f with
    projs = List.map fn f.Plan.projs;
    group_by = List.map fn f.Plan.group_by;
    aggs =
      Array.map
        (fun (a : Plan.agg_spec) -> { a with Plan.arg = Option.map fn a.Plan.arg })
        f.Plan.aggs;
    having = Option.map fn f.Plan.having;
    order_by =
      List.map
        (fun (k, dir) ->
          ( (match k with
            | Plan.By_expr p -> Plan.By_expr (fn p)
            | (Plan.By_output _ | Plan.By_null) as k -> k),
            dir ))
        f.Plan.order_by;
    distinct =
      (match f.Plan.distinct with
      | Plan.D_on keys -> Plan.D_on (List.map fn keys)
      | d -> d);
  }

let iter_finish fn (f : Plan.finish) : unit =
  List.iter fn f.Plan.projs;
  List.iter fn f.Plan.group_by;
  Array.iter
    (fun (a : Plan.agg_spec) -> Option.iter fn a.Plan.arg)
    f.Plan.aggs;
  Option.iter fn f.Plan.having;
  List.iter
    (fun (k, _) -> match k with Plan.By_expr p -> fn p | _ -> ())
    f.Plan.order_by;
  match f.Plan.distinct with
  | Plan.D_on keys -> List.iter fn keys
  | _ -> ()

(* Dynamic probe keys: slot-free expressions carrying an [Exec] leaf,
   re-evaluated at probe time. Only the grammar below qualifies —
   [Exec] never raises by contract, numeric/NULL literals and [+]/[-]
   over them never raise either (NULL propagates, ints promote), so
   turning a filter into a probe cannot surface an error on an empty
   table that the never-evaluated filter would not have raised. *)
let rec never_raises (p : Plan.pexpr) : bool =
  match p with
  | Plan.Exec _ -> true
  | Plan.Const (Value.Int _ | Value.Float _ | Value.Null) -> true
  | Plan.Binop ((Ast.Add | Ast.Sub), a, b) -> never_raises a && never_raises b
  | _ -> false

let rec has_exec (p : Plan.pexpr) : bool =
  match p with
  | Plan.Exec _ -> true
  | Plan.Const _ | Plan.Field _ | Plan.Rep_field _ | Plan.Agg_ref _
  | Plan.Agg_outside ->
    false
  | Plan.Binop (_, a, b) -> has_exec a || has_exec b
  | Plan.Unop (_, a) -> has_exec a
  | Plan.Fn (_, args) -> List.exists has_exec args
  | Plan.Case (branches, default) ->
    List.exists (fun (c, v) -> has_exec c || has_exec v) branches
    || (match default with None -> false | Some d -> has_exec d)

let dyn_key (p : Plan.pexpr) : bool = has_exec p && never_raises p

(* Access-path selection helper: given a scan's pushed-down conjuncts
   (slot-local, i.e. [Field i] is table column [i]), pick an index probe
   and return it with the conjuncts left over as ordinary filters.

   The first [col = const] conjunct over an indexed column wins (hash
   preferred, sorted serves equality too); failing that, every range
   conjunct ([</<=/>/>=] against a constant) over the first sorted-indexed
   column is folded into one [Index_range] whose bounds are the tightest
   combination. NULL constants are ineligible: the comparison is false
   for every row, and leaving the conjunct as a filter preserves that.

   Only when no constant probe exists, a {!dyn_key} conjunct may probe
   instead (the clock-elimination rewrite plants those): first a
   [col = dyn] equality, then dynamic bounds over the first
   sorted-indexed column with one — at most one lower and one upper
   bound, untightened (dynamic bounds cannot be compared at plan time),
   the rest staying filters. A dynamic key evaluating to NULL at probe
   time yields no rows, matching the filter it replaced. *)
let select_access (table : Table.t) (preds : Plan.pexpr list) :
    (Plan.access * Plan.pexpr list) option =
  let index_for col ~range =
    let candidates = Table.index_on table ~column:col in
    if range then List.find_opt (fun ix -> Index.kind ix = Index.Sorted) candidates
    else
      match List.find_opt (fun ix -> Index.kind ix = Index.Hash) candidates with
      | Some ix -> Some ix
      | None -> List.nth_opt candidates 0
  in
  let eq_probe = function
    | Plan.Binop (Ast.Eq, Plan.Field i, (Plan.Const v as k))
    | Plan.Binop (Ast.Eq, (Plan.Const v as k), Plan.Field i)
      when not (Value.is_null v) -> (
      match index_for i ~range:false with
      | Some ix -> Some (Plan.Index_eq { index = Index.name ix; key = k })
      | None -> None)
    | _ -> None
  in
  let rec split_eq before = function
    | [] -> None
    | p :: rest -> (
      match eq_probe p with
      | Some access -> Some (access, List.rev_append before rest)
      | None -> split_eq (p :: before) rest)
  in
  let dyn_eq_probe p =
    (* Two clauses, not an or-pattern: a failed [when] guard abandons
       the whole clause rather than retrying the other alternative. *)
    match p with
    | Plan.Binop (Ast.Eq, Plan.Field i, k) when dyn_key k -> (
      match index_for i ~range:false with
      | Some ix -> Some (Plan.Index_eq { index = Index.name ix; key = k })
      | None -> None)
    | Plan.Binop (Ast.Eq, k, Plan.Field i) when dyn_key k -> (
      match index_for i ~range:false with
      | Some ix -> Some (Plan.Index_eq { index = Index.name ix; key = k })
      | None -> None)
    | _ -> None
  in
  let dyn_bound_of p =
    match p with
    | Plan.Binop (op, Plan.Field i, k) when dyn_key k -> (
      match op with
      | Ast.Lt -> Some (i, `Hi (k, false))
      | Ast.Le -> Some (i, `Hi (k, true))
      | Ast.Gt -> Some (i, `Lo (k, false))
      | Ast.Ge -> Some (i, `Lo (k, true))
      | _ -> None)
    | Plan.Binop (op, k, Plan.Field i) when dyn_key k -> (
      match op with
      | Ast.Lt -> Some (i, `Lo (k, false))
      | Ast.Le -> Some (i, `Lo (k, true))
      | Ast.Gt -> Some (i, `Hi (k, false))
      | Ast.Ge -> Some (i, `Hi (k, true))
      | _ -> None)
    | _ -> None
  in
  let dyn_probe () =
    let rec split_dyn_eq before = function
      | [] -> None
      | p :: rest -> (
        match dyn_eq_probe p with
        | Some access -> Some (access, List.rev_append before rest)
        | None -> split_dyn_eq (p :: before) rest)
    in
    match split_dyn_eq [] preds with
    | Some r -> Some r
    | None -> (
      let target =
        List.find_map
          (fun p ->
            match dyn_bound_of p with
            | Some (i, _) when index_for i ~range:true <> None -> Some i
            | _ -> None)
          preds
      in
      match target with
      | None -> None
      | Some col ->
        let ix = Option.get (index_for col ~range:true) in
        let lo = ref None and hi = ref None in
        let remaining =
          List.filter
            (fun p ->
              match dyn_bound_of p with
              | Some (i, `Lo b) when i = col && Option.is_none !lo ->
                lo := Some b;
                false
              | Some (i, `Hi b) when i = col && Option.is_none !hi ->
                hi := Some b;
                false
              | _ -> true)
            preds
        in
        Some (Plan.Index_range { index = Index.name ix; lo = !lo; hi = !hi }, remaining))
  in
  match split_eq [] preds with
  | Some r -> Some r
  | None ->
    let bound_of = function
      | Plan.Binop (op, Plan.Field i, Plan.Const v) when not (Value.is_null v) -> (
        match op with
        | Ast.Lt -> Some (i, `Hi (v, false))
        | Ast.Le -> Some (i, `Hi (v, true))
        | Ast.Gt -> Some (i, `Lo (v, false))
        | Ast.Ge -> Some (i, `Lo (v, true))
        | _ -> None)
      | Plan.Binop (op, Plan.Const v, Plan.Field i) when not (Value.is_null v) -> (
        match op with
        | Ast.Lt -> Some (i, `Lo (v, false))
        | Ast.Le -> Some (i, `Lo (v, true))
        | Ast.Gt -> Some (i, `Hi (v, false))
        | Ast.Ge -> Some (i, `Hi (v, true))
        | _ -> None)
      | _ -> None
    in
    let target =
      List.find_map
        (fun p ->
          match bound_of p with
          | Some (i, _) when index_for i ~range:true <> None -> Some i
          | _ -> None)
        preds
    in
    (match target with
    | None -> dyn_probe ()
    | Some col ->
      let ix = Option.get (index_for col ~range:true) in
      let lo = ref None and hi = ref None in
      (* Tightest bound wins; on equal values an exclusive bound is
         tighter than an inclusive one. *)
      let tighter_lo (v, incl) =
        match !lo with
        | None -> lo := Some (v, incl)
        | Some (v0, i0) ->
          let c = Value.compare v v0 in
          if c > 0 || (c = 0 && i0 && not incl) then lo := Some (v, incl)
      in
      let tighter_hi (v, incl) =
        match !hi with
        | None -> hi := Some (v, incl)
        | Some (v0, i0) ->
          let c = Value.compare v v0 in
          if c < 0 || (c = 0 && i0 && not incl) then hi := Some (v, incl)
      in
      let remaining =
        List.filter
          (fun p ->
            match bound_of p with
            | Some (i, b) when i = col ->
              (match b with `Lo b -> tighter_lo b | `Hi b -> tighter_hi b);
              false
            | _ -> true)
          preds
      in
      let wrap = Option.map (fun (v, incl) -> (Plan.Const v, incl)) in
      Some
        ( Plan.Index_range { index = Index.name ix; lo = wrap !lo; hi = wrap !hi },
          remaining ))

(* How sensitive a policy's carried delta state is to mutations of one
   dependency table. Each kind names the set of version counters whose
   movement invalidates the state; the kinds are totally ordered by
   sensitivity and a policy whose branches disagree takes the maximum. *)
type dep_kind =
  | Dep_plain  (** any mutation invalidates ({!Table.ver_mut}) *)
  | Dep_log
      (** non-append mutations that can grow a monotone result invalidate
          ({!Table.ver_unsafe}); appends are covered by the watermark *)
  | Dep_log_exact
      (** [Dep_log] plus predicate deletion ({!Table.ver_del}): carried
          SUM/COUNT/AVG accumulators cannot subtract removed rows, but
          witness-driven compaction retains every contributing row, so
          [retain_tids] leaves them exact *)
  | Dep_log_frozen
      (** [Dep_log_exact] plus compaction ({!Table.ver_compact}):
          MIN/MAX state treats any removal as invalidating *)

(* Compiled-later description of an aggregate policy's delta evaluation:
   telescoped variant streams emit one row [group_by values @ agg args]
   per joined tuple containing at least one delta-bound log slot; the
   engine folds those rows into scratch clones of the carried per-group
   accumulators and re-checks HAVING/projections only for touched
   groups. *)
type agg_delta = {
  ad_variants : Plan.query list;
      (** one per log slot: that slot [Delta], earlier log slots [Heap],
          later log slots [Below] — each delta-bound joined tuple
          appears in exactly one variant *)
  ad_full : Plan.query;
      (** the same stream over the full state (all-[Heap]); establishes
          rebuild carried accumulators from it when the base is invalid *)
  ad_nkeys : int;  (** leading group-key values per stream row *)
  ad_specs : (Ast.agg * bool) array;
      (** aggregate function and DISTINCT flag per trailing stream
          column, in {!Plan.finish.aggs} order *)
  ad_width : int;  (** full row-layout width, for representative rows *)
  ad_rep_slots : int option list;
      (** per group-by position: [Some i] when the key expression is
          the bare [Field i], recovering the representative cell *)
  ad_finish : Plan.finish;
      (** the policy's own finish: HAVING and projections are
          re-evaluated per touched group over (rep, agg values) *)
}

type delta_branch =
  | B_spj of Plan.query list
      (** monotone select-project-join: per-log-slot [Delta] variants *)
  | B_residual of { plan : Plan.query; clock_table : string }
      (** clock-eliminated exact recompute; sound only while the clock
          relation holds exactly one row (engine-checked per eval) *)
  | B_agg of agg_delta

type delta_plans = {
  deps : (string * dep_kind) list;
  branches : delta_branch list;
}

(* Shared-scan factoring ----------------------------------------------------- *)

(* Structural identity of a scan-plus-filter prefix. Two slots — in the
   same plan or across the plans of different policies — that read the
   same table by the same access path under the same pushed-down
   conjuncts get the same tag, which is exactly the collision that lets
   one materialization serve all of them. The materialization is
   full-width (projection pruning applies at join time), so [keep] does
   not participate. *)
let share_tag (table : string) (access : Plan.access) (preds : Plan.pexpr list)
    : string =
  Digest.to_hex (Digest.string (Marshal.to_string (table, access, preds) []))

(* Turn every base-table scan slot into a {!Plan.Shared} materialization
   point, absorbing the slot's pushed-down conjuncts into the node.
   Delta scans are excluded: they read the watermark at execution time
   and are already tiny. Subquery slots keep their own plans untouched —
   their scans stay private (their layouts are plan-specific anyway).
   Run after {!optimize}, which is what fills [scan_preds] and picks the
   access path being tagged. *)
let share_scans (q : Plan.query) : Plan.query =
  let share_select (sp : Plan.select_plan) : Plan.select_plan =
    let scan_preds = Array.copy sp.Plan.scan_preds in
    let slots =
      Array.mapi
        (fun si (sl : Plan.slot) ->
          match sl.Plan.source with
          | Plan.Scan (_, (Plan.Delta | Plan.Below)) | Plan.Sub _ -> sl
          | Plan.Scan (table, access) ->
            let preds = scan_preds.(si) in
            scan_preds.(si) <- [];
            {
              sl with
              Plan.source =
                Plan.Shared { tag = share_tag table access preds; table; access; preds };
            }
          | Plan.Shared _ -> sl)
        sp.Plan.slots
    in
    { sp with Plan.slots; scan_preds }
  in
  let rec walk = function
    | Plan.Select sp -> Plan.Select (share_select sp)
    | Plan.Union { all; left; right } ->
      Plan.Union { all; left = walk left; right = walk right }
  in
  walk q

let rec optimize (cat : Catalog.t) (q : Plan.query) : Plan.query =
  match q with
  | Plan.Union { all; left; right } ->
    Plan.Union { all; left = optimize cat left; right = optimize cat right }
  | Plan.Select sp -> Plan.Select (optimize_select cat sp)

and optimize_select (cat : Catalog.t) (sp : Plan.select_plan) : Plan.select_plan =
  let slots =
    Array.map
      (fun (sl : Plan.slot) ->
        match sl.Plan.source with
        | Plan.Scan _ | Plan.Shared _ -> sl
        | Plan.Sub q -> { sl with Plan.source = Plan.Sub (optimize cat q) })
      sp.Plan.slots
  in
  let nslots = Array.length slots in
  let offsets = Plan.full_offsets slots in
  let widths = Array.map (fun (sl : Plan.slot) -> Array.length sl.Plan.cols) slots in
  let total = Array.fold_left ( + ) 0 widths in
  (* Fold every expression first: folding can simplify conjuncts before
     placement decisions. *)
  let const_preds = List.map fold sp.Plan.const_preds in
  let joins =
    Array.map
      (fun (j : Plan.jstep) ->
        { j with Plan.residual = List.map fold j.Plan.residual })
      sp.Plan.joins
  in
  let finish = fold_finish sp.Plan.finish in
  (* Pushdown + equi-key extraction per join step. Single-slot conjuncts
     always reference the step's own slot (naive placement put them at
     the step where their last slot appears), so they push into its scan.
     Of the rest, [prefix = this-slot] equalities become hash keys. *)
  let scan_preds = Array.make (max nslots 1) [] in
  let joins =
    Array.mapi
      (fun si (j : Plan.jstep) ->
        let keys, residual =
          List.fold_left
            (fun (keys, residual) p ->
              match Plan.slots_of_pexpr offsets widths p with
              | [ s ] when s = si ->
                scan_preds.(si) <-
                  scan_preds.(si) @ [ rebase offsets.(si) p ];
                (keys, residual)
              | _ -> (
                match p with
                | Plan.Binop (Ast.Eq, a, b) -> (
                  let sa = Plan.slots_of_pexpr offsets widths a in
                  let sb = Plan.slots_of_pexpr offsets widths b in
                  let in_prefix ss =
                    ss <> [] && List.for_all (fun s -> s < si) ss
                  in
                  let on_slot ss = ss = [ si ] in
                  if si > 0 && in_prefix sa && on_slot sb then
                    ((a, rebase offsets.(si) b) :: keys, residual)
                  else if si > 0 && in_prefix sb && on_slot sa then
                    ((b, rebase offsets.(si) a) :: keys, residual)
                  else (keys, p :: residual))
                | _ -> (keys, p :: residual)))
            ([], []) j.Plan.residual
        in
        { Plan.keys = List.rev keys; residual = List.rev residual })
      joins
  in
  let scan_preds =
    if nslots = 0 then sp.Plan.scan_preds else Array.sub scan_preds 0 nslots
  in
  (* Access-path selection: pushed-down conjuncts hitting an indexed
     column turn the heap scan into an index probe; the consumed conjuncts
     disappear from [scan_preds], the rest stay as filters over the
     probe's result. *)
  let slots =
    Array.mapi
      (fun si (sl : Plan.slot) ->
        match sl.Plan.source with
        | Plan.Scan (tname, Plan.Heap) when scan_preds.(si) <> [] -> (
          match Catalog.find_opt cat tname with
          | None -> sl
          | Some table -> (
            match select_access table scan_preds.(si) with
            | None -> sl
            | Some (access, remaining) ->
              scan_preds.(si) <- remaining;
              { sl with Plan.source = Plan.Scan (tname, access) }))
        | _ -> sl)
      slots
  in
  (* Projection pruning: only worthwhile across joins — single-slot scans
     share their cell arrays with the table, and projecting would copy
     every row for no width saving downstream. *)
  if nslots < 2 then
    { Plan.slots; const_preds; scan_preds; joins; finish }
  else begin
    let used = Array.make total false in
    Array.iter
      (fun (j : Plan.jstep) ->
        List.iter (fun (probe, _) -> mark_fields used probe) j.Plan.keys;
        List.iter (mark_fields used) j.Plan.residual)
      joins;
    iter_finish (mark_fields used) finish;
    let keep =
      Array.mapi
        (fun si w ->
          let kept = ref [] in
          for i = w - 1 downto 0 do
            if used.(offsets.(si) + i) then kept := i :: !kept
          done;
          Array.of_list !kept)
        widths
    in
    let slots =
      Array.map2 (fun (sl : Plan.slot) k -> { sl with Plan.keep = k }) slots keep
    in
    (* Old absolute index -> index in the pruned layout. *)
    let tbl = Array.make total (-1) in
    let pruned = Plan.pruned_offsets slots in
    Array.iteri
      (fun si k ->
        Array.iteri (fun j local -> tbl.(offsets.(si) + local) <- pruned.(si) + j) k)
      keep;
    let joins =
      Array.map
        (fun (j : Plan.jstep) ->
          {
            Plan.keys =
              List.map (fun (probe, build) -> (remap tbl probe, build)) j.Plan.keys;
            residual = List.map (remap tbl) j.Plan.residual;
          })
        joins
    in
    let finish = map_finish (remap tbl) finish in
    { Plan.slots; const_preds; scan_preds; joins; finish }
  end

(* Delta derivation --------------------------------------------------------- *)

(* Every select of a policy classifies into exactly one delta branch, or
   the whole policy is ineligible:

   - {b SPJ} (clock-free, non-aggregated): for disjoint states S (proved
     empty) and Δ (appended rows), monotonicity gives

       Q(S ∪ Δ) = ⋃ over log slots i of Q with slot i restricted to Δ

     — any result row must bind at least one slot to a Δ tuple, and the
     per-slot variants cover every such binding, so the union equals the
     full result as a set. (Only multiplicities can differ, which is why
     DISTINCT ON — whose representative choice is order-sensitive — is
     excluded; the engine reads results as sets.)

   - {b Residual} (exactly one clock slot): the clock relation's single
     row is rewritten in place each submission, outside the append-only
     delta discipline, so no watermark argument applies — instead the
     clock is eliminated from the plan entirely and read at execution
     time, giving an exact recompute whose dynamic window/pin predicates
     become index probes. Aggregation, ordering and windows all ride
     along because nothing is approximated.

   - {b Aggregate} (clock-free, aggregated): per-slot Δ variants are
     unsound for non-monotone finishes, so the variants are telescoped
     ([Delta]/[Heap]/[Below] — each Δ-bound joined tuple appears in
     exactly one) and emit the raw stream [group keys @ agg arguments];
     the engine folds that stream into carried per-group accumulators
     and re-checks HAVING only for Δ-touched groups. Untouched groups
     are pinned by the base: their state is unchanged, so HAVING — a
     function of that state alone — still evaluates false. The carried
     state survives witness-driven compaction for SUM/COUNT/AVG
     (witnesses retain every contributing row) and demotes to a rebuild
     for MIN/MAX ({!dep_kind}).

   A UNION policy classifies per branch; its dependencies merge at each
   table's most sensitive kind. Each variant is optimized independently,
   so non-delta slots still get index probes. *)

exception Ineligible

(* Substitute the clock slot's cells with execution-time reads and close
   the gap it leaves in the row layout. [co]/[cw] are the clock slot's
   offset and width; [read c] yields the clock's cell [c] at execution
   time. A [Rep_field] over the clock is ineligible: for the empty
   group it yields Null where the substitute would yield the live
   cell. *)
let rec subst_clock ~co ~cw ~read (p : Plan.pexpr) : Plan.pexpr =
  let s = subst_clock ~co ~cw ~read in
  match p with
  | Plan.Const _ | Plan.Agg_ref _ | Plan.Agg_outside | Plan.Exec _ -> p
  | Plan.Field i ->
    if i >= co && i < co + cw then Plan.Exec (read (i - co))
    else if i >= co + cw then Plan.Field (i - cw)
    else p
  | Plan.Rep_field i ->
    if i >= co && i < co + cw then raise Ineligible
    else if i >= co + cw then Plan.Rep_field (i - cw)
    else p
  | Plan.Binop (op, a, b) -> Plan.Binop (op, s a, s b)
  | Plan.Unop (op, a) -> Plan.Unop (op, s a)
  | Plan.Fn (name, args) -> Plan.Fn (name, List.map s args)
  | Plan.Case (branches, default) ->
    Plan.Case
      (List.map (fun (c, v) -> (s c, s v)) branches, Option.map s default)

(* Clock elimination. Dropping the clock slot is sound only when the
   clock holds exactly one row — the cross join is then a no-op; the
   engine guards per evaluation and falls back to full evaluation
   otherwise. Dynamic pins are propagated across [Field = Field]
   equivalence classes so a window predicate written against one side
   of a join reaches every indexed column. Because the optimizer
   preserves row order (the plan-differential suite checks optimized
   output against the binder's, in order), the residual's output is
   bit-identical to the full plan's — float fold order and MIN/MAX tie
   representatives included. LIMIT and DISTINCT ON stay ineligible:
   the rewritten plan's key choices may differ from the original's, and
   those two finishes are the only order-sensitive ones. *)
let classify_residual (cat : Catalog.t) (sp : Plan.select_plan) ~(ci : int)
    ~(clock_tb : Table.t) : delta_branch =
  let f = sp.Plan.finish in
  if f.Plan.limit <> None then raise Ineligible;
  (match f.Plan.distinct with Plan.D_on _ -> raise Ineligible | _ -> ());
  let slots = sp.Plan.slots in
  let n = Array.length slots in
  (* A clock-only select has nothing left to scan once rewritten. *)
  if n < 2 then raise Ineligible;
  (* Derivation runs on the binder's naive output: no extracted keys,
     no pushed-down scan predicates. *)
  Array.iter
    (fun (j : Plan.jstep) -> if j.Plan.keys <> [] then raise Ineligible)
    sp.Plan.joins;
  Array.iter (fun ps -> if ps <> [] then raise Ineligible) sp.Plan.scan_preds;
  let offsets = Plan.full_offsets slots in
  let widths =
    Array.map (fun (sl : Plan.slot) -> Array.length sl.Plan.cols) slots
  in
  let co = offsets.(ci) and cw = widths.(ci) in
  let read c () =
    match Table.rows clock_tb with
    | [ row ] -> Row.cell row c
    | _ -> Value.Null
  in
  let subst = subst_clock ~co ~cw ~read in
  let conjuncts =
    sp.Plan.const_preds
    @ List.concat_map
        (fun (j : Plan.jstep) -> j.Plan.residual)
        (Array.to_list sp.Plan.joins)
  in
  let cs = List.map subst conjuncts in
  let finish' = map_finish subst f in
  let slots' =
    Array.of_list (List.filteri (fun j _ -> j <> ci) (Array.to_list slots))
  in
  let n' = Array.length slots' in
  let offsets' = Plan.full_offsets slots' in
  let widths' =
    Array.map (fun (sl : Plan.slot) -> Array.length sl.Plan.cols) slots'
  in
  let total' = Array.fold_left ( + ) 0 widths' in
  (* [Field = Field] equivalence classes over the shrunk layout. *)
  let parent = Array.init total' Fun.id in
  let rec find x =
    if parent.(x) = x then x
    else begin
      let r = find parent.(x) in
      parent.(x) <- r;
      r
    end
  in
  List.iter
    (function
      | Plan.Binop (Ast.Eq, Plan.Field a, Plan.Field b) ->
        let ra = find a and rb = find b in
        if ra <> rb then parent.(ra) <- rb
      | _ -> ())
    cs;
  (* Dynamic pins per class. Dedup keys are (field, op) pairs — never
     expressions, keeping structural equality away from closures. The
     derived conjuncts are implied filters: if a row joins, its class
     partner satisfied the pin, so filtering early drops only rows that
     could never join (NULL fields included — the equality would have
     rejected them). *)
  let op_tag = function
    | Ast.Eq -> 0
    | Ast.Lt -> 1
    | Ast.Le -> 2
    | Ast.Gt -> 3
    | Ast.Ge -> 4
    | _ -> -1
  in
  let pins : (int, Ast.binop * Plan.pexpr) Hashtbl.t = Hashtbl.create 8 in
  let direct : (int * int, unit) Hashtbl.t = Hashtbl.create 8 in
  let note fi op d =
    Hashtbl.add pins (find fi) (op, d);
    Hashtbl.replace direct (fi, op_tag op) ()
  in
  let flip = function
    | Ast.Lt -> Ast.Gt
    | Ast.Le -> Ast.Ge
    | Ast.Gt -> Ast.Lt
    | Ast.Ge -> Ast.Le
    | op -> op
  in
  List.iter
    (fun c ->
      match c with
      | Plan.Binop
          (((Ast.Eq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), Plan.Field fi, d)
        when dyn_key d ->
        note fi op d
      | Plan.Binop
          (((Ast.Eq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), d, Plan.Field fi)
        when dyn_key d ->
        note fi (flip op) d
      | _ -> ())
    cs;
  let derived = ref [] in
  for fld = 0 to total' - 1 do
    List.iter
      (fun (op, d) ->
        if not (Hashtbl.mem direct (fld, op_tag op)) then begin
          Hashtbl.replace direct (fld, op_tag op) ();
          derived := Plan.Binop (op, Plan.Field fld, d) :: !derived
        end)
      (Hashtbl.find_all pins (find fld))
  done;
  (* Re-place all conjuncts by the binder's rule: a conjunct joins the
     step of its last slot; slot-free ones gate the query. *)
  let residuals = Array.make n' [] in
  let consts = ref [] in
  List.iter
    (fun p ->
      match Plan.slots_of_pexpr offsets' widths' p with
      | [] -> consts := p :: !consts
      | ss ->
        let step = List.fold_left max 0 ss in
        residuals.(step) <- p :: residuals.(step))
    (cs @ List.rev !derived);
  let joins' =
    Array.init n' (fun i -> { Plan.keys = []; residual = List.rev residuals.(i) })
  in
  let sp' =
    {
      Plan.slots = slots';
      const_preds = List.rev !consts;
      scan_preds = Array.make n' [];
      joins = joins';
      finish = finish';
    }
  in
  B_residual
    { plan = optimize cat (Plan.Select sp'); clock_table = Table.name clock_tb }

(* Aggregated, clock-free selects: carried per-group state. Beyond the
   SPJ shape requirements, group keys and aggregate arguments must be
   pure row expressions, and HAVING and the projections may read only
   computed aggregates, constants and representative cells recoverable
   from a bare-field group key. *)
let classify_agg (cat : Catalog.t) ~(is_log : string -> bool)
    (sp : Plan.select_plan) (names : string array) :
    (string * dep_kind) list * delta_branch =
  let f = sp.Plan.finish in
  if f.Plan.order_by <> [] || f.Plan.limit <> None || f.Plan.projs = [] then
    raise Ineligible;
  (match f.Plan.distinct with Plan.D_on _ -> raise Ineligible | _ -> ());
  let covered =
    List.filter_map
      (function Plan.Field i -> Some i | _ -> None)
      f.Plan.group_by
  in
  let rec check_group p =
    match p with
    | Plan.Const _ | Plan.Agg_ref _ -> ()
    | Plan.Rep_field i -> if not (List.mem i covered) then raise Ineligible
    | Plan.Field _ | Plan.Agg_outside | Plan.Exec _ -> raise Ineligible
    | Plan.Binop (_, a, b) ->
      check_group a;
      check_group b
    | Plan.Unop (_, a) -> check_group a
    | Plan.Fn (_, args) -> List.iter check_group args
    | Plan.Case (branches, default) ->
      List.iter
        (fun (c, v) ->
          check_group c;
          check_group v)
        branches;
      Option.iter check_group default
  in
  List.iter check_group f.Plan.projs;
  Option.iter check_group f.Plan.having;
  let rec check_row p =
    match p with
    | Plan.Field _ | Plan.Const _ -> ()
    | Plan.Rep_field _ | Plan.Agg_ref _ | Plan.Agg_outside | Plan.Exec _ ->
      raise Ineligible
    | Plan.Binop (_, a, b) ->
      check_row a;
      check_row b
    | Plan.Unop (_, a) -> check_row a
    | Plan.Fn (_, args) -> List.iter check_row args
    | Plan.Case (branches, default) ->
      List.iter
        (fun (c, v) ->
          check_row c;
          check_row v)
        branches;
      Option.iter check_row default
  in
  List.iter check_row f.Plan.group_by;
  Array.iter
    (fun (a : Plan.agg_spec) -> Option.iter check_row a.Plan.arg)
    f.Plan.aggs;
  let arg_exprs =
    Array.to_list
      (Array.map
         (fun (a : Plan.agg_spec) ->
           match a.Plan.arg with
           | Some p -> p
           | None -> Plan.Const Value.Null (* COUNT star: row presence *))
         f.Plan.aggs)
  in
  let stream_projs =
    match f.Plan.group_by @ arg_exprs with
    | [] -> [ Plan.Const Value.Null ] (* bare HAVING: row presence only *)
    | ps -> ps
  in
  let vfinish =
    {
      Plan.columns = List.mapi (fun i _ -> Printf.sprintf "d%d" i) stream_projs;
      projs = stream_projs;
      aggregated = false;
      group_by = [];
      aggs = [||];
      having = None;
      order_by = [];
      distinct = Plan.D_all;
      limit = None;
    }
  in
  let log_slots = ref [] in
  Array.iteri (fun i n -> if is_log n then log_slots := i :: !log_slots) names;
  let log_slots = List.rev !log_slots in
  (* Telescoped accesses: each joined tuple with a non-empty set D of
     delta-bound log slots appears in exactly the variant of max(D). *)
  let retag i =
    Array.mapi
      (fun j (sl : Plan.slot) ->
        match sl.Plan.source with
        | Plan.Scan (tname, _) when List.mem j log_slots ->
          let access =
            if j = i then Plan.Delta
            else if j < i then Plan.Heap
            else Plan.Below
          in
          { sl with Plan.source = Plan.Scan (tname, access) }
        | _ -> sl)
      sp.Plan.slots
  in
  let variants =
    List.map
      (fun i ->
        optimize cat
          (Plan.Select { sp with Plan.slots = retag i; Plan.finish = vfinish }))
      log_slots
  in
  let ad_full = optimize cat (Plan.Select { sp with Plan.finish = vfinish }) in
  let ad_width =
    Array.fold_left
      (fun acc (sl : Plan.slot) -> acc + Array.length sl.Plan.cols)
      0 sp.Plan.slots
  in
  let has_frozen =
    Array.exists
      (fun (a : Plan.agg_spec) ->
        match a.Plan.agg with Ast.Min | Ast.Max -> true | _ -> false)
      f.Plan.aggs
  in
  let log_kind = if has_frozen then Dep_log_frozen else Dep_log_exact in
  let deps =
    List.sort_uniq compare
      (Array.to_list
         (Array.map
            (fun n -> (n, if is_log n then log_kind else Dep_plain))
            names))
  in
  ( deps,
    B_agg
      {
        ad_variants = variants;
        ad_full;
        ad_nkeys = List.length f.Plan.group_by;
        ad_specs =
          Array.map
            (fun (a : Plan.agg_spec) -> (a.Plan.agg, a.Plan.distinct_agg))
            f.Plan.aggs;
        ad_width;
        ad_rep_slots =
          List.map (function Plan.Field i -> Some i | _ -> None) f.Plan.group_by;
        ad_finish = f;
      } )

let classify_spj (cat : Catalog.t) ~(is_log : string -> bool)
    (sp : Plan.select_plan) (names : string array) :
    (string * dep_kind) list * delta_branch =
  let f = sp.Plan.finish in
  if
    Array.length f.Plan.aggs > 0
    || f.Plan.order_by <> []
    || f.Plan.limit <> None
    || f.Plan.projs = []
  then raise Ineligible;
  (match f.Plan.distinct with Plan.D_on _ -> raise Ineligible | _ -> ());
  let deps =
    List.sort_uniq compare
      (Array.to_list
         (Array.map (fun n -> (n, if is_log n then Dep_log else Dep_plain)) names))
  in
  let variants = ref [] in
  Array.iteri
    (fun i n ->
      if is_log n then begin
        let slots =
          Array.mapi
            (fun j (sl : Plan.slot) ->
              match sl.Plan.source with
              | Plan.Scan (tname, _) when j = i ->
                { sl with Plan.source = Plan.Scan (tname, Plan.Delta) }
              | _ -> sl)
            sp.Plan.slots
        in
        variants :=
          optimize cat (Plan.Select { sp with Plan.slots = slots }) :: !variants
      end)
    names;
  (deps, B_spj (List.rev !variants))

let classify_select (cat : Catalog.t) ~(is_log : string -> bool)
    ~(clock : string) (sp : Plan.select_plan) :
    (string * dep_kind) list * delta_branch =
  (* Canonical table name per slot. Explicit resolution: a slot naming a
     table that vanished from the catalog between bind and derivation
     surfaces as ineligible, not as an [Option.get] crash; subquery
     slots are ineligible everywhere. *)
  let names =
    Array.map
      (fun (sl : Plan.slot) ->
        match sl.Plan.source with
        | Plan.Scan (name, _) | Plan.Shared { table = name; _ } -> (
          match Catalog.find_opt cat name with
          | Some tb -> Table.name tb
          | None -> raise Ineligible)
        | Plan.Sub _ -> raise Ineligible)
      sp.Plan.slots
  in
  let clock_slots = ref [] in
  Array.iteri
    (fun i n ->
      if String.lowercase_ascii n = clock then clock_slots := i :: !clock_slots)
    names;
  match List.rev !clock_slots with
  | [ ci ] ->
    let clock_tb =
      match Catalog.find_opt cat names.(ci) with
      | Some tb -> tb
      | None -> raise Ineligible
    in
    ([], classify_residual cat sp ~ci ~clock_tb)
  | _ :: _ -> raise Ineligible
  | [] ->
    if sp.Plan.finish.Plan.aggregated then classify_agg cat ~is_log sp names
    else classify_spj cat ~is_log sp names

let kind_rank = function
  | Dep_plain -> 0
  | Dep_log -> 1
  | Dep_log_exact -> 2
  | Dep_log_frozen -> 3

let merge_deps (a : (string * dep_kind) list) (b : (string * dep_kind) list) :
    (string * dep_kind) list =
  List.sort_uniq compare
    (List.fold_left
       (fun acc (n, k) ->
         match List.assoc_opt n acc with
         | None -> (n, k) :: acc
         | Some k0 ->
           if kind_rank k > kind_rank k0 then (n, k) :: List.remove_assoc n acc
           else acc)
       a b)

let derive_delta (cat : Catalog.t) ~(is_log : string -> bool)
    ~(clock_rel : string) (q : Ast.query) : delta_plans option =
  match Plan.of_query cat q with
  | exception Errors.Sql_error _ -> None
  | plan -> (
    let clock = String.lowercase_ascii clock_rel in
    let rec walk = function
      | Plan.Select sp ->
        let deps, branch = classify_select cat ~is_log ~clock sp in
        (deps, [ branch ])
      | Plan.Union { left; right; _ } ->
        let dl, bl = walk left in
        let dr, br = walk right in
        (merge_deps dl dr, bl @ br)
    in
    match walk plan with
    | exception Ineligible -> None
    | deps, branches -> Some { deps; branches })

(* Batch-eligibility analysis ---------------------------------------------- *)

(* Expressions the batch operators evaluate positionally (against slot or
   prefix columns). Group-context nodes ([Rep_field], [Agg_ref]) never
   appear in the clauses the batch pipeline evaluates — WHERE rejects
   aggregates at bind — but a plan that somehow carries one routes to the
   row path rather than miscompiling. [Agg_outside] is batchable: it
   raises lazily on evaluation, identically in both pipelines. *)
let rec batchable_pexpr (p : Plan.pexpr) : bool =
  match p with
  | Plan.Const _ | Plan.Field _ | Plan.Agg_outside -> true
  (* [Exec] keys compile through the row compiler's scalar closure in
     both pipelines, so they batch fine. *)
  | Plan.Exec _ -> true
  | Plan.Rep_field _ | Plan.Agg_ref _ -> false
  | Plan.Binop (_, a, b) -> batchable_pexpr a && batchable_pexpr b
  | Plan.Unop (_, a) -> batchable_pexpr a
  | Plan.Fn (_, args) -> List.for_all batchable_pexpr args
  | Plan.Case (branches, default) ->
    List.for_all
      (fun (c, v) -> batchable_pexpr c && batchable_pexpr v)
      branches
    && (match default with None -> true | Some d -> batchable_pexpr d)

let batch_route ~(lineage : bool) ~(track_src : bool) (q : Plan.query) :
    Plan.route =
  let select_eligible (sp : Plan.select_plan) : bool =
    (* Lineage annotations thread through every operator and merge at
       DISTINCT/aggregation; such runs stay on the row path wholesale.
       Source-tid tracking is carried by per-slot tid columns in the
       batch pipeline, but only for flat selects: an aggregated select
       merges src lists per group, which the row path owns. *)
    (not lineage)
    && not (track_src && sp.Plan.finish.Plan.aggregated)
    && List.for_all batchable_pexpr sp.Plan.const_preds
    && Array.for_all (List.for_all batchable_pexpr) sp.Plan.scan_preds
    && Array.for_all
         (fun (j : Plan.jstep) ->
           List.for_all
             (fun (p, b) -> batchable_pexpr p && batchable_pexpr b)
             j.Plan.keys
           && List.for_all batchable_pexpr j.Plan.residual)
         sp.Plan.joins
    && Array.for_all
         (fun (slot : Plan.slot) ->
           match slot.Plan.source with
           | Plan.Shared { preds; _ } -> List.for_all batchable_pexpr preds
           | Plan.Scan _ | Plan.Sub _ -> true)
         sp.Plan.slots
    && (not sp.Plan.finish.Plan.aggregated
       || List.for_all batchable_pexpr sp.Plan.finish.Plan.group_by
          && Array.for_all
               (fun (a : Plan.agg_spec) ->
                 match a.Plan.arg with
                 | None -> true
                 | Some p -> batchable_pexpr p)
               sp.Plan.finish.Plan.aggs)
  in
  let rec route = function
    | Plan.Select sp ->
      if select_eligible sp then Plan.Route_batch else Plan.Route_row
    | Plan.Union { left; right; _ } ->
      Plan.Route_union { left = route left; right = route right }
  in
  route q

(* Kernel-shape analysis ---------------------------------------------------- *)

(* Shape classification for the typed batch kernels ({!Compile_batch}).
   Routing above is static per query; which kernel actually runs is
   decided per execution from the column layouts the batch binds against
   (a typed column can demote to Mixed between executions of a prepared
   plan, so the batch compiler re-inspects views every time and the
   Mixed/opaque shapes fall back to the boxed Value kernels). These
   helpers pull the field/constant skeleton out of a predicate or join
   key once, at compile time, so that per-execution dispatch is a view
   inspection rather than an expression walk. *)

type cmp_shape =
  | Cmp_field_const of Ast.binop * int * Value.t
      (** [field OP literal], constant side normalized to the right *)
  | Cmp_field_field of Ast.binop * int * int  (** [field OP field] *)
  | Cmp_opaque  (** anything else: evaluate through the scalar closure *)

(* Mirror a comparison around the constant: [c OP f] is [f (flip OP) c]. *)
let flip_cmp = function
  | Ast.Lt -> Ast.Gt
  | Ast.Gt -> Ast.Lt
  | Ast.Le -> Ast.Ge
  | Ast.Ge -> Ast.Le
  | op -> op

let cmp_shape (p : Plan.pexpr) : cmp_shape =
  match p with
  | Plan.Binop
      ( ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op),
        Plan.Field i,
        Plan.Const v ) ->
    Cmp_field_const (op, i, v)
  | Plan.Binop
      ( ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op),
        Plan.Const v,
        Plan.Field i ) ->
    Cmp_field_const (flip_cmp op, i, v)
  | Plan.Binop
      ( ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op),
        Plan.Field i,
        Plan.Field j ) ->
    Cmp_field_field (op, i, j)
  | _ -> Cmp_opaque

(* A join/group key that is a bare column reference, eligible for the
   unboxed int/dictionary-code hash kernels. *)
let key_field (p : Plan.pexpr) : int option =
  match p with Plan.Field i -> Some i | _ -> None
