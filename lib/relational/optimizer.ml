(** Plan rewrites.

    The binder emits a naive plan: every WHERE conjunct sits at the join
    step where its slots are first all available, scans read full rows,
    joins are nested loops. This module rewrites that plan:

    - {b constant folding} — subtrees whose children are all literal fold
      to their value; a subtree that would raise (e.g. [1/0]) is left
      unfolded so the error still surfaces per evaluated row;
    - {b predicate pushdown} — single-slot conjuncts move into the slot's
      scan, rebased to the slot-local layout;
    - {b equi-join-key extraction} — conjuncts of shape
      [prefix_expr = slot_expr] at a join step become hash keys;
    - {b projection pruning} — multi-slot selects narrow each slot to the
      columns the rest of the plan references, remapping every
      final-layout field.

    Rewrites are semantics-preserving by construction; the differential
    test in [test/test_plan_diff.ml] checks optimized output (rows,
    lineage, source tids) against the un-optimized binder output. *)

let is_const = function Plan.Const _ -> true | _ -> false

(* Fold bottom-up. A node folds only when all direct children are already
   constants (sound because children fold first); evaluation happens via
   the compiled closure on empty environments, and any SQL error means
   the node keeps its symbolic form. *)
let rec fold (p : Plan.pexpr) : Plan.pexpr =
  match p with
  | Plan.Const _ | Plan.Field _ | Plan.Rep_field _ | Plan.Agg_ref _
  | Plan.Agg_outside ->
    p
  | Plan.Binop (op, a, b) ->
    let a = fold a and b = fold b in
    let p' = Plan.Binop (op, a, b) in
    if is_const a && is_const b then try_const p' else p'
  | Plan.Unop (op, a) ->
    let a = fold a in
    let p' = Plan.Unop (op, a) in
    if is_const a then try_const p' else p'
  | Plan.Fn (name, args) ->
    let args = List.map fold args in
    let p' = Plan.Fn (name, args) in
    if List.for_all is_const args then try_const p' else p'
  | Plan.Case (branches, default) ->
    let branches = List.map (fun (c, v) -> (fold c, fold v)) branches in
    let default = Option.map fold default in
    let p' = Plan.Case (branches, default) in
    if
      List.for_all (fun (c, v) -> is_const c && is_const v) branches
      && (match default with None -> true | Some d -> is_const d)
    then try_const p'
    else p'

and try_const (p : Plan.pexpr) : Plan.pexpr =
  try Plan.Const (Compile.compile_expr p [||] [||])
  with Errors.Sql_error _ -> p

(* Shift final-layout fields to a slot-local layout (for predicates that
   move inside a single slot's scan, or to the build side of a join). *)
let rec rebase (off : int) (p : Plan.pexpr) : Plan.pexpr =
  match p with
  | Plan.Const _ | Plan.Agg_ref _ | Plan.Agg_outside -> p
  | Plan.Field i -> Plan.Field (i - off)
  | Plan.Rep_field i -> Plan.Rep_field (i - off)
  | Plan.Binop (op, a, b) -> Plan.Binop (op, rebase off a, rebase off b)
  | Plan.Unop (op, a) -> Plan.Unop (op, rebase off a)
  | Plan.Fn (name, args) -> Plan.Fn (name, List.map (rebase off) args)
  | Plan.Case (branches, default) ->
    Plan.Case
      ( List.map (fun (c, v) -> (rebase off c, rebase off v)) branches,
        Option.map (rebase off) default )

(* Renumber final-layout fields through a pruning map. *)
let rec remap (tbl : int array) (p : Plan.pexpr) : Plan.pexpr =
  match p with
  | Plan.Const _ | Plan.Agg_ref _ | Plan.Agg_outside -> p
  | Plan.Field i -> Plan.Field tbl.(i)
  | Plan.Rep_field i -> Plan.Rep_field tbl.(i)
  | Plan.Binop (op, a, b) -> Plan.Binop (op, remap tbl a, remap tbl b)
  | Plan.Unop (op, a) -> Plan.Unop (op, remap tbl a)
  | Plan.Fn (name, args) -> Plan.Fn (name, List.map (remap tbl) args)
  | Plan.Case (branches, default) ->
    Plan.Case
      ( List.map (fun (c, v) -> (remap tbl c, remap tbl v)) branches,
        Option.map (remap tbl) default )

let mark_fields (used : bool array) (p : Plan.pexpr) : unit =
  let rec walk = function
    | Plan.Const _ | Plan.Agg_ref _ | Plan.Agg_outside -> ()
    | Plan.Field i | Plan.Rep_field i -> used.(i) <- true
    | Plan.Binop (_, a, b) ->
      walk a;
      walk b
    | Plan.Unop (_, a) -> walk a
    | Plan.Fn (_, args) -> List.iter walk args
    | Plan.Case (branches, default) ->
      List.iter
        (fun (c, v) ->
          walk c;
          walk v)
        branches;
      Option.iter walk default
  in
  walk p

let fold_finish (f : Plan.finish) : Plan.finish =
  {
    f with
    projs = List.map fold f.Plan.projs;
    group_by = List.map fold f.Plan.group_by;
    aggs =
      Array.map
        (fun (a : Plan.agg_spec) -> { a with Plan.arg = Option.map fold a.Plan.arg })
        f.Plan.aggs;
    having = Option.map fold f.Plan.having;
    order_by =
      List.map
        (fun (k, dir) ->
          ( (match k with
            | Plan.By_expr p -> Plan.By_expr (fold p)
            | (Plan.By_output _ | Plan.By_null) as k -> k),
            dir ))
        f.Plan.order_by;
    distinct =
      (match f.Plan.distinct with
      | Plan.D_on keys -> Plan.D_on (List.map fold keys)
      | d -> d);
  }

let map_finish fn (f : Plan.finish) : Plan.finish =
  {
    f with
    projs = List.map fn f.Plan.projs;
    group_by = List.map fn f.Plan.group_by;
    aggs =
      Array.map
        (fun (a : Plan.agg_spec) -> { a with Plan.arg = Option.map fn a.Plan.arg })
        f.Plan.aggs;
    having = Option.map fn f.Plan.having;
    order_by =
      List.map
        (fun (k, dir) ->
          ( (match k with
            | Plan.By_expr p -> Plan.By_expr (fn p)
            | (Plan.By_output _ | Plan.By_null) as k -> k),
            dir ))
        f.Plan.order_by;
    distinct =
      (match f.Plan.distinct with
      | Plan.D_on keys -> Plan.D_on (List.map fn keys)
      | d -> d);
  }

let iter_finish fn (f : Plan.finish) : unit =
  List.iter fn f.Plan.projs;
  List.iter fn f.Plan.group_by;
  Array.iter
    (fun (a : Plan.agg_spec) -> Option.iter fn a.Plan.arg)
    f.Plan.aggs;
  Option.iter fn f.Plan.having;
  List.iter
    (fun (k, _) -> match k with Plan.By_expr p -> fn p | _ -> ())
    f.Plan.order_by;
  match f.Plan.distinct with
  | Plan.D_on keys -> List.iter fn keys
  | _ -> ()

(* Access-path selection helper: given a scan's pushed-down conjuncts
   (slot-local, i.e. [Field i] is table column [i]), pick an index probe
   and return it with the conjuncts left over as ordinary filters.

   The first [col = const] conjunct over an indexed column wins (hash
   preferred, sorted serves equality too); failing that, every range
   conjunct ([</<=/>/>=] against a constant) over the first sorted-indexed
   column is folded into one [Index_range] whose bounds are the tightest
   combination. NULL constants are ineligible: the comparison is false
   for every row, and leaving the conjunct as a filter preserves that. *)
let select_access (table : Table.t) (preds : Plan.pexpr list) :
    (Plan.access * Plan.pexpr list) option =
  let index_for col ~range =
    let candidates = Table.index_on table ~column:col in
    if range then List.find_opt (fun ix -> Index.kind ix = Index.Sorted) candidates
    else
      match List.find_opt (fun ix -> Index.kind ix = Index.Hash) candidates with
      | Some ix -> Some ix
      | None -> List.nth_opt candidates 0
  in
  let eq_probe = function
    | Plan.Binop (Ast.Eq, Plan.Field i, (Plan.Const v as k))
    | Plan.Binop (Ast.Eq, (Plan.Const v as k), Plan.Field i)
      when not (Value.is_null v) -> (
      match index_for i ~range:false with
      | Some ix -> Some (Plan.Index_eq { index = Index.name ix; key = k })
      | None -> None)
    | _ -> None
  in
  let rec split_eq before = function
    | [] -> None
    | p :: rest -> (
      match eq_probe p with
      | Some access -> Some (access, List.rev_append before rest)
      | None -> split_eq (p :: before) rest)
  in
  match split_eq [] preds with
  | Some r -> Some r
  | None ->
    let bound_of = function
      | Plan.Binop (op, Plan.Field i, Plan.Const v) when not (Value.is_null v) -> (
        match op with
        | Ast.Lt -> Some (i, `Hi (v, false))
        | Ast.Le -> Some (i, `Hi (v, true))
        | Ast.Gt -> Some (i, `Lo (v, false))
        | Ast.Ge -> Some (i, `Lo (v, true))
        | _ -> None)
      | Plan.Binop (op, Plan.Const v, Plan.Field i) when not (Value.is_null v) -> (
        match op with
        | Ast.Lt -> Some (i, `Lo (v, false))
        | Ast.Le -> Some (i, `Lo (v, true))
        | Ast.Gt -> Some (i, `Hi (v, false))
        | Ast.Ge -> Some (i, `Hi (v, true))
        | _ -> None)
      | _ -> None
    in
    let target =
      List.find_map
        (fun p ->
          match bound_of p with
          | Some (i, _) when index_for i ~range:true <> None -> Some i
          | _ -> None)
        preds
    in
    (match target with
    | None -> None
    | Some col ->
      let ix = Option.get (index_for col ~range:true) in
      let lo = ref None and hi = ref None in
      (* Tightest bound wins; on equal values an exclusive bound is
         tighter than an inclusive one. *)
      let tighter_lo (v, incl) =
        match !lo with
        | None -> lo := Some (v, incl)
        | Some (v0, i0) ->
          let c = Value.compare v v0 in
          if c > 0 || (c = 0 && i0 && not incl) then lo := Some (v, incl)
      in
      let tighter_hi (v, incl) =
        match !hi with
        | None -> hi := Some (v, incl)
        | Some (v0, i0) ->
          let c = Value.compare v v0 in
          if c < 0 || (c = 0 && i0 && not incl) then hi := Some (v, incl)
      in
      let remaining =
        List.filter
          (fun p ->
            match bound_of p with
            | Some (i, b) when i = col ->
              (match b with `Lo b -> tighter_lo b | `Hi b -> tighter_hi b);
              false
            | _ -> true)
          preds
      in
      let wrap = Option.map (fun (v, incl) -> (Plan.Const v, incl)) in
      Some
        ( Plan.Index_range { index = Index.name ix; lo = wrap !lo; hi = wrap !hi },
          remaining ))

type delta_plans = {
  deps : (string * bool) list;
  variants : Plan.query list;
}

(* Shared-scan factoring ----------------------------------------------------- *)

(* Structural identity of a scan-plus-filter prefix. Two slots — in the
   same plan or across the plans of different policies — that read the
   same table by the same access path under the same pushed-down
   conjuncts get the same tag, which is exactly the collision that lets
   one materialization serve all of them. The materialization is
   full-width (projection pruning applies at join time), so [keep] does
   not participate. *)
let share_tag (table : string) (access : Plan.access) (preds : Plan.pexpr list)
    : string =
  Digest.to_hex (Digest.string (Marshal.to_string (table, access, preds) []))

(* Turn every base-table scan slot into a {!Plan.Shared} materialization
   point, absorbing the slot's pushed-down conjuncts into the node.
   Delta scans are excluded: they read the watermark at execution time
   and are already tiny. Subquery slots keep their own plans untouched —
   their scans stay private (their layouts are plan-specific anyway).
   Run after {!optimize}, which is what fills [scan_preds] and picks the
   access path being tagged. *)
let share_scans (q : Plan.query) : Plan.query =
  let share_select (sp : Plan.select_plan) : Plan.select_plan =
    let scan_preds = Array.copy sp.Plan.scan_preds in
    let slots =
      Array.mapi
        (fun si (sl : Plan.slot) ->
          match sl.Plan.source with
          | Plan.Scan (_, Plan.Delta) | Plan.Sub _ -> sl
          | Plan.Scan (table, access) ->
            let preds = scan_preds.(si) in
            scan_preds.(si) <- [];
            {
              sl with
              Plan.source =
                Plan.Shared { tag = share_tag table access preds; table; access; preds };
            }
          | Plan.Shared _ -> sl)
        sp.Plan.slots
    in
    { sp with Plan.slots; scan_preds }
  in
  let rec walk = function
    | Plan.Select sp -> Plan.Select (share_select sp)
    | Plan.Union { all; left; right } ->
      Plan.Union { all; left = walk left; right = walk right }
  in
  walk q

let rec optimize (cat : Catalog.t) (q : Plan.query) : Plan.query =
  match q with
  | Plan.Union { all; left; right } ->
    Plan.Union { all; left = optimize cat left; right = optimize cat right }
  | Plan.Select sp -> Plan.Select (optimize_select cat sp)

and optimize_select (cat : Catalog.t) (sp : Plan.select_plan) : Plan.select_plan =
  let slots =
    Array.map
      (fun (sl : Plan.slot) ->
        match sl.Plan.source with
        | Plan.Scan _ | Plan.Shared _ -> sl
        | Plan.Sub q -> { sl with Plan.source = Plan.Sub (optimize cat q) })
      sp.Plan.slots
  in
  let nslots = Array.length slots in
  let offsets = Plan.full_offsets slots in
  let widths = Array.map (fun (sl : Plan.slot) -> Array.length sl.Plan.cols) slots in
  let total = Array.fold_left ( + ) 0 widths in
  (* Fold every expression first: folding can simplify conjuncts before
     placement decisions. *)
  let const_preds = List.map fold sp.Plan.const_preds in
  let joins =
    Array.map
      (fun (j : Plan.jstep) ->
        { j with Plan.residual = List.map fold j.Plan.residual })
      sp.Plan.joins
  in
  let finish = fold_finish sp.Plan.finish in
  (* Pushdown + equi-key extraction per join step. Single-slot conjuncts
     always reference the step's own slot (naive placement put them at
     the step where their last slot appears), so they push into its scan.
     Of the rest, [prefix = this-slot] equalities become hash keys. *)
  let scan_preds = Array.make (max nslots 1) [] in
  let joins =
    Array.mapi
      (fun si (j : Plan.jstep) ->
        let keys, residual =
          List.fold_left
            (fun (keys, residual) p ->
              match Plan.slots_of_pexpr offsets widths p with
              | [ s ] when s = si ->
                scan_preds.(si) <-
                  scan_preds.(si) @ [ rebase offsets.(si) p ];
                (keys, residual)
              | _ -> (
                match p with
                | Plan.Binop (Ast.Eq, a, b) -> (
                  let sa = Plan.slots_of_pexpr offsets widths a in
                  let sb = Plan.slots_of_pexpr offsets widths b in
                  let in_prefix ss =
                    ss <> [] && List.for_all (fun s -> s < si) ss
                  in
                  let on_slot ss = ss = [ si ] in
                  if si > 0 && in_prefix sa && on_slot sb then
                    ((a, rebase offsets.(si) b) :: keys, residual)
                  else if si > 0 && in_prefix sb && on_slot sa then
                    ((b, rebase offsets.(si) a) :: keys, residual)
                  else (keys, p :: residual))
                | _ -> (keys, p :: residual)))
            ([], []) j.Plan.residual
        in
        { Plan.keys = List.rev keys; residual = List.rev residual })
      joins
  in
  let scan_preds =
    if nslots = 0 then sp.Plan.scan_preds else Array.sub scan_preds 0 nslots
  in
  (* Access-path selection: pushed-down conjuncts hitting an indexed
     column turn the heap scan into an index probe; the consumed conjuncts
     disappear from [scan_preds], the rest stay as filters over the
     probe's result. *)
  let slots =
    Array.mapi
      (fun si (sl : Plan.slot) ->
        match sl.Plan.source with
        | Plan.Scan (tname, Plan.Heap) when scan_preds.(si) <> [] -> (
          match Catalog.find_opt cat tname with
          | None -> sl
          | Some table -> (
            match select_access table scan_preds.(si) with
            | None -> sl
            | Some (access, remaining) ->
              scan_preds.(si) <- remaining;
              { sl with Plan.source = Plan.Scan (tname, access) }))
        | _ -> sl)
      slots
  in
  (* Projection pruning: only worthwhile across joins — single-slot scans
     share their cell arrays with the table, and projecting would copy
     every row for no width saving downstream. *)
  if nslots < 2 then
    { Plan.slots; const_preds; scan_preds; joins; finish }
  else begin
    let used = Array.make total false in
    Array.iter
      (fun (j : Plan.jstep) ->
        List.iter (fun (probe, _) -> mark_fields used probe) j.Plan.keys;
        List.iter (mark_fields used) j.Plan.residual)
      joins;
    iter_finish (mark_fields used) finish;
    let keep =
      Array.mapi
        (fun si w ->
          let kept = ref [] in
          for i = w - 1 downto 0 do
            if used.(offsets.(si) + i) then kept := i :: !kept
          done;
          Array.of_list !kept)
        widths
    in
    let slots =
      Array.map2 (fun (sl : Plan.slot) k -> { sl with Plan.keep = k }) slots keep
    in
    (* Old absolute index -> index in the pruned layout. *)
    let tbl = Array.make total (-1) in
    let pruned = Plan.pruned_offsets slots in
    Array.iteri
      (fun si k ->
        Array.iteri (fun j local -> tbl.(offsets.(si) + local) <- pruned.(si) + j) k)
      keep;
    let joins =
      Array.map
        (fun (j : Plan.jstep) ->
          {
            Plan.keys =
              List.map (fun (probe, build) -> (remap tbl probe, build)) j.Plan.keys;
            residual = List.map (remap tbl) j.Plan.residual;
          })
        joins
    in
    let finish = map_finish (remap tbl) finish in
    { Plan.slots; const_preds; scan_preds; joins; finish }
  end

(* Delta derivation --------------------------------------------------------- *)

(* A query is delta-eligible when it is a single select-project-join over
   base-table scans, with no aggregation, ordering, limit or DISTINCT ON,
   and no scan of the clock relation (whose single row is rewritten in
   place each submission, outside the append-only delta discipline). For
   such a query Q and disjoint states S (proved empty) and Δ (appended
   rows), monotonicity gives

     Q(S ∪ Δ) = ⋃ over log slots i of Q with slot i restricted to Δ

   — any result row must bind at least one slot to a Δ tuple, and the
   per-slot variants cover every such binding, so the union equals the
   full result as a set. Projections need not be literal: a unified
   policy projects its members' messages from the constants table, and
   those surface unchanged in whichever variant binds the row. (Only
   multiplicities can differ between the union and the full result,
   which is why DISTINCT ON — whose representative choice is
   order-sensitive — is excluded; the engine reads results as sets.)
   Each variant is optimized independently, so its non-delta slots still
   get index probes. *)
let derive_delta (cat : Catalog.t) ~(is_log : string -> bool)
    ~(clock_rel : string) (q : Ast.query) : delta_plans option =
  match Plan.of_query cat q with
  | exception Errors.Sql_error _ -> None
  | Plan.Union _ -> None
  | Plan.Select sp ->
    let f = sp.Plan.finish in
    let clock = String.lowercase_ascii clock_rel in
    (* Canonical table name per slot; None for subquery slots. *)
    let scans =
      Array.map
        (fun (sl : Plan.slot) ->
          match sl.Plan.source with
          | Plan.Scan (name, _) | Plan.Shared { table = name; _ } ->
            Option.map Table.name (Catalog.find_opt cat name)
          | Plan.Sub _ -> None)
        sp.Plan.slots
    in
    let eligible =
      Array.for_all
        (function
          | Some n -> String.lowercase_ascii n <> clock
          | None -> false)
        scans
      && (not f.Plan.aggregated)
      && Array.length f.Plan.aggs = 0
      && f.Plan.order_by = []
      && f.Plan.limit = None
      && f.Plan.projs <> []
      && (match f.Plan.distinct with Plan.D_on _ -> false | _ -> true)
    in
    if not eligible then None
    else begin
      let names = Array.map Option.get scans in
      let deps =
        List.sort_uniq compare
          (Array.to_list (Array.map (fun n -> (n, is_log n)) names))
      in
      let variants = ref [] in
      Array.iteri
        (fun i n ->
          if is_log n then begin
            let slots =
              Array.mapi
                (fun j (sl : Plan.slot) ->
                  match sl.Plan.source with
                  | Plan.Scan (tname, _) when j = i ->
                    { sl with Plan.source = Plan.Scan (tname, Plan.Delta) }
                  | _ -> sl)
                sp.Plan.slots
            in
            variants :=
              optimize cat (Plan.Select { sp with Plan.slots = slots })
              :: !variants
          end)
        names;
      Some { deps; variants = List.rev !variants }
    end

(* Batch-eligibility analysis ---------------------------------------------- *)

(* Expressions the batch operators evaluate positionally (against slot or
   prefix columns). Group-context nodes ([Rep_field], [Agg_ref]) never
   appear in the clauses the batch pipeline evaluates — WHERE rejects
   aggregates at bind — but a plan that somehow carries one routes to the
   row path rather than miscompiling. [Agg_outside] is batchable: it
   raises lazily on evaluation, identically in both pipelines. *)
let rec batchable_pexpr (p : Plan.pexpr) : bool =
  match p with
  | Plan.Const _ | Plan.Field _ | Plan.Agg_outside -> true
  | Plan.Rep_field _ | Plan.Agg_ref _ -> false
  | Plan.Binop (_, a, b) -> batchable_pexpr a && batchable_pexpr b
  | Plan.Unop (_, a) -> batchable_pexpr a
  | Plan.Fn (_, args) -> List.for_all batchable_pexpr args
  | Plan.Case (branches, default) ->
    List.for_all
      (fun (c, v) -> batchable_pexpr c && batchable_pexpr v)
      branches
    && (match default with None -> true | Some d -> batchable_pexpr d)

let batch_route ~(lineage : bool) ~(track_src : bool) (q : Plan.query) :
    Plan.route =
  let select_eligible (sp : Plan.select_plan) : bool =
    (* Lineage annotations thread through every operator and merge at
       DISTINCT/aggregation; such runs stay on the row path wholesale.
       Source-tid tracking is carried by per-slot tid columns in the
       batch pipeline, but only for flat selects: an aggregated select
       merges src lists per group, which the row path owns. *)
    (not lineage)
    && not (track_src && sp.Plan.finish.Plan.aggregated)
    && List.for_all batchable_pexpr sp.Plan.const_preds
    && Array.for_all (List.for_all batchable_pexpr) sp.Plan.scan_preds
    && Array.for_all
         (fun (j : Plan.jstep) ->
           List.for_all
             (fun (p, b) -> batchable_pexpr p && batchable_pexpr b)
             j.Plan.keys
           && List.for_all batchable_pexpr j.Plan.residual)
         sp.Plan.joins
    && Array.for_all
         (fun (slot : Plan.slot) ->
           match slot.Plan.source with
           | Plan.Shared { preds; _ } -> List.for_all batchable_pexpr preds
           | Plan.Scan _ | Plan.Sub _ -> true)
         sp.Plan.slots
    && (not sp.Plan.finish.Plan.aggregated
       || List.for_all batchable_pexpr sp.Plan.finish.Plan.group_by
          && Array.for_all
               (fun (a : Plan.agg_spec) ->
                 match a.Plan.arg with
                 | None -> true
                 | Some p -> batchable_pexpr p)
               sp.Plan.finish.Plan.aggs)
  in
  let rec route = function
    | Plan.Select sp ->
      if select_eligible sp then Plan.Route_batch else Plan.Route_row
    | Plan.Union { left; right; _ } ->
      Plan.Route_union { left = route left; right = route right }
  in
  route q
