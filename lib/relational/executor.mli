(** Query execution: thin driver over the plan pipeline
    (bind → optimize → compile → execute).

    Two orthogonal annotations can be threaded through execution:

    - {b lineage}: each output row carries the set of (relation, tid)
      input tuples that contributed to it. Aggregation, DISTINCT and
      UNION merge the lineages of the rows they combine. Implements the
      paper's [f_Provenance] log-generating function.
    - {b source tids}: each output row carries, for every top-level FROM
      item of the outermost SELECT, the tid of the row it derives from.
      Log compaction executes witness queries in this mode to mark
      retained log tuples in place. *)

type opts = Compile.opts = { lineage : bool; track_src : bool }

val default_opts : opts

type row_out = {
  values : Value.t array;
  lineage : (string * int) list;  (** empty unless [opts.lineage] *)
  src_tids : (int * int) list;
      (** (FROM-slot index, tid) pairs; empty unless [opts.track_src] *)
}

type result = { columns : string list; out_rows : row_out list }

(** A compiled plan: all name resolution, conjunct decomposition, join
    planning and closure compilation already done. Valid until the
    catalog's shape changes (see {!Catalog.generation}). *)
type compiled = Compile.t

(** Bind, optimize and compile a query. With [shared], base-table scans
    (plus their pushed-down filters) become {!Plan.Shared}
    materialization points served through the given cache, so identical
    scan prefixes across the prepared plans of different queries
    materialize once per table version (see {!Optimizer.share_scans};
    provenance-annotated runs bypass the cache). With
    [vectorized:true], batch-eligible subtrees compile through
    {!Compile_batch} (bit-identical results; [shared_batch] then serves
    shared scans on the batch path).
    @raise Errors.Sql_error on binding failures. *)
val prepare :
  ?opts:opts ->
  ?vectorized:bool ->
  ?shared:Compile.arow list Shared_cache.t ->
  ?shared_batch:Compile_batch.batch Shared_cache.t ->
  Catalog.t ->
  Ast.query ->
  compiled

(** Like {!prepare} but skipping the optimizer: the naive reference path
    used by differential tests. *)
val prepare_unoptimized : ?opts:opts -> Catalog.t -> Ast.query -> compiled

(** Compiled form of an aggregate delta branch
    ({!Optimizer.agg_delta}): the telescoped stream variants, the
    full-state rebuild stream, the stream-row layout ([c_nkeys] group
    keys then one column per [c_specs] entry), and the policy's own
    HAVING/projections compiled over (representative row of width
    [c_width], computed aggregate values). *)
type agg_compiled = {
  c_variants : compiled list;
  c_full : compiled;
  c_nkeys : int;
  c_specs : (Ast.agg * bool) array;
  c_width : int;
  c_rep_slots : int option list;
  c_having : Compile.cexpr option;
  c_projs : Compile.cexpr list;
  c_columns : string list;
}

(** Compiled per-select delta strategy (see {!Optimizer.delta_branch}).
    [C_residual] is sound only while the named clock table holds exactly
    one row; the engine checks per evaluation. *)
type compiled_branch =
  | C_spj of compiled list
  | C_residual of { c_plan : compiled; c_clock : string }
  | C_agg of agg_compiled

(** Compiled delta evaluation of a delta-eligible query (see
    {!Optimizer.derive_delta}): [delta_deps] are the base tables — each
    with the version counters to snapshot ({!Optimizer.dep_kind}) —
    that validate the engine's emptiness proof and carried state, and
    [delta_branches] the compiled strategy per select. *)
type delta_compiled = {
  delta_deps : (string * Optimizer.dep_kind) list;
  delta_branches : compiled_branch list;
}

(** Derive and compile the delta variants of a query; [None] if the
    query is not delta-eligible. *)
val prepare_delta :
  ?opts:opts ->
  ?vectorized:bool ->
  Catalog.t ->
  is_log:(string -> bool) ->
  clock_rel:string ->
  Ast.query ->
  delta_compiled option

(** Execute a compiled plan.
    @raise Errors.Sql_error on runtime failures. *)
val run_compiled : compiled -> result

(** Execute a query against the catalog ([prepare] + [run_compiled]).
    @raise Errors.Sql_error on binding or runtime failures. *)
val run : ?opts:opts -> Catalog.t -> Ast.query -> result

(** Execute through the un-optimized reference path. *)
val run_unoptimized : ?opts:opts -> Catalog.t -> Ast.query -> result

(** Parse and execute. *)
val run_sql : ?opts:opts -> Catalog.t -> string -> result

(** Does the query return no rows? (Policies are satisfied iff so.) *)
val is_empty : ?opts:opts -> Catalog.t -> Ast.query -> bool

(** Cumulative count of rows examined by join operators, for tests and
    benchmarks. *)
val rows_examined : int Atomic.t

(** Cumulative count of index probes executed by compiled access paths. *)
val index_probes : int Atomic.t
