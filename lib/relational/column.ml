(** Typed columnar table storage for the vectorized executor.

    A column store is an opt-in decomposed mirror of a table's heap, in
    heap (= tid) order, but unlike the heap it does not box cells: each
    schema column picks a physical layout from its declared type —

    - INT   → unboxed [int array] plus a null bitmap ({!Bitvec}),
    - FLOAT → unboxed [float array] plus a null bitmap,
    - BOOL  → [int array] with 0 / 1 / 2 (2 encodes NULL in-band),
    - TEXT  → dictionary codes in an [int array] (-1 encodes NULL); the
      per-column dictionary interns each distinct string once,
      append-only, so equality on codes is equality on strings,
    - {e Mixed} → boxed [Value.t array], the fallback when a column turns
      out heterogeneous at runtime (the one legal source is an INT value
      stored into a FLOAT column, which must round-trip as [Value.Int]).

    {!Table} keeps the store synchronized across every mutation path
    exactly as it keeps secondary indexes — appends append, savepoint
    rollback truncates, and the destructive paths (deletion, update,
    clear) rebuild — so batch scans can hand the backing arrays to
    compiled operators without copying or boxing.

    Dictionaries are append-only between rebuilds: a savepoint rollback
    truncates the code vector but keeps interned strings (their codes
    stay valid; at worst the dictionary briefly holds strings no live row
    references). The destructive paths recreate each column from its
    declared type — fresh dictionaries, so codes are dense again after a
    compaction, and a demoted Mixed column gets a chance to re-promote.

    The store also answers the delta-watermark question
    ({!Table.fold_delta}'s binary lower bound) positionally: since rows
    are tid-sorted, the suffix at or above a watermark tid is a
    contiguous index range — which is what makes an incremental re-check
    a column slice instead of a row walk. *)

(* Test/bench hook: when set, [create] lays out every column as Mixed —
   the boxed representation the typed layouts replaced — so the benches
   can measure typed vs boxed on otherwise identical kernels. *)
let force_mixed = ref false

(* Per-column string dictionary: [strings] maps code -> string (codes are
   dense, assigned in first-appearance order), [codes] the inverse. *)
type dict = { strings : string Vec.t; codes : (string, int) Hashtbl.t }

let new_dict () = { strings = Vec.create ~dummy:"" (); codes = Hashtbl.create 64 }

let dict_size d = Vec.length d.strings

let dict_find d s = Hashtbl.find_opt d.codes s

let dict_string d c = Vec.get d.strings c

let intern d s =
  match Hashtbl.find_opt d.codes s with
  | Some c -> c
  | None ->
    let c = Vec.length d.strings in
    Vec.push d.strings s;
    Hashtbl.add d.codes s c;
    c

type data =
  | D_int of int Vec.t
  | D_float of float Vec.t
  | D_bool of int Vec.t  (* 0 = false, 1 = true, 2 = NULL *)
  | D_str of int Vec.t * dict  (* dictionary codes, -1 = NULL *)
  | D_mixed of Value.t Vec.t

(* [nulls] is maintained for every layout (one bit per row); the in-band
   encodings (BOOL's 2, TEXT's -1) don't read it, but keeping it uniform
   makes truncate/demote layout-independent and gives the INT/FLOAT
   kernels their O(1) "any NULLs?" test. *)
type col = { mutable data : data; nulls : Bitvec.t }

type t = { schema : Schema.t; mutable cols : col array; tids : int Vec.t }

let fresh_col (ty : Ty.t) : col =
  let data =
    if !force_mixed then D_mixed (Vec.create ~dummy:Value.Null ())
    else
      match ty with
      | Ty.Int -> D_int (Vec.create ~dummy:0 ())
      | Ty.Float -> D_float (Vec.create ~dummy:0.0 ())
      | Ty.Bool -> D_bool (Vec.create ~dummy:2 ())
      | Ty.Text -> D_str (Vec.create ~dummy:(-1) (), new_dict ())
  in
  { data; nulls = Bitvec.create () }

let create ~(schema : Schema.t) =
  {
    schema;
    cols = Array.map (fun (c : Schema.column) -> fresh_col c.Schema.ty) schema;
    tids = Vec.create ~dummy:(-1) ();
  }

let width t = Array.length t.cols

let length t = Vec.length t.tids

(* Boxed read-back of one cell, used by demotion (and nowhere hot). *)
let cell_value (c : col) i : Value.t =
  match c.data with
  | D_int v -> if Bitvec.get c.nulls i then Value.Null else Value.Int (Vec.get v i)
  | D_float v ->
    if Bitvec.get c.nulls i then Value.Null else Value.Float (Vec.get v i)
  | D_bool v -> (
    match Vec.get v i with 0 -> Value.Bool false | 1 -> Value.Bool true | _ -> Value.Null)
  | D_str (v, d) ->
    let code = Vec.get v i in
    if code < 0 then Value.Null else Value.Str (dict_string d code)
  | D_mixed v -> Vec.get v i

let data_length = function
  | D_int v -> Vec.length v
  | D_float v -> Vec.length v
  | D_bool v -> Vec.length v
  | D_str (v, _) -> Vec.length v
  | D_mixed v -> Vec.length v

(* A value arrived that the typed layout cannot hold exactly (an INT into
   a FLOAT column: [Value.Int 2] must not come back as [Float 2.]). Box
   the column wholesale; [rebuild] re-promotes it later if it can. *)
let demote (c : col) =
  let n = data_length c.data in
  let mv = Vec.create ~dummy:Value.Null () in
  for i = 0 to n - 1 do
    Vec.push mv (cell_value c i)
  done;
  c.data <- D_mixed mv

let append_cell (c : col) (v : Value.t) =
  Bitvec.push c.nulls (Value.is_null v);
  match c.data, v with
  | D_int iv, Value.Int x -> Vec.push iv x
  | D_int iv, Value.Null -> Vec.push iv 0
  | D_float fv, Value.Float x -> Vec.push fv x
  | D_float fv, Value.Null -> Vec.push fv 0.0
  | D_bool bv, Value.Bool b -> Vec.push bv (if b then 1 else 0)
  | D_bool bv, Value.Null -> Vec.push bv 2
  | D_str (cv, d), Value.Str s -> Vec.push cv (intern d s)
  | D_str (cv, _), Value.Null -> Vec.push cv (-1)
  | D_mixed mv, v -> Vec.push mv v
  | (D_int _ | D_float _ | D_bool _ | D_str _), v ->
    demote c;
    (match c.data with D_mixed mv -> Vec.push mv v | _ -> assert false)

let append t ~tid (cells : Value.t array) =
  Array.iteri (fun i c -> append_cell c cells.(i)) t.cols;
  Vec.push t.tids tid

let truncate_col (c : col) n =
  (match c.data with
  | D_int v -> Vec.truncate v n
  | D_float v -> Vec.truncate v n
  | D_bool v -> Vec.truncate v n
  | D_str (v, _) -> Vec.truncate v n
  | D_mixed v -> Vec.truncate v n);
  Bitvec.truncate c.nulls n

let truncate t n =
  Array.iter (fun c -> truncate_col c n) t.cols;
  Vec.truncate t.tids n

(* Full reset recreates the columns from the schema: fresh dictionaries
   (codes dense again) and typed layouts (a demoted column re-promotes
   when the surviving rows are homogeneous). *)
let clear t =
  t.cols <-
    Array.map (fun (c : Schema.column) -> fresh_col c.Schema.ty) t.schema;
  Vec.truncate t.tids 0

(* Destructive mutations (deletion, in-place update) refill the store
   from the heap in one pass. Those paths are already O(rows) on the
   table side and are never on the policy-evaluation hot path, so a
   rebuild keeps the synchronization story obviously correct. *)
let rebuild t ~row_count iter_rows =
  clear t;
  ignore row_count;
  iter_rows (fun ~tid cells -> append t ~tid cells)

(* Zero-copy views -------------------------------------------------------- *)

type view =
  | V_int of int array * Bitvec.t
  | V_float of float array * Bitvec.t
  | V_bool of int array
  | V_str of int array * dict
  | V_mixed of Value.t array

let view_col (c : col) : view =
  match c.data with
  | D_int v -> V_int (Vec.unsafe_data v, c.nulls)
  | D_float v -> V_float (Vec.unsafe_data v, c.nulls)
  | D_bool v -> V_bool (Vec.unsafe_data v)
  | D_str (v, d) -> V_str (Vec.unsafe_data v, d)
  | D_mixed v -> V_mixed (Vec.unsafe_data v)

let view t i = view_col t.cols.(i)

let views t = Array.map view_col t.cols

(* Boxed accessor over a view, for the scalar-expression fallback and row
   materialization. The typed kernels read the arrays directly. *)
let view_value (v : view) i : Value.t =
  match v with
  | V_int (a, nulls) ->
    if Bitvec.get nulls i then Value.Null else Value.Int a.(i)
  | V_float (a, nulls) ->
    if Bitvec.get nulls i then Value.Null else Value.Float a.(i)
  | V_bool a -> (
    match a.(i) with 0 -> Value.Bool false | 1 -> Value.Bool true | _ -> Value.Null)
  | V_str (codes, d) ->
    let c = codes.(i) in
    if c < 0 then Value.Null else Value.Str (dict_string d c)
  | V_mixed a -> a.(i)

let tids t = Vec.unsafe_data t.tids

let tid_at t i = Vec.get t.tids i

(* First position whose tid is >= [base] — the start of the delta slice
   (tids are ascending). [length t] when every row is below the
   watermark. *)
let delta_start t ~base =
  let n = Vec.length t.tids in
  let rec lb lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Vec.get t.tids mid < base then lb (mid + 1) hi else lb lo mid
  in
  lb 0 n

(* Layout accounting for engine stats: (typed columns, Mixed columns,
   total interned dictionary entries). *)
let layout_stats t =
  let typed = ref 0 and mixed = ref 0 and dict_entries = ref 0 in
  Array.iter
    (fun c ->
      match c.data with
      | D_mixed _ -> incr mixed
      | D_str (_, d) ->
        incr typed;
        dict_entries := !dict_entries + dict_size d
      | D_int _ | D_float _ | D_bool _ -> incr typed)
    t.cols;
  (!typed, !mixed, !dict_entries)
