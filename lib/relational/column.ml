(** Columnar table storage for the vectorized executor.

    A column store is an opt-in decomposed mirror of a table's heap: one
    {!Vec} of values per schema column plus a parallel vector of tuple
    ids, all in heap (= tid) order. {!Table} keeps it synchronized across
    every mutation path exactly as it keeps secondary indexes — appends
    append, savepoint rollback truncates, and the destructive paths
    (deletion, update, clear) rebuild — so batch scans can hand the
    backing arrays to compiled operators without copying.

    The store also answers the delta-watermark question
    ({!Table.fold_delta}'s binary lower bound) positionally: since rows
    are tid-sorted, the suffix at or above a watermark tid is a contiguous
    index range — which is what makes an incremental re-check a column
    slice instead of a row walk. *)

type t = {
  width : int;
  cols : Value.t Vec.t array;  (** one value vector per schema column *)
  tids : int Vec.t;  (** parallel tid vector, ascending (heap invariant) *)
}

let create ~width =
  {
    width;
    cols = Array.init width (fun _ -> Vec.create ~dummy:Value.Null ());
    tids = Vec.create ~dummy:(-1) ();
  }

let width t = t.width

let length t = Vec.length t.tids

let append t ~tid (cells : Value.t array) =
  Array.iteri (fun i col -> Vec.push col cells.(i)) t.cols;
  Vec.push t.tids tid

let truncate t n =
  Array.iter (fun col -> Vec.truncate col n) t.cols;
  Vec.truncate t.tids n

let clear t = truncate t 0

(* Destructive mutations (deletion, in-place update) refill the store
   from the heap in one pass. Those paths are already O(rows) on the
   table side and are never on the policy-evaluation hot path, so a
   rebuild keeps the synchronization story obviously correct. *)
let rebuild t ~row_count iter_rows =
  clear t;
  ignore row_count;
  iter_rows (fun ~tid cells -> append t ~tid cells)

(* Zero-copy view of the store for batch construction: the backing
   arrays, valid in [0, length t). The caller must not read past the
   returned length and must not hold the arrays across a mutation (the
   engine freezes tables for the span of an evaluation, and the shared
   caches revalidate on {!Table.ver_mut}, so compiled plans respect both
   by construction). *)
let columns t = Array.map (fun col -> Vec.unsafe_data col) t.cols

let tids t = Vec.unsafe_data t.tids

let tid_at t i = Vec.get t.tids i

(* First position whose tid is >= [base] — the start of the delta slice
   (tids are ascending). [length t] when every row is below the
   watermark. *)
let delta_start t ~base =
  let n = Vec.length t.tids in
  let rec lb lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Vec.get t.tids mid < base then lb (mid + 1) hi else lb lo mid
  in
  lb 0 n
