(** Cross-plan cache of materialized shared subplans.

    Several policy plans of one admission frequently begin with the same
    log-scan-plus-filter prefix ({!Plan.Shared}). This cache lets the
    first executing plan materialize the prefix once and every other plan
    reuse the row list, instead of each re-scanning the table.

    Entries are self-validating: each records the catalog generation and
    the source table's {!Table.ver_mut} at materialization time, and a
    lookup only hits while both still match. Any mutation of the table —
    a tentative log increment, a commit, a rollback, DML — bumps
    [ver_mut] and silently retires the entry, so no explicit
    invalidation call is needed and a cached prefix can never leak
    across admissions (or across the interleaved strategy's
    generate-then-check rounds within one).

    Thread safety: one mutex guards the table, and it is held across a
    miss's [compute] so concurrent pool domains evaluating policies wait
    for the single materialization instead of duplicating it. [compute]
    must therefore be a pure read (the compiler's materializers only
    fold tables) — it must never call back into the cache. Hit/miss
    counters are atomics so {!stats} can be read concurrently. *)

type 'a entry = { gen : int; ver : int; rows : 'a }

type 'a t = {
  lock : Mutex.t;
  tbl : (string, 'a entry) Hashtbl.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create () : 'a t =
  {
    lock = Mutex.create ();
    tbl = Hashtbl.create 32;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let find_or_compute (t : 'a t) ~(gen : int) ~(ver : int) ~(tag : string)
    (compute : unit -> 'a) : 'a =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match Hashtbl.find_opt t.tbl tag with
      | Some e when e.gen = gen && e.ver = ver ->
        Atomic.incr t.hits;
        e.rows
      | Some _ | None ->
        Atomic.incr t.misses;
        let rows = compute () in
        Hashtbl.replace t.tbl tag { gen; ver; rows };
        rows)

let stats (t : 'a t) = (Atomic.get t.hits, Atomic.get t.misses)

let clear (t : 'a t) =
  Mutex.lock t.lock;
  Hashtbl.reset t.tbl;
  Mutex.unlock t.lock
