(** Maintained secondary indexes.

    An index maps the value of one column to the tuple ids of the rows
    holding that value. Two physical shapes exist:

    - [Hash] — a hashtable keyed on {!Value.canonical_key}, supporting
      equality lookups only;
    - [Sorted] — a balanced map ordered by {!Value.compare}, supporting
      equality lookups and range scans.

    Entry semantics follow {!Value.equal}: [Null] keys are stored (under
    their own key) and integral floats collapse onto the matching int, so
    a lookup returns exactly the rows whose cell is [Value.equal] to the
    probe. SQL's NULL comparison rules (a predicate involving NULL is
    false) are the {e caller's} concern: the compiled access path gates
    NULL probes and range scans skip the [Null] key.

    Indexes store tids, not rows: the owning {!Table} resolves tids back
    to rows (rows are tid-sorted, so sorting the result reproduces heap
    scan order exactly). Maintenance — [add] on insert, [remove] on
    delete/compaction/update/rollback — is driven by the table; this
    module never sees the heap. *)

type kind = Hash | Sorted

module VMap = Map.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

type store =
  | H of (string, int list ref) Hashtbl.t
  | S of int list VMap.t ref

type t = {
  name : string;
  column : int;
  column_name : string;
  kind : kind;
  store : store;
  mutable entries : int;
}

let create ~name ~column ~column_name kind =
  let store =
    match kind with
    | Hash -> H (Hashtbl.create 64)
    | Sorted -> S (ref VMap.empty)
  in
  { name; column; column_name; kind; store; entries = 0 }

let name t = t.name

let column t = t.column

let column_name t = t.column_name

let kind t = t.kind

let entries t = t.entries

let kind_to_string = function Hash -> "hash" | Sorted -> "sorted"

(* Maintenance ------------------------------------------------------------- *)

(* New tids are prepended: rollback removes the most recently inserted
   tids first, so the common removal is from the bucket head. *)
let add t (v : Value.t) (tid : int) =
  (match t.store with
  | H tbl -> (
    let k = Value.canonical_key v in
    match Hashtbl.find_opt tbl k with
    | Some cell -> cell := tid :: !cell
    | None -> Hashtbl.replace tbl k (ref [ tid ]))
  | S map -> (
    match VMap.find_opt v !map with
    | Some tids -> map := VMap.add v (tid :: tids) !map
    | None -> map := VMap.add v [ tid ] !map));
  t.entries <- t.entries + 1

let drop_tid tid tids = List.filter (fun t -> t <> tid) tids

let remove t (v : Value.t) (tid : int) =
  (match t.store with
  | H tbl -> (
    let k = Value.canonical_key v in
    match Hashtbl.find_opt tbl k with
    | None -> ()
    | Some cell -> (
      match drop_tid tid !cell with
      | [] -> Hashtbl.remove tbl k
      | tids -> cell := tids))
  | S map -> (
    match VMap.find_opt v !map with
    | None -> ()
    | Some tids -> (
      match drop_tid tid tids with
      | [] -> map := VMap.remove v !map
      | tids -> map := VMap.add v tids !map)));
  t.entries <- max 0 (t.entries - 1)

let clear t =
  (match t.store with
  | H tbl -> Hashtbl.reset tbl
  | S map -> map := VMap.empty);
  t.entries <- 0

(* Lookups ----------------------------------------------------------------- *)

(* Tids whose cell is [Value.equal] to [v]; unsorted. *)
let lookup t (v : Value.t) : int list =
  match t.store with
  | H tbl -> (
    match Hashtbl.find_opt tbl (Value.canonical_key v) with
    | Some cell -> !cell
    | None -> [])
  | S map -> ( match VMap.find_opt v !map with Some tids -> tids | None -> [])

type bound = Value.t * bool  (** value, inclusive? *)

(* Tids whose (non-Null) cell lies within the bounds under
   {!Value.compare}; unsorted. Rows keyed [Null] are always excluded —
   every SQL comparison against NULL is false. *)
let range t ?(lo : bound option) ?(hi : bound option) () : int list =
  match t.store with
  | H _ ->
    Errors.runtime_error "index %s is a hash index and cannot serve ranges"
      t.name
  | S map ->
    let above v =
      match lo with
      | None -> true
      | Some (b, incl) ->
        let c = Value.compare v b in
        if incl then c >= 0 else c > 0
    in
    let below v =
      match hi with
      | None -> true
      | Some (b, incl) ->
        let c = Value.compare v b in
        if incl then c <= 0 else c < 0
    in
    (* Seek to the lower bound, then walk upward until past the upper. *)
    let seq =
      match lo with
      | Some (b, _) -> VMap.to_seq_from b !map
      | None -> VMap.to_seq !map
    in
    let out = ref [] in
    let rec walk s =
      match s () with
      | Seq.Nil -> ()
      | Seq.Cons ((v, tids), rest) ->
        if not (below v) then () (* keys ascend: nothing further matches *)
        else begin
          if (not (Value.is_null v)) && above v then out := tids :: !out;
          walk rest
        end
    in
    walk seq;
    List.concat !out

let pp ppf t =
  Format.fprintf ppf "%s (%s on %s, %d entries)" t.name (kind_to_string t.kind)
    t.column_name t.entries
