(** Cross-plan cache of materialized shared subplans ({!Plan.Shared}).

    Entries are keyed by the node's structural tag and self-validate
    against the catalog generation and the source table's
    {!Table.ver_mut} recorded at materialization time, so any table
    mutation retires them without explicit invalidation. Safe to share
    across the engine's pool domains: one mutex serializes
    materialization (a miss's [compute] runs under it, so concurrent
    readers wait for a single materialization); [compute] must be a pure
    read and must not re-enter the cache. *)

type 'a t

val create : unit -> 'a t

(** Return the cached value for [tag] if its recorded (generation,
    table-version) pair still equals [(gen, ver)]; otherwise run
    [compute], cache its result under [(gen, ver)], and return it. *)
val find_or_compute : 'a t -> gen:int -> ver:int -> tag:string -> (unit -> 'a) -> 'a

(** (hits, misses) since creation. *)
val stats : 'a t -> int * int

(** Drop every entry (the statistics survive). *)
val clear : 'a t -> unit
