(** Logical plan IR.

    The binder turns a parsed {!Ast.query} into a fully bound plan: every
    column reference is resolved once, to an index into an explicit row
    layout, and every clause (projection, predicates, grouping, ordering)
    becomes a {!pexpr} tree over that layout. Binding errors — unknown or
    ambiguous names, aggregates in WHERE, UNION arity mismatches — are
    raised here, so neither the optimizer nor the compiled operators ever
    perform name resolution again.

    The binder is deliberately naive: WHERE conjuncts are attached to the
    join step at which their slots are all available, no predicate is
    pushed into a scan, no hash keys are extracted and no column is
    pruned. {!Optimizer.optimize} performs those rewrites; compiling the
    binder's output directly yields the un-optimized reference executor
    used by the differential tests. *)

(** Bound scalar expression. [Field] indexes the concatenated row of the
    enclosing SELECT's FROM slots (the "final layout"); inside scan
    predicates and hash-join build keys indices are slot-local instead
    (the operator evaluates them against a single slot's row).
    [Rep_field] is a field of a group's representative row — [Null] when
    the group is empty (aggregate query over no rows). [Agg_ref] indexes
    the per-group array of computed aggregates. [Agg_outside] is an
    aggregate call in a non-aggregate position; it raises when (and only
    when) evaluated, preserving the lazy error behaviour of the
    AST-walking executor. *)
type pexpr =
  | Const of Value.t
  | Field of int
  | Rep_field of int
  | Agg_ref of int
  | Agg_outside
  | Exec of (unit -> Value.t)
      (** read a value at execution time — the clock-elimination rewrite
          substitutes the clock relation's single cell with one of these,
          so a compiled residual plan stays valid as the clock advances.
          The closure must never raise and reads no row fields. Plans
          carrying [Exec] are never marshalled (no {!Optimizer.share_scans})
          and never constant-folded. *)
  | Binop of Ast.binop * pexpr * pexpr
  | Unop of Ast.unop * pexpr
  | Fn of string * pexpr list
  | Case of (pexpr * pexpr) list * pexpr option

(** How a base-table scan reaches its rows. [Heap] walks the whole table;
    the index paths probe a declared {!Index} and are selected by the
    optimizer from pushed-down predicates. Key and bound expressions are
    slot-free ([Const]-only after constant folding) and evaluate once per
    execution; a NULL key or bound yields no rows (SQL comparison
    semantics). *)
type access =
  | Heap
  | Delta
      (** walk only the rows at or above the table's delta watermark
          ({!Table.delta_base}), read at execution time so one compiled
          plan stays valid as the watermark advances *)
  | Below
      (** walk only the rows strictly below the watermark — the
          complement of [Delta]. Telescoped delta variants of aggregate
          policies use it to count each joined increment row exactly
          once across variants. *)
  | Index_eq of { index : string; key : pexpr }
  | Index_range of {
      index : string;
      lo : (pexpr * bool) option;  (** bound, inclusive? *)
      hi : (pexpr * bool) option;
    }

type source =
  | Scan of string * access  (** base table, by catalog name *)
  | Sub of query
  | Shared of {
      tag : string;
          (** digest of (table, access, preds): identical shared prefixes
              across plans collide on purpose, which is what lets one
              materialization fan out to every policy of an admission *)
      table : string;
      access : access;
      preds : pexpr list;
          (** the slot-local pushed-down conjuncts, absorbed into the
              materialization point (the slot's [scan_preds] are emptied
              when the optimizer introduces the node) *)
    }
      (** compile-time materialization point for a scan-plus-filter prefix
          shared by several plans ({!Optimizer.share_scans}); compiled
          without a cache it behaves exactly like [Scan] with the preds as
          scan predicates *)

and slot = {
  alias : string;  (** lowercased effective alias *)
  cols : string array;  (** full column set the slot exposes *)
  source : source;
  keep : int array;
      (** slot-local column indices surviving projection pruning; the
          binder emits the identity, the optimizer may shrink it *)
}

(** One join step: when slot [i] joins the prefix [0..i-1], [keys] are
    (probe, build) equi-key pairs — probe over the pruned prefix layout,
    build over the slot's local full-width row — and [residual] are the
    remaining conjuncts applicable once the slot is joined, over the
    pruned layout. Step 0 never has keys; its residual filters the first
    slot's rows. *)
and jstep = { keys : (pexpr * pexpr) list; residual : pexpr list }

and agg_spec = { agg : Ast.agg; distinct_agg : bool; arg : pexpr option }

and okey =
  | By_output of int  (** ORDER BY referencing an output column by name *)
  | By_expr of pexpr
  | By_null
      (** key that failed to bind in an aggregate query; the AST walker
          evaluated it lazily and mapped any failure to NULL *)

and dspec = D_all | D_distinct | D_on of pexpr list

and finish = {
  columns : string list;
  projs : pexpr list;  (** one per output column *)
  aggregated : bool;
  group_by : pexpr list;
  aggs : agg_spec array;  (** indexed by [Agg_ref] *)
  having : pexpr option;
  order_by : (okey * Ast.order_dir) list;
  distinct : dspec;
  limit : int option;
}

and select_plan = {
  slots : slot array;
  const_preds : pexpr list;  (** slot-free conjuncts gating the query *)
  scan_preds : pexpr list array;
      (** per-slot pushed-down predicates, slot-local layout; empty until
          the optimizer runs *)
  joins : jstep array;  (** one per slot *)
  finish : finish;
}

and query = Select of select_plan | Union of { all : bool; left : query; right : query }

(** Physical routing of a plan between the row-at-a-time compiler
    ({!Compile}) and the batch-at-a-time compiler ({!Compile_batch}),
    decided per subtree by {!Optimizer.batch_route}. The tree mirrors the
    query's UNION structure; each [Select] node is routed whole (its
    scans, filters, joins and aggregate accumulation all move together —
    subquery slots inside a batched select still compile through the row
    path and enter through the row→batch adapter). *)
type route =
  | Route_row
  | Route_batch
  | Route_union of { left : route; right : route }

let rec columns = function
  | Select sp -> sp.finish.columns
  | Union { left; _ } -> columns left

(* Binding ---------------------------------------------------------------- *)

(* The scope of one SELECT: its FROM slots laid out side by side. *)
type scope = {
  aliases : string array;  (** lowercased *)
  slot_cols : string array array;
  offsets : int array;
}

let identity n = Array.init n (fun i -> i)

(* Resolve a column reference to an absolute index in the final layout,
   with the exact error messages of the AST-walking executor. *)
let resolve scope q name =
  let lname = String.lowercase_ascii name in
  let col_index cols =
    let rec go i =
      if i >= Array.length cols then None
      else if String.lowercase_ascii cols.(i) = lname then Some i
      else go (i + 1)
    in
    go 0
  in
  match q with
  | Some q -> (
    let lq = String.lowercase_ascii q in
    let rec find i =
      if i >= Array.length scope.aliases then
        Errors.bind_error "unknown table or alias %S" q
      else if scope.aliases.(i) = lq then i
      else find (i + 1)
    in
    let si = find 0 in
    match col_index scope.slot_cols.(si) with
    | Some ci -> scope.offsets.(si) + ci
    | None -> Errors.bind_error "no column %S in %S" name q)
  | None -> (
    let hits = ref [] in
    Array.iteri
      (fun si cols ->
        match col_index cols with
        | Some ci -> hits := (scope.offsets.(si) + ci) :: !hits
        | None -> ())
      scope.slot_cols;
    match !hits with
    | [ hit ] -> hit
    | [] -> Errors.bind_error "unknown column %S" name
    | _ -> Errors.bind_error "ambiguous column %S" name)

(* Lower an expression in the base (per-row) context. *)
let rec lower scope (e : Ast.expr) : pexpr =
  match e with
  | Ast.Lit v -> Const v
  | Ast.Col (q, name) -> Field (resolve scope q name)
  | Ast.Binop (op, a, b) -> Binop (op, lower scope a, lower scope b)
  | Ast.Unop (op, a) -> Unop (op, lower scope a)
  | Ast.Agg_call _ -> Agg_outside
  | Ast.Fn_call (name, args) -> Fn (name, List.map (lower scope) args)
  | Ast.Case (branches, default) ->
    Case
      ( List.map (fun (c, v) -> (lower scope c, lower scope v)) branches,
        Option.map (lower scope) default )

(* Lower in the group context: aggregate calls become references into the
   per-group computed array, plain columns read the group's representative
   row (NULL for the empty group). Membership is tested at every node,
   mirroring the evaluator's per-node aggregate lookup. *)
let rec lower_group scope (agg_calls : Ast.expr list) (e : Ast.expr) : pexpr =
  let rec index_of i = function
    | [] -> None
    | c :: _ when c = e -> Some i
    | _ :: rest -> index_of (i + 1) rest
  in
  match index_of 0 agg_calls with
  | Some i -> Agg_ref i
  | None -> (
    match e with
    | Ast.Lit v -> Const v
    | Ast.Col (q, name) -> Rep_field (resolve scope q name)
    | Ast.Binop (op, a, b) ->
      Binop (op, lower_group scope agg_calls a, lower_group scope agg_calls b)
    | Ast.Unop (op, a) -> Unop (op, lower_group scope agg_calls a)
    | Ast.Agg_call _ -> Agg_outside
    | Ast.Fn_call (name, args) ->
      Fn (name, List.map (lower_group scope agg_calls) args)
    | Ast.Case (branches, default) ->
      Case
        ( List.map
            (fun (c, v) ->
              (lower_group scope agg_calls c, lower_group scope agg_calls v))
            branches,
          Option.map (lower_group scope agg_calls) default ))

(* Slots referenced by a bound expression (via its absolute fields). *)
let slots_of_pexpr (offsets : int array) (widths : int array) (p : pexpr) :
    int list =
  let slot_of idx =
    let rec go si =
      if idx < offsets.(si) + widths.(si) then si else go (si + 1)
    in
    go 0
  in
  let acc = ref [] in
  let rec walk = function
    | Const _ | Agg_ref _ | Agg_outside | Exec _ -> ()
    | Field i | Rep_field i ->
      let si = slot_of i in
      if not (List.mem si !acc) then acc := si :: !acc
    | Binop (_, a, b) ->
      walk a;
      walk b
    | Unop (_, a) -> walk a
    | Fn (_, args) -> List.iter walk args
    | Case (branches, default) ->
      List.iter
        (fun (c, v) ->
          walk c;
          walk v)
        branches;
      Option.iter walk default
  in
  walk p;
  List.sort_uniq compare !acc

let rec of_query (cat : Catalog.t) (q : Ast.query) : query =
  match q with
  | Ast.Select s -> Select (of_select cat s)
  | Ast.Union { all; left; right } ->
    let l = of_query cat left in
    let r = of_query cat right in
    let la = List.length (columns l) and ra = List.length (columns r) in
    if la <> ra then
      Errors.bind_error "UNION operands have different arities (%d vs %d)" la ra;
    Union { all; left = l; right = r }

and of_select (cat : Catalog.t) (s : Ast.select) : select_plan =
  (* 1. Resolve FROM items into slots (missing tables error here, before
     any other binding, as the executor materialized inputs first). *)
  let slots =
    Array.of_list
      (List.map
         (fun (fi : Ast.from_item) ->
           match fi with
           | Ast.From_table { name; alias } ->
             let table = Catalog.find cat name in
             let cols = Array.of_list (Schema.column_names (Table.schema table)) in
             {
               alias =
                 String.lowercase_ascii (Option.value alias ~default:name);
               cols;
               source = Scan (name, Heap);
               keep = identity (Array.length cols);
             }
           | Ast.From_subquery { query; alias } ->
             let sub = of_query cat query in
             let cols = Array.of_list (columns sub) in
             {
               alias = String.lowercase_ascii alias;
               cols;
               source = Sub sub;
               keep = identity (Array.length cols);
             })
         s.from)
  in
  let nslots = Array.length slots in
  let widths = Array.map (fun sl -> Array.length sl.cols) slots in
  let offsets = Array.make nslots 0 in
  for i = 1 to nslots - 1 do
    offsets.(i) <- offsets.(i - 1) + widths.(i - 1)
  done;
  let scope =
    {
      aliases = Array.map (fun sl -> sl.alias) slots;
      slot_cols = Array.map (fun sl -> sl.cols) slots;
      offsets;
    }
  in
  (* 2. WHERE conjuncts: reject aggregates first, then bind. *)
  let conjuncts = Ast.conjuncts_opt s.where in
  List.iter
    (fun c ->
      if Ast.expr_has_agg c then
        Errors.bind_error "aggregates are not allowed in WHERE")
    conjuncts;
  let bound =
    List.map
      (fun c ->
        let p = lower scope c in
        (p, slots_of_pexpr offsets widths p))
      conjuncts
  in
  let const_preds =
    List.filter_map (fun (p, ss) -> if ss = [] then Some p else None) bound
  in
  (* Naive placement: each conjunct joins the step at which its last slot
     becomes available. The optimizer refines this into pushdowns and
     hash keys. *)
  let residuals = Array.make (max nslots 1) [] in
  List.iter
    (fun (p, ss) ->
      match ss with
      | [] -> ()
      | _ ->
        let step = List.fold_left max 0 ss in
        residuals.(step) <- p :: residuals.(step))
    bound;
  let joins =
    Array.init nslots (fun i -> { keys = []; residual = List.rev residuals.(i) })
  in
  (* 3. SELECT list. *)
  let item_exprs =
    List.filter_map
      (function
        | Ast.Sel_expr (e, _) -> Some e | Ast.Star | Ast.Table_star _ -> None)
      s.items
  in
  let has_agg =
    s.group_by <> [] || s.having <> None || List.exists Ast.expr_has_agg item_exprs
  in
  let agg_calls =
    List.sort_uniq compare
      (List.concat_map Aggregate.calls_in_expr
         (item_exprs @ Option.to_list s.having @ List.map fst s.order_by))
  in
  let lower_item e =
    if has_agg then lower_group scope agg_calls e else lower scope e
  in
  let star_columns () =
    let out = ref [] in
    Array.iteri
      (fun si sl ->
        Array.iteri (fun i c -> out := (offsets.(si) + i, c) :: !out) sl.cols)
      slots;
    List.rev !out
  in
  let table_star_columns t =
    let lt = String.lowercase_ascii t in
    let found = ref None in
    Array.iteri (fun si sl -> if !found = None && sl.alias = lt then found := Some si) slots;
    match !found with
    | None -> Errors.bind_error "unknown table or alias %S in select list" t
    | Some si ->
      Array.to_list (Array.mapi (fun i c -> (offsets.(si) + i, c)) slots.(si).cols)
  in
  let named_projs =
    List.concat_map
      (function
        | Ast.Star ->
          List.map (fun (idx, name) -> (name, Field idx)) (star_columns ())
        | Ast.Table_star t ->
          List.map (fun (idx, name) -> (name, Field idx)) (table_star_columns t)
        | Ast.Sel_expr (e, alias) ->
          let name =
            match alias, e with
            | Some a, _ -> a
            | None, Ast.Col (_, c) -> c
            | None, Ast.Agg_call (agg, _, _) ->
              String.lowercase_ascii (Sql_print.agg_str agg)
            | None, _ -> "?column?"
          in
          [ (name, lower_item e) ])
      s.items
  in
  (* 4. Aggregate specifications (argument bound in the base context). *)
  let aggs =
    Array.of_list
      (List.map
         (function
           | Ast.Agg_call (agg, distinct_agg, arg) ->
             { agg; distinct_agg; arg = Option.map (lower scope) arg }
           | _ -> assert false)
         agg_calls)
  in
  (* 5. ORDER BY keys: an unqualified name matching an output column uses
     that column; otherwise the key binds in the base context, and in an
     aggregate query a key that fails to bind degrades to NULL — exactly
     the lazy behaviour of the AST walker. *)
  let order_by =
    List.map
      (fun (e, dir) ->
        let key =
          let by_output name =
            let lname = String.lowercase_ascii name in
            let rec go i = function
              | [] -> None
              | (n, _) :: _ when String.lowercase_ascii n = lname -> Some i
              | _ :: rest -> go (i + 1) rest
            in
            go 0 named_projs
          in
          match e with
          | Ast.Col (None, name) when by_output name <> None ->
            By_output (Option.get (by_output name))
          | _ -> (
            try By_expr (lower scope e)
            with Errors.Sql_error _ when has_agg -> By_null)
        in
        (key, dir))
      s.order_by
  in
  let distinct =
    match s.distinct with
    | Ast.All -> D_all
    | Ast.Distinct -> D_distinct
    | Ast.Distinct_on keys -> D_on (List.map (lower scope) keys)
  in
  let finish =
    {
      columns = List.map fst named_projs;
      projs = List.map snd named_projs;
      aggregated = has_agg;
      group_by = List.map (lower scope) s.group_by;
      aggs;
      having = Option.map (lower_group scope agg_calls) s.having;
      order_by;
      distinct;
      limit = s.limit;
    }
  in
  {
    slots;
    const_preds;
    scan_preds = Array.make nslots [];
    joins;
    finish;
  }

(* Layout helpers shared with the optimizer and compiler. *)
let full_offsets (slots : slot array) : int array =
  let n = Array.length slots in
  let offsets = Array.make n 0 in
  for i = 1 to n - 1 do
    offsets.(i) <- offsets.(i - 1) + Array.length slots.(i - 1).cols
  done;
  offsets

let pruned_offsets (slots : slot array) : int array =
  let n = Array.length slots in
  let offsets = Array.make n 0 in
  for i = 1 to n - 1 do
    offsets.(i) <- offsets.(i - 1) + Array.length slots.(i - 1).keep
  done;
  offsets
