(** Batch-at-a-time (vectorized) compiler.

    A sibling of {!Compile} that lowers batch-routed subtrees
    ({!Optimizer.batch_route}) to columnar operators: scans borrow a
    table's columnar mirror ({!Table.columnar}) without copying,
    predicates refine a selection vector one conjunct per pass, hash
    joins build Value-keyed tables over column vectors and emit gathered
    index pairs, and aggregation accumulates per group over row indices.
    Everything downstream of the pipeline — grouping representative
    semantics, projection, DISTINCT, ORDER BY, LIMIT, UNION merge — is
    the row compiler's own closures ({!Compile.compile_produce},
    {!Compile.compile_finish_tail}, {!Compile.union_rows}), so output
    shaping cannot diverge.

    Observable behaviour is bit-identical to the row path by
    construction: scan order is heap/tid order, the hash join reproduces
    the reverse-insertion match order of [Hashtbl.add]/[find_all] in
    probe-major output order, single-value keys rely on
    {!Value.equal}/{!Value.hash} agreeing with {!Value.canonical_key}
    equality (multi-column keys keep the canonical string encoding), and
    scalar evaluation reuses {!Compile.compile_expr} closures over a
    per-execution scratch row, so error messages and laziness are the
    row path's own. Subtrees the router keeps on the row path (lineage
    runs, aggregated source-tracking, group-context expressions) fall
    back to {!Compile.compile} wholesale. *)

(* Per-batch statistics, exposed through engine stats / :stats / server
   STATS. Atomic: compiled plans execute concurrently on the engine's
   domain pool. *)
let batches_built = Atomic.make 0
let batch_rows = Atomic.make 0
let row_fallbacks = Atomic.make 0

(* Rows-per-batch histogram: < 16, < 256, < 4096, < 65536, >= 65536. *)
let hist_bounds = [| 16; 256; 4096; 65536 |]
let hist = Array.init (Array.length hist_bounds + 1) (fun _ -> Atomic.make 0)

let note_batch n =
  Atomic.incr batches_built;
  ignore (Atomic.fetch_and_add batch_rows n);
  let rec bucket i =
    if i >= Array.length hist_bounds || n < hist_bounds.(i) then i
    else bucket (i + 1)
  in
  Atomic.incr hist.(bucket 0)

let hist_snapshot () = Array.map Atomic.get hist

let reset_stats () =
  Atomic.set batches_built 0;
  Atomic.set batch_rows 0;
  Atomic.set row_fallbacks 0;
  Array.iter (fun c -> Atomic.set c 0) hist

(* Batches ---------------------------------------------------------------- *)

(* Which positions of the backing columns are live, in output order.
   [All n] avoids materializing the identity selection for fresh scans
   (the common case on large log relations). *)
type selv = All of int | Chosen of int array

(* A source-tid column for [track_src] runs: tids parallel to the
   backing columns, tagged with the FROM-slot index they annotate. *)
type src_col = { slot : int; tids : int array }

(* A column batch. [cols] are backing arrays — possibly borrowed
   zero-copy from a table's columnar mirror, so only positions reached
   through [sel] are meaningful. [srcs] is in ascending slot order. *)
type batch = { cols : Value.t array array; sel : selv; srcs : src_col list }

let sel_length = function All n -> n | Chosen a -> Array.length a

let sel_iter f = function
  | All n ->
    for i = 0 to n - 1 do
      f i
    done
  | Chosen a -> Array.iter f a

(* Expressions ------------------------------------------------------------ *)

(* A positional evaluator: bind to a batch's columns once per execution,
   then evaluate at row positions. *)
type bexpr = Value.t array array -> int -> Value.t

let rec add_fields acc (p : Plan.pexpr) =
  match p with
  | Plan.Field i | Plan.Rep_field i -> if List.mem i acc then acc else i :: acc
  | Plan.Const _ | Plan.Agg_ref _ | Plan.Agg_outside | Plan.Exec _ -> acc
  | Plan.Binop (_, a, b) -> add_fields (add_fields acc a) b
  | Plan.Unop (_, a) -> add_fields acc a
  | Plan.Fn (_, args) -> List.fold_left add_fields acc args
  | Plan.Case (branches, default) ->
    let acc =
      List.fold_left
        (fun acc (c, v) -> add_fields (add_fields acc c) v)
        acc branches
    in
    (match default with None -> acc | Some d -> add_fields acc d)

(* Bare fields and constants evaluate straight off the columns. Anything
   richer reuses the row compiler's scalar closure over a scratch row
   refilled with just the fields the expression reads — semantics
   (dispatch, laziness, error messages) are therefore shared code, at
   the cost of a few array stores per row. The scratch row is allocated
   at column-binding time, i.e. per execution, because compiled plans
   run concurrently across domains. *)
let rec compile_bexpr (p : Plan.pexpr) : bexpr =
  match p with
  | Plan.Field i ->
    fun cols ->
      let c = cols.(i) in
      fun ri -> c.(ri)
  | Plan.Const v -> fun _ _ -> v
  | Plan.Binop
      ( ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op),
        ((Plan.Field _ | Plan.Const _) as a),
        ((Plan.Field _ | Plan.Const _) as b) ) ->
    (* The hot filter shape (column vs column/constant) dispatches
       through the row path's own [Eval.compare_op] — same semantics,
       no scratch-row copy. *)
    let ba = compile_bexpr a and bb = compile_bexpr b in
    fun cols ->
      let ea = ba cols and eb = bb cols in
      fun ri -> Eval.compare_op op (ea ri) (eb ri)
  | _ ->
    let ce = Compile.compile_expr p in
    let used = Array.of_list (add_fields [] p) in
    fun cols ->
      let scratch = Array.make (Array.length cols) Value.Null in
      let srcs = Array.map (fun i -> cols.(i)) used in
      fun ri ->
        for k = 0 to Array.length used - 1 do
          scratch.(used.(k)) <- (Array.unsafe_get srcs k).(ri)
        done;
        ce scratch [||]

(* Filters ---------------------------------------------------------------- *)

(* One selection-refinement pass for one conjunct. *)
let filter_pass (b : batch) (ev : int -> Value.t) : batch =
  let n = sel_length b.sel in
  let out = Array.make n 0 in
  let j = ref 0 in
  sel_iter
    (fun ri ->
      if Value.to_bool (ev ri) then begin
        out.(!j) <- ri;
        incr j
      end)
    b.sel;
  { b with sel = Chosen (Array.sub out 0 !j) }

(* Pushed-down predicates: one pass per conjunct, the row path's
   [scan_preds] evaluation order. *)
let filter_conjuncts (b : batch) (preds : bexpr list) : batch =
  List.fold_left (fun b bx -> filter_pass b (bx b.cols)) b preds

(* Join residuals: a single pass evaluating all conjuncts per row with
   short-circuit, the row path's [List.for_all] order. *)
let filter_residual (b : batch) (preds : bexpr list) : batch =
  match preds with
  | [] -> b
  | _ ->
    let evs = List.map (fun bx -> bx b.cols) preds in
    let n = sel_length b.sel in
    let out = Array.make n 0 in
    let j = ref 0 in
    sel_iter
      (fun ri ->
        if List.for_all (fun ev -> Value.to_bool (ev ri)) evs then begin
          out.(!j) <- ri;
          incr j
        end)
      b.sel;
    { b with sel = Chosen (Array.sub out 0 !j) }

(* Scans ------------------------------------------------------------------ *)

(* Transpose a row list (index probe results, columnar-less tables). *)
let batch_of_rows ~track ~slot ~width (rows : Row.t list) : batch =
  let n = List.length rows in
  let cols = Array.init width (fun _ -> Array.make n Value.Null) in
  let tids = if track then Array.make n 0 else [||] in
  List.iteri
    (fun i row ->
      let cells = Row.cells row in
      for c = 0 to width - 1 do
        cols.(c).(i) <- cells.(c)
      done;
      if track then tids.(i) <- Row.tid row)
    rows;
  { cols; sel = All n; srcs = (if track then [ { slot; tids } ] else []) }

(* Index probe results as a batch, without materializing rows: the
   probe's tids (ascending, same order contract as [Table.index_lookup])
   become a selection vector over the mirror's zero-copy columns via a
   single merge walk of the two ascending tid sequences. A tid absent
   from the mirror is skipped, matching the row path's stale-tid
   filtering. *)
let batch_of_sorted_tids store ~track ~slot (tids : int array) : batch =
  let mt = Column.tids store in
  let n = Column.length store in
  let buf = Array.make (Array.length tids) 0 in
  let k = ref 0 and p = ref 0 in
  Array.iter
    (fun tid ->
      while !p < n && mt.(!p) < tid do
        incr p
      done;
      if !p < n && mt.(!p) = tid then begin
        buf.(!k) <- !p;
        incr k
      end)
    tids;
  {
    cols = Column.columns store;
    sel = Chosen (if !k = Array.length buf then buf else Array.sub buf 0 !k);
    srcs = (if track then [ { slot; tids = mt } ] else []);
  }

(* One scan closure per access path, mirroring [Compile.access_scan]:
   index probes count against {!Compile.index_probes} and NULL keys /
   bounds match nothing. Tables with a columnar mirror are scanned
   zero-copy; others transpose per execution. *)
let batch_access (table : Table.t) (tname : string) ~track ~slot
    (access : Plan.access) : unit -> batch =
  let width = Schema.arity (Table.schema table) in
  match access with
  | Plan.Heap -> (
    fun () ->
      match Table.columnar table with
      | Some store ->
        let n = Column.length store in
        {
          cols = Column.columns store;
          sel = All n;
          srcs =
            (if track then [ { slot; tids = Column.tids store } ] else []);
        }
      | None ->
        let rows = List.rev (Table.fold (fun acc r -> r :: acc) [] table) in
        batch_of_rows ~track ~slot ~width rows)
  | Plan.Delta -> (
    (* The watermark is read per execution, like the row path: one
       compiled plan keeps scanning the current delta suffix as the
       engine advances [Table.delta_base]. *)
    fun () ->
      match Table.columnar table with
      | Some store ->
        let n = Column.length store in
        let lo = Column.delta_start store ~base:(Table.delta_base table) in
        {
          cols = Column.columns store;
          sel =
            (if lo = 0 then All n
             else Chosen (Array.init (n - lo) (fun k -> lo + k)));
          srcs =
            (if track then [ { slot; tids = Column.tids store } ] else []);
        }
      | None ->
        let rows =
          List.rev (Table.fold_delta (fun acc r -> r :: acc) [] table)
        in
        batch_of_rows ~track ~slot ~width rows)
  | Plan.Below -> (
    (* Complement of [Delta]: the prefix strictly below the watermark. *)
    fun () ->
      match Table.columnar table with
      | Some store ->
        let n = Column.length store in
        let lo = Column.delta_start store ~base:(Table.delta_base table) in
        {
          cols = Column.columns store;
          sel = (if lo = n then All n else Chosen (Array.init lo (fun k -> k)));
          srcs =
            (if track then [ { slot; tids = Column.tids store } ] else []);
        }
      | None ->
        let rows =
          List.rev (Table.fold_below (fun acc r -> r :: acc) [] table)
        in
        batch_of_rows ~track ~slot ~width rows)
  | Plan.Index_eq { index; key } ->
    let ix =
      match Table.find_index table index with
      | Some ix -> ix
      | None -> Errors.catalog_error "no index %s on table %s" index tname
    in
    let ckey = Compile.compile_expr key in
    fun () ->
      Atomic.incr Compile.index_probes;
      let v = ckey [||] [||] in
      (* [col = NULL] matches nothing. *)
      (match Table.columnar table with
      | Some store ->
        let tids =
          if Value.is_null v then [||] else Table.index_lookup_tids table ix v
        in
        batch_of_sorted_tids store ~track ~slot tids
      | None ->
        let rows =
          if Value.is_null v then [] else Table.index_lookup table ix v
        in
        batch_of_rows ~track ~slot ~width rows)
  | Plan.Index_range { index; lo; hi } ->
    let ix =
      match Table.find_index table index with
      | Some ix -> ix
      | None -> Errors.catalog_error "no index %s on table %s" index tname
    in
    let kcol = Index.column ix in
    let cbound = Option.map (fun (p, incl) -> (Compile.compile_expr p, incl)) in
    let clo = cbound lo and chi = cbound hi in
    fun () ->
      Atomic.incr Compile.index_probes;
      let eval = Option.map (fun (c, incl) -> (c [||] [||], incl)) in
      let lo = eval clo and hi = eval chi in
      (* A NULL bound makes the comparison false for every row. *)
      let null_bound =
        match lo, hi with
        | Some (v, _), _ when Value.is_null v -> true
        | _, Some (v, _) when Value.is_null v -> true
        | _ -> false
      in
      (match Table.columnar table with
      | Some store ->
        (* The row path re-sorts probe results into tid order, so a
           range probe is observably a bound-filtered scan in heap
           order — over the mirror that is one selection pass on the
           key column ([Index.range]'s bound semantics, NULL-keyed rows
           excluded), skipping the index walk, row fetch and re-sort.
           Selective ranges trade an O(matched) walk for O(rows) cheap
           compares; the engine's range probes are watermark-shaped and
           typically match most of the log. *)
        let above =
          match lo with
          | None -> fun _ -> true
          | Some (b, incl) ->
            fun v ->
              let c = Value.compare v b in
              if incl then c >= 0 else c > 0
        in
        let below =
          match hi with
          | None -> fun _ -> true
          | Some (b, incl) ->
            fun v ->
              let c = Value.compare v b in
              if incl then c <= 0 else c < 0
        in
        let col = (Column.columns store).(kcol) in
        let n = Column.length store in
        let buf = Array.make n 0 in
        let k = ref 0 in
        if not null_bound then
          for p = 0 to n - 1 do
            let v = col.(p) in
            if (not (Value.is_null v)) && above v && below v then begin
              buf.(!k) <- p;
              incr k
            end
          done;
        {
          cols = Column.columns store;
          sel = Chosen (Array.sub buf 0 !k);
          srcs =
            (if track then [ { slot; tids = Column.tids store } ] else []);
        }
      | None ->
        let rows =
          if null_bound then [] else Table.index_range table ix ?lo ?hi ()
        in
        batch_of_rows ~track ~slot ~width rows)

(* Joins ------------------------------------------------------------------ *)

module VTbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let gather_cols (cols : Value.t array array) (idx : int array) =
  Array.map (fun col -> Array.map (fun i -> col.(i)) idx) cols

let gather_srcs (srcs : src_col list) (idx : int array) =
  List.map
    (fun sc -> { sc with tids = Array.map (fun i -> sc.tids.(i)) idx })
    srcs

(* Hash join: build on the new slot (full width), probe with the prefix,
   emit (probe, build) position pairs. Per-key chains are built by
   prepending in build order, reproducing [Hashtbl.add] + [find_all]'s
   reverse-insertion match order; probing in prefix order makes the
   output probe-major, exactly the row path's [List.rev !out]. *)
let join_hash ~(keys : (bexpr * bexpr) list) (prefix : batch) (build : batch)
    ~(keep : int array option) : batch =
  let probe_idx = Vec.create ~dummy:0 () in
  let build_idx = Vec.create ~dummy:0 () in
  (match keys with
   | [ (cp, cb) ] ->
     (* Single-column key: a Value-keyed table. [Value.equal] /
        [Value.hash] agree with canonical-key equality on single values
        (NULL = NULL, integral floats = ints), so grouping matches the
        row path's string keys without per-row encoding. *)
     let evb = cb build.cols in
     let tbl : int list ref VTbl.t =
       VTbl.create (max 16 (sel_length build.sel))
     in
     sel_iter
       (fun p ->
         let k = evb p in
         match VTbl.find_opt tbl k with
         | Some cell -> cell := p :: !cell
         | None -> VTbl.add tbl k (ref [ p ]))
       build.sel;
     let evp = cp prefix.cols in
     sel_iter
       (fun q ->
         match VTbl.find_opt tbl (evp q) with
         | None -> ()
         | Some cell ->
           List.iter
             (fun p ->
               Vec.push probe_idx q;
               Vec.push build_idx p)
             !cell)
       prefix.sel
   | _ ->
     (* Multi-column key: keep the row path's canonical string encoding
        verbatim (its concatenation is the equality the row path
        implements, collisions and all). *)
     let evbs = List.map (fun (_, cb) -> cb build.cols) keys in
     let tbl : (string, int list ref) Hashtbl.t =
       Hashtbl.create (max 16 (sel_length build.sel))
     in
     sel_iter
       (fun p ->
         let kv = Array.of_list (List.map (fun ev -> ev p) evbs) in
         let k = Value.canonical_key_of_array kv in
         match Hashtbl.find_opt tbl k with
         | Some cell -> cell := p :: !cell
         | None -> Hashtbl.add tbl k (ref [ p ]))
       build.sel;
     let evps = List.map (fun (cp, _) -> cp prefix.cols) keys in
     sel_iter
       (fun q ->
         let kv = Array.of_list (List.map (fun ev -> ev q) evps) in
         match Hashtbl.find_opt tbl (Value.canonical_key_of_array kv) with
         | None -> ()
         | Some cell ->
           List.iter
             (fun p ->
               Vec.push probe_idx q;
               Vec.push build_idx p)
             !cell)
       prefix.sel);
  let pidx = Vec.to_array probe_idx and bidx = Vec.to_array build_idx in
  let m = Array.length pidx in
  Compile.note_rows m;
  note_batch m;
  let bcols =
    match keep with
    | None -> build.cols
    | Some keep -> Array.map (fun j -> build.cols.(j)) keep
  in
  {
    cols = Array.append (gather_cols prefix.cols pidx) (gather_cols bcols bidx);
    sel = All m;
    srcs = gather_srcs prefix.srcs pidx @ gather_srcs build.srcs bidx;
  }

(* Nested-loop cross product, probe-major like the row path. *)
let join_nested (prefix : batch) (build : batch) ~(keep : int array option) :
    batch =
  let probe_idx = Vec.create ~dummy:0 () in
  let build_idx = Vec.create ~dummy:0 () in
  sel_iter
    (fun q ->
      sel_iter
        (fun p ->
          Vec.push probe_idx q;
          Vec.push build_idx p)
        build.sel)
    prefix.sel;
  let pidx = Vec.to_array probe_idx and bidx = Vec.to_array build_idx in
  let m = Array.length pidx in
  Compile.note_rows m;
  note_batch m;
  let bcols =
    match keep with
    | None -> build.cols
    | Some keep -> Array.map (fun j -> build.cols.(j)) keep
  in
  {
    cols = Array.append (gather_cols prefix.cols pidx) (gather_cols bcols bidx);
    sel = All m;
    srcs = gather_srcs prefix.srcs pidx @ gather_srcs build.srcs bidx;
  }

(* Finish ----------------------------------------------------------------- *)

let row_at (b : batch) (pos : int) : Value.t array =
  Array.map (fun col -> col.(pos)) b.cols

let src_at (b : batch) (pos : int) : (int * int) list =
  List.map (fun sc -> (sc.slot, sc.tids.(pos))) b.srcs

(* Materialize the batch's live rows as annotated rows, in selection
   order. Lineage is off by routing (lineage runs stay on the row
   path). *)
let arows_of_batch (b : batch) : Compile.arow list =
  let out = ref [] in
  sel_iter
    (fun pos ->
      out :=
        { Compile.vals = row_at b pos; lin = Lineage.off; src = src_at b pos }
        :: !out)
    b.sel;
  List.rev !out

(* Group + aggregate + HAVING over the final batch, producing the same
   (representative, aggregates) pairs as [Compile.compile_produce]:
   canonical group keys, first-encounter group order, members in row
   order — and for the ungrouped aggregate the row path's reversed
   order, so fold-sensitive aggregates and the last-row representative
   match exactly. Aggregates run [Aggregate.compute] over row indices,
   which is the row path's own accumulation code. *)
let produce_batch (f : Plan.finish) : batch -> (Compile.arow * Value.t array) list
    =
  let gkeys = List.map compile_bexpr f.Plan.group_by in
  let grouped = f.Plan.group_by <> [] in
  let aggcs =
    Array.map
      (fun (a : Plan.agg_spec) ->
        ( a.Plan.agg,
          a.Plan.distinct_agg,
          match a.Plan.arg with
          | None -> None
          | Some p -> Some (compile_bexpr p) ))
      f.Plan.aggs
  in
  let having = Option.map Compile.compile_expr f.Plan.having in
  fun (b : batch) ->
    let group_list : int list list =
      if not grouped then begin
        let acc = ref [] in
        sel_iter (fun pos -> acc := pos :: !acc) b.sel;
        [ !acc ]
      end
      else begin
        match gkeys with
        | [ gk ] ->
          (* Single-column key: group on the {!Value} directly —
             [Value.equal]/[Value.hash] agree with canonical-key
             equality on single values, so the groups and their
             first-encounter order are identical to the string path
             without the per-row key encoding. *)
          let ev = gk b.cols in
          let groups : int list ref VTbl.t = VTbl.create 64 in
          let order = ref [] in
          sel_iter
            (fun pos ->
              let k = ev pos in
              match VTbl.find_opt groups k with
              | Some cell -> cell := pos :: !cell
              | None ->
                let cell = ref [ pos ] in
                VTbl.add groups k cell;
                order := cell :: !order)
            b.sel;
          List.rev_map (fun cell -> List.rev !cell) !order
        | _ ->
          let evs = List.map (fun bx -> bx b.cols) gkeys in
          let groups : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
          let order = ref [] in
          sel_iter
            (fun pos ->
              let key =
                Value.canonical_key_of_array
                  (Array.of_list (List.map (fun ev -> ev pos) evs))
              in
              match Hashtbl.find_opt groups key with
              | Some cell -> cell := pos :: !cell
              | None ->
                let cell = ref [ pos ] in
                Hashtbl.add groups key cell;
                order := cell :: !order)
            b.sel;
          List.rev_map (fun cell -> List.rev !cell) !order
      end
    in
    List.filter_map
      (fun members ->
        let aggs =
          Array.map
            (fun (agg, distinct, arg) ->
              let eval_arg =
                match arg with
                | None -> fun (_ : int) -> Value.Int 1
                | Some bx ->
                  let ev = bx b.cols in
                  fun pos -> ev pos
              in
              Aggregate.compute agg ~distinct ~eval_arg members)
            aggcs
        in
        let merged =
          match members with
          | pos :: _ ->
            (* src is [] here: aggregated + track_src routes to rows. *)
            { Compile.vals = row_at b pos; lin = Lineage.off; src = [] }
          | [] -> { Compile.vals = [||]; lin = Lineage.empty; src = [] }
        in
        let keep =
          match having with
          | None -> true
          | Some h -> Value.to_bool (h merged.Compile.vals aggs)
        in
        if keep then Some (merged, aggs) else None)
      group_list

(* Pipeline --------------------------------------------------------------- *)

let rec compile_route (cat : Catalog.t)
    (shared : Compile.arow list Shared_cache.t option)
    (shared_batch : batch Shared_cache.t option) (opts : Compile.opts)
    (route : Plan.route) (q : Plan.query) : Compile.t =
  match route, q with
  | Plan.Route_batch, Plan.Select sp ->
    compile_select_batch cat shared shared_batch opts sp
  | Plan.Route_union { left = rl; right = rr }, Plan.Union { all; left; right }
    ->
    let l = compile_route cat shared shared_batch opts rl left in
    let r = compile_route cat shared shared_batch opts rr right in
    {
      Compile.cols = l.Compile.cols;
      exec = (fun () -> Compile.union_rows ~all (l.Compile.exec ()) (r.Compile.exec ()));
    }
  | (Plan.Route_row | Plan.Route_batch | Plan.Route_union _), _ ->
    (* Routed to rows (or a route/shape mismatch, impossible when the
       route came from [Optimizer.batch_route] on this query). *)
    Atomic.incr row_fallbacks;
    Compile.compile cat ?shared opts q

and compile_select_batch (cat : Catalog.t)
    (shared : Compile.arow list Shared_cache.t option)
    (shared_batch : batch Shared_cache.t option) (opts : Compile.opts)
    (sp : Plan.select_plan) : Compile.t =
  let track = opts.Compile.track_src in
  let nslots = Array.length sp.Plan.slots in
  let scan =
    Array.mapi
      (fun idx (slot : Plan.slot) ->
        let raw =
          match slot.Plan.source with
          | Plan.Scan (name, access) ->
            let table = Catalog.find cat name in
            batch_access table (Table.name table) ~track ~slot:idx access
          | Plan.Shared { tag; table = name; access; preds } -> (
            let table = Catalog.find cat name in
            let raw =
              batch_access table (Table.name table) ~track ~slot:idx access
            in
            let cpreds = List.map compile_bexpr preds in
            let materialize () = filter_conjuncts (raw ()) cpreds in
            match shared_batch with
            | Some cache when not track ->
              (* Lineage is off on this route; source-tid columns are
                 slot-index-specific, so only untracked batches are
                 shared. Generation / table version are read per
                 execution, as for the row cache. *)
              fun () ->
                Shared_cache.find_or_compute cache
                  ~gen:(Catalog.generation cat)
                  ~ver:(Table.ver_mut table) ~tag materialize
            | _ -> materialize)
          | Plan.Sub q ->
            (* Subqueries compile on the row path (they may be routed
               there themselves) and adapt at the slot boundary; source
               tids do not flow out of subqueries, as in the row path. *)
            let c =
              Compile.compile cat ?shared
                { opts with Compile.track_src = false }
                q
            in
            let width = Array.length c.Compile.cols in
            fun () ->
              let rows = c.Compile.exec () in
              let n = List.length rows in
              let cols = Array.init width (fun _ -> Array.make n Value.Null) in
              List.iteri
                (fun i (r : Compile.arow) ->
                  for cidx = 0 to width - 1 do
                    cols.(cidx).(i) <- r.Compile.vals.(cidx)
                  done)
                rows;
              { cols; sel = All n; srcs = [] }
        in
        fun () ->
          let b = raw () in
          note_batch (sel_length b.sel);
          b)
      sp.Plan.slots
  in
  let scan_preds = Array.map (List.map compile_bexpr) sp.Plan.scan_preds in
  let project =
    Array.map
      (fun (slot : Plan.slot) ->
        if Array.length slot.Plan.keep = Array.length slot.Plan.cols then None
        else Some slot.Plan.keep)
      sp.Plan.slots
  in
  let steps =
    Array.map
      (fun (j : Plan.jstep) ->
        ( List.map (fun (p, b) -> (compile_bexpr p, compile_bexpr b)) j.Plan.keys,
          List.map compile_bexpr j.Plan.residual ))
      sp.Plan.joins
  in
  let const_preds = List.map Compile.compile_expr sp.Plan.const_preds in
  let produce_degenerate = Compile.compile_produce sp.Plan.finish in
  let produce =
    if sp.Plan.finish.Plan.aggregated then produce_batch sp.Plan.finish
    else fun b -> List.map (fun r -> (r, [||])) (arows_of_batch b)
  in
  let fin_tail = Compile.compile_finish_tail sp.Plan.finish in
  let cols = Array.of_list sp.Plan.finish.Plan.columns in
  let exec () =
    if not (List.for_all (fun c -> Value.to_bool (c [||] [||])) const_preds)
    then fin_tail (produce_degenerate [])
    else if nslots = 0 then
      fin_tail
        (produce_degenerate
           [ { Compile.vals = [||]; lin = Lineage.empty; src = [] } ])
    else begin
      let joined = ref { cols = [||]; sel = All 0; srcs = [] } in
      for si = 0 to nslots - 1 do
        let b = ref (scan.(si) ()) in
        b := filter_conjuncts !b scan_preds.(si);
        let keys, residual = steps.(si) in
        if si = 0 then begin
          (match project.(0) with
           | None -> ()
           | Some keep ->
             b := { !b with cols = Array.map (fun j -> !b.cols.(j)) keep });
          joined := filter_residual !b residual
        end
        else begin
          let out =
            if keys <> [] then join_hash ~keys !joined !b ~keep:project.(si)
            else join_nested !joined !b ~keep:project.(si)
          in
          joined := filter_residual out residual
        end
      done;
      fin_tail (produce !joined)
    end
  in
  { Compile.cols; exec }

(* Entry point: route per subtree, lower batch subtrees, fall back to the
   row compiler elsewhere. *)
let compile (cat : Catalog.t) ?shared ?shared_batch (opts : Compile.opts)
    (q : Plan.query) : Compile.t =
  let route =
    Optimizer.batch_route ~lineage:opts.Compile.lineage
      ~track_src:opts.Compile.track_src q
  in
  compile_route cat shared shared_batch opts route q
