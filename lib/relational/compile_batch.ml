(** Batch-at-a-time (vectorized) compiler over typed columns.

    A sibling of {!Compile} that lowers batch-routed subtrees
    ({!Optimizer.batch_route}) to columnar operators running directly on
    the typed column store ({!Column}): scans borrow a table's mirror
    views without copying or boxing, filter passes compare unboxed ints
    and floats and dictionary codes against a selection vector, hash
    joins and grouping key on raw ints / codes where the layouts allow
    (falling back to Value-keyed tables for Mixed columns and computed
    keys), and aggregation accumulates per group over row indices.
    Everything downstream of the pipeline — grouping representative
    semantics, projection, DISTINCT, ORDER BY, LIMIT, UNION merge — is
    the row compiler's own closures ({!Compile.compile_produce},
    {!Compile.compile_finish_tail}, {!Compile.union_rows}), so output
    shaping cannot diverge.

    Kernel choice is per {e execution}, not per compilation: a prepared
    plan outlives mutations, and a typed column can demote to Mixed
    between runs, so every binding re-inspects the views it was handed
    ({!Optimizer.cmp_shape} / {!Optimizer.key_field} precompute the
    expression skeletons, the binding picks the kernel).

    Observable behaviour is bit-identical to the row path by
    construction: scan order is heap/tid order; string-constant
    predicates translate the literal through the column dictionary once
    per batch (an absent code is an empty selection without touching the
    rows); the hash joins reproduce the reverse-insertion match order of
    [Hashtbl.add]/[find_all] in probe-major output order, with NULL keys
    matching NULL keys exactly as the row path's canonical "n" key does;
    cross-dictionary joins remap probe codes into the build dictionary's
    code space (memoized per code); multi-column keys use {!Value.Key}
    exactly as the row path does; and scalar evaluation reuses
    {!Compile.compile_expr} closures over a per-execution scratch row,
    so error messages and laziness are the row path's own. Subtrees the
    router keeps on the row path (lineage runs, aggregated
    source-tracking, group-context expressions) fall back to
    {!Compile.compile} wholesale. *)

(* Per-batch statistics, exposed through engine stats / :stats / server
   STATS. Atomic: compiled plans execute concurrently on the engine's
   domain pool. *)
let batches_built = Atomic.make 0
let batch_rows = Atomic.make 0
let row_fallbacks = Atomic.make 0

(* Rows-per-batch histogram: < 16, < 256, < 4096, < 65536, >= 65536. *)
let hist_bounds = [| 16; 256; 4096; 65536 |]
let hist = Array.init (Array.length hist_bounds + 1) (fun _ -> Atomic.make 0)

let note_batch n =
  Atomic.incr batches_built;
  ignore (Atomic.fetch_and_add batch_rows n);
  let rec bucket i =
    if i >= Array.length hist_bounds || n < hist_bounds.(i) then i
    else bucket (i + 1)
  in
  Atomic.incr hist.(bucket 0)

let hist_snapshot () = Array.map Atomic.get hist

let reset_stats () =
  Atomic.set batches_built 0;
  Atomic.set batch_rows 0;
  Atomic.set row_fallbacks 0;
  Array.iter (fun c -> Atomic.set c 0) hist

(* Batches ---------------------------------------------------------------- *)

(* Which positions of the backing columns are live, in output order.
   [All n] avoids materializing the identity selection for fresh scans
   (the common case on large log relations). *)
type selv = All of int | Chosen of int array

(* A source-tid column for [track_src] runs: tids parallel to the
   backing columns, tagged with the FROM-slot index they annotate. *)
type src_col = { slot : int; tids : int array }

(* A column batch. [cols] are typed views over backing arrays — possibly
   borrowed zero-copy from a table's columnar mirror, so only positions
   reached through [sel] are meaningful. [srcs] is in ascending slot
   order. *)
type batch = { cols : Column.view array; sel : selv; srcs : src_col list }

let sel_length = function All n -> n | Chosen a -> Array.length a

let sel_iter f = function
  | All n ->
    for i = 0 to n - 1 do
      f i
    done
  | Chosen a -> Array.iter f a

(* Shared boxed booleans so the boxing accessors never allocate for
   BOOL cells. *)
let vtrue = Value.Bool true
let vfalse = Value.Bool false

(* Positional boxed read, specialized once per view (the typed kernels
   below bypass this; it feeds the scalar-closure fallback and row
   materialization). *)
let getter (v : Column.view) : int -> Value.t =
  match v with
  | Column.V_int (a, nulls) ->
    if Bitvec.count nulls = 0 then fun ri -> Value.Int a.(ri)
    else fun ri -> if Bitvec.get nulls ri then Value.Null else Value.Int a.(ri)
  | Column.V_float (a, nulls) ->
    if Bitvec.count nulls = 0 then fun ri -> Value.Float a.(ri)
    else fun ri -> if Bitvec.get nulls ri then Value.Null else Value.Float a.(ri)
  | Column.V_bool a -> (
    fun ri -> match a.(ri) with 0 -> vfalse | 1 -> vtrue | _ -> Value.Null)
  | Column.V_str (codes, d) ->
    fun ri ->
      let c = codes.(ri) in
      if c < 0 then Value.Null else Value.Str (Column.dict_string d c)
  | Column.V_mixed a -> fun ri -> a.(ri)

(* Expressions ------------------------------------------------------------ *)

(* A positional evaluator: bind to a batch's columns once per execution,
   then evaluate at row positions. *)
type bexpr = Column.view array -> int -> Value.t

let rec add_fields acc (p : Plan.pexpr) =
  match p with
  | Plan.Field i | Plan.Rep_field i -> if List.mem i acc then acc else i :: acc
  | Plan.Const _ | Plan.Agg_ref _ | Plan.Agg_outside | Plan.Exec _ -> acc
  | Plan.Binop (_, a, b) -> add_fields (add_fields acc a) b
  | Plan.Unop (_, a) -> add_fields acc a
  | Plan.Fn (_, args) -> List.fold_left add_fields acc args
  | Plan.Case (branches, default) ->
    let acc =
      List.fold_left
        (fun acc (c, v) -> add_fields (add_fields acc c) v)
        acc branches
    in
    (match default with None -> acc | Some d -> add_fields acc d)

(* Bare fields and constants evaluate straight off the views. Anything
   richer reuses the row compiler's scalar closure over a scratch row
   refilled with just the fields the expression reads — semantics
   (dispatch, laziness, error messages) are therefore shared code, at
   the cost of a few array stores per row. The scratch row is allocated
   at column-binding time, i.e. per execution, because compiled plans
   run concurrently across domains. *)
let rec compile_bexpr (p : Plan.pexpr) : bexpr =
  match p with
  | Plan.Field i -> fun cols -> getter cols.(i)
  | Plan.Const v -> fun _ _ -> v
  | Plan.Binop
      ( ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op),
        ((Plan.Field _ | Plan.Const _) as a),
        ((Plan.Field _ | Plan.Const _) as b) ) ->
    (* Comparisons that must yield a boxed result (projections, CASE
       conditions) dispatch through the row path's own [Eval.compare_op]
       — same semantics, no scratch-row copy. Filter positions use the
       unboxed predicate compiler below instead. *)
    let ba = compile_bexpr a and bb = compile_bexpr b in
    fun cols ->
      let ea = ba cols and eb = bb cols in
      fun ri -> Eval.compare_op op (ea ri) (eb ri)
  | _ ->
    let ce = Compile.compile_expr p in
    let used = Array.of_list (add_fields [] p) in
    fun cols ->
      let scratch = Array.make (Array.length cols) Value.Null in
      let srcs = Array.map (fun i -> getter cols.(i)) used in
      fun ri ->
        for k = 0 to Array.length used - 1 do
          scratch.(used.(k)) <- (Array.unsafe_get srcs k) ri
        done;
        ce scratch [||]

(* Predicates ------------------------------------------------------------- *)

(* A predicate bound to a batch: either decided for every row at binding
   time (a string constant absent from the dictionary, a cross-type
   comparison) or an unboxed per-row test. *)
type pred = P_const of bool | P_fun of (int -> bool)

(* A predicate compiler: bind to a batch's views, get a [pred]. *)
type bpred = Column.view array -> pred

(* Short-circuit composition mirroring the row path's AND/OR laziness:
   the left operand is always evaluated (it may raise); the right only
   when the left doesn't decide. *)
let pred_and pa pb =
  match pa, pb with
  | P_const false, _ -> P_const false
  | P_const true, p -> p
  | P_fun f, P_const b -> P_fun (fun ri -> f ri && b)
  | P_fun f, P_fun g -> P_fun (fun ri -> f ri && g ri)

let pred_or pa pb =
  match pa, pb with
  | P_const true, _ -> P_const true
  | P_const false, p -> p
  | P_fun f, P_const b -> P_fun (fun ri -> f ri || b)
  | P_fun f, P_fun g -> P_fun (fun ri -> f ri || g ri)

let pred_not = function
  | P_const b -> P_const (not b)
  | P_fun f -> P_fun (fun ri -> not (f ri))

let op_test (op : Ast.binop) : int -> bool =
  match op with
  | Ast.Eq -> fun c -> c = 0
  | Ast.Neq -> fun c -> c <> 0
  | Ast.Lt -> fun c -> c < 0
  | Ast.Le -> fun c -> c <= 0
  | Ast.Gt -> fun c -> c > 0
  | Ast.Ge -> fun c -> c >= 0
  | _ -> assert false

(* Total-order float compare matching [Float.compare] (NaN below every
   number and equal to itself; [-0. = 0.]), on unboxed operands. *)
let fcmp (x : float) (y : float) : int =
  if x < y then -1
  else if x > y then 1
  else if x = y then 0
  else if Float.is_nan x then if Float.is_nan y then 0 else -1
  else 1

let wrap_null (nulls : Bitvec.t) (f : int -> bool) : pred =
  if Bitvec.count nulls = 0 then P_fun f
  else P_fun (fun ri -> (not (Bitvec.get nulls ri)) && f ri)

(* field OP int-constant over an unboxed int column. *)
let int_cmp_const (op : Ast.binop) (a : int array) (k : int) : int -> bool =
  match op with
  | Ast.Eq -> fun ri -> a.(ri) = k
  | Ast.Neq -> fun ri -> a.(ri) <> k
  | Ast.Lt -> fun ri -> a.(ri) < k
  | Ast.Le -> fun ri -> a.(ri) <= k
  | Ast.Gt -> fun ri -> a.(ri) > k
  | Ast.Ge -> fun ri -> a.(ri) >= k
  | _ -> assert false

(* BOOL columns store 0 / 1 / 2 (NULL); [Bool.compare] is int compare on
   0/1, and 2 must fail every comparison. Guards are only needed where 2
   wouldn't fail the int test by itself. *)
let bool_cmp_const (op : Ast.binop) (a : int array) (b : bool) : int -> bool =
  let k = if b then 1 else 0 in
  match op with
  | Ast.Eq -> fun ri -> a.(ri) = k
  | Ast.Neq ->
    fun ri ->
      let x = a.(ri) in
      x <> 2 && x <> k
  | Ast.Lt -> fun ri -> a.(ri) < k
  | Ast.Le -> fun ri -> a.(ri) <= k
  | Ast.Gt ->
    fun ri ->
      let x = a.(ri) in
      x <> 2 && x > k
  | Ast.Ge ->
    fun ri ->
      let x = a.(ri) in
      x <> 2 && x >= k
  | _ -> assert false

(* field OP string-constant over dictionary codes: equality translates
   the literal into the dictionary once per binding — absent means no
   row can match, an empty selection without touching the rows. The
   ordering operators precompute one verdict per interned string (codes
   are dense), so the per-row test is a table lookup. NULL is the -1
   code, below every real code, so it fails every test for free except
   NEQ's explicit guard. *)
let str_cmp_const (op : Ast.binop) (codes : int array) (d : Column.dict)
    (s : string) : pred =
  match op with
  | Ast.Eq -> (
    match Column.dict_find d s with
    | None -> P_const false
    | Some c -> P_fun (fun ri -> codes.(ri) = c))
  | Ast.Neq -> (
    match Column.dict_find d s with
    | None -> P_fun (fun ri -> codes.(ri) >= 0)
    | Some c ->
      P_fun
        (fun ri ->
          let x = codes.(ri) in
          x >= 0 && x <> c))
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    let t = op_test op in
    let ok =
      Array.init (Column.dict_size d) (fun c ->
          t (String.compare (Column.dict_string d c) s))
    in
    P_fun
      (fun ri ->
        let x = codes.(ri) in
        x >= 0 && Array.unsafe_get ok x)
  | _ -> assert false

(* Non-null test per layout, for comparisons whose outcome is constant
   on every non-null row (cross-type ranks). *)
let nonnull_pred (v : Column.view) : pred =
  match v with
  | Column.V_int (_, nulls) | Column.V_float (_, nulls) ->
    if Bitvec.count nulls = 0 then P_const true
    else P_fun (fun ri -> not (Bitvec.get nulls ri))
  | Column.V_bool a -> P_fun (fun ri -> a.(ri) <> 2)
  | Column.V_str (codes, _) -> P_fun (fun ri -> codes.(ri) >= 0)
  | Column.V_mixed a -> P_fun (fun ri -> not (Value.is_null a.(ri)))

(* [Value.compare]'s type ranks (NULL handled before this point). *)
let rank_of_view = function
  | Column.V_bool _ -> 1
  | Column.V_int _ | Column.V_float _ -> 2
  | Column.V_str _ -> 3
  | Column.V_mixed _ -> assert false

let rank_of_const = function
  | Value.Bool _ -> 1
  | Value.Int _ | Value.Float _ -> 2
  | Value.Str _ -> 3
  | Value.Null -> assert false

(* field OP constant, semantics of
   [Value.to_bool (Eval.compare_op op cell const)]: false when either
   side is NULL, [Value.compare] otherwise. *)
let bind_cmp_const (op : Ast.binop) (v : Column.view) (k : Value.t) : pred =
  match v, k with
  | _, Value.Null -> P_const false
  | Column.V_int (a, nulls), Value.Int ki ->
    wrap_null nulls (int_cmp_const op a ki)
  | Column.V_int (a, nulls), Value.Float kf ->
    let t = op_test op in
    wrap_null nulls (fun ri -> t (fcmp (float_of_int a.(ri)) kf))
  | Column.V_float (a, nulls), Value.Int ki ->
    let t = op_test op and kf = float_of_int ki in
    wrap_null nulls (fun ri -> t (fcmp a.(ri) kf))
  | Column.V_float (a, nulls), Value.Float kf ->
    let t = op_test op in
    wrap_null nulls (fun ri -> t (fcmp a.(ri) kf))
  | Column.V_bool a, Value.Bool b -> P_fun (bool_cmp_const op a b)
  | Column.V_str (codes, d), Value.Str s -> str_cmp_const op codes d s
  | Column.V_mixed a, k ->
    (* Boxed fallback: the row path's own comparison dispatch, so the
       fallback cannot drift semantically from [Eval.compare_op]. *)
    P_fun (fun ri -> Value.to_bool (Eval.compare_op op a.(ri) k))
  | (Column.V_int _ | Column.V_float _ | Column.V_bool _ | Column.V_str _), k
    ->
    (* Cross-type comparison: [Value.compare] is rank order, constant
       across the column, so the pass degenerates to a non-null test or
       an empty selection. *)
    if op_test op (Int.compare (rank_of_view v) (rank_of_const k)) then
      nonnull_pred v
    else P_const false

(* field OP field. The typed pairings compare unboxed; same-dictionary
   string equality is code equality; everything else (including
   cross-type pairings, which still have per-row NULL structure) goes
   through the boxed getters. *)
let bind_cmp_ff (op : Ast.binop) (va : Column.view) (vb : Column.view) : pred =
  match va, vb with
  | Column.V_int (a, _), Column.V_int (b, _) ->
    let base =
      match op with
      | Ast.Eq -> fun ri -> a.(ri) = b.(ri)
      | Ast.Neq -> fun ri -> a.(ri) <> b.(ri)
      | Ast.Lt -> fun ri -> a.(ri) < b.(ri)
      | Ast.Le -> fun ri -> a.(ri) <= b.(ri)
      | Ast.Gt -> fun ri -> a.(ri) > b.(ri)
      | Ast.Ge -> fun ri -> a.(ri) >= b.(ri)
      | _ -> assert false
    in
    pred_and (pred_and (nonnull_pred va) (nonnull_pred vb)) (P_fun base)
  | Column.V_int (a, _), Column.V_float (b, _) ->
    let t = op_test op in
    pred_and
      (pred_and (nonnull_pred va) (nonnull_pred vb))
      (P_fun (fun ri -> t (fcmp (float_of_int a.(ri)) b.(ri))))
  | Column.V_float (a, _), Column.V_int (b, _) ->
    let t = op_test op in
    pred_and
      (pred_and (nonnull_pred va) (nonnull_pred vb))
      (P_fun (fun ri -> t (fcmp a.(ri) (float_of_int b.(ri)))))
  | Column.V_float (a, _), Column.V_float (b, _) ->
    let t = op_test op in
    pred_and
      (pred_and (nonnull_pred va) (nonnull_pred vb))
      (P_fun (fun ri -> t (fcmp a.(ri) b.(ri))))
  | Column.V_bool a, Column.V_bool b ->
    let t = op_test op in
    P_fun
      (fun ri ->
        let x = a.(ri) and y = b.(ri) in
        x <> 2 && y <> 2 && t (x - y))
  | Column.V_str (ca, da), Column.V_str (cb, db) ->
    if da == db && op = Ast.Eq then
      (* Same dictionary: interning makes code equality string
         equality (NULL's -1 fails against any real code and the
         other side's NULL is caught by [x >= 0]). *)
      P_fun
        (fun ri ->
          let x = ca.(ri) in
          x >= 0 && x = cb.(ri))
    else
      let t = op_test op in
      P_fun
        (fun ri ->
          let x = ca.(ri) and y = cb.(ri) in
          x >= 0 && y >= 0
          && t
               (String.compare (Column.dict_string da x)
                  (Column.dict_string db y)))
  | _ ->
    (* Mixed (and rank-constant cross-type) pairings: boxed getters
       through the row path's comparison dispatch. *)
    let ga = getter va and gb = getter vb in
    P_fun (fun ri -> Value.to_bool (Eval.compare_op op (ga ri) (gb ri)))

(* Predicate compiler: the comparison skeleton is classified once at
   compile time ({!Optimizer.cmp_shape}); binding inspects the views and
   picks the unboxed kernel, with Mixed and opaque shapes falling back
   to the scalar closure (whose laziness and error behaviour is the row
   path's own). *)
let rec compile_bpred (p : Plan.pexpr) : bpred =
  match Optimizer.cmp_shape p with
  | Optimizer.Cmp_field_const (op, i, v) ->
    fun cols -> bind_cmp_const op cols.(i) v
  | Optimizer.Cmp_field_field (op, i, j) ->
    fun cols -> bind_cmp_ff op cols.(i) cols.(j)
  | Optimizer.Cmp_opaque -> (
    match p with
    | Plan.Const v ->
      let b = Value.to_bool v in
      fun _ -> P_const b
    | Plan.Binop (Ast.And, a, b) ->
      let pa = compile_bpred a and pb = compile_bpred b in
      fun cols -> pred_and (pa cols) (pb cols)
    | Plan.Binop (Ast.Or, a, b) ->
      let pa = compile_bpred a and pb = compile_bpred b in
      fun cols -> pred_or (pa cols) (pb cols)
    | Plan.Unop (Ast.Not, a) ->
      let pa = compile_bpred a in
      fun cols -> pred_not (pa cols)
    | Plan.Field i -> (
      fun cols ->
        match cols.(i) with
        | Column.V_bool a -> P_fun (fun ri -> a.(ri) = 1)
        | v ->
          let g = getter v in
          P_fun (fun ri -> Value.to_bool (g ri)))
    | _ ->
      let bx = compile_bexpr p in
      fun cols ->
        let ev = bx cols in
        P_fun (fun ri -> Value.to_bool (ev ri)))

(* Filters ---------------------------------------------------------------- *)

(* One selection-refinement pass for one bound predicate. A
   binding-time verdict skips the row loop entirely — the "code absent
   from the dictionary" fast path lands here as [P_const false]. *)
let filter_pred (b : batch) (p : pred) : batch =
  match p with
  | P_const true -> b
  | P_const false -> { b with sel = Chosen [||] }
  | P_fun f ->
    let n = sel_length b.sel in
    let out = Array.make n 0 in
    let j = ref 0 in
    sel_iter
      (fun ri ->
        if f ri then begin
          out.(!j) <- ri;
          incr j
        end)
      b.sel;
    { b with sel = Chosen (if !j = n then out else Array.sub out 0 !j) }

(* Pushed-down predicates: one pass per conjunct, the row path's
   [scan_preds] evaluation order. *)
let filter_conjuncts (b : batch) (preds : bpred list) : batch =
  List.fold_left (fun b bp -> filter_pred b (bp b.cols)) b preds

(* Join residuals: a single pass evaluating all conjuncts per row with
   short-circuit, the row path's [List.for_all] order (conjuncts are
   walked in order per row, so an erroring conjunct fires for exactly
   the rows the row path would have reached it on). *)
let filter_residual (b : batch) (preds : bpred list) : batch =
  match preds with
  | [] -> b
  | _ ->
    let ps = List.map (fun bp -> bp b.cols) preds in
    let rec row_ok ps ri =
      match ps with
      | [] -> true
      | P_const c :: rest -> c && row_ok rest ri
      | P_fun f :: rest -> f ri && row_ok rest ri
    in
    let n = sel_length b.sel in
    let out = Array.make n 0 in
    let j = ref 0 in
    sel_iter
      (fun ri ->
        if row_ok ps ri then begin
          out.(!j) <- ri;
          incr j
        end)
      b.sel;
    { b with sel = Chosen (if !j = n then out else Array.sub out 0 !j) }

(* Scans ------------------------------------------------------------------ *)

(* Transpose a row list (index probe results, columnar-less tables) into
   boxed Mixed views — these paths have no typed mirror to borrow. *)
let batch_of_rows ~track ~slot ~width (rows : Row.t list) : batch =
  let n = List.length rows in
  let cols = Array.init width (fun _ -> Array.make n Value.Null) in
  let tids = if track then Array.make n 0 else [||] in
  List.iteri
    (fun i row ->
      let cells = Row.cells row in
      for c = 0 to width - 1 do
        cols.(c).(i) <- cells.(c)
      done;
      if track then tids.(i) <- Row.tid row)
    rows;
  {
    cols = Array.map (fun a -> Column.V_mixed a) cols;
    sel = All n;
    srcs = (if track then [ { slot; tids } ] else []);
  }

(* Index probe results as a batch, without materializing rows: the
   probe's tids (ascending, same order contract as [Table.index_lookup])
   become a selection vector over the mirror's zero-copy views via a
   single merge walk of the two ascending tid sequences. A tid absent
   from the mirror is skipped, matching the row path's stale-tid
   filtering. *)
let batch_of_sorted_tids store ~track ~slot (tids : int array) : batch =
  let mt = Column.tids store in
  let n = Column.length store in
  let buf = Array.make (Array.length tids) 0 in
  let k = ref 0 and p = ref 0 in
  Array.iter
    (fun tid ->
      while !p < n && mt.(!p) < tid do
        incr p
      done;
      if !p < n && mt.(!p) = tid then begin
        buf.(!k) <- !p;
        incr k
      end)
    tids;
  {
    cols = Column.views store;
    sel = Chosen (if !k = Array.length buf then buf else Array.sub buf 0 !k);
    srcs = (if track then [ { slot; tids = mt } ] else []);
  }

(* One scan closure per access path, mirroring [Compile.access_scan]:
   index probes count against {!Compile.index_probes} and NULL keys /
   bounds match nothing. Tables with a columnar mirror are scanned
   zero-copy; others transpose per execution. *)
let batch_access (table : Table.t) (tname : string) ~track ~slot
    (access : Plan.access) : unit -> batch =
  let width = Schema.arity (Table.schema table) in
  match access with
  | Plan.Heap -> (
    fun () ->
      match Table.columnar table with
      | Some store ->
        let n = Column.length store in
        {
          cols = Column.views store;
          sel = All n;
          srcs =
            (if track then [ { slot; tids = Column.tids store } ] else []);
        }
      | None ->
        let rows = List.rev (Table.fold (fun acc r -> r :: acc) [] table) in
        batch_of_rows ~track ~slot ~width rows)
  | Plan.Delta -> (
    (* The watermark is read per execution, like the row path: one
       compiled plan keeps scanning the current delta suffix as the
       engine advances [Table.delta_base]. *)
    fun () ->
      match Table.columnar table with
      | Some store ->
        let n = Column.length store in
        let lo = Column.delta_start store ~base:(Table.delta_base table) in
        {
          cols = Column.views store;
          sel =
            (if lo = 0 then All n
             else Chosen (Array.init (n - lo) (fun k -> lo + k)));
          srcs =
            (if track then [ { slot; tids = Column.tids store } ] else []);
        }
      | None ->
        let rows =
          List.rev (Table.fold_delta (fun acc r -> r :: acc) [] table)
        in
        batch_of_rows ~track ~slot ~width rows)
  | Plan.Below -> (
    (* Complement of [Delta]: the prefix strictly below the watermark. *)
    fun () ->
      match Table.columnar table with
      | Some store ->
        let n = Column.length store in
        let lo = Column.delta_start store ~base:(Table.delta_base table) in
        {
          cols = Column.views store;
          sel = (if lo = n then All n else Chosen (Array.init lo (fun k -> k)));
          srcs =
            (if track then [ { slot; tids = Column.tids store } ] else []);
        }
      | None ->
        let rows =
          List.rev (Table.fold_below (fun acc r -> r :: acc) [] table)
        in
        batch_of_rows ~track ~slot ~width rows)
  | Plan.Index_eq { index; key } ->
    let ix =
      match Table.find_index table index with
      | Some ix -> ix
      | None -> Errors.catalog_error "no index %s on table %s" index tname
    in
    let ckey = Compile.compile_expr key in
    fun () ->
      Atomic.incr Compile.index_probes;
      let v = ckey [||] [||] in
      (* [col = NULL] matches nothing. *)
      (match Table.columnar table with
      | Some store ->
        let tids =
          if Value.is_null v then [||] else Table.index_lookup_tids table ix v
        in
        batch_of_sorted_tids store ~track ~slot tids
      | None ->
        let rows =
          if Value.is_null v then [] else Table.index_lookup table ix v
        in
        batch_of_rows ~track ~slot ~width rows)
  | Plan.Index_range { index; lo; hi } ->
    let ix =
      match Table.find_index table index with
      | Some ix -> ix
      | None -> Errors.catalog_error "no index %s on table %s" index tname
    in
    let kcol = Index.column ix in
    let cbound = Option.map (fun (p, incl) -> (Compile.compile_expr p, incl)) in
    let clo = cbound lo and chi = cbound hi in
    fun () ->
      Atomic.incr Compile.index_probes;
      let eval = Option.map (fun (c, incl) -> (c [||] [||], incl)) in
      let lo = eval clo and hi = eval chi in
      (* A NULL bound makes the comparison false for every row. *)
      let null_bound =
        match lo, hi with
        | Some (v, _), _ when Value.is_null v -> true
        | _, Some (v, _) when Value.is_null v -> true
        | _ -> false
      in
      (match Table.columnar table with
      | Some store ->
        (* The row path re-sorts probe results into tid order, so a
           range probe is observably a bound-filtered scan in heap
           order — over the mirror that is one selection pass on the
           key column ([Index.range]'s bound semantics, NULL-keyed rows
           excluded), skipping the index walk, row fetch and re-sort.
           The bounds bind through the same typed comparators as
           filter passes, so the scan compares unboxed cells (or
           dictionary-translated codes) rather than boxed values.
           Selective ranges trade an O(matched) walk for O(rows) cheap
           compares; the engine's range probes are watermark-shaped and
           typically match most of the log. *)
        let kview = Column.view store kcol in
        let n = Column.length store in
        let buf = Array.make n 0 in
        let k = ref 0 in
        if not null_bound then begin
          let above =
            match lo with
            | None -> P_const true
            | Some (b, incl) ->
              bind_cmp_const (if incl then Ast.Ge else Ast.Gt) kview b
          in
          let below =
            match hi with
            | None -> P_const true
            | Some (b, incl) ->
              bind_cmp_const (if incl then Ast.Le else Ast.Lt) kview b
          in
          match pred_and (pred_and (nonnull_pred kview) above) below with
          | P_const false -> ()
          | P_const true ->
            for p = 0 to n - 1 do
              buf.(p) <- p
            done;
            k := n
          | P_fun f ->
            for p = 0 to n - 1 do
              if f p then begin
                buf.(!k) <- p;
                incr k
              end
            done
        end;
        {
          cols = Column.views store;
          sel = Chosen (if !k = n then buf else Array.sub buf 0 !k);
          srcs =
            (if track then [ { slot; tids = Column.tids store } ] else []);
        }
      | None ->
        let rows =
          if null_bound then [] else Table.index_range table ix ?lo ?hi ()
        in
        batch_of_rows ~track ~slot ~width rows)

(* Joins ------------------------------------------------------------------ *)

module VTbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* Multi-column keys: value arrays through {!Value.Key}, the same tables
   the row path keys its joins and groups on. *)
module KTbl = Hashtbl.Make (Value.Key)

(* Int-keyed tables for the unboxed join / group kernels. The hash is a
   single multiply (Fibonacci hashing) instead of [Hashtbl.hash]'s
   polymorphic runtime call — the probe loop touches it once per row. *)
module ITbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash x = (x * 0x2545F4914F6CDD1D) lsr 12
end)

(* Typed gathers: join outputs copy the matched positions into fresh
   arrays of the same layout, so the output batch stays unboxed and the
   dictionary handle travels with the codes. *)
let gather_ints (a : int array) (idx : int array) : int array =
  let n = Array.length idx in
  let out = Array.make n 0 in
  for k = 0 to n - 1 do
    Array.unsafe_set out k (Array.unsafe_get a (Array.unsafe_get idx k))
  done;
  out

let gather_floats (a : float array) (idx : int array) : float array =
  let n = Array.length idx in
  if n = 0 then [||]
  else begin
    let out = Array.make n 0.0 in
    for k = 0 to n - 1 do
      Array.unsafe_set out k (Array.unsafe_get a (Array.unsafe_get idx k))
    done;
    out
  end

let gather_bitvec (nulls : Bitvec.t) (idx : int array) : Bitvec.t =
  if Bitvec.count nulls = 0 then Bitvec.empty
  else begin
    let out = Bitvec.create () in
    Array.iter (fun i -> Bitvec.push out (Bitvec.get nulls i)) idx;
    out
  end

let gather_view (v : Column.view) (idx : int array) : Column.view =
  match v with
  | Column.V_int (a, nulls) ->
    Column.V_int (gather_ints a idx, gather_bitvec nulls idx)
  | Column.V_float (a, nulls) ->
    Column.V_float (gather_floats a idx, gather_bitvec nulls idx)
  | Column.V_bool a -> Column.V_bool (gather_ints a idx)
  | Column.V_str (codes, d) -> Column.V_str (gather_ints codes idx, d)
  | Column.V_mixed a -> Column.V_mixed (Array.map (fun i -> a.(i)) idx)

let gather_cols (cols : Column.view array) (idx : int array) =
  Array.map (fun v -> gather_view v idx) cols

let gather_srcs (srcs : src_col list) (idx : int array) =
  List.map (fun sc -> { sc with tids = gather_ints sc.tids idx }) srcs

(* A join key: the compile-time skeleton (bare-field indices when the
   key is a column reference) plus the generic evaluators. *)
type jkey = {
  pf : int option;  (** probe-side field, when the key is a bare column *)
  bf : int option;  (** build-side field likewise *)
  cp : bexpr;
  cb : bexpr;
}

let never (_ : int) = false

(* Unboxed single-key join plan over a view pairing: per-side
   (is_null, int key) accessors in a shared key space, or [None] when
   the pairing needs the boxed Value table ([Value.equal]'s cross-type
   Int/Float matching, Mixed columns, computed keys). NULL keys match
   NULL keys, as the row path's canonical "n" key does: BOOL's 2 and
   TEXT's -1 encode that in-band; INT NULLs go through a dedicated
   chain. Cross-dictionary string joins translate probe codes into the
   build dictionary's space, memoized per code; a string absent from
   the build dictionary maps to -2, which no build key can equal. *)
let typed_keys (vp : Column.view) (vb : Column.view) :
    ((int -> bool) * (int -> int) * (int -> bool) * (int -> int)) option =
  match vp, vb with
  | Column.V_int (pa, pn), Column.V_int (ba, bn) ->
    let pnull =
      if Bitvec.count pn = 0 then never else fun q -> Bitvec.get pn q
    in
    let bnull =
      if Bitvec.count bn = 0 then never else fun p -> Bitvec.get bn p
    in
    Some (pnull, (fun q -> pa.(q)), bnull, fun p -> ba.(p))
  | Column.V_bool pa, Column.V_bool ba ->
    Some (never, (fun q -> pa.(q)), never, fun p -> ba.(p))
  | Column.V_str (pc, pd), Column.V_str (bc, bd) ->
    if pd == bd then Some (never, (fun q -> pc.(q)), never, fun p -> bc.(p))
    else begin
      let memo = Array.make (max 1 (Column.dict_size pd)) min_int in
      let remap x =
        if x < 0 then -1
        else begin
          let m = Array.unsafe_get memo x in
          if m <> min_int then m
          else begin
            let m =
              match Column.dict_find bd (Column.dict_string pd x) with
              | Some c -> c
              | None -> -2
            in
            memo.(x) <- m;
            m
          end
        end
      in
      Some (never, (fun q -> remap pc.(q)), never, fun p -> bc.(p))
    end
  | _ -> None

(* Hash join: build on the new slot (full width), probe with the prefix,
   emit (probe, build) position pairs. Per-key chains are built by
   prepending in build order, reproducing [Hashtbl.add] + [find_all]'s
   reverse-insertion match order; probing in prefix order makes the
   output probe-major, exactly the row path's [List.rev !out]. The key
   representation is picked per execution: raw ints / dictionary codes
   when the views allow, the Value table otherwise, {!Value.Key} for
   multi-column keys. *)
let join_hash ~(keys : jkey list) (prefix : batch) (build : batch)
    ~(keep : int array option) : batch =
  let probe_idx = Vec.create ~dummy:0 () in
  let build_idx = Vec.create ~dummy:0 () in
  let emit q p =
    Vec.push probe_idx q;
    Vec.push build_idx p
  in
  let value_join (cp : bexpr) (cb : bexpr) =
    (* Single-column boxed key: [Value.equal] / [Value.hash] agree with
       canonical-key equality on single values (NULL = NULL, integral
       floats = ints), so grouping matches the row path's string keys
       without per-row encoding. *)
    let evb = cb build.cols in
    let tbl : int list ref VTbl.t = VTbl.create (max 16 (sel_length build.sel)) in
    sel_iter
      (fun p ->
        let k = evb p in
        match VTbl.find_opt tbl k with
        | Some cell -> cell := p :: !cell
        | None -> VTbl.add tbl k (ref [ p ]))
      build.sel;
    let evp = cp prefix.cols in
    sel_iter
      (fun q ->
        match VTbl.find_opt tbl (evp q) with
        | None -> ()
        | Some cell -> List.iter (fun p -> emit q p) !cell)
      prefix.sel
  in
  (match keys with
   | [ k ] -> (
     let typed =
       match k.pf, k.bf with
       | Some pi, Some bi -> typed_keys prefix.cols.(pi) build.cols.(bi)
       | _ -> None
     in
     match typed with
     | Some (pnull, pkey, bnull, bkey) ->
       let tbl : int list ref ITbl.t =
         ITbl.create (max 16 (sel_length build.sel))
       in
       let null_chain = ref [] in
       (* find_opt, not find: probe misses are the common case (the
          violation-free join is empty), and a raise per miss costs more
          than the 2-word [Some] per hit. *)
       sel_iter
         (fun p ->
           if bnull p then null_chain := p :: !null_chain
           else
             let k = bkey p in
             match ITbl.find_opt tbl k with
             | Some cell -> cell := p :: !cell
             | None -> ITbl.add tbl k (ref [ p ]))
         build.sel;
       sel_iter
         (fun q ->
           if pnull q then List.iter (fun p -> emit q p) !null_chain
           else
             match ITbl.find_opt tbl (pkey q) with
             | Some cell -> List.iter (fun p -> emit q p) !cell
             | None -> ())
         prefix.sel
     | None -> value_join k.cp k.cb)
   | _ ->
     (* Multi-column key: value tuples through {!Value.Key}, the
        equality the row path implements. *)
     let evbs = List.map (fun k -> k.cb build.cols) keys in
     let tbl : int list ref KTbl.t = KTbl.create (max 16 (sel_length build.sel)) in
     sel_iter
       (fun p ->
         let kv = Array.of_list (List.map (fun ev -> ev p) evbs) in
         match KTbl.find_opt tbl kv with
         | Some cell -> cell := p :: !cell
         | None -> KTbl.add tbl kv (ref [ p ]))
       build.sel;
     let evps = List.map (fun k -> k.cp prefix.cols) keys in
     sel_iter
       (fun q ->
         let kv = Array.of_list (List.map (fun ev -> ev q) evps) in
         match KTbl.find_opt tbl kv with
         | None -> ()
         | Some cell -> List.iter (fun p -> emit q p) !cell)
       prefix.sel);
  let pidx = Vec.to_array probe_idx and bidx = Vec.to_array build_idx in
  let m = Array.length pidx in
  Compile.note_rows m;
  note_batch m;
  let bcols =
    match keep with
    | None -> build.cols
    | Some keep -> Array.map (fun j -> build.cols.(j)) keep
  in
  {
    cols = Array.append (gather_cols prefix.cols pidx) (gather_cols bcols bidx);
    sel = All m;
    srcs = gather_srcs prefix.srcs pidx @ gather_srcs build.srcs bidx;
  }

(* Nested-loop cross product, probe-major like the row path. *)
let join_nested (prefix : batch) (build : batch) ~(keep : int array option) :
    batch =
  let probe_idx = Vec.create ~dummy:0 () in
  let build_idx = Vec.create ~dummy:0 () in
  sel_iter
    (fun q ->
      sel_iter
        (fun p ->
          Vec.push probe_idx q;
          Vec.push build_idx p)
        build.sel)
    prefix.sel;
  let pidx = Vec.to_array probe_idx and bidx = Vec.to_array build_idx in
  let m = Array.length pidx in
  Compile.note_rows m;
  note_batch m;
  let bcols =
    match keep with
    | None -> build.cols
    | Some keep -> Array.map (fun j -> build.cols.(j)) keep
  in
  {
    cols = Array.append (gather_cols prefix.cols pidx) (gather_cols bcols bidx);
    sel = All m;
    srcs = gather_srcs prefix.srcs pidx @ gather_srcs build.srcs bidx;
  }

(* Finish ----------------------------------------------------------------- *)

let row_at (b : batch) (pos : int) : Value.t array =
  Array.map (fun v -> Column.view_value v pos) b.cols

let src_at (b : batch) (pos : int) : (int * int) list =
  List.map (fun sc -> (sc.slot, sc.tids.(pos))) b.srcs

(* Materialize the batch's live rows as annotated rows, in selection
   order. Lineage is off by routing (lineage runs stay on the row
   path). *)
let arows_of_batch (b : batch) : Compile.arow list =
  let out = ref [] in
  sel_iter
    (fun pos ->
      out :=
        { Compile.vals = row_at b pos; lin = Lineage.off; src = src_at b pos }
        :: !out)
    b.sel;
  List.rev !out

(* Unboxed single-column group key over a view: (is_null, int key) with
   the same in-band NULL conventions as the join kernels; [None] falls
   back to the Value-keyed table (floats, whose Int-crossing equality
   the int space cannot express, and Mixed). *)
let typed_group_key (v : Column.view) :
    ((int -> bool) * (int -> int)) option =
  match v with
  | Column.V_int (a, nulls) ->
    let knull =
      if Bitvec.count nulls = 0 then never else fun i -> Bitvec.get nulls i
    in
    Some (knull, fun i -> a.(i))
  | Column.V_bool a -> Some (never, fun i -> a.(i))
  | Column.V_str (codes, _) -> Some (never, fun i -> codes.(i))
  | Column.V_float _ | Column.V_mixed _ -> None

(* Unboxed aggregate accumulation over a NULL-free int column: the same
   folds [Aggregate.compute] performs, minus the per-row boxing. SUM
   starts at the first element (so integer wrap-around is bit-identical
   to [sum_step]), MIN/MAX keep the int order [Value.compare] gives
   ints, AVG divides the int sum exactly as the row path does. *)
let int_agg (agg : Ast.agg) (a : int array) (members : int list) : Value.t =
  match agg, members with
  | Ast.Count_star, _ | Ast.Count, _ -> Value.Int (List.length members)
  | _, [] -> Value.Null
  | Ast.Sum, p :: ps ->
    Value.Int (List.fold_left (fun acc q -> acc + a.(q)) a.(p) ps)
  | Ast.Avg, p :: ps ->
    let n = List.length members in
    let s = List.fold_left (fun acc q -> acc + a.(q)) a.(p) ps in
    Value.Float (float_of_int s /. float_of_int n)
  | Ast.Min, p :: ps ->
    Value.Int
      (List.fold_left (fun m q -> if a.(q) < m then a.(q) else m) a.(p) ps)
  | Ast.Max, p :: ps ->
    Value.Int
      (List.fold_left (fun m q -> if a.(q) > m then a.(q) else m) a.(p) ps)

(* Group + aggregate + HAVING over the final batch, producing the same
   (representative, aggregates) pairs as [Compile.compile_produce]:
   first-encounter group order, members in row order — and for the
   ungrouped aggregate the row path's reversed order, so fold-sensitive
   aggregates and the last-row representative match exactly. Single
   bare-column keys group on raw ints / dictionary codes when the
   layout allows; aggregates over NULL-free int columns fold unboxed,
   everything else runs [Aggregate.compute] over row indices, which is
   the row path's own accumulation code. *)
let produce_batch (f : Plan.finish) : batch -> (Compile.arow * Value.t array) list
    =
  let gkeys = List.map compile_bexpr f.Plan.group_by in
  let gfields = List.map Optimizer.key_field f.Plan.group_by in
  let grouped = f.Plan.group_by <> [] in
  let aggcs =
    Array.map
      (fun (a : Plan.agg_spec) ->
        ( a.Plan.agg,
          a.Plan.distinct_agg,
          (match a.Plan.arg with
          | None -> None
          | Some p -> Optimizer.key_field p),
          match a.Plan.arg with
          | None -> None
          | Some p -> Some (compile_bexpr p) ))
      f.Plan.aggs
  in
  let having = Option.map Compile.compile_expr f.Plan.having in
  fun (b : batch) ->
    let group_list : int list list =
      if not grouped then begin
        let acc = ref [] in
        sel_iter (fun pos -> acc := pos :: !acc) b.sel;
        [ !acc ]
      end
      else begin
        match gkeys, gfields with
        | [ _ ], [ Some fi ] when typed_group_key b.cols.(fi) <> None ->
          (* Single bare-column key on an int-keyable layout: group on
             the raw ints / codes. The NULL group (chained separately
             for INT columns, in-band for BOOL/TEXT) appears at its
             first-encounter position like every other group. *)
          let knull, kkey =
            match typed_group_key b.cols.(fi) with
            | Some kk -> kk
            | None -> assert false
          in
          let groups : int list ref ITbl.t = ITbl.create 64 in
          let null_cell = ref None in
          let order = ref [] in
          sel_iter
            (fun pos ->
              if knull pos then (
                match !null_cell with
                | Some cell -> cell := pos :: !cell
                | None ->
                  let cell = ref [ pos ] in
                  null_cell := Some cell;
                  order := cell :: !order)
              else
                let k = kkey pos in
                match ITbl.find groups k with
                | cell -> cell := pos :: !cell
                | exception Not_found ->
                  let cell = ref [ pos ] in
                  ITbl.add groups k cell;
                  order := cell :: !order)
            b.sel;
          List.rev_map (fun cell -> List.rev !cell) !order
        | [ gk ], _ ->
          (* Single computed / float / Mixed key: group on the {!Value}
             directly — [Value.equal]/[Value.hash] agree with
             canonical-key equality on single values, so the groups and
             their first-encounter order are identical to the string
             path without the per-row key encoding. *)
          let ev = gk b.cols in
          let groups : int list ref VTbl.t = VTbl.create 64 in
          let order = ref [] in
          sel_iter
            (fun pos ->
              let k = ev pos in
              match VTbl.find_opt groups k with
              | Some cell -> cell := pos :: !cell
              | None ->
                let cell = ref [ pos ] in
                VTbl.add groups k cell;
                order := cell :: !order)
            b.sel;
          List.rev_map (fun cell -> List.rev !cell) !order
        | _ ->
          let evs = List.map (fun bx -> bx b.cols) gkeys in
          let groups : int list ref KTbl.t = KTbl.create 64 in
          let order = ref [] in
          sel_iter
            (fun pos ->
              let key = Array.of_list (List.map (fun ev -> ev pos) evs) in
              match KTbl.find_opt groups key with
              | Some cell -> cell := pos :: !cell
              | None ->
                let cell = ref [ pos ] in
                KTbl.add groups key cell;
                order := cell :: !order)
            b.sel;
          List.rev_map (fun cell -> List.rev !cell) !order
      end
    in
    List.filter_map
      (fun members ->
        let aggs =
          Array.map
            (fun (agg, distinct, argf, argc) ->
              match agg with
              | Ast.Count_star -> Value.Int (List.length members)
              | _ -> (
                let typed_col =
                  if distinct then None
                  else
                    match argf with
                    | Some i -> (
                      match b.cols.(i) with
                      | Column.V_int (a, nulls) when Bitvec.count nulls = 0 ->
                        Some a
                      | _ -> None)
                    | None -> None
                in
                match typed_col with
                | Some a -> int_agg agg a members
                | None ->
                  let eval_arg =
                    match argc with
                    | None -> fun (_ : int) -> Value.Int 1
                    | Some bx ->
                      let ev = bx b.cols in
                      fun pos -> ev pos
                  in
                  Aggregate.compute agg ~distinct ~eval_arg members))
            aggcs
        in
        let merged =
          match members with
          | pos :: _ ->
            (* src is [] here: aggregated + track_src routes to rows. *)
            { Compile.vals = row_at b pos; lin = Lineage.off; src = [] }
          | [] -> { Compile.vals = [||]; lin = Lineage.empty; src = [] }
        in
        let keep =
          match having with
          | None -> true
          | Some h -> Value.to_bool (h merged.Compile.vals aggs)
        in
        if keep then Some (merged, aggs) else None)
      group_list

(* Pipeline --------------------------------------------------------------- *)

let rec compile_route (cat : Catalog.t)
    (shared : Compile.arow list Shared_cache.t option)
    (shared_batch : batch Shared_cache.t option) (opts : Compile.opts)
    (route : Plan.route) (q : Plan.query) : Compile.t =
  match route, q with
  | Plan.Route_batch, Plan.Select sp ->
    compile_select_batch cat shared shared_batch opts sp
  | Plan.Route_union { left = rl; right = rr }, Plan.Union { all; left; right }
    ->
    let l = compile_route cat shared shared_batch opts rl left in
    let r = compile_route cat shared shared_batch opts rr right in
    {
      Compile.cols = l.Compile.cols;
      exec = (fun () -> Compile.union_rows ~all (l.Compile.exec ()) (r.Compile.exec ()));
    }
  | (Plan.Route_row | Plan.Route_batch | Plan.Route_union _), _ ->
    (* Routed to rows (or a route/shape mismatch, impossible when the
       route came from [Optimizer.batch_route] on this query). *)
    Atomic.incr row_fallbacks;
    Compile.compile cat ?shared opts q

and compile_select_batch (cat : Catalog.t)
    (shared : Compile.arow list Shared_cache.t option)
    (shared_batch : batch Shared_cache.t option) (opts : Compile.opts)
    (sp : Plan.select_plan) : Compile.t =
  let track = opts.Compile.track_src in
  let nslots = Array.length sp.Plan.slots in
  let scan =
    Array.mapi
      (fun idx (slot : Plan.slot) ->
        let raw =
          match slot.Plan.source with
          | Plan.Scan (name, access) ->
            let table = Catalog.find cat name in
            batch_access table (Table.name table) ~track ~slot:idx access
          | Plan.Shared { tag; table = name; access; preds } -> (
            let table = Catalog.find cat name in
            let raw =
              batch_access table (Table.name table) ~track ~slot:idx access
            in
            let cpreds = List.map compile_bpred preds in
            let materialize () = filter_conjuncts (raw ()) cpreds in
            match shared_batch with
            | Some cache when not track ->
              (* Lineage is off on this route; source-tid columns are
                 slot-index-specific, so only untracked batches are
                 shared. Generation / table version are read per
                 execution, as for the row cache. *)
              fun () ->
                Shared_cache.find_or_compute cache
                  ~gen:(Catalog.generation cat)
                  ~ver:(Table.ver_mut table) ~tag materialize
            | _ -> materialize)
          | Plan.Sub q ->
            (* Subqueries compile on the row path (they may be routed
               there themselves) and adapt at the slot boundary; source
               tids do not flow out of subqueries, as in the row path. *)
            let c =
              Compile.compile cat ?shared
                { opts with Compile.track_src = false }
                q
            in
            let width = Array.length c.Compile.cols in
            fun () ->
              let rows = c.Compile.exec () in
              let n = List.length rows in
              let cols = Array.init width (fun _ -> Array.make n Value.Null) in
              List.iteri
                (fun i (r : Compile.arow) ->
                  for cidx = 0 to width - 1 do
                    cols.(cidx).(i) <- r.Compile.vals.(cidx)
                  done)
                rows;
              {
                cols = Array.map (fun a -> Column.V_mixed a) cols;
                sel = All n;
                srcs = [];
              }
        in
        fun () ->
          let b = raw () in
          note_batch (sel_length b.sel);
          b)
      sp.Plan.slots
  in
  let scan_preds = Array.map (List.map compile_bpred) sp.Plan.scan_preds in
  let project =
    Array.map
      (fun (slot : Plan.slot) ->
        if Array.length slot.Plan.keep = Array.length slot.Plan.cols then None
        else Some slot.Plan.keep)
      sp.Plan.slots
  in
  let steps =
    Array.map
      (fun (j : Plan.jstep) ->
        ( List.map
            (fun (p, b) ->
              {
                pf = Optimizer.key_field p;
                bf = Optimizer.key_field b;
                cp = compile_bexpr p;
                cb = compile_bexpr b;
              })
            j.Plan.keys,
          List.map compile_bpred j.Plan.residual ))
      sp.Plan.joins
  in
  let const_preds = List.map Compile.compile_expr sp.Plan.const_preds in
  let produce_degenerate = Compile.compile_produce sp.Plan.finish in
  let produce =
    if sp.Plan.finish.Plan.aggregated then produce_batch sp.Plan.finish
    else fun b -> List.map (fun r -> (r, [||])) (arows_of_batch b)
  in
  let fin_tail = Compile.compile_finish_tail sp.Plan.finish in
  let cols = Array.of_list sp.Plan.finish.Plan.columns in
  let exec () =
    if not (List.for_all (fun c -> Value.to_bool (c [||] [||])) const_preds)
    then fin_tail (produce_degenerate [])
    else if nslots = 0 then
      fin_tail
        (produce_degenerate
           [ { Compile.vals = [||]; lin = Lineage.empty; src = [] } ])
    else begin
      let joined = ref { cols = [||]; sel = All 0; srcs = [] } in
      for si = 0 to nslots - 1 do
        let b = ref (scan.(si) ()) in
        b := filter_conjuncts !b scan_preds.(si);
        let keys, residual = steps.(si) in
        if si = 0 then begin
          (match project.(0) with
           | None -> ()
           | Some keep ->
             b := { !b with cols = Array.map (fun j -> !b.cols.(j)) keep });
          joined := filter_residual !b residual
        end
        else begin
          let out =
            if keys <> [] then join_hash ~keys !joined !b ~keep:project.(si)
            else join_nested !joined !b ~keep:project.(si)
          in
          joined := filter_residual out residual
        end
      done;
      fin_tail (produce !joined)
    end
  in
  { Compile.cols; exec }

(* Entry point: route per subtree, lower batch subtrees, fall back to the
   row compiler elsewhere. *)
let compile (cat : Catalog.t) ?shared ?shared_batch (opts : Compile.opts)
    (q : Plan.query) : Compile.t =
  let route =
    Optimizer.batch_route ~lineage:opts.Compile.lineage
      ~track_src:opts.Compile.track_src q
  in
  compile_route cat shared shared_batch opts route q
