(** The catalog: a named collection of tables.

    One catalog instance is "the database" of the paper's Eq. (1): it
    holds both ordinary database relations and — when driven by the
    DataLawyer engine — the usage-log relations. Log relations are tagged
    so that policy analysis can distinguish the log [L] from the database
    [D] (the distinction matters for witness computation and interleaved
    evaluation). *)

type table_kind =
  | Base  (** ordinary database relation *)
  | Log   (** usage-log relation, populated by a log-generating function *)
  | System  (** system relation, e.g. [clock] *)

type entry = { table : Table.t; kind : table_kind }

type t = {
  tables : (string, entry) Hashtbl.t;
  (* index name (lowercased) -> owning table key; index names are global
     so DROP INDEX needs no table qualifier. *)
  index_owner : (string, string) Hashtbl.t;
  mutable generation : int;
}

let create () =
  { tables = Hashtbl.create 16; index_owner = Hashtbl.create 16; generation = 0 }

let generation t = t.generation

let touch t = t.generation <- t.generation + 1

let key name = String.lowercase_ascii name

let mem t name = Hashtbl.mem t.tables (key name)

let add ?(kind = Base) t table =
  let k = key (Table.name table) in
  if Hashtbl.mem t.tables k then
    Errors.catalog_error "table %s already exists" (Table.name table);
  Hashtbl.replace t.tables k { table; kind };
  touch t

let create_table ?(kind = Base) t ~name ~schema =
  let table = Table.create ~name ~schema in
  add ~kind t table;
  table

let drop t name =
  let k = key name in
  (match Hashtbl.find_opt t.tables k with
  | None -> Errors.catalog_error "no such table: %s" name
  | Some e ->
    List.iter
      (fun ix -> Hashtbl.remove t.index_owner (key (Index.name ix)))
      (Table.indexes e.table));
  Hashtbl.remove t.tables k;
  touch t

let find_opt t name =
  Option.map (fun e -> e.table) (Hashtbl.find_opt t.tables (key name))

let find t name =
  match find_opt t name with
  | Some table -> table
  | None -> Errors.catalog_error "no such table: %s" name

let kind_of t name =
  match Hashtbl.find_opt t.tables (key name) with
  | Some e -> Some e.kind
  | None -> None

let is_log t name = kind_of t name = Some Log

let table_names t =
  Hashtbl.fold (fun _ e acc -> Table.name e.table :: acc) t.tables []
  |> List.sort String.compare

let log_table_names t =
  Hashtbl.fold
    (fun _ e acc -> if e.kind = Log then Table.name e.table :: acc else acc)
    t.tables []
  |> List.sort String.compare

(* Indexes ----------------------------------------------------------------- *)

let mem_index t iname = Hashtbl.mem t.index_owner (key iname)

let create_index t ~name ~table ~column ~kind =
  if mem_index t name then Errors.catalog_error "index %s already exists" name;
  let tbl = find t table in
  let ix = Table.create_index tbl ~name ~column ~kind in
  Hashtbl.replace t.index_owner (key name) (key table);
  (* Compiled plans may now have a better access path (or, for a rebuilt
     plan, capture the index handle) — invalidate the prepared cache. *)
  touch t;
  ix

let drop_index ?(if_exists = false) t iname =
  match Hashtbl.find_opt t.index_owner (key iname) with
  | None ->
    if not if_exists then Errors.catalog_error "no such index: %s" iname
  | Some tkey ->
    (match Hashtbl.find_opt t.tables tkey with
    | Some e -> Table.drop_index e.table iname
    | None -> ());
    Hashtbl.remove t.index_owner (key iname);
    touch t
