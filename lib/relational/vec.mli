(** Growable arrays (OCaml 5.1 predates [Dynarray]).

    Backing storage doubles on overflow. Unused slots are overwritten with
    the [dummy] element so truncated values can be garbage-collected. *)

type 'a t

(** [create ~dummy ()] is an empty vector. [dummy] fills unused slots. *)
val create : dummy:'a -> unit -> 'a t

(** Number of elements. *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** [get t i] is the [i]-th element.
    @raise Invalid_argument when out of bounds. *)
val get : 'a t -> int -> 'a

(** [set t i x] replaces the [i]-th element.
    @raise Invalid_argument when out of bounds. *)
val set : 'a t -> int -> 'a -> unit

(** Append an element, growing the backing array if needed. *)
val push : 'a t -> 'a -> unit

(** [truncate t n] drops all elements at indices [>= n].
    @raise Invalid_argument if [n] is negative or exceeds the length. *)
val truncate : 'a t -> int -> unit

(** Remove all elements. *)
val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array

(** The backing array, without copying: indices [>= length t] hold the
    dummy element. For zero-copy batch scans; treat as read-only and pair
    with the length observed at the same time. *)
val unsafe_data : 'a t -> 'a array
val of_list : dummy:'a -> 'a list -> 'a t

(** [filter_in_place p t] keeps only elements satisfying [p], preserving
    order; returns the number of elements removed. *)
val filter_in_place : ('a -> bool) -> 'a t -> int

(** {1 Bulk operations} *)

(** [blit ~src ~src_pos ~dst ~dst_pos ~len] copies [len] elements from
    [src] starting at [src_pos] into [dst] starting at [dst_pos], growing
    [dst] when the destination range extends past its current length
    ([dst_pos] itself must not).
    @raise Invalid_argument when either range is out of bounds. *)
val blit :
  src:'a t -> src_pos:int -> dst:'a t -> dst_pos:int -> len:int -> unit

(** [sub t ~pos ~len] is a fresh vector holding elements
    [pos .. pos+len-1].
    @raise Invalid_argument when the range is out of bounds. *)
val sub : 'a t -> pos:int -> len:int -> 'a t

(** [append dst src] pushes every element of [src] onto the end of
    [dst]. *)
val append : 'a t -> 'a t -> unit
