(** Growable bit vectors — null bitmaps for the typed column store.

    One bit per row, packed eight to a byte, plus a maintained set-bit
    count so "this column has no NULLs" is an O(1) question the batch
    kernels ask once per binding to pick the branch-free variant.

    [get] returns [false] for any index at or past [length]: a column
    view constructed for rows known to be null-free can share the single
    {!empty} bitmap instead of allocating one per gather. *)

type t = { mutable bits : Bytes.t; mutable len : int; mutable ones : int }

let create () = { bits = Bytes.make 2 '\000'; len = 0; ones = 0 }

let length t = t.len

(** Number of set bits. *)
let count t = t.ones

let get t i =
  i >= 0 && i < t.len
  && Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let ensure t n =
  let cap = Bytes.length t.bits in
  let need = (n + 7) lsr 3 in
  if need > cap then begin
    let bits = Bytes.make (max need (2 * cap)) '\000' in
    Bytes.blit t.bits 0 bits 0 cap;
    t.bits <- bits
  end

let push t b =
  ensure t (t.len + 1);
  let i = t.len in
  if b then begin
    Bytes.unsafe_set t.bits (i lsr 3)
      (Char.chr (Char.code (Bytes.unsafe_get t.bits (i lsr 3)) lor (1 lsl (i land 7))));
    t.ones <- t.ones + 1
  end;
  t.len <- t.len + 1

(* Drop all bits at indices >= n (savepoint rollback). Dropped bits are
   cleared so future pushes land on zeroed storage. *)
let truncate t n =
  if n < 0 then invalid_arg "Bitvec.truncate";
  if n < t.len then begin
    for i = n to t.len - 1 do
      if get t i then begin
        Bytes.unsafe_set t.bits (i lsr 3)
          (Char.chr
             (Char.code (Bytes.unsafe_get t.bits (i lsr 3))
             land lnot (1 lsl (i land 7))));
        t.ones <- t.ones - 1
      end
    done;
    t.len <- n
  end

let clear t = truncate t 0

(* A shared all-false bitmap ([get] is false everywhere past the length,
   and the length is 0). Read-only by convention: never push into it. *)
let empty = create ()
