(** Aggregate function computation.

    Given the rows of one group and an evaluator for the aggregate's
    argument, computes COUNT/SUM/AVG/MIN/MAX with optional DISTINCT.
    Matches PostgreSQL behaviour for the supported cases: COUNT ignores
    NULL arguments; SUM/AVG/MIN/MAX of an empty or all-NULL group is NULL;
    SUM over integers stays an integer. *)

module VSet = Set.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

(* DISTINCT folds straight into the set (no intermediate pre-dedup
   list); [VSet.elements]' sorted order is observable through
   fold-sensitive aggregates (float SUM/AVG), so the set must stay. *)
let arg_values ~distinct eval_arg rows =
  if distinct then
    VSet.elements
      (List.fold_left
         (fun s r ->
           let v = eval_arg r in
           if Value.is_null v then s else VSet.add v s)
         VSet.empty rows)
  else
    List.filter_map
      (fun r ->
        let v = eval_arg r in
        if Value.is_null v then None else Some v)
      rows

(* One step of the running SUM fold, exposed so incremental accumulators
   ({!Incremental.Delta_store}) reproduce batch SUM semantics exactly. *)
let sum_step acc v =
  match acc, v with
  | Value.Null, v -> v
  | Value.Int a, Value.Int b -> Value.Int (a + b)
  | acc, v -> (
    match Value.as_float acc, Value.as_float v with
    | Some a, Some b -> Value.Float (a +. b)
    | _ -> Errors.type_error "SUM over non-numeric value %s" (Value.to_string v))

let sum vals = List.fold_left sum_step Value.Null vals

let compute (agg : Ast.agg) ~(distinct : bool) ~(eval_arg : 'row -> Value.t)
    (rows : 'row list) : Value.t =
  match agg with
  | Ast.Count_star -> Value.Int (List.length rows)
  | Ast.Count -> Value.Int (List.length (arg_values ~distinct eval_arg rows))
  | Ast.Sum -> sum (arg_values ~distinct eval_arg rows)
  | Ast.Avg -> (
    let vals = arg_values ~distinct eval_arg rows in
    match vals with
    | [] -> Value.Null
    | _ -> (
      match sum vals with
      | Value.Int i -> Value.Float (float_of_int i /. float_of_int (List.length vals))
      | Value.Float f -> Value.Float (f /. float_of_int (List.length vals))
      | _ -> Value.Null))
  | Ast.Min -> (
    match arg_values ~distinct eval_arg rows with
    | [] -> Value.Null
    | v :: vs -> List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v vs)
  | Ast.Max -> (
    match arg_values ~distinct eval_arg rows with
    | [] -> Value.Null
    | v :: vs -> List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v vs)

(* Collect the distinct aggregate call nodes appearing in an expression. *)
let calls_in_expr (e : Ast.expr) : Ast.expr list =
  let acc = ref [] in
  Ast.iter_expr
    (function
      | Ast.Agg_call _ as call -> if not (List.mem call !acc) then acc := call :: !acc
      | _ -> ())
    e;
  List.rev !acc
