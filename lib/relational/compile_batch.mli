(** Batch-at-a-time (vectorized) compiler.

    Lowers batch-routed subtrees ({!Optimizer.batch_route}) to columnar
    operators — zero-copy scans over a table's columnar mirror,
    selection-vector predicate passes, Value-keyed hash joins, columnar
    aggregate accumulation — while reusing the row compiler's finish
    closures, so verdicts, output order, messages and source tids are
    bit-identical to {!Compile.compile}. Subtrees the router keeps on
    the row path (lineage, aggregated source-tracking, group-context
    expressions in batch clauses) fall back to the row compiler
    wholesale. *)

(** A column batch: backing column arrays plus a selection vector.
    Exposed abstractly so callers can hold a batch-typed
    {!Shared_cache} for shared-scan prefixes. *)
type batch

(** Compile a bound plan against the catalog. [shared] serves row-path
    fallback subtrees exactly as in {!Compile.compile}; [shared_batch]
    is the batch-typed equivalent for {!Plan.Shared} slots on the batch
    path (same tags, independent store — a mixed workload may fill
    both).
    @raise Errors.Sql_error if a scanned table has been dropped. *)
val compile :
  Catalog.t ->
  ?shared:Compile.arow list Shared_cache.t ->
  ?shared_batch:batch Shared_cache.t ->
  Compile.opts ->
  Plan.query ->
  Compile.t

(** {1 Batch statistics}

    Cumulative counters for engine stats, [:stats] and the server's
    [STATS] verb. Atomic; reset with {!reset_stats}. *)

(** Batches materialized at runtime (scans and join outputs). *)
val batches_built : int Atomic.t

(** Total rows across those batches (live selection sizes). *)
val batch_rows : int Atomic.t

(** Subtree compilations that fell back to the row path while the
    vectorized executor was requested. *)
val row_fallbacks : int Atomic.t

(** Rows-per-batch histogram buckets: [< 16], [< 256], [< 4096],
    [< 65536], [>= 65536]. *)
val hist_snapshot : unit -> int array

val reset_stats : unit -> unit
