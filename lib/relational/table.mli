(** Heap tables.

    Rows live in insertion order in a growable vector; every row gets a
    monotonically increasing tuple id. Tables support appends (with type
    checking against the schema), predicate/tid-set deletion (DML and log
    compaction) and savepoints.

    A savepoint captures the current row count; since mutation between a
    savepoint and its resolution is append-only in the DataLawyer engine
    (tentative log increments), rollback is a truncation. Deletions and
    updates are rejected while a savepoint is outstanding.

    Tables are unindexed; the executor builds transient hash indexes per
    query, matching the ad-hoc shape of policy and witness queries. *)

type t

val create : name:string -> schema:Schema.t -> t
val name : t -> string
val schema : t -> Schema.t
val row_count : t -> int

(** Insert a row and return its tuple id.
    @raise Errors.Sql_error on arity or cell-type mismatch. *)
val insert : t -> Value.t array -> int

val iter : (Row.t -> unit) -> t -> unit
val fold : ('acc -> Row.t -> 'acc) -> 'acc -> t -> 'acc
val rows : t -> Row.t list

(** Rows in insertion order, produced lazily (snapshot serialization
    iterates large log relations without materializing a list). *)
val to_seq : t -> Row.t Seq.t

(** Append many rows (recovery bulk load); each row is type-checked like
    {!insert}. @raise Errors.Sql_error inside a savepoint. *)
val bulk_load : t -> Value.t array list -> unit

(** Binary search by tuple id (rows are sorted by tid by construction). *)
val find_by_tid : t -> int -> Row.t option

(** Delete all rows whose tid is {e not} in the given set; returns the
    number removed. Used by log compaction's delete phase.
    @raise Errors.Sql_error inside a savepoint. *)
val retain_tids : t -> (int, unit) Hashtbl.t -> int

(** Delete rows matching the predicate; returns the number removed.
    @raise Errors.Sql_error inside a savepoint. *)
val delete_where : t -> (Row.t -> bool) -> int

(** Remove every row.
    @raise Errors.Sql_error inside a savepoint. *)
val clear : t -> unit

(** In-place update of matching rows; the callback receives the old cells
    and returns the new ones (type-checked). Returns the match count.
    @raise Errors.Sql_error inside a savepoint. *)
val update_where : t -> (Row.t -> bool) -> (Value.t array -> Value.t array) -> int

type savepoint

(** Open a savepoint; until it is released or rolled back, only appends
    are allowed. *)
val savepoint : t -> savepoint

(** Truncate back to the savepoint, discarding rows appended since. *)
val rollback_to : t -> savepoint -> unit

(** Keep the rows appended since the savepoint and close it. *)
val release : t -> savepoint -> unit

(** Rows appended since the savepoint (the tentative increment), in
    insertion order. *)
val rows_since : t -> savepoint -> Row.t list

val pp : Format.formatter -> t -> unit
