(** Heap tables with maintained secondary indexes.

    Rows live in insertion order in a growable vector; every row gets a
    monotonically increasing tuple id. Tables support appends (with type
    checking against the schema), predicate/tid-set deletion (DML and log
    compaction) and savepoints.

    {b Invariant: rows are sorted by tid.} Tuple ids are handed out by a
    monotone counter and rows are only ever appended, so the heap vector
    is tid-ascending at all times. {!find_by_tid} (binary search) and the
    index access paths (which fetch tid-sorted probe results to reproduce
    heap scan order) both rely on this. Any future bulk path that
    constructs rows directly must preserve it; {!insert} asserts
    monotonicity when {!debug_checks} is set.

    A savepoint captures the current row count; since mutation between a
    savepoint and its resolution is append-only in the DataLawyer engine
    (tentative log increments), rollback is a truncation. Deletions and
    updates are rejected while a savepoint is outstanding.

    Columns may carry declared secondary indexes ({!Index}): hash for
    equality, sorted for ranges. Every mutation path — [insert],
    [bulk_load], [delete_where], [retain_tids], [update_where],
    [rollback_to], [clear] — keeps them exactly consistent with the
    heap. *)

type t

(** When set, {!insert} asserts the tid-monotonicity invariant on every
    append, and mutations of a {!freeze}-marked table fail. Enabled by
    the test suite; off by default. *)
val debug_checks : bool ref

(** Mark the table as frozen: while set (and {!debug_checks} is on),
    every mutating operation — [insert], [bulk_load], [delete_where],
    [retain_tids], [update_where], [rollback_to], [clear] — raises. The
    engine freezes tables for the span of a parallel evaluation batch,
    turning a would-be cross-domain data race into a deterministic
    failure under the test suite. *)
val freeze : t -> unit

(** Clear the {!freeze} mark. *)
val thaw : t -> unit

val create : name:string -> schema:Schema.t -> t
val name : t -> string
val schema : t -> Schema.t
val row_count : t -> int

(** Insert a row and return its tuple id.
    @raise Errors.Sql_error on arity or cell-type mismatch. *)
val insert : t -> Value.t array -> int

val iter : (Row.t -> unit) -> t -> unit
val fold : ('acc -> Row.t -> 'acc) -> 'acc -> t -> 'acc
val rows : t -> Row.t list

(** Rows in insertion order, produced lazily (snapshot serialization
    iterates large log relations without materializing a list). *)
val to_seq : t -> Row.t Seq.t

(** Append many rows (recovery bulk load); each row is type-checked like
    {!insert} and all indexes are maintained.
    @raise Errors.Sql_error inside a savepoint. *)
val bulk_load : t -> Value.t array list -> unit

(** Binary search by tuple id (rows are sorted by tid — see the module
    invariant above). *)
val find_by_tid : t -> int -> Row.t option

(** {1 Secondary indexes} *)

(** Declared indexes, in creation order. *)
val indexes : t -> Index.t list

(** Find an index by (case-insensitive) name. *)
val find_index : t -> string -> Index.t option

(** Indexes declared on the given column position. *)
val index_on : t -> column:int -> Index.t list

(** Declare an index on a column (by name) and build it from the current
    rows. Returns the new index.
    @raise Errors.Sql_error if the name is taken or the column unknown. *)
val create_index : t -> name:string -> column:string -> kind:Index.kind -> Index.t

(** Remove an index by name. @raise Errors.Sql_error if absent. *)
val drop_index : t -> string -> unit

(** Rows whose indexed cell is {!Value.equal} to the probe value, in tid
    (= heap scan) order. NULL-probe gating is the caller's concern. *)
val index_lookup : t -> Index.t -> Value.t -> Row.t list

(** Rows whose indexed cell lies within the bounds (see {!Index.range}),
    in tid order. @raise Errors.Sql_error on a hash index. *)
val index_range :
  t -> Index.t -> ?lo:Index.bound -> ?hi:Index.bound -> unit -> Row.t list

(** Tid-only variant of {!index_lookup}: the same tids in the same
    order (ascending, deduplicated), without fetching rows. The batch
    executor maps these to columnar-mirror positions instead of
    materializing rows. *)
val index_lookup_tids : t -> Index.t -> Value.t -> int array

(** {1 Columnar mirror}

    Opt-in decomposed storage for the vectorized executor ({!Column}):
    per-column value vectors plus a tid vector, kept exactly consistent
    with the heap by the same mutation hooks that maintain indexes.
    Batch scans borrow its backing arrays without copying. *)

(** Build (or return) the table's columnar mirror. Subsequent mutations
    keep it synchronized. *)
val enable_columnar : t -> Column.t

(** The columnar mirror, when {!enable_columnar} has been called. *)
val columnar : t -> Column.t option

(** {1 Deletion and update} *)

(** Delete all rows whose tid is {e not} in the given set; returns the
    number removed. Used by log compaction's delete phase.
    @raise Errors.Sql_error inside a savepoint. *)
val retain_tids : t -> (int, unit) Hashtbl.t -> int

(** Delete rows matching the predicate; returns the number removed.
    @raise Errors.Sql_error inside a savepoint. *)
val delete_where : t -> (Row.t -> bool) -> int

(** Remove every row (index definitions survive, their entries drop).
    @raise Errors.Sql_error inside a savepoint. *)
val clear : t -> unit

(** In-place update of matching rows; the callback receives the old cells
    and returns the new ones (type-checked). Returns the match count.
    @raise Errors.Sql_error inside a savepoint. *)
val update_where : t -> (Row.t -> bool) -> (Value.t array -> Value.t array) -> int

type savepoint

(** Open a savepoint; until it is released or rolled back, only appends
    are allowed. *)
val savepoint : t -> savepoint

(** Truncate back to the savepoint, discarding rows appended since.
    Also restores the tid counter to its savepoint value, so the tids a
    table hands out are independent of discarded tentative appends. *)
val rollback_to : t -> savepoint -> unit

(** Keep the rows appended since the savepoint and close it. *)
val release : t -> savepoint -> unit

(** Iterate the rows appended since the savepoint without building a
    list. *)
val iter_since : (Row.t -> unit) -> t -> savepoint -> unit

(** Fold over the rows appended since the savepoint without building a
    list. *)
val fold_since : ('acc -> Row.t -> 'acc) -> 'acc -> t -> savepoint -> 'acc

(** {1 Delta watermark}

    Support for the engine's incremental policy evaluation: after it has
    proved every policy empty over the current state, the engine marks
    each log relation's watermark; rows appended later (which always
    carry larger tids — see the module invariant) form the delta the
    next evaluation joins against the indexed state. The version
    counters let the engine detect mutations that invalidate that
    proof. *)

(** Current watermark tid (0 until {!mark_delta_base} is first called). *)
val delta_base : t -> int

(** Set the watermark to the next tid to be handed out: every row
    currently in the table is below it, every future append above. *)
val mark_delta_base : t -> unit

(** Bumped by every mutation ([insert], [bulk_load], [delete_where],
    [retain_tids], [update_where], [rollback_to], [clear]). *)
val ver_mut : t -> int

(** Bumped only by mutations that can grow a monotone query's result
    without appending fresh tids: [update_where], [clear] and
    [bulk_load]. Pure removals ([delete_where], [retain_tids],
    [rollback_to]) and appends (watermarked by tid) leave it alone. *)
val ver_unsafe : t -> int

(** Bumped only by predicate deletion ([delete_where]): arbitrary DML
    removals cannot grow a monotone result but do break carried
    aggregate accumulators, which have no way to subtract the removed
    rows. *)
val ver_del : t -> int

(** Bumped only by tid-set deletion ([retain_tids]): witness-driven log
    compaction. Witnesses retain every tuple contributing to an active
    policy, so running SUM/COUNT/AVG state survives compaction;
    MIN/MAX state, which any removal can break, treats it like a
    delete. [rollback_to] bumps neither removal counter — discarded
    tentative rows are never folded into carried state. *)
val ver_compact : t -> int

(** Fold over the delta — the rows with tid >= {!delta_base}, in tid
    order — without touching the rest of the heap (binary lower bound,
    then a tail walk). *)
val fold_delta : ('acc -> Row.t -> 'acc) -> 'acc -> t -> 'acc

(** Fold over the complement of the delta — the rows with
    tid < {!delta_base}, in tid order. Telescoped delta variants of
    aggregate policies use this to enumerate each joined increment row
    exactly once across variants. *)
val fold_below : ('acc -> Row.t -> 'acc) -> 'acc -> t -> 'acc

val pp : Format.formatter -> t -> unit
