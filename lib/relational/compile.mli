(** Physical compiler: turns a bound {!Plan.query} into closure-compiled
    operators.

    The compiled plan captures table handles and fully resolved field
    offsets; executing it does no name resolution, conjunct decomposition
    or join-key derivation. It remains valid until the catalog changes
    shape — callers key caches on {!Catalog.generation}. *)

type opts = { lineage : bool; track_src : bool }

val default_opts : opts

(** Annotated row: values, lineage, and (FROM-slot index, tid) source
    pairs. *)
type arow = { vals : Value.t array; lin : Lineage.t; src : (int * int) list }

(** Rows examined by join steps since the counter was last reset; a
    statistics hook for tests and benchmarks. *)
val rows_examined : int Atomic.t

(** Index probes executed (one per [Index_eq]/[Index_range] scan
    execution); a statistics hook for tests and benchmarks. *)
val index_probes : int Atomic.t

(** A compiled scalar closure over (row values, computed aggregates). *)
type cexpr = Value.t array -> Value.t array -> Value.t

(** Compile a bound expression. Pure compile step: errors (unknown
    function, bad arity, type errors, division by zero) are raised when
    the closure runs, matching per-row evaluation. *)
val compile_expr : Plan.pexpr -> cexpr

type t = { cols : string array; exec : unit -> arow list }

(** {1 Finish pipeline, exposed for the batch compiler}

    {!Compile_batch} replaces the join pipeline with columnar operators
    but produces the same [(representative row, computed aggregates)]
    pairs and reuses the closures below, so grouping, projection,
    DISTINCT, ORDER BY and LIMIT semantics are shared code rather than a
    reimplementation. *)

(** Group + aggregate + HAVING over materialized rows: one pair per
    output candidate; non-aggregate queries pass rows through with
    [[||]] aggregates. *)
val compile_produce : Plan.finish -> arow list -> (arow * Value.t array) list

(** Projection, DISTINCT, ORDER BY and LIMIT over produced pairs. *)
val compile_finish_tail :
  Plan.finish -> (arow * Value.t array) list -> arow list

(** UNION merge: [~all:true] concatenates; otherwise duplicates are
    merged by value in first-encounter order, absorbing provenance. *)
val union_rows : all:bool -> arow list -> arow list -> arow list

(** Add to {!rows_examined} (join-step statistics; the batch join calls
    this with the same counts as the row join). *)
val note_rows : int -> unit

(** Compile a bound plan against the catalog. When [shared] is given,
    {!Plan.Shared} slots materialize through it — the first plan of an
    admission to execute a given scan-plus-filter prefix fills the cache
    and every other plan reuses the rows — but only under the default
    provenance options (lineage and source-tid annotations are
    slot-specific and never shared). Without [shared], or with
    provenance on, [Plan.Shared] compiles to a plain scan plus filter
    passes, indistinguishable from [Plan.Scan].
    @raise Errors.Sql_error if a scanned table has been dropped. *)
val compile :
  Catalog.t -> ?shared:arow list Shared_cache.t -> opts -> Plan.query -> t
