(** Maintained secondary indexes: one column's value → tuple ids.

    [Hash] indexes serve equality lookups; [Sorted] indexes additionally
    serve range scans. Entry semantics follow {!Value.equal} ([Null] is
    stored under its own key; integral floats collapse onto ints); SQL's
    NULL rules are the caller's concern — the compiled access path gates
    NULL probes, and {!range} always skips the [Null] key.

    Indexes store tids, never rows: the owning {!Table} maintains them
    across mutation and resolves tids back to rows. *)

type kind = Hash | Sorted

type t

val create : name:string -> column:int -> column_name:string -> kind -> t
val name : t -> string

(** Column position in the owning table's schema. *)
val column : t -> int

val column_name : t -> string
val kind : t -> kind

(** Number of (value, tid) entries — equals the owning table's row count
    when the index is consistent. *)
val entries : t -> int

val kind_to_string : kind -> string

(** Register [tid] under [v]. Newest tids sit at the bucket head, so a
    savepoint rollback removes from the head. *)
val add : t -> Value.t -> int -> unit

(** Remove one occurrence of [tid] from [v]'s bucket; no-op if absent. *)
val remove : t -> Value.t -> int -> unit

(** Drop every entry (the definition survives; used by [Table.clear]). *)
val clear : t -> unit

(** Tids whose cell is {!Value.equal} to [v]; unsorted. *)
val lookup : t -> Value.t -> int list

type bound = Value.t * bool  (** value, inclusive? *)

(** Tids whose non-[Null] cell lies within the bounds under
    {!Value.compare}; unsorted.
    @raise Errors.Sql_error on a [Hash] index. *)
val range : t -> ?lo:bound -> ?hi:bound -> unit -> int list

val pp : Format.formatter -> t -> unit
