(** Policy unification (§4.2.2).

    Policies that are structurally identical except for literal constants
    (e.g. one rate-limit policy per user, per group, per dataset) are
    consolidated into one {e template} policy that joins a generated
    constants table carrying one column per differing literal position and
    one row per member instance, grouping by the constants — the n-way
    generalization of Example 4.6. Evaluation cost then stays constant in
    the number of unified instances (Fig. 5): 10k instances of one
    template cost one evaluation.

    Policies are grouped by their {e shape} — the masked query carried on
    {!Policy.t.shape}, computed once at registration — so grouping never
    re-discovers templates by printing and string-comparing SQL. A group
    unifies when every differing position sits in a clause of the
    top-level SELECT (the constants alias is only in scope there) and the
    differing values of each position share a type. Differing
    error-message literals are lifted like any other constant, so the
    unified policy projects each member's {e original} message — verdicts
    and messages are identical to unrolled evaluation. *)

open Relational

type group = {
  policy : Policy.t;  (** the unified replacement policy *)
  members : Policy.t list;  (** original policies it subsumes *)
  constants_table : string option;
      (** the generated [dl_constants_<k>] table; [None] when the members
          are exact duplicates and no constants are needed *)
}

type outcome = { policies : Policy.t list; groups : group list }

let constants_alias = "dl_consts"

let const_col j = Printf.sprintf "c%d" j

(* Try to unify one shape-group of policies (already known to share a
   masked shape, hence the same literal-site skeleton). *)
let unify_group (cat : Catalog.t) ~(is_log : string -> bool) ~(index : int)
    (ps : Policy.t list) : group option =
  match ps with
  | [] | [ _ ] -> None
  | first :: _ ->
    let n = List.length ps in
    let sites =
      Array.of_list
        (List.map (fun p -> Array.of_list (Ast.query_literals p.Policy.query)) ps)
    in
    let nsites = Array.length sites.(0) in
    if Array.exists (fun s -> Array.length s <> nsites) sites then None
    else begin
      (* Positions whose values differ across members. *)
      let differing = ref [] in
      for i = nsites - 1 downto 0 do
        let v0 = sites.(0).(i).Ast.value in
        let d = ref false in
        for j = 1 to n - 1 do
          if not (Value.equal v0 sites.(j).(i).Ast.value) then d := true
        done;
        if !d then differing := i :: !differing
      done;
      match !differing with
      | [] ->
        (* Exact duplicates: the first member subsumes the whole group. *)
        Some
          {
            policy = { first with Policy.name = Printf.sprintf "unified_%d" index };
            members = ps;
            constants_table = None;
          }
      | positions -> (
        (* The constants columns are only in scope in the top-level
           SELECT's own clauses: a differing literal buried in a FROM
           subquery or UNION branch cannot reference them. *)
        let in_scope i =
          match sites.(0).(i).Ast.clause with
          | Ast.Clause_from _ | Ast.Clause_union -> false
          | _ -> true
        in
        (* The shared value type of position [i], if any. *)
        let column_type i =
          match Value.type_of sites.(0).(i).Ast.value with
          | None -> None
          | Some ty ->
            let ok = ref true in
            for j = 1 to n - 1 do
              if Value.type_of sites.(j).(i).Ast.value <> Some ty then ok := false
            done;
            if !ok then Some ty else None
        in
        let types =
          if List.for_all in_scope positions then
            List.fold_right
              (fun i acc ->
                match (acc, column_type i) with
                | Some tys, Some ty -> Some (ty :: tys)
                | _ -> None)
              positions (Some [])
          else None
        in
        match (types, first.Policy.query) with
        | None, _ | _, Ast.Union _ -> None
        | Some tys, Ast.Select _ ->
          (* Create (or refresh) the constants table: one typed column per
             differing position, one row per distinct member constant
             vector. *)
          let table_name = Printf.sprintf "dl_constants_%d" index in
          if Catalog.mem cat table_name then Catalog.drop cat table_name;
          let schema = Schema.make (List.mapi (fun j ty -> (const_col j, ty)) tys) in
          let table = Catalog.create_table cat ~name:table_name ~schema in
          let seen = Hashtbl.create (2 * n) in
          Array.iter
            (fun s ->
              let row =
                Array.of_list
                  (List.map (fun i -> (s.(i) : Ast.lit_site).Ast.value) positions)
              in
              let key = Value.canonical_key_of_array row in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                ignore (Table.insert table row)
              end)
            sites;
          (* Rewrite the template query: each differing literal becomes a
             reference to its constants column. Message literals are
             lifted like any other constant, so firing rows project the
             original member messages. *)
          let q =
            List.fold_left
              (fun q (j, i) ->
                Ast.query_map_literal q ~path:sites.(0).(i).Ast.path ~f:(fun _ ->
                    Ast.Col (Some constants_alias, const_col j)))
              first.Policy.query
              (List.mapi (fun j i -> (j, i)) positions)
          in
          let const_refs =
            List.mapi (fun j _ -> Ast.Col (Some constants_alias, const_col j)) positions
          in
          let q =
            match q with
            | Ast.Select s ->
              let has_agg =
                s.having <> None
                || List.exists
                     (function
                       | Ast.Sel_expr (e, _) -> Ast.expr_has_agg e
                       | _ -> false)
                     s.items
              in
              Ast.Select
                {
                  s with
                  from =
                    s.from
                    @ [
                        Ast.From_table
                          { name = table_name; alias = Some constants_alias };
                      ];
                  (* Grouping by the constants gives one group per member
                     instance — the n-way Example 4.6. *)
                  group_by =
                    (if has_agg then s.group_by @ const_refs else s.group_by);
                }
            | q -> q
          in
          let policy =
            {
              (Policy.with_query ~is_log first q) with
              Policy.name = Printf.sprintf "unified_%d" index;
            }
          in
          Some { policy; members = ps; constants_table = Some table_name })
    end

(* Run unification over a policy set. Policies that do not unify are
   returned unchanged. *)
let run (cat : Catalog.t) ~(is_log : string -> bool) (policies : Policy.t list) :
    outcome =
  let by_shape : (Ast.query, Policy.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun p ->
      let key = p.Policy.shape in
      match Hashtbl.find_opt by_shape key with
      | Some cell -> cell := p :: !cell
      | None ->
        Hashtbl.add by_shape key (ref [ p ]);
        order := key :: !order)
    policies;
  let counter = ref 0 in
  let groups = ref [] in
  let out = ref [] in
  List.iter
    (fun key ->
      let members = List.rev !(Hashtbl.find by_shape key) in
      let idx = !counter in
      incr counter;
      match unify_group cat ~is_log ~index:idx members with
      | Some g ->
        groups := g :: !groups;
        out := g.policy :: !out
      | None -> out := List.rev_append (List.rev members) !out)
    (List.rev !order);
  { policies = List.rev !out; groups = List.rev !groups }
