(** Prepared-plan cache.

    The engine evaluates the same policy, partial-policy and witness
    queries on every submission; binding, optimizing and closure-compiling
    them each time dominated the per-submission overhead. This cache keys
    compiled plans by (query AST, execution options) and revalidates
    against {!Relational.Catalog.generation} — the single invalidation
    counter shared with PR 1's persistence-scope recompute: DDL bumps it
    structurally, and the engine bumps it explicitly ({!Catalog.touch})
    whenever it invalidates its evaluation plan (config changes, policy
    registration), so a stale compiled plan can never outlive the state
    it was compiled against.

    Compilation failures are never cached: a query that fails to bind
    raises on every call, exactly as the uncached executor did. *)

open Relational

type key = { q : Ast.query; lineage : bool; track_src : bool }

type t = {
  cat : Catalog.t;
  cache : (key, Executor.compiled) Hashtbl.t;
  mutable gen : int;
  mutable hits : int;
  mutable misses : int;
}

(* Witness probes bake the current timestamp into their AST, so a
   long-running engine accretes one-shot entries; a full reset at
   capacity bounds memory without bookkeeping on the hot path. *)
let capacity = 1024

let create (cat : Catalog.t) : t =
  {
    cat;
    cache = Hashtbl.create 64;
    gen = Catalog.generation cat;
    hits = 0;
    misses = 0;
  }

let sync t =
  let g = Catalog.generation t.cat in
  if g <> t.gen then begin
    Hashtbl.reset t.cache;
    t.gen <- g
  end

let prepare t ?(opts = Executor.default_opts) (q : Ast.query) : Executor.compiled
    =
  sync t;
  let k =
    { q; lineage = opts.Executor.lineage; track_src = opts.Executor.track_src }
  in
  match Hashtbl.find_opt t.cache k with
  | Some c ->
    t.hits <- t.hits + 1;
    c
  | None ->
    let c = Executor.prepare ~opts t.cat q in
    if Hashtbl.length t.cache >= capacity then Hashtbl.reset t.cache;
    Hashtbl.replace t.cache k c;
    t.misses <- t.misses + 1;
    c

let run t ?opts q = Executor.run_compiled (prepare t ?opts q)

let is_empty t ?opts q = (run t ?opts q).Executor.out_rows = []

let stats t = (t.hits, t.misses)

let clear t = Hashtbl.reset t.cache
