(** Prepared-plan cache.

    The engine evaluates the same policy, partial-policy and witness
    queries on every submission; binding, optimizing and closure-compiling
    them each time dominated the per-submission overhead. This cache keys
    compiled plans by (query AST, execution options) and revalidates
    against {!Relational.Catalog.generation} — the single invalidation
    counter shared with PR 1's persistence-scope recompute: DDL bumps it
    structurally, and the engine bumps it explicitly ({!Catalog.touch})
    whenever it invalidates its evaluation plan (config changes, policy
    registration), so a stale compiled plan can never outlive the state
    it was compiled against.

    Domain safety: the cache is sharded per domain. Each domain that
    ever prepares a query through this cache gets a private shard (keyed
    by its domain id), so a compiled plan — a closure whose execution is
    re-entrant but whose ownership story we keep trivially safe — is
    only ever fetched and executed by the domain that compiled it. The
    engine's parallel batches therefore compile each hot query once per
    participating domain (bounded, small) instead of taking a lock on
    every policy evaluation. Only the shard-lookup table itself is
    mutex-protected; all per-shard state is single-domain.

    The engine only bumps the catalog generation while no parallel batch
    is in flight (tables are frozen for the span of a batch), so a
    worker revalidating its shard mid-batch always sees a stable
    generation.

    Compilation failures are never cached: a query that fails to bind
    raises on every call, exactly as the uncached executor did. *)

open Relational

type key = {
  q : Ast.query;
  lineage : bool;
  track_src : bool;
  share : bool;
  vectorized : bool;
}

type shard = {
  cache : (key, Executor.compiled) Hashtbl.t;
  delta : (Ast.query * bool, Executor.delta_compiled option) Hashtbl.t;
      (** delta-plan derivations keyed by (query, vectorized), [None]
          caching ineligibility *)
  mutable gen : int;
  mutable hits : int;
  mutable misses : int;
}

type t = {
  cat : Catalog.t;
  lock : Mutex.t;  (** guards [shards]; per-shard state is domain-private *)
  shards : (int, shard) Hashtbl.t;  (** domain id -> private shard *)
  shared : Compile.arow list Shared_cache.t;
      (** cross-domain materialization cache behind {!Plan.Shared} slots:
          compiled plans stay domain-private, but the immutable row lists
          their shared scan prefixes produce are served from here, so one
          domain's materialization feeds every policy of the admission.
          Self-validating against (generation, table version) — no [sync]
          discipline needed *)
  shared_batch : Compile_batch.batch Shared_cache.t;
      (** batch-typed twin of [shared] for vectorized plans: the batch
          pipeline shares column batches, never transposed row lists, so
          a scale-out admission pays no per-policy conversion *)
  mutable vectorized : bool;
      (** default route for [prepare]/[prepare_delta]; set once from
          engine config before any evaluation traffic *)
}

(* Witness probes bake the current timestamp into their AST, so a
   long-running engine accretes one-shot entries; a full reset at
   capacity bounds memory without bookkeeping on the hot path. *)
let capacity = 1024

let create (cat : Catalog.t) : t =
  {
    cat;
    lock = Mutex.create ();
    shards = Hashtbl.create 4;
    shared = Shared_cache.create ();
    shared_batch = Shared_cache.create ();
    vectorized = false;
  }

let set_vectorized t v = t.vectorized <- v

let shard_for t : shard =
  let id = (Domain.self () :> int) in
  Mutex.lock t.lock;
  let s =
    match Hashtbl.find_opt t.shards id with
    | Some s -> s
    | None ->
      let s =
        {
          cache = Hashtbl.create 64;
          delta = Hashtbl.create 16;
          gen = Catalog.generation t.cat;
          hits = 0;
          misses = 0;
        }
      in
      Hashtbl.add t.shards id s;
      s
  in
  Mutex.unlock t.lock;
  s

let sync t (s : shard) =
  let g = Catalog.generation t.cat in
  if g <> s.gen then begin
    Hashtbl.reset s.cache;
    Hashtbl.reset s.delta;
    s.gen <- g
  end

let prepare t ?(opts = Executor.default_opts) ?(share = false)
    (q : Ast.query) : Executor.compiled =
  let s = shard_for t in
  sync t s;
  (* Provenance annotations are slot-specific; such plans never share,
     so don't fragment the cache key space over the flag. *)
  let share = share && (not opts.Executor.lineage) && not opts.Executor.track_src in
  let vectorized = t.vectorized in
  let k =
    {
      q;
      lineage = opts.Executor.lineage;
      track_src = opts.Executor.track_src;
      share;
      vectorized;
    }
  in
  match Hashtbl.find_opt s.cache k with
  | Some c ->
    s.hits <- s.hits + 1;
    c
  | None ->
    let shared = if share then Some t.shared else None in
    let shared_batch = if share then Some t.shared_batch else None in
    let c = Executor.prepare ~opts ~vectorized ?shared ?shared_batch t.cat q in
    if Hashtbl.length s.cache >= capacity then Hashtbl.reset s.cache;
    Hashtbl.replace s.cache k c;
    s.misses <- s.misses + 1;
    c

(* Delta derivations share the shard discipline: derived once per
   (domain, generation), ineligibility cached as [None] so the
   eligibility analysis also runs at most once per query. *)
let prepare_delta t ~is_log ~clock_rel (q : Ast.query) :
    Executor.delta_compiled option =
  let s = shard_for t in
  sync t s;
  let vectorized = t.vectorized in
  let dk = (q, vectorized) in
  match Hashtbl.find_opt s.delta dk with
  | Some d -> d
  | None ->
    let d = Executor.prepare_delta ~vectorized t.cat ~is_log ~clock_rel q in
    if Hashtbl.length s.delta >= capacity then Hashtbl.reset s.delta;
    Hashtbl.replace s.delta dk d;
    d

let run t ?opts ?share q = Executor.run_compiled (prepare t ?opts ?share q)

let is_empty t ?opts ?share q = (run t ?opts ?share q).Executor.out_rows = []

(* Aggregated over all shards. Called from the coordinating domain
   between batches; the lock only orders shard creation against us. *)
let stats t =
  Mutex.lock t.lock;
  let hits, misses =
    Hashtbl.fold
      (fun _ s (h, m) -> (h + s.hits, m + s.misses))
      t.shards (0, 0)
  in
  Mutex.unlock t.lock;
  (hits, misses)

(* Row and batch caches are one materialization facility with two value
   types; report them as one. *)
let shared_stats t =
  let h, m = Shared_cache.stats t.shared in
  let hb, mb = Shared_cache.stats t.shared_batch in
  (h + hb, m + mb)

let clear t =
  Mutex.lock t.lock;
  Hashtbl.iter
    (fun _ s ->
      Hashtbl.reset s.cache;
      Hashtbl.reset s.delta)
    t.shards;
  Mutex.unlock t.lock;
  Shared_cache.clear t.shared;
  Shared_cache.clear t.shared_batch
