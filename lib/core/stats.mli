(** Per-query timing breakdown, matching the phases the paper reports:
    usage tracking (log generation), policy evaluation, the three log
    compaction phases (mark / delete / insert), and the user query.
    Times are wall-clock seconds. *)

type t = {
  mutable log_track : float;
  mutable policy_eval : float;
  mutable compact_mark : float;
  mutable compact_delete : float;
  mutable compact_insert : float;
  mutable query_exec : float;
  mutable persist : float;  (** WAL append / checkpoint time *)
  mutable policy_calls : int;  (** number of policy (sub)queries issued *)
  mutable rows_logged : int;  (** log tuples persisted for this query *)
}

val create : unit -> t
val zero : t

(** Sum of the three compaction phases. *)
val compaction_total : t -> float

(** Everything except the user query. *)
val overhead : t -> float

val total : t -> float
val add : t -> t -> t

(** [merge_into dst src] folds [src] into [dst] in place ({!add}
    semantics). Parallel evaluation batches accumulate into per-task
    records and merge them after the join. *)
val merge_into : t -> t -> unit
val sum : t list -> t
val scale : float -> t -> t
val mean : t list -> t

(** [timed record f] runs [f], passing the elapsed seconds to [record]. *)
val timed : (float -> unit) -> (unit -> 'a) -> 'a

(** Seconds to milliseconds. *)
val ms : float -> float

val pp : Format.formatter -> t -> unit
