(** Prepared-plan cache: compiled query plans keyed by (AST, options),
    revalidated against {!Relational.Catalog.generation}. One counter
    covers every invalidation source — DDL bumps it structurally, the
    engine bumps it on config/policy changes — so cached plans can never
    go stale.

    Sharded per domain: each domain that prepares through the cache owns
    a private shard, so compiled closures are never shared (mutably or
    otherwise) across the engine's pool domains, and the policy hot path
    takes no lock. {!stats} and {!clear} aggregate/reset across
    shards. *)

open Relational

type t

val create : Catalog.t -> t

(** Set the default compilation route: with [true], {!prepare} and
    {!prepare_delta} compile through the vectorized executor
    ({!Relational.Compile_batch}), falling back per subtree where
    routing demands the row path. Part of the cache key, but intended to
    be set once, from engine config, before evaluation traffic. *)
val set_vectorized : t -> bool -> unit

(** Fetch or compile the plan for [q] under [opts]. With [share], the
    plan's base-table scan prefixes materialize through a single
    cross-domain {!Relational.Shared_cache}, so identical prefixes
    across the policies of one admission scan the table once (ignored
    under lineage or source-tid options — those annotations are
    slot-specific).
    @raise Errors.Sql_error on binding failures (never cached). *)
val prepare :
  t -> ?opts:Executor.opts -> ?share:bool -> Ast.query -> Executor.compiled

(** Fetch or derive+compile the delta variants of [q] (see
    {!Executor.prepare_delta}); ineligibility ([None]) is cached too, so
    the analysis runs once per (domain, generation). *)
val prepare_delta :
  t ->
  is_log:(string -> bool) ->
  clock_rel:string ->
  Ast.query ->
  Executor.delta_compiled option

(** [prepare] + execute. *)
val run :
  t -> ?opts:Executor.opts -> ?share:bool -> Ast.query -> Executor.result

val is_empty : t -> ?opts:Executor.opts -> ?share:bool -> Ast.query -> bool

(** (hits, misses) since creation. *)
val stats : t -> int * int

(** (hits, misses) of the shared-scan materialization cache: a hit is a
    policy plan reusing rows another plan already materialized for the
    same scan-plus-filter prefix at the same table version. *)
val shared_stats : t -> int * int

(** Drop every cached plan (the statistics survive). *)
val clear : t -> unit
