(** The DataLawyer engine (§4).

    The engine wraps a {!Relational.Database}: users submit queries
    through {!submit}, which (per Eq. 1) tentatively appends the usage-log
    increments, checks every policy, and either rejects the query —
    reverting the log — or persists the (compacted) log and executes the
    query.

    All optimizations can be toggled independently through {!config}:

    - [`Union] / [`Serial] / [`Interleaved] policy-evaluation strategies
      (NoOpt's Algorithm 1 uses [`Union]; Algorithm 3 is [`Interleaved]);
    - time-independent rewriting (§4.1.1);
    - log compaction via absolute witnesses (§4.1.2);
    - policy unification (§4.2.2);
    - preemptive log compaction and improved partial policies (§4.3). *)

open Relational

type strategy = Union_all | Serial | Interleaved

type config = {
  time_independent : bool;
  log_compaction : bool;
  unification : bool;
  preemptive : bool;
  improved_partial : bool;
  strategy : strategy;
  domains : int;
  delta : bool;
  relevance : bool;
  shared_scans : bool;
  vectorized : bool;
}

(* Default evaluation parallelism: the DL_DOMAINS environment variable
   when set (CI pins the serial and pooled paths with it), otherwise one
   less than the hardware's recommendation — leaving a core for the rest
   of the system — and never below 1 ([domains = 1] is the strictly
   serial path: no pool is spawned and no parallel code runs). *)
let default_domains =
  match Sys.getenv_opt "DL_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> 1)
  | None -> max 1 (Domain.recommended_domain_count () - 1)

(* Incremental policy evaluation defaults on; DL_DELTA=0 pins the
   pre-existing full-re-evaluation path (CI runs the suite both ways). *)
let default_delta =
  match Sys.getenv_opt "DL_DELTA" with
  | Some s -> String.trim s <> "0"
  | None -> true

(* Policy unification defaults on; DL_UNIFY=0 pins the unrolled
   evaluation path (CI runs the suite both ways). *)
let default_unify =
  match Sys.getenv_opt "DL_UNIFY" with
  | Some s -> String.trim s <> "0"
  | None -> true

(* The vectorized (batch-at-a-time) executor defaults on; DL_VECTOR=0
   pins the row-at-a-time path (CI runs the suite both ways — results
   are bit-identical, only the operator implementation differs). *)
let default_vector =
  match Sys.getenv_opt "DL_VECTOR" with
  | Some s -> String.trim s <> "0"
  | None -> true

(* The NoOpt baseline (Algorithm 1): generate the logs the policies
   mention, evaluate the union of all policies, never compact. *)
let noopt_config =
  {
    time_independent = false;
    log_compaction = false;
    unification = false;
    preemptive = false;
    improved_partial = false;
    strategy = Union_all;
    domains = default_domains;
    delta = default_delta;
    relevance = false;
    shared_scans = false;
    vectorized = default_vector;
  }

(* DataLawyer with every optimization enabled (§4.4). *)
let default_config =
  {
    time_independent = true;
    log_compaction = true;
    unification = default_unify;
    preemptive = true;
    improved_partial = true;
    strategy = Interleaved;
    domains = default_domains;
    delta = default_delta;
    relevance = true;
    shared_scans = true;
    vectorized = default_vector;
  }

type plan = {
  active : Policy.t list;  (** offline-phase output: post unification / TI *)
  inter : Policy.t list;  (** interleavable subset (Πmon of §4.4) *)
  rest : Policy.t list;  (** evaluated fully, one by one *)
  required : string list;  (** log relations any active policy references *)
  store_rels : string list;
      (** log relations referenced by a time-dependent policy: only these
          ever need persisting *)
  unified_groups : Unify.group list;
  relevance : Relevance.t;
      (** per-active-policy slot/filter metadata for the relevance index,
          built over the same post-unification policy set *)
}

type t = {
  db : Database.t;
  mutable config : config;
  mutable generators : Usage_log.generator list;  (** sorted by rank *)
  gen_index : (string, Usage_log.generator) Hashtbl.t;
      (** generator lookup by lowercased relation name; rebuilt at
          registration so the per-generation hot path never scans the
          list *)
  mutable registered : Policy.t list;
  mutable plan : plan option;
  mutable last_violations : Policy.t list;
      (** violated policies of the most recent rejected submission, for
          {!Advisor}-style diagnosis *)
  mutable persist : Persistence.Store.t option;
  mutable persist_scope : string list;
      (** the [store_rels] the store's snapshot scope was last computed
          for; recomputed (with a checkpoint) whenever the plan is
          invalidated and yields a different scope *)
  prepared : Prepared.t;
      (** compiled-plan cache for policy, partial-policy and witness
          queries; invalidated through the same catalog generation
          counter as the evaluation plan (see {!invalidate}); sharded
          per domain so pool workers never share compiled closures *)
  mutable pool : Parallel.Pool.t option;
      (** domain pool for parallel evaluation batches; fetched lazily
          from the process-wide registry when [config.domains > 1] *)
  mutable par_batches : int;  (** parallel batches dispatched *)
  mutable par_tasks : int;  (** tasks executed across those batches *)
  mutable adm_fast : int;  (** admission batches decided on the fast path *)
  mutable adm_retried : int;
      (** fast-path batches that saw a violation and replayed serially *)
  mutable adm_ineligible : int;
      (** admission batches that went straight to the serial path *)
  mutable adm_submissions : int;  (** submissions across all admission batches *)
  rel_checks : int Atomic.t;
      (** relevance-index consultations (atomic: incremented inside pool
          tasks) *)
  rel_skips : int Atomic.t;  (** policies skipped as provably unaffected *)
  delta_store : Incremental.Delta_store.t;
      (** per-policy emptiness bases for incremental evaluation; written
          only between submissions, read (with atomic counters) by pool
          workers during batches *)
  relevance_store : Incremental.Delta_store.t;
      (** the relevance index's own emptiness bases, kept apart from the
          delta bases because the two proofs snapshot different
          dependency lists and are counted separately *)
}

type outcome =
  | Accepted of Executor.result * Stats.t
  | Rejected of string list * Stats.t

let stats_of = function Accepted (_, s) -> s | Rejected (_, s) -> s

let lc = Analysis.lc

(* Checkpoint once the WAL holds this many records, bounding replay time
   on recovery even for workloads that never trigger compaction. *)
let wal_checkpoint_limit = 10_000

let is_log' db rel = Catalog.is_log (Database.catalog db) rel

(* Every policy/witness evaluation probes the log relations by [uid]
   equality and [ts] windows (preemptive checks pin [ts = now]); declare
   the matching indexes up front so the optimizer's access-path selection
   makes those probes sublinear in log size. Index names are
   deterministic ([dl_ix_<rel>_<col>]) and creation is idempotent, so
   re-registration and recovery are safe. Recovery itself needs no
   special casing: [apply_recovered] clears and bulk-loads the tables,
   and both paths maintain declared indexes. *)
let auto_index_log_relation db (g : Usage_log.generator) =
  let cat = Database.catalog db in
  match Catalog.find_opt cat g.Usage_log.relation with
  | None -> ()
  | Some table ->
    let declare col kind =
      match Schema.find_index (Table.schema table) col with
      | None -> ()
      | Some _ ->
        let name =
          Printf.sprintf "dl_ix_%s_%s" (lc g.Usage_log.relation) (lc col)
        in
        if not (Catalog.mem_index cat name) then
          ignore
            (Catalog.create_index cat ~name ~table:g.Usage_log.relation
               ~column:col ~kind)
    in
    declare "ts" Index.Sorted;
    declare "uid" Index.Hash;
    (* The vectorized executor scans log relations zero-copy through a
       columnar mirror; building it here (and keeping it maintained by
       the table's mutation hooks) means batch scans never transpose the
       heap. Cheap to maintain — one vector push per column per append —
       and harmless when the row path is pinned. *)
    ignore (Table.enable_columnar table)

(* Install the state recovered from the persistence directory: log
   relation contents, the clock, and the registered-policy set. The same
   generators must be registered as when the state was written — a
   recovered relation without its table is an error, not a skip. *)
let apply_recovered (db : Database.t) (r : Persistence.Recovery.recovered) :
    Policy.t list =
  let st = r.Persistence.Recovery.state in
  List.iter
    (fun (rel, (rs : Persistence.Snapshot.rel)) ->
      match Catalog.find_opt (Database.catalog db) rel with
      | None ->
        Persistence.Recovery.error
          "recovered log relation %s has no registered generator" rel
      | Some table ->
        if not (is_log' db rel) then
          Persistence.Recovery.error "recovered relation %s is not a log relation" rel;
        if rs.Persistence.Snapshot.schema <> [] then begin
          let norm = List.map (fun (n, ty) -> (lc n, ty)) in
          let installed =
            List.map
              (fun (c : Schema.column) -> (c.Schema.name, c.Schema.ty))
              (Schema.columns (Table.schema table))
          in
          if norm installed <> norm rs.Persistence.Snapshot.schema then
            Persistence.Recovery.error
              "recovered relation %s: snapshot schema does not match the \
               installed one"
              rel
        end;
        Table.clear table;
        Table.bulk_load table rs.Persistence.Snapshot.rows)
    st.Persistence.Snapshot.relations;
  Usage_log.set_clock db st.Persistence.Snapshot.clock;
  List.map
    (fun (p : Persistence.Record.policy_rec) ->
      Policy.create (Database.catalog db) ~is_log:(is_log' db)
        ~name:p.Persistence.Record.name
        ~active_from:p.Persistence.Record.active_from p.Persistence.Record.source)
    st.Persistence.Snapshot.policies

let create ?(config = default_config) ?(generators = Usage_log.standard)
    ?persist_dir ?(persist_fsync = Persistence.Store.Interval 32)
    (db : Database.t) : t =
  if not (Catalog.mem (Database.catalog db) Usage_log.clock_relation) then
    Usage_log.install_clock db;
  let generators =
    List.sort (fun a b -> compare a.Usage_log.rank b.Usage_log.rank) generators
  in
  List.iter
    (fun g ->
      if not (Catalog.mem (Database.catalog db) g.Usage_log.relation) then
        Usage_log.install_relation db g;
      auto_index_log_relation db g)
    generators;
  let gen_index = Hashtbl.create 8 in
  List.iter (fun g -> Hashtbl.replace gen_index (lc g.Usage_log.relation) g) generators;
  let t =
    {
      db;
      config;
      generators;
      gen_index;
      registered = [];
      plan = None;
      last_violations = [];
      persist = None;
      persist_scope = [];
      prepared = Prepared.create (Database.catalog db);
      pool = None;
      par_batches = 0;
      par_tasks = 0;
      adm_fast = 0;
      adm_retried = 0;
      adm_ineligible = 0;
      adm_submissions = 0;
      rel_checks = Atomic.make 0;
      rel_skips = Atomic.make 0;
      delta_store = Incremental.Delta_store.create ();
      relevance_store = Incremental.Delta_store.create ();
    }
  in
  Prepared.set_vectorized t.prepared config.vectorized;
  (match persist_dir with
  | None -> ()
  | Some dir ->
    let store, recovered = Persistence.Store.open_dir ~fsync:persist_fsync dir in
    (match recovered with
    | None -> ()
    | Some r -> t.registered <- apply_recovered db r);
    t.persist <- Some store);
  t

let database t = t.db

let is_log t rel = Catalog.is_log (Database.catalog t.db) rel

(* The single invalidation point: dropping the evaluation plan and
   bumping the catalog generation together, so the prepared-plan cache
   (and anything else keyed on the generation, like PR 1's
   persistence-scope recompute in {!plan}) can never observe one without
   the other. *)
let invalidate t =
  t.plan <- None;
  Catalog.touch (Database.catalog t.db);
  (* Bases are keyed on the generation we just bumped, so they are all
     dead; dropping them keeps the stores from accreting entries for
     renamed or retired policies. *)
  Incremental.Delta_store.reset t.delta_store;
  Incremental.Delta_store.reset t.relevance_store

let set_config t config =
  t.config <- config;
  Prepared.set_vectorized t.prepared config.vectorized;
  invalidate t

let register_generator t (g : Usage_log.generator) =
  if not (Catalog.mem (Database.catalog t.db) g.Usage_log.relation) then
    Usage_log.install_relation t.db g;
  auto_index_log_relation t.db g;
  t.generators <-
    List.sort (fun a b -> compare a.Usage_log.rank b.Usage_log.rank)
      (g :: t.generators);
  Hashtbl.replace t.gen_index (lc g.Usage_log.relation) g;
  invalidate t

let add_policy t ~name sql : Policy.t =
  if List.exists (fun p -> p.Policy.name = name) t.registered then
    Errors.catalog_error "policy %s already registered" name;
  let p =
    Policy.create (Database.catalog t.db) ~is_log:(is_log t) ~name
      ~active_from:(Usage_log.current_time t.db) sql
  in
  t.registered <- t.registered @ [ p ];
  invalidate t;
  (match t.persist with
  | Some store ->
    Persistence.Store.log_add_policy store
      {
        Persistence.Record.name;
        source = sql;
        active_from = p.Policy.active_from;
      }
  | None -> ());
  p

let remove_policy t name =
  let before = List.length t.registered in
  t.registered <- List.filter (fun p -> p.Policy.name <> name) t.registered;
  invalidate t;
  match t.persist with
  | Some store when List.length t.registered < before ->
    Persistence.Store.log_remove_policy store name
  | Some _ | None -> ()

let policies t = t.registered

(* Offline phase (§4.4) --------------------------------------------------- *)

let compute_plan t : plan =
  let is_log = is_log t in
  let ps = t.registered in
  let ps, unified_groups =
    if t.config.unification then
      let o = Unify.run (Database.catalog t.db) ~is_log ps in
      (o.Unify.policies, o.Unify.groups)
    else (ps, [])
  in
  let ps =
    if t.config.time_independent then List.map (Time_independent.apply ~is_log) ps
    else ps
  in
  let inter, rest =
    match t.config.strategy with
    | Interleaved ->
      List.partition
        (fun p -> p.Policy.interleavable || p.Policy.core_prunable)
        ps
    | Union_all | Serial -> ([], ps)
  in
  let union_rels pols =
    List.sort_uniq String.compare (List.concat_map (fun p -> p.Policy.log_rels) pols)
  in
  {
    active = ps;
    inter;
    rest;
    required = union_rels ps;
    store_rels = union_rels (List.filter (fun p -> not p.Policy.ti_rewritten) ps);
    unified_groups;
    relevance =
      Relevance.build (Database.catalog t.db) ~is_log
        ~clock_rel:Usage_log.clock_relation ~time_col:Usage_log.time_column ps;
  }

(* Full persisted state at this instant, for checkpointing: the clock,
   the policy set as registered, and every scope relation's contents. *)
let persist_state t ~(scope : string list) : Persistence.Snapshot.state =
  let rel_state rel =
    let table = Database.table t.db rel in
    let schema =
      List.map
        (fun (c : Schema.column) -> (c.Schema.name, c.Schema.ty))
        (Schema.columns (Table.schema table))
    in
    let rows = Table.to_seq table |> Seq.map Row.cells |> List.of_seq in
    (rel, { Persistence.Snapshot.schema; rows })
  in
  {
    Persistence.Snapshot.clock = Usage_log.current_time t.db;
    policies =
      List.map
        (fun (p : Policy.t) ->
          {
            Persistence.Record.name = p.Policy.name;
            source = p.Policy.source;
            active_from = p.Policy.active_from;
          })
        t.registered;
    relations = List.map rel_state (List.sort_uniq String.compare scope);
  }

let checkpoint_to t store ~scope =
  Persistence.Store.checkpoint store (persist_state t ~scope);
  t.persist_scope <- scope

let plan t =
  match t.plan with
  | Some p -> p
  | None ->
    let p = compute_plan t in
    t.plan <- Some p;
    (* Recompute the persistence scope on every plan invalidation: a
       config or policy change can move a log relation in or out of
       [store_rels] (e.g. a policy ceasing to be TI-rewritten), and a
       stale scope would let its tuples skip persistence. A checkpoint
       realigns the on-disk state with the new scope atomically. *)
    (match t.persist with
    | Some store when p.store_rels <> t.persist_scope ->
      checkpoint_to t store ~scope:p.store_rels
    | Some _ | None -> ());
    p

let log_size t rel = Table.row_count (Database.table t.db rel)

let plan_cache_stats t = Prepared.stats t.prepared

let clear_plan_cache t = Prepared.clear t.prepared

(* Parallel runtime -------------------------------------------------------- *)

(* The pool evaluating this engine's parallel batches, or [None] on the
   strictly serial path. [config.domains] counts evaluating domains: the
   submitting domain helps drain each batch, so the pool holds
   [domains - 1] workers. Pools come from the process-wide registry
   ({!Parallel.Pool.shared}) — engines with the same width share one
   pool, keeping the spawned-domain count bounded no matter how many
   engines a process creates. *)
let pool_of t : Parallel.Pool.t option =
  if t.config.domains <= 1 then None
  else
    Some
      (match t.pool with
      | Some p
        when Parallel.Pool.workers p = t.config.domains - 1
             && not (Parallel.Pool.is_stopped p) ->
        p
      | Some _ | None ->
        let p = Parallel.Pool.shared ~workers:(t.config.domains - 1) in
        t.pool <- Some p;
        p)

(* Every query a parallel batch evaluates reads a frozen database state:
   increments are appended tentatively *before* evaluation, commitment
   mutations happen after the join, and registration/DDL only run
   between submissions. Under [Table.debug_checks] we turn that
   guarantee into an assertion by freeze-marking every table for the
   span of the batch — any mutation attempt (a would-be cross-domain
   data race) then raises instead of corrupting. *)
let with_frozen t (f : unit -> 'a) : 'a =
  if not !Table.debug_checks then f ()
  else begin
    let cat = Database.catalog t.db in
    let tables = List.map (Catalog.find cat) (Catalog.table_names cat) in
    List.iter Table.freeze tables;
    Fun.protect ~finally:(fun () -> List.iter Table.thaw tables) f
  end

let parallel_stats t = (t.config.domains, t.par_batches, t.par_tasks)

(* Online phase ------------------------------------------------------------ *)

(* Mutable per-submission record of generated log increments. *)
type submission = {
  ctx : Usage_log.query_ctx;
  stats : Stats.t;
  generated : (string, Table.savepoint) Hashtbl.t;
  increment_floor : (string, int) Hashtbl.t;
      (** first tid of the tentative increment, per relation *)
}

let generator_for t rel =
  match Hashtbl.find_opt t.gen_index rel with
  | Some g -> g
  | None -> Errors.catalog_error "no log-generating function for %s" rel

(* Fan a batch of independent read-only evaluations out over the pool.
   Each task accumulates into a private {!Stats.t} (no cross-domain
   mutation) merged into the submission's record after the join; result
   order follows input order, so violation lists keep registration-rank
   order; an exception in any task is re-raised (first in input order)
   only after the whole batch has joined, so tables are never unfrozen
   under a still-running task. *)
let par_map t (sub : submission) (pool : Parallel.Pool.t)
    (f : Stats.t -> 'a -> 'b) (xs : 'a list) : 'b list =
  t.par_batches <- t.par_batches + 1;
  t.par_tasks <- t.par_tasks + List.length xs;
  with_frozen t (fun () ->
      let results =
        Parallel.Pool.map pool
          (fun x ->
            let stats = Stats.create () in
            let r = f stats x in
            (stats, r))
          xs
      in
      List.map
        (fun (stats, r) ->
          Stats.merge_into sub.stats stats;
          r)
        results)

(* Run the log-generating function for [rel] under [ctx] and tentatively
   append the increment. The savepoint is opened at the relation's first
   touch, so a batched submission record accumulates every member's rows
   under one savepoint per relation; [increment_floor] tracks the lowest
   tentative tid across members. *)
let gen_rel_for t (sub : submission) (ctx : Usage_log.query_ctx) rel =
  let g = generator_for t rel in
  let table = Database.table t.db g.Usage_log.relation in
  Stats.timed
    (fun d -> sub.stats.Stats.log_track <- sub.stats.Stats.log_track +. d)
    (fun () ->
      let rows = g.Usage_log.generate ctx in
      (* The log is a set: dedupe the increment. *)
      let seen = Hashtbl.create 16 in
      let rows =
        List.filter
          (fun r ->
            let k = Value.canonical_key_of_array r in
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          rows
      in
      if not (Hashtbl.mem sub.generated rel) then
        Hashtbl.add sub.generated rel (Table.savepoint table);
      let ts = Value.Int ctx.Usage_log.time in
      let first = ref None in
      List.iter
        (fun cells ->
          let tid = Table.insert table (Array.append [| ts |] cells) in
          if !first = None then first := Some tid)
        rows;
      let floor = Option.value !first ~default:max_int in
      match Hashtbl.find_opt sub.increment_floor rel with
      | None -> Hashtbl.add sub.increment_floor rel floor
      | Some f when floor < f -> Hashtbl.replace sub.increment_floor rel floor
      | Some _ -> ())

(* Run the log-generating function for [rel] (once per submission) under
   the submission's own context. *)
let gen_rel t (sub : submission) rel =
  if not (Hashtbl.mem sub.generated rel) then gen_rel_for t sub sub.ctx rel

(* Evaluate a policy query; returns the violation message if non-empty.
   [stats] is the record to charge — the submission's on the serial
   path, a task-private one inside a parallel batch. *)
let eval_query t ~(stats : Stats.t) ?(track_src = false) (q : Ast.query) :
    Executor.result option =
  Stats.timed
    (fun d -> stats.Stats.policy_eval <- stats.Stats.policy_eval +. d)
    (fun () ->
      stats.Stats.policy_calls <- stats.Stats.policy_calls + 1;
      let opts = { Executor.lineage = false; track_src } in
      let r =
        Prepared.run t.prepared ~opts ~share:t.config.shared_scans q
      in
      match r.Executor.out_rows with [] -> None | _ -> Some r)

(* Every distinct string a violation result projects. A plain policy
   projects its one literal message; a unified policy projects exactly
   the messages of its firing members (the lifted message column), so a
   single evaluation must be allowed to report several. Rows that don't
   carry a single string (a policy someone wrote to project data) fall
   back to the registered message. *)
let messages_of_result (p : Policy.t) (r : Executor.result) : string list =
  match
    List.filter_map
      (fun (row : Executor.row_out) ->
        match row.Executor.values with
        | [| Value.Str m |] -> Some m
        | _ -> None)
      r.Executor.out_rows
  with
  | [] -> [ p.Policy.message ]
  | ms -> List.sort_uniq String.compare ms

(* Incremental evaluation --------------------------------------------------- *)

(* The compiled delta variants of a policy's query, via the per-domain
   prepared cache; [None] when delta evaluation is off or the query is
   not delta-eligible (see {!Optimizer.derive_delta}). *)
let delta_entry t (p : Policy.t) : Executor.delta_compiled option =
  if not t.config.delta then None
  else
    Prepared.prepare_delta t.prepared ~is_log:(is_log t)
      ~clock_rel:Usage_log.clock_relation p.Policy.query

(* Try to decide a policy from its delta plans alone. [Some res] is a
   verdict: the policy's result over the full tentative state is empty
   iff [res = None], and a non-empty [res] carries the union of every
   branch's rows, deduplicated by value — equal, as a set, to the rows
   full evaluation would produce, so message extraction downstream sees
   the same set either way. (All branches must run: a unified policy's
   firing members can be split across branches, and stopping at the
   first non-empty one would truncate the message set.) [None] means no
   shortcut — delta off, plan ineligible, the base invalidated, or a
   residual branch's clock guard failed — and the caller must evaluate
   in full.

   Soundness, per branch kind:
   - SPJ: a valid base says the query was empty over the state below the
     log relations' delta watermarks, the catalog generation is
     unchanged, and every dependency's version snapshot matches — so
     plain relations are untouched and log relations have only gained
     rows above the watermark or lost rows (both monotone-safe). Any
     result row must then bind at least one log slot to a delta tuple,
     and the per-slot variants enumerate exactly those bindings.
   - Residual: an exact recompute of the clock-eliminated plan; needs no
     base at all, only the guard that the clock relation holds exactly
     one row (dropping the clock slot assumed a 1-row cross join).
   - Aggregate: the telescoped streams emit precisely the joined tuples
     binding at least one delta row; folding them into scratch clones of
     the carried accumulators yields each touched group's exact state
     (carried = rows below the watermarks, by establishment). Untouched
     groups' state is unchanged from the proved-empty base, so HAVING —
     a function of group state alone — still rejects them.

   Inside parallel batches this runs on worker domains over frozen
   tables: carried aggregate state is only read (scratch clones are
   task-local), and the per-branch states were created on the serial
   establishment path, so the store's tables are not mutated here. *)
let delta_try t ~(stats : Stats.t) (p : Policy.t) :
    Executor.result option option =
  match delta_entry t p with
  | None -> None
  | Some entry ->
    let cat = Database.catalog t.db in
    let gen = Catalog.generation cat in
    let vers = Incremental.Delta_store.snapshot cat entry.Executor.delta_deps in
    let clock_ok =
      List.for_all
        (function
          | Executor.C_residual { c_clock; _ } -> (
            match Catalog.find_opt cat c_clock with
            | Some tb -> Table.row_count tb = 1
            | None -> false)
          | Executor.C_spj _ | Executor.C_agg _ -> true)
        entry.Executor.delta_branches
    in
    let base_needed =
      List.exists
        (function
          | Executor.C_residual _ -> false
          | Executor.C_spj _ | Executor.C_agg _ -> true)
        entry.Executor.delta_branches
    in
    if
      (not clock_ok)
      || base_needed
         && not
              (Incremental.Delta_store.valid t.delta_store p.Policy.name ~gen
                 ~vers)
    then begin
      Incremental.Delta_store.note_full_eval t.delta_store;
      None
    end
    else begin
      Incremental.Delta_store.note_delta_eval t.delta_store;
      Stats.timed
        (fun d -> stats.Stats.policy_eval <- stats.Stats.policy_eval +. d)
        (fun () ->
          stats.Stats.policy_calls <- stats.Stats.policy_calls + 1;
          let columns = ref [] in
          let run_branch bi (b : Executor.compiled_branch) :
              Executor.row_out list =
            match b with
            | Executor.C_spj variants ->
              List.concat_map
                (fun c ->
                  let r = Executor.run_compiled c in
                  if !columns = [] then columns := r.Executor.columns;
                  r.Executor.out_rows)
                variants
            | Executor.C_residual { c_plan; _ } ->
              let r = Executor.run_compiled c_plan in
              if !columns = [] then columns := r.Executor.columns;
              r.Executor.out_rows
            | Executor.C_agg a ->
              if !columns = [] then columns := a.Executor.c_columns;
              let srows =
                List.concat_map
                  (fun c ->
                    List.map
                      (fun (r : Executor.row_out) -> r.Executor.values)
                      (Executor.run_compiled c).Executor.out_rows)
                  a.Executor.c_variants
              in
              let state =
                Incremental.Delta_store.agg_state t.delta_store
                  ~policy:p.Policy.name ~branch:bi
              in
              let touched =
                Incremental.Delta_store.agg_scratch state
                  ~specs:a.Executor.c_specs ~nkeys:a.Executor.c_nkeys srows
              in
              List.filter_map
                (fun (key, aggvals) ->
                  (* Representative row: group-key cells recovered from
                     the key values; positions no bare-field key covers
                     stay Null and are never read (classification
                     restricted HAVING/projections to covered cells). *)
                  let rep = Array.make a.Executor.c_width Value.Null in
                  List.iteri
                    (fun ki slot ->
                      match slot with
                      | Some fi -> rep.(fi) <- key.(ki)
                      | None -> ())
                    a.Executor.c_rep_slots;
                  let keep =
                    match a.Executor.c_having with
                    | None -> true
                    | Some h -> Value.to_bool (h rep aggvals)
                  in
                  if keep then
                    Some
                      {
                        Executor.values =
                          Array.of_list
                            (List.map (fun cp -> cp rep aggvals)
                               a.Executor.c_projs);
                        lineage = [];
                        src_tids = [];
                      }
                  else None)
                touched
          in
          let rows =
            List.concat (List.mapi run_branch entry.Executor.delta_branches)
          in
          match rows with
          | [] -> Some None
          | _ ->
            let seen = Hashtbl.create 16 in
            let rows =
              List.filter
                (fun (r : Executor.row_out) ->
                  let k = Value.canonical_key_of_array r.Executor.values in
                  if Hashtbl.mem seen k then false
                  else begin
                    Hashtbl.add seen k ();
                    true
                  end)
                rows
            in
            Some (Some { Executor.columns = !columns; out_rows = rows }))
    end

(* After an accepted submission: acceptance proved every active policy
   empty over the tentative state, of which the just-committed state is a
   subset (monotonicity), so every policy is empty over the committed
   state. Fold carried aggregate state forward, advance all log
   watermarks to the committed frontier, and record a base for each
   delta-eligible policy — and a relevance base for each index-eligible
   one — in the same breath: the alignment of watermark and snapshot is
   what {!delta_try}'s and {!irrelevant}'s soundness arguments rest on.

   The aggregate fold must run BEFORE the watermarks move: the telescoped
   delta streams read [Plan.Delta] at execution time, so only now — with
   the increment committed but the watermarks still at the previous
   frontier — do they denote exactly the rows this submission added.
   (This also covers policies the relevance index or batching skipped at
   evaluation time: the fold depends only on the committed rows, not on
   which evaluation path decided the policy.) When a policy's base is no
   longer valid — a plain dependency mutated, arbitrary DML deleted log
   rows, or compaction invalidated a MIN/MAX-bearing branch — the carried
   groups are rebuilt from the branch's full all-below stream instead. *)
let establish_bases t (pl : plan) =
  let cat = Database.catalog t.db in
  let gen = Catalog.generation cat in
  let failed = Hashtbl.create 4 in
  if t.config.delta then
    List.iter
      (fun (p : Policy.t) ->
        match delta_entry t p with
        | None -> ()
        | Some entry
          when List.exists
                 (function Executor.C_agg _ -> true | _ -> false)
                 entry.Executor.delta_branches -> (
          let vers =
            Incremental.Delta_store.snapshot cat entry.Executor.delta_deps
          in
          let base_ok =
            Incremental.Delta_store.valid t.delta_store p.Policy.name ~gen
              ~vers
          in
          let stream cs =
            List.concat_map
              (fun c ->
                List.map
                  (fun (r : Executor.row_out) -> r.Executor.values)
                  (Executor.run_compiled c).Executor.out_rows)
              cs
          in
          try
            List.iteri
              (fun bi b ->
                match b with
                | Executor.C_spj _ | Executor.C_residual _ -> ()
                | Executor.C_agg a ->
                  let state =
                    Incremental.Delta_store.agg_state t.delta_store
                      ~policy:p.Policy.name ~branch:bi
                  in
                  if base_ok then
                    Incremental.Delta_store.agg_absorb state
                      ~specs:a.Executor.c_specs ~nkeys:a.Executor.c_nkeys
                      (stream a.Executor.c_variants)
                  else begin
                    Incremental.Delta_store.agg_clear state;
                    Incremental.Delta_store.note_agg_rebuild t.delta_store;
                    Incremental.Delta_store.agg_absorb state
                      ~specs:a.Executor.c_specs ~nkeys:a.Executor.c_nkeys
                      (stream [ a.Executor.c_full ])
                  end)
              entry.Executor.delta_branches
          with Errors.Sql_error _ ->
            (* The fold died mid-branch (e.g. SUM over a value a later
               mutation made non-numeric); the carried state is no longer
               trustworthy. Drop it and withhold this policy's base so
               evaluation falls back to full runs until a clean rebuild
               succeeds at a later establishment. *)
            List.iteri
              (fun bi b ->
                match b with
                | Executor.C_agg _ ->
                  Incremental.Delta_store.agg_clear
                    (Incremental.Delta_store.agg_state t.delta_store
                       ~policy:p.Policy.name ~branch:bi)
                | Executor.C_spj _ | Executor.C_residual _ -> ())
              entry.Executor.delta_branches;
            Hashtbl.replace failed p.Policy.name ())
        | Some _ -> ())
      pl.active;
  List.iter
    (fun (g : Usage_log.generator) ->
      match Catalog.find_opt cat g.Usage_log.relation with
      | Some table -> Table.mark_delta_base table
      | None -> ())
    t.generators;
  if t.config.delta then
    List.iter
      (fun (p : Policy.t) ->
        if not (Hashtbl.mem failed p.Policy.name) then
          match delta_entry t p with
          | None -> ()
          | Some entry ->
            let vers =
              Incremental.Delta_store.snapshot cat entry.Executor.delta_deps
            in
            Incremental.Delta_store.establish t.delta_store p.Policy.name ~gen
              ~vers)
      pl.active;
  if t.config.relevance then
    List.iter
      (fun (p : Policy.t) ->
        match Relevance.info pl.relevance p.Policy.name with
        | Some info when info.Relevance.eligible ->
          let vers =
            Incremental.Delta_store.snapshot cat info.Relevance.deps
          in
          Incremental.Delta_store.establish t.relevance_store p.Policy.name
            ~gen ~vers
        | Some _ | None -> ())
      pl.active

(* The relevance index's skip decision (see {!Relevance} for the full
   soundness argument): the policy is index-eligible, its base — proof
   that it was empty over the last committed state — still validates
   against the catalog generation and every dependency's version
   counter (waived for TI-pinned policies, whose verdict is decided at
   the current tick alone), its enumerated filter sources are
   untouched, and no row of the tentative increment can bind any of its
   log slots. All of that together pins the result to the base's:
   empty, so evaluation is skipped. Read-only over frozen state, so
   safe inside pool tasks. *)
let irrelevant ?available t (pl : plan) (p : Policy.t) : bool =
  t.config.relevance
  &&
  match Relevance.info pl.relevance p.Policy.name with
  | None -> false
  | Some info ->
    info.Relevance.eligible
    && begin
      Atomic.incr t.rel_checks;
      let cat = Database.catalog t.db in
      (* A TI-pinned policy's verdict is emptiness at the current tick —
         blocked slots decide it with no base (its clock dependency
         would invalidate one every submission anyway). *)
      let based =
        info.Relevance.ti_pinned
        ||
        let gen = Catalog.generation cat in
        let vers = Incremental.Delta_store.snapshot cat info.Relevance.deps in
        Incremental.Delta_store.valid t.relevance_store p.Policy.name ~gen
          ~vers
      in
      let skip = based && Relevance.blocked ?available cat info in
      if skip then Atomic.incr t.rel_skips;
      skip
    end

type delta_stats = {
  eligible_plans : int;
  fallback_plans : int;
  delta_bases : int;
  delta_evals : int;
  full_evals : int;
  agg_groups : int;
  agg_rebuilds : int;
}

let delta_stats t : delta_stats =
  let pl = plan t in
  let eligible, fallback =
    List.fold_left
      (fun (e, f) p ->
        if Option.is_some (delta_entry t p) then (e + 1, f) else (e, f + 1))
      (0, 0) pl.active
  in
  let s = Incremental.Delta_store.stats t.delta_store in
  {
    eligible_plans = eligible;
    fallback_plans = fallback;
    delta_bases = s.Incremental.Delta_store.bases;
    delta_evals = s.Incremental.Delta_store.delta_evals;
    full_evals = s.Incremental.Delta_store.full_evals;
    agg_groups = s.Incremental.Delta_store.agg_groups;
    agg_rebuilds = s.Incremental.Delta_store.agg_rebuilds;
  }

type relevance_stats = {
  rel_indexed : int;  (** active policies in the index *)
  rel_eligible : int;  (** of those, index-eligible *)
  rel_checks : int;  (** skip decisions consulted *)
  rel_skips : int;  (** policies skipped without evaluation *)
}

let relevance_stats t : relevance_stats =
  let idx = (plan t).relevance in
  {
    rel_indexed = Relevance.size idx;
    rel_eligible = Relevance.eligible_count idx;
    rel_checks = Atomic.get t.rel_checks;
    rel_skips = Atomic.get t.rel_skips;
  }

(* (hits, misses) of the shared-scan materialization cache. *)
let shared_scan_stats t = Prepared.shared_stats t.prepared

type vector_stats = {
  vec_enabled : bool;  (** this engine's configured route *)
  vec_batches : int;  (** batches materialized (scans + join outputs) *)
  vec_rows : int;  (** total rows across those batches *)
  vec_fallbacks : int;  (** subtree compilations routed back to rows *)
  vec_hist : int array;
      (** rows-per-batch histogram: < 16, < 256, < 4096, < 65536, rest *)
  vec_typed_cols : int;  (** mirror columns on a typed unboxed layout *)
  vec_mixed_cols : int;  (** mirror columns demoted to boxed Mixed *)
  vec_dict_entries : int;  (** interned strings across TEXT dictionaries *)
}

(* Process-wide (the compilers' counters are shared across engines, like
   [Executor.rows_examined]); [vec_enabled] is this engine's config, and
   the layout census walks this engine's columnar mirrors. *)
let vector_stats t : vector_stats =
  let typed, mixed, dict_entries =
    let cat = Database.catalog t.db in
    List.fold_left
      (fun (ty, mx, de) name ->
        match Table.columnar (Catalog.find cat name) with
        | None -> (ty, mx, de)
        | Some store ->
          let t', m', d' = Column.layout_stats store in
          (ty + t', mx + m', de + d'))
      (0, 0, 0) (Catalog.table_names cat)
  in
  {
    vec_enabled = t.config.vectorized;
    vec_batches = Atomic.get Compile_batch.batches_built;
    vec_rows = Atomic.get Compile_batch.batch_rows;
    vec_fallbacks = Atomic.get Compile_batch.row_fallbacks;
    vec_hist = Compile_batch.hist_snapshot ();
    vec_typed_cols = typed;
    vec_mixed_cols = mixed;
    vec_dict_entries = dict_entries;
  }

type unify_stats = {
  unify_registered : int;  (** policies as registered *)
  unify_active : int;  (** policies after unification / rewriting *)
  unify_groups : int;  (** unified groups *)
  unify_members : int;  (** registered policies absorbed into groups *)
}

let unify_stats t : unify_stats =
  let pl = plan t in
  {
    unify_registered = List.length t.registered;
    unify_active = List.length pl.active;
    unify_groups = List.length pl.unified_groups;
    unify_members =
      List.fold_left
        (fun n (g : Unify.group) -> n + List.length g.Unify.members)
        0 pl.unified_groups;
  }

(* §4.3 improved partial policies: a non-empty partial result whose rows
   draw only on committed (pre-increment) log tuples proves the policy
   still holds, provided the policy's log relations are all ts-joined and
   the partial query retains at least one log relation. *)
let independent_of_increment t ~(stats : Stats.t) (sub : submission)
    (p : Policy.t) (partial_q : Ast.query) : bool =
  let is_log = is_log t in
  let ts_joined =
    match p.Policy.query with
    | Ast.Select s -> (
      let log_aliases =
        List.filter (fun (_, rel) -> is_log rel) (Analysis.table_occurrences s)
      in
      match log_aliases with
      | [] -> false
      | (a0, _) :: rest ->
        let classes =
          Analysis.Eq_classes.of_conjuncts (Ast.conjuncts_opt s.Ast.where)
        in
        List.for_all
          (fun (a, _) -> Analysis.Eq_classes.same classes (a0, "ts") (a, "ts"))
          rest)
    | Ast.Union _ -> false
  in
  let slot_rels = Partial.from_slot_relations partial_q in
  let has_log_slot =
    List.exists (function Some r -> is_log r | None -> false) slot_rels
  in
  if not (ts_joined && has_log_slot) then false
  else
    match eval_query t ~stats ~track_src:true partial_q with
    | None -> true (* raced to empty: certainly independent *)
    | Some r ->
      let slot_rel = Array.of_list slot_rels in
      List.for_all
        (fun (row : Executor.row_out) ->
          List.for_all
            (fun (slot, tid) ->
              match slot_rel.(slot) with
              | Some rel when is_log rel -> (
                match Hashtbl.find_opt sub.increment_floor rel with
                | Some floor -> tid < floor
                | None -> true)
              | _ -> true)
            row.Executor.src_tids)
        r.Executor.out_rows

(* Full evaluation of a policy batch. The policies of one submission are
   mutually independent read-only queries over the frozen tentative
   state, so with a pool they fan out one task per policy; results come
   back in input order, keeping the violation list in registration-rank
   order exactly as the serial loop produces it. With [domains = 1]
   ([pool = None]) this is the pre-existing serial loop, unchanged. *)
let eval_full t (sub : submission) (pool : Parallel.Pool.t option) (pl : plan)
    (ps : Policy.t list) : (Policy.t * string) list =
  let eval stats p =
    if irrelevant t pl p then [] (* increment can't touch it: holds *)
    else
      match delta_try t ~stats p with
      | Some None -> [] (* delta plans all empty: policy holds *)
      | Some (Some r) ->
        List.map (fun m -> (p, m)) (messages_of_result p r)
      | None -> (
        match eval_query t ~stats p.Policy.query with
        | Some r -> List.map (fun m -> (p, m)) (messages_of_result p r)
        | None -> [])
  in
  match pool with
  | Some pool when List.length ps > 1 ->
    List.concat (par_map t sub pool eval ps)
  | Some _ | None -> List.concat_map (eval sub.stats) ps

(* Interleaved policy evaluation (Algorithm 3). Returns violations. *)
let run_interleaved t (sub : submission) (pool : Parallel.Pool.t option)
    (pl : plan) : (Policy.t * string) list =
  let is_log = is_log t in
  let needed =
    List.sort_uniq String.compare
      (List.concat_map (fun p -> p.Policy.log_rels) pl.inter)
  in
  let gens = List.filter (fun g -> List.mem (lc g.Usage_log.relation) needed) t.generators in
  let remaining = ref pl.inter in
  let available = ref [] in
  List.iter
    (fun g ->
      let rel = lc g.Usage_log.relation in
      (* Retained relations are generated even after every policy has
         been pruned: their increment must reach the committed log
         whether or not checking still needs it — and pruning speed
         (which the relevance index changes) must never leak into the
         log's contents. *)
      if !remaining <> [] || List.mem rel pl.store_rels then begin
        gen_rel t sub rel;
        available := rel :: !available
      end;
      if !remaining <> [] then begin
        (* One partial-policy check per remaining policy: independent
           read-only queries over the logs generated so far (the
           increment for [rel] is already appended), so with a pool they
           run as one parallel batch; the filter keeps input order
           either way. *)
        let keep stats p =
          (* The relevance index first: the slots restricted to the
             relations generated so far, whose deltas are final. A
             skipped policy is proved to hold outright — no partial
             check now, no full evaluation later. *)
          if irrelevant ~available:!available t pl p then false
          else
          (* Interleavable policies evaluate the genuine πS; policies
             admitted via core-prunability evaluate the monotone
             HAVING-stripped core instead (empty core ⇒ π empty). *)
          let full stats p =
            let pq =
              Partial.of_query ~is_log ~available:!available p.Policy.query
            in
            let pq =
              if p.Policy.interleavable then pq else Partial.strip_having pq
            in
            match eval_query t ~stats pq with
            | None -> false (* partial policy empty: π satisfied *)
            | Some _ when
                p.Policy.interleavable && t.config.improved_partial
                && independent_of_increment t ~stats sub p pq ->
              false
            | Some _ -> true
          in
          (* Once every log relation of an interleavable policy is
             available, πS is the policy itself, so a delta-proved-empty
             verdict prunes it exactly as an empty πS would. Only the
             empty verdict short-circuits: a non-empty delta result must
             still flow through the original evaluation, where the
             improved-partial independence check may yet dismiss it. *)
          let covered =
            List.for_all (fun r -> List.mem r !available) p.Policy.log_rels
          in
          if covered && p.Policy.interleavable then
            match delta_try t ~stats p with
            | Some None -> false
            | Some (Some _) | None -> full stats p
          else full stats p
        in
        remaining :=
          (match pool with
          | Some pool when List.length !remaining > 1 ->
            let keeps = par_map t sub pool keep !remaining in
            List.filter_map
              (fun (p, k) -> if k then Some p else None)
              (List.combine !remaining keeps)
          | Some _ | None -> List.filter (keep sub.stats) !remaining)
      end)
    gens;
  (* Policies still standing are evaluated in full: interleavable ones are
     genuine violations (S covers their relations), core-pruned ones may
     still be saved by their HAVING. *)
  eval_full t sub pool pl !remaining

(* Serial / union evaluation over a policy list. *)
let run_serial t (sub : submission) (pool : Parallel.Pool.t option) (pl : plan)
    (ps : Policy.t list) : (Policy.t * string) list =
  List.iter (fun p -> List.iter (gen_rel t sub) p.Policy.log_rels) ps;
  eval_full t sub pool pl ps

let run_union t (sub : submission) (pool : Parallel.Pool.t option) (pl : plan)
    (ps : Policy.t list) : (Policy.t * string) list =
  match ps with
  | [] -> []
  | first :: others ->
    List.iter (fun p -> List.iter (gen_rel t sub) p.Policy.log_rels) ps;
    (* The violated rows: on the serial path, from the one big UNION of
       Algorithm 1; with a pool, each branch evaluates as its own task
       and the rows are concatenated. UNION's row dedup is absorbed by
       the [sort_uniq] over extracted messages below, so both forms see
       the same message set and produce identical violation lists. *)
    let violated_rows : Executor.row_out list option =
      match pool with
      | Some pool when others <> [] ->
        let rs =
          par_map t sub pool
            (fun stats p ->
              if irrelevant t pl p then None
              else
                match delta_try t ~stats p with
                | Some res -> res
                | None -> eval_query t ~stats p.Policy.query)
            ps
        in
        if List.for_all Option.is_none rs then None
        else
          Some
            (List.concat_map
               (function Some r -> r.Executor.out_rows | None -> [])
               rs)
      | Some _ | None ->
        (* Delta-decided policies peel off the UNION: each one's verdict
           comes from its delta plans alone, contributing its violation
           rows (all-constant projections, so exactly the rows full
           evaluation would add); the rest evaluate through the original
           UNION chain. Both row sets feed the same message extraction
           below, keeping the outcome identical to all-full evaluation. *)
        let delta_rows = ref [] in
        let fallback =
          List.filter
            (fun p ->
              if irrelevant t pl p then false
              else
                match delta_try t ~stats:sub.stats p with
                | Some None -> false
                | Some (Some r) ->
                  delta_rows := !delta_rows @ r.Executor.out_rows;
                  false
                | None -> true)
            ps
        in
        let union_rows =
          match fallback with
          | [] -> []
          | f :: rest ->
            let union_q =
              List.fold_left
                (fun acc p ->
                  Ast.Union { all = false; left = acc; right = p.Policy.query })
                f.Policy.query rest
            in
            (match eval_query t ~stats:sub.stats union_q with
            | None -> []
            | Some r -> r.Executor.out_rows)
        in
        (match union_rows @ !delta_rows with [] -> None | rows -> Some rows)
    in
    (match violated_rows with
    | None -> []
    | Some rows ->
      let messages =
        List.filter_map
          (fun (row : Executor.row_out) ->
            match row.Executor.values with
            | [| Value.Str m |] -> Some m
            | _ -> None)
          rows
        |> List.sort_uniq String.compare
      in
      let hits =
        List.filter_map
          (fun p ->
            if List.mem p.Policy.message messages then
              Some (p, p.Policy.message)
            else None)
          ps
      in
      (* Messages no registered message claims — a unified policy's
         lifted member messages — are attributed to [first] so none are
         dropped from the rejection, whether or not other policies also
         fired. *)
      let claimed = List.map snd hits in
      let extras =
        List.filter (fun m -> not (List.mem m claimed)) messages
      in
      hits @ List.map (fun m -> (first, m)) extras)

(* Log compaction (Algorithm 2 + §4.3 preemptive check) ------------------- *)

type mark = Mark_all | Mark_tids of (int, unit) Hashtbl.t

(* Execute one witness query, returning the retained slot-0 tids. *)
let witness_tids t (w : Ast.select) : int list =
  let opts = { Executor.lineage = false; track_src = true } in
  let r = Prepared.run t.prepared ~opts (Ast.Select w) in
  List.concat_map
    (fun (row : Executor.row_out) ->
      List.filter_map
        (fun (slot, tid) -> if slot = 0 then Some tid else None)
        row.Executor.src_tids)
    r.Executor.out_rows

(* Execute one witness query, adding the retained slot-0 tids to [acc]. *)
let run_witness t (sub : submission) (w : Ast.select) (acc : (int, unit) Hashtbl.t) =
  List.iter (fun tid -> Hashtbl.replace acc tid ()) (witness_tids t w);
  ignore sub

(* §4.3 preemptive log compaction: before generating relation [rel] just
   for storage, test whether its witnesses could possibly retain any tuple
   of the would-be increment, using only the already-generated logs. The
   witness's neighborhood relations all ts-equijoin the target, and the
   increment lives at the current timestamp, so the probe pins every
   surviving log relation to [ts = now]. Witness queries are monotone, so
   an empty probe implies an empty increment witness. *)
let preemptively_empty t (sub : submission) ~(now : int) (rel : string)
    (policies : Policy.t list) : bool =
  let is_log = is_log t in
  let available = Hashtbl.fold (fun r _ acc -> r :: acc) sub.generated [] in
  List.for_all
    (fun p ->
      match List.assoc_opt rel (Witness.for_policy ~is_log ~now p) with
      | None -> true
      | Some Witness.Keep_all -> false
      | Some (Witness.Queries qs) ->
        List.for_all
          (fun (w : Ast.select) ->
            (* Boolean probe of the witness restricted to generated logs. *)
            let probe =
              { w with Ast.items = [ Ast.Sel_expr (Ast.Lit (Value.Int 1), None) ];
                       distinct = Ast.All }
            in
            let pq = Partial.of_select ~is_log ~available probe in
            if pq.Ast.from = [] then false (* nothing left to test: generate *)
            else begin
              let pins =
                List.filter_map
                  (fun (alias, r) ->
                    if is_log r then
                      Some
                        (Ast.Binop
                           ( Ast.Eq,
                             Ast.Col (Some alias, "ts"),
                             Ast.Lit (Value.Int now) ))
                    else None)
                  (Analysis.table_occurrences pq)
              in
              let pq =
                { pq with Ast.where = Ast.conjoin (Ast.conjuncts_opt pq.Ast.where @ pins) }
              in
              Prepared.is_empty t.prepared (Ast.Select pq)
            end)
          qs)
    (List.filter (fun p -> List.mem rel p.Policy.log_rels) policies)

(* The commit path: compaction + persistence of the log increments. *)
let commit_logs t (sub : submission) (pool : Parallel.Pool.t option) (pl : plan)
    ~(now : int) =
  let stats = sub.stats in
  let is_log = is_log t in
  (* Per-relation rows actually retained this commit (the WAL record),
     and whether compaction deleted rows of the committed prefix — in
     which case the WAL's append-only story no longer describes the
     relation and a checkpoint must supersede it. *)
  let persisted : (string * Value.t array list) list ref = ref [] in
  let note_increment rel rows = if rows <> [] then persisted := (rel, rows) :: !persisted in
  let compacted = ref false in
  if not t.config.log_compaction then begin
    (* Persist increments of time-dependent relations; discard the rest. *)
    Stats.timed
      (fun d -> stats.Stats.compact_insert <- stats.Stats.compact_insert +. d)
      (fun () ->
        Hashtbl.iter
          (fun rel sp ->
            let table = Database.table t.db rel in
            if List.mem rel pl.store_rels then begin
              (* Fold straight to the cells list: no intermediate
                 [Row.t list] on the per-commit hot path. *)
              let n = ref 0 in
              let cells =
                Table.fold_since
                  (fun acc row ->
                    incr n;
                    Row.cells row :: acc)
                  [] table sp
              in
              stats.Stats.rows_logged <- stats.Stats.rows_logged + !n;
              note_increment rel (List.rev cells);
              Table.release table sp
            end
            else Table.rollback_to table sp)
          sub.generated)
  end
  else begin
    (* Time-dependent policies that still need the log. *)
    let td_policies =
      List.filter
        (fun p -> (not p.Policy.ti_rewritten) && p.Policy.log_rels <> [])
        pl.active
    in
    (* Preemptive check for relations not generated during evaluation. *)
    let skipped = Hashtbl.create 4 in
    List.iter
      (fun rel ->
        if not (Hashtbl.mem sub.generated rel) then
          if t.config.preemptive && preemptively_empty t sub ~now rel td_policies
          then Hashtbl.replace skipped rel ()
          else gen_rel t sub rel)
      pl.store_rels;
    (* Mark phase: run every witness query, collecting retained tids. *)
    let marks : (string, mark) Hashtbl.t = Hashtbl.create 4 in
    List.iter
      (fun rel ->
        if not (Hashtbl.mem skipped rel) then
          Hashtbl.replace marks rel (Mark_tids (Hashtbl.create 64)))
      pl.store_rels;
    Stats.timed
      (fun d -> stats.Stats.compact_mark <- stats.Stats.compact_mark +. d)
      (fun () ->
        match pool with
        | Some pool ->
          (* Witness structure first (cheap, no queries): a [Keep_all]
             promotes its relation to [Mark_all] — retaining everything,
             so that relation's other witness queries are moot exactly
             as on the serial path — then every witness query of the
             still-collecting relations fans out as one batch, each task
             folding into a private tid list merged after the join.
             Merged per-relation sets are bit-identical to the serially
             accumulated ones (sets of slot-0 tids; order-free). *)
          let tasks = ref [] in
          List.iter
            (fun p ->
              List.iter
                (fun (rel, w) ->
                  match Hashtbl.find_opt marks rel with
                  | None | Some Mark_all -> ()
                  | Some (Mark_tids _) -> (
                    match w with
                    | Witness.Keep_all -> Hashtbl.replace marks rel Mark_all
                    | Witness.Queries qs ->
                      List.iter (fun q -> tasks := (rel, q) :: !tasks) qs))
                (Witness.for_policy ~is_log ~now p))
            td_policies;
          let tasks =
            List.filter
              (fun (rel, _) ->
                match Hashtbl.find_opt marks rel with
                | Some (Mark_tids _) -> true
                | Some Mark_all | None -> false)
              (List.rev !tasks)
          in
          let tid_sets =
            match tasks with
            | [] -> []
            | tasks ->
              par_map t sub pool
                (fun _stats (rel, q) -> (rel, witness_tids t q))
                tasks
          in
          List.iter
            (fun (rel, tids) ->
              match Hashtbl.find_opt marks rel with
              | Some (Mark_tids acc) ->
                List.iter (fun tid -> Hashtbl.replace acc tid ()) tids
              | Some Mark_all | None -> ())
            tid_sets
        | None ->
          List.iter
            (fun p ->
              List.iter
                (fun (rel, w) ->
                  match Hashtbl.find_opt marks rel with
                  | None -> () (* skipped or not stored *)
                  | Some Mark_all -> ()
                  | Some (Mark_tids acc) -> (
                    match w with
                    | Witness.Keep_all -> Hashtbl.replace marks rel Mark_all
                    | Witness.Queries qs -> List.iter (fun q -> run_witness t sub q acc) qs))
                (Witness.for_policy ~is_log ~now p))
            td_policies);
    (* Delete + insert phases per relation. *)
    List.iter
      (fun rel ->
        let table = Database.table t.db rel in
        let sp = Hashtbl.find_opt sub.generated rel in
        let mark = Hashtbl.find_opt marks rel in
        (* Materialize only the retained part of the increment (the marks
           are final at this point), before rollback truncates it. *)
        let kept =
          match sp with
          | None -> []
          | Some sp ->
            List.rev
              (Table.fold_since
                 (fun acc row ->
                   let keep =
                     match mark with
                     | None -> false
                     | Some Mark_all -> true
                     | Some (Mark_tids keep) -> Hashtbl.mem keep (Row.tid row)
                   in
                   if keep then Row.cells row :: acc else acc)
                 [] table sp)
        in
        Option.iter (fun sp -> Table.rollback_to table sp) sp;
        (match mark with
        | None ->
          (* Relation skipped preemptively: nothing retained, nothing
             stored; committed rows keep their previous marks. *)
          ()
        | Some Mark_all -> ()
        | Some (Mark_tids keep) ->
          Stats.timed
            (fun d -> stats.Stats.compact_delete <- stats.Stats.compact_delete +. d)
            (fun () ->
              if Table.retain_tids table keep > 0 then compacted := true));
        (* Insert the retained part of the increment. *)
        Stats.timed
          (fun d -> stats.Stats.compact_insert <- stats.Stats.compact_insert +. d)
          (fun () ->
            List.iter
              (fun cells ->
                ignore (Table.insert table cells);
                stats.Stats.rows_logged <- stats.Stats.rows_logged + 1)
              kept;
            note_increment rel kept))
      pl.store_rels;
    (* Roll back increments of relations generated for evaluation only. *)
    Hashtbl.iter
      (fun rel sp ->
        if not (List.mem rel pl.store_rels) then
          Table.rollback_to (Database.table t.db rel) sp)
      sub.generated
  end;
  (* All savepoints are resolved now: a later failure (e.g. in the user
     query) must not attempt to roll them back again. *)
  Hashtbl.reset sub.generated;
  (* Durability. An accepted submission is one atomic WAL record: the
     clock advance plus every relation's retained increment. When witness
     compaction shrank a relation, an append-only record can no longer
     describe the transition, so the commit degrades to a checkpoint —
     which also truncates the WAL prefix the new snapshot supersedes, so
     the on-disk footprint tracks the compacted log (§4.1.2/§4.3). *)
  match t.persist with
  | None -> ()
  | Some store ->
    Stats.timed
      (fun d -> stats.Stats.persist <- stats.Stats.persist +. d)
      (fun () ->
        if !compacted then checkpoint_to t store ~scope:pl.store_rels
        else begin
          let increments =
            List.sort (fun (a, _) (b, _) -> String.compare a b) !persisted
          in
          Persistence.Store.log_commit store ~clock:now ~increments;
          if Persistence.Store.wal_records store >= wal_checkpoint_limit then
            checkpoint_to t store ~scope:pl.store_rels
        end)

(* Submission -------------------------------------------------------------- *)

let submit_ast t ~(uid : int) ?(extra = []) (query : Ast.query) : outcome =
  let pl = plan t in
  let now = Usage_log.current_time t.db + 1 in
  Usage_log.set_clock t.db now;
  let sub =
    {
      ctx = { Usage_log.uid; time = now; query; db = t.db; extra };
      stats = Stats.create ();
      generated = Hashtbl.create 4;
      increment_floor = Hashtbl.create 4;
    }
  in
  let rollback_all () =
    Hashtbl.iter
      (fun rel sp -> Table.rollback_to (Database.table t.db rel) sp)
      sub.generated
  in
  (* Any failure during checking (e.g. the user query itself is invalid
     and breaks the provenance function) must revert the tentative log,
     or the leaked savepoints would poison later submissions. *)
  let pool = pool_of t in
  match
    let violations =
      match t.config.strategy with
      | Union_all -> run_union t sub pool pl pl.active
      | Serial -> run_serial t sub pool pl pl.active
      | Interleaved ->
        (* Algorithm 3 on the interleavable policies, then the rest in
           full, as in the §4.4 online phase. *)
        let v1 = run_interleaved t sub pool pl in
        let v2 = run_serial t sub pool pl pl.rest in
        v1 @ v2
    in
    t.last_violations <- List.map fst violations;
    if violations <> [] then begin
      (* Reject: revert the tentative log (Eq. 1). *)
      rollback_all ();
      Rejected (List.map snd violations, sub.stats)
    end
    else begin
      commit_logs t sub pool pl ~now;
      if t.config.delta || t.config.relevance then establish_bases t pl;
      let result =
        Stats.timed
          (fun d -> sub.stats.Stats.query_exec <- sub.stats.Stats.query_exec +. d)
          (fun () -> Prepared.run t.prepared query)
      in
      Accepted (result, sub.stats)
    end
  with
  | outcome -> outcome
  | exception e ->
    rollback_all ();
    raise e

let submit t ~uid ?extra sql = submit_ast t ~uid ?extra (Parser.query sql)

(* Batched admission ------------------------------------------------------- *)

type batch_submission = {
  batch_uid : int;
  batch_extra : (string * Value.t) list;
  batch_query : Ast.query;
}

type batch_stats = {
  fast_batches : int;
  retried_batches : int;
  serial_batches : int;
  batched_submissions : int;
}

let batch_stats t =
  {
    fast_batches = t.adm_fast;
    retried_batches = t.adm_retried;
    serial_batches = t.adm_ineligible;
    batched_submissions = t.adm_submissions;
  }

(* The one-at-a-time equivalent of a batch: member exceptions are caught
   per member (the engine rolls its tentative state back before the
   exception escapes [submit_ast]), so one poisoned submission never
   swallows its batch-mates' verdicts. *)
let submit_serially t subs =
  List.map
    (fun s ->
      match submit_ast t ~uid:s.batch_uid ~extra:s.batch_extra s.batch_query with
      | o -> Ok o
      | exception e -> Error e)
    subs

(* Batch fast-path eligibility. The combined-state argument below rests
   on every active policy being a monotone SPJ query that never reads
   the clock — checked as every delta branch classifying [C_spj]
   (through the prepared cache, so the analysis amortizes across
   batches) — and on no member query reading a log relation or the
   clock (a member's own result must not depend on whether its
   batch-mates' increments are still tentative). Residual and aggregate
   branches are excluded even though they are delta-eligible: a residual
   plan reads the clock, which each member sees at a different tick, and
   an aggregate policy is non-monotone, so emptiness over the combined
   state says nothing about the arrival-order prefixes. *)
let batch_eligible t (pl : plan) subs =
  let is_log = is_log t in
  let is_clock rel = lc rel = Usage_log.clock_relation in
  let refs pred q =
    Analysis.log_relations ~is_log:pred q <> []
    || Analysis.subquery_uses_log ~is_log:pred q
  in
  List.for_all
    (fun (p : Policy.t) ->
      match
        Prepared.prepare_delta t.prepared ~is_log
          ~clock_rel:Usage_log.clock_relation p.Policy.query
      with
      | Some entry ->
        List.for_all
          (function
            | Executor.C_spj _ -> true
            | Executor.C_residual _ | Executor.C_agg _ -> false)
          entry.Executor.delta_branches
      | None -> false)
    pl.active
  && List.for_all
       (fun s -> not (refs is_log s.batch_query || refs is_clock s.batch_query))
       subs

(* Admit a batch of concurrent submissions.

   Fast path (all policies monotone SPJ per {!batch_eligible}): every
   member's log increments are appended tentatively — each member at its
   own clock tick, in arrival order — and the policy set is evaluated
   {e once} over the combined tentative state, fanning out over the
   domain pool against frozen tables exactly as a single submission's
   evaluation does. If every policy comes back empty, monotonicity gives
   the serial-equivalence argument: each arrival-order prefix of the
   batch is a subset of the combined state, so every policy is empty
   over it too, which is precisely what accepting the members one at a
   time would have checked. One commit then retains the combined
   increment (same mark phase, same WAL record count: one), so the log
   equals the serial replay's. If any policy fires, the verdict cannot
   be attributed to a member from the combined evaluation alone, so the
   tentative state is rolled back, the clock rewound, and the batch
   replayed serially — decisions are therefore {e always} identical to
   the arrival-order serial execution.

   Caveat inherited from the eligibility gate, documented in
   docs/SERVER.md: custom log-generating functions that read log
   relations (none of the standard ones do) could observe batch-mates'
   tentative rows during generation. *)
let submit_batch t (subs : batch_submission list) :
    (outcome, exn) result list =
  let n = List.length subs in
  t.adm_submissions <- t.adm_submissions + n;
  match subs with
  | [] -> []
  | [ _ ] ->
    t.adm_ineligible <- t.adm_ineligible + 1;
    submit_serially t subs
  | _ ->
    let pl = plan t in
    if not (batch_eligible t pl subs) then begin
      t.adm_ineligible <- t.adm_ineligible + 1;
      submit_serially t subs
    end
    else begin
      let now0 = Usage_log.current_time t.db in
      let now = now0 + n in
      let last = List.nth subs (n - 1) in
      let sub =
        {
          ctx =
            {
              Usage_log.uid = last.batch_uid;
              time = now;
              query = last.batch_query;
              db = t.db;
              extra = last.batch_extra;
            };
          stats = Stats.create ();
          generated = Hashtbl.create 4;
          increment_floor = Hashtbl.create 4;
        }
      in
      let rollback_all () =
        Hashtbl.iter
          (fun rel sp -> Table.rollback_to (Database.table t.db rel) sp)
          sub.generated;
        Hashtbl.reset sub.generated;
        Hashtbl.reset sub.increment_floor;
        Usage_log.set_clock t.db now0
      in
      (* Generate every relation a policy may read or the commit may
         store, for every member: preemptive skipping is pointless here
         (the mark phase sees the whole combined increment anyway). *)
      let rels =
        List.sort_uniq String.compare (pl.required @ pl.store_rels)
      in
      let pool = pool_of t in
      match
        Usage_log.set_clock t.db now;
        List.iteri
          (fun i s ->
            let ctx =
              {
                Usage_log.uid = s.batch_uid;
                time = now0 + i + 1;
                query = s.batch_query;
                db = t.db;
                extra = s.batch_extra;
              }
            in
            List.iter (gen_rel_for t sub ctx) rels)
          subs;
        eval_full t sub pool pl pl.active
      with
      | [] ->
        t.adm_fast <- t.adm_fast + 1;
        t.last_violations <- [];
        (* A commit failure must resolve the savepoints before escaping,
           exactly as [submit_ast]'s handler does, or they would poison
           later submissions. *)
        (try commit_logs t sub pool pl ~now
         with e ->
           rollback_all ();
           raise e);
        if t.config.delta || t.config.relevance then establish_bases t pl;
        List.map
          (fun s ->
            let stats = Stats.create () in
            match
              Stats.timed
                (fun d -> stats.Stats.query_exec <- stats.Stats.query_exec +. d)
                (fun () -> Prepared.run t.prepared s.batch_query)
            with
            | r -> Ok (Accepted (r, stats))
            | exception e -> Error e)
          subs
      | _violations ->
        t.adm_retried <- t.adm_retried + 1;
        rollback_all ();
        submit_serially t subs
      | exception e ->
        rollback_all ();
        ignore (Printexc.to_string e);
        submit_serially t subs
    end

(* Violated policies of the most recent rejected submission. *)
let last_violations t = t.last_violations

(* Persistence ------------------------------------------------------------- *)

let persist_store t = t.persist

let persist_checkpoint t =
  match t.persist with
  | None -> ()
  | Some store -> checkpoint_to t store ~scope:(plan t).store_rels

let close t =
  (match t.persist with
  | None -> ()
  | Some store ->
    Persistence.Store.close store;
    t.persist <- None);
  (* Join the shared evaluation domains so a long-running process (the
     policy server, the REPL) exits cleanly instead of leaking domains.
     Pools are process-wide: other engines (and this one, which stays
     usable) transparently refetch a fresh pool from the registry on
     their next parallel batch. *)
  t.pool <- None;
  Parallel.Pool.shutdown_shared ()
