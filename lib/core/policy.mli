(** Policies (§3.1).

    A policy is a SQL query of the form [SELECT DISTINCT '<error-message>'
    FROM ... WHERE ... GROUP BY ... HAVING ...] over the usage log, the
    database and [clock]; it is satisfied iff it returns no rows. *)

open Relational

type t = {
  name : string;
  source : string;  (** SQL text as registered *)
  query : Ast.query;  (** qualified; possibly rewritten by optimizations *)
  shape : Ast.query;
      (** [query] with every literal masked ({!Ast.mask_literals}):
          the template identity policy unification groups by, computed
          once at registration *)
  message : string;  (** the error-message literal, or a default *)
  log_rels : string list;  (** lowercased usage-log relations referenced *)
  monotone : bool;
      (** §4.2.1: SPJU, or HAVING limited to [COUNT(...) > k] conjuncts *)
  interleavable : bool;
      (** monotone policies safe for partial-policy pruning: all counted
          HAVING aggregates are DISTINCT (multiplicity-insensitive) *)
  core_prunable : bool;
      (** may join interleaved evaluation with a HAVING-stripped partial:
          empty input implies empty output (grouped, or no HAVING) *)
  time_independent : bool;
      (** §4.1.1 criterion, strengthened to also exclude [clock] uses *)
  ti_rewritten : bool;  (** [query] already restricted to the current ts *)
  active_from : int;  (** timestamp at which the policy was registered *)
}

(** All SELECT nodes of a query: top level, union branches and FROM
    subqueries. *)
val selects_of : Ast.query -> Ast.select list

(** Classification primitives (exposed for tests). *)

val monotone : Ast.query -> bool
val interleavable : is_log:(string -> bool) -> Ast.query -> bool
val empty_input_empty_output : Ast.query -> bool
val time_independent : is_log:(string -> bool) -> Ast.query -> bool

(** Parse, qualify and classify a policy. When [active_from > 0], adds
    [ts > active_from] guards so the policy's history starts at its
    registration (the paper's footnote 7).
    @raise Errors.Sql_error on malformed SQL or unresolvable names. *)
val create :
  Catalog.t ->
  is_log:(string -> bool) ->
  name:string ->
  active_from:int ->
  string ->
  t

(** Replace a policy's query, re-running classification. *)
val with_query : is_log:(string -> bool) -> t -> Ast.query -> t

(** Evaluate directly: [None] when satisfied, [Some message] otherwise. *)
val check : Database.t -> t -> string option

val pp : Format.formatter -> t -> unit
