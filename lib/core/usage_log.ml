(** The usage log [L] of §3.2.

    The log is a set of relations [R1..Rm], each with a leading [ts]
    column, plus the single-row [clock] relation. For each log relation
    the system holds a {e log-generating function} [fi(q, D)] that
    computes the set of feature tuples a query [q] contributes; the
    engine prepends the current timestamp and appends them tentatively
    (Eq. 1).

    The three standard relations of the prototype (Example 3.3) are
    provided here — [users], [schema], [provenance] — and arbitrary
    additional relations can be registered with {!custom}, which is the
    §6 extensibility hook (e.g. a device or system-load log). *)

open Relational

(** Everything a log-generating function may look at. [extra] carries
    application-specific context (connection string, device, load, ...)
    for custom generators. *)
type query_ctx = {
  uid : int;
  time : int;
  query : Ast.query;
  db : Database.t;
  extra : (string * Value.t) list;
}

type generator = {
  relation : string;  (** log relation name *)
  columns : (string * Ty.t) list;  (** schema {e excluding} the leading ts *)
  rank : int;
      (** interleaved-evaluation order (§4.2.1): cheaper generators first *)
  generate : query_ctx -> Value.t array list;
      (** the feature set [Si = fi(q, D)], without the ts column *)
}

let clock_relation = "clock"
let time_column = "ts"

let full_schema (g : generator) = (time_column, Ty.Int) :: g.columns

(* Register a log relation (with its ts column) in the catalog. *)
let install_relation (db : Database.t) (g : generator) =
  let schema = Schema.make (full_schema g) in
  ignore (Catalog.create_table ~kind:Catalog.Log (Database.catalog db) ~name:g.relation ~schema)

let install_clock (db : Database.t) =
  let schema = Schema.make [ ("ts", Ty.Int) ] in
  let t =
    Catalog.create_table ~kind:Catalog.System (Database.catalog db)
      ~name:clock_relation ~schema
  in
  ignore (Table.insert t [| Value.Int 0 |])

let set_clock (db : Database.t) (t : int) =
  let table = Database.table db clock_relation in
  ignore (Table.update_where table (fun _ -> true) (fun _ -> [| Value.Int t |]))

let current_time (db : Database.t) : int =
  let table = Database.table db clock_relation in
  (* Called on every evaluation/commit; read the single row in place
     instead of materializing a list. *)
  if Table.row_count table <> 1 then
    Errors.runtime_error "clock relation must contain exactly one row";
  match Seq.uncons (Table.to_seq table) with
  | Some (row, _) -> (
    match Row.cell row 0 with Value.Int t -> t | _ -> 0)
  | None -> Errors.runtime_error "clock relation must contain exactly one row"

(* users(ts, uid) --------------------------------------------------------- *)

let users : generator =
  {
    relation = "users";
    columns = [ ("uid", Ty.Int) ];
    rank = 0;
    generate = (fun ctx -> [ [| Value.Int ctx.uid |] ]);
  }

(* schema(ts, ocid, irid, icid, agg) --------------------------------------- *)

(* Static analysis of a query: which output column derives from which
   input relation/column, and whether an aggregate was involved. Beyond
   the paper's Example 3.3 we additionally record, with a NULL ocid,
   columns referenced only in WHERE/GROUP BY/HAVING and relations merely
   listed in FROM, so that join-restriction policies (P1, P2 of Table 1)
   see every relation a query touches. *)
module Schema_analysis = struct
  (* A derivation: (input relation, input column option, used under
     aggregate). *)
  type deriv = string * string option * bool

  (* Analysis of a query: output column names, each with its derivations,
     plus auxiliary derivations (non-projected references). *)
  type t = { out_cols : (string * deriv list) list; aux : deriv list }

  let rec analyze (cat : Catalog.t) (q : Ast.query) : t =
    match q with
    | Ast.Union { left; right; _ } ->
      let l = analyze cat left and r = analyze cat right in
      let out_cols =
        List.map2
          (fun (name, dl) (_, dr) -> (name, dl @ dr))
          l.out_cols r.out_cols
      in
      { out_cols; aux = l.aux @ r.aux }
    | Ast.Select s ->
      (* Resolve each FROM item to either a base table or a nested
         analysis. *)
      let sources =
        List.map
          (fun fi ->
            let alias = String.lowercase_ascii (Ast.from_item_alias fi) in
            match fi with
            | Ast.From_table { name; _ } ->
              let table = Catalog.find cat name in
              let cols = Schema.column_names (Table.schema table) in
              (alias, `Base (Table.name table, cols))
            | Ast.From_subquery { query; _ } -> (alias, `Sub (analyze cat query)))
          s.from
      in
      let cols_of = function
        | `Base (_, cols) -> cols
        | `Sub a -> List.map fst a.out_cols
      in
      (* Resolve a column reference to its source derivations. *)
      let resolve_ref ~under_agg q name : deriv list =
        let lname = String.lowercase_ascii name in
        let matching =
          List.filter
            (fun (alias, src) ->
              (match q with
              | Some q -> String.lowercase_ascii q = alias
              | None -> true)
              && List.exists
                   (fun c -> String.lowercase_ascii c = lname)
                   (cols_of src))
            sources
        in
        match matching with
        | [] -> []  (* unresolvable: tolerated in static analysis *)
        | (_, src) :: _ -> (
          match src with
          | `Base (tname, _) -> [ (tname, Some name, under_agg) ]
          | `Sub a -> (
            match
              List.find_opt
                (fun (c, _) -> String.lowercase_ascii c = lname)
                a.out_cols
            with
            | Some (_, derivs) ->
              List.map (fun (r, c, agg) -> (r, c, agg || under_agg)) derivs
            | None -> []))
      in
      let rec derivs_of_expr ~under_agg (e : Ast.expr) : deriv list =
        match e with
        | Ast.Lit _ -> []
        | Ast.Col (q, name) -> resolve_ref ~under_agg q name
        | Ast.Binop (_, a, b) ->
          derivs_of_expr ~under_agg a @ derivs_of_expr ~under_agg b
        | Ast.Unop (_, a) -> derivs_of_expr ~under_agg a
        | Ast.Agg_call (_, _, arg) -> (
          match arg with
          | None -> []
          | Some a -> derivs_of_expr ~under_agg:true a)
        | Ast.Fn_call (_, args) ->
          List.concat_map (derivs_of_expr ~under_agg) args
        | Ast.Case (branches, default) ->
          List.concat_map
            (fun (c, v) ->
              derivs_of_expr ~under_agg c @ derivs_of_expr ~under_agg v)
            branches
          @ (match default with
            | Some d -> derivs_of_expr ~under_agg d
            | None -> [])
      in
      (* Expand the select list into named output columns. *)
      let expand_star src_filter =
        List.concat_map
          (fun (alias, src) ->
            if src_filter alias then
              List.map
                (fun c -> (c, resolve_ref ~under_agg:false (Some alias) c))
                (cols_of src)
            else [])
          sources
      in
      let out_cols =
        List.concat_map
          (function
            | Ast.Star -> expand_star (fun _ -> true)
            | Ast.Table_star t ->
              expand_star (fun a -> a = String.lowercase_ascii t)
            | Ast.Sel_expr (e, alias) ->
              let name =
                match alias, e with
                | Some a, _ -> a
                | None, Ast.Col (_, c) -> c
                | None, Ast.Agg_call (agg, _, _) ->
                  String.lowercase_ascii (Sql_print.agg_str agg)
                | None, _ -> "?column?"
              in
              [ (name, derivs_of_expr ~under_agg:false e) ])
          s.items
      in
      (* Non-projected references. *)
      let aux_exprs =
        Option.to_list s.where @ s.group_by @ Option.to_list s.having
        @ List.map fst s.order_by
      in
      let aux = List.concat_map (derivs_of_expr ~under_agg:false) aux_exprs in
      (* Relations in FROM with no reference at all. *)
      let referenced r =
        List.exists (fun (r', _, _) -> r' = r) aux
        || List.exists (fun (_, ds) -> List.exists (fun (r', _, _) -> r' = r) ds) out_cols
      in
      let from_aux =
        List.filter_map
          (fun (_, src) ->
            match src with
            | `Base (tname, _) when not (referenced tname) -> Some (tname, None, false)
            | `Base _ | `Sub _ -> None)
          sources
      in
      let sub_aux =
        List.concat_map
          (fun (_, src) -> match src with `Sub a -> a.aux | `Base _ -> [])
          sources
      in
      { out_cols; aux = aux @ from_aux @ sub_aux }
end

let schema_rows (db : Database.t) (q : Ast.query) : Value.t array list =
  let a = Schema_analysis.analyze (Database.catalog db) q in
  let mk ocid (irid, icid, agg) =
    [|
      (match ocid with Some c -> Value.Str c | None -> Value.Null);
      Value.Str irid;
      (match icid with Some c -> Value.Str c | None -> Value.Null);
      Value.Bool agg;
    |]
  in
  let rows =
    List.concat_map
      (fun (ocid, derivs) -> List.map (mk (Some ocid)) derivs)
      a.Schema_analysis.out_cols
    @ List.map (mk None) a.Schema_analysis.aux
  in
  (* The log is a set: dedupe. *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun row ->
      let key = Value.canonical_key_of_array row in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    rows

let schema_gen : generator =
  {
    relation = "schema";
    columns =
      [ ("ocid", Ty.Text); ("irid", Ty.Text); ("icid", Ty.Text); ("agg", Ty.Bool) ];
    rank = 1;
    generate = (fun ctx -> schema_rows ctx.db ctx.query);
  }

(* provenance(ts, otid, irid, itid) ---------------------------------------- *)

let provenance_rows (db : Database.t) (q : Ast.query) : Value.t array list =
  let result =
    Database.query_ast ~opts:{ Executor.lineage = true; track_src = false } db q
  in
  let rows = ref [] in
  List.iteri
    (fun otid (row : Executor.row_out) ->
      List.iter
        (fun (irid, itid) ->
          rows := [| Value.Int otid; Value.Str irid; Value.Int itid |] :: !rows)
        row.Executor.lineage)
    result.Executor.out_rows;
  List.rev !rows

let provenance : generator =
  {
    relation = "provenance";
    columns = [ ("otid", Ty.Int); ("irid", Ty.Text); ("itid", Ty.Int) ];
    rank = 2;
    generate = (fun ctx -> provenance_rows ctx.db ctx.query);
  }

let standard = [ users; schema_gen; provenance ]

(* §6 extensibility: define a new log relation from arbitrary code. *)
let custom ~relation ~columns ~rank ~generate : generator =
  { relation; columns; rank; generate }
