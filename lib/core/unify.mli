(** Policy unification (§4.2.2), n-way.

    Policies structurally identical except for literal constants are
    consolidated into one template policy joining a generated constants
    table (one column per differing literal position, one row per member
    instance) and grouping by the constants — the n-way generalization of
    Example 4.6. Differing error-message literals are lifted too, so the
    unified policy projects each member's original message and unified
    evaluation is verdict- and message-identical to unrolled
    evaluation. *)

open Relational

type group = {
  policy : Policy.t;  (** the unified replacement policy *)
  members : Policy.t list;  (** original policies it subsumes *)
  constants_table : string option;
      (** the generated [dl_constants_<k>] table; [None] when the members
          are exact duplicates and no constants are needed *)
}

type outcome = { policies : Policy.t list; groups : group list }

(** Alias under which the constants table is joined (["dl_consts"]). *)
val constants_alias : string

(** Name of the [j]-th constants column (["c<j>"]). *)
val const_col : int -> string

(** Group policies by their registration-time {!Policy.t.shape} and unify
    the eligible groups; creates (or refreshes) the constants tables in
    the catalog. Policies that do not unify are returned unchanged, in
    order. *)
val run : Catalog.t -> is_log:(string -> bool) -> Policy.t list -> outcome
