(** Policy templates (§6).

    The paper's survey found real-world terms of use to be highly
    structured, and names templates as the way to reduce the cost of
    translating legal text into policies: "it may be possible to come up
    with templates (domain specific, if required) that can be later
    tweaked". This module provides constructors for every restriction
    type of Table 1; each returns the policy SQL, ready for
    {!Engine.add_policy}.

    Templates compose with unification (§4.2.2) by design: instantiating
    a template for many subjects yields policies identical up to one
    constant, which the engine collapses into a single unified policy. *)

let sql_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\'';
  Buffer.contents buf

(* Restrict the subject of a template: everyone, one user, or one group
   (groups resolve through a (uid, gid) membership relation). *)
type subject = Everyone | User of int | Group of { table : string; gid : string }

let subject_join ~users_alias = function
  | Everyone -> ("", "")
  | User uid -> ("", Printf.sprintf " AND %s.uid = %d" users_alias uid)
  | Group { table; gid } ->
    ( Printf.sprintf ", %s dl_g" table,
      Printf.sprintf " AND %s.uid = dl_g.uid AND dl_g.gid = %s" users_alias
        (sql_string gid) )

(* Table 1, P1 (Navteq): prohibit combining [relation] with any other
   relation in one query. *)
let no_overlay ~(relation : string) ?(message : string option) () : string =
  let message =
    Option.value message
      ~default:(Printf.sprintf "%s may not be combined with other datasets" relation)
  in
  Printf.sprintf
    "SELECT DISTINCT %s AS errorMessage FROM schema s1, schema s2 WHERE s1.ts \
     = s2.ts AND s1.irid = %s AND s2.irid != %s"
    (sql_string message) (sql_string relation) (sql_string relation)

(* Variant with an allow-list, as in Table 2's P2 (poe_order may join
   poe_med only). *)
let no_overlay_except ~(relation : string) ~(allowed : string list)
    ?(subject = Everyone) ?(message : string option) () : string =
  let message =
    Option.value message
      ~default:
        (Printf.sprintf "%s may only be combined with: %s" relation
           (String.concat ", " allowed))
  in
  let extra_from, extra_where = subject_join ~users_alias:"u" subject in
  let allow_clauses =
    String.concat ""
      (List.map
         (fun rel -> Printf.sprintf " AND s2.irid != %s" (sql_string rel))
         (relation :: allowed))
  in
  Printf.sprintf
    "SELECT DISTINCT %s AS errorMessage FROM schema s1, schema s2, users u%s \
     WHERE s1.ts = s2.ts AND s2.ts = u.ts AND s1.irid = %s%s%s"
    (sql_string message) extra_from (sql_string relation) allow_clauses
    extra_where

(* Table 1, P4 (Twitter/Foursquare): at most [max_calls] queries per user
   within [window] ticks. *)
let rate_limit ~(max_calls : int) ~(window : int) ?(subject = Everyone)
    ?(message : string option) () : string =
  let message =
    Option.value message
      ~default:
        (Printf.sprintf "rate limit exceeded: more than %d calls in %d ticks"
           max_calls window)
  in
  let extra_from, extra_where = subject_join ~users_alias:"u" subject in
  Printf.sprintf
    "SELECT DISTINCT %s AS errorMessage FROM users u, clock c%s WHERE u.ts > \
     c.ts - %d%s GROUP BY u.uid HAVING COUNT(DISTINCT u.ts) > %d"
    (sql_string message) extra_from window extra_where max_calls

(* Table 1, P3 (MS Translator): total result volume derived from
   [relation] over a window, per user. Volume is counted in result tuples
   (the substrate has no char counts). *)
let volume_quota ~(relation : string) ~(max_tuples : int) ~(window : int)
    ?(subject = Everyone) ?(message : string option) () : string =
  let message =
    Option.value message
      ~default:
        (Printf.sprintf "free tier exceeded: more than %d result tuples from \
                         %s in %d ticks" max_tuples relation window)
  in
  let extra_from, extra_where = subject_join ~users_alias:"u" subject in
  Printf.sprintf
    "SELECT DISTINCT %s AS errorMessage FROM provenance p, users u, clock \
     c%s WHERE p.ts = u.ts AND p.irid = %s AND u.ts > c.ts - %d%s GROUP BY \
     u.uid HAVING COUNT(DISTINCT p.ts * 1000000 + p.otid) > %d"
    (sql_string message) extra_from (sql_string relation) window extra_where
    max_tuples

(* Table 1, P5 / Example 3.1 (MIMIC): k-anonymity-style output check — no
   answer tuple may be contributed to by fewer than [k] distinct tuples of
   [relation]. *)
let k_anonymity ~(relation : string) ~(k : int) ?(message : string option) () :
    string =
  let message =
    Option.value message
      ~default:
        (Printf.sprintf "fewer than %d %s tuples contribute to an answer" k
           relation)
  in
  Printf.sprintf
    "SELECT DISTINCT %s AS errorMessage FROM provenance p WHERE p.irid = %s \
     GROUP BY p.ts, p.otid HAVING COUNT(DISTINCT p.itid) < %d"
    (sql_string message) (sql_string relation) k

(* Table 1, P7 (Yelp): joins and unions are fine, aggregation of
   [column] of [relation] is prohibited. *)
let no_aggregation ~(relation : string) ?(column : string option)
    ?(message : string option) () : string =
  let message =
    Option.value message
      ~default:(Printf.sprintf "aggregating %s is prohibited" relation)
  in
  let column_clause =
    match column with
    | None -> ""
    | Some c -> Printf.sprintf " AND s.icid = %s" (sql_string c)
  in
  Printf.sprintf
    "SELECT DISTINCT %s AS errorMessage FROM schema s WHERE s.irid = %s%s \
     AND s.agg = TRUE"
    (sql_string message) (sql_string relation) column_clause

(* Table 1, P2 (Kindle group licenses): at most [max_users] distinct users
   of [subject] may touch [relation] within [window] ticks (Example
   3.2's P2b). *)
let group_license ~(relation : string) ~(max_users : int) ~(window : int)
    ?(subject = Everyone) ?(message : string option) () : string =
  let message =
    Option.value message
      ~default:
        (Printf.sprintf "more than %d distinct users accessed %s within %d \
                         ticks" max_users relation window)
  in
  let extra_from, extra_where = subject_join ~users_alias:"u" subject in
  Printf.sprintf
    "SELECT DISTINCT %s AS errorMessage FROM users u, schema s, clock c%s \
     WHERE u.ts = s.ts AND s.irid = %s AND u.ts > c.ts - %d%s HAVING \
     COUNT(DISTINCT u.uid) > %d"
    (sql_string message) extra_from (sql_string relation) window extra_where
    max_users

(* Access prohibition: [subject] may not touch [relation] at all. *)
let no_access ~(relation : string) ?(subject = Everyone)
    ?(message : string option) () : string =
  let message =
    Option.value message ~default:(Printf.sprintf "%s is off-limits" relation)
  in
  let extra_from, extra_where = subject_join ~users_alias:"u" subject in
  Printf.sprintf
    "SELECT DISTINCT %s AS errorMessage FROM users u, schema s%s WHERE u.ts \
     = s.ts AND s.irid = %s%s"
    (sql_string message) extra_from (sql_string relation) extra_where

(* Per-tuple reuse cap, Table 2's P6: the same input tuple of [relation]
   may be used at most [max_uses] times within [window] ticks. *)
let reuse_cap ~(relation : string) ~(max_uses : int) ~(window : int)
    ?(subject = Everyone) ?(message : string option) () : string =
  let message =
    Option.value message
      ~default:
        (Printf.sprintf "a %s tuple was used more than %d times within %d \
                         ticks" relation max_uses window)
  in
  let extra_from, extra_where = subject_join ~users_alias:"u" subject in
  Printf.sprintf
    "SELECT DISTINCT %s AS errorMessage FROM provenance p, users u, clock \
     c%s WHERE p.ts = u.ts AND p.irid = %s AND p.ts > c.ts - %d%s GROUP BY \
     p.itid HAVING COUNT(DISTINCT p.ts * 1000000 + p.otid) > %d"
    (sql_string message) extra_from (sql_string relation) window extra_where
    max_uses

(* Families ---------------------------------------------------------------- *)

(* Instantiating one constructor across many subjects or relations yields
   policies that differ only in literal constants — a single shape, which
   registration stamps on each policy ({!Policy.t.shape}) and unification
   collapses into one template + constants-table policy. These helpers
   produce [(name, sql)] pairs ready for {!Engine.add_policy}; they are
   what the scale bench uses to instantiate 10k+ policy sets. *)

let per_user ~(name_prefix : string) ~(uids : int list)
    (make : subject:subject -> string) : (string * string) list =
  List.map
    (fun uid -> (Printf.sprintf "%s_u%d" name_prefix uid, make ~subject:(User uid)))
    uids

let per_relation ~(name_prefix : string) ~(relations : string list)
    (make : relation:string -> string) : (string * string) list =
  List.map
    (fun r -> (Printf.sprintf "%s_%s" name_prefix r, make ~relation:r))
    relations
