(** The usage log [L] of §3.2.

    The log is a set of relations, each with a leading [ts] column, plus
    the single-row [clock] relation. For each log relation the system
    holds a {e log-generating function} [fi(q, D)] computing the feature
    tuples a query contributes; the engine prepends the current timestamp
    and appends them tentatively (Eq. 1).

    The three standard relations of the paper's prototype (Example 3.3)
    are provided — [users(ts, uid)], [schema(ts, ocid, irid, icid, agg)],
    [provenance(ts, otid, irid, itid)] — and arbitrary additional
    relations can be registered with {!custom} (§6 extensibility). *)

open Relational

(** Everything a log-generating function may inspect. [extra] carries
    application-specific context (device, system load, ...) for custom
    generators. *)
type query_ctx = {
  uid : int;
  time : int;
  query : Ast.query;
  db : Database.t;
  extra : (string * Value.t) list;
}

type generator = {
  relation : string;  (** log relation name *)
  columns : (string * Ty.t) list;  (** schema {e excluding} the leading ts *)
  rank : int;
      (** interleaved-evaluation order (§4.2.1): cheaper generators first *)
  generate : query_ctx -> Value.t array list;
      (** the feature set [Si = fi(q, D)], without the ts column *)
}

(** Name of the single-row clock relation (["clock"]). *)
val clock_relation : string

(** Name of the timestamp column every log relation leads with (["ts"]).
    Submissions append all their increments at one clock tick, so two
    log rows with equal timestamps come from the same submission — the
    fact the relevance index's timestamp-join analysis rests on. *)
val time_column : string

(** The generator's on-disk schema {e including} the leading [ts]
    column — what {!install_relation} creates and what the persistence
    layer validates recovered snapshots against. *)
val full_schema : generator -> (string * Ty.t) list

(** Create the generator's (empty) log relation in the catalog. *)
val install_relation : Database.t -> generator -> unit

(** Create the clock relation, initialized to time 0. *)
val install_clock : Database.t -> unit

(** Set the clock's single row. *)
val set_clock : Database.t -> int -> unit

(** Read the clock.
    @raise Errors.Sql_error if the clock does not hold exactly one row. *)
val current_time : Database.t -> int

(** [users(ts, uid)] — who issued each query. Rank 0 (cheapest). *)
val users : generator

(** [schema(ts, ocid, irid, icid, agg)] — static analysis of each query:
    which output column derives from which input relation/column and
    whether an aggregate was involved. Beyond the paper's Example 3.3,
    columns referenced only in WHERE/GROUP BY/HAVING and relations merely
    listed in FROM are also recorded (with NULL [ocid]/[icid]) so that
    join-restriction policies see every relation a query touches. Rank 1. *)
val schema_gen : generator

(** [provenance(ts, otid, irid, itid)] — full lineage of the query's
    output, computed by executing the query with lineage tracking (the
    Perm-style [f_Provenance]). Rank 2 (most expensive). *)
val provenance : generator

(** The raw analysis behind {!schema_gen}, exposed for the advisor. *)
val schema_rows : Database.t -> Ast.query -> Value.t array list

(** The raw computation behind {!provenance}. *)
val provenance_rows : Database.t -> Ast.query -> Value.t array list

(** [users; schema_gen; provenance]. *)
val standard : generator list

(** Define a new log relation from arbitrary code (§6). *)
val custom :
  relation:string ->
  columns:(string * Ty.t) list ->
  rank:int ->
  generate:(query_ctx -> Value.t array list) ->
  generator
