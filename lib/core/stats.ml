(** Per-query timing breakdown, matching the phases the paper reports:
    usage tracking (log generation), policy evaluation, the three log
    compaction phases (mark / delete / insert) and the user query itself.
    Times are wall-clock seconds. *)

type t = {
  mutable log_track : float;
  mutable policy_eval : float;
  mutable compact_mark : float;
  mutable compact_delete : float;
  mutable compact_insert : float;
  mutable query_exec : float;
  mutable persist : float;  (** WAL append / checkpoint time *)
  mutable policy_calls : int;  (** number of policy (sub)queries issued *)
  mutable rows_logged : int;  (** log tuples persisted for this query *)
}

let create () =
  {
    log_track = 0.;
    policy_eval = 0.;
    compact_mark = 0.;
    compact_delete = 0.;
    compact_insert = 0.;
    query_exec = 0.;
    persist = 0.;
    policy_calls = 0;
    rows_logged = 0;
  }

let compaction_total s = s.compact_mark +. s.compact_delete +. s.compact_insert

let overhead s = s.log_track +. s.policy_eval +. compaction_total s +. s.persist

let total s = overhead s +. s.query_exec

let add a b =
  {
    log_track = a.log_track +. b.log_track;
    policy_eval = a.policy_eval +. b.policy_eval;
    compact_mark = a.compact_mark +. b.compact_mark;
    compact_delete = a.compact_delete +. b.compact_delete;
    compact_insert = a.compact_insert +. b.compact_insert;
    query_exec = a.query_exec +. b.query_exec;
    persist = a.persist +. b.persist;
    policy_calls = a.policy_calls + b.policy_calls;
    rows_logged = a.rows_logged + b.rows_logged;
  }

(* Fold [src] into [dst] in place: the engine's parallel batches give
   each task a private record (no cross-domain mutation) and the
   submitting domain merges them into the submission's record after the
   join. *)
let merge_into (dst : t) (src : t) =
  let s = add dst src in
  dst.log_track <- s.log_track;
  dst.policy_eval <- s.policy_eval;
  dst.compact_mark <- s.compact_mark;
  dst.compact_delete <- s.compact_delete;
  dst.compact_insert <- s.compact_insert;
  dst.query_exec <- s.query_exec;
  dst.persist <- s.persist;
  dst.policy_calls <- s.policy_calls;
  dst.rows_logged <- s.rows_logged

let zero = create ()

let sum = List.fold_left add zero

let scale k s =
  {
    log_track = s.log_track *. k;
    policy_eval = s.policy_eval *. k;
    compact_mark = s.compact_mark *. k;
    compact_delete = s.compact_delete *. k;
    compact_insert = s.compact_insert *. k;
    query_exec = s.query_exec *. k;
    persist = s.persist *. k;
    policy_calls = int_of_float (float_of_int s.policy_calls *. k);
    rows_logged = int_of_float (float_of_int s.rows_logged *. k);
  }

let mean = function
  | [] -> zero
  | ss -> scale (1. /. float_of_int (List.length ss)) (sum ss)

(* Time an action, adding the elapsed seconds via [record]. Wall clock
   ([Unix.gettimeofday]) can step backwards under NTP adjustment; a
   negative delta would silently corrupt every aggregate built from
   these samples, so clamp to 0. *)
let timed (record : float -> unit) (f : unit -> 'a) : 'a =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let d = Unix.gettimeofday () -. t0 in
  record (if d > 0. then d else 0.);
  r

let ms x = x *. 1000.

let pp ppf s =
  Format.fprintf ppf
    "track %.3fms | eval %.3fms (%d calls) | compact %.3f/%.3f/%.3fms | persist \
     %.3fms | query %.3fms"
    (ms s.log_track) (ms s.policy_eval) s.policy_calls (ms s.compact_mark)
    (ms s.compact_delete) (ms s.compact_insert) (ms s.persist) (ms s.query_exec)
