(** Policy relevance index: per-policy metadata that lets the engine
    decide, from a submission's tentative log increment alone, that a
    policy's verdict cannot have changed since its last proved-empty
    base — and skip evaluating it. See the implementation header for
    the full soundness argument; in short, for a monotone top-level
    SELECT with no log subqueries, if no delta row can bind any of its
    log slots (each slot gated by the query's own equality conjuncts)
    and its non-log dependencies are unchanged, the result is literally
    the base's: empty. *)

open Relational

(** One equality gate on a log slot: column [col] (cell index, timestamp
    included) must hold one of [allowed] (canonical value keys). *)
type filter = { col : int; allowed : (string, unit) Hashtbl.t }

type info = {
  eligible : bool;
  deps : (string * Optimizer.dep_kind) list;
      (** referenced relations (canonical name; log relations as
          [Dep_log], others [Dep_plain]), for the base's version
          snapshot *)
  slots : (string * filter list) list;
      (** top-level log-relation occurrences with their filters *)
  guards : (string * int) list;
      (** enumeration sources and their [ver_mut] at build time *)
  ts_linked : bool;
      (** the log slots are one component under the query's
          timestamp-equality conjuncts; since a submission appends all
          its increments at one clock tick, a binding with one delta row
          then has delta rows in every log slot — one blocked slot
          suffices to skip *)
  ti_pinned : bool;
      (** the query is TI-rewritten: its verdict is emptiness at the
          current clock tick (§4.1.1), whose rows are all delta rows —
          so {!blocked} decides it alone, no proved-empty base needed *)
}

type t

(** Build the index for a post-unification active-policy list. Consults
    the catalog for schemas and enumerates equality-partner columns
    (e.g. a unified policy's constants table), recording version
    guards. *)
val build :
  Catalog.t ->
  is_log:(string -> bool) ->
  clock_rel:string ->
  time_col:string ->
  Policy.t list ->
  t

val info : t -> string -> info option

(** Do the guards still hold, and are the log slots blocked — one of
    them when [ts_linked], every one otherwise? A slot is blocked when
    no row of its relation's tentative delta satisfies all the slot's
    filters (with no filters: only if the delta is empty). [true] plus
    a valid base means the policy can be skipped.

    [available], when given, lists (lowercase) log relations whose
    tentative increment is fully appended; slots over other relations
    are not considered — their deltas aren't final yet, so neither
    verdict about them would be sound. The interleaved evaluator passes
    the relations generated so far. *)
val blocked : ?available:string list -> Catalog.t -> info -> bool

(** Policies marked eligible / total policies indexed. *)
val eligible_count : t -> int

val size : t -> int
