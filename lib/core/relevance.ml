(** Policy relevance index.

    With thousands of registered policies, most of them cannot possibly
    be affected by any one submission: a per-user policy pinned to
    [uid = 7] is untouched by user 9's queries. This module precomputes,
    per active policy, which log slots its top-level FROM binds and
    which equality filters gate each slot, so the engine can decide —
    from the tentative log increment alone, without evaluating the
    query — that a policy's verdict cannot have changed since its last
    proved-empty base and skip it.

    Soundness rests on an exact-identity argument, not an approximation.
    A policy is {e eligible} when its query is a monotone top-level
    SELECT with no log relation inside a subquery. For an eligible
    policy, suppose (the engine checks all of this at skip time):

    - a base proves the query empty over the state at the last accepted
      submission, with every referenced relation's version counter
      matching its snapshot ({!Incremental.Delta_store} semantics: plain
      relations are bit-unchanged, log relations have only gained rows
      above the delta watermark or lost rows below it);
    - the enumerated filter sources ({!filter.allowed} built from
      [log.col = plain.col] equalities) are unchanged since the index
      was built; and
    - {b every} log slot is {e blocked}: no row of its relation's
      tentative delta ({!Relational.Table.fold_delta}) satisfies all of
      the slot's filters.

    The filters are a subset of the query's own single-slot equality
    conjuncts, so satisfying them is necessary for a row to bind the
    slot. Blocked slots therefore mean no delta row participates in any
    binding; the query's bindings over the current state all draw on
    rows below the watermarks, a subset of the base state, and
    monotonicity collapses the result into the base's proved-empty one.
    The verdict is unchanged: satisfied.

    Requiring {e every} slot blocked is needed in general but overly
    conservative for the common template shape, a join of several log
    relations on their timestamp column ([u.ts = s.ts]): there, {e one}
    blocked slot suffices. Every submission appends all its increments
    at one fresh clock tick, so a row with a post-base timestamp is a
    delta row; when the log slots are connected by timestamp equalities
    ({!info.ts_linked}), any binding containing one delta row has the
    delta timestamp in every log slot — making {e all} its log rows
    delta rows. A single slot whose filters no delta row satisfies then
    starves every new binding outright: the per-user policy joining
    [users] with [schema] is skipped for uid 9's submissions because
    uid 9 cannot bind the users slot, even though the schema slot's
    rows match. (A new binding cannot hide in the plain slots either: a
    valid base pins the plain dependencies bit-unchanged.)

    A time-independent policy, once rewritten ({!info.ti_pinned}), needs
    no base at all. The rewrite pins a log timestamp to the clock — and
    the TI qualification equates every log timestamp — so its verdict is
    exactly emptiness at the current tick: that is the §4.1.1 property
    (holds on the whole log iff it holds on the increment). Every
    current-tick row is a delta row (the tick is fresh), so blocked
    slots starve every current-tick binding outright and the verdict is
    satisfied — whatever the plain relations now contain, and however
    the clock moved. Without the waiver no TI policy could ever be
    skipped: the rewrite adds the clock as a dependency, and the clock's
    version bumps on every submission's [set_clock], so the base would
    simply never validate. A policy that references the clock {e
    without} being TI-rewritten keeps the conservative treatment — the
    clock is a plain dependency and its base never validates. *)

open Relational

(** One equality gate on a log slot: the slot's column [col] (a cell
    index, timestamp prefix included) must hold one of [allowed] for a
    row to survive the query's own WHERE conjuncts. [allowed] is keyed
    by {!Relational.Value.canonical_key}. *)
type filter = { col : int; allowed : (string, unit) Hashtbl.t }

type info = {
  eligible : bool;
  deps : (string * Optimizer.dep_kind) list;
      (** every relation the query references (canonical name, log
          relations as [Dep_log], the rest [Dep_plain]), across
          subqueries too — snapshot input for the base check *)
  slots : (string * filter list) list;
      (** top-level FROM occurrences of log relations, with the equality
          filters extracted for each occurrence's alias *)
  guards : (string * int) list;
      (** tables whose column values were enumerated into a filter, with
          {!Relational.Table.ver_mut} at build time: enumeration is a
          snapshot, so any later mutation disables skipping *)
  ts_linked : bool;
      (** the log slots form one component under the query's
          timestamp-equality conjuncts: one blocked slot suffices *)
  ti_pinned : bool;
      (** the query is TI-rewritten (pinned to the current clock tick):
          its verdict is emptiness at the current tick, so blocked slots
          decide it without any base — see the header *)
}

type t = (string, info) Hashtbl.t

let lc = Analysis.lc

(* All (canonical relation, dep kind) pairs a query references,
   including union branches and FROM subqueries. The relevance base
   needs only the emptiness-proof kinds: appends to log relations are
   watermark-covered ([Dep_log]), anything else invalidates on any
   mutation ([Dep_plain]). *)
let deps_of (cat : Catalog.t) ~(is_log : string -> bool) (q : Ast.query) :
    (string * Optimizer.dep_kind) list =
  Policy.selects_of q
  |> List.concat_map (fun s ->
         List.filter_map
           (fun (_, rel) ->
             Option.map
               (fun tb ->
                 ( Table.name tb,
                   if is_log rel then Optimizer.Dep_log else Optimizer.Dep_plain
                 ))
               (Catalog.find_opt cat rel))
           (Analysis.table_occurrences s))
  |> List.sort_uniq compare

(* Distinct values of [col] in [rel], as canonical keys; [None] when the
   table or column is missing. The caller records a version guard. *)
let enumerate (cat : Catalog.t) (rel : string) (col : string) :
    (string, unit) Hashtbl.t option =
  match Catalog.find_opt cat rel with
  | None -> None
  | Some table -> (
    match Schema.find_index (Table.schema table) col with
    | None -> None
    | Some i ->
      let allowed = Hashtbl.create 64 in
      Table.fold
        (fun () row ->
          Hashtbl.replace allowed (Value.canonical_key (Row.cells row).(i)) ())
        () table;
      Some allowed)

(* Are all [log_aliases]' timestamp columns in one equivalence class of
   the query's equality conjuncts? Chains through non-log aliases count
   too: equality propagates the timestamp value regardless of what kind
   of relation carries it. *)
let ts_connected ~(time_col : string) (conjuncts : Ast.expr list)
    (log_aliases : string list) : bool =
  match log_aliases with
  | [] | [ _ ] -> true
  | a0 :: rest ->
    let classes = Analysis.Eq_classes.of_conjuncts conjuncts in
    List.for_all
      (fun a -> Analysis.Eq_classes.same classes (a0, time_col) (a, time_col))
      rest

let build (cat : Catalog.t) ~(is_log : string -> bool) ~(clock_rel : string)
    ~(time_col : string) (ps : Policy.t list) : t =
  let clock = lc clock_rel in
  let t = Hashtbl.create (max 16 (List.length ps)) in
  List.iter
    (fun (p : Policy.t) ->
      let deps = deps_of cat ~is_log p.Policy.query in
      let guards = ref [] in
      let eligible, slots, ts_linked =
        match p.Policy.query with
        | Ast.Union _ -> (false, [], false)
        | _ when not p.Policy.monotone -> (false, [], false)
        | _ when Analysis.subquery_uses_log ~is_log p.Policy.query ->
          (false, [], false)
        | Ast.Select s ->
          let occs = Analysis.table_occurrences s in
          let conjuncts = Ast.conjuncts_opt s.Ast.where in
          (* Resolve an alias to its plain (non-log, non-clock) table, for
             enumerable equality partners. *)
          let plain_table alias =
            match List.assoc_opt alias occs with
            | Some rel when (not (is_log rel)) && lc rel <> clock ->
              Catalog.find_opt cat rel
            | Some _ | None -> None
          in
          let filters_for alias rel =
            let table = Catalog.find_opt cat rel in
            let col_index c =
              Option.bind table (fun tb -> Schema.find_index (Table.schema tb) c)
            in
            let singleton v =
              let h = Hashtbl.create 1 in
              Hashtbl.replace h (Value.canonical_key v) ();
              h
            in
            List.filter_map
              (fun conj ->
                match conj with
                | Ast.Binop (Ast.Eq, Ast.Col (Some a, c), Ast.Lit v)
                | Ast.Binop (Ast.Eq, Ast.Lit v, Ast.Col (Some a, c))
                  when lc a = alias ->
                  Option.map
                    (fun col -> { col; allowed = singleton v })
                    (col_index c)
                | Ast.Binop (Ast.Eq, Ast.Col (Some a, c), Ast.Col (Some a2, c2))
                  when lc a = alias && lc a2 <> alias -> (
                  match plain_table (lc a2) with
                  | None -> None
                  | Some tb -> (
                    match
                      (col_index c, enumerate cat (Table.name tb) c2)
                    with
                    | Some col, Some allowed ->
                      guards := (Table.name tb, Table.ver_mut tb) :: !guards;
                      Some { col; allowed }
                    | _ -> None))
                | Ast.Binop (Ast.Eq, Ast.Col (Some a2, c2), Ast.Col (Some a, c))
                  when lc a = alias && lc a2 <> alias -> (
                  match plain_table (lc a2) with
                  | None -> None
                  | Some tb -> (
                    match
                      (col_index c, enumerate cat (Table.name tb) c2)
                    with
                    | Some col, Some allowed ->
                      guards := (Table.name tb, Table.ver_mut tb) :: !guards;
                      Some { col; allowed }
                    | _ -> None))
                | _ -> None)
              conjuncts
          in
          let slots =
            List.filter_map
              (fun (alias, rel) ->
                if is_log rel then Some (rel, filters_for alias rel) else None)
              occs
          in
          let log_aliases =
            List.filter_map
              (fun (alias, rel) -> if is_log rel then Some alias else None)
              occs
          in
          (true, slots, ts_connected ~time_col conjuncts log_aliases)
      in
      Hashtbl.replace t p.Policy.name
        {
          eligible;
          deps;
          slots;
          guards = List.sort_uniq compare !guards;
          ts_linked;
          ti_pinned = eligible && p.Policy.ti_rewritten;
        })
    ps;
  t

let info (t : t) name = Hashtbl.find_opt t name

(* A delta row binds the slot only if it passes every filter. *)
let row_passes (filters : filter list) (cells : Value.t array) : bool =
  List.for_all
    (fun f ->
      f.col < Array.length cells
      && Hashtbl.mem f.allowed (Value.canonical_key cells.(f.col)))
    filters

let blocked ?(available : string list option) (cat : Catalog.t) (i : info) :
    bool =
  let final (rel, _) =
    match available with None -> true | Some a -> List.mem (lc rel) a
  in
  let slot_blocked (rel, filters) =
    match Catalog.find_opt cat rel with
    | None -> false
    | Some tb ->
      Table.fold_delta
        (fun acc row -> acc && not (row_passes filters (Row.cells row)))
        true tb
  in
  List.for_all
    (fun (rel, ver) ->
      match Catalog.find_opt cat rel with
      | Some tb -> Table.ver_mut tb = ver
      | None -> false)
    i.guards
  &&
  match i.slots with
  | [] -> true
  | slots ->
    (* A slot only counts once its delta is final ([final]): a blocked
       verdict over a half-appended increment would be unsound. *)
    if i.ts_linked then List.exists (fun s -> final s && slot_blocked s) slots
    else List.for_all (fun s -> final s && slot_blocked s) slots

let eligible_count (t : t) =
  Hashtbl.fold (fun _ i n -> if i.eligible then n + 1 else n) t 0

let size (t : t) = Hashtbl.length t
