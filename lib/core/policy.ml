(** Policies (§3.1).

    A policy is a SQL query of the form
    [SELECT DISTINCT '<error-message>' FROM ... WHERE ... GROUP BY ...
    HAVING ...] over the usage log, the database and [clock]. The policy
    is satisfied iff the query returns no rows.

    At registration time the query is qualified (every column reference
    gets its alias) and classified:

    - {b monotone} (§4.2.1): SPJU queries, or queries whose HAVING is a
      conjunction of [COUNT([DISTINCT] x) > k] conditions.
    - {b interleavable}: monotone policies safe for partial-policy
      pruning. Lemma 4.4 requires relations removed by a partial policy
      to be key-joined when the aggregate can grow with row multiplicity;
      lacking key metadata we admit only [COUNT(DISTINCT ...)] (whose
      value cannot increase when a join is removed), plus aggregate-free
      policies.
    - {b time-independent} (§4.1.1): every pair of log-relation [ts]
      attributes is (transitively) equated, group-by includes a joined
      [ts] whenever aggregates appear, and — a soundness strengthening
      over the paper's syntactic test — the policy does not reference
      [clock] (a clock comparison such as [c.ts - u.ts > w] can make old
      tuples age into violation, which the current-timestamp rewriting
      would miss). *)

open Relational

type t = {
  name : string;
  source : string;  (** SQL text as registered *)
  query : Ast.query;  (** qualified; possibly rewritten by optimizations *)
  shape : Ast.query;  (** [query] with every literal masked: the template
                          identity unification groups by *)
  message : string;
  log_rels : string list;  (** lowercased usage-log relations referenced *)
  monotone : bool;
  interleavable : bool;
  core_prunable : bool;
      (** may join interleaved evaluation with a HAVING-stripped partial *)
  time_independent : bool;
  ti_rewritten : bool;  (** [query] already restricted to the current ts *)
  active_from : int;  (** timestamp at which the policy was registered *)
}

let lc = Analysis.lc

(* Each select of the query (top level, union branches, FROM subqueries). *)
let rec selects_of (q : Ast.query) : Ast.select list =
  match q with
  | Ast.Union { left; right; _ } -> selects_of left @ selects_of right
  | Ast.Select s ->
    s
    :: List.concat_map
         (function
           | Ast.From_subquery { query; _ } -> selects_of query
           | Ast.From_table _ -> [])
         s.from

let message_of (q : Ast.query) ~(default : string) =
  match q with
  | Ast.Select { items = Ast.Sel_expr (Ast.Lit (Value.Str m), _) :: _; _ } -> m
  | _ -> default

(* Monotonicity --------------------------------------------------------- *)

(* A HAVING conjunct of the form COUNT([DISTINCT] x) > k (or flipped);
   returns the aggregate's distinct flag when it matches. *)
let monotone_having_conjunct (e : Ast.expr) : bool option =
  match e with
  | Ast.Binop ((Ast.Gt | Ast.Ge), Ast.Agg_call ((Ast.Count | Ast.Count_star), d, _), Ast.Lit _)
  | Ast.Binop ((Ast.Lt | Ast.Le), Ast.Lit _, Ast.Agg_call ((Ast.Count | Ast.Count_star), d, _))
    ->
    Some d
  | _ -> None

let select_monotone (s : Ast.select) =
  let no_agg_items =
    List.for_all
      (function Ast.Sel_expr (e, _) -> not (Ast.expr_has_agg e) | _ -> true)
      s.items
  in
  let where_ok =
    List.for_all (fun c -> not (Ast.expr_has_agg c)) (Ast.conjuncts_opt s.where)
  in
  let having_ok =
    List.for_all
      (fun c -> monotone_having_conjunct c <> None)
      (Ast.conjuncts_opt s.having)
  in
  no_agg_items && where_ok && having_ok

let monotone (q : Ast.query) = List.for_all select_monotone (selects_of q)

let interleavable ~is_log (q : Ast.query) =
  monotone q
  && (not (Analysis.subquery_uses_log ~is_log q))
  && List.for_all
       (fun s ->
         List.for_all
           (fun c ->
             match monotone_having_conjunct c with
             | Some distinct -> distinct
             | None -> false)
           (Ast.conjuncts_opt s.Ast.having))
       (selects_of q)

(* A query for which empty input implies empty output: every select either
   groups (no groups over no rows) or has no HAVING. A policy with this
   property — even a non-monotone one — can be pruned during interleaved
   evaluation whenever its HAVING-stripped SPJ core is already empty,
   because the stripped core is monotone (Lemma 4.4 applies to it) and no
   surviving join rows means no groups for HAVING to accept. This is what
   lets the paper's P4 (COUNT <= k, non-monotone) still benefit from the
   uid-0 fast path in Fig. 2a. *)
let empty_input_empty_output (q : Ast.query) =
  List.for_all
    (fun (s : Ast.select) -> s.group_by <> [] || s.having = None)
    (selects_of q)

(* Time-independence ----------------------------------------------------- *)

let select_time_independent ~is_log (s : Ast.select) =
  let occs = Analysis.table_occurrences s in
  let log_aliases = List.filter (fun (_, rel) -> is_log rel) occs in
  let uses_clock =
    List.exists (fun (_, rel) -> rel = Usage_log.clock_relation) occs
  in
  if uses_clock then false
  else
    match log_aliases with
    | [] -> true (* no log relations: trivially time-independent *)
    | (a0, _) :: rest ->
      let classes = Analysis.Eq_classes.of_conjuncts (Ast.conjuncts_opt s.where) in
      let ts_joined =
        List.for_all
          (fun (a, _) -> Analysis.Eq_classes.same classes (a0, "ts") (a, "ts"))
          rest
      in
      let has_agg =
        s.having <> None
        || List.exists
             (function Ast.Sel_expr (e, _) -> Ast.expr_has_agg e | _ -> false)
             s.items
      in
      let group_has_ts =
        List.exists
          (function
            | Ast.Col (Some q, c) ->
              Analysis.Eq_classes.same classes (a0, "ts") (lc q, lc c)
            | _ -> false)
          s.group_by
      in
      ts_joined && ((not has_agg) || group_has_ts)

let time_independent ~is_log (q : Ast.query) =
  (* No FROM subqueries referencing logs: keeps the rewriting simple and
     sound (our survey policies never nest log references). *)
  (not (Analysis.subquery_uses_log ~is_log q))
  && List.for_all (select_time_independent ~is_log) (selects_of q)

(* Registration ------------------------------------------------------------ *)

let create (cat : Catalog.t) ~(is_log : string -> bool) ~(name : string)
    ~(active_from : int) (source : string) : t =
  let parsed = Parser.query source in
  let query = Analysis.qualify cat parsed in
  (* Restrict the policy's view of history to its registration time
     (footnote 7): older log tuples predate the policy. *)
  let query =
    if active_from <= 0 then query
    else
      match query with
      | Ast.Select s ->
        let extra =
          List.filter_map
            (fun (alias, rel) ->
              if is_log rel then
                Some
                  (Ast.Binop
                     ( Ast.Gt,
                       Ast.Col (Some alias, "ts"),
                       Ast.Lit (Value.Int active_from) ))
              else None)
            (Analysis.table_occurrences s)
        in
        Ast.Select { s with where = Ast.conjoin (Ast.conjuncts_opt s.where @ extra) }
      | q -> q
  in
  {
    name;
    source;
    query;
    shape = Ast.mask_literals query;
    message = message_of query ~default:(Printf.sprintf "policy %s violated" name);
    log_rels = Analysis.log_relations ~is_log query;
    monotone = monotone query;
    interleavable = interleavable ~is_log query;
    core_prunable =
      (not (Analysis.subquery_uses_log ~is_log query))
      && empty_input_empty_output query;
    time_independent = time_independent ~is_log query;
    ti_rewritten = false;
    active_from;
  }

(* Replace a policy's query, re-running classification. *)
let with_query ~is_log (p : t) (query : Ast.query) : t =
  {
    p with
    query;
    shape = Ast.mask_literals query;
    log_rels = Analysis.log_relations ~is_log query;
    monotone = monotone query;
    interleavable = interleavable ~is_log query;
    core_prunable =
      (not (Analysis.subquery_uses_log ~is_log query))
      && empty_input_empty_output query;
    time_independent = time_independent ~is_log query;
  }

(* Evaluate the policy: [None] when satisfied, [Some message] otherwise. *)
let check (db : Database.t) (p : t) : string option =
  let result = Database.query_ast db p.query in
  match result.Executor.out_rows with
  | [] -> None
  | row :: _ -> (
    match row.Executor.values with
    | [| Value.Str m |] -> Some m
    | _ -> Some p.message)

let pp ppf (p : t) =
  Format.fprintf ppf "%s [%s%s%s]: %s" p.name
    (if p.monotone then "monotone" else "non-monotone")
    (if p.interleavable then ", interleavable" else "")
    (if p.time_independent then ", time-independent" else "")
    (Sql_print.query p.query)
