(** The DataLawyer engine (§4).

    The engine wraps a {!Relational.Database}: users submit queries
    through {!submit}, which (per Eq. 1) tentatively appends the
    usage-log increments, checks every policy, and either rejects the
    query — reverting the log — or persists the (compacted) log and
    executes the query. *)

open Relational

(** How the policy set is evaluated per query. *)
type strategy =
  | Union_all  (** one big UNION of all policies (Algorithm 1 / NoOpt) *)
  | Serial  (** one call per policy *)
  | Interleaved  (** Algorithm 3: partial policies interleaved with log
                     generation, pruning early *)

type config = {
  time_independent : bool;  (** §4.1.1 rewriting *)
  log_compaction : bool;  (** §4.1.2 absolute-witness compaction *)
  unification : bool;  (** §4.2.2 *)
  preemptive : bool;  (** §4.3 preemptive log compaction *)
  improved_partial : bool;  (** §4.3 improved partial policies *)
  strategy : strategy;
  domains : int;
      (** evaluating domains for the per-submission policy, partial-policy
          and witness-query batches. [1] (the floor) is the strictly
          serial pre-existing code path — no pool is spawned; [n > 1]
          drives the batches through a shared pool of [n - 1] worker
          domains with the submitting domain helping. Defaults to
          {!default_domains}. *)
  delta : bool;
      (** incremental (delta-driven) policy evaluation: after each
          accepted submission the engine records that every delta-eligible
          policy (see {!Relational.Optimizer.derive_delta}) was proved
          empty over the committed log, and later submissions re-check it
          by scanning only the rows above the log relations' watermarks.
          Policies whose plans are not eligible — or whose recorded base
          was invalidated by DDL, configuration or policy changes, or
          non-monotone table mutations — transparently fall back to full
          re-evaluation, so decisions, messages and log contents are
          identical either way. Defaults to {!default_delta}. *)
  relevance : bool;
      (** the policy relevance index: per active policy, the log slots
          its query binds and the equality filters gating them
          ({!Relevance}). On every submission the engine skips — without
          evaluating — each policy whose proved-empty base still
          validates and whose slots no row of the tentative increment
          can bind. Decisions, messages and log contents are identical
          either way; with thousands of template-instantiated policies,
          the per-submission work shrinks to the handful of policies the
          touched schema elements select. *)
  shared_scans : bool;
      (** multi-query shared subplans: policy plans rewrite their
          base-table scan-plus-filter prefixes into shared
          materialization points ({!Relational.Plan.Shared}) served by a
          per-engine cache, so the policies of one admission scan each
          log table once instead of once per policy. Entries
          self-validate against table versions; results are identical
          either way. *)
  vectorized : bool;
      (** the vectorized (batch-at-a-time) executor: batch-eligible
          policy, partial-policy and witness plans compile through
          {!Relational.Compile_batch} — zero-copy columnar scans of log
          relations, selection-vector filters, Value-keyed hash joins,
          columnar aggregation — with per-subtree fallback to the row
          path where routing demands it. Verdicts, messages, output
          order and committed tids are bit-identical either way; only
          the operator implementation changes. Defaults to
          {!default_vector}. *)
}

(** The default for {!config}[.domains]: [DL_DOMAINS] from the
    environment when set (and a valid positive integer), otherwise
    [Domain.recommended_domain_count () - 1], floored at 1. *)
val default_domains : int

(** The default for {!config}[.delta]: on, unless the environment sets
    [DL_DELTA=0]. *)
val default_delta : bool

(** The default for {!config}[.unification]: on, unless the environment
    sets [DL_UNIFY=0] (CI pins the unrolled path with it). *)
val default_unify : bool

(** The default for {!config}[.vectorized]: on, unless the environment
    sets [DL_VECTOR=0] (CI runs the suite both ways). *)
val default_vector : bool

(** The NoOpt baseline of Algorithm 1: generate only the logs the
    policies mention, evaluate their union, never compact. *)
val noopt_config : config

(** Every optimization enabled (§4.4). *)
val default_config : config

(** The offline phase's output. *)
type plan = {
  active : Policy.t list;  (** post unification / TI rewriting *)
  inter : Policy.t list;  (** policies in the interleaved loop *)
  rest : Policy.t list;  (** evaluated fully, one by one *)
  required : string list;  (** log relations any active policy references *)
  store_rels : string list;
      (** log relations referenced by a time-dependent policy: only these
          ever need persisting *)
  unified_groups : Unify.group list;
  relevance : Relevance.t;  (** the relevance index over [active] *)
}

type t

type outcome =
  | Accepted of Executor.result * Stats.t
  | Rejected of string list * Stats.t  (** violation messages *)

val stats_of : outcome -> Stats.t

(** Wrap a database. Installs the clock and the given log relations
    (default: {!Usage_log.standard}) if absent.

    When [persist_dir] is given, the engine opens (or creates) a durable
    usage-log store there: every accepted submission's log increments and
    clock advance are journaled as one atomic WAL commit record (a
    rejected submission leaves the WAL untouched), witness compaction
    triggers checkpoints, and on open the latest valid snapshot plus the
    WAL tail are recovered — restoring the [store_rels] relations, the
    clock and the registered-policy set. The same [generators] must be
    registered as when the state was written.
    [persist_fsync] picks the WAL durability/latency trade-off (default
    [Interval 32]).
    @raise Persistence.Recovery.Recovery_error on corrupted state. *)
val create :
  ?config:config ->
  ?generators:Usage_log.generator list ->
  ?persist_dir:string ->
  ?persist_fsync:Persistence.Store.fsync_policy ->
  Database.t ->
  t

val database : t -> Database.t

(** Replace the configuration; invalidates the offline plan. *)
val set_config : t -> config -> unit

(** Register an additional log-generating function (§6 extensibility). *)
val register_generator : t -> Usage_log.generator -> unit

(** Register a policy from SQL text; its history starts now.
    @raise Errors.Sql_error on malformed SQL or duplicate names. *)
val add_policy : t -> name:string -> string -> Policy.t

val remove_policy : t -> string -> unit

(** Registered policies, as written (before unification/rewriting). *)
val policies : t -> Policy.t list

(** The current offline-phase plan (recomputed lazily). *)
val plan : t -> plan

(** Row count of a log relation. *)
val log_size : t -> string -> int

(** (hits, misses) of the prepared-plan cache the policy, partial-policy
    and witness queries execute through. *)
val plan_cache_stats : t -> int * int

(** Drop every cached compiled plan, forcing cold compiles on the next
    submission (benchmarking hook; statistics survive). *)
val clear_plan_cache : t -> unit

(** (configured domains, parallel batches dispatched, tasks executed
    across them). Batches and tasks stay 0 on the serial path
    ([domains = 1]). *)
val parallel_stats : t -> int * int * int

(** Incremental-evaluation counters, under the current configuration. *)
type delta_stats = {
  eligible_plans : int;
      (** active policies whose queries derive delta plans; 0 when
          {!config}[.delta] is off (everything evaluates in full) *)
  fallback_plans : int;  (** active policies that always evaluate in full *)
  delta_bases : int;  (** policies with a currently recorded base *)
  delta_evals : int;  (** policy evaluations served by delta plans *)
  full_evals : int;
      (** evaluations of a delta-eligible policy that fell back to a full
          re-run (no base yet, the base was invalidated, or a residual
          branch's one-row clock guard failed) *)
  agg_groups : int;
      (** carried aggregate groups, summed over every policy's aggregate
          branches *)
  agg_rebuilds : int;
      (** full-stream rebuilds of carried aggregate state (base invalid
          at establishment) *)
}

(** Snapshot of the incremental-evaluation state: plan eligibility over
    the current active policy set plus the engine-lifetime delta/full
    evaluation counters. Forces the offline plan if stale. *)
val delta_stats : t -> delta_stats

(** Relevance-index counters, under the current configuration. *)
type relevance_stats = {
  rel_indexed : int;  (** active policies in the index *)
  rel_eligible : int;  (** of those, index-eligible *)
  rel_checks : int;  (** skip decisions consulted *)
  rel_skips : int;  (** policies skipped without evaluation *)
}

(** Index shape over the current active set plus the engine-lifetime
    check/skip counters. Forces the offline plan if stale. *)
val relevance_stats : t -> relevance_stats

(** (hits, misses) of the shared-scan materialization cache: a hit is a
    policy plan reusing rows another plan of the same admission already
    materialized for the same scan-plus-filter prefix. *)
val shared_scan_stats : t -> int * int

type vector_stats = {
  vec_enabled : bool;  (** this engine's configured route *)
  vec_batches : int;  (** batches materialized (scans + join outputs) *)
  vec_rows : int;  (** total rows across those batches *)
  vec_fallbacks : int;  (** subtree compilations routed back to rows *)
  vec_hist : int array;
      (** rows-per-batch histogram: < 16, < 256, < 4096, < 65536, rest *)
  vec_typed_cols : int;  (** mirror columns on a typed unboxed layout *)
  vec_mixed_cols : int;  (** mirror columns demoted to boxed Mixed *)
  vec_dict_entries : int;  (** interned strings across TEXT dictionaries *)
}

(** Vectorized-executor counters. The counters are process-wide (the
    compilers are shared, like {!Relational.Executor.rows_examined});
    [vec_enabled] reflects this engine's configuration, and the layout
    census (typed / Mixed columns, dictionary entries) walks this
    engine's columnar mirrors. *)
val vector_stats : t -> vector_stats

(** Unification shape of the current offline plan. *)
type unify_stats = {
  unify_registered : int;  (** policies as registered *)
  unify_active : int;  (** policies after unification / rewriting *)
  unify_groups : int;  (** unified groups *)
  unify_members : int;  (** registered policies absorbed into groups *)
}

(** Forces the offline plan if stale. *)
val unify_stats : t -> unify_stats

(** Check-and-execute one query (the §4.4 online phase). [extra] is
    passed to custom log-generating functions. *)
val submit :
  t -> uid:int -> ?extra:(string * Value.t) list -> string -> outcome

val submit_ast :
  t -> uid:int -> ?extra:(string * Value.t) list -> Ast.query -> outcome

(** One member of an admission batch. *)
type batch_submission = {
  batch_uid : int;
  batch_extra : (string * Value.t) list;
  batch_query : Ast.query;
}

(** Admit a batch of concurrent submissions, returning one result per
    member in order. Decisions, log contents and clock are always
    identical to submitting the members one at a time in list order:
    when every active policy is a monotone SPJ query that never reads
    the clock (exactly {!Relational.Optimizer.derive_delta}'s
    eligibility) and no member query reads a log relation or the clock,
    the batch is decided on a fast path — every member's log increments
    are appended tentatively (each at its own clock tick) and the policy
    set is evaluated {e once} over the combined state, so evaluation,
    witness compaction, WAL record and fsync all amortize across the
    batch; any policy firing, or any ineligibility, falls back to the
    serial path. A member whose evaluation or execution raised yields
    [Error] (the engine state is rolled back for that member exactly as
    {!submit} would); its batch-mates' verdicts are unaffected.

    Shared policy-machinery time of a fast-path batch is not split
    across members: each member's stats carry only its own query
    execution. *)
val submit_batch : t -> batch_submission list -> (outcome, exn) result list

(** Admission-batch counters: batches decided on the fast path, fast
    batches replayed serially after a violation, batches that went
    straight to the serial path (ineligible or singleton), and total
    submissions across them. *)
type batch_stats = {
  fast_batches : int;
  retried_batches : int;
  serial_batches : int;
  batched_submissions : int;
}

val batch_stats : t -> batch_stats

(** Violated policies of the most recent rejected submission (for
    {!Advisor} diagnosis); empty after an accepted one. *)
val last_violations : t -> Policy.t list

(** The persistence store, when the engine was created with
    [persist_dir] (introspection: generation, WAL length, disk size). *)
val persist_store : t -> Persistence.Store.t option

(** Force a checkpoint of the current persistence scope; no-op without
    persistence. *)
val persist_checkpoint : t -> unit

(** Flush and close the persistence store, if any, and shut down the
    process-wide shared evaluation pools ({!Parallel.Pool.shutdown_shared})
    so no worker domain outlives the engine. The engine remains usable
    in memory afterwards — its next parallel batch simply fetches a
    fresh pool. *)
val close : t -> unit
