(** Policy templates (§6).

    Constructors for every restriction type of the paper's Table 1
    survey; each returns policy SQL ready for {!Engine.add_policy}.
    Instantiating one template for many subjects yields policies the
    engine unifies (§4.2.2) into a single policy automatically. *)

(** Who a template applies to. [Group] resolves through a [(uid, gid)]
    membership relation. *)
type subject = Everyone | User of int | Group of { table : string; gid : string }

(** Quote a string as a SQL literal (exposed for custom templates). *)
val sql_string : string -> string

(** Table 1 P1 (Navteq): prohibit combining [relation] with any other
    relation in one query. Time-independent. *)
val no_overlay : relation:string -> ?message:string -> unit -> string

(** Table 2 P2: [relation] may only be combined with the [allowed]
    relations. *)
val no_overlay_except :
  relation:string ->
  allowed:string list ->
  ?subject:subject ->
  ?message:string ->
  unit ->
  string

(** Table 1 P4 (Twitter/Foursquare): at most [max_calls] queries per user
    within [window] ticks. *)
val rate_limit :
  max_calls:int -> window:int -> ?subject:subject -> ?message:string -> unit -> string

(** Table 1 P3 (MS Translator): per-user cap on result tuples derived
    from [relation] over a sliding window. *)
val volume_quota :
  relation:string ->
  max_tuples:int ->
  window:int ->
  ?subject:subject ->
  ?message:string ->
  unit ->
  string

(** Table 1 P5 / Example 3.1 (MIMIC): no answer tuple may be contributed
    to by fewer than [k] distinct tuples of [relation]. *)
val k_anonymity : relation:string -> k:int -> ?message:string -> unit -> string

(** Table 1 P7 (Yelp): joins and unions fine; aggregating [relation]
    (optionally only its [column]) is prohibited. *)
val no_aggregation :
  relation:string -> ?column:string -> ?message:string -> unit -> string

(** Table 1 P2 (Kindle): at most [max_users] distinct users of [subject]
    may touch [relation] within [window] ticks (Example 3.2's P2b). *)
val group_license :
  relation:string ->
  max_users:int ->
  window:int ->
  ?subject:subject ->
  ?message:string ->
  unit ->
  string

(** [subject] may not touch [relation] at all. *)
val no_access :
  relation:string -> ?subject:subject -> ?message:string -> unit -> string

(** Table 2 P6: the same input tuple of [relation] may be used at most
    [max_uses] times within [window] ticks. *)
val reuse_cap :
  relation:string ->
  max_uses:int ->
  window:int ->
  ?subject:subject ->
  ?message:string ->
  unit ->
  string

(** One instance of a constructor per uid, named ["<prefix>_u<uid>"]. All
    instances share one shape ({!Policy.t.shape}), so the engine unifies
    them into a single template + constants-table policy. *)
val per_user :
  name_prefix:string -> uids:int list -> (subject:subject -> string) ->
  (string * string) list

(** One instance per relation, named ["<prefix>_<relation>"]. *)
val per_relation :
  name_prefix:string -> relations:string list -> (relation:string -> string) ->
  (string * string) list
