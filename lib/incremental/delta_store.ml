(** Engine-owned state for incremental (delta-driven) policy evaluation.

    The store records, per policy, a {e base}: a proof marker that the
    policy's query was empty over the state current at some earlier
    submission boundary. The engine establishes bases after every
    accepted submission (acceptance means every active policy was
    proved empty over the now-committed state) and advances each log
    relation's {!Relational.Table.mark_delta_base} watermark at the
    same instant, so a valid base always refers to exactly the rows
    below the current watermarks.

    A base is valid while nothing that could break the emptiness proof
    has happened: the catalog generation must match (DDL, [set_config],
    policy registration and unification rebuilds all bump it via
    [Engine.invalidate]) and every referenced table's version counters
    must match the snapshot taken at establishment. Which counters a
    dependency folds into the snapshot is the branch classification's
    {!Relational.Optimizer.dep_kind}; the per-kind counter sets are all
    monotone, so the snapshot stores their {e sum} — equality of sums
    is equality of every component.

    Aggregate branches additionally carry per-group accumulator state
    ({!agg_state}), folded forward at each establishment from the rows
    the branch's delta streams emitted, and rebuilt from the full
    stream when the base was invalid. The accumulators reproduce
    {!Relational.Aggregate.compute} exactly: COUNT ignores NULL
    arguments, SUM folds {!Relational.Aggregate.sum_step}, MIN/MAX keep
    the first value on ties, DISTINCT keeps the sorted set of non-NULL
    arguments. *)

module Value = Relational.Value
module Ast = Relational.Ast
module Aggregate = Relational.Aggregate

type base = { gen : int; vers : (string * int) list }

(* Mirrors the set aggregate.ml folds DISTINCT arguments into, so
   element order (sorted) and dedup (Value.compare) match exactly. *)
module VSet = Set.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

type acc = {
  mutable rows : int;  (** every folded row (COUNT star) *)
  mutable n : int;  (** non-NULL arguments (COUNT/AVG divisor) *)
  mutable sum : Value.t;  (** running {!Aggregate.sum_step} fold *)
  mutable mm : Value.t option;  (** running MIN/MAX, first-on-tie *)
  mutable set : VSet.t;  (** DISTINCT: the non-NULL argument set *)
}

type group = { key : Value.t array; accs : acc array }

type agg_state = { groups : (string, group) Hashtbl.t }

type t = {
  bases : (string, base) Hashtbl.t;
  agg : (string * int, agg_state) Hashtbl.t;  (** keyed (policy, branch) *)
  delta_evals : int Atomic.t;
  full_evals : int Atomic.t;
  agg_rebuilds : int Atomic.t;
}

type stats = {
  bases : int;
  delta_evals : int;
  full_evals : int;
  agg_groups : int;
  agg_rebuilds : int;
}

let create () : t =
  {
    bases = Hashtbl.create 16;
    agg = Hashtbl.create 16;
    delta_evals = Atomic.make 0;
    full_evals = Atomic.make 0;
    agg_rebuilds = Atomic.make 0;
  }

let reset (t : t) =
  Hashtbl.reset t.bases;
  Hashtbl.reset t.agg;
  Atomic.set t.delta_evals 0;
  Atomic.set t.full_evals 0;
  Atomic.set t.agg_rebuilds 0

let snapshot (cat : Relational.Catalog.t)
    (deps : (string * Relational.Optimizer.dep_kind) list) :
    (string * int) list =
  List.map
    (fun (name, kind) ->
      match Relational.Catalog.find_opt cat name with
      | Some table ->
        let open Relational in
        let v =
          (* Summing is lossless here: every counter is monotone
             non-decreasing, so two equal sums have equal parts. *)
          match kind with
          | Optimizer.Dep_plain -> Table.ver_mut table
          | Optimizer.Dep_log -> Table.ver_unsafe table
          | Optimizer.Dep_log_exact ->
            Table.ver_unsafe table + Table.ver_del table
          | Optimizer.Dep_log_frozen ->
            Table.ver_unsafe table + Table.ver_del table
            + Table.ver_compact table
        in
        (name, v)
      | None -> (name, -1))
    deps

let establish (t : t) name ~gen ~vers =
  Hashtbl.replace t.bases name { gen; vers }

let valid (t : t) name ~gen ~vers =
  match Hashtbl.find_opt t.bases name with
  | None -> false
  | Some b -> b.gen = gen && b.vers = vers

(* Aggregate branch state ---------------------------------------------------- *)

let agg_state (t : t) ~policy ~branch : agg_state =
  let k = (policy, branch) in
  match Hashtbl.find_opt t.agg k with
  | Some s -> s
  | None ->
    let s = { groups = Hashtbl.create 16 } in
    Hashtbl.add t.agg k s;
    s

let agg_clear (s : agg_state) = Hashtbl.reset s.groups

let new_acc () =
  { rows = 0; n = 0; sum = Value.Null; mm = None; set = VSet.empty }

let clone_acc (a : acc) = { a with rows = a.rows }

let fold_row (specs : (Ast.agg * bool) array) ~(nkeys : int) (g : group)
    (row : Value.t array) : unit =
  Array.iteri
    (fun j (agg, distinct) ->
      let a = g.accs.(j) in
      let v = row.(nkeys + j) in
      a.rows <- a.rows + 1;
      if not (Value.is_null v) then
        if distinct then a.set <- VSet.add v a.set
        else begin
          a.n <- a.n + 1;
          match agg with
          | Ast.Sum | Ast.Avg -> a.sum <- Aggregate.sum_step a.sum v
          | Ast.Min -> (
            match a.mm with
            | None -> a.mm <- Some v
            | Some m -> if Value.compare v m < 0 then a.mm <- Some v)
          | Ast.Max -> (
            match a.mm with
            | None -> a.mm <- Some v
            | Some m -> if Value.compare v m > 0 then a.mm <- Some v)
          | Ast.Count | Ast.Count_star -> ()
        end)
    specs

let avg_of (s : Value.t) (len : int) : Value.t =
  if len = 0 then Value.Null
  else
    match s with
    | Value.Int i -> Value.Float (float_of_int i /. float_of_int len)
    | Value.Float f -> Value.Float (f /. float_of_int len)
    | _ -> Value.Null

let finish_acc ((agg, distinct) : Ast.agg * bool) (a : acc) : Value.t =
  if distinct then begin
    let elems = VSet.elements a.set in
    match agg with
    | Ast.Count_star -> Value.Int a.rows
    | Ast.Count -> Value.Int (List.length elems)
    | Ast.Sum -> List.fold_left Aggregate.sum_step Value.Null elems
    | Ast.Avg ->
      avg_of (List.fold_left Aggregate.sum_step Value.Null elems)
        (List.length elems)
    | Ast.Min -> ( match elems with [] -> Value.Null | v :: _ -> v)
    | Ast.Max -> (
      match elems with [] -> Value.Null | _ -> VSet.max_elt a.set)
  end
  else
    match agg with
    | Ast.Count_star -> Value.Int a.rows
    | Ast.Count -> Value.Int a.n
    | Ast.Sum -> a.sum
    | Ast.Avg -> avg_of a.sum a.n
    | Ast.Min | Ast.Max -> (
      match a.mm with None -> Value.Null | Some v -> v)

let group_of (s : agg_state) (specs : (Ast.agg * bool) array) ~nkeys row =
  let key = Array.sub row 0 nkeys in
  let ck = Value.canonical_key_of_array key in
  match Hashtbl.find_opt s.groups ck with
  | Some g -> g
  | None ->
    let g =
      { key; accs = Array.init (Array.length specs) (fun _ -> new_acc ()) }
    in
    Hashtbl.add s.groups ck g;
    g

let agg_absorb (s : agg_state) ~(specs : (Ast.agg * bool) array)
    ~(nkeys : int) (rows : Value.t array list) : unit =
  List.iter
    (fun row -> fold_row specs ~nkeys (group_of s specs ~nkeys row) row)
    rows

let agg_scratch (s : agg_state) ~(specs : (Ast.agg * bool) array)
    ~(nkeys : int) (rows : Value.t array list) :
    (Value.t array * Value.t array) list =
  let touched : (string, group) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun row ->
      let key = Array.sub row 0 nkeys in
      let ck = Value.canonical_key_of_array key in
      let g =
        match Hashtbl.find_opt touched ck with
        | Some g -> g
        | None ->
          let g =
            match Hashtbl.find_opt s.groups ck with
            | Some g0 -> { key = g0.key; accs = Array.map clone_acc g0.accs }
            | None ->
              {
                key;
                accs = Array.init (Array.length specs) (fun _ -> new_acc ());
              }
          in
          Hashtbl.add touched ck g;
          g
      in
      fold_row specs ~nkeys g row)
    rows;
  Hashtbl.fold
    (fun _ g out ->
      (g.key, Array.mapi (fun j a -> finish_acc specs.(j) a) g.accs) :: out)
    touched []

let note_agg_rebuild (t : t) = Atomic.incr t.agg_rebuilds

let note_delta_eval (t : t) = Atomic.incr t.delta_evals

let note_full_eval (t : t) = Atomic.incr t.full_evals

let stats (t : t) : stats =
  {
    bases = Hashtbl.length t.bases;
    delta_evals = Atomic.get t.delta_evals;
    full_evals = Atomic.get t.full_evals;
    agg_groups =
      Hashtbl.fold (fun _ s acc -> acc + Hashtbl.length s.groups) t.agg 0;
    agg_rebuilds = Atomic.get t.agg_rebuilds;
  }
