(** Engine-owned state for incremental (delta-driven) policy evaluation.

    The store records, per policy, a {e base}: a proof marker that the
    policy's query was empty over the state current at some earlier
    submission boundary. The engine establishes bases after every
    accepted submission (acceptance means every active policy was
    proved empty over the now-committed state) and advances each log
    relation's {!Relational.Table.mark_delta_base} watermark at the
    same instant, so a valid base always refers to exactly the rows
    below the current watermarks.

    A base is valid while nothing that could break the emptiness proof
    has happened: the catalog generation must match (DDL, [set_config],
    policy registration and unification rebuilds all bump it via
    [Engine.invalidate]) and every referenced table's version counter
    must match the snapshot taken at establishment. Log relations
    snapshot {!Relational.Table.ver_unsafe} — appends are covered by
    the tid watermark and pure removals (compaction's [retain_tids],
    rollbacks) cannot grow a monotone query's result — while plain
    relations snapshot {!Relational.Table.ver_mut}, invalidating on any
    mutation. *)

type base = { gen : int; vers : (string * int) list }

type t = {
  bases : (string, base) Hashtbl.t;
  delta_evals : int Atomic.t;
  full_evals : int Atomic.t;
}

type stats = { bases : int; delta_evals : int; full_evals : int }

let create () : t =
  {
    bases = Hashtbl.create 16;
    delta_evals = Atomic.make 0;
    full_evals = Atomic.make 0;
  }

let reset (t : t) = Hashtbl.reset t.bases

let snapshot (cat : Relational.Catalog.t) (deps : (string * bool) list) :
    (string * int) list =
  List.map
    (fun (name, is_log) ->
      match Relational.Catalog.find_opt cat name with
      | Some table ->
        ( name,
          if is_log then Relational.Table.ver_unsafe table
          else Relational.Table.ver_mut table )
      | None -> (name, -1))
    deps

let establish (t : t) name ~gen ~vers =
  Hashtbl.replace t.bases name { gen; vers }

let valid (t : t) name ~gen ~vers =
  match Hashtbl.find_opt t.bases name with
  | None -> false
  | Some b -> b.gen = gen && b.vers = vers

let note_delta_eval (t : t) = Atomic.incr t.delta_evals

let note_full_eval (t : t) = Atomic.incr t.full_evals

let stats (t : t) : stats =
  {
    bases = Hashtbl.length t.bases;
    delta_evals = Atomic.get t.delta_evals;
    full_evals = Atomic.get t.full_evals;
  }
