(** Engine-owned state for incremental (delta-driven) policy evaluation.

    Per policy, the store holds a {e base}: evidence that the policy's
    query was proved empty over the state below the log relations'
    current delta watermarks ({!Relational.Table.delta_base}). With a
    valid base, re-checking the policy after a submission appended its
    tentative increment reduces to running the classified delta
    branches ({!Relational.Optimizer.derive_delta}) instead of
    rescanning the whole log.

    Aggregate branches additionally carry per-group accumulator state
    ({!agg_state}): running COUNT/SUM/AVG/MIN/MAX (and DISTINCT sets)
    per group key, folded forward at each establishment and consulted
    non-destructively at evaluation time. *)

type t

type stats = {
  bases : int;
  delta_evals : int;
  full_evals : int;
  agg_groups : int;  (** carried groups summed over all branch states *)
  agg_rebuilds : int;  (** full-stream rebuilds of carried state *)
}

val create : unit -> t

(** Drop every base and every carried aggregate state, and zero the
    evaluation counters — a full return to the initial state (engine
    reset / restart). *)
val reset : t -> unit

(** Version-counter snapshot for a dependency list: each table records
    the sum of the counters its {!Relational.Optimizer.dep_kind} names
    (the counters are monotone, so sum equality is componentwise
    equality). A missing table snapshots [-1], which can never match a
    live counter. *)
val snapshot :
  Relational.Catalog.t ->
  (string * Relational.Optimizer.dep_kind) list ->
  (string * int) list

(** Record a base for the named policy: its query is empty over the
    sub-watermark state, under catalog generation [gen] and the given
    counter snapshot. *)
val establish : t -> string -> gen:int -> vers:(string * int) list -> unit

(** Is the named policy's base still valid — same generation, same
    counter snapshot? Read-only; safe to call from worker domains while
    no writer runs (the engine only establishes bases between
    submissions). *)
val valid : t -> string -> gen:int -> vers:(string * int) list -> bool

(** {1 Carried aggregate state} *)

(** Per-(policy, branch) group accumulators. *)
type agg_state

(** Get or create the state for one aggregate branch of a policy. *)
val agg_state : t -> policy:string -> branch:int -> agg_state

(** Drop every carried group (before a full-stream rebuild). *)
val agg_clear : agg_state -> unit

(** Destructively fold stream rows — [group-key values @ aggregate
    arguments], [nkeys] leading key values, one trailing column per
    [specs] entry — into the carried groups. Used at establishment,
    over the just-committed delta (or the full stream after
    {!agg_clear} when rebuilding).
    @raise Errors.Sql_error on a SUM over non-numeric values, exactly
    where the batch fold would. *)
val agg_absorb :
  agg_state ->
  specs:(Relational.Ast.agg * bool) array ->
  nkeys:int ->
  Relational.Value.t array list ->
  unit

(** Fold stream rows into {e clones} of the touched groups' carried
    accumulators, leaving the carried state untouched (the submission
    may yet be rejected). Returns, per touched group, its key values
    and finished aggregate values — reproducing
    {!Relational.Aggregate.compute} exactly. *)
val agg_scratch :
  agg_state ->
  specs:(Relational.Ast.agg * bool) array ->
  nkeys:int ->
  Relational.Value.t array list ->
  (Relational.Value.t array * Relational.Value.t array) list

(** Count one full-stream rebuild of carried aggregate state. *)
val note_agg_rebuild : t -> unit

(** Count one policy evaluation served by delta plans. Atomic: worker
    domains bump it during parallel batches. *)
val note_delta_eval : t -> unit

(** Count one policy evaluation that fell back to a full re-run. *)
val note_full_eval : t -> unit

val stats : t -> stats
