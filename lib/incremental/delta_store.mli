(** Engine-owned state for incremental (delta-driven) policy evaluation.

    Per policy, the store holds a {e base}: evidence that the policy's
    query was proved empty over the state below the log relations'
    current delta watermarks ({!Relational.Table.delta_base}). With a
    valid base, re-checking the policy after a submission appended its
    tentative increment reduces to running the per-slot delta plans
    ({!Relational.Optimizer.derive_delta}) instead of rescanning the
    whole log. *)

type t

type stats = { bases : int; delta_evals : int; full_evals : int }

val create : unit -> t

(** Drop every base (the evaluation counters survive). *)
val reset : t -> unit

(** Version-counter snapshot for a dependency list [(table, is_log)]:
    log relations record {!Relational.Table.ver_unsafe} (appends are
    covered by the tid watermark; pure removals cannot grow a monotone
    query's result), plain relations {!Relational.Table.ver_mut} (any
    mutation invalidates). A missing table snapshots [-1], which can
    never match a live counter. *)
val snapshot :
  Relational.Catalog.t -> (string * bool) list -> (string * int) list

(** Record a base for the named policy: its query is empty over the
    sub-watermark state, under catalog generation [gen] and the given
    counter snapshot. *)
val establish : t -> string -> gen:int -> vers:(string * int) list -> unit

(** Is the named policy's base still valid — same generation, same
    counter snapshot? Read-only; safe to call from worker domains while
    no writer runs (the engine only establishes bases between
    submissions). *)
val valid : t -> string -> gen:int -> vers:(string * int) list -> bool

(** Count one policy evaluation served by delta plans. Atomic: worker
    domains bump it during parallel batches. *)
val note_delta_eval : t -> unit

(** Count one policy evaluation that fell back to a full re-run. *)
val note_full_eval : t -> unit

val stats : t -> stats
