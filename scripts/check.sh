#!/bin/sh
# Repo health check: build, test suite, formatting (when ocamlformat is
# available), and a persistence-bench smoke run.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== dune build @fmt (skipped: ocamlformat not installed)"
fi

echo "== bench smoke (persist)"
./_build/default/bench/main.exe persist >/dev/null

echo "ok"
