(** The [datalawyer] command-line tool.

    - [datalawyer repl] — interactive SQL console over the synthetic
      MIMIC instance with policy enforcement; [:help] lists commands.
    - [datalawyer check -p POLICY.sql -q QUERY.sql] — one-shot check of a
      query against policies (exit code 1 on violation).
    - [datalawyer demo] — a short guided tour. *)

open Relational
open Datalawyer

(* --fsync values: always | never | interval:N. *)
let fsync_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "always" -> Ok Persistence.Store.Always
  | "never" -> Ok Persistence.Store.Never
  | s when String.length s > 9 && String.sub s 0 9 = "interval:" -> (
    match int_of_string_opt (String.sub s 9 (String.length s - 9)) with
    | Some n when n > 0 -> Ok (Persistence.Store.Interval n)
    | _ -> Error (`Msg (Printf.sprintf "bad fsync interval in %S" s)))
  | _ -> Error (`Msg (Printf.sprintf "unknown fsync policy %S (always|never|interval:N)" s))

let make_engine ~noopt ~with_table2 ?domains ?delta ?persist_dir ?persist_fsync
    () =
  let mimic = Mimic.Generate.small_config in
  let db = Mimic.Generate.database ~config:mimic () in
  let config = if noopt then Engine.noopt_config else Engine.default_config in
  let config =
    match domains with
    | Some n when n >= 1 -> { config with Engine.domains = n }
    | Some n ->
      Printf.eprintf "--domains %d: must be >= 1\n" n;
      exit 2
    | None -> config
  in
  let config =
    match delta with
    | Some b -> { config with Engine.delta = b }
    | None -> config
  in
  let engine =
    try Engine.create ~config ?persist_dir ?persist_fsync db with
    | Persistence.Recovery.Recovery_error msg ->
      Printf.eprintf
        "cannot recover persisted usage log: %s\n\
         (fix or move the directory aside; refusing to start rather than \
         silently lose log history)\n"
        msg;
      exit 1
    | Unix.Unix_error (err, _, path) ->
      Printf.eprintf "cannot open persistence directory %s: %s\n"
        (match persist_dir with Some d -> d | None -> path)
        (Unix.error_message err);
      exit 1
  in
  (match Engine.persist_store engine with
  | Some store ->
    Printf.printf "persisting usage log to %s (fsync %s, generation %d, %d WAL records)\n"
      (Persistence.Store.dir store)
      (Format.asprintf "%a" Persistence.Wal.pp_fsync_policy
         (Persistence.Store.fsync_policy store))
      (Persistence.Store.generation store)
      (Persistence.Store.wal_records store)
  | None -> ());
  (* Recovery re-registers persisted policies; only add the missing ones. *)
  let registered =
    List.map (fun p -> p.Policy.name) (Engine.policies engine)
  in
  if with_table2 then
    List.iter
      (fun (p : Workload.Policies.t) ->
        if not (List.mem p.Workload.Policies.name registered) then
          ignore
            (Engine.add_policy engine ~name:p.Workload.Policies.name
               p.Workload.Policies.sql))
      (Workload.Policies.all ~n_patients:mimic.Mimic.Generate.n_patients ());
  (db, engine)

(* serve ------------------------------------------------------------------ *)

(* [repl --serve PORT]: run the policy server instead of the console.
   Blocks until stdin closes or Ctrl-C, then shuts down cleanly (drains
   the admission queue, closes the store, stops the domain pools). *)
let run_server engine ~port ~max_batch =
  let config = { Server.Tcp.default_config with Server.Tcp.port; max_batch } in
  let srv = Server.Tcp.start ~config engine in
  Printf.printf
    "policy server listening on %s:%d (admission batches of <= %d)\n\
     Ctrl-C or EOF on stdin stops it\n\
     %!"
    config.Server.Tcp.host (Server.Tcp.port srv) max_batch;
  Sys.catch_break true;
  let rec wait () =
    match In_channel.input_line stdin with Some _ -> wait () | None -> ()
  in
  (try wait () with Sys.Break -> ());
  print_endline "shutting down";
  Server.Tcp.stop ~close_engine:true srv;
  `Ok ()

(* repl ------------------------------------------------------------------- *)

let repl_help =
  {|commands:
  :help                 show this help
  :user N               switch current user id (default 1)
  :policy NAME SQL...   register a policy
  :policies             list registered policies
  :drop NAME            remove a policy
  :log                  show usage-log sizes (and on-disk state)
  :stats                show index, plan-cache, delta-eval, unification,
                        relevance-index, shared-scan and vectorized-executor
                        statistics
  :checkpoint           force a persistence checkpoint
  :tables               list tables
  :load TABLE FILE.csv  import a CSV file (creates the table if needed)
  :export TABLE FILE    export a table to CSV
  :quit                 exit
CREATE/DROP statements (e.g. CREATE INDEX ix ON t USING hash (col))
run directly; anything else is SQL, checked against the policies|}

let run_repl noopt no_policies domains delta persist_dir persist_fsync serve
    serve_batch =
  (* Under --serve the admission pipeline group-commits: it forces one
     synced flush per batch, so the WAL itself should buffer. An
     explicit --fsync still wins. *)
  let persist_fsync =
    match (serve, persist_fsync) with
    | Some _, None -> Some Persistence.Store.Never
    | _ -> persist_fsync
  in
  let db, engine =
    make_engine ~noopt ~with_table2:(not no_policies) ?domains ?delta
      ?persist_dir ?persist_fsync ()
  in
  match serve with
  | Some port ->
    ignore db;
    run_server engine ~port ~max_batch:serve_batch
  | None ->
  let uid = ref 1 in
  Printf.printf
    "DataLawyer console — synthetic MIMIC instance%s\ntype :help for commands\n"
    (if no_policies then "" else ", Table 2 policies enforced");
  let rec loop () =
    Printf.printf "dl:%d> %!" !uid;
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
      let line = String.trim line in
      (try
         if line = "" then ()
         else if line = ":quit" || line = ":q" then raise Exit
         else if line = ":help" then print_endline repl_help
         else if line = ":policies" then
           List.iter
             (fun p -> Format.printf "%a@." Policy.pp p)
             (Engine.policies engine)
         else if line = ":log" then begin
           List.iter
             (fun rel -> Printf.printf "  %-12s %6d rows\n" rel (Engine.log_size engine rel))
             [ "users"; "schema"; "provenance" ];
           match Engine.persist_store engine with
           | Some store ->
             Printf.printf "  on disk: generation %d, %d WAL records, %d bytes\n"
               (Persistence.Store.generation store)
               (Persistence.Store.wal_records store)
               (Persistence.Store.disk_bytes store)
           | None -> ()
         end
         else if line = ":stats" then begin
           let cat = Database.catalog db in
           List.iter
             (fun tname ->
               let table = Catalog.find cat tname in
               match Table.indexes table with
               | [] -> ()
               | ixs ->
                 Printf.printf "  %s (%d rows)\n" tname (Table.row_count table);
                 List.iter
                   (fun ix ->
                     Printf.printf "    %-24s %-6s on %-10s %8d entries\n"
                       (Index.name ix)
                       (Index.kind_to_string (Index.kind ix))
                       (Index.column_name ix) (Index.entries ix))
                   ixs)
             (Catalog.table_names cat);
           let hits, misses = Engine.plan_cache_stats engine in
           let total = hits + misses in
           Printf.printf "  plan cache: %d hits / %d misses%s\n" hits misses
             (if total = 0 then ""
              else
                Printf.sprintf " (%.1f%% hit rate)"
                  (100. *. float_of_int hits /. float_of_int total));
           Printf.printf "  index probes: %d\n" (Atomic.get Executor.index_probes);
           let domains, batches, tasks = Engine.parallel_stats engine in
           Printf.printf "  parallel: %d domain%s, %d batches, %d tasks\n"
             domains
             (if domains = 1 then " (serial path)" else "s")
             batches tasks;
           let d = Engine.delta_stats engine in
           Printf.printf "  delta plans: %d eligible, %d fallback\n"
             d.Engine.eligible_plans d.Engine.fallback_plans;
           Printf.printf "  delta store: %d bases, %d agg groups, %d rebuilds\n"
             d.Engine.delta_bases d.Engine.agg_groups d.Engine.agg_rebuilds;
           Printf.printf "  delta evals: %d delta, %d full\n"
             d.Engine.delta_evals d.Engine.full_evals;
           let u = Engine.unify_stats engine in
           Printf.printf "  unification: %d registered -> %d active (%d groups, %d members)\n"
             u.Engine.unify_registered u.Engine.unify_active
             u.Engine.unify_groups u.Engine.unify_members;
           let r = Engine.relevance_stats engine in
           Printf.printf "  relevance index: %d policies (%d eligible), %d checks, %d skips%s\n"
             r.Engine.rel_indexed r.Engine.rel_eligible r.Engine.rel_checks
             r.Engine.rel_skips
             (if r.Engine.rel_checks = 0 then ""
              else
                Printf.sprintf " (%.1f%% skipped)"
                  (100. *. float_of_int r.Engine.rel_skips
                  /. float_of_int r.Engine.rel_checks));
           let sh, sm = Engine.shared_scan_stats engine in
           let stot = sh + sm in
           Printf.printf "  shared scans: %d hits / %d misses%s\n" sh sm
             (if stot = 0 then ""
              else
                Printf.sprintf " (%.1f%% hit rate)"
                  (100. *. float_of_int sh /. float_of_int stot));
           let v = Engine.vector_stats engine in
           Printf.printf
             "  vectorized: %s, %d batches, %d rows, %d row-path fallbacks\n"
             (if v.Engine.vec_enabled then "on" else "off")
             v.Engine.vec_batches v.Engine.vec_rows v.Engine.vec_fallbacks;
           (if v.Engine.vec_batches > 0 then
              let labels = [| "<16"; "<256"; "<4k"; "<64k"; ">=64k" |] in
              Printf.printf "  rows per batch: %s\n"
                (String.concat ", "
                   (Array.to_list
                      (Array.mapi
                         (fun k n -> Printf.sprintf "%s: %d" labels.(k) n)
                         v.Engine.vec_hist))));
           Printf.printf
             "  column layout: %d typed, %d mixed, %d dictionary entries\n"
             v.Engine.vec_typed_cols v.Engine.vec_mixed_cols
             v.Engine.vec_dict_entries;
           let b = Engine.batch_stats engine in
           Printf.printf
             "  admission batches: %d fast, %d retried, %d serial (%d batched \
              submissions)\n"
             b.Engine.fast_batches b.Engine.retried_batches
             b.Engine.serial_batches b.Engine.batched_submissions;
           match Engine.persist_store engine with
           | Some store ->
             Printf.printf "  group-commit fsyncs: %d\n"
               (Persistence.Store.fsyncs store)
           | None -> ()
         end
         else if line = ":checkpoint" then begin
           Engine.persist_checkpoint engine;
           match Engine.persist_store engine with
           | Some store ->
             Printf.printf "checkpointed: generation %d, %d bytes on disk\n"
               (Persistence.Store.generation store)
               (Persistence.Store.disk_bytes store)
           | None -> print_endline "no persistence directory (start with --persist DIR)"
         end
         else if line = ":tables" then
           List.iter print_endline (Catalog.table_names (Database.catalog db))
         else if String.length line > 6 && String.sub line 0 6 = ":user " then
           uid := int_of_string (String.trim (String.sub line 6 (String.length line - 6)))
         else if String.length line > 6 && String.sub line 0 6 = ":drop " then
           Engine.remove_policy engine (String.trim (String.sub line 6 (String.length line - 6)))
         else if String.length line > 6 && String.sub line 0 6 = ":load " then begin
           match String.split_on_char ' ' (String.sub line 6 (String.length line - 6)) with
           | [ table; path ] ->
             let n = Csv_io.import_from_file db ~table ~path in
             Printf.printf "imported %d rows into %s\n" n table
           | _ -> print_endline "usage: :load TABLE FILE.csv"
         end
         else if String.length line > 8 && String.sub line 0 8 = ":export " then begin
           match String.split_on_char ' ' (String.sub line 8 (String.length line - 8)) with
           | [ table; path ] ->
             Csv_io.export_to_file db ~table ~path;
             Printf.printf "exported %s to %s\n" table path
           | _ -> print_endline "usage: :export TABLE FILE"
         end
         else if String.length line > 8 && String.sub line 0 8 = ":policy " then begin
           let rest = String.sub line 8 (String.length line - 8) in
           match String.index_opt rest ' ' with
           | None -> print_endline "usage: :policy NAME SQL..."
           | Some i ->
             let name = String.sub rest 0 i in
             let sql = String.sub rest (i + 1) (String.length rest - i - 1) in
             let p = Engine.add_policy engine ~name sql in
             Format.printf "registered %a@." Policy.pp p
         end
         else if
           (* DDL bypasses policy checking: statements aren't submissions. *)
           match String.index_opt line ' ' with
           | Some i ->
             let w = String.lowercase_ascii (String.sub line 0 i) in
             w = "create" || w = "drop"
           | None -> false
         then begin
           match Dml.exec (Database.catalog db) (Parser.stmt line) with
           | Dml.Created what -> Printf.printf "created %s\n" what
           | Dml.Dropped what -> Printf.printf "dropped %s\n" what
           | Dml.Affected n -> Printf.printf "%d rows affected\n" n
           | Dml.Rows result -> print_endline (Database.render result)
         end
         else
           match Engine.submit engine ~uid:!uid line with
           | Engine.Accepted (result, stats) ->
             print_endline (Database.render result);
             Printf.printf "(policy machinery: %.2fms)\n"
               (Stats.overhead stats *. 1000.)
           | Engine.Rejected (messages, _) ->
             List.iter (fun m -> Printf.printf "REJECTED: %s\n" m) messages
       with
      | Exit -> raise Exit
      | Errors.Sql_error _ as e -> print_endline (Errors.to_string e)
      | Failure m -> print_endline m);
      loop ()
  in
  (try loop () with Exit -> ());
  Engine.close engine;
  `Ok ()

(* check ------------------------------------------------------------------ *)

let run_check policy_files query_file uid domains delta persist_dir
    persist_fsync =
  let db, engine =
    make_engine ~noopt:false ~with_table2:false ?domains ?delta ?persist_dir
      ?persist_fsync ()
  in
  ignore db;
  List.iteri
    (fun i file ->
      let sql = In_channel.with_open_text file In_channel.input_all in
      let name = Printf.sprintf "policy_%d" i in
      (* Recovery may have re-registered this policy from a previous run;
         keep it unless the file's text changed. *)
      match
        List.find_opt (fun p -> p.Policy.name = name) (Engine.policies engine)
      with
      | Some p when String.trim p.Policy.source = String.trim sql -> ()
      | Some _ ->
        Engine.remove_policy engine name;
        ignore (Engine.add_policy engine ~name sql)
      | None -> ignore (Engine.add_policy engine ~name sql))
    policy_files;
  let sql = In_channel.with_open_text query_file In_channel.input_all in
  match Engine.submit engine ~uid sql with
  | Engine.Accepted (result, _) ->
    print_endline (Database.render result);
    Engine.close engine;
    `Ok ()
  | Engine.Rejected (messages, _) ->
    List.iter (fun m -> Printf.eprintf "REJECTED: %s\n" m) messages;
    Engine.close engine;
    exit 1

(* demo ------------------------------------------------------------------- *)

let run_demo () =
  let _, engine = make_engine ~noopt:false ~with_table2:true () in
  let script =
    [
      (0, "SELECT COUNT(*) FROM d_patients");
      (1, "SELECT sex, dob FROM d_patients WHERE subject_id = 7");
      (1, "SELECT o.drug, m.dose FROM poe_order o, poe_med m WHERE o.order_id = m.order_id LIMIT 3");
      (1, "SELECT o.drug, p.sex FROM poe_order o, d_patients p WHERE o.subject_id = p.subject_id LIMIT 3");
    ]
  in
  List.iter
    (fun (uid, sql) ->
      Printf.printf "[uid %d] %s\n" uid sql;
      (match Engine.submit engine ~uid sql with
      | Engine.Accepted (result, _) ->
        Printf.printf "  accepted (%d rows)\n" (List.length result.Executor.out_rows)
      | Engine.Rejected (messages, _) ->
        List.iter (fun m -> Printf.printf "  REJECTED: %s\n" m) messages);
      print_newline ())
    script;
  `Ok ()

(* cmdliner wiring ---------------------------------------------------------- *)

open Cmdliner

let noopt =
  Arg.(value & flag & info [ "noopt" ] ~doc:"Use the NoOpt baseline engine.")

let no_policies =
  Arg.(value & flag & info [ "no-policies" ] ~doc:"Start without the Table 2 policies.")

let domains =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Evaluating domains for policy, partial-policy and witness-query \
           batches. $(b,1) forces the serial code path (no pool); the \
           default honours $(b,DL_DOMAINS) or the machine's core count.")

let delta =
  Arg.(
    value
    & opt (some bool) None
    & info [ "delta" ] ~docv:"BOOL"
        ~doc:
          "Incremental policy evaluation: re-check delta-eligible policies \
           against only the usage-log rows appended since the last accepted \
           submission, falling back to full re-evaluation where the plan \
           shape or an invalidation requires it. The default honours \
           $(b,DL_DELTA) (on unless set to 0). Decisions are identical \
           either way.")

let persist_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "persist" ] ~docv:"DIR"
        ~doc:
          "Persist the usage log to $(docv): accepted submissions are \
           appended to a write-ahead log and the log state is recovered on \
           the next start.")

let fsync_conv : Persistence.Store.fsync_policy Arg.conv =
  let print ppf p = Persistence.Wal.pp_fsync_policy ppf p in
  Arg.conv (fsync_of_string, print)

let persist_fsync =
  Arg.(
    value
    & opt (some fsync_conv) None
    & info [ "fsync" ] ~docv:"POLICY"
        ~doc:
          "WAL durability policy: $(b,always) (fsync every commit), \
           $(b,interval:N) (fsync every N commits, the default with N=32), or \
           $(b,never) (leave flushing to the OS).")

let serve =
  Arg.(
    value
    & opt (some int) None
    & info [ "serve" ] ~docv:"PORT"
        ~doc:
          "Run the multi-tenant policy server on $(docv) instead of the \
           console: clients HELLO/AUTH over a length-prefixed TCP protocol \
           and concurrent SUBMITs are admitted in batches. $(b,0) picks an \
           ephemeral port. Combine with $(b,--persist) for a durable usage \
           log with per-batch group commit.")

let serve_batch =
  Arg.(
    value
    & opt int Server.Tcp.default_config.Server.Tcp.max_batch
    & info [ "serve-batch" ] ~docv:"N"
        ~doc:
          "Maximum admission batch size: up to $(docv) queued concurrent \
           submissions are decided by one policy evaluation and committed \
           with one fsync when the fast path applies.")

let repl_cmd =
  Cmd.v
    (Cmd.info "repl"
       ~doc:"Interactive SQL console with policy enforcement (or --serve)")
    Term.(
      ret
        (const run_repl $ noopt $ no_policies $ domains $ delta $ persist_dir
       $ persist_fsync $ serve $ serve_batch))

let check_cmd =
  let policies =
    Arg.(
      value & opt_all file []
      & info [ "p"; "policy" ] ~docv:"FILE" ~doc:"Policy SQL file (repeatable).")
  in
  let query =
    Arg.(required & opt (some file) None & info [ "q"; "query" ] ~docv:"FILE" ~doc:"Query SQL file.")
  in
  let uid = Arg.(value & opt int 1 & info [ "u"; "uid" ] ~doc:"User id.") in
  Cmd.v
    (Cmd.info "check" ~doc:"Check one query against policies; exit 1 on violation")
    Term.(
      ret
        (const run_check $ policies $ query $ uid $ domains $ delta
       $ persist_dir $ persist_fsync))

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Short guided tour") Term.(ret (const run_demo $ const ()))

let () =
  let info =
    Cmd.info "datalawyer" ~version:"1.0.0"
      ~doc:"Automatic enforcement of data use policies (SIGMOD'15 reproduction)"
  in
  exit (Cmd.eval (Cmd.group info [ repl_cmd; check_cmd; demo_cmd ]))
