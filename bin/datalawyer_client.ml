(** Scripted client for the policy server.

    - [datalawyer-client -p PORT -u UID "SELECT ..."] — submit queries
      (repeatable positional arguments, or one per stdin line with no
      positional SQL); prints each verdict; exit code 1 if any
      submission was rejected or failed.
    - [datalawyer-client -p PORT --stats] — dump the server counters.
    - [datalawyer-client -p PORT --ping] — liveness probe. *)

module Protocol = Server.Protocol

exception Client_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Client_error m)) fmt

type conn = {
  fd : Unix.file_descr;
  decoder : Protocol.Decoder.t;
  buf : Bytes.t;
}

let connect host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found | Invalid_argument _ -> fail "unknown host %S" host)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     fail "cannot connect to %s:%d: %s" host port (Unix.error_message e));
  { fd; decoder = Protocol.Decoder.create (); buf = Bytes.create 65536 }

let write_all c s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then begin
      let n =
        try Unix.write c.fd b off (len - off)
        with Unix.Unix_error (e, _, _) ->
          fail "connection lost: %s" (Unix.error_message e)
      in
      if n = 0 then fail "connection lost";
      go (off + n)
    end
  in
  go 0

let recv c =
  let rec next () =
    match Protocol.Decoder.next c.decoder with
    | `Frame payload -> (
      match Protocol.parse_response payload with
      | Ok r -> r
      | Error (_, m) -> fail "bad reply: %s" m)
    | `Error code -> fail "framing error from server (%s)" code
    | `Awaiting ->
      let n =
        try Unix.read c.fd c.buf 0 (Bytes.length c.buf)
        with Unix.Unix_error (e, _, _) ->
          fail "connection lost: %s" (Unix.error_message e)
      in
      if n = 0 then fail "server closed the connection";
      Protocol.Decoder.feed c.decoder (Bytes.sub_string c.buf 0 n);
      next ()
  in
  next ()

let rpc c req =
  write_all c (Protocol.encode_frame (Protocol.render_request req));
  recv c

let run host port uid ping stats queries =
  try
    let c = connect host port in
    (match rpc c (Protocol.Hello Protocol.version) with
    | Protocol.Hello_ok _ -> ()
    | r -> fail "unexpected HELLO reply: %s" (Protocol.render_response r));
    if ping then begin
      match rpc c Protocol.Ping with
      | Protocol.Pong -> print_endline "PONG"
      | r -> fail "unexpected PING reply: %s" (Protocol.render_response r)
    end;
    if stats then begin
      match rpc c Protocol.Stats with
      | Protocol.Stats_reply kvs ->
        List.iter (fun (k, v) -> Printf.printf "%-20s %s\n" k v) kvs
      | r -> fail "unexpected STATS reply: %s" (Protocol.render_response r)
    end;
    let queries =
      if queries = [] && not (ping || stats) then
        (* No SQL on the command line: one query per stdin line. *)
        In_channel.fold_lines
          (fun acc l -> if String.trim l = "" then acc else String.trim l :: acc)
          [] stdin
        |> List.rev
      else queries
    in
    let bad = ref 0 in
    if queries <> [] then begin
      (match rpc c (Protocol.Auth uid) with
      | Protocol.Auth_ok _ -> ()
      | r -> fail "unexpected AUTH reply: %s" (Protocol.render_response r));
      List.iter
        (fun sql ->
          match rpc c (Protocol.Submit sql) with
          | Protocol.Accepted { seq; rows } ->
            Printf.printf "ACCEPT #%d (%d rows)\n" seq rows
          | Protocol.Rejected { seq; messages } ->
            incr bad;
            Printf.printf "REJECT #%d\n" seq;
            List.iter (fun m -> Printf.printf "  %s\n" m) messages
          | Protocol.Err { code; message } ->
            incr bad;
            Printf.printf "ERROR %s: %s\n" code message
          | r -> fail "unexpected SUBMIT reply: %s" (Protocol.render_response r))
        queries
    end;
    (match rpc c Protocol.Quit with Protocol.Bye | _ -> ());
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    if !bad > 0 then exit 1;
    `Ok ()
  with Client_error m ->
    Printf.eprintf "datalawyer-client: %s\n" m;
    exit 2

open Cmdliner

let host =
  Arg.(value & opt string "127.0.0.1" & info [ "h"; "host" ] ~docv:"HOST" ~doc:"Server host.")

let port =
  Arg.(
    required
    & opt (some int) None
    & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")

let uid =
  Arg.(value & opt int 1 & info [ "u"; "uid" ] ~docv:"UID" ~doc:"Tenant uid to AUTH as.")

let ping = Arg.(value & flag & info [ "ping" ] ~doc:"Liveness probe.")
let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print the server counters.")

let queries =
  Arg.(value & pos_all string [] & info [] ~docv:"SQL" ~doc:"Queries to submit (else stdin).")

let () =
  let info =
    Cmd.info "datalawyer-client" ~version:"1.0.0"
      ~doc:"Submit queries to a running datalawyer policy server"
  in
  exit
    (Cmd.eval
       (Cmd.v info Term.(ret (const run $ host $ port $ uid $ ping $ stats $ queries))))
