(** Bechamel micro-benchmarks for the engine's hot operations: one
    [Test.make] per reproduced table/figure's critical path —

    - Fig. 1/2's inner loop: full policy check of a W1 submission;
    - Fig. 3's mark phase: witness construction for a window policy;
    - Fig. 4's partial policies: πS construction;
    - Fig. 5's unified evaluation: one unified-policy evaluation;
    - Table 4's rewrite: time-independence classification + rewriting;
    - the SQL frontend (parse of a Table 2 policy). *)

open Bechamel
open Toolkit
open Datalawyer

let make_setup () =
  let s =
    Workload.Runner.make ~mimic:Mimic.Generate.small_config
      ~params:Common.bench_params
      ~policy_names:[ "P1"; "P2"; "P3"; "P4"; "P5"; "P6" ] ()
  in
  (* warm the engine so steady-state costs are measured *)
  let q = Workload.Runner.query s "W1" in
  ignore (Workload.Runner.run_stream s ~uid:1 ~n:20 q);
  s

let tests () =
  let s = make_setup () in
  let engine = s.Workload.Runner.engine in
  let db = s.Workload.Runner.db in
  let is_log rel = Relational.Catalog.is_log (Relational.Database.catalog db) rel in
  let w1 = Workload.Runner.query s "W1" in
  let p5 =
    List.find (fun p -> p.Policy.name = "P5") (Engine.policies engine)
  in
  let p2_sql = (Workload.Policies.p2 Common.bench_params).Workload.Policies.sql in
  [
    Test.make ~name:"submit W1 (full policy check)"
      (Staged.stage (fun () ->
           ignore (Engine.submit engine ~uid:1 w1.Workload.Queries.sql)));
    Test.make ~name:"witness construction (P5)"
      (Staged.stage (fun () -> ignore (Witness.for_policy ~is_log ~now:1000 p5)));
    Test.make ~name:"partial policy construction (P5, S={users})"
      (Staged.stage (fun () ->
           ignore (Partial.of_query ~is_log ~available:[ "users" ] p5.Policy.query)));
    Test.make ~name:"policy parse + classify (P2)"
      (Staged.stage (fun () ->
           ignore
             (Policy.create
                (Relational.Database.catalog db)
                ~is_log ~name:"bench_p2" ~active_from:0 p2_sql)));
    Test.make ~name:"policy evaluation (P5, compacted log)"
      (Staged.stage (fun () ->
           ignore (Relational.Executor.is_empty (Relational.Database.catalog db) p5.Policy.query)));
  ]

(* Prepared-plan cache: per-submission policy-evaluation latency with the
   cache cleared before every submission (cold — every policy, partial
   policy and witness query is re-bound, re-optimized and re-compiled)
   vs left warm (plans compiled once, executed per submission). *)
let plan_cache_case () =
  Common.header "Plan cache: policy evaluation, cold vs warm";
  (* default thresholds: the compacted log stays small, so compile cost
     is visible next to evaluation (bench_params' larger windows would
     drown it in per-row work) *)
  let s =
    Workload.Runner.make
      ~policy_names:[ "P1"; "P2"; "P3"; "P4"; "P5"; "P6" ]
      ()
  in
  let engine = s.Workload.Runner.engine in
  let q = Workload.Runner.query s "W1" in
  (* warm up until the compacted log reaches steady state, so log growth
     doesn't drift the measurement *)
  ignore (Workload.Runner.run_stream s ~uid:1 ~n:100 q);
  let n = 300 in
  List.iter
    (fun uid ->
      (* interleave cold and warm submissions pairwise: the second
         submission of each pair reuses exactly the plans the first just
         compiled, cancelling any residual log drift *)
      let cold = ref 0. and warm = ref 0. in
      for _ = 1 to n do
        Engine.clear_plan_cache engine;
        let st =
          Engine.stats_of (Engine.submit engine ~uid q.Workload.Queries.sql)
        in
        cold := !cold +. st.Stats.policy_eval;
        let st =
          Engine.stats_of (Engine.submit engine ~uid q.Workload.Queries.sql)
        in
        warm := !warm +. st.Stats.policy_eval
      done;
      Printf.printf
        "policy evaluation per W1 submission (uid %d): cold %.1f us, warm \
         %.1f us (%.2fx)\n"
        uid
        (!cold /. float_of_int n *. 1e6)
        (!warm /. float_of_int n *. 1e6)
        (!cold /. !warm))
    [ 0; 1 ];
  let hits, misses = Engine.plan_cache_stats engine in
  Printf.printf "cache totals: %d hits / %d misses\n" hits misses

(* Access paths: indexed uid-equality policy scan (and a ts window) vs
   the heap baseline over a large usage log — the ISSUE 3 acceptance
   measurement. CI runs this with --smoke (smaller log, fewer iters) and
   the 3x floor still asserts, so access-path regressions fail CI. *)
let index_case () =
  Common.header "Access paths: indexed scan vs heap scan";
  let open Relational in
  let smoke = !Common.smoke in
  let n_rows = if smoke then 20_000 else 100_000 in
  let iters = if smoke then 10 else 50 in
  let cat = Catalog.create () in
  let table =
    Catalog.create_table cat ~name:"usage"
      ~schema:(Schema.make [ ("ts", Ty.Int); ("uid", Ty.Int) ])
  in
  for i = 0 to n_rows - 1 do
    ignore (Table.insert table [| Value.Int i; Value.Int (i mod 997) |])
  done;
  let eq_q = Parser.query "SELECT ts, uid FROM usage WHERE uid = 123" in
  let range_q =
    Parser.query "SELECT ts, uid FROM usage WHERE ts >= 1000 AND ts < 1200"
  in
  let time_exec q =
    let c = Executor.prepare cat q in
    ignore (Executor.run_compiled c);
    (Common.measure ~iters (fun () -> ignore (Executor.run_compiled c))).Common.us
  in
  let heap_eq = time_exec eq_q in
  let heap_range = time_exec range_q in
  ignore
    (Dml.exec cat (Parser.stmt "CREATE INDEX ix_usage_uid ON usage USING hash (uid)"));
  ignore
    (Dml.exec cat (Parser.stmt "CREATE INDEX ix_usage_ts ON usage USING sorted (ts)"));
  let ix_eq = time_exec eq_q in
  let ix_range = time_exec range_q in
  Printf.printf
    "uid-equality over %d rows: heap %.1f us, indexed %.1f us (%.1fx)\n" n_rows
    heap_eq ix_eq (heap_eq /. ix_eq);
  Printf.printf
    "ts window over %d rows:    heap %.1f us, indexed %.1f us (%.1fx)\n" n_rows
    heap_range ix_range (heap_range /. ix_range);
  if heap_eq /. ix_eq < 3.0 then begin
    Printf.printf "FAIL: indexed uid-equality speedup %.2fx is below the 3x floor\n"
      (heap_eq /. ix_eq);
    exit 1
  end

(* Policy registration must precede the log preload — a policy only sees
   log rows from its own history on, so users rows inserted before
   [add_policy] would be invisible to it. Every case that preloads a
   users log goes through here so the ordering is pinned in one place;
   the preloaded rows are (ts = i, uid = i mod 50) and the clock is
   advanced past them. *)
let register_then_preload engine ~policies ~n_rows =
  let db = Engine.database engine in
  List.iter
    (fun (name, sql) -> ignore (Engine.add_policy engine ~name sql))
    policies;
  let users = Relational.Database.table db "users" in
  for i = 1 to n_rows do
    ignore
      (Relational.Table.insert users
         [| Relational.Value.Int i; Relational.Value.Int (i mod 50) |])
  done;
  Usage_log.set_clock db (n_rows + 1)

(* Warm-up submission: compiles every plan (and, with delta on,
   establishes the first base). The bench policies are designed to
   accept, so a rejection means the case itself is broken. *)
let warm_submit engine =
  match Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1" with
  | Engine.Rejected _ -> failwith "bench policies must accept"
  | Engine.Accepted _ -> ()

(* Domain pool: N expensive policies (nested-loop self-joins over a
   preloaded users log, accepted thanks to huge HAVING thresholds)
   checked per submission, serial vs pooled — the ISSUE 4 acceptance
   measurement. The >= 1.3x floor at 4 domains asserts only where the
   host can actually run domains in parallel (CI's multi-core runners);
   on a single-core host the pooled run cannot win and the gate is
   skipped with a notice. *)
let parallel_case () =
  Common.header "Domain pool: per-submission policy fan-out, serial vs pooled";
  let open Relational in
  let smoke = !Common.smoke in
  let n_log_rows = if smoke then 200 else 400 in
  let n_policies = if smoke then 6 else 8 in
  let iters = if smoke then 3 else 10 in
  let run_with ~domains =
    let db = Database.create () in
    ignore
      (Database.exec_script db
         "CREATE TABLE data (k INT, v TEXT); INSERT INTO data VALUES (1, \
          'a'), (2, 'b')");
    let config =
      {
        Engine.default_config with
        Engine.strategy = Engine.Serial;
        (* unification would collapse the structurally-identical policies
           into one query and erase the fan-out being measured *)
        unification = false;
        log_compaction = false;
        domains;
      }
    in
    let engine = Engine.create ~config db in
    register_then_preload engine ~n_rows:n_log_rows
      ~policies:
        (List.init n_policies (fun j ->
             let k = j + 1 in
             ( Printf.sprintf "expensive%d" k,
               Printf.sprintf
                 "SELECT DISTINCT 'expensive %d' FROM users u, users v, clock \
                  c WHERE u.ts > v.ts - %d AND u.ts <= c.ts AND u.uid * v.uid \
                  > 1000000000 HAVING COUNT(DISTINCT u.ts) > 1000000"
                 k (5 + k) )));
    (* warm: compile every plan once *)
    warm_submit engine;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1")
    done;
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int iters in
    let _, batches, tasks = Engine.parallel_stats engine in
    (dt, batches, tasks)
  in
  let serial, _, _ = run_with ~domains:1 in
  Printf.printf "%d policies x %d log rows, serial: %.1f ms/submission\n"
    n_policies n_log_rows (serial *. 1000.);
  let speedup4 = ref 0. in
  List.iter
    (fun domains ->
      let pooled, batches, tasks = run_with ~domains in
      let sp = serial /. pooled in
      if domains = 4 then speedup4 := sp;
      Printf.printf
        "  %d domains: %.1f ms/submission (%.2fx, %d batches, %d tasks)\n"
        domains (pooled *. 1000.) sp batches tasks)
    [ 2; 4 ];
  if Domain.recommended_domain_count () >= 2 then begin
    if !speedup4 < 1.3 then begin
      Printf.printf
        "FAIL: 4-domain speedup %.2fx is below the 1.3x floor\n" !speedup4;
      exit 1
    end
  end
  else
    Printf.printf
      "(single-core host: the >= 1.3x pooled-speedup floor is skipped)\n"

(* Incremental evaluation: per-submission policy-evaluation latency of a
   delta-eligible SPJ policy over a growing preloaded usage log, delta on
   vs off — the ISSUE 5 acceptance measurement. Full evaluation rescans
   the whole log per submission and grows linearly; delta evaluation
   joins only the submission's increment against the log's watermark and
   stays ~flat, so the speedup at the largest size gates regressions
   (conservative 2x floor in --smoke, 3x otherwise). *)
let delta_case () =
  Common.header "Incremental evaluation: delta vs full policy re-check";
  let open Relational in
  let smoke = !Common.smoke in
  let sizes = if smoke then [ 2_000; 8_000 ] else [ 5_000; 20_000; 80_000 ] in
  let iters = if smoke then 20 else 50 in
  let run_with ~delta ~n =
    let db = Database.create () in
    ignore
      (Database.exec_script db
         "CREATE TABLE data (k INT, v TEXT); INSERT INTO data VALUES (1, \
          'a'), (2, 'b'); CREATE TABLE banned (uid INT); INSERT INTO banned \
          VALUES (999)");
    (* every optimization that shortcuts re-evaluation on its own (TI
       rewriting, compaction) is off, so the comparison isolates the
       delta machinery; Serial keeps one evaluation per policy *)
    let config =
      {
        Engine.strategy = Engine.Serial;
        time_independent = false;
        log_compaction = false;
        preemptive = false;
        improved_partial = false;
        unification = false;
        domains = 1;
        delta;
        relevance = false;
        shared_scans = false;
        vectorized = Engine.default_vector;
      }
    in
    let engine = Engine.create ~config db in
    register_then_preload engine ~n_rows:n
      ~policies:
        [
          ( "no_banned",
            "SELECT DISTINCT 'banned uid' FROM users u, banned b WHERE u.uid \
             = b.uid" );
        ];
    (* warm: compiles the plans and, with delta on, establishes the first
       base — the measured submissions then only scan their increments *)
    warm_submit engine;
    let total = ref 0. in
    let m =
      Common.measure ~iters (fun () ->
          let st =
            Engine.stats_of
              (Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1")
          in
          total := !total +. st.Stats.policy_eval)
    in
    (!total /. float_of_int iters *. 1e6, m.Common.minor_words)
  in
  let speedup_at_largest = ref 0. in
  List.iter
    (fun n ->
      let full, full_mw = run_with ~delta:false ~n in
      let delta, delta_mw = run_with ~delta:true ~n in
      let sp = full /. delta in
      speedup_at_largest := sp;
      Printf.printf
        "%6d log rows: full %.1f us (%s), delta %.1f us (%s) per submission \
         (%.1fx)\n"
        n full (Common.words full_mw) delta (Common.words delta_mw) sp)
    sizes;
  let floor = if smoke then 2.0 else 3.0 in
  if !speedup_at_largest < floor then begin
    Printf.printf
      "FAIL: delta speedup %.2fx at the largest log is below the %.1fx floor\n"
      !speedup_at_largest floor;
    exit 1
  end

(* Incremental aggregates: per-submission policy-evaluation latency of a
   carried-state aggregate policy (GROUP BY over the log, HAVING
   threshold — the Table-2 P3/P4 shape) over a growing preloaded usage
   log, delta on vs off — the ISSUE 9 acceptance measurement. Full
   evaluation re-groups the whole log per submission; the delta path
   folds only the increment into clones of the carried per-group
   accumulators, so its cost is bounded by the increment and the gap
   grows linearly with the log. The >= 10x floor at the largest size
   gates regressions in both smoke and full modes. *)
let delta_agg_case () =
  Common.header "Incremental aggregates: carried group state vs full re-group";
  let open Relational in
  let smoke = !Common.smoke in
  let sizes = if smoke then [ 2_000; 8_000 ] else [ 5_000; 20_000; 80_000 ] in
  let iters = if smoke then 20 else 50 in
  let run_with ~delta ~n =
    let db = Database.create () in
    ignore
      (Database.exec_script db
         "CREATE TABLE data (k INT, v TEXT); INSERT INTO data VALUES (1, \
          'a'), (2, 'b')");
    (* same isolation as the SPJ delta case: everything that shortcuts
       re-evaluation on its own is off *)
    let config =
      {
        Engine.strategy = Engine.Serial;
        time_independent = false;
        log_compaction = false;
        preemptive = false;
        improved_partial = false;
        unification = false;
        domains = 1;
        delta;
        relevance = false;
        shared_scans = false;
        vectorized = Engine.default_vector;
      }
    in
    let engine = Engine.create ~config db in
    register_then_preload engine ~n_rows:n
      ~policies:
        [
          ( "no_flood",
            "SELECT DISTINCT 'flood' FROM users u GROUP BY u.uid HAVING \
             COUNT(*) > 1000000" );
        ];
    (* warm: compiles the plans and, with delta on, builds the carried
       group state and establishes the first base *)
    warm_submit engine;
    let total = ref 0. in
    let m =
      Common.measure ~iters (fun () ->
          let st =
            Engine.stats_of
              (Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1")
          in
          total := !total +. st.Stats.policy_eval)
    in
    (if delta then
       let d = Engine.delta_stats engine in
       if d.Engine.full_evals > 1 then begin
         Printf.printf
           "FAIL: aggregate policy fell off the delta path (%d full evals)\n"
           d.Engine.full_evals;
         exit 1
       end);
    (!total /. float_of_int iters *. 1e6, m.Common.minor_words)
  in
  let speedup_at_largest = ref 0. in
  List.iter
    (fun n ->
      let full, full_mw = run_with ~delta:false ~n in
      let delta, delta_mw = run_with ~delta:true ~n in
      let sp = full /. delta in
      speedup_at_largest := sp;
      Printf.printf
        "%6d log rows: full %.1f us (%s), delta %.1f us (%s) per submission \
         (%.1fx)\n"
        n full (Common.words full_mw) delta (Common.words delta_mw) sp)
    sizes;
  if !speedup_at_largest < 10.0 then begin
    Printf.printf
      "FAIL: aggregate delta speedup %.2fx at the largest log is below the \
       10x floor\n"
      !speedup_at_largest;
    exit 1
  end

(* Vectorized executor: full policy evaluation (delta off, so every
   submission rescans the whole log) of scan/join/aggregate policies
   over a preloaded usage log, batch operators vs row-at-a-time — the
   PR 8 acceptance measurement. The row path materializes one arow per
   users row per policy per submission; the batch path scans the
   columnar mirror zero-copy, filters through selection vectors and
   joins through Value-keyed tables, so the gap widens with the log. The
   speedup at the largest size gates regressions (2x floor in --smoke at
   8k rows, 5x otherwise at 80k). *)
let vectorized_case () =
  Common.header "Vectorized executor: batch vs row-at-a-time full evaluation";
  let open Relational in
  let smoke = !Common.smoke in
  let sizes = if smoke then [ 2_000; 8_000 ] else [ 5_000; 20_000; 80_000 ] in
  let iters = if smoke then 20 else 50 in
  let run_with ~vectorized ~n =
    let db = Database.create () in
    ignore
      (Database.exec_script db
         "CREATE TABLE data (k INT, v TEXT); INSERT INTO data VALUES (1, \
          'a'), (2, 'b'); CREATE TABLE banned (uid INT); INSERT INTO banned \
          VALUES (999)");
    (* delta off forces the full rescan being vectorized; everything else
       that shortcuts evaluation is off too, as in the delta case *)
    let config =
      {
        Engine.strategy = Engine.Serial;
        time_independent = false;
        log_compaction = false;
        preemptive = false;
        improved_partial = false;
        unification = false;
        domains = 1;
        delta = false;
        relevance = false;
        shared_scans = false;
        vectorized;
      }
    in
    let engine = Engine.create ~config db in
    register_then_preload engine ~n_rows:n
      ~policies:
        [
          ( "no_banned",
            "SELECT DISTINCT 'banned uid' FROM users u, banned b WHERE u.uid \
             = b.uid" );
          ( "no_flood",
            "SELECT 'flood' FROM users u WHERE u.ts > 0 GROUP BY u.uid \
             HAVING COUNT(*) > 1000000" );
        ];
    warm_submit engine;
    let total = ref 0. in
    let m =
      Common.measure ~iters (fun () ->
          let st =
            Engine.stats_of
              (Engine.submit engine ~uid:1 "SELECT v FROM data WHERE k = 1")
          in
          total := !total +. st.Stats.policy_eval)
    in
    (!total /. float_of_int iters *. 1e6, m.Common.minor_words)
  in
  let speedup_at_largest = ref 0. in
  List.iter
    (fun n ->
      let row, row_mw = run_with ~vectorized:false ~n in
      let vec, vec_mw = run_with ~vectorized:true ~n in
      let sp = row /. vec in
      speedup_at_largest := sp;
      Printf.printf
        "%6d log rows: row %.1f us (%s), vectorized %.1f us (%s) per \
         submission (%.1fx)\n"
        n row (Common.words row_mw) vec (Common.words vec_mw) sp)
    sizes;
  let floor = if smoke then 2.0 else 5.0 in
  if !speedup_at_largest < floor then begin
    Printf.printf
      "FAIL: vectorized speedup %.2fx at the largest log is below the %.1fx \
       floor\n"
      !speedup_at_largest floor;
    exit 1
  end

(* Typed columns: the same batch pipeline over typed mirrors vs
   force-Mixed mirrors (the boxed Value-array representation the typed
   layouts replaced: boxed comparisons, Value-hashed joins and groups) —
   the ISSUE 10 acceptance measurement. Typed passes compare unboxed
   ints and dictionary codes and key joins / groups on raw ints, so both
   time and minor-heap allocation drop; the 1.5x time floor gates every
   case and the 5x minor-words floor gates the filter and join cases
   (where per-row boxing dominates the boxed side). Queries are
   violation-free shapes (empty or near-empty results), the engine's
   common case, so output materialization doesn't mask the kernels. *)
let typed_columns_case () =
  Common.header "Typed columns: unboxed kernels vs boxed (Mixed) mirrors";
  let open Relational in
  let smoke = !Common.smoke in
  let n_rows = if smoke then 20_000 else 100_000 in
  let iters = if smoke then 15 else 40 in
  let ops = [| "read"; "write"; "delete"; "share" |] in
  let build () =
    let cat = Catalog.create () in
    let usage =
      Catalog.create_table cat ~name:"usage"
        ~schema:
          (Schema.make [ ("ts", Ty.Int); ("uid", Ty.Int); ("op", Ty.Text) ])
    in
    ignore (Table.enable_columnar usage);
    let banned =
      Catalog.create_table cat ~name:"banned"
        ~schema:(Schema.make [ ("uid", Ty.Int) ])
    in
    ignore (Table.enable_columnar banned);
    for i = 0 to n_rows - 1 do
      (* 'export' is rare (~1/1000) so the string-filter case measures
         the predicate pass, not output materialization *)
      let op = if i mod 997 = 0 then "export" else ops.(i mod 4) in
      ignore
        (Table.insert usage
           [| Value.Int i; Value.Int (i mod 997); Value.Str op |])
    done;
    (* no banned uid ever appears in usage: the violation-free case *)
    for j = 1 to 97 do
      ignore (Table.insert banned [| Value.Int (1000 + j) |])
    done;
    cat
  in
  let cases =
    [
      ("filter: uid = k", "SELECT ts FROM usage WHERE uid = 123", true);
      ("filter: op = 'export'", "SELECT ts FROM usage WHERE op = 'export'", false);
      ( "join: usage x banned on uid",
        "SELECT u.ts FROM usage u, banned b WHERE u.uid = b.uid",
        true );
      ( "group: SUM(ts) by uid",
        "SELECT 'big' FROM usage GROUP BY uid HAVING SUM(ts) > 1000000000000",
        false );
    ]
  in
  let run_cases () =
    let cat = build () in
    List.map
      (fun (name, sql, gate) ->
        let c = Executor.prepare ~vectorized:true cat (Parser.query sql) in
        ignore (Executor.run_compiled c);
        ( name,
          gate,
          Common.measure ~iters (fun () -> ignore (Executor.run_compiled c)) ))
      cases
  in
  Column.force_mixed := true;
  let boxed = run_cases () in
  Column.force_mixed := false;
  let typed = run_cases () in
  let failed = ref false in
  List.iter2
    (fun (name, gate_alloc, bm) (_, _, tm) ->
      let sp = bm.Common.us /. tm.Common.us in
      let ar = bm.Common.minor_words /. Float.max tm.Common.minor_words 1.0 in
      Printf.printf
        "%-28s boxed %8.1f us %8s | typed %8.1f us %8s | %.1fx time, %.0fx \
         alloc\n"
        name bm.Common.us
        (Common.words bm.Common.minor_words)
        tm.Common.us
        (Common.words tm.Common.minor_words)
        sp ar;
      if sp < 1.5 then begin
        Printf.printf "FAIL: %s typed speedup %.2fx is below the 1.5x floor\n"
          name sp;
        failed := true
      end;
      if gate_alloc && ar < 5.0 then begin
        Printf.printf
          "FAIL: %s typed allocation improvement %.1fx is below the 5x floor\n"
          name ar;
        failed := true
      end)
    boxed typed;
  if !failed then exit 1

let bechamel_case () =
  Common.header "Micro-benchmarks (Bechamel)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg
      Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"micro" ~fmt:"%s %s" (tests ()))
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let est =
        match Analyze.OLS.estimates result with
        | Some [ e ] -> Printf.sprintf "%.2f us/run" (e /. 1000.)
        | _ -> "n/a"
      in
      rows := (name, est) :: !rows)
    results;
  List.iter
    (fun (name, est) -> Printf.printf "%-50s %s\n" name est)
    (List.sort compare !rows)

let run () =
  index_case ();
  parallel_case ();
  delta_case ();
  delta_agg_case ();
  vectorized_case ();
  typed_columns_case ();
  (* Smoke mode stops at the regression gates: the Bechamel sweep and
     the plan-cache comparison are measurements, not assertions. *)
  if not !Common.smoke then begin
    plan_cache_case ();
    bechamel_case ()
  end
