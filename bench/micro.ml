(** Bechamel micro-benchmarks for the engine's hot operations: one
    [Test.make] per reproduced table/figure's critical path —

    - Fig. 1/2's inner loop: full policy check of a W1 submission;
    - Fig. 3's mark phase: witness construction for a window policy;
    - Fig. 4's partial policies: πS construction;
    - Fig. 5's unified evaluation: one unified-policy evaluation;
    - Table 4's rewrite: time-independence classification + rewriting;
    - the SQL frontend (parse of a Table 2 policy). *)

open Bechamel
open Toolkit
open Datalawyer

let make_setup () =
  let s =
    Workload.Runner.make ~mimic:Mimic.Generate.small_config
      ~params:Common.bench_params
      ~policy_names:[ "P1"; "P2"; "P3"; "P4"; "P5"; "P6" ] ()
  in
  (* warm the engine so steady-state costs are measured *)
  let q = Workload.Runner.query s "W1" in
  ignore (Workload.Runner.run_stream s ~uid:1 ~n:20 q);
  s

let tests () =
  let s = make_setup () in
  let engine = s.Workload.Runner.engine in
  let db = s.Workload.Runner.db in
  let is_log rel = Relational.Catalog.is_log (Relational.Database.catalog db) rel in
  let w1 = Workload.Runner.query s "W1" in
  let p5 =
    List.find (fun p -> p.Policy.name = "P5") (Engine.policies engine)
  in
  let p2_sql = (Workload.Policies.p2 Common.bench_params).Workload.Policies.sql in
  [
    Test.make ~name:"submit W1 (full policy check)"
      (Staged.stage (fun () ->
           ignore (Engine.submit engine ~uid:1 w1.Workload.Queries.sql)));
    Test.make ~name:"witness construction (P5)"
      (Staged.stage (fun () -> ignore (Witness.for_policy ~is_log ~now:1000 p5)));
    Test.make ~name:"partial policy construction (P5, S={users})"
      (Staged.stage (fun () ->
           ignore (Partial.of_query ~is_log ~available:[ "users" ] p5.Policy.query)));
    Test.make ~name:"policy parse + classify (P2)"
      (Staged.stage (fun () ->
           ignore
             (Policy.create
                (Relational.Database.catalog db)
                ~is_log ~name:"bench_p2" ~active_from:0 p2_sql)));
    Test.make ~name:"policy evaluation (P5, compacted log)"
      (Staged.stage (fun () ->
           ignore (Relational.Executor.is_empty (Relational.Database.catalog db) p5.Policy.query)));
  ]

(* Prepared-plan cache: per-submission policy-evaluation latency with the
   cache cleared before every submission (cold — every policy, partial
   policy and witness query is re-bound, re-optimized and re-compiled)
   vs left warm (plans compiled once, executed per submission). *)
let plan_cache_case () =
  Common.header "Plan cache: policy evaluation, cold vs warm";
  (* default thresholds: the compacted log stays small, so compile cost
     is visible next to evaluation (bench_params' larger windows would
     drown it in per-row work) *)
  let s =
    Workload.Runner.make
      ~policy_names:[ "P1"; "P2"; "P3"; "P4"; "P5"; "P6" ]
      ()
  in
  let engine = s.Workload.Runner.engine in
  let q = Workload.Runner.query s "W1" in
  (* warm up until the compacted log reaches steady state, so log growth
     doesn't drift the measurement *)
  ignore (Workload.Runner.run_stream s ~uid:1 ~n:100 q);
  let n = 300 in
  List.iter
    (fun uid ->
      (* interleave cold and warm submissions pairwise: the second
         submission of each pair reuses exactly the plans the first just
         compiled, cancelling any residual log drift *)
      let cold = ref 0. and warm = ref 0. in
      for _ = 1 to n do
        Engine.clear_plan_cache engine;
        let st =
          Engine.stats_of (Engine.submit engine ~uid q.Workload.Queries.sql)
        in
        cold := !cold +. st.Stats.policy_eval;
        let st =
          Engine.stats_of (Engine.submit engine ~uid q.Workload.Queries.sql)
        in
        warm := !warm +. st.Stats.policy_eval
      done;
      Printf.printf
        "policy evaluation per W1 submission (uid %d): cold %.1f us, warm \
         %.1f us (%.2fx)\n"
        uid
        (!cold /. float_of_int n *. 1e6)
        (!warm /. float_of_int n *. 1e6)
        (!cold /. !warm))
    [ 0; 1 ];
  let hits, misses = Engine.plan_cache_stats engine in
  Printf.printf "cache totals: %d hits / %d misses\n" hits misses

(* Access paths: indexed uid-equality policy scan (and a ts window) vs
   the heap baseline over a large usage log — the ISSUE 3 acceptance
   measurement. CI runs this with --smoke (smaller log, fewer iters) and
   the 3x floor still asserts, so access-path regressions fail CI. *)
let index_case () =
  Common.header "Access paths: indexed scan vs heap scan";
  let open Relational in
  let smoke = !Common.smoke in
  let n_rows = if smoke then 20_000 else 100_000 in
  let iters = if smoke then 10 else 50 in
  let cat = Catalog.create () in
  let table =
    Catalog.create_table cat ~name:"usage"
      ~schema:(Schema.make [ ("ts", Ty.Int); ("uid", Ty.Int) ])
  in
  for i = 0 to n_rows - 1 do
    ignore (Table.insert table [| Value.Int i; Value.Int (i mod 997) |])
  done;
  let eq_q = Parser.query "SELECT ts, uid FROM usage WHERE uid = 123" in
  let range_q =
    Parser.query "SELECT ts, uid FROM usage WHERE ts >= 1000 AND ts < 1200"
  in
  let time_exec q =
    let c = Executor.prepare cat q in
    ignore (Executor.run_compiled c);
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Executor.run_compiled c)
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e6
  in
  let heap_eq = time_exec eq_q in
  let heap_range = time_exec range_q in
  ignore
    (Dml.exec cat (Parser.stmt "CREATE INDEX ix_usage_uid ON usage USING hash (uid)"));
  ignore
    (Dml.exec cat (Parser.stmt "CREATE INDEX ix_usage_ts ON usage USING sorted (ts)"));
  let ix_eq = time_exec eq_q in
  let ix_range = time_exec range_q in
  Printf.printf
    "uid-equality over %d rows: heap %.1f us, indexed %.1f us (%.1fx)\n" n_rows
    heap_eq ix_eq (heap_eq /. ix_eq);
  Printf.printf
    "ts window over %d rows:    heap %.1f us, indexed %.1f us (%.1fx)\n" n_rows
    heap_range ix_range (heap_range /. ix_range);
  if heap_eq /. ix_eq < 3.0 then begin
    Printf.printf "FAIL: indexed uid-equality speedup %.2fx is below the 3x floor\n"
      (heap_eq /. ix_eq);
    exit 1
  end

let bechamel_case () =
  Common.header "Micro-benchmarks (Bechamel)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg
      Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"micro" ~fmt:"%s %s" (tests ()))
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let est =
        match Analyze.OLS.estimates result with
        | Some [ e ] -> Printf.sprintf "%.2f us/run" (e /. 1000.)
        | _ -> "n/a"
      in
      rows := (name, est) :: !rows)
    results;
  List.iter
    (fun (name, est) -> Printf.printf "%-50s %s\n" name est)
    (List.sort compare !rows)

let run () =
  index_case ();
  (* Smoke mode stops at the regression gate: the Bechamel sweep and the
     plan-cache comparison are measurements, not assertions. *)
  if not !Common.smoke then begin
    plan_cache_case ();
    bechamel_case ()
  end
