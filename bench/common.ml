(** Shared infrastructure for the experiment drivers.

    Every experiment follows the paper's §5 setup: the synthetic
    MIMIC-shaped instance, policies P1–P6 of Table 2 (tick windows), the
    queries W1–W4 of Table 3, and two users — uid 0 (not in group X, the
    interleaved fast path) and uid 1 (the policies' subject).

    Thresholds are tuned so the streams are violation-free: the paper
    measures the common case in which all policies are satisfied. *)

open Datalawyer

(* Scale knob: [quick] keeps every experiment under a few seconds,
   [full] approaches the paper's batch counts. *)
type scale = { batches : int; batch_size : int; noopt_w2_n : int; noopt_w4_n : int }

let quick_scale = { batches = 20; batch_size = 120; noopt_w2_n = 80; noopt_w4_n = 8 }
let full_scale = { batches = 50; batch_size = 120; noopt_w2_n = 400; noopt_w4_n = 10 }

(* CI smoke mode (--smoke): tiny iteration counts so regressions fail
   fast; regression floors still assert. *)
let smoke = ref false

let mimic_config = Mimic.Generate.default_config

let n_patients = mimic_config.Mimic.Generate.n_patients

(* Violation-free parameterization of Table 2 (the common case of §4.2.1). *)
let bench_params =
  {
    Workload.Policies.p1_window = 50;
    p1_max_users = 10;
    p3_max_output = 10_000;
    p4_min_inputs = 1;
    p5_window = 500;
    p5_max_fraction = 0.9;
    p6_window = 100;
    p6_max_uses = 500;
  }

let setup ?(config = Engine.default_config) ?(policy_names = [ "P1" ]) () =
  Workload.Runner.make ~mimic:mimic_config ~params:bench_params ~config
    ~policy_names ()

let ms x = x *. 1000.

(* Mean total (policy machinery + query) per query, in ms. *)
let mean_total stats = ms (Stats.total (Stats.mean stats))

let mean_overhead stats = ms (Stats.overhead (Stats.mean stats))

(* Formatting helpers ----------------------------------------------------- *)

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let row_format widths cells =
  String.concat "  "
    (List.map2
       (fun w (c : string) ->
         if String.length c >= w then c else c ^ String.make (w - String.length c) ' ')
       widths cells)

let print_table widths header_cells rows =
  print_endline (row_format widths header_cells);
  print_endline (row_format widths (List.map (fun w -> String.make w '-') widths));
  List.iter (fun cells -> print_endline (row_format widths cells)) rows

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x

(* Measurement with allocation ----------------------------------------- *)

(* Per-iteration wall time and GC allocation. [minor_words] is the young
   generation only: OCaml allocates arrays above the young size limit
   straight on the major heap, so this isolates exactly the per-row
   boxing the typed kernels are meant to eliminate (big result buffers
   don't drown the signal). [promoted_words] counts what survived into
   the major heap. *)
type meas = { us : float; minor_words : float; promoted_words : float }

let measure ~iters f =
  (* Settle the GC first: dead garbage from a previous case otherwise
     smears collection work (and its stat accounting) into this window. *)
  Gc.full_major ();
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    f ()
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  let n = float_of_int iters in
  {
    us = dt /. n *. 1e6;
    minor_words = (g1.Gc.minor_words -. g0.Gc.minor_words) /. n;
    promoted_words = (g1.Gc.promoted_words -. g0.Gc.promoted_words) /. n;
  }

(* "123", "4.5k", "6.7M" — words per iteration, compact. *)
let words w =
  if w >= 1e6 then Printf.sprintf "%.1fMw" (w /. 1e6)
  else if w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w

(* Run one warm stream and return the stats of the last [k] queries
   (the "stabilized" regime the paper reports for DataLawyer). *)
let stable_stats s ~uid ~n ~last q =
  let stats, rejected = Workload.Runner.run_stream s ~uid ~n q in
  if rejected > 0 then
    Printf.printf "  !! %d unexpected rejections in stream\n" rejected;
  let rec drop k = function xs when k <= 0 -> xs | [] -> [] | _ :: xs -> drop (k - 1) xs in
  drop (max 0 (n - last)) stats
