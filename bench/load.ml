(** Open-loop load generator for the policy server.

    Spins an in-process server on an ephemeral port, drives it over real
    TCP with N concurrent client connections — each connection binds a
    uid sampled from a simulated tenant population (1k–1M) and fires its
    next SUBMIT as soon as the previous verdict lands — and reports
    admission throughput and p50/p99 SUBMIT latency. Two admission
    configurations run against fresh engines: serial ([--serve-batch 1]:
    one policy evaluation, one witness pass and one fsync per
    submission) and batched (admission batches of up to 32 decided by
    one evaluation and committed with one fsync). In [--smoke] mode the
    batched/serial throughput ratio at 32 connections gates CI: batched
    admission must be at least 2x serial.

    The policy set is the batch fast path's home turf: delta-eligible
    SPJ policies (no clock atoms, TI rewriting off) over a violation-free
    stream — the common case the server is built for. *)

open Datalawyer
module Protocol = Server.Protocol

(* Workload ---------------------------------------------------------------- *)

(* Monotone SPJ policies without clock atoms: batch-eligible, and
   violation-free because no generated uid is ever -1. *)
let policies =
  [
    ( "banned",
      "SELECT DISTINCT 'banned uid' FROM users u, banned b WHERE u.uid = b.uid"
    );
    ( "prov",
      "SELECT DISTINCT 'provenance touch' FROM provenance p, banned b WHERE \
       p.irid = 'data' AND p.itid = b.uid" );
  ]

let queries =
  [|
    "SELECT v FROM data WHERE k = 1";
    "SELECT k, v FROM data";
    "SELECT d.v FROM data d, data e WHERE d.k = e.k AND e.v = 'b'";
  |]

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dl_load_%d_%d" (Unix.getpid ()) !counter)
    in
    (if Sys.file_exists dir then
       Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f)));
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let make_engine () =
  let db = Relational.Database.create () in
  ignore
    (Relational.Database.exec_script db
       "CREATE TABLE data (k INT, v TEXT); INSERT INTO data VALUES (1, 'a'), \
        (2, 'b'), (3, 'c'); CREATE TABLE banned (uid INT); INSERT INTO banned \
        VALUES (-1)");
  (* TI rewriting would add clock atoms and push the policies off the
     batch fast path; the store buffers ([Never]) so durability comes
     from the admission pipeline's one forced flush per batch. *)
  let config = { Engine.default_config with Engine.time_independent = false } in
  let engine =
    Engine.create ~config ~persist_dir:(temp_dir ())
      ~persist_fsync:Persistence.Store.Never db
  in
  List.iter (fun (name, sql) -> ignore (Engine.add_policy engine ~name sql)) policies;
  engine

(* Minimal blocking client ------------------------------------------------- *)

type client = { fd : Unix.file_descr; decoder : Protocol.Decoder.t; buf : Bytes.t }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  { fd; decoder = Protocol.Decoder.create (); buf = Bytes.create 65536 }

let write_all c s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then begin
      let n = Unix.write c.fd b off (len - off) in
      if n = 0 then failwith "connection lost";
      go (off + n)
    end
  in
  go 0

let rec recv c =
  match Protocol.Decoder.next c.decoder with
  | `Frame payload -> (
    match Protocol.parse_response payload with
    | Ok r -> r
    | Error (_, m) -> failwith ("bad reply: " ^ m))
  | `Error code -> failwith ("framing error: " ^ code)
  | `Awaiting ->
    let n = Unix.read c.fd c.buf 0 (Bytes.length c.buf) in
    if n = 0 then failwith "server closed the connection";
    Protocol.Decoder.feed c.decoder (Bytes.sub_string c.buf 0 n);
    recv c

let rpc c req =
  write_all c (Protocol.encode_frame (Protocol.render_request req));
  recv c

let open_session port uid =
  let c = connect port in
  (match rpc c (Protocol.Hello Protocol.version) with
  | Protocol.Hello_ok _ -> ()
  | r -> failwith ("HELLO: " ^ Protocol.render_response r));
  (match rpc c (Protocol.Auth uid) with
  | Protocol.Auth_ok _ -> ()
  | r -> failwith ("AUTH: " ^ Protocol.render_response r));
  c

(* One connection's life: [reqs] submissions, re-binding a freshly
   sampled uid every [per_session] of them (tenants come and go), each
   SUBMIT timed individually. *)
let worker ~port ~pop ~reqs ~per_session ~seed (lats : float array) =
  let state = ref (seed land 0x3FFFFFFF) in
  let rand () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  let c = ref None in
  for i = 0 to reqs - 1 do
    if i mod per_session = 0 then begin
      Option.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !c;
      c := Some (open_session port (rand () mod pop))
    end;
    let conn = Option.get !c in
    let sql = queries.(rand () mod Array.length queries) in
    let t0 = Unix.gettimeofday () in
    (match rpc conn (Protocol.Submit sql) with
    | Protocol.Accepted _ -> ()
    | r -> failwith ("unexpected verdict: " ^ Protocol.render_response r));
    lats.(i) <- Unix.gettimeofday () -. t0
  done;
  Option.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !c

type measurement = {
  throughput : float;  (** accepted submissions / s *)
  p50 : float;
  p99 : float;  (** seconds *)
  batches : int;
  fsyncs : int;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(int_of_float (p *. float_of_int (n - 1)))

let measure ~max_batch ~conns ~reqs ~pop ~per_session =
  let engine = make_engine () in
  let config =
    { Server.Tcp.default_config with Server.Tcp.port = 0; max_batch }
  in
  let srv = Server.Tcp.start ~config engine in
  let port = Server.Tcp.port srv in
  let lats = Array.init conns (fun _ -> Array.make reqs 0.0) in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init conns (fun i ->
        Thread.create
          (fun () ->
            worker ~port ~pop ~reqs ~per_session ~seed:((i * 7919) + 13)
              lats.(i))
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let stats = Server.Tcp.stats srv in
  let stat k = try int_of_string (List.assoc k stats) with _ -> 0 in
  let batches = stat "batches" and fsyncs = stat "group-commit-fsyncs" in
  Server.Tcp.stop ~close_engine:true srv;
  let all = Array.concat (Array.to_list lats) in
  Array.sort compare all;
  {
    throughput = float_of_int (conns * reqs) /. wall;
    p50 = percentile all 0.50;
    p99 = percentile all 0.99;
    batches;
    fsyncs;
  }

let run (_scale : Common.scale) =
  Common.header "load: batched concurrent admission over TCP";
  let smoke = !Common.smoke in
  let conns = 32 in
  let reqs = if smoke then 40 else 80 in
  let per_session = 20 in
  let pops = if smoke then [ 1_000 ] else [ 1_000; 100_000; 1_000_000 ] in
  Printf.printf
    "%d connections x %d submissions, re-binding a fresh uid every %d\n" conns
    reqs per_session;
  let rows = ref [] in
  let gate = ref None in
  List.iter
    (fun pop ->
      let serial = measure ~max_batch:1 ~conns ~reqs ~pop ~per_session in
      let batched = measure ~max_batch:32 ~conns ~reqs ~pop ~per_session in
      let ratio = batched.throughput /. serial.throughput in
      if !gate = None then gate := Some ratio;
      List.iter
        (fun (label, m) ->
          rows :=
            [
              Printf.sprintf "%d" pop;
              label;
              Printf.sprintf "%.0f" m.throughput;
              Printf.sprintf "%.2f" (Common.ms m.p50);
              Printf.sprintf "%.2f" (Common.ms m.p99);
              Printf.sprintf "%d" m.batches;
              Printf.sprintf "%d" m.fsyncs;
            ]
            :: !rows)
        [ ("serial", serial); ("batch32", batched) ];
      Printf.printf "  pop %d: batched/serial throughput ratio %.2fx\n" pop ratio)
    pops;
  Common.print_table
    [ 9; 8; 10; 9; 9; 8; 7 ]
    [ "uids"; "mode"; "subs/s"; "p50 ms"; "p99 ms"; "batches"; "fsyncs" ]
    (List.rev !rows);
  match !gate with
  | Some ratio when smoke ->
    Printf.printf "\nsmoke gate: batched admission %.2fx serial (floor 2.0x)\n"
      ratio;
    if ratio < 2.0 then begin
      Printf.printf "REGRESSION: batched admission below the 2x floor\n";
      exit 1
    end
  | _ -> ()
