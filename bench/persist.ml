(** Persistence micro-benchmark (lib/persist): submission throughput
    under each WAL fsync policy, recovery time as a function of WAL
    length, and the on-disk footprint across compaction checkpoints
    (§4.1.2 compaction keeps the durable log bounded too). *)

open Relational
open Datalawyer
module P = Persistence

(* Fresh scratch directory per phase; existing contents are cleared so a
   previous run's files are never recovered by accident. *)
let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dl_bench_persist_%d_%d" (Unix.getpid ()) !counter)
    in
    (if Sys.file_exists dir then
       Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f)));
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f));
    Unix.rmdir dir
  end

let base_db () =
  let db = Database.create () in
  ignore
    (Database.exec_script db
       {|
       CREATE TABLE person (id INT, name TEXT);
       INSERT INTO person VALUES (1, 'ada'), (2, 'bob'), (3, 'cyd')
       |});
  db

(* Sliding window over the usage log: time-dependent, so [users] is in
   [store_rels] and every accepted submission hits the WAL. *)
let window_policy ~w ~max =
  Printf.sprintf
    "SELECT DISTINCT 'window budget exceeded' AS errorMessage FROM users u, \
     clock c WHERE u.uid = 1 AND u.ts > c.ts - %d GROUP BY u.uid HAVING \
     COUNT(DISTINCT u.ts) > %d"
    w max

let make_engine ?persist_dir ?persist_fsync ~w ~max () =
  let engine = Engine.create ?persist_dir ?persist_fsync (base_db ()) in
  ignore (Engine.add_policy engine ~name:"window" (window_policy ~w ~max));
  engine

let query = "SELECT COUNT(*) FROM person"

let submit_stream engine ~n =
  let rejected = ref 0 in
  for i = 1 to n do
    match Engine.submit engine ~uid:(i mod 3) query with
    | Engine.Accepted _ -> ()
    | Engine.Rejected _ -> incr rejected
  done;
  if !rejected > 0 then
    Printf.printf "  !! %d unexpected rejections in stream\n" !rejected

(* Phase 1: submissions/sec per fsync policy (plus a no-persistence
   baseline). Violation-free window so every submission commits. *)
let throughput (scale : Common.scale) =
  let n = scale.Common.batch_size * 4 in
  let run fsync =
    let dir = Option.map (fun _ -> fresh_dir ()) fsync in
    let engine = make_engine ?persist_dir:dir ?persist_fsync:fsync ~w:50 ~max:25 () in
    let t0 = Unix.gettimeofday () in
    submit_stream engine ~n;
    Engine.close engine;
    let dt = Unix.gettimeofday () -. t0 in
    Option.iter rm_rf dir;
    float_of_int n /. dt
  in
  let policies =
    [
      ("none (baseline)", None);
      ("fsync always", Some P.Store.Always);
      ("fsync interval:32", Some (P.Store.Interval 32));
      ("fsync never", Some P.Store.Never);
    ]
  in
  Common.print_table [ 20; 14 ]
    [ "persistence"; "subs/sec" ]
    (List.map
       (fun (label, persist) -> [ label; Common.f1 (run persist) ])
       policies)

(* Phase 2: recovery time vs WAL length. A wide violation-free window
   means no compaction, so the WAL just grows with every commit. *)
let recovery (scale : Common.scale) =
  let lengths =
    [ scale.Common.batch_size; scale.Common.batch_size * 4; scale.Common.batch_size * 16 ]
  in
  let run n =
    let dir = fresh_dir () in
    let a = make_engine ~persist_dir:dir ~persist_fsync:P.Store.Never ~w:(4 * n) ~max:n () in
    submit_stream a ~n;
    (* Simulate a crash: flush the OS buffers but skip close's checkpoint-free
       shutdown path and just drop the engine after flushing. *)
    (match Engine.persist_store a with Some s -> P.Store.flush s | None -> ());
    let wal_records =
      match Engine.persist_store a with Some s -> P.Store.wal_records s | None -> 0
    in
    let t0 = Unix.gettimeofday () in
    let b = Engine.create ~persist_dir:dir (base_db ()) in
    let dt = Unix.gettimeofday () -. t0 in
    Engine.close b;
    rm_rf dir;
    (wal_records, dt)
  in
  Common.print_table [ 12; 12; 14 ]
    [ "commits"; "WAL records"; "recovery (ms)" ]
    (List.map
       (fun n ->
         let records, dt = run n in
         [ string_of_int n; string_of_int records; Common.f2 (Common.ms dt) ])
       lengths)

(* Phase 3: on-disk footprint with compaction checkpoints. A tight
   window expires witnesses quickly; each compacting commit becomes a
   checkpoint, so disk size must stay bounded instead of growing
   linearly like the in-memory-log-free WAL of phase 2. *)
let footprint (scale : Common.scale) =
  let step = scale.Common.batch_size in
  let dir = fresh_dir () in
  let engine = make_engine ~persist_dir:dir ~persist_fsync:P.Store.Never ~w:5 ~max:5 () in
  let store = Option.get (Engine.persist_store engine) in
  let rows = ref [] in
  for i = 1 to 4 do
    submit_stream engine ~n:step;
    rows :=
      [
        string_of_int (i * step);
        string_of_int (P.Store.generation store);
        string_of_int (P.Store.disk_bytes store);
      ]
      :: !rows
  done;
  Engine.close engine;
  rm_rf dir;
  Common.print_table [ 12; 12; 12 ]
    [ "commits"; "generation"; "disk bytes" ]
    (List.rev !rows)

let run (scale : Common.scale) =
  Common.header "Persistence (WAL / snapshots / recovery)";
  print_endline "\nThroughput by fsync policy:";
  throughput scale;
  print_endline "\nRecovery time vs WAL length:";
  recovery scale;
  print_endline "\nDisk footprint under compaction checkpoints (window w=5):";
  footprint scale
