(** Benchmark harness regenerating every table and figure of the paper's
    evaluation (§5). Run with no argument for the full suite at quick
    scale, or name experiments: fig1 fig2 fig3 tab4 fig4 fig5 ablate
    persist micro load scale. Pass --full for paper-scale batch counts. *)

let experiments =
  [
    ("fig1", Fig1.run);
    ("fig2", Fig2.run);
    ("fig3", Fig3.run);
    ("tab4", Tab4.run);
    ("fig4", Fig4.run);
    ("fig5", Fig5.run);
    ("ablate", Ablate.run);
    ("persist", Persist.run);
    ("micro", fun _ -> Micro.run ());
    ("typedcols", fun _ -> Micro.typed_columns_case ());
    ("load", Load.run);
    ("scale", Scale.run);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  Common.smoke := List.mem "--smoke" args;
  let names = List.filter (fun a -> a <> "--full" && a <> "--smoke") args in
  let scale = if full then Common.full_scale else Common.quick_scale in
  let names = if names = [] then List.map fst experiments else names in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run scale
      | None ->
        Printf.eprintf "unknown experiment %S; known: %s\n" name
          (String.concat " " (List.map fst experiments));
        exit 1)
    names;
  Printf.printf "\n(total bench time: %.1fs)\n" (Unix.gettimeofday () -. t0)
