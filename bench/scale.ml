(** Admission latency vs. policy count (ISSUE 7's scaling experiment).

    The same §6 template — a per-user access prohibition — instantiated
    for 6, 100, 1 000 (and, under [--full], 10 000) users, then a stream
    of admissions by a user none of the policies name. The naive leg
    unrolls every instance and evaluates each serially; the scaled leg
    unifies the instances into one template + constants table, indexes
    their relevance, and shares subplans — so per-admission work tracks
    the distinct shapes touched, not the policy count.

    Gates: under [--smoke], the scaled stack must beat naive unrolled
    evaluation by ≥10× at 1 000 policies; under [--full], admission at
    10 000 policies must stay within 10× of the 6-policy baseline
    (sublinear in policy count). Either failure exits non-zero. *)

open Relational
open Datalawyer

let naive_config =
  {
    Engine.default_config with
    Engine.strategy = Engine.Serial;
    domains = 1;
    delta = false;
    unification = false;
    relevance = false;
    shared_scans = false;
  }

(* Pinned on, not inherited: the experiment must measure the scaled
   stack under DL_UNIFY=0 / DL_DELTA=0 CI legs too. *)
let scaled_config =
  {
    Engine.default_config with
    Engine.domains = 1;
    delta = true;
    unification = true;
    relevance = true;
    shared_scans = true;
  }

let admission_query = "SELECT v FROM data WHERE k = 1"

(* Per-admission mean latency (ms) over a fresh engine with [n]
   per-user prohibitions. Registration and the first (plan-building,
   base-proving) admission are warm-up, outside the timed window. *)
let measure config n ~reps =
  let db = Database.create () in
  ignore
    (Database.exec_script db
       "CREATE TABLE data (k INT, v TEXT); INSERT INTO data VALUES (1, 'a'), \
        (2, 'b'), (3, 'c')");
  let engine = Engine.create ~config db in
  let uids = List.init n (fun i -> i + 1) in
  List.iter
    (fun (name, sql) -> ignore (Engine.add_policy engine ~name sql))
    (Templates.per_user ~name_prefix:"deny" ~uids (fun ~subject ->
         Templates.no_access ~relation:"data" ~subject ()));
  let submit uid =
    match Engine.submit engine ~uid admission_query with
    | Engine.Accepted _ -> ()
    | Engine.Rejected (msgs, _) ->
      Printf.eprintf "scale: unexpected rejection (%d policies): %s\n" n
        (String.concat "; " msgs);
      exit 1
  in
  submit (n + 1);
  let t0 = Unix.gettimeofday () in
  for i = 1 to reps do
    submit (n + 1 + (i mod 7))
  done;
  let per_adm = Common.ms (Unix.gettimeofday () -. t0) /. float_of_int reps in
  let u = Engine.unify_stats engine in
  let r = Engine.relevance_stats engine in
  Engine.close engine;
  (per_adm, u, r)

let reps_for n = if n >= 10_000 then 4 else if n >= 1_000 then 12 else 40

let run (scale : Common.scale) =
  let full = scale = Common.full_scale in
  Common.header "Scale: admission latency vs. policy count (per-user template)";
  let counts = [ 6; 100; 1_000 ] @ (if full then [ 10_000 ] else []) in
  let results =
    List.map
      (fun n ->
        let reps = reps_for n in
        let naive, _, _ = measure naive_config n ~reps in
        let scaled, u, r = measure scaled_config n ~reps in
        (n, naive, scaled, u, r))
      counts
  in
  Common.print_table
    [ 8; 12; 12; 9; 14; 12 ]
    [ "policies"; "naive ms"; "scaled ms"; "speedup"; "active/groups"; "rel skips" ]
    (List.map
       (fun (n, naive, scaled, u, r) ->
         [
           string_of_int n;
           Common.f3 naive;
           Common.f3 scaled;
           Common.f1 (naive /. scaled) ^ "x";
           Printf.sprintf "%d/%d" u.Engine.unify_active u.Engine.unify_groups;
           Printf.sprintf "%d/%d" r.Engine.rel_skips r.Engine.rel_checks;
         ])
       results);
  let latency_at n =
    let _, naive, scaled, _, _ =
      List.find (fun (n', _, _, _, _) -> n' = n) results
    in
    (naive, scaled)
  in
  if !Common.smoke then begin
    let naive, scaled = latency_at 1_000 in
    let speedup = naive /. scaled in
    Printf.printf "\nsmoke gate: %.1fx over naive at 1k policies (floor 10x)\n"
      speedup;
    if speedup < 10. then begin
      Printf.eprintf
        "scale: FAIL: %.1fx at 1k policies is below the 10x smoke floor\n"
        speedup;
      exit 1
    end
  end;
  if full then begin
    let _, base = latency_at 6 in
    let _, big = latency_at 10_000 in
    let ratio = big /. base in
    Printf.printf
      "\nfull gate: 10k-policy admission at %.1fx the 6-policy baseline \
       (ceiling 10x)\n"
      ratio;
    if ratio > 10. then begin
      Printf.eprintf
        "scale: FAIL: 10k-policy admission is %.1fx the 6-policy baseline \
         (> 10x)\n"
        ratio;
      exit 1
    end
  end
