(* Usage-based pricing (§2 of the paper).

   Build and run:  dune exec examples/pricing.exe

   Factual-style pricing: the data owner charges per tuple actually used,
   with different rates per relation. DataLawyer's usage log is the
   metering infrastructure: a never-firing "retention" policy keeps the
   billing window's provenance alive through log compaction, and the bill
   is computed with an ordinary SQL query over the log. *)

open Datalawyer

let () =
  let db = Mimic.Generate.database ~config:Mimic.Generate.small_config () in
  let engine = Engine.create db in

  (* Keep 100 ticks of provenance/users for billing. *)
  ignore
    (Engine.add_policy engine ~name:"billing_retention"
       (Pricing.retention_policy ~window:100));

  (* Two analysts with different workloads. *)
  let submit ~uid sql =
    match Engine.submit engine ~uid sql with
    | Engine.Accepted _ -> ()
    | Engine.Rejected (ms, _) ->
      List.iter (fun m -> Printf.printf "unexpected rejection: %s\n" m) ms
  in
  for _ = 1 to 5 do
    submit ~uid:1 "SELECT sex, COUNT(*) FROM d_patients GROUP BY sex";
    submit ~uid:2
      "SELECT c.itemid, COUNT(*) FROM chartevents c WHERE c.subject_id < 20 \
       GROUP BY c.itemid"
  done;
  submit ~uid:2 "SELECT COUNT(*) FROM poe_order";

  let rates =
    [
      { Pricing.relation = "d_patients"; per_use = 0.0010 };
      { Pricing.relation = "chartevents"; per_use = 0.0001 };
      { Pricing.relation = "poe_order"; per_use = 0.0005 };
    ]
  in
  let now = Usage_log.current_time db in
  List.iter
    (fun uid ->
      let bill = Pricing.bill db ~uid ~since:0 ~until:now ~rates in
      Format.printf "%a@.@." Pricing.pp_bill bill)
    [ 1; 2 ];

  (* The same log drives per-window invoicing: bill only the last 3 ticks. *)
  Format.printf "last-3-ticks invoice for uid 2:@.%a@." Pricing.pp_bill
    (Pricing.bill db ~uid:2 ~since:(now - 3) ~until:now ~rates)
