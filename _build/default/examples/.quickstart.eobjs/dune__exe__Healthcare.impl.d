examples/healthcare.ml: Datalawyer Engine Executor List Mimic Printf Relational
