examples/pricing.mli:
