examples/data_market.ml: Datalawyer Engine List Printf Relational
