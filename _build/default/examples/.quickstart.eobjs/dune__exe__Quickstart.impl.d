examples/quickstart.ml: Database Datalawyer Engine Format List Printf Relational Stats
