examples/quickstart.mli:
