examples/pricing.ml: Datalawyer Engine Format List Mimic Pricing Printf Usage_log
