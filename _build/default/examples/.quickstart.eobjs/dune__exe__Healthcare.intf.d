examples/healthcare.mli:
