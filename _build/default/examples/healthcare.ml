(* Healthcare scenario: the paper's motivating MIMIC-II deployment.

   Build and run:  dune exec examples/healthcare.exe

   An ICU research database is shared under a data-use agreement:
   - P5b (Example 3.1): no query may return an answer tuple that fewer
     than 10 patients contribute to (re-identification protection);
   - P2b (Example 3.2): at most 3 distinct student-group users may query
     the patients table in any 20-tick window.

   The example runs a realistic mix of cohort analyses and shows which
   are stopped and why, then prints the (compacted) usage log. *)

open Relational
open Datalawyer

let () =
  let db = Mimic.Generate.database ~config:Mimic.Generate.small_config () in
  let engine = Engine.create db in

  ignore
    (Engine.add_policy engine ~name:"P5b"
       "SELECT DISTINCT 'P5b: fewer than 10 patients contribute to an answer \
        tuple' AS errorMessage FROM provenance p WHERE p.irid = 'd_patients' \
        GROUP BY p.ts, p.otid HAVING COUNT(DISTINCT p.itid) < 10");
  ignore
    (Engine.add_policy engine ~name:"P2b"
       "SELECT DISTINCT 'P2b: more than 3 student users queried patients \
        within 20 ticks' AS errorMessage FROM users u, schema s, user_groups \
        g, clock c WHERE u.ts = s.ts AND s.irid = 'd_patients' AND u.uid = \
        g.uid AND g.gid = 'X' AND u.ts > c.ts - 20 HAVING COUNT(DISTINCT \
        u.uid) > 3");

  let submit ~uid sql =
    Printf.printf "[uid %d] %s\n" uid sql;
    (match Engine.submit engine ~uid sql with
    | Engine.Accepted (result, _) ->
      Printf.printf "  accepted: %d rows\n"
        (List.length result.Executor.out_rows)
    | Engine.Rejected (messages, _) ->
      List.iter (fun m -> Printf.printf "  REJECTED: %s\n" m) messages);
    print_newline ()
  in

  print_endline "== cohort statistics: coarse aggregates pass P5b ==";
  submit ~uid:3
    "SELECT p.sex, COUNT(*) FROM d_patients p GROUP BY p.sex";
  submit ~uid:3
    "SELECT p.sex, AVG(c.value) FROM d_patients p, chartevents c WHERE \
     p.subject_id = c.subject_id AND c.itemid = 211 GROUP BY p.sex";

  print_endline "== attempts to single out a patient are stopped ==";
  submit ~uid:3 "SELECT sex, dob FROM d_patients WHERE subject_id = 42";
  submit ~uid:3
    "SELECT p.dob, COUNT(*) FROM d_patients p WHERE p.subject_id < 3 GROUP BY p.dob";

  print_endline "== group license: the 4th distinct student in the window is stopped ==";
  (* uids 2,4,6,8 are in group X in the synthetic instance *)
  List.iter
    (fun uid ->
      submit ~uid "SELECT COUNT(*) FROM d_patients")
    [ 2; 4; 6; 8 ];

  print_endline "== the usage log after the session (compacted) ==";
  List.iter
    (fun rel ->
      Printf.printf "  %-12s %4d rows\n" rel (Engine.log_size engine rel))
    [ "users"; "schema"; "provenance" ]
