(* Quickstart: enforce a terms-of-use policy on a licensed dataset.

   Build and run:  dune exec examples/quickstart.exe

   Scenario: we bought map data from a vendor whose license prohibits
   joining it with any other dataset (Table 1's policy P1 in the paper).
   DataLawyer enforces the restriction at query time. *)

open Relational
open Datalawyer

let () =
  (* 1. An ordinary database: the licensed table plus our own data. *)
  let db = Database.create () in
  ignore
    (Database.exec_script db
       {|
       CREATE TABLE vendor_pois (poi_id INT, name TEXT, lat FLOAT, lon FLOAT);
       CREATE TABLE our_sales (poi_id INT, revenue INT);
       INSERT INTO vendor_pois VALUES
         (1, 'cafe', 47.60, -122.33), (2, 'museum', 47.61, -122.34),
         (3, 'harbor', 47.62, -122.35);
       INSERT INTO our_sales VALUES (1, 120), (2, 45), (3, 300)
       |});

  (* 2. Wrap it in a DataLawyer engine and register the license terms as a
     policy: a SQL query over the usage log that returns an error message
     whenever the terms are violated. *)
  let engine = Engine.create db in
  ignore
    (Engine.add_policy engine ~name:"no_overlay"
       "SELECT DISTINCT 'license violation: vendor_pois may not be combined \
        with other datasets' AS errorMessage \
        FROM schema s1, schema s2 \
        WHERE s1.ts = s2.ts AND s1.irid = 'vendor_pois' AND s2.irid != 'vendor_pois'");

  (* 3. Users submit queries through the engine. Compliant queries run
     normally... *)
  let show sql =
    Printf.printf "> %s\n" sql;
    match Engine.submit engine ~uid:7 sql with
    | Engine.Accepted (result, stats) ->
      print_endline (Database.render result);
      Format.printf "accepted (policy machinery: %.2fms)@.@."
        (Stats.overhead stats *. 1000.)
    | Engine.Rejected (messages, _) ->
      List.iter (fun m -> Printf.printf "REJECTED: %s\n" m) messages;
      print_newline ()
  in
  show "SELECT name, lat, lon FROM vendor_pois WHERE poi_id = 2";
  show "SELECT poi_id, revenue FROM our_sales ORDER BY revenue DESC";

  (* ...while violating ones are stopped before execution, with the
     license clause quoted back at the user. *)
  show
    "SELECT v.name, s.revenue FROM vendor_pois v, our_sales s WHERE v.poi_id \
     = s.poi_id"
