(* Data-market scenario: the Table 1 policy gallery.

   Build and run:  dune exec examples/data_market.exe

   A company aggregates several commercial feeds, each with its own terms
   of use (simplified from the paper's survey):

   - Navteq-style (Table 1 P1): no overlaying the map feed with other data;
   - MS-Translator-style (P3): free tier limited to a total result volume
     per 30-tick window;
   - Twitter-style (P4): at most 5 calls per user per 10-tick window;
   - Yelp-style (P7): ratings may be joined and unioned but never
     aggregated.

   The example shows each term firing, plus the engine's bookkeeping. *)

open Datalawyer

let () =
  let db = Relational.Database.create () in
  ignore
    (Relational.Database.exec_script db
       {|
       CREATE TABLE maps (poi INT, name TEXT);
       CREATE TABLE ratings (poi INT, stars FLOAT, reviews INT);
       CREATE TABLE sales (poi INT, units INT);
       INSERT INTO maps VALUES (1, 'cafe'), (2, 'museum'), (3, 'harbor');
       INSERT INTO ratings VALUES (1, 4.5, 120), (2, 3.8, 60), (3, 4.9, 410);
       INSERT INTO sales VALUES (1, 12), (2, 7), (3, 31)
       |});
  let engine = Engine.create db in

  (* P1: prohibit joins of the licensed map feed. *)
  ignore
    (Engine.add_policy engine ~name:"maps_no_overlay"
       "SELECT DISTINCT 'maps terms: overlaying maps with other data is \
        prohibited' FROM schema s1, schema s2 WHERE s1.ts = s2.ts AND \
        s1.irid = 'maps' AND s2.irid != 'maps'");

  (* P3: free-tier volume cap — at most 4 result tuples derived from the
     ratings feed per user per 30-tick window. *)
  ignore
    (Engine.add_policy engine ~name:"ratings_free_tier"
       "SELECT DISTINCT 'ratings terms: free tier exceeded (more than 4 \
        result tuples in the window)' FROM provenance p, users u, clock c \
        WHERE p.ts = u.ts AND p.irid = 'ratings' AND u.ts > c.ts - 30 GROUP \
        BY u.uid HAVING COUNT(DISTINCT p.ts * 1000 + p.otid) > 4");

  (* P4: rate limiting — at most 5 queries per user per 10-tick window. *)
  ignore
    (Engine.add_policy engine ~name:"rate_limit"
       "SELECT DISTINCT 'api terms: more than 5 requests in the window' \
        FROM users u, clock c WHERE u.ts > c.ts - 10 GROUP BY u.uid HAVING \
        COUNT(DISTINCT u.ts) > 5");

  (* P7: Yelp-style — ratings must stand on their own: joins/unions fine,
     aggregation prohibited. *)
  ignore
    (Engine.add_policy engine ~name:"ratings_no_aggregation"
       "SELECT DISTINCT 'ratings terms: aggregating or blending star \
        ratings is prohibited' FROM schema s WHERE s.irid = 'ratings' AND \
        s.icid = 'stars' AND s.agg = TRUE");

  let submit ~uid sql =
    Printf.printf "[uid %d] %s\n" uid sql;
    (match Engine.submit engine ~uid sql with
    | Engine.Accepted (result, _) ->
      Printf.printf "  accepted: %d rows\n" (List.length result.Relational.Executor.out_rows)
    | Engine.Rejected (messages, _) ->
      List.iter (fun m -> Printf.printf "  REJECTED: %s\n" m) messages);
    print_newline ()
  in

  print_endline "== map feed: standalone use fine, overlays stopped ==";
  submit ~uid:1 "SELECT name FROM maps WHERE poi = 1";
  submit ~uid:1 "SELECT m.name, s.units FROM maps m, sales s WHERE m.poi = s.poi";

  print_endline "== ratings: joins allowed (P7), aggregation stopped ==";
  submit ~uid:1
    "SELECT r.stars, s.units FROM ratings r, sales s WHERE r.poi = s.poi";
  submit ~uid:1 "SELECT AVG(stars) FROM ratings";

  print_endline "== free tier: the 5th ratings tuple in the window trips the cap ==";
  submit ~uid:2 "SELECT stars FROM ratings";
  (* 3 tuples used *)
  submit ~uid:2 "SELECT stars FROM ratings WHERE poi < 3";
  (* would make 5 *)

  print_endline "== rate limit: the 6th call in the window is rejected ==";
  for _ = 1 to 6 do
    submit ~uid:3 "SELECT name FROM maps WHERE poi = 2"
  done
