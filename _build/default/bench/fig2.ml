(** Figure 2: policy + query evaluation time for every policy P1–P6,
    broken into the phases the paper stacks: usage tracking, policy
    evaluation, log compaction, query execution.

    2a: query W4 as uid 0 (fast path); 2b: W4 as uid 1; 2c: W2 as uid 1.
    Each policy is enforced in isolation, as in §5.1. For DataLawyer the
    stabilized regime is reported; for NoOpt the 1st and the Nth query
    (the paper's 10th for W4 and 400th for W2, scaled). *)

open Datalawyer

type cell = { dl : Stats.t; noopt_first : Stats.t; noopt_nth : Stats.t; nth : int }

let measure (scale : Common.scale) ~qname ~uid policy : cell =
  let nth =
    if qname = "W2" then scale.Common.noopt_w2_n else scale.Common.noopt_w4_n
  in
  (* DataLawyer, stabilized: run 2x nth, report the last quarter. *)
  let dl =
    let s = Common.setup ~config:Engine.default_config ~policy_names:[ policy ] () in
    let q = Workload.Runner.query s qname in
    let n = max 12 nth in
    Stats.mean (Common.stable_stats s ~uid ~n ~last:(max 3 (n / 4)) q)
  in
  let s = Common.setup ~config:Engine.noopt_config ~policy_names:[ policy ] () in
  let q = Workload.Runner.query s qname in
  let stats, _ = Workload.Runner.run_stream s ~uid ~n:nth q in
  let noopt_first = List.hd stats in
  let noopt_nth = List.nth stats (nth - 1) in
  { dl; noopt_first; noopt_nth; nth }

(* "effective" is the latency a multi-threaded deployment could show the
   user by returning results before compaction finishes (§5.1's 23%
   remark). *)
let phase_string (st : Stats.t) =
  Printf.sprintf
    "track %6.2f | eval %7.2f | compact %6.2f | query %7.2f | total %8.2f | effective %8.2f"
    (Common.ms st.Stats.log_track)
    (Common.ms st.Stats.policy_eval)
    (Common.ms (Stats.compaction_total st))
    (Common.ms st.Stats.query_exec)
    (Common.ms (Stats.total st))
    (Common.ms (Stats.total st -. Stats.compaction_total st))

let panel scale ~title ~qname ~uid =
  Printf.printf "\n--- %s (query %s, uid %d; times in ms) ---\n" title qname uid;
  List.iter
    (fun policy ->
      let c = measure scale ~qname ~uid policy in
      Printf.printf "%s  DataLawyer (stable) : %s\n" policy (phase_string c.dl);
      Printf.printf "%s  NoOpt (1st query)   : %s\n" policy (phase_string c.noopt_first);
      Printf.printf "%s  NoOpt (query #%-4d) : %s\n" policy c.nth
        (phase_string c.noopt_nth))
    [ "P1"; "P2"; "P3"; "P4"; "P5"; "P6" ]

let run (scale : Common.scale) =
  Common.header "Figure 2: per-policy phase breakdown, DataLawyer vs NoOpt";
  let s = Common.setup ~policy_names:[] () in
  List.iter
    (fun qname ->
      let q = Workload.Runner.query s qname in
      Printf.printf "plain %s (no policies): %.2fms\n" qname
        (Common.ms (Workload.Runner.plain_query_time s ~n:3 q)))
    [ "W2"; "W4" ];
  panel scale ~title:"Figure 2a" ~qname:"W4" ~uid:0;
  panel scale ~title:"Figure 2b" ~qname:"W4" ~uid:1;
  panel scale ~title:"Figure 2c" ~qname:"W2" ~uid:1
