(** Figure 5: policy unification. A family of n policies identical up to
    one constant (a P1-style rate limit per user group) is enforced while
    a constant total number of W1 queries is executed round-robin by the
    n users.

    Strategies compared, as in §5.5: without unification — union (all
    policies as one big UNION query), serial (one call per policy),
    interleaved; with unification — serial and interleaved (serial and
    union coincide for a single policy).

    Expected shape: without unification, policy-checking time is O(n);
    with unification it stays roughly constant across two orders of
    magnitude. The paper's JDBC round-trips are simulated by also
    reporting time inflated with a fixed per-call cost, which is what
    makes union beat serial there. *)

open Datalawyer

let ns = [ 10; 100; 1000 ]

let jdbc_cost_ms = 0.05 (* simulated per-call client round-trip *)

let family_sql k =
  Printf.sprintf
    "SELECT DISTINCT 'G%d rate exceeded' AS errorMessage FROM users u, \
     user_groups g, clock c WHERE u.uid = g.uid AND g.gid = 'G%d' AND u.ts > \
     c.ts - 50 HAVING COUNT(DISTINCT u.uid) > 10"
    k k

(* A dedicated instance: n users, one group per user. *)
let setup ~config ~n =
  let db = Mimic.Generate.database ~config:Common.mimic_config () in
  let groups = Relational.Database.table db "user_groups" in
  ignore (Relational.Table.delete_where groups (fun _ -> true));
  for uid = 0 to n - 1 do
    ignore
      (Relational.Table.insert groups
         [| Relational.Value.Int uid; Relational.Value.Str (Printf.sprintf "G%d" uid) |])
  done;
  let engine = Engine.create ~config db in
  for k = 0 to n - 1 do
    ignore (Engine.add_policy engine ~name:(Printf.sprintf "P1_%d" k) (family_sql k))
  done;
  engine

let measure ~config ~n ~total_queries =
  let engine = setup ~config ~n in
  let sql = (Workload.Queries.w1 ~n_patients:Common.n_patients).Workload.Queries.sql in
  let stats = ref [] in
  for i = 0 to total_queries - 1 do
    match Engine.submit engine ~uid:(i mod n) sql with
    | Engine.Accepted (_, st) | Engine.Rejected (_, st) -> stats := st :: !stats
  done;
  let m = Stats.mean !stats in
  let eval = Common.ms m.Stats.policy_eval in
  let with_jdbc = eval +. (float_of_int m.Stats.policy_calls *. jdbc_cost_ms) in
  (eval, m.Stats.policy_calls, with_jdbc)

let strategies =
  [
    ( "unified;serial",
      { Engine.default_config with Engine.strategy = Engine.Serial } );
    ("unified;interleaved", Engine.default_config);
    ( "plain;union",
      { Engine.default_config with Engine.unification = false; strategy = Engine.Union_all } );
    ( "plain;serial",
      { Engine.default_config with Engine.unification = false; strategy = Engine.Serial } );
    ("plain;interleaved", { Engine.default_config with Engine.unification = false });
  ]

let run (scale : Common.scale) =
  Common.header "Figure 5: policy unification (per-query policy-eval ms)";
  let total_queries = max 30 (scale.Common.batch_size / 3) in
  Printf.printf
    "%d W1 queries round-robin over n users; n policies (one per group)\n\
     cells: eval ms | policy calls | eval + %.2fms/call (simulated JDBC)\n\n"
    total_queries jdbc_cost_ms;
  let rows =
    List.map
      (fun n ->
        string_of_int n
        :: List.map
             (fun (_, config) ->
               let eval, calls, jdbc = measure ~config ~n ~total_queries in
               Printf.sprintf "%s|%d|%s" (Common.f2 eval) calls (Common.f2 jdbc))
             strategies)
      ns
  in
  Common.print_table
    (6 :: List.map (fun _ -> 20) strategies)
    ("n" :: List.map fst strategies)
    rows
