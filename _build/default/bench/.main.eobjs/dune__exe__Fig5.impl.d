bench/fig5.ml: Common Datalawyer Engine List Mimic Printf Relational Stats Workload
