bench/fig4.ml: Common Datalawyer Engine List Printf Stats Workload
