bench/fig2.ml: Common Datalawyer Engine List Printf Stats Workload
