bench/main.ml: Ablate Array Common Fig1 Fig2 Fig3 Fig4 Fig5 List Micro Printf String Sys Tab4 Unix
