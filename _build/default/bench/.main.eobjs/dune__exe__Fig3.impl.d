bench/fig3.ml: Common Datalawyer Float List Printf Workload
