bench/fig1.ml: Common Datalawyer Engine Float List Printf Workload
