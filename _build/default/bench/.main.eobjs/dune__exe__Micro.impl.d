bench/micro.ml: Analyze Bechamel Benchmark Common Datalawyer Engine Hashtbl Instance List Measure Mimic Partial Policy Printf Relational Staged Test Time Toolkit Witness Workload
