bench/tab4.ml: Common Datalawyer Engine List Stats Workload
