bench/common.ml: Datalawyer Engine List Mimic Printf Stats String Workload
