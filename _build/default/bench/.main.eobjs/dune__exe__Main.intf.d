bench/main.mli:
