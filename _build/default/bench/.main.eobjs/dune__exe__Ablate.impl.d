bench/ablate.ml: Common Datalawyer Engine List Printf Stats Workload
