(** Table 4: the time-independent optimization for policies P2, P3, P4 on
    query W3. Reports the policy + query evaluation time of the count-th
    query with the optimization on ("ti") and off ("No ti"); all other
    optimizations stay enabled in both runs.

    Expected shape: with "ti" the per-query time stays constant in the
    count; without it, compaction cannot prune the aggregate policies'
    logs (the full-query witness retains everything) and time grows. *)

open Datalawyer

let counts = [ 1; 5; 10; 15; 20 ]

let with_ti = Engine.default_config

let without_ti = { Engine.default_config with Engine.time_independent = false }

let time_at_count ~config ~policy ~count =
  let s = Common.setup ~config ~policy_names:[ policy ] () in
  let q = Workload.Runner.query s "W3" in
  let stats, _ = Workload.Runner.run_stream s ~uid:1 ~n:count q in
  Common.ms (Stats.total (List.nth stats (count - 1)))

let run (scale : Common.scale) =
  ignore scale;
  Common.header "Table 4: time-independent optimization, W3 (per-query ms)";
  let policies = [ "P2"; "P3"; "P4" ] in
  let rows =
    List.map
      (fun count ->
        string_of_int count
        :: List.concat_map
             (fun policy ->
               [
                 Common.f1 (time_at_count ~config:with_ti ~policy ~count);
                 Common.f1 (time_at_count ~config:without_ti ~policy ~count);
               ])
             policies)
      counts
  in
  Common.print_table
    [ 6; 9; 9; 9; 9; 9; 9 ]
    [ "count"; "P2"; "P2-noti"; "P3"; "P3-noti"; "P4"; "P4-noti" ]
    rows
