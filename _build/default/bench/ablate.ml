(** Ablation: each optimization toggled off in isolation against the full
    configuration, over a mixed two-user workload with all six policies.
    Not a paper figure — it quantifies the design choices DESIGN.md calls
    out, per-optimization, on one combined stream. *)

open Datalawyer

let configs =
  [
    ("all on", Engine.default_config);
    ("- time-independent", { Engine.default_config with Engine.time_independent = false });
    ("- log compaction", { Engine.default_config with Engine.log_compaction = false });
    ("- interleaved", { Engine.default_config with Engine.strategy = Engine.Serial });
    ("- unification", { Engine.default_config with Engine.unification = false });
    ("- preemptive", { Engine.default_config with Engine.preemptive = false });
    ("- improved partial", { Engine.default_config with Engine.improved_partial = false });
    ("NoOpt", Engine.noopt_config);
  ]

let mixed_stream scale =
  (* (uid, query) pairs; heavier on the cheap queries as a real console
     workload would be *)
  let pattern = [ (0, "W1"); (1, "W1"); (1, "W2"); (0, "W2"); (1, "W3"); (0, "W4"); (1, "W1") ] in
  List.concat (List.init (max 2 (scale.Common.batches / 4)) (fun _ -> pattern))

let run (scale : Common.scale) =
  Common.header "Ablation: optimization contributions (mixed stream, ms/query)";
  let stream = mixed_stream scale in
  Printf.printf "%d queries, policies P1-P6\n\n" (List.length stream);
  let rows =
    List.map
      (fun (label, config) ->
        let s =
          Common.setup ~config
            ~policy_names:[ "P1"; "P2"; "P3"; "P4"; "P5"; "P6" ] ()
        in
        let stats =
          List.map
            (fun (uid, qname) ->
              let q = Workload.Runner.query s qname in
              match Engine.submit s.Workload.Runner.engine ~uid q.Workload.Queries.sql with
              | Engine.Accepted (_, st) | Engine.Rejected (_, st) -> st)
            stream
        in
        let m = Stats.mean stats in
        [
          label;
          Common.f2 (Common.ms (Stats.overhead m));
          Common.f2 (Common.ms m.Stats.log_track);
          Common.f2 (Common.ms m.Stats.policy_eval);
          Common.f2 (Common.ms (Stats.compaction_total m));
          Common.f2 (Common.ms (Stats.total m));
          string_of_int
            (Engine.log_size s.Workload.Runner.engine "provenance"
            + Engine.log_size s.Workload.Runner.engine "users"
            + Engine.log_size s.Workload.Runner.engine "schema");
        ])
      configs
  in
  Common.print_table
    [ 20; 10; 8; 8; 9; 9; 10 ]
    [ "config"; "overhead"; "track"; "eval"; "compact"; "total"; "log rows" ]
    rows
