(** Figure 1: policy + query evaluation time per batch, NoOpt vs
    DataLawyer, policy P6 and query W1 (the fastest query), for uid 0 and
    uid 1.

    Expected shape: NoOpt's per-batch time grows continuously with the
    batch number (the usage log keeps growing); DataLawyer's stabilizes to
    a constant after the initial ramp-up. *)

open Datalawyer

let run (scale : Common.scale) =
  Common.header "Figure 1: per-batch policy+query time, P6 + W1 (ms)";
  Printf.printf "batches of %d queries of W1; policy P6 enforced\n\n"
    scale.Common.batch_size;
  let series =
    List.concat_map
      (fun (label, config) ->
        List.map
          (fun uid ->
            let s = Common.setup ~config ~policy_names:[ "P6" ] () in
            let q = Workload.Runner.query s "W1" in
            let batches =
              List.init scale.Common.batches (fun _ ->
                  let stats, _ =
                    Workload.Runner.run_stream s ~uid ~n:scale.Common.batch_size q
                  in
                  Common.mean_total stats)
            in
            (Printf.sprintf "%s, uid=%d" label uid, batches))
          [ 0; 1 ])
      [ ("NoOpt", Engine.noopt_config); ("DataLawyer", Engine.default_config) ]
  in
  let widths = 6 :: List.map (fun _ -> 18) series in
  Common.print_table widths
    ("batch" :: List.map fst series)
    (List.init scale.Common.batches (fun b ->
         string_of_int (b + 1)
         :: List.map (fun (_, xs) -> Common.f3 (List.nth xs b)) series));
  (* Summarize the trend: last batch over first batch. *)
  print_newline ();
  List.iter
    (fun (label, xs) ->
      let first = List.hd xs and last = List.nth xs (List.length xs - 1) in
      Printf.printf "%-20s first %.3fms  last %.3fms  growth %.1fx\n" label first
        last
        (last /. Float.max 1e-9 first))
    series
