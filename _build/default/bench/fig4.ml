(** Figure 4: benefit and overhead of interleaved policy evaluation for
    each policy on query W4, for uid 0 and uid 1, with the other
    optimizations enabled.

    Expected shape: for uid 0, interleaved evaluation prunes after the
    cheap [users] log and cuts total time to near the plain query time;
    for uid 1 it adds a small overhead (extra partial-policy calls). *)

open Datalawyer

let no_interleave =
  { Engine.default_config with Engine.strategy = Engine.Serial }

let measure ~config ~policy ~uid =
  let s = Common.setup ~config ~policy_names:[ policy ] () in
  let q = Workload.Runner.query s "W4" in
  let n = 10 in
  let st = Stats.mean (Common.stable_stats s ~uid ~n ~last:5 q) in
  (Common.ms (Stats.total st), st.Stats.policy_calls)

let run (scale : Common.scale) =
  ignore scale;
  Common.header "Figure 4: interleaved evaluation on W4 (total ms / policy calls)";
  let s = Common.setup ~policy_names:[] () in
  let q = Workload.Runner.query s "W4" in
  Printf.printf "plain W4 (no policies): %.2fms\n\n"
    (Common.ms (Workload.Runner.plain_query_time s ~n:3 q));
  let rows =
    List.map
      (fun policy ->
        let i0, c0 = measure ~config:Engine.default_config ~policy ~uid:0 in
        let n0, _ = measure ~config:no_interleave ~policy ~uid:0 in
        let i1, c1 = measure ~config:Engine.default_config ~policy ~uid:1 in
        let n1, _ = measure ~config:no_interleave ~policy ~uid:1 in
        [
          policy;
          Printf.sprintf "%s (%d)" (Common.f1 i0) c0;
          Common.f1 n0;
          Printf.sprintf "%s (%d)" (Common.f1 i1) c1;
          Common.f1 n1;
        ])
      [ "P1"; "P2"; "P3"; "P4"; "P5"; "P6" ]
  in
  Common.print_table
    [ 6; 14; 12; 14; 12 ]
    [ "policy"; "uid0-int"; "uid0-noint"; "uid1-int"; "uid1-noint" ]
    rows
