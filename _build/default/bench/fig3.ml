(** Figure 3: the three phases of log compaction — mark / delete / insert
    — for the time-dependent policies P1, P5 and P6 across all four
    queries, as uid 1, plus compaction's share of total time.

    Expected shape: the mark phase (running the witness queries)
    dominates; P1 (users log only) is cheap, P5/P6 (provenance) are
    noticeable; the share of total time stays modest. *)

let run (scale : Common.scale) =
  Common.header "Figure 3: log compaction phase breakdown (uid 1, ms)";
  ignore scale;
  let rows =
    List.concat_map
      (fun policy ->
        List.map
          (fun qname ->
            let s = Common.setup ~policy_names:[ policy ] () in
            let q = Workload.Runner.query s qname in
            let n = 16 in
            let st =
              Datalawyer.Stats.mean (Common.stable_stats s ~uid:1 ~n ~last:8 q)
            in
            let mark = Common.ms st.Datalawyer.Stats.compact_mark in
            let del = Common.ms st.Datalawyer.Stats.compact_delete in
            let ins = Common.ms st.Datalawyer.Stats.compact_insert in
            let total = Common.ms (Datalawyer.Stats.total st) in
            let share = 100. *. (mark +. del +. ins) /. Float.max 1e-9 total in
            [
              Printf.sprintf "%s.%s" policy qname;
              Common.f3 mark;
              Common.f3 del;
              Common.f3 ins;
              Printf.sprintf "%s%%" (Common.f1 share);
            ])
          [ "W1"; "W2"; "W3"; "W4" ])
      [ "P1"; "P5"; "P6" ]
  in
  Common.print_table [ 8; 10; 10; 10; 10 ]
    [ "config"; "mark"; "delete"; "insert"; "share" ]
    rows
