(** Synthetic MIMIC-II-shaped database.

    The paper evaluates on the MIMIC-II ICU dataset (21 GB), which is
    gated; this generator produces a database with the same schema shapes
    the paper's policies and queries touch:

    - [d_patients(subject_id, sex, dob)] — §3.1's patients table;
    - [chartevents(subject_id, itemid, charttime, value)] — monitor
      readings, with itemid 211 (heart rate) a heavy hitter, so that the
      paper's [itemid = 211] queries select a realistic fraction;
    - [poe_order(order_id, subject_id, drug)] and
      [poe_med(order_id, dose)] — provider order entries (policy P2);
    - [user_groups(uid, gid)] — the Groups relation of Example 3.2;
      group ['X'] contains uid 1 but not uid 0, as in §5's setup.

    Generation is deterministic given the seed. Sizes are configurable so
    benchmarks can scale the instance to the available CPU budget. *)

open Relational

type config = {
  seed : int;
  n_patients : int;
  events_per_patient : int;  (** mean chartevents rows per patient *)
  n_orders : int;
  n_users : int;  (** members of user_groups beyond uids 0 and 1 *)
}

let default_config =
  { seed = 42; n_patients = 1000; events_per_patient = 40; n_orders = 2000; n_users = 24 }

let small_config =
  { seed = 42; n_patients = 200; events_per_patient = 20; n_orders = 400; n_users = 24 }

let heart_rate_itemid = 211

let itemids =
  (* heart rate plus a tail of other monitored parameters *)
  Array.of_list (heart_rate_itemid :: List.init 49 (fun i -> 1000 + i))

let drugs = [| "aspirin"; "heparin"; "insulin"; "morphine"; "propofol"; "saline" |]

let schema_sql =
  {|
  CREATE TABLE d_patients (subject_id INT, sex TEXT, dob INT);
  CREATE TABLE chartevents (subject_id INT, itemid INT, charttime INT, value FLOAT);
  CREATE TABLE poe_order (order_id INT, subject_id INT, drug TEXT);
  CREATE TABLE poe_med (order_id INT, dose FLOAT);
  CREATE TABLE user_groups (uid INT, gid TEXT)
  |}

let populate (db : Database.t) (cfg : config) =
  let rng = Rng.create ~seed:cfg.seed in
  let patients = Database.table db "d_patients" in
  for subject_id = 0 to cfg.n_patients - 1 do
    let sex = if Rng.bool rng then "M" else "F" in
    let dob = 1900 + Rng.int rng 100 in
    ignore
      (Table.insert patients [| Value.Int subject_id; Value.Str sex; Value.Int dob |])
  done;
  let chartevents = Database.table db "chartevents" in
  for subject_id = 0 to cfg.n_patients - 1 do
    (* between half and 1.5x the mean, per patient *)
    let n =
      (cfg.events_per_patient / 2) + Rng.int rng (max 1 cfg.events_per_patient)
    in
    for k = 0 to n - 1 do
      (* itemid 211 is the heavy hitter: roughly a third of all events. *)
      let itemid =
        if Rng.int rng 3 = 0 then heart_rate_itemid else itemids.(Rng.skewed rng 50)
      in
      ignore
        (Table.insert chartevents
           [|
             Value.Int subject_id;
             Value.Int itemid;
             Value.Int ((subject_id * 1000) + k);
             Value.Float (40. +. (Rng.float rng *. 120.));
           |])
    done
  done;
  let poe_order = Database.table db "poe_order" in
  let poe_med = Database.table db "poe_med" in
  for order_id = 0 to cfg.n_orders - 1 do
    ignore
      (Table.insert poe_order
         [|
           Value.Int order_id;
           Value.Int (Rng.int rng cfg.n_patients);
           Value.Str (Rng.pick rng drugs);
         |]);
    ignore
      (Table.insert poe_med
         [| Value.Int order_id; Value.Float (0.5 +. Rng.float rng) |])
  done;
  let user_groups = Database.table db "user_groups" in
  (* uid 1 belongs to group 'X'; uid 0 does not (it has no group at all),
     matching the §5 experimental setup. *)
  ignore (Table.insert user_groups [| Value.Int 1; Value.Str "X" |]);
  for uid = 2 to cfg.n_users + 1 do
    let gid = if uid mod 2 = 0 then "X" else "Y" in
    ignore (Table.insert user_groups [| Value.Int uid; Value.Str gid |])
  done

(* Build a fresh database instance. *)
let database ?(config = default_config) () : Database.t =
  let db = Database.create () in
  ignore (Database.exec_script db schema_sql);
  populate db config;
  db
