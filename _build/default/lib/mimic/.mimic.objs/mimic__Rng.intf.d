lib/mimic/rng.mli:
