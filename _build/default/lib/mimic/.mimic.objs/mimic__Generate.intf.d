lib/mimic/generate.mli: Database Relational
