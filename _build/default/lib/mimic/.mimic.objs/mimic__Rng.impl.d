lib/mimic/rng.ml: Array Int64
