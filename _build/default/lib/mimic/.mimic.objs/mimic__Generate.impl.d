lib/mimic/generate.ml: Array Database List Relational Rng Table Value
