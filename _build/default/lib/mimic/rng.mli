(** Deterministic pseudo-random number generator (splitmix64), so data
    generation is reproducible and independent of [Stdlib.Random]. *)

type t

val create : seed:int -> t
val next_int64 : t -> int64

(** Uniform int in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

val bool : t -> bool
val pick : t -> 'a array -> 'a

(** Zipf-like skewed rank in [\[0, n)] (harmonic weights), for
    heavy-hitter item distributions. *)
val skewed : t -> int -> int
