(** Synthetic MIMIC-II-shaped database.

    The paper evaluates on the (gated, 21 GB) MIMIC-II ICU dataset; this
    generator produces a deterministic instance with the same schema
    shapes its policies and queries touch: [d_patients], [chartevents]
    (with itemid 211 as heavy hitter), [poe_order]/[poe_med], and
    [user_groups] with uid 1 in group ['X'] and uid 0 ungrouped, matching
    the §5 experimental setup. *)

open Relational

type config = {
  seed : int;
  n_patients : int;
  events_per_patient : int;  (** mean chartevents rows per patient *)
  n_orders : int;
  n_users : int;  (** members of user_groups beyond uids 0 and 1 *)
}

(** 1000 patients, ~40 events each. *)
val default_config : config

(** 200 patients, ~20 events each — for tests. *)
val small_config : config

(** The heavy-hitter chartevents item (211, heart rate). *)
val heart_rate_itemid : int

(** The CREATE TABLE script (exposed for custom loading). *)
val schema_sql : string

(** Populate an existing database created from {!schema_sql}. *)
val populate : Database.t -> config -> unit

(** Build a fresh instance. *)
val database : ?config:config -> unit -> Database.t
