(** Deterministic pseudo-random number generator (splitmix64).

    The MIMIC-II substitute must be reproducible across runs and
    independent of OCaml's global [Random] state, so data generation uses
    this small self-contained generator. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* mask to 62 bits so the value stays non-negative in OCaml's 63-bit int *)
  let r = Int64.to_int (Int64.logand (next_int64 t) 0x3FFFFFFFFFFFFFFFL) in
  r mod bound

(* Uniform float in [0, 1). *)
let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992. (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr = arr.(int t (Array.length arr))

(* Zipf-like skewed choice over [0, n): rank r with weight 1/(r+1). Used
   to give chartevents the heavy-hitter item distribution of real ICU
   monitoring feeds. *)
let skewed t n =
  let u = float t in
  (* inverse CDF of the harmonic distribution, approximated *)
  let hn = log (float_of_int n) +. 0.5772 in
  let x = exp (u *. hn) -. 1. in
  min (n - 1) (max 0 (int_of_float x))
