(** Lexical tokens of the SQL dialect. *)

type t =
  | Ident of string  (** identifier or keyword; keywords resolved by parser *)
  | Quoted_ident of string  (** double-quoted identifier; never a keyword *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star
  | Plus
  | Minus
  | Slash
  | Percent
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Concat  (** [||] *)
  | Semicolon
  | Eof

val to_string : t -> string
