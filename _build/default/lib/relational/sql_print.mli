(** Pretty-printing of the SQL AST back to concrete syntax.

    The output re-parses to a structurally equal AST (modulo AND/OR chain
    re-association, which is semantically neutral); checked by property
    tests. The DataLawyer engine uses this to display rewritten policies
    (time-independent forms, witness queries, partial policies) as
    ordinary SQL. *)

val binop_str : Ast.binop -> string
val agg_str : Ast.agg -> string
val expr : Ast.expr -> string
val select_item : Ast.select_item -> string
val from_item : Ast.from_item -> string
val select : Ast.select -> string
val query : Ast.query -> string
val stmt : Ast.stmt -> string
