(** Stored rows: a tuple of cells plus a table-unique tuple id.

    Tuple ids ([tid]) are assigned by the owning {!Table} in insertion
    order and never reused. They are the [itid]/[otid] values of the
    paper's [provenance] usage log, and they let log compaction mark
    witness tuples in place. *)

type t

val make : tid:int -> Value.t array -> t

val tid : t -> int

(** The cell array. Treat as read-only; tables share it. *)
val cells : t -> Value.t array

(** The [i]-th cell. *)
val cell : t -> int -> Value.t

val arity : t -> int

(** Cell-wise equality (ignores tids), using {!Value.equal}. *)
val equal_cells : t -> t -> bool

val pp : Format.formatter -> t -> unit
