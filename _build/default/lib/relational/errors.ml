(** Errors raised by the relational substrate.

    All user-facing failures (syntax errors, unknown tables/columns, type
    mismatches, runtime evaluation errors) are funnelled through
    [Sql_error] so that callers — in particular the DataLawyer engine and
    the CLI — can catch a single exception and display its message. *)

type kind =
  | Parse_error
  | Bind_error
  | Type_error
  | Runtime_error
  | Catalog_error

exception Sql_error of kind * string

let kind_to_string = function
  | Parse_error -> "parse error"
  | Bind_error -> "bind error"
  | Type_error -> "type error"
  | Runtime_error -> "runtime error"
  | Catalog_error -> "catalog error"

let parse_error fmt = Format.kasprintf (fun s -> raise (Sql_error (Parse_error, s))) fmt
let bind_error fmt = Format.kasprintf (fun s -> raise (Sql_error (Bind_error, s))) fmt
let type_error fmt = Format.kasprintf (fun s -> raise (Sql_error (Type_error, s))) fmt
let runtime_error fmt = Format.kasprintf (fun s -> raise (Sql_error (Runtime_error, s))) fmt
let catalog_error fmt = Format.kasprintf (fun s -> raise (Sql_error (Catalog_error, s))) fmt

let to_string = function
  | Sql_error (k, msg) -> Printf.sprintf "%s: %s" (kind_to_string k) msg
  | e -> Printexc.to_string e

let () =
  Printexc.register_printer (function
    | Sql_error (k, msg) -> Some (Printf.sprintf "Sql_error(%s: %s)" (kind_to_string k) msg)
    | _ -> None)
