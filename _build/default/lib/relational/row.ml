(** Stored rows: a tuple of cells plus a table-unique tuple id.

    Tuple ids ([tid]) are assigned by the owning {!Table} in insertion
    order and are never reused. They serve two roles in the reproduction:
    they are the [itid]/[otid] values of the paper's [Provenance] usage log
    and they let log compaction mark witness tuples in place. *)

type t = { tid : int; cells : Value.t array }

let tid r = r.tid

let cells r = r.cells

let cell r i = r.cells.(i)

let arity r = Array.length r.cells

let make ~tid cells = { tid; cells }

let equal_cells a b =
  Array.length a.cells = Array.length b.cells
  && (let rec go i =
        i >= Array.length a.cells
        || (Value.equal a.cells.(i) b.cells.(i) && go (i + 1))
      in
      go 0)

let pp ppf r =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Value.pp)
    (Array.to_list r.cells)
