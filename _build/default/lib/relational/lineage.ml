(** Lineage (which-provenance) sets.

    A lineage is a set of [(input_relation, input_tid)] pairs — the "set
    of contributing tuples" provenance the paper adopts from Cui et al.
    (called lineage in [43]). The executor threads a lineage through every
    operator when tracking is enabled; [Off] makes tracking free for the
    common non-provenance path. *)

module Elt = struct
  type t = string * int

  let compare (r1, t1) (r2, t2) =
    match String.compare r1 r2 with 0 -> Int.compare t1 t2 | c -> c
end

module Set = Stdlib.Set.Make (Elt)

type t = Off | On of Set.t

let off = Off

let empty = On Set.empty

let singleton rel tid = On (Set.singleton (rel, tid))

let union a b =
  match a, b with
  | Off, _ | _, Off -> Off
  | On x, On y -> On (Set.union x y)

let union_all = function [] -> empty | x :: xs -> List.fold_left union x xs

let to_list = function Off -> [] | On s -> Set.elements s

let cardinal = function Off -> 0 | On s -> Set.cardinal s

let is_tracking = function Off -> false | On _ -> true
