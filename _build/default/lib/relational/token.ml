(** Lexical tokens of the SQL dialect. *)

type t =
  | Ident of string  (** identifier or keyword; keywords resolved by parser *)
  | Quoted_ident of string  (** double-quoted identifier; never a keyword *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star
  | Plus
  | Minus
  | Slash
  | Percent
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Concat  (** [||] *)
  | Semicolon
  | Eof

let to_string = function
  | Ident s -> s
  | Quoted_ident s -> Printf.sprintf "%S" s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | Str_lit s -> Printf.sprintf "'%s'" s
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Dot -> "."
  | Star -> "*"
  | Plus -> "+"
  | Minus -> "-"
  | Slash -> "/"
  | Percent -> "%"
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Concat -> "||"
  | Semicolon -> ";"
  | Eof -> "<eof>"
