(** Query execution.

    Materializing operators over a bound AST, with two planning
    optimizations that matter for the paper's workloads: per-relation
    predicate pushdown and hash equi-joins (FROM items join left to
    right; remaining equality conjuncts connecting the joined prefix to
    the next relation become hash keys, otherwise a filtered nested loop
    is used).

    Two orthogonal annotations can be threaded through execution:

    - {b lineage}: each output row carries the set of (relation, tid)
      input tuples that contributed to it. Aggregation, DISTINCT and
      UNION merge the lineages of the rows they combine. Implements the
      paper's [f_Provenance] log-generating function.
    - {b source tids}: each output row carries, for every top-level FROM
      item of the outermost SELECT, the tid of the row it derives from.
      Log compaction executes witness queries in this mode to mark
      retained log tuples in place. *)

type opts = { lineage : bool; track_src : bool }

val default_opts : opts

type row_out = {
  values : Value.t array;
  lineage : (string * int) list;  (** empty unless [opts.lineage] *)
  src_tids : (int * int) list;
      (** (FROM-slot index, tid) pairs; empty unless [opts.track_src] *)
}

type result = { columns : string list; out_rows : row_out list }

(** Execute a query against the catalog.
    @raise Errors.Sql_error on binding or runtime failures. *)
val run : ?opts:opts -> Catalog.t -> Ast.query -> result

(** Parse and execute. *)
val run_sql : ?opts:opts -> Catalog.t -> string -> result

(** Does the query return no rows? (Policies are satisfied iff so.) *)
val is_empty : ?opts:opts -> Catalog.t -> Ast.query -> bool

(** Cumulative count of rows examined by join operators, for tests and
    benchmarks. *)
val rows_examined : int ref
