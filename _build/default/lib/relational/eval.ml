(** Scalar expression evaluation.

    Expressions are evaluated against an environment that resolves column
    references (and, inside aggregate queries, whole [Agg_call] nodes) to
    values. NULL semantics are the simplified ones documented in
    {!Value}: comparisons involving NULL are false; arithmetic on NULL
    yields NULL. *)

type env = {
  col : string option -> string -> Value.t;
      (** resolve a (qualifier, column) reference *)
  agg : (Ast.expr -> Value.t option) option;
      (** resolve a computed aggregate; [None] outside aggregate queries *)
}

let arith op_name fint ffloat a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> Value.Int (fint x y)
  | _ -> (
    match Value.as_float a, Value.as_float b with
    | Some x, Some y -> Value.Float (ffloat x y)
    | _ ->
      Errors.type_error "cannot apply %s to %s and %s" op_name
        (Value.to_string a) (Value.to_string b))

let compare_op op a b =
  if Value.is_null a || Value.is_null b then Value.Bool false
  else
    let c = Value.compare a b in
    let r =
      match op with
      | Ast.Eq -> c = 0
      | Ast.Neq -> c <> 0
      | Ast.Lt -> c < 0
      | Ast.Le -> c <= 0
      | Ast.Gt -> c > 0
      | Ast.Ge -> c >= 0
      | _ -> assert false
    in
    Value.Bool r

let rec eval env (e : Ast.expr) : Value.t =
  match env.agg with
  | Some lookup -> (
    match lookup e with Some v -> v | None -> eval_node env e)
  | None -> eval_node env e

and eval_node env (e : Ast.expr) : Value.t =
  match e with
  | Ast.Lit v -> v
  | Ast.Col (q, c) -> env.col q c
  | Ast.Unop (Ast.Not, a) -> Value.Bool (not (Value.to_bool (eval env a)))
  | Ast.Unop (Ast.Neg, a) -> (
    match eval env a with
    | Value.Null -> Value.Null
    | Value.Int i -> Value.Int (-i)
    | Value.Float f -> Value.Float (-.f)
    | v -> Errors.type_error "cannot negate %s" (Value.to_string v))
  | Ast.Binop (Ast.And, a, b) ->
    Value.Bool (Value.to_bool (eval env a) && Value.to_bool (eval env b))
  | Ast.Binop (Ast.Or, a, b) ->
    Value.Bool (Value.to_bool (eval env a) || Value.to_bool (eval env b))
  | Ast.Binop (Ast.Concat, a, b) -> (
    match eval env a, eval env b with
    | Value.Null, _ | _, Value.Null -> Value.Null
    | va, vb -> Value.Str (Value.to_string va ^ Value.to_string vb))
  | Ast.Binop (((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), a, b) ->
    compare_op op (eval env a) (eval env b)
  | Ast.Binop (Ast.Add, a, b) -> arith "+" ( + ) ( +. ) (eval env a) (eval env b)
  | Ast.Binop (Ast.Sub, a, b) -> arith "-" ( - ) ( -. ) (eval env a) (eval env b)
  | Ast.Binop (Ast.Mul, a, b) -> arith "*" ( * ) ( *. ) (eval env a) (eval env b)
  | Ast.Binop (Ast.Div, a, b) -> (
    let va = eval env a and vb = eval env b in
    match vb with
    | Value.Int 0 | Value.Float 0. -> Errors.runtime_error "division by zero"
    | _ -> arith "/" ( / ) ( /. ) va vb)
  | Ast.Binop (Ast.Mod, a, b) -> (
    match eval env a, eval env b with
    | Value.Null, _ | _, Value.Null -> Value.Null
    | Value.Int _, Value.Int 0 -> Errors.runtime_error "modulo by zero"
    | Value.Int x, Value.Int y -> Value.Int (x mod y)
    | va, vb ->
      Errors.type_error "%% expects integers, got %s and %s" (Value.to_string va)
        (Value.to_string vb))
  | Ast.Binop (Ast.Like, a, b) -> (
    match eval env a, eval env b with
    | Value.Null, _ | _, Value.Null -> Value.Bool false
    | v, Value.Str pattern -> Value.Bool (like_match (Value.to_string v) pattern)
    | _, v -> Errors.type_error "LIKE pattern must be a string, got %s" (Value.to_string v))
  | Ast.Fn_call (name, args) -> eval_fn env name args
  | Ast.Case (branches, default) ->
    let rec pick = function
      | [] -> ( match default with Some d -> eval env d | None -> Value.Null)
      | (cond, v) :: rest ->
        if Value.to_bool (eval env cond) then eval env v else pick rest
    in
    pick branches
  | Ast.Agg_call _ ->
    Errors.bind_error "aggregate used outside of an aggregate query context"

(* Scalar builtins. COALESCE is lazy: it stops at the first non-NULL. *)
and eval_fn env name args =
  match name, args with
  | "coalesce", args ->
    let rec first = function
      | [] -> Value.Null
      | a :: rest -> (
        match eval env a with Value.Null -> first rest | v -> v)
    in
    first args
  | "abs", [ a ] -> (
    match eval env a with
    | Value.Null -> Value.Null
    | Value.Int i -> Value.Int (abs i)
    | Value.Float f -> Value.Float (Float.abs f)
    | v -> Errors.type_error "ABS expects a number, got %s" (Value.to_string v))
  | "length", [ a ] -> (
    match eval env a with
    | Value.Null -> Value.Null
    | Value.Str s -> Value.Int (String.length s)
    | v -> Errors.type_error "LENGTH expects a string, got %s" (Value.to_string v))
  | "lower", [ a ] -> (
    match eval env a with
    | Value.Null -> Value.Null
    | Value.Str s -> Value.Str (String.lowercase_ascii s)
    | v -> Errors.type_error "LOWER expects a string, got %s" (Value.to_string v))
  | "upper", [ a ] -> (
    match eval env a with
    | Value.Null -> Value.Null
    | Value.Str s -> Value.Str (String.uppercase_ascii s)
    | v -> Errors.type_error "UPPER expects a string, got %s" (Value.to_string v))
  | "round", [ a ] -> (
    match eval env a with
    | Value.Null -> Value.Null
    | Value.Int i -> Value.Int i
    | Value.Float f -> Value.Int (int_of_float (Float.round f))
    | v -> Errors.type_error "ROUND expects a number, got %s" (Value.to_string v))
  | ("abs" | "length" | "lower" | "upper" | "round"), args ->
    Errors.bind_error "%s expects 1 argument, got %d" (String.uppercase_ascii name)
      (List.length args)
  | name, _ -> Errors.bind_error "unknown function %S" name

(* SQL LIKE: '%' matches any sequence, '_' any single character. *)
and like_match (s : string) (pattern : string) : bool =
  let n = String.length s and m = String.length pattern in
  (* memoized recursive match *)
  let memo = Hashtbl.create 16 in
  let rec go i j =
    match Hashtbl.find_opt memo (i, j) with
    | Some r -> r
    | None ->
      let r =
        if j >= m then i >= n
        else
          match pattern.[j] with
          | '%' -> go i (j + 1) || (i < n && go (i + 1) j)
          | '_' -> i < n && go (i + 1) (j + 1)
          | c -> i < n && s.[i] = c && go (i + 1) (j + 1)
      in
      Hashtbl.add memo (i, j) r;
      r
  in
  go 0 0

(* Evaluate an expression that must be constant (INSERT values, literal
   defaults). *)
let const_env =
  {
    col = (fun _ c -> Errors.bind_error "column %s not allowed in constant expression" c);
    agg = None;
  }

let eval_const e = eval const_env e
