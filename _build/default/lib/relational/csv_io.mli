(** CSV import/export for tables (RFC 4180 quoting).

    On export, NULL becomes the empty field. On import, the first record
    is the header; if the table does not exist it is created with
    inferred column types (Int, then Float, then Bool, else Text; empty
    fields are NULL), otherwise values are coerced to the existing
    schema. *)

(** Render a table (header + rows) as CSV text. *)
val export : Database.t -> table:string -> string

val export_to_file : Database.t -> table:string -> path:string -> unit

(** Parse CSV text into records of fields (exposed for tests). *)
val parse_csv : string -> string list list

(** Import CSV text into [table]; returns the number of rows inserted.
    @raise Errors.Sql_error on malformed CSV, ragged records, arity
    mismatch against an existing table, or uncoercible values. *)
val import : Database.t -> table:string -> string -> int

val import_from_file : Database.t -> table:string -> path:string -> int
