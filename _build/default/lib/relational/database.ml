(** Convenience facade over the substrate: a catalog plus string-level SQL
    entry points. This is the interface the DataLawyer middleware, the
    examples, and the CLI use. *)

type t = { catalog : Catalog.t }

let create () = { catalog = Catalog.create () }

let catalog db = db.catalog

(* Execute a single SQL statement. *)
let exec db sql : Dml.outcome = Dml.exec db.catalog (Parser.stmt sql)

(* Execute a script of ';'-separated statements; returns the outcomes. *)
let exec_script db sql : Dml.outcome list =
  List.map (Dml.exec db.catalog) (Parser.script sql)

(* Run a query and return its result. *)
let query ?opts db sql : Executor.result = Executor.run ?opts db.catalog (Parser.query sql)

(* Run a query AST. *)
let query_ast ?opts db q : Executor.result = Executor.run ?opts db.catalog q

(* Run a query and return the rows as value lists (tests, examples). *)
let rows ?opts db sql : Value.t list list =
  let r = query ?opts db sql in
  List.map (fun (row : Executor.row_out) -> Array.to_list row.values) r.Executor.out_rows

(* Run a query expected to return a single scalar. *)
let scalar db sql : Value.t =
  match rows db sql with
  | [ [ v ] ] -> v
  | [] -> Errors.runtime_error "scalar query returned no rows: %s" sql
  | _ -> Errors.runtime_error "scalar query returned multiple rows/columns: %s" sql

let table db name = Catalog.find db.catalog name

(* Render a result as an aligned text table (CLI, examples). *)
let render (r : Executor.result) : string =
  let header = Array.of_list r.Executor.columns in
  let rows =
    List.map
      (fun (row : Executor.row_out) -> Array.map Value.to_string row.values)
      r.Executor.out_rows
  in
  let ncols = Array.length header in
  let width j =
    List.fold_left
      (fun w row -> max w (String.length row.(j)))
      (String.length header.(j))
      rows
  in
  let widths = Array.init ncols width in
  let line cells =
    String.concat " | "
      (List.mapi
         (fun j (c : string) -> c ^ String.make (widths.(j) - String.length c) ' ')
         (Array.to_list cells))
  in
  let sep =
    String.concat "-+-"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  if ncols > 0 then begin
    Buffer.add_string buf (line header);
    Buffer.add_char buf '\n';
    Buffer.add_string buf sep;
    Buffer.add_char buf '\n'
  end;
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf (Printf.sprintf "(%d rows)" (List.length rows));
  Buffer.contents buf
