(** Relation schemas: ordered lists of named, typed columns. *)

type column = { name : string; ty : Ty.t }

type t = column array

let make cols : t =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, _) ->
      let key = String.lowercase_ascii name in
      if Hashtbl.mem seen key then
        Errors.catalog_error "duplicate column name %S in schema" name;
      Hashtbl.add seen key ())
    cols;
  Array.of_list (List.map (fun (name, ty) -> { name; ty }) cols)

let arity (t : t) = Array.length t

let columns (t : t) = Array.to_list t

let column_names (t : t) = Array.to_list (Array.map (fun c -> c.name) t)

(* Column lookup is case-insensitive, as in SQL. *)
let find_index (t : t) name =
  let lname = String.lowercase_ascii name in
  let rec go i =
    if i >= Array.length t then None
    else if String.lowercase_ascii t.(i).name = lname then Some i
    else go (i + 1)
  in
  go 0

let column (t : t) i = t.(i)

let pp ppf (t : t) =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf c -> Format.fprintf ppf "%s %a" c.name Ty.pp c.ty))
    (Array.to_list t)

let to_string t = Format.asprintf "%a" pp t
