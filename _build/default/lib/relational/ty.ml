(** Column types of the relational substrate. *)

type t =
  | Int  (** 63-bit integers; also used for logical timestamps *)
  | Float
  | Bool
  | Text

let to_string = function
  | Int -> "INT"
  | Float -> "FLOAT"
  | Bool -> "BOOL"
  | Text -> "TEXT"

let of_string s =
  match String.uppercase_ascii s with
  | "INT" | "INTEGER" | "BIGINT" | "SMALLINT" -> Some Int
  | "FLOAT" | "REAL" | "DOUBLE" | "NUMERIC" | "DECIMAL" -> Some Float
  | "BOOL" | "BOOLEAN" -> Some Bool
  | "TEXT" | "VARCHAR" | "CHAR" | "STRING" -> Some Text
  | _ -> None

let equal (a : t) (b : t) = a = b

let pp ppf t = Format.pp_print_string ppf (to_string t)
