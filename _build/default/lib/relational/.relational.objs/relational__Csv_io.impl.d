lib/relational/csv_io.ml: Array Buffer Catalog Database Errors In_channel List Out_channel Row Schema String Table Ty Value
