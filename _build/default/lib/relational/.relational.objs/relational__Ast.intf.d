lib/relational/ast.mli: Ty Value
