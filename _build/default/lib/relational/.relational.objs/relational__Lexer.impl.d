lib/relational/lexer.ml: Array Buffer Errors Format List String Token
