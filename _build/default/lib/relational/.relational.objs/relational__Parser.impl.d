lib/relational/parser.ml: Array Ast Errors Format Lexer List Option String Token Ty Value
