lib/relational/lexer.mli: Token
