lib/relational/parser.mli: Ast
