lib/relational/lineage.ml: Int List Stdlib String
