lib/relational/csv_io.mli: Database
