lib/relational/vec.mli:
