lib/relational/ty.ml: Format String
