lib/relational/token.mli:
