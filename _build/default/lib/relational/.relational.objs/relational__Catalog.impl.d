lib/relational/catalog.ml: Errors Hashtbl List Option String Table
