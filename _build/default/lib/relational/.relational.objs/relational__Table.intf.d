lib/relational/table.mli: Format Hashtbl Row Schema Value
