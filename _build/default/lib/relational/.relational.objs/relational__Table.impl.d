lib/relational/table.ml: Array Errors Format Hashtbl Row Schema Ty Value Vec
