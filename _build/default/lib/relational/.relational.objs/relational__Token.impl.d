lib/relational/token.ml: Printf
