lib/relational/schema.mli: Format Ty
