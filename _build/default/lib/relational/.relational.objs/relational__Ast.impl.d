lib/relational/ast.ml: List Option Printf Ty Value
