lib/relational/row.ml: Array Format Value
