lib/relational/schema.ml: Array Errors Format Hashtbl List String Ty
