lib/relational/value.mli: Format Ty
