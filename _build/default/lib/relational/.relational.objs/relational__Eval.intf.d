lib/relational/eval.mli: Ast Value
