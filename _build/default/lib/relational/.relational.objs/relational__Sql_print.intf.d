lib/relational/sql_print.mli: Ast
