lib/relational/dml.ml: Array Ast Catalog Errors Eval Executor List Row Schema String Table Value
