lib/relational/lineage.mli:
