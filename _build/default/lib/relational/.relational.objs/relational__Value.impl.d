lib/relational/value.ml: Array Bool Buffer Float Format Hashtbl Int Int64 Printf String Ty
