lib/relational/ty.mli: Format
