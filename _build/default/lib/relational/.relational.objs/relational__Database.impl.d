lib/relational/database.ml: Array Buffer Catalog Dml Errors Executor List Parser Printf String Value
