lib/relational/executor.ml: Aggregate Array Ast Catalog Errors Eval Hashtbl Lineage List Option Parser Row Schema Sql_print String Table Value
