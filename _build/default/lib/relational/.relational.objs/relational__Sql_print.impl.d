lib/relational/sql_print.ml: Ast Buffer List Option Printf String Ty Value
