lib/relational/aggregate.mli: Ast Value
