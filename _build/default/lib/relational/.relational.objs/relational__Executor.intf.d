lib/relational/executor.mli: Ast Catalog Value
