lib/relational/errors.ml: Format Printexc Printf
