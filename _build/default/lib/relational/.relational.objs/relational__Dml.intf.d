lib/relational/dml.mli: Ast Catalog Executor
