lib/relational/eval.ml: Ast Errors Float Hashtbl List String Value
