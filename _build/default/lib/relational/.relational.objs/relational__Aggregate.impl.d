lib/relational/aggregate.ml: Ast Errors List Set Value
