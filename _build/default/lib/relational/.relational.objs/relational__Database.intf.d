lib/relational/database.mli: Ast Catalog Dml Executor Table Value
