(** Errors raised by the relational substrate.

    All user-facing failures are funnelled through {!Sql_error} so callers
    (the DataLawyer engine, the CLI) can catch one exception and display
    its message. *)

type kind =
  | Parse_error
  | Bind_error  (** name resolution: unknown/ambiguous tables or columns *)
  | Type_error
  | Runtime_error  (** evaluation failures, e.g. division by zero *)
  | Catalog_error  (** catalog violations, e.g. duplicate table *)

exception Sql_error of kind * string

val kind_to_string : kind -> string

(** The following raise [Sql_error] with a formatted message. *)

val parse_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val bind_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val runtime_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val catalog_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Render any exception; [Sql_error] gets a ["kind: message"] form. *)
val to_string : exn -> string
