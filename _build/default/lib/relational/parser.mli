(** Recursive-descent parser for the SQL dialect.

    Keywords are case-insensitive. Several constructs are desugared at
    parse time so downstream policy analysis only sees flat FROM lists
    with conjunctive WHERE clauses:

    - [INNER JOIN ... ON p] becomes a comma join plus the conjunct [p];
    - [x IN (a, b)] becomes [x = a OR x = b]; [NOT IN] the negation;
    - [x BETWEEN a AND b] becomes [x >= a AND x <= b];
    - [x IS [NOT] NULL] becomes [[NOT] (x = x)] (sound under the
      substrate's NULL semantics where [NULL = NULL] is false).

    All entry points raise {!Errors.Sql_error} with position information
    on malformed input. *)

(** Parse one statement (query or DML), allowing a trailing [';']. *)
val stmt : string -> Ast.stmt

(** Parse a query ([SELECT]/[UNION]). *)
val query : string -> Ast.query

(** Parse a scalar expression. *)
val expr : string -> Ast.expr

(** Parse a [';']-separated script. *)
val script : string -> Ast.stmt list
